#!/usr/bin/env sh
# Turns one benchmark run into a BENCH_<name>.json snapshot for the perf
# trajectory: runs the binary with --metrics-json, validates the output, and
# drops it next to the repo root (override with -o). The snapshot carries one
# record per benchmark run — status, the full simulated Metrics (including
# the additive real-spill counters real_spilled_bytes / real_spill_events /
# real_spill_runs), and the observability time breakdown (see
# bench/bench_util.h for the schema; arm-specific assertions live in
# scripts/check.sh perf mode).
#
# Usage:
#   scripts/bench_to_json.sh <bench-binary> [-o OUT.json] [bench args...]
# Examples:
#   scripts/bench_to_json.sh bench_fig1_kmeans_motivation
#   scripts/bench_to_json.sh bench_faults -o BENCH_faults.json --faults=0.05
set -eu

cd "$(dirname "$0")/.."

[ $# -ge 1 ] || {
  echo "usage: scripts/bench_to_json.sh <bench-binary> [-o OUT.json] [args...]" >&2
  exit 2
}
bench="$1"; shift

out=""
if [ "${1:-}" = "-o" ]; then
  out="$2"; shift 2
fi
[ -n "$out" ] || out="BENCH_${bench#bench_}.json"

binary="build/bench/$bench"
[ -x "$binary" ] || {
  echo "$binary not built; run: cmake --preset default && cmake --build --preset default -j" >&2
  exit 1
}

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

"$binary" --metrics-json="$tmp" "$@" >&2
python3 -m json.tool "$tmp" >/dev/null
mv "$tmp" "$out"
trap - EXIT
echo "wrote $out"
