// Real wall-clock throughput of the engine's operators (elements/second on
// the hardware clock — NOT the simulated cluster time every other bench
// reports). The engine really executes every operator in-process, so this is
// the number that gates test runs, bench sweeps, and any scale-up of the
// reproduction; BENCH_throughput.json is the repo's wall-clock perf
// trajectory.
//
// Axes per operator:
//   arg0: execute_parallel (0 = single-threaded, 1 = thread pool). Results
//         are bit-identical either way (engine_parallel_determinism_test);
//         only wall-clock changes.
//   variant suffix: small (16-byte pair<int64,int64>) vs large
//         (pair<int64,string> with a 48-char heap payload).
//
// The chain/ families additionally take arg1: the fusion arm (0 = eager,
// 1 = fused with type-erased feeds, 2 = fused with static feeds), A/B/C-ing
// the narrow-op pipeline representations on a map -> filter -> map ->
// mapValues chain and a 10-op deep chain (results and simulated metrics
// are bit-identical across the arms; only wall-clock moves).
//
// Reported time is manual wall time of the operator alone (datagen and
// Cluster::Reset excluded); items/s counts synthetic input elements. With
// --metrics-json=FILE each run additionally records a "wall" object
// (real_s, elements, elements_per_s) next to the simulated metrics. The
// measured region keeps a null trace sink, so observability never perturbs
// the wall numbers.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "engine/bag.h"
#include "engine/extra_ops.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::bench {
namespace {

using engine::Bag;
using engine::Cluster;

// Enough elements that one operator run takes O(100 ms) single-threaded;
// partition count gives every pool worker several partitions to chew on.
constexpr int64_t kSmallN = 1 << 21;  // 2M pair<int64,int64>
constexpr int64_t kLargeN = 1 << 18;  // 256k pair<int64,string>
constexpr int64_t kParts = 64;
constexpr int64_t kKeys = 1 << 15;

engine::ClusterConfig Config(bool parallel) {
  engine::ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 4;
  cfg.default_parallelism = kParts;
  cfg.execute_parallel = parallel;
  return cfg;
}

std::vector<std::pair<int64_t, int64_t>> SmallData(int64_t n) {
  std::vector<std::pair<int64_t, int64_t>> data;
  data.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) data.emplace_back(i % kKeys, i);
  return data;
}

std::vector<std::pair<int64_t, std::string>> LargeData(int64_t n) {
  std::vector<std::pair<int64_t, std::string>> data;
  data.reserve(static_cast<std::size_t>(n));
  std::string payload(48, 'x');
  for (int64_t i = 0; i < n; ++i) {
    payload[0] = static_cast<char>('a' + i % 26);
    data.emplace_back(i % kKeys, payload);
  }
  return data;
}

/// Runs `op(bag)` per iteration under a manual wall-clock stopwatch, then
/// reports items/s to google-benchmark and the wall record to the metrics
/// JSON. `op` must consume the bag and return something rooted in the
/// result so the work cannot be optimized away.
template <typename T, typename Op>
void MeasureOp(benchmark::State& state, const char* name, Cluster* cluster,
               const Bag<T>& bag, Op op) {
  const bool parallel = state.range(0) != 0;
  double wall_s = 0.0;
  int64_t elements = 0;
  for (auto _ : state) {
    cluster->Reset();
    Stopwatch sw;
    auto out = op(bag);
    const double elapsed = sw.ElapsedSeconds();
    benchmark::DoNotOptimize(out);
    state.SetIterationTime(elapsed);
    wall_s += elapsed;
    elements += bag.Size();
  }
  state.SetItemsProcessed(elements);
  state.counters["pool"] = parallel ? 1 : 0;

  ObsSession::WallStats wall;
  wall.real_s = wall_s;
  wall.elements = elements;
  wall.elements_per_s = wall_s > 0 ? static_cast<double>(elements) / wall_s : 0;
  std::string run_name = std::string("throughput/") + name + "/pool" +
                         (parallel ? "1" : "0");
  ObsSession::Get().ReportNamedRun(std::move(run_name), cluster->metrics(),
                                   cluster->ok(),
                                   cluster->status().ToString(), wall);
}

// --- Small elements: pair<int64, int64> ---

void BM_Map_Small(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  MeasureOp(state, "map/small", &cluster, bag, [](const auto& b) {
    auto out = engine::Map(b, [](const std::pair<int64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(p.first, p.second + 1);
    });
    // With fusion on Map composes instantly; force so the measured region
    // covers the materialization, keeping this row comparable across arms.
    out.Force();
    return out;
  });
}

void BM_Repartition_Small(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  MeasureOp(state, "repartition/small", &cluster, bag, [](const auto& b) {
    return engine::Repartition(b, kParts);
  });
}

void BM_PartitionByKey_Small(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  MeasureOp(state, "partitionByKey/small", &cluster, bag, [](const auto& b) {
    return engine::PartitionByKey(b, kParts);
  });
}

void BM_ReduceByKey_Small(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  MeasureOp(state, "reduceByKey/small", &cluster, bag, [](const auto& b) {
    return engine::ReduceByKey(
        b, [](int64_t a, int64_t v) { return a + v; }, kParts);
  });
}

void BM_GroupByKey_Small(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  MeasureOp(state, "groupByKey/small", &cluster, bag, [](const auto& b) {
    return engine::GroupByKey(b, kParts);
  });
}

void BM_Distinct_Small(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  MeasureOp(state, "distinct/small", &cluster, bag, [](const auto& b) {
    return engine::Distinct(engine::Keys(b), kParts);
  });
}

void BM_RepartitionJoin_Small(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  std::vector<std::pair<int64_t, int64_t>> rhs;
  rhs.reserve(kKeys);
  for (int64_t i = 0; i < kKeys; ++i) rhs.emplace_back(i, i * 10);
  auto right = engine::Parallelize(&cluster, std::move(rhs), kParts);
  MeasureOp(state, "repartitionJoin/small", &cluster, bag,
            [&right](const auto& b) {
              return engine::RepartitionJoin(b, right, kParts);
            });
}

void BM_BroadcastJoin_Small(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  std::vector<std::pair<int64_t, int64_t>> rhs;
  rhs.reserve(kKeys);
  for (int64_t i = 0; i < kKeys; ++i) rhs.emplace_back(i, i * 10);
  auto right = engine::Parallelize(&cluster, std::move(rhs), 4);
  MeasureOp(state, "broadcastJoin/small", &cluster, bag,
            [&right](const auto& b) {
              return engine::BroadcastJoin(b, right);
            });
}

// --- Large elements: pair<int64, std::string> (heap payloads) ---

void BM_Repartition_Large(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, LargeData(kLargeN), kParts);
  MeasureOp(state, "repartition/large", &cluster, bag, [](const auto& b) {
    return engine::Repartition(b, kParts);
  });
}

void BM_ReduceByKey_Large(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, LargeData(kLargeN), kParts);
  MeasureOp(state, "reduceByKey/large", &cluster, bag, [](const auto& b) {
    return engine::ReduceByKey(
        b,
        [](const std::string& a, const std::string& v) {
          return a.size() >= v.size() ? a : v;
        },
        kParts);
  });
}

void BM_GroupByKey_Large(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, LargeData(kLargeN), kParts);
  MeasureOp(state, "groupByKey/large", &cluster, bag, [](const auto& b) {
    return engine::GroupByKey(b, kParts);
  });
}

void BM_Distinct_Large(benchmark::State& state) {
  Cluster cluster(Config(state.range(0) != 0));
  auto bag = engine::Parallelize(&cluster, LargeData(kLargeN), kParts);
  MeasureOp(state, "distinct/large", &cluster, bag, [](const auto& b) {
    return engine::Distinct(engine::Values(b), kParts);
  });
}

// --- Out-of-core: shuffle + group-by under a real memory budget ---
//
// The heap-payload working set (~20 MB of real element data, modeling ~8 GB
// at data_scale) exceeds the 4 MB real scratch budget several times over, so
// every scatter and group build of the bounded arm runs through the external
// spilling paths (temp-file runs, deterministic merge-on-read). Results are
// bit-identical to the unbounded arm — the external determinism contract,
// locked by engine_external_test — and the metrics JSON rows carry the real
// spilled bytes (real_spilled_bytes > 0 on the bounded arm only).

constexpr std::size_t kRealBudgetBytes = std::size_t{4} << 20;  // 4 MB

void BM_ShuffleGroup_Budget(benchmark::State& state) {
  engine::ClusterConfig cfg = Config(state.range(0) != 0);
  const bool bounded = state.range(1) != 0;
  cfg.real_memory_budget_bytes = bounded ? kRealBudgetBytes : 0;
  // The synthetic dataset stands for ~8 GB of real data on the simulated
  // cluster; the REAL budget below bounds actual process scratch.
  ScaleToTarget(&cfg, 8.0, kLargeN, 80.0);
  Cluster cluster(cfg);
  auto bag = engine::Parallelize(&cluster, LargeData(kLargeN), kParts);
  const char* name = bounded ? "budget/shuffleGroup/bounded4mb"
                             : "budget/shuffleGroup/unbounded";
  MeasureOp(state, name, &cluster, bag, [](const auto& b) {
    auto grouped =
        engine::GroupByKey(engine::Repartition(b, kParts), kParts);
    return engine::MapValues(grouped, [](const std::vector<std::string>& g) {
      return static_cast<int64_t>(g.size());
    });
  });
  state.counters["budget_mb"] =
      bounded ? static_cast<double>(kRealBudgetBytes) / (1 << 20) : 0;
  state.counters["real_spill_mb"] =
      cluster.metrics().real_spilled_bytes / (1 << 20);
}

// --- Chaos: the out-of-core pipeline under an injected real-fault storm ---
//
// A/B of the same bounded shuffle+group as BM_ShuffleGroup_Budget, calm
// (failpoints disarmed) vs storm (deterministic seeded transient EIO, short
// transfers, a sprinkle of ENOSPC and bit-rot, fallback-in-memory on). The
// storm arm measures the wall-clock cost of the hardened IO layer actually
// absorbing faults; its outputs are still bit-identical to the calm arm
// (ChaosEngineTest locks that), and its metrics row carries nonzero
// real_io_faults_injected / real_io_retries / checksum_failures /
// inmemory_fallbacks while the calm arm keeps all four at exactly zero.

void BM_ShuffleGroup_Chaos(benchmark::State& state) {
  engine::ClusterConfig cfg = Config(state.range(0) != 0);
  const bool storm = state.range(1) != 0;
  cfg.real_memory_budget_bytes = kRealBudgetBytes;
  if (storm) {
    cfg.real_faults.seed = 2021;
    cfg.real_faults.write_eio_prob = 0.1;
    cfg.real_faults.read_eio_prob = 0.1;
    cfg.real_faults.short_write_prob = 0.2;
    cfg.real_faults.short_read_prob = 0.2;
    cfg.real_faults.write_enospc_prob = 0.002;
    cfg.real_faults.corrupt_prob = 0.002;
  }
  ScaleToTarget(&cfg, 8.0, kLargeN, 80.0);
  Cluster cluster(cfg);
  auto bag = engine::Parallelize(&cluster, LargeData(kLargeN), kParts);
  const char* name =
      storm ? "chaos/shuffleGroup/storm" : "chaos/shuffleGroup/calm";
  MeasureOp(state, name, &cluster, bag, [](const auto& b) {
    auto grouped =
        engine::GroupByKey(engine::Repartition(b, kParts), kParts);
    return engine::MapValues(grouped, [](const std::vector<std::string>& g) {
      return static_cast<int64_t>(g.size());
    });
  });
  state.counters["storm"] = storm ? 1 : 0;
  state.counters["io_faults"] =
      static_cast<double>(cluster.metrics().real_io_faults_injected);
  state.counters["io_retries"] =
      static_cast<double>(cluster.metrics().real_io_retries);
  state.counters["fallbacks"] =
      static_cast<double>(cluster.metrics().inmemory_fallbacks);
}

// --- Narrow chains: map -> filter -> map -> mapValues, fused vs eager ---
//
// The chain benches force the result inside the measured region (chains are
// pending until forced with fusion on); the arm is carried in the run name
// so the metrics JSON gets an A/B/C grid per pool arm:
//   fusion0        eager per-op passes (fusion disabled)
//   fusion1static0 fused, legacy type-erased std::function feed chain
//   fusion1static1 fused, static CRTP feed chain (one monomorphic loop)
// Results and simulated metrics are bit-identical across all three arms;
// only wall-clock moves.

void ApplyChainArm(engine::ClusterConfig* cfg, int64_t arm) {
  cfg->fusion.enabled = arm != 0;
  cfg->fusion.static_feeds = arm == 2;
}

const char* ChainArmName(int64_t arm) {
  switch (arm) {
    case 0:
      return "fusion0";
    case 1:
      return "fusion1static0";
    default:
      return "fusion1static1";
  }
}

void BM_Chain_Small(benchmark::State& state) {
  engine::ClusterConfig cfg = Config(state.range(0) != 0);
  ApplyChainArm(&cfg, state.range(1));
  Cluster cluster(cfg);
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  std::string name =
      std::string("chain/small/") + ChainArmName(state.range(1));
  MeasureOp(state, name.c_str(), &cluster, bag, [](const auto& b) {
    auto m1 = engine::Map(b, [](const std::pair<int64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(p.first, p.second + 1);
    });
    auto f1 = engine::Filter(m1, [](const std::pair<int64_t, int64_t>& p) {
      return (p.second & 7) != 0;
    });
    auto m2 = engine::Map(f1, [](const std::pair<int64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(p.first, p.second * 3);
    });
    auto mv = engine::MapValues(m2, [](int64_t v) { return v - 1; });
    mv.Force();  // the action boundary: materialize inside the timed region
    return mv;
  });
  state.counters["fusion"] = cfg.fusion.enabled ? 1 : 0;
  state.counters["static"] = cfg.fusion.static_feeds ? 1 : 0;
}

void BM_Chain_Large(benchmark::State& state) {
  engine::ClusterConfig cfg = Config(state.range(0) != 0);
  ApplyChainArm(&cfg, state.range(1));
  Cluster cluster(cfg);
  auto bag = engine::Parallelize(&cluster, LargeData(kLargeN), kParts);
  std::string name =
      std::string("chain/large/") + ChainArmName(state.range(1));
  MeasureOp(state, name.c_str(), &cluster, bag, [](const auto& b) {
    auto m1 = engine::Map(b, [](const std::pair<int64_t, std::string>& p) {
      return std::pair<int64_t, std::string>(p.first, p.second + "y");
    });
    auto f1 =
        engine::Filter(m1, [](const std::pair<int64_t, std::string>& p) {
          return (p.first & 7) != 0;
        });
    auto m2 = engine::Map(f1, [](const std::pair<int64_t, std::string>& p) {
      return std::pair<int64_t, std::string>(p.first + 1, p.second);
    });
    auto mv = engine::MapValues(m2, [](std::string v) {
      v[0] = 'z';
      return v;
    });
    mv.Force();
    return mv;
  });
  state.counters["fusion"] = cfg.fusion.enabled ? 1 : 0;
  state.counters["static"] = cfg.fusion.static_feeds ? 1 : 0;
}

// --- Deep narrow chains: 10 composed size-preserving ops ---
//
// The deep family is where per-element dispatch cost compounds: every
// element crosses 10 op boundaries, so with type-erased feeds it pays 10
// std::function calls, while the static chain folds all 10 into one
// monomorphic loop body. All ops are size-preserving (map / mapValues), so
// the whole chain fuses into a single pass with no forced boundary.

void BM_ChainDeep_Small(benchmark::State& state) {
  engine::ClusterConfig cfg = Config(state.range(0) != 0);
  ApplyChainArm(&cfg, state.range(1));
  Cluster cluster(cfg);
  auto bag = engine::Parallelize(&cluster, SmallData(kSmallN), kParts);
  std::string name =
      std::string("chain/deep/small/") + ChainArmName(state.range(1));
  MeasureOp(state, name.c_str(), &cluster, bag, [](const auto& b) {
    using P = std::pair<int64_t, int64_t>;
    auto s1 = engine::Map(b, [](const P& p) { return P(p.first, p.second + 1); });
    auto s2 = engine::MapValues(s1, [](int64_t v) { return v * 3; });
    auto s3 = engine::Map(s2, [](const P& p) { return P(p.first ^ 1, p.second); });
    auto s4 = engine::MapValues(s3, [](int64_t v) { return v - 7; });
    auto s5 = engine::Map(s4, [](const P& p) { return P(p.first, p.second ^ p.first); });
    auto s6 = engine::MapValues(s5, [](int64_t v) { return v + 11; });
    auto s7 = engine::Map(s6, [](const P& p) { return P(p.first + 2, p.second); });
    auto s8 = engine::MapValues(s7, [](int64_t v) { return v * 5; });
    auto s9 = engine::Map(s8, [](const P& p) { return P(p.first, p.second - 13); });
    auto s10 = engine::MapValues(s9, [](int64_t v) { return v ^ 255; });
    s10.Force();
    return s10;
  });
  state.counters["fusion"] = cfg.fusion.enabled ? 1 : 0;
  state.counters["static"] = cfg.fusion.static_feeds ? 1 : 0;
}

void BM_ChainDeep_Large(benchmark::State& state) {
  engine::ClusterConfig cfg = Config(state.range(0) != 0);
  ApplyChainArm(&cfg, state.range(1));
  Cluster cluster(cfg);
  auto bag = engine::Parallelize(&cluster, LargeData(kLargeN), kParts);
  std::string name =
      std::string("chain/deep/large/") + ChainArmName(state.range(1));
  MeasureOp(state, name.c_str(), &cluster, bag, [](const auto& b) {
    using P = std::pair<int64_t, std::string>;
    auto s1 = engine::Map(b, [](const P& p) { return P(p.first + 1, p.second); });
    auto s2 = engine::MapValues(s1, [](std::string v) {
      v[0] = 'a';
      return v;
    });
    auto s3 = engine::Map(s2, [](const P& p) { return P(p.first ^ 3, p.second); });
    auto s4 = engine::MapValues(s3, [](std::string v) {
      v.back() = 'q';
      return v;
    });
    auto s5 = engine::Map(s4, [](const P& p) { return P(p.first * 2, p.second); });
    auto s6 = engine::MapValues(s5, [](std::string v) {
      v[1] = 'b';
      return v;
    });
    auto s7 = engine::Map(s6, [](const P& p) { return P(p.first - 5, p.second); });
    auto s8 = engine::MapValues(s7, [](std::string v) {
      v[2] = 'c';
      return v;
    });
    auto s9 = engine::Map(s8, [](const P& p) { return P(p.first ^ 9, p.second); });
    auto s10 = engine::MapValues(s9, [](std::string v) {
      v[3] = 'd';
      return v;
    });
    s10.Force();
    return s10;
  });
  state.counters["fusion"] = cfg.fusion.enabled ? 1 : 0;
  state.counters["static"] = cfg.fusion.static_feeds ? 1 : 0;
}

#define THROUGHPUT_ARGS                                               \
  ArgsProduct({{0, 1}})                                               \
      ->UseManualTime()                                               \
      ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Map_Small)->THROUGHPUT_ARGS;
BENCHMARK(BM_Repartition_Small)->THROUGHPUT_ARGS;
BENCHMARK(BM_PartitionByKey_Small)->THROUGHPUT_ARGS;
BENCHMARK(BM_ReduceByKey_Small)->THROUGHPUT_ARGS;
BENCHMARK(BM_GroupByKey_Small)->THROUGHPUT_ARGS;
BENCHMARK(BM_Distinct_Small)->THROUGHPUT_ARGS;
BENCHMARK(BM_RepartitionJoin_Small)->THROUGHPUT_ARGS;
BENCHMARK(BM_BroadcastJoin_Small)->THROUGHPUT_ARGS;
BENCHMARK(BM_Repartition_Large)->THROUGHPUT_ARGS;
BENCHMARK(BM_ReduceByKey_Large)->THROUGHPUT_ARGS;
BENCHMARK(BM_GroupByKey_Large)->THROUGHPUT_ARGS;
BENCHMARK(BM_Distinct_Large)->THROUGHPUT_ARGS;

// pool x budget grid for the out-of-core family.
#define BUDGET_ARGS                                                   \
  ArgsProduct({{0, 1}, {0, 1}})                                       \
      ->UseManualTime()                                               \
      ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_ShuffleGroup_Budget)->BUDGET_ARGS;

// pool x storm grid for the chaos family.
BENCHMARK(BM_ShuffleGroup_Chaos)->BUDGET_ARGS;

// pool x arm grid for the chain families (arm: 0 = fusion off,
// 1 = fused type-erased feeds, 2 = fused static feeds).
#define CHAIN_ARGS                                                    \
  ArgsProduct({{0, 1}, {0, 1, 2}})                                    \
      ->UseManualTime()                                               \
      ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Chain_Small)->CHAIN_ARGS;
BENCHMARK(BM_Chain_Large)->CHAIN_ARGS;
BENCHMARK(BM_ChainDeep_Small)->CHAIN_ARGS;
BENCHMARK(BM_ChainDeep_Large)->CHAIN_ARGS;

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
