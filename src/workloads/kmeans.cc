#include "workloads/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "baselines/baselines.h"
#include "common/logging.h"
#include "core/matryoshka.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::workloads {

namespace {

using datagen::Means;
using datagen::Point;
using engine::Bag;
using engine::Cluster;

double SquaredDistance(const Point& a, const Point& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

/// Accumulated assignment statistics of one centroid.
struct CentroidAgg {
  Point sum{};
  int64_t count = 0;
  double sq_dist_sum = 0.0;

  void Add(const CentroidAgg& o) {
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += o.sum[i];
    count += o.count;
    sq_dist_sum += o.sq_dist_sum;
  }
};

/// Per-run partial state gathered from the per-centroid aggregates; fixed
/// size so it stays trivially copyable for shuffling/size estimation.
struct PartialAggs {
  std::array<CentroidAgg, kMaxK> aggs{};
};

/// The loop state of one K-means run in the lifted program.
struct LoopState {
  std::array<Point, kMaxK> means{};
  int64_t k = 0;
  int64_t iteration = 0;
  double shift = std::numeric_limits<double>::infinity();
  double inertia = 0.0;
};

LoopState MakeInitialState(const Means& init) {
  LoopState s;
  MATRYOSHKA_CHECK(static_cast<int64_t>(init.size()) <= kMaxK);
  s.k = static_cast<int64_t>(init.size());
  for (std::size_t i = 0; i < init.size(); ++i) s.means[i] = init[i];
  return s;
}

Means StateMeans(const LoopState& s) {
  Means m(static_cast<std::size_t>(s.k));
  for (int64_t i = 0; i < s.k; ++i) m[static_cast<std::size_t>(i)] = s.means[i];
  return m;
}

std::pair<int64_t, CentroidAgg> AssignPointKeyed(const Point& p,
                                                 const LoopState& st) {
  int64_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < st.k; ++i) {
    const double d = SquaredDistance(p, st.means[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  CentroidAgg agg;
  agg.sum = p;
  agg.count = 1;
  agg.sq_dist_sum = best_d;
  return {best, agg};
}

/// Advances one run's state given the gathered per-centroid aggregates.
LoopState AdvanceState(const LoopState& st, const PartialAggs& partial) {
  LoopState next = st;
  next.iteration = st.iteration + 1;
  next.shift = 0.0;
  next.inertia = 0.0;
  for (int64_t i = 0; i < st.k; ++i) {
    const CentroidAgg& a = partial.aggs[static_cast<std::size_t>(i)];
    next.inertia += a.sq_dist_sum;
    if (a.count == 0) continue;  // empty cluster keeps its centroid
    Point updated;
    for (std::size_t d = 0; d < updated.size(); ++d) {
      updated[d] = a.sum[d] / static_cast<double>(a.count);
    }
    next.shift += std::sqrt(SquaredDistance(updated, st.means[i]));
    next.means[i] = updated;
  }
  return next;
}

bool ShouldContinue(const LoopState& st, const KMeansParams& params) {
  return st.iteration < params.max_iterations && st.shift > params.epsilon;
}

KMeansModel ModelFromState(const LoopState& st) {
  KMeansModel m;
  m.means = StateMeans(st);
  m.inertia = st.inertia;
  m.iterations = st.iteration;
  return m;
}

/// Relative UDF weight of one distance-to-k-centroids computation.
double AssignWeight(const KMeansParams& params) {
  return static_cast<double>(params.k);
}

/// One lifted K-means iteration body, shared by the grouped mode (assigned
/// via MapWithClosure over the per-run point InnerBag) and the
/// hyperparameter mode (assigned via HalfLiftedMapWithClosure over the
/// shared point bag). `assign` produces the InnerBag of (centroid, agg)
/// pairs for the current state.
template <typename AssignFn>
std::pair<core::InnerScalar<LoopState>, core::InnerScalar<bool>>
LiftedIteration(const core::LiftingContext& ctx,
                const core::InnerScalar<LoopState>& state,
                const KMeansParams& params, AssignFn assign) {
  auto assigned = assign(state);
  // Per (run, centroid) aggregation, then gather the k aggregates of each
  // run into one PartialAggs per tag.
  // Keys are the k centroid slots per run — a fixed key space, so the
  // combined aggregate is tag-sized (scale = tag scale), not data-sized.
  auto per_centroid = core::LiftedReduceByKey(
      assigned,
      [](CentroidAgg a, const CentroidAgg& b) {
        a.Add(b);
        return a;
      },
      /*weight=*/1.0, /*result_scale=*/ctx.tags().scale());
  auto partials = core::LiftedFold(
      per_centroid, PartialAggs{},
      [](const std::pair<int64_t, CentroidAgg>& p) {
        PartialAggs pa;
        pa.aggs[static_cast<std::size_t>(p.first)] = p.second;
        return pa;
      },
      [](PartialAggs a, const PartialAggs& b) {
        for (std::size_t i = 0; i < a.aggs.size(); ++i) {
          a.aggs[i].Add(b.aggs[i]);
        }
        return a;
      });
  auto next = core::BinaryScalarOp(
      state, partials,
      [](const LoopState& st, const PartialAggs& pa) {
        return AdvanceState(st, pa);
      });
  auto cond = core::UnaryScalarOp(next, [params](const LoopState& st) {
    return ShouldContinue(st, params);
  });
  return {next, cond};
}

}  // namespace

KMeansModel SequentialKMeans(const std::vector<Point>& points, Means init,
                             int64_t max_iterations, double epsilon) {
  LoopState st = MakeInitialState(init);
  while (true) {
    PartialAggs partial;
    for (const Point& p : points) {
      auto [idx, agg] = AssignPointKeyed(p, st);
      partial.aggs[static_cast<std::size_t>(idx)].Add(agg);
    }
    st = AdvanceState(st, partial);
    if (!ShouldContinue(st, KMeansParams{.k = st.k,
                                         .max_iterations = max_iterations,
                                         .epsilon = epsilon})) {
      break;
    }
  }
  return ModelFromState(st);
}

KMeansResult KMeansMatryoshka(Cluster* cluster,
                              const Bag<std::pair<int64_t, Point>>& points,
                              const KMeansParams& params,
                              core::OptimizerOptions options) {
  auto nested = core::GroupByKeyIntoNestedBag(points, options);
  // The per-run point set is tag-joined with the loop state every iteration:
  // when there are enough runs to fill the cluster, partition it by tag once
  // so those joins never re-shuffle it (with few runs the joins broadcast
  // the state instead and no pre-partitioning is needed).
  auto group_points = core::MaybePartitionByTag(nested.values());
  const uint64_t seed = params.init_seed;
  const int64_t k = params.k;
  auto init = core::UnaryScalarOp(nested.keys(), [seed, k](int64_t run) {
    return MakeInitialState(
        datagen::GenerateInitialMeans(k, seed + static_cast<uint64_t>(run)));
  });

  const double w = AssignWeight(params);
  auto final_state = core::LiftedWhileScalar(
      init,
      [&](const core::LiftingContext& ctx,
          const core::InnerScalar<LoopState>& state, int64_t) {
        return LiftedIteration(
            ctx, state, params, [&](const core::InnerScalar<LoopState>& st) {
              // Sec. 5.1 closure: every point of the run meets the run's
              // current means.
              return core::MapWithClosure(group_points, st,
                                          &AssignPointKeyed, w);
            });
      },
      params.max_iterations + 1);

  auto models =
      core::UnaryScalarOp(final_state, [](const LoopState& st) {
        return ModelFromState(st);
      });
  auto collected = engine::Collect(core::ZipWithKeys(nested.keys(), models));
  return FinishRun<int64_t, KMeansModel>(cluster, std::move(collected));
}

KMeansResult KMeansOuterParallel(Cluster* cluster,
                                 const Bag<std::pair<int64_t, Point>>& points,
                                 const KMeansParams& params) {
  // Streaming implementation: repartition by run id (one partition per
  // run), then run the sequential K-means inside mapPartitions. Unlike the
  // groupBy-based workaround of Bounce Rate / PageRank, this never
  // materializes an Array per group — points are fixed-width records that
  // can be re-streamed every iteration, and the task's live memory is just
  // the k centroids. What remains of the workaround's cost is its defining
  // one: parallelism is capped at the number of runs.
  const int64_t num_runs = engine::Count(engine::Distinct(
      engine::Keys(points)));
  auto parted = engine::PartitionByKey(points, std::max<int64_t>(1, num_runs));
  if (!cluster->ok()) {
    return FinishRun<int64_t, KMeansModel>(cluster, {});
  }

  // One sequential K-means per run, one task per partition; charge the
  // exact iteration count each run needed (iterations x points x k).
  std::vector<double> task_costs(parted.partitions().size(), 0.0);
  typename Bag<std::pair<int64_t, KMeansModel>>::Partitions out(
      parted.partitions().size());
  for (std::size_t i = 0; i < parted.partitions().size(); ++i) {
    std::unordered_map<int64_t, std::vector<Point>> groups;
    for (const auto& [run, p] : parted.partitions()[i]) {
      groups[run].push_back(p);
    }
    for (const auto& [run, pts] : groups) {
      KMeansModel model = SequentialKMeans(
          pts,
          datagen::GenerateInitialMeans(
              params.k, params.init_seed + static_cast<uint64_t>(run)),
          params.max_iterations, params.epsilon);
      task_costs[i] += cluster->ComputeCost(
          static_cast<double>(pts.size()) *
              static_cast<double>(model.iterations) * parted.scale(),
          AssignWeight(params));
      out[i].emplace_back(run, std::move(model));
    }
  }
  cluster->AccrueStage(task_costs, /*lineage_depth=*/1,
                       engine::StageContext{"kmeans[sequential-per-run]"});
  Bag<std::pair<int64_t, KMeansModel>> models(cluster, std::move(out));
  auto collected = engine::Collect(models);
  return FinishRun<int64_t, KMeansModel>(cluster, std::move(collected));
}

KMeansResult KMeansInnerParallel(Cluster* cluster,
                                 const Bag<std::pair<int64_t, Point>>& points,
                                 const KMeansParams& params) {
  std::vector<std::pair<int64_t, KMeansModel>> results;
  const double w = AssignWeight(params);
  baselines::ForEachGroupInnerParallel(
      points, [&](const int64_t& run, const Bag<Point>& group) {
        LoopState st = MakeInitialState(datagen::GenerateInitialMeans(
            params.k, params.init_seed + static_cast<uint64_t>(run)));
        while (cluster->ok()) {
          // One dataflow job per iteration: assignment + aggregation, with
          // the k partial aggregates collected to the driver.
          auto assigned = engine::Map(
              group,
              [st](const Point& p) { return AssignPointKeyed(p, st); }, w);
          auto reduced = engine::ReduceByKey(
              assigned,
              [](CentroidAgg a, const CentroidAgg& b) {
                a.Add(b);
                return a;
              },
              /*num_partitions=*/static_cast<int64_t>(params.k),
              /*weight=*/1.0, /*result_scale=*/1.0);
          auto parts = engine::Collect(reduced);
          PartialAggs partial;
          for (auto& [idx, agg] : parts) {
            partial.aggs[static_cast<std::size_t>(idx)].Add(agg);
          }
          st = AdvanceState(st, partial);
          if (!ShouldContinue(st, params)) break;
        }
        results.emplace_back(run, ModelFromState(st));
      });
  if (!cluster->ok()) results.clear();
  return FinishRun<int64_t, KMeansModel>(cluster, std::move(results));
}

KMeansResult RunKMeans(Cluster* cluster,
                       const Bag<std::pair<int64_t, Point>>& points,
                       const KMeansParams& params, Variant variant,
                       core::OptimizerOptions options) {
  switch (variant) {
    case Variant::kMatryoshka:
      return KMeansMatryoshka(cluster, points, params, options);
    case Variant::kOuterParallel:
      return KMeansOuterParallel(cluster, points, params);
    case Variant::kInnerParallel:
      return KMeansInnerParallel(cluster, points, params);
    case Variant::kDiqlLike:
      break;  // DIQL does not support control flow at inner levels (Sec. 9.1)
  }
  KMeansResult r;
  r.status = Status::Unsupported(
      "DIQL-like baseline cannot run iterative tasks (no control flow at "
      "inner nesting levels)");
  return r;
}

std::vector<std::pair<int64_t, KMeansModel>> KMeansReference(
    const std::vector<std::pair<int64_t, Point>>& points,
    const KMeansParams& params) {
  std::map<int64_t, std::vector<Point>> by_run;
  for (const auto& [run, p] : points) by_run[run].push_back(p);
  std::vector<std::pair<int64_t, KMeansModel>> out;
  out.reserve(by_run.size());
  for (const auto& [run, pts] : by_run) {
    out.emplace_back(
        run, SequentialKMeans(
                 pts,
                 datagen::GenerateInitialMeans(
                     params.k, params.init_seed + static_cast<uint64_t>(run)),
                 params.max_iterations, params.epsilon));
  }
  return out;
}

KMeansResult KMeansHyperparameterMatryoshka(Cluster* cluster,
                                            const Bag<Point>& points,
                                            int64_t num_runs,
                                            const KMeansParams& params,
                                            core::OptimizerOptions options) {
  // A bag of initial configurations, mapped with a lifted UDF (Sec. 2.3).
  std::vector<std::pair<int64_t, Means>> inits;
  inits.reserve(static_cast<std::size_t>(num_runs));
  for (int64_t r = 0; r < num_runs; ++r) {
    inits.emplace_back(r, datagen::GenerateInitialMeans(
                              params.k,
                              params.init_seed + static_cast<uint64_t>(r)));
  }
  // The configurations bag is real-sized: scale 1.
  auto init_bag = engine::Parallelize(
      cluster, inits, std::min<int64_t>(num_runs, 64), /*scale=*/1.0);

  auto result = core::MapWithLiftedUdf(
      init_bag,
      [&](const core::LiftingContext& ctx,
          const core::InnerScalar<std::pair<int64_t, Means>>& lifted_inits) {
        auto run_ids = core::UnaryScalarOp(
            lifted_inits,
            [](const std::pair<int64_t, Means>& p) { return p.first; });
        auto init_state = core::UnaryScalarOp(
            lifted_inits, [](const std::pair<int64_t, Means>& p) {
              return MakeInitialState(p.second);
            });
        const double w = AssignWeight(params);
        auto final_state = core::LiftedWhileScalar(
            init_state,
            [&](const core::LiftingContext& loop_ctx,
                const core::InnerScalar<LoopState>& state, int64_t) {
              return LiftedIteration(
                  loop_ctx, state, params,
                  [&](const core::InnerScalar<LoopState>& st) {
                    // The shared point bag lives OUTSIDE the lifted UDF; the
                    // per-run state INSIDE it: a half-lifted MapWithClosure
                    // (Sec. 8.3), i.e. a cross product with an
                    // optimizer-chosen broadcast side.
                    return core::HalfLiftedMapWithClosure(
                        points, st, &AssignPointKeyed, w);
                  });
            },
            params.max_iterations + 1);
        auto models = core::UnaryScalarOp(
            final_state, [](const LoopState& st) {
              return ModelFromState(st);
            });
        (void)ctx;
        return core::BinaryScalarOp(
            run_ids, models, [](int64_t run, const KMeansModel& m) {
              return std::pair<int64_t, KMeansModel>(run, m);
            });
      },
      options);

  auto collected = engine::Collect(result.Flatten());
  return FinishRun<int64_t, KMeansModel>(cluster, std::move(collected));
}

KMeansResult KMeansHyperparameterInnerParallel(Cluster* cluster,
                                               const Bag<Point>& points,
                                               int64_t num_runs,
                                               const KMeansParams& params) {
  std::vector<std::pair<int64_t, KMeansModel>> results;
  const double w = AssignWeight(params);
  for (int64_t run = 0; run < num_runs && cluster->ok(); ++run) {
    LoopState st = MakeInitialState(datagen::GenerateInitialMeans(
        params.k, params.init_seed + static_cast<uint64_t>(run)));
    while (cluster->ok()) {
      auto assigned = engine::Map(
          points, [st](const Point& p) { return AssignPointKeyed(p, st); },
          w);
      auto reduced = engine::ReduceByKey(
          assigned,
          [](CentroidAgg a, const CentroidAgg& b) {
            a.Add(b);
            return a;
          },
          /*num_partitions=*/static_cast<int64_t>(params.k),
          /*weight=*/1.0, /*result_scale=*/1.0);
      auto parts = engine::Collect(reduced);
      PartialAggs partial;
      for (auto& [idx, agg] : parts) {
        partial.aggs[static_cast<std::size_t>(idx)].Add(agg);
      }
      st = AdvanceState(st, partial);
      if (!ShouldContinue(st, params)) break;
    }
    results.emplace_back(run, ModelFromState(st));
  }
  if (!cluster->ok()) results.clear();
  return FinishRun<int64_t, KMeansModel>(cluster, std::move(results));
}

}  // namespace matryoshka::workloads
