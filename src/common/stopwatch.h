#ifndef MATRYOSHKA_COMMON_STOPWATCH_H_
#define MATRYOSHKA_COMMON_STOPWATCH_H_

#include <chrono>

namespace matryoshka {

/// Wall-clock stopwatch for the benchmark harness (real elapsed time; the
/// engine's *simulated* time lives in engine::Metrics).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace matryoshka

#endif  // MATRYOSHKA_COMMON_STOPWATCH_H_
