file(REMOVE_RECURSE
  "CMakeFiles/graph_components.dir/graph_components.cpp.o"
  "CMakeFiles/graph_components.dir/graph_components.cpp.o.d"
  "graph_components"
  "graph_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
