#ifndef MATRYOSHKA_ENGINE_SHUFFLE_H_
#define MATRYOSHKA_ENGINE_SHUFFLE_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "engine/bag.h"
#include "engine/external/external_group.h"
#include "engine/external/external_scatter.h"
#include "engine/ops.h"
#include "engine/parallel_shuffle.h"

/// Wide (shuffling) operators: repartitioning, keyed aggregation, grouping,
/// and duplicate elimination. Joins live in join.h.
///
/// Scale semantics: repartitioning keeps the input scale. Aggregating
/// operators (ReduceByKey, Distinct) take an optional `result_scale`: by
/// default the input scale is kept (right when the key space scales with
/// the data, e.g. visitor IPs); pass an explicit value — typically 1.0 or
/// the tag bag's scale — when the operator collapses onto a fixed key space
/// (e.g. per-(run, centroid) aggregates in lifted K-means), so the tiny
/// combined intermediate is not billed as if it were data-sized.
///
/// Lineage semantics (fault model): a shuffle is a stage boundary, so every
/// wide operator's output restarts at lineage depth 1 — after a machine
/// loss, only the narrow chain since the last shuffle is recomputed. The
/// co-partitioned ReduceByKey fast path is narrow and keeps growing the
/// depth.
namespace matryoshka::engine {

namespace internal {

inline int64_t ResolveParallelism(Cluster* c, int64_t requested) {
  // effective_parallelism == config default_parallelism until machine loss
  // with degraded re-planning on, which scales it to the surviving machines.
  return requested > 0 ? requested : c->effective_parallelism();
}

inline double ResolveScale(double requested, double input_scale) {
  return requested >= 0 ? requested : input_scale;
}

/// True when a keyed bag is already hash-partitioned on its key into
/// exactly `parts` partitions — the shuffle is then a no-op on the network.
template <typename T>
bool AlreadyKeyPartitioned(const Bag<T>& bag, int64_t parts) {
  return bag.key_partitions() == parts && bag.num_partitions() == parts;
}

/// The scatter funnel of every wide operator: the in-memory deterministic
/// kernel (parallel_shuffle.h) when the real budget is unbounded or the
/// element type is not spillable, the external spilling kernel otherwise.
/// Both produce bit-identical output (the external determinism contract);
/// the external path additionally reports its real spill totals — reduced
/// in producer order — into the cluster's real_* metrics, driver-side.
///
/// Graceful degradation (the real-fault contract): when the external
/// scatter's spill IO fails — ENOSPC, EIO through the retry budget, a
/// checksum mismatch on merge-on-read — the inputs are still untouched, so
/// with RealIoPolicy::fallback_in_memory (the default) the op re-runs on
/// the in-memory kernel, ignoring the scratch budget for this one op:
/// bit-identical output, counted in inmemory_fallbacks and logged. With the
/// fallback off, or on an injected allocation failure (falling back to
/// MORE memory use would be self-defeating), the job fails with the typed
/// Status instead.
template <typename T, typename PartOf>
std::vector<std::vector<T>> BudgetedScatter(
    Cluster* c, const std::vector<std::vector<T>>& inputs,
    std::size_t num_parts, const PartOf& part_of, const char* label) {
  if constexpr (external::kSpillable<T>) {
    if (!c->real_budget().unbounded()) {
      external::SpillStats stats;
      std::vector<std::vector<T>> out;
      const Status st = external::ExternalScatter(
          c->pool(), inputs, num_parts, part_of, c->real_budget(),
          c->failpoints(), &stats, &out);
      if (st.ok()) {
        c->NoteRealSpill(stats, label);
        return out;
      }
      const bool disk_failure =
          st.IsResourceExhausted() || st.IsIOError() || st.IsDataCorruption();
      if (disk_failure && c->failpoints()->policy().fallback_in_memory) {
        stats.inmemory_fallbacks += 1;
        c->NoteRealSpill(stats, label);
        MATRYOSHKA_LOG(kWarning)
            << label << ": spill IO failed (" << st.ToString()
            << "); re-running the scatter in memory";
        return ParallelScatter(c->pool(), inputs, num_parts, part_of);
      }
      c->NoteRealSpill(stats, label);
      c->Fail(st);
      return std::vector<std::vector<T>>(num_parts);
    }
  }
  return ParallelScatter(c->pool(), inputs, num_parts, part_of);
}

/// Per-worker byte quota for a bounded phase of `workers` parallel tasks;
/// SIZE_MAX (never spill) when unbounded.
inline std::size_t WorkerQuota(Cluster* c, std::size_t workers) {
  return c->real_budget().unbounded() ? static_cast<std::size_t>(-1)
                                      : c->real_budget().ShareFor(workers);
}

/// The keyed-reduction build shared by ReduceByKey's three loops (narrow
/// fast path, map-side combine, reduce-side merge): per input partition, an
/// insertion-ordered aggregation emitting keys in FIRST-OCCURRENCE order
/// (the canonical emission order of every keyed build, see
/// external/external_group.h) that overflows raw elements of non-admitted
/// keys to temp-file runs under the partition's static budget share. `f` is
/// applied in exact element stream order per key for any budget.
template <typename K, typename V, typename F>
std::vector<std::vector<std::pair<K, V>>> ReduceBuild(
    Cluster* c, const std::vector<std::vector<std::pair<K, V>>>& in,
    const F& f, const char* label) {
  std::vector<std::vector<std::pair<K, V>>> out(in.size());
  std::vector<external::SpillStats> stats(in.size());
  std::vector<Status> status(in.size());
  const std::size_t quota = WorkerQuota(c, in.size());
  GuardedParallelFor(c, in.size(), [&](std::size_t i) {
    auto init = [](V&& v) { return std::move(v); };
    auto absorb = [&f](V& acc, V&& v) { acc = f(acc, v); };
    auto growth = [](const V&) { return std::size_t{0}; };
    external::BoundedAggregator<K, V, V, decltype(init), decltype(absorb),
                                decltype(growth)>
        agg(quota, init, absorb, growth, &stats[i], c->failpoints(),
            /*stream_id=*/i);
    for (const auto& [k, v] : in[i]) agg.Feed(k, v);
    out[i] = agg.Finish();
    status[i] = agg.status();
  });
  external::SpillStats total;
  for (const auto& s : stats) total.Add(s);
  c->NoteRealSpill(total, label);
  // First unrecoverable build failure by ascending partition index —
  // deterministic for any pool size. (Write failures with the in-memory
  // fallback never reach here; the aggregator drained and finished.)
  for (const Status& st : status) {
    if (!st.ok()) {
      c->Fail(st);
      break;
    }
  }
  return out;
}

/// Redistributes elements into `num_parts` partitions by `part_of(elem)`.
/// Charges the map-side scan and the network shuffle, not the reduce side.
/// The data movement runs on the deterministic parallel shuffle kernel
/// (parallel_shuffle.h): bit-identical partition contents and ordering for
/// any pool size, exact-reserved output vectors via the counting pre-pass.
template <typename T, typename PartOf>
typename Bag<T>::Partitions ShuffleBy(const Bag<T>& bag, int64_t num_parts,
                                      PartOf part_of, double map_weight,
                                      const char* label = "shuffle") {
  Cluster* c = bag.cluster();
  if (!c->ok()) {
    return typename Bag<T>::Partitions(static_cast<std::size_t>(num_parts));
  }
  // Wide operators are forcing points: a pending fused chain materializes
  // (charge-free) before the shuffle's own scan + network charges.
  bag.Force();
  ChargeScanStage(bag, map_weight, label);
  c->AccrueShuffle(RealBagBytes(bag), label);
  return BudgetedScatter(c, bag.partitions(),
                         static_cast<std::size_t>(num_parts), part_of, label);
}

template <typename K>
std::size_t PartitionOfKey(const K& key, int64_t num_parts) {
  return static_cast<std::size_t>(Hasher{}(key) %
                                  static_cast<uint64_t>(num_parts));
}

/// Per-task costs of processing already-shuffled reduce-side partitions at
/// the given scale.
template <typename T>
std::vector<double> PartitionCosts(
    Cluster* c, const std::vector<std::vector<T>>& parts, double weight,
    double scale) {
  std::vector<double> costs;
  costs.reserve(parts.size());
  for (const auto& p : parts) {
    costs.push_back(
        c->ComputeCost(static_cast<double>(p.size()) * scale, weight));
  }
  return costs;
}

}  // namespace internal

/// Redistributes the bag into `num_partitions` hash partitions (by element
/// hash). A full shuffle.
template <typename T>
Bag<T> Repartition(const Bag<T>& bag, int64_t num_partitions = -1) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<T>(c);
  const int64_t parts = internal::ResolveParallelism(c, num_partitions);
  auto out = internal::ShuffleBy(
      bag, parts,
      [&](const T& x) { return internal::PartitionOfKey(x, parts); }, 0.25,
      "repartition");
  c->AccrueStage(internal::PartitionCosts(c, out, 0.1, bag.scale()),
                 /*lineage_depth=*/1, StageContext{"repartition[reduce]"});
  return Bag<T>(c, std::move(out), bag.scale());
}

/// Redistributes a bag of pairs so all elements of one key share a
/// partition. A full shuffle.
template <typename K, typename V>
Bag<std::pair<K, V>> PartitionByKey(const Bag<std::pair<K, V>>& bag,
                                    int64_t num_partitions = -1) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<std::pair<K, V>>(c);
  const int64_t parts = internal::ResolveParallelism(c, num_partitions);
  // Metadata-only no-op when already co-partitioned (charge-free in the
  // eager engine too); a pending key-preserving chain stays pending.
  if (internal::AlreadyKeyPartitioned(bag, parts)) return bag;
  auto out = internal::ShuffleBy(
      bag, parts,
      [&](const std::pair<K, V>& x) {
        return internal::PartitionOfKey(x.first, parts);
      },
      0.25, "partitionByKey");
  c->AccrueStage(internal::PartitionCosts(c, out, 0.1, bag.scale()),
                 /*lineage_depth=*/1, StageContext{"partitionByKey[reduce]"});
  return Bag<std::pair<K, V>>(c, std::move(out), bag.scale(), parts);
}

/// Merges the values of each key with the associative, commutative `f`.
///
/// Does map-side combining (like Spark's reduceByKey): only one combined
/// value per (partition, key) crosses the shuffle, so memory on the reduce
/// side is bounded by the number of distinct keys, not the input size.
/// See the header comment for `result_scale`.
template <typename K, typename V, typename F>
Bag<std::pair<K, V>> ReduceByKey(const Bag<std::pair<K, V>>& bag, F f,
                                 int64_t num_partitions = -1,
                                 double weight = 1.0,
                                 double result_scale = -1.0) {
  using KV = std::pair<K, V>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<KV>(c);
  // Forcing point (both the narrow fast path and the shuffle path execute
  // on materialized partitions).
  bag.Force();
  const int64_t parts = internal::ResolveParallelism(c, num_partitions);
  const double out_scale = internal::ResolveScale(result_scale, bag.scale());

  if (internal::AlreadyKeyPartitioned(bag, parts)) {
    // Co-partitioned input: the whole reduction is map-side; no shuffle.
    // This path is narrow, so lineage keeps growing.
    internal::ChargeScanStage(bag, weight, "reduceByKey[narrow]");
    typename Bag<KV>::Partitions out = internal::ReduceBuild<K, V>(
        c, bag.partitions(), f, "reduceByKey[narrow]");
    return internal::MaybeAutoCheckpoint(
        Bag<KV>(c, std::move(out), out_scale, parts, bag.lineage_depth() + 1));
  }

  // Map side: per-partition combine at the input scale.
  internal::ChargeScanStage(bag, weight, "reduceByKey[combine]");
  typename Bag<KV>::Partitions combined = internal::ReduceBuild<K, V>(
      c, bag.partitions(), f, "reduceByKey[combine]");
  // The combined intermediate lives at the RESULT scale: when the key space
  // is fixed, combining saturates in the real run just as it does here.
  Bag<KV> combined_bag(c, std::move(combined), out_scale);

  // Shuffle the combined data, then reduce-side merge. The scatter runs on
  // the deterministic parallel kernel with exact-reserved buckets.
  c->AccrueShuffle(RealBagBytes(combined_bag), "reduceByKey");
  typename Bag<KV>::Partitions shuffled = internal::BudgetedScatter(
      c, combined_bag.partitions(), static_cast<std::size_t>(parts),
      [&](const KV& kv) {
        return internal::PartitionOfKey(kv.first, parts);
      },
      "reduceByKey");
  const double spill =
      c->SpillFactor(RealBagBytes(combined_bag) /
                     static_cast<double>(c->planning_machines()));
  auto costs = internal::PartitionCosts(c, shuffled, weight, out_scale);
  for (auto& cost : costs) cost *= spill;
  c->AccrueStage(costs, /*lineage_depth=*/1,
                 StageContext{"reduceByKey[merge]", spill});

  typename Bag<KV>::Partitions out =
      internal::ReduceBuild<K, V>(c, shuffled, f, "reduceByKey[merge]");
  return Bag<KV>(c, std::move(out), out_scale, parts);
}

/// Collects all values of each key into one in-memory group
/// (Bag[(K, Array[V])] in the paper's notation).
///
/// No map-side combining is possible, so the *whole group* must materialize
/// inside a single reduce task: the cost model checks every group (scaled by
/// `group_expansion`, the working-set multiplier of whatever will process
/// the group in the same task) against the per-task memory budget and fails
/// with OutOfMemory when one does not fit. This is precisely the mechanism
/// that breaks the outer-parallel workaround on big or skewed groups.
///
/// The output bag keeps the input scale: group *contents* scale with the
/// data even though the number of groups usually does not.
template <typename K, typename V>
Bag<std::pair<K, std::vector<V>>> GroupByKey(const Bag<std::pair<K, V>>& bag,
                                             int64_t num_partitions = -1,
                                             double group_expansion = 1.0) {
  using KG = std::pair<K, std::vector<V>>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<KG>(c);
  const int64_t parts = internal::ResolveParallelism(c, num_partitions);
  auto shuffled = internal::ShuffleBy(
      bag, parts,
      [&](const std::pair<K, V>& x) {
        return internal::PartitionOfKey(x.first, parts);
      },
      0.25, "groupByKey");
  const double spill = c->SpillFactor(
      RealBagBytes(bag) / static_cast<double>(c->planning_machines()));
  auto costs = internal::PartitionCosts(c, shuffled, 0.5, bag.scale());
  for (auto& cost : costs) cost *= spill;
  c->AccrueStage(costs, /*lineage_depth=*/1,
                 StageContext{"groupByKey[group]", spill});

  // Group build, parallel across reduce partitions, emitting groups in
  // first-occurrence key order (the canonical keyed-build order; see
  // external/external_group.h). Under a real memory budget the build spills
  // raw elements of non-admitted keys and re-feeds them in later passes —
  // group contents stay in exact arrival order for any budget. Each
  // partition tracks its own largest group; the driver reduces the
  // per-partition maxima so the memory check stays independent of execution
  // order.
  typename Bag<KG>::Partitions out(static_cast<std::size_t>(parts));
  std::vector<double> max_bytes(shuffled.size(), 0.0);
  std::vector<external::SpillStats> spill_stats(shuffled.size());
  std::vector<Status> build_status(shuffled.size());
  const std::size_t quota = internal::WorkerQuota(c, shuffled.size());
  internal::GuardedParallelFor(c, shuffled.size(), [&](std::size_t i) {
    auto init = [](V&& v) {
      std::vector<V> g;
      g.push_back(std::move(v));
      return g;
    };
    auto absorb = [](std::vector<V>& g, V&& v) { g.push_back(std::move(v)); };
    auto growth = [](const V& v) { return EstimateSize(v); };
    external::BoundedAggregator<K, V, std::vector<V>, decltype(init),
                                decltype(absorb), decltype(growth)>
        agg(quota, init, absorb, growth, &spill_stats[i], c->failpoints(),
            /*stream_id=*/i);
    for (auto& [k, v] : shuffled[i]) agg.Feed(k, std::move(v));
    out[i] = agg.Finish();
    build_status[i] = agg.status();
    for (const auto& [k, vs] : out[i]) {
      // Sample-estimate the group footprint.
      double bytes = static_cast<double>(sizeof(KG));
      if (!vs.empty()) {
        bytes += EstimateSize(vs.front()) * static_cast<double>(vs.size());
      }
      max_bytes[i] = std::max(max_bytes[i], bytes);
    }
  });
  external::SpillStats group_spill;
  for (const auto& s : spill_stats) group_spill.Add(s);
  c->NoteRealSpill(group_spill, "groupByKey[group]");
  for (const Status& st : build_status) {
    if (!st.ok()) {
      c->Fail(st);
      return Bag<KG>(c);
    }
  }
  double max_group_bytes = 0.0;
  for (double b : max_bytes) max_group_bytes = std::max(max_group_bytes, b);
  c->CheckTaskMemory(max_group_bytes * bag.scale() * group_expansion,
                     "groupByKey");
  if (!c->ok()) return Bag<KG>(c);
  return Bag<KG>(c, std::move(out), bag.scale(), parts);
}

/// Removes duplicate elements (shuffle by element, then per-partition
/// dedup). Requires std::hash-able, equality-comparable elements. See the
/// header comment for `result_scale` (e.g. 1.0 when deduplicating onto a
/// fixed key space such as the grouping keys of an experiment's x-axis).
template <typename T>
Bag<T> Distinct(const Bag<T>& bag, int64_t num_partitions = -1,
                double result_scale = -1.0) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<T>(c);
  bag.Force();  // forcing point
  const int64_t parts = internal::ResolveParallelism(c, num_partitions);
  const double out_scale = internal::ResolveScale(result_scale, bag.scale());

  // Map-side pre-dedup keeps the shuffle volume at one copy per distinct
  // value per partition (Spark implements distinct via reduceByKey).
  internal::ChargeScanStage(bag, 0.5, "distinct[pre]");
  typename Bag<T>::Partitions pre(bag.partitions().size());
  internal::GuardedParallelFor(c, bag.partitions().size(), [&](std::size_t i) {
    std::unordered_set<T, Hasher> seen;
    seen.reserve(bag.partitions()[i].size());
    for (const auto& x : bag.partitions()[i]) {
      if (seen.insert(x).second) pre[i].push_back(x);
    }
  });
  Bag<T> pre_bag(c, std::move(pre), out_scale);

  c->AccrueShuffle(RealBagBytes(pre_bag), "distinct");
  typename Bag<T>::Partitions shuffled = internal::BudgetedScatter(
      c, pre_bag.partitions(), static_cast<std::size_t>(parts),
      [&](const T& x) { return internal::PartitionOfKey(x, parts); },
      "distinct");
  const double spill =
      c->SpillFactor(RealBagBytes(pre_bag) /
                     static_cast<double>(c->planning_machines()));
  auto costs = internal::PartitionCosts(c, shuffled, 0.5, out_scale);
  for (auto& cost : costs) cost *= spill;
  c->AccrueStage(costs, /*lineage_depth=*/1,
                 StageContext{"distinct[dedup]", spill});

  typename Bag<T>::Partitions out(static_cast<std::size_t>(parts));
  internal::GuardedParallelFor(c, shuffled.size(), [&](std::size_t i) {
    std::unordered_set<T, Hasher> seen;
    seen.reserve(shuffled[i].size());
    for (const auto& x : shuffled[i]) {
      if (seen.insert(x).second) out[i].push_back(x);
    }
  });
  return Bag<T>(c, std::move(out), out_scale);
}

}  // namespace matryoshka::engine

#endif  // MATRYOSHKA_ENGINE_SHUFFLE_H_
