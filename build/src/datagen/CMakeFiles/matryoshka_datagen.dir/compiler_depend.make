# Empty compiler generated dependencies file for matryoshka_datagen.
# This may be replaced when dependencies are built.
