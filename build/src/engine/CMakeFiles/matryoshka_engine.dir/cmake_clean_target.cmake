file(REMOVE_RECURSE
  "libmatryoshka_engine.a"
)
