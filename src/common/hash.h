#ifndef MATRYOSHKA_COMMON_HASH_H_
#define MATRYOSHKA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <utility>

namespace matryoshka {

/// 64-bit mix (splitmix64 finalizer). Used to turn std::hash outputs into
/// well-distributed partition assignments: libstdc++'s std::hash for integers
/// is the identity, which would send consecutive keys to consecutive
/// partitions and hide shuffle skew.
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::size_t HashCombine(std::size_t seed, std::size_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash functor covering the key types the engine shuffles on: anything with
/// a std::hash specialization, plus pairs and tuples of such types.
struct Hasher {
  template <typename T>
  std::size_t operator()(const T& v) const {
    return Mix64(std::hash<T>{}(v));
  }

  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine((*this)(p.first), (*this)(p.second));
  }

  template <typename... Ts>
  std::size_t operator()(const std::tuple<Ts...>& t) const {
    std::size_t seed = 0x12345678u;
    std::apply(
        [&](const Ts&... xs) { ((seed = HashCombine(seed, (*this)(xs))), ...); },
        t);
    return seed;
  }
};

}  // namespace matryoshka

#endif  // MATRYOSHKA_COMMON_HASH_H_
