# Empty dependencies file for matryoshka_engine.
# This may be replaced when dependencies are built.
