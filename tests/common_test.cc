// Unit tests for src/common: Status/Result, RNG and Zipf sampling, the
// thread pool, size estimation, and hashing.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/sizing.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace matryoshka {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::OutOfMemory("broadcast too large");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(s.message(), "broadcast too large");
  EXPECT_EQ(s.ToString(), "Out of memory: broadcast too large");
}

TEST(StatusTest, CopyPreservesError) {
  Status s = Status::InvalidArgument("bad k");
  Status t = s;
  EXPECT_TRUE(t.IsInvalidArgument());
  EXPECT_EQ(t.message(), "bad k");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, FactoryCodesMatchPredicates) {
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfMemory("oom");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfMemory());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnNotOk(int x) {
  MATRYOSHKA_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnNotOk(1).ok());
  EXPECT_TRUE(UseReturnNotOk(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MATRYOSHKA_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.Next64(), b.Next64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(17);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(ZipfTest, SkewedRanksDecrease) {
  ZipfSampler zipf(16, 1.2);
  Rng rng(19);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(rng)]++;
  // Rank 0 dominates and counts broadly decrease with rank.
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], 3 * counts[8]);
  EXPECT_GT(counts[1], counts[10]);
}

TEST(ZipfTest, TheoreticalHeadProbability) {
  const double s = 1.0;
  const uint64_t n = 8;
  ZipfSampler zipf(n, s);
  Rng rng(23);
  double h = 0;
  for (uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  const double expected_p0 = 1.0 / h;
  int c0 = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (zipf.Sample(rng) == 0) c0++;
  }
  EXPECT_NEAR(static_cast<double>(c0) / trials, expected_p0, 0.02);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleElement) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&](std::size_t) { calls++; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the calling thread — no synchronization needed.
  ParallelFor(&pool, 1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitAcceptsMoveOnlyTasks) {
  ThreadPool pool(2);
  auto value = std::make_unique<int>(41);
  std::atomic<int> result{0};
  pool.Submit([v = std::move(value), &result] { result.store(*v + 1); });
  pool.WaitIdle();
  EXPECT_EQ(result.load(), 42);
}

TEST(ThreadPoolTest, ParallelForIsReentrant) {
  // The calling thread participates in the loop, so a body that itself calls
  // ParallelFor on the same pool must complete even when every worker is
  // busy — the contract the engine relies on for nested scatter phases.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64 * 8);
  ParallelFor(&pool, 64, [&](std::size_t i) {
    ParallelFor(&pool, 8, [&](std::size_t j) { hits[i * 8 + j]++; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForManyMoreIndicesThanThreads) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10007);
  ParallelFor(&pool, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SizingTest, TrivialTypes) {
  EXPECT_EQ(EstimateSize(int64_t{5}), sizeof(int64_t));
  EXPECT_EQ(EstimateSize(3.14), sizeof(double));
}

TEST(SizingTest, PairsAndTuples) {
  std::pair<int64_t, double> p{1, 2.0};
  EXPECT_EQ(EstimateSize(p), sizeof(int64_t) + sizeof(double));
  std::tuple<int32_t, int64_t, double> t{1, 2, 3.0};
  EXPECT_EQ(EstimateSize(t), sizeof(int32_t) + sizeof(int64_t) + sizeof(double));
}

TEST(SizingTest, StringsIncludeCapacity) {
  std::string s(100, 'x');
  EXPECT_GE(EstimateSize(s), sizeof(std::string) + 100);
}

TEST(SizingTest, VectorsOfTrivial) {
  std::vector<int64_t> v(10);
  EXPECT_GE(EstimateSize(v), sizeof(v) + 10 * sizeof(int64_t));
}

TEST(SizingTest, NestedVectors) {
  std::vector<std::vector<int64_t>> v(3, std::vector<int64_t>(4));
  EXPECT_GE(EstimateSize(v), 12 * sizeof(int64_t));
}

TEST(HashTest, MixedIntegersSpread) {
  // Consecutive integers must not map to consecutive hashes.
  Hasher h;
  std::set<std::size_t> lows;
  for (int64_t i = 0; i < 64; ++i) lows.insert(h(i) % 64);
  // A perfectly sequential hash would land all 64 in 64 distinct slots
  // in-order; a mixed hash also spreads but collisions are fine. Check it
  // is not the identity pattern.
  bool identity = true;
  for (int64_t i = 0; i < 64; ++i) {
    if (h(i) % 64 != static_cast<std::size_t>(i)) {
      identity = false;
      break;
    }
  }
  EXPECT_FALSE(identity);
}

TEST(HashTest, PairAndTupleConsistency) {
  Hasher h;
  std::pair<int64_t, int64_t> a{1, 2}, b{1, 2}, c{2, 1};
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));
  std::tuple<int64_t, int64_t> ta{1, 2}, tc{2, 1};
  EXPECT_NE(h(ta), h(tc));
}

}  // namespace
}  // namespace matryoshka
