file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_scale_out.dir/bench_fig4_scale_out.cc.o"
  "CMakeFiles/bench_fig4_scale_out.dir/bench_fig4_scale_out.cc.o.d"
  "bench_fig4_scale_out"
  "bench_fig4_scale_out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scale_out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
