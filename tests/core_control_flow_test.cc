// Tests for lifted control flow (Sec. 6): lifted while loops where
// different inner computations exit at different iterations, and lifted if
// statements where different tags take different branches.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/matryoshka.h"

namespace matryoshka::core {
namespace {

using engine::Bag;
using engine::Cluster;
using engine::ClusterConfig;
using engine::Parallelize;

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

class ControlFlowTest : public ::testing::Test {
 protected:
  ControlFlowTest() : cluster_(TestConfig()) {}
  Cluster cluster_;
};

TEST_F(ControlFlowTest, LiftedWhileScalarLoopsUntilPerTagCondition) {
  // Each tag t starts at value v and doubles until >= 100. Different tags
  // finish at different iterations.
  auto params = Parallelize(&cluster_, std::vector<int64_t>{1, 5, 60}, 2);
  auto init = LiftFlatBag(params);
  auto result = LiftedWhileScalar(
      init, [](const LiftingContext& ctx, const InnerScalar<int64_t>& s,
               int64_t iter) {
        (void)ctx;
        (void)iter;
        auto next = UnaryScalarOp(s, [](int64_t x) { return 2 * x; });
        auto cond = UnaryScalarOp(next, [](int64_t x) { return x < 100; });
        return std::make_pair(next, cond);
      });
  auto v = result.Flatten().ToVector();
  std::sort(v.begin(), v.end());
  // 1 -> 128, 5 -> 160, 60 -> 120.
  EXPECT_EQ(v, (std::vector<int64_t>{120, 128, 160}));
}

TEST_F(ControlFlowTest, LiftedWhileResultHasAllOriginalTags) {
  auto params = Parallelize(&cluster_, std::vector<int64_t>{1, 2, 3, 4}, 2);
  auto init = LiftFlatBag(params);
  auto result = LiftedWhileScalar(
      init, [](const LiftingContext&, const InnerScalar<int64_t>& s,
               int64_t) {
        auto next = UnaryScalarOp(s, [](int64_t x) { return x + 1; });
        auto cond = UnaryScalarOp(next, [](int64_t x) { return x < 5; });
        return std::make_pair(next, cond);
      });
  EXPECT_EQ(result.repr().Size(), 4);
  EXPECT_EQ(result.ctx().num_tags(), 4);  // result context is the full one
}

TEST_F(ControlFlowTest, LiftedWhileZeroIterationsBodyStillRunsOnce) {
  // A do-while: the body executes at least once (Listing 4 is a do-while).
  auto params = Parallelize(&cluster_, std::vector<int64_t>{10}, 1);
  auto init = LiftFlatBag(params);
  int body_runs = 0;
  auto result = LiftedWhileScalar(
      init, [&](const LiftingContext&, const InnerScalar<int64_t>& s,
                int64_t) {
        ++body_runs;
        auto next = UnaryScalarOp(s, [](int64_t x) { return x + 1; });
        auto cond = UnaryScalarOp(next, [](int64_t) { return false; });
        return std::make_pair(next, cond);
      });
  EXPECT_EQ(body_runs, 1);
  EXPECT_EQ(result.Flatten().ToVector(), (std::vector<int64_t>{11}));
}

TEST_F(ControlFlowTest, LiftedWhileNarrowsContextAsLoopsFinish) {
  // Tags finish one per iteration; the body must see a shrinking tag count.
  auto params =
      Parallelize(&cluster_, std::vector<int64_t>{1, 2, 3}, 2);
  auto init = LiftFlatBag(params);
  std::vector<int64_t> seen_sizes;
  LiftedWhileScalar(
      init, [&](const LiftingContext& ctx, const InnerScalar<int64_t>& s,
                int64_t) {
        seen_sizes.push_back(ctx.num_tags());
        auto next = UnaryScalarOp(s, [](int64_t x) { return x - 1; });
        auto cond = UnaryScalarOp(next, [](int64_t x) { return x > 0; });
        return std::make_pair(next, cond);
      });
  EXPECT_EQ(seen_sizes, (std::vector<int64_t>{3, 2, 1}));
}

TEST_F(ControlFlowTest, LiftedWhileChargesOneJobPerIterationNotPerTag) {
  // 16 inner computations, each looping 5 iterations: job count must track
  // iterations (5-ish), NOT 16 * 5. This is the crux of Matryoshka's win
  // over the inner-parallel workaround.
  std::vector<int64_t> params(16);
  for (int i = 0; i < 16; ++i) params[i] = 5;
  auto bag = Parallelize(&cluster_, params, 4);
  auto init = LiftFlatBag(bag);
  cluster_.Reset();
  LiftedWhileScalar(init, [](const LiftingContext&,
                             const InnerScalar<int64_t>& s, int64_t) {
    auto next = UnaryScalarOp(s, [](int64_t x) { return x - 1; });
    auto cond = UnaryScalarOp(next, [](int64_t x) { return x > 0; });
    return std::make_pair(next, cond);
  });
  EXPECT_GT(cluster_.metrics().jobs, 0);
  EXPECT_LE(cluster_.metrics().jobs, 6);
}

TEST_F(ControlFlowTest, LiftedWhileOnInnerBagState) {
  // Each group's bag of numbers is decremented until all of the group's
  // numbers are <= 0; groups have different starting maxima.
  std::vector<std::pair<int64_t, int64_t>> data{
      {1, 2}, {1, 1}, {2, 4}};
  auto nested = GroupByKeyIntoNestedBag(Parallelize(&cluster_, data, 2));
  auto result = LiftedWhile(
      nested.values(),
      [](const LiftingContext& ctx, const InnerBag<int64_t>& state,
         int64_t) {
        auto next = LiftedMap(state, [](int64_t x) { return x - 1; });
        auto maxes = LiftedReduce(
            next, [](int64_t a, int64_t b) { return std::max(a, b); });
        auto cond = UnaryScalarOp(maxes, [](int64_t m) { return m > 0; });
        (void)ctx;
        return std::make_pair(next, cond);
      });
  // Group 1 loops twice: {2,1} -> {1,0} -> {0,-1}. Group 2 loops 4 times:
  // {4} -> ... -> {0}.
  auto counts = LiftedCount(result);
  auto keyed = ZipWithKeys(nested.keys(), counts).ToVector();
  std::map<int64_t, int64_t> m(keyed.begin(), keyed.end());
  EXPECT_EQ(m[1], 2);
  EXPECT_EQ(m[2], 1);
  auto values = result.Flatten().ToVector();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int64_t>{-1, 0, 0}));
}

TEST_F(ControlFlowTest, LiftedWhileMaxIterationsGuard) {
  auto params = Parallelize(&cluster_, std::vector<int64_t>{1}, 1);
  auto init = LiftFlatBag(params);
  LiftedWhileScalar(
      init,
      [](const LiftingContext&, const InnerScalar<int64_t>& s, int64_t) {
        auto next = UnaryScalarOp(s, [](int64_t x) { return x; });
        auto cond = UnaryScalarOp(next, [](int64_t) { return true; });
        return std::make_pair(next, cond);
      },
      /*max_iterations=*/10);
  EXPECT_FALSE(cluster_.ok());
  EXPECT_EQ(cluster_.status().code(), StatusCode::kCancelled);
}

TEST_F(ControlFlowTest, LiftedIfScalarRoutesTagsByCondition) {
  auto params =
      Parallelize(&cluster_, std::vector<int64_t>{1, 2, 3, 4}, 2);
  auto input = LiftFlatBag(params);
  auto cond = UnaryScalarOp(input, [](int64_t x) { return x % 2 == 0; });
  auto result = LiftedIfScalar(
      cond, input,
      [](const InnerScalar<int64_t>& evens) {
        return UnaryScalarOp(evens, [](int64_t x) { return x * 100; });
      },
      [](const InnerScalar<int64_t>& odds) {
        return UnaryScalarOp(odds, [](int64_t x) { return -x; });
      });
  auto v = result.Flatten().ToVector();
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int64_t>{-3, -1, 200, 400}));
}

TEST_F(ControlFlowTest, LiftedIfBranchesSeeOnlyTheirTags) {
  auto params = Parallelize(&cluster_, std::vector<int64_t>{1, 2}, 2);
  auto input = LiftFlatBag(params);
  auto cond = UnaryScalarOp(input, [](int64_t x) { return x == 1; });
  int64_t then_tags = -1, else_tags = -1;
  LiftedIfScalar(
      cond, input,
      [&](const InnerScalar<int64_t>& s) {
        then_tags = s.ctx().num_tags();
        return s;
      },
      [&](const InnerScalar<int64_t>& s) {
        else_tags = s.ctx().num_tags();
        return s;
      });
  EXPECT_EQ(then_tags, 1);
  EXPECT_EQ(else_tags, 1);
}

TEST_F(ControlFlowTest, LiftedIfOnInnerBags) {
  // Groups with even counts double their elements; odd-count groups negate.
  std::vector<std::pair<int64_t, int64_t>> data{
      {1, 5}, {1, 6}, {2, 7}};
  auto nested = GroupByKeyIntoNestedBag(Parallelize(&cluster_, data, 2));
  auto counts = LiftedCount(nested.values());
  auto cond = UnaryScalarOp(counts, [](int64_t c) { return c % 2 == 0; });
  auto result = LiftedIf(
      cond, nested.values(),
      [](const InnerBag<int64_t>& b) {
        return LiftedMap(b, [](int64_t x) { return 2 * x; });
      },
      [](const InnerBag<int64_t>& b) {
        return LiftedMap(b, [](int64_t x) { return -x; });
      });
  auto v = result.Flatten().ToVector();
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int64_t>{-7, 10, 12}));
}

TEST_F(ControlFlowTest, IterativeComputationInsideLiftedIf) {
  // Compositionality: a lifted while nested inside a lifted if branch.
  auto params = Parallelize(&cluster_, std::vector<int64_t>{3, 50}, 2);
  auto input = LiftFlatBag(params);
  auto cond = UnaryScalarOp(input, [](int64_t x) { return x < 10; });
  auto result = LiftedIfScalar(
      cond, input,
      [](const InnerScalar<int64_t>& small) {
        // Double until >= 10.
        return LiftedWhileScalar(
            small, [](const LiftingContext&, const InnerScalar<int64_t>& s,
                      int64_t) {
              auto next = UnaryScalarOp(s, [](int64_t x) { return 2 * x; });
              auto cond2 =
                  UnaryScalarOp(next, [](int64_t x) { return x < 10; });
              return std::make_pair(next, cond2);
            });
      },
      [](const InnerScalar<int64_t>& big) { return big; });
  auto v = result.Flatten().ToVector();
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int64_t>{12, 50}));
}

}  // namespace
}  // namespace matryoshka::core
