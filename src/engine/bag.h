#ifndef MATRYOSHKA_ENGINE_BAG_H_
#define MATRYOSHKA_ENGINE_BAG_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/sizing.h"
#include "common/thread_pool.h"
#include "engine/cluster.h"

namespace matryoshka::engine {

/// An immutable, partitioned, unordered collection — the engine's dataset
/// abstraction (the paper's Bag; an RDD in Spark terms).
///
/// A Bag is a cheap handle: copies share the underlying partitions. All
/// operators live in ops.h as free functions; a Bag only carries data, its
/// partitioning, its Cluster, and its `scale`.
///
/// `scale` is the cost-model magnification: how many "real" elements each
/// synthetic element stands for. Freshly loaded data gets
/// ClusterConfig::data_scale; element-wise operators propagate the scale;
/// operators that collapse to a fixed key space (per-tag aggregates, the
/// bags representing InnerScalars) produce scale-1 bags because their
/// synthetic cardinality equals the real one. All time/network/memory
/// charges multiply element counts and byte estimates by the bag's scale.
///
/// With fusion on (ClusterConfig::fusion, the default) a Bag may instead
/// hold a *pending pipeline*: a shared handle to an upstream materialized
/// bag plus the composed per-element transform chain of every narrow
/// operator applied since. Narrow ops on a pending bag compose instead of
/// executing; `Force()` (called by every wide operator, every action,
/// Checkpoint, and automatically by `partitions()`) materializes the chain
/// in one fused pass per partition. Pending bags carry tracked per-partition
/// cardinalities so the cost model can be charged at composition time
/// without materializing — bit-identical to the eager path (see DESIGN.md,
/// "Fusion contract").
template <typename T>
class Bag {
 public:
  using Element = T;
  using Partitions = std::vector<std::vector<T>>;
  /// Consumes one element of a pending chain's per-partition output stream.
  using Sink = std::function<void(T&&)>;
  /// Streams partition `p` of a pending chain into `emit`, applying every
  /// composed narrow transform on the fly (built by ops.h / extra_ops.h).
  using Feed = std::function<void(std::size_t p, const Sink& emit)>;
  /// Optional fast-path twin of `Feed` used by Force(): materializes
  /// partition `p` of the chain directly into `dst`. Set when the chain has
  /// a static (expression-template) representation — see fused_feed.h —
  /// whose whole pipeline runs as one monomorphic loop behind this single
  /// erased call per partition (instead of one erased call per element).
  using Run = std::function<void(std::size_t p, std::vector<T>& dst)>;

  /// An empty bag with zero partitions (the result of operators that ran
  /// after the cluster entered a failed state).
  explicit Bag(Cluster* cluster)
      : cluster_(cluster), parts_(std::make_shared<const Partitions>()) {}

  Bag(Cluster* cluster, Partitions parts, double scale = 1.0,
      int64_t key_partitions = 0, int lineage_depth = 1)
      : cluster_(cluster),
        parts_(std::make_shared<const Partitions>(std::move(parts))),
        scale_(scale),
        key_partitions_(key_partitions),
        lineage_depth_(lineage_depth) {}

  /// A deferred bag: `feed` streams each output partition by pulling from a
  /// captured upstream source and applying the composed transform chain.
  /// `counts` tracks the per-partition output cardinality — exact when
  /// `counts_exact` (size-preserving chain), an upper bound when only
  /// `counts_bounded` (filter-terminated chain), partition count only
  /// otherwise. `chain_ops` is the number of composed narrow ops (the fusion
  /// depth knob compares against it). Built by ops.h / extra_ops.h; the cost
  /// model was already charged by the composing operator.
  static Bag<T> Deferred(Cluster* cluster, Feed feed,
                         std::vector<std::size_t> counts, bool counts_exact,
                         bool counts_bounded, int chain_ops, double scale,
                         int64_t key_partitions, int lineage_depth,
                         Run run = nullptr) {
    Bag<T> out(cluster);
    out.parts_.reset();
    auto pending = std::make_shared<PendingState>();
    pending->feed = std::move(feed);
    pending->run = std::move(run);
    pending->counts = std::move(counts);
    pending->exact = counts_exact;
    pending->bounded = counts_bounded;
    pending->chain_ops = chain_ops;
    out.pending_ = std::move(pending);
    out.scale_ = scale;
    out.key_partitions_ = key_partitions;
    out.lineage_depth_ = lineage_depth;
    return out;
  }

  Cluster* cluster() const { return cluster_; }

  /// True while this bag is an unmaterialized fused chain.
  bool pending() const { return pending_ != nullptr; }

  /// Composed narrow ops in the pending chain (0 once materialized).
  int pending_chain_ops() const {
    return pending_ != nullptr ? pending_->chain_ops : 0;
  }

  /// True when the tracked per-partition cardinalities are exact (always
  /// true for materialized bags). A pending chain with inexact counts is a
  /// forced boundary: the next narrow op materializes it before composing.
  bool counts_exact() const {
    return pending_ == nullptr || pending_->exact;
  }

  /// The pending chain's stream; only valid while pending().
  const Feed& pending_feed() const {
    MATRYOSHKA_DCHECK(pending_ != nullptr);
    return pending_->feed;
  }

  /// True when this handle is still pending but a sibling handle already
  /// forced the shared chain state: the memoized result exists and Force()
  /// on this handle is a free pointer flip. Composing consumers check this
  /// to reuse the shared materialization instead of copying the pending
  /// `std::function` chain.
  bool pending_materialized() const {
    return pending_ != nullptr && pending_->materialized != nullptr;
  }

  /// Materializes any pending chain in ONE fused pass per partition: the
  /// whole composed transform runs per element and the output vector is
  /// reserved exactly for size-preserving chains (the tracked counts play
  /// the role of parallel_shuffle.h's counting pre-pass) or to the input
  /// upper bound for filter-terminated chains. Memoized in the chain state
  /// shared across Bag copies, so sibling handles force at most once. No-op
  /// on materialized bags. Charges NOTHING: every composed op already
  /// charged its scan stage, lineage, and auto-checkpoint probe at
  /// composition time. Must be called from the driver thread (it runs the
  /// pass on the cluster pool itself, and the chain memoization is not
  /// thread-safe); a violation CHECK-fails with an actionable message
  /// instead of racing (Cluster::CheckDriverThread).
  void Force() const {
    if (pending_ == nullptr) return;
    cluster_->CheckDriverThread("Bag::Force()");
    if (pending_->materialized == nullptr) {
      const PendingState& chain = *pending_;
      auto out = std::make_shared<Partitions>(chain.counts.size());
      // Guarded: a throwing fused UDF fails this program with a typed
      // status (the partially built output is void behind the sticky
      // failure) instead of terminating the process.
      internal::GuardedParallelFor(cluster_, out->size(), [&](std::size_t i) {
        std::vector<T>& dst = (*out)[i];
        if (chain.bounded) dst.reserve(chain.counts[i]);
        if (chain.run != nullptr) {
          // Static chain: the whole fused pipeline runs as one monomorphic
          // loop pushing straight into dst (fused_feed.h).
          chain.run(i, dst);
        } else {
          chain.feed(i, [&dst](T&& x) { dst.push_back(std::move(x)); });
        }
      });
      pending_->materialized = std::move(out);
    }
    parts_ = pending_->materialized;
    pending_.reset();
  }

  /// Materialized partitions; forces a pending chain first.
  const Partitions& partitions() const {
    Force();
    return *parts_;
  }

  /// The materialized partitions as a shared handle (forces). Lets fused
  /// feeds keep the upstream data alive without copying it.
  std::shared_ptr<const Partitions> shared_partitions() const {
    Force();
    return parts_;
  }

  int64_t num_partitions() const {
    return pending_ != nullptr ? static_cast<int64_t>(pending_->counts.size())
                               : static_cast<int64_t>(parts_->size());
  }

  /// Per-partition synthetic cardinalities. Pending chains with exact
  /// tracked counts answer from metadata without forcing (this is what lets
  /// composition charge the cost model without executing); inexact chains
  /// force first.
  std::vector<std::size_t> PartitionSizes() const {
    if (pending_ != nullptr && pending_->exact) return pending_->counts;
    const Partitions& parts = partitions();
    std::vector<std::size_t> sizes;
    sizes.reserve(parts.size());
    for (const auto& p : parts) sizes.push_back(p.size());
    return sizes;
  }

  /// Real elements represented by one synthetic element (see class comment).
  double scale() const { return scale_; }

  /// Non-zero iff this bag of pairs is hash-partitioned on `.first` into
  /// exactly this many partitions (the engine's Partitioner metadata, like
  /// Spark's). Keyed wide operators whose partition count matches skip the
  /// network shuffle; mapValues/filter-style operators preserve it, while
  /// key-changing maps clear it.
  int64_t key_partitions() const { return key_partitions_; }

  /// Number of narrow stages that must re-run to regenerate one of this
  /// bag's partitions after a machine loss: 1 for freshly
  /// loaded/shuffled/aggregated data (stage boundaries cut lineage), +1 per
  /// narrow transformation since. The fault model multiplies machine-loss
  /// recompute cost by this depth.
  int lineage_depth() const { return lineage_depth_; }

  /// Total number of synthetic elements. Pure metadata access — does NOT
  /// model a count() action (see ops.h Count for the job-charging version).
  /// Answered from tracked counts (no forcing) for size-preserving pending
  /// chains.
  int64_t Size() const {
    if (pending_ != nullptr && pending_->exact) {
      int64_t n = 0;
      for (const std::size_t c : pending_->counts) {
        n += static_cast<int64_t>(c);
      }
      return n;
    }
    int64_t n = 0;
    for (const auto& p : partitions()) n += static_cast<int64_t>(p.size());
    return n;
  }

  /// Real element count under the cost model.
  double RealSize() const { return static_cast<double>(Size()) * scale_; }

  /// The same data (partitions shared) with a different lineage depth.
  /// Used by engine::Checkpoint, which truncates lineage to 1 after the
  /// replicated write; cost-free metadata operation.
  Bag<T> WithLineageDepth(int depth) const {
    Bag<T> out = *this;
    out.lineage_depth_ = depth;
    return out;
  }

  /// All elements concatenated, for tests and driver-side logic. Does not
  /// charge the cost model (see ops.h Collect for the action).
  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(Size()));
    for (const auto& p : partitions()) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

 private:
  /// State of a deferred narrow chain, shared (not copied) across Bag
  /// handles so a single Force materializes for all of them.
  struct PendingState {
    Feed feed;
    /// Fast-path twin of `feed` for static chains (see `Run`); may be null.
    Run run;
    /// Tracked per-partition output cardinalities (see Deferred).
    std::vector<std::size_t> counts;
    bool exact = true;
    bool bounded = true;
    int chain_ops = 1;
    /// Memoized Force() result.
    std::shared_ptr<const Partitions> materialized;
  };

  Cluster* cluster_;
  // Exactly one of parts_ / pending_ is set; Force() flips pending_ into
  // parts_. Mutable because forcing is a caching materialization, not a
  // logical mutation — the bag's value is defined at composition time.
  mutable std::shared_ptr<const Partitions> parts_;
  mutable std::shared_ptr<PendingState> pending_;
  double scale_ = 1.0;
  int64_t key_partitions_ = 0;
  int lineage_depth_ = 1;
};

/// Creates a bag on `cluster` by splitting `data` round-robin into
/// `num_partitions` partitions (cluster default parallelism if <= 0). The
/// bag's scale defaults to ClusterConfig::data_scale; pass an explicit
/// `scale` for driver-side collections whose synthetic cardinality is the
/// real one (e.g. the bag of hyperparameter configurations: scale 1).
template <typename T>
Bag<T> Parallelize(Cluster* cluster, std::vector<T> data,
                   int64_t num_partitions = -1, double scale = -1.0) {
  MATRYOSHKA_CHECK(cluster != nullptr);
  if (num_partitions <= 0) {
    // Degraded-aware: after machine loss (with degraded re-planning on) new
    // bags are cut for the machines still alive, not the construction-time
    // cluster shape.
    num_partitions = cluster->effective_parallelism();
  }
  if (scale < 0) scale = cluster->config().data_scale;
  num_partitions = std::max<int64_t>(1, num_partitions);
  typename Bag<T>::Partitions parts(static_cast<std::size_t>(num_partitions));
  const std::size_t n = data.size();
  // Contiguous chunks, like reading consecutive blocks of a file: locality
  // in the generated data (e.g. the visits of one session) stays within a
  // partition, which is what makes map-side combining effective on real
  // inputs.
  const std::size_t per = (n + num_partitions - 1) / num_partitions;
  std::size_t next = 0;
  for (auto& p : parts) {
    const std::size_t end = std::min(n, next + per);
    p.reserve(end - next);
    for (; next < end; ++next) p.push_back(std::move(data[next]));
  }
  return Bag<T>(cluster, std::move(parts), scale);
}

/// Estimates the *synthetic* bytes held by a bag by sampling up to
/// `sample_per_partition` elements per partition and extrapolating.
/// Multiply by bag.scale() for the real footprint (RealBagBytes).
template <typename T>
double EstimateBagBytes(const Bag<T>& bag, int sample_per_partition = 64) {
  double total = 0.0;
  for (const auto& part : bag.partitions()) {
    if (part.empty()) continue;
    const std::size_t sample =
        std::min<std::size_t>(part.size(),
                              static_cast<std::size_t>(sample_per_partition));
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < sample; ++i) bytes += EstimateSize(part[i]);
    total += static_cast<double>(bytes) / static_cast<double>(sample) *
             static_cast<double>(part.size());
  }
  return total;
}

/// The bag's estimated real in-memory footprint under the cost model.
template <typename T>
double RealBagBytes(const Bag<T>& bag) {
  return EstimateBagBytes(bag) * bag.scale();
}

}  // namespace matryoshka::engine

#endif  // MATRYOSHKA_ENGINE_BAG_H_
