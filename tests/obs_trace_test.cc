// Observability tests: the TraceRecorder sink must be invisible to the cost
// model (null sink and attached sink charge bit-identical metrics), spans
// must be monotone on the simulated clock and decompose the simulated time
// exactly (the breakdown buckets sum to simulated_time_s), the Chrome-trace
// export must be well-formed JSON and byte-identical across repeated runs,
// with the thread pool on or off, and under an active FaultPlan, and the
// optimizer must capture every lowering decision with its justifying
// cardinalities. Also locks down the default_parallelism=0 auto-resolve.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "engine/bag.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"
#include "obs/breakdown.h"
#include "obs/chrome_trace.h"
#include "obs/plan_capture.h"
#include "obs/trace_recorder.h"

namespace matryoshka {
namespace {

using engine::Cluster;
using engine::ClusterConfig;
using engine::FaultPlan;
using engine::Metrics;

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.job_launch_overhead_s = 0.1;
  cfg.task_overhead_s = 0.01;
  cfg.per_element_cost_s = 1e-6;
  cfg.memory_object_overhead = 1.0;
  return cfg;
}

FaultPlan NoisyPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.task_failure_prob = 0.1;
  plan.max_task_retries = 8;
  plan.retry_backoff_s = 0.25;
  plan.straggler_fraction = 0.1;
  plan.straggler_slowdown = 3.0;
  plan.speculative_execution = true;
  plan.speculation_fraction = 0.1;
  return plan;
}

/// A fixed program touching every driver-span category: narrow stages, a
/// shuffle, a broadcast join, and collect/count actions.
std::vector<std::pair<int64_t, int64_t>> RunPipeline(Cluster* c) {
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 2000; ++i) kv.emplace_back(i % 32, 1);
  auto bag = Parallelize(c, kv, 8);
  auto mapped = MapValues(bag, [](int64_t v) { return v * 2; });
  auto filtered =
      Filter(mapped, [](const std::pair<int64_t, int64_t>& p) {
        return p.first % 7 != 3;
      });
  auto reduced = ReduceByKey(
      filtered, [](int64_t a, int64_t b) { return a + b; }, 8);
  std::vector<std::pair<int64_t, int64_t>> small_kv;
  for (int64_t i = 0; i < 8; ++i) small_kv.emplace_back(i, i * 10);
  auto small = Parallelize(c, small_kv, 2, /*scale=*/1.0);
  auto joined = BroadcastJoin(reduced, small);
  Count(joined);
  auto out = Collect(reduced);
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectMetricsEq(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.simulated_time_s, b.simulated_time_s);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.elements_processed, b.elements_processed);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  EXPECT_EQ(a.spill_events, b.spill_events);
  EXPECT_EQ(a.peak_task_bytes, b.peak_task_bytes);
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.machines_lost, b.machines_lost);
  EXPECT_EQ(a.recovery_time_s, b.recovery_time_s);
}

/// Minimal JSON well-formedness check: balanced structure outside strings,
/// string escapes honored. (scripts/check.sh obs additionally validates the
/// emitted files with python3 -m json.tool.)
bool JsonWellFormed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

// --- Null-sink identity ---

TEST(ObsTraceTest, AttachedRecorderLeavesCostModelBitIdentical) {
  Cluster plain(SmallConfig());
  Cluster traced(SmallConfig());
  obs::TraceRecorder rec;
  traced.set_trace(&rec);
  auto r1 = RunPipeline(&plain);
  auto r2 = RunPipeline(&traced);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(r1, r2);
  ExpectMetricsEq(plain.metrics(), traced.metrics());
  EXPECT_FALSE(rec.current().IsEmpty());
}

TEST(ObsTraceTest, AttachedRecorderLeavesFaultModelBitIdentical) {
  ClusterConfig cfg = SmallConfig();
  cfg.faults = NoisyPlan(5);
  Cluster plain(cfg);
  Cluster traced(cfg);
  obs::TraceRecorder rec;
  traced.set_trace(&rec);
  auto r1 = RunPipeline(&plain);
  auto r2 = RunPipeline(&traced);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(r1, r2);
  EXPECT_GT(plain.metrics().failed_tasks, 0);
  ExpectMetricsEq(plain.metrics(), traced.metrics());
}

// --- Span geometry and the time decomposition ---

TEST(ObsTraceTest, SpansAreMonotoneOnTheSimulatedClock) {
  Cluster c(SmallConfig());
  obs::TraceRecorder rec;
  c.set_trace(&rec);
  RunPipeline(&c);
  ASSERT_TRUE(c.ok());
  const obs::RunTrace& run = rec.current();
  ASSERT_FALSE(run.stages.empty());
  ASSERT_FALSE(run.jobs.empty());
  ASSERT_FALSE(run.tasks.empty());

  // The driver clock is serial: stages, jobs, and driver spans are recorded
  // in time order and never overlap the next record's begin.
  double prev_end = 0.0;
  for (const obs::StageSpan& s : run.stages) {
    EXPECT_LE(s.begin_s, s.end_s);
    EXPECT_GE(s.begin_s, prev_end - 1e-12);
    prev_end = s.end_s;
    EXPECT_GE(s.critical_slot, 0);
    EXPECT_GT(s.num_tasks, 0);
  }
  for (const obs::JobSpan& j : run.jobs) EXPECT_LE(j.begin_s, j.end_s);
  for (const obs::DriverSpan& d : run.driver) EXPECT_LE(d.begin_s, d.end_s);

  // Task spans nest inside their stage and carry consistent slots.
  std::vector<const obs::StageSpan*> by_id(run.stages.size() + 1, nullptr);
  for (const obs::StageSpan& s : run.stages)
    by_id[static_cast<std::size_t>(s.id)] = &s;
  for (const obs::TaskSpan& t : run.tasks) {
    ASSERT_LT(static_cast<std::size_t>(t.stage_id), by_id.size());
    const obs::StageSpan* s = by_id[static_cast<std::size_t>(t.stage_id)];
    ASSERT_NE(s, nullptr);
    EXPECT_GE(t.begin_s, s->begin_s - 1e-12);
    EXPECT_LE(t.end_s, s->end_s + 1e-12);
    EXPECT_GE(t.slot, 0);
    EXPECT_LE(t.slot, run.max_slot);
  }
}

/// Recovery seconds charged outside any stage (machine-loss recompute
/// driver spans) — subtracted when comparing stage makespans to buckets.
double RecoveryOutsideStages(const obs::RunTrace& run) {
  double s = 0.0;
  for (const obs::DriverSpan& d : run.driver)
    if (d.category == obs::Category::kRecovery) s += d.end_s - d.begin_s;
  return s;
}

TEST(ObsTraceTest, BreakdownBucketsSumToSimulatedTime) {
  for (bool faulty : {false, true}) {
    ClusterConfig cfg = SmallConfig();
    if (faulty) cfg.faults = NoisyPlan(5);
    Cluster c(cfg);
    obs::TraceRecorder rec;
    c.set_trace(&rec);
    RunPipeline(&c);
    ASSERT_TRUE(c.ok());
    const double t = c.metrics().simulated_time_s;
    const obs::Breakdown b = obs::ComputeBreakdown(rec.current());
    EXPECT_NEAR(b.total(), t, 1e-9 * std::max(1.0, t))
        << "faulty=" << faulty;
    EXPECT_GT(b.job_launch_s, 0.0);
    EXPECT_GT(b.compute_s, 0.0);
    EXPECT_GT(b.task_overhead_s, 0.0);
    EXPECT_GT(b.shuffle_s, 0.0);
    EXPECT_GT(b.broadcast_s, 0.0);
    EXPECT_GT(b.collect_s, 0.0);
    EXPECT_EQ(b.recovery_s > 0.0, faulty);

    // The critical-path chain is the stages in time order and covers the
    // whole stage share of the run.
    auto path = obs::CriticalPath(rec.current());
    ASSERT_EQ(path.size(), rec.current().stages.size());
    double stage_sum = 0.0;
    double prev = 0.0;
    for (const obs::CriticalStage& s : path) {
      EXPECT_GE(s.begin_s, prev - 1e-12);
      prev = s.begin_s + s.duration_s;
      stage_sum += s.duration_s;
    }
    EXPECT_NEAR(stage_sum,
                b.compute_s + b.task_overhead_s + b.spill_s + b.recovery_s -
                    RecoveryOutsideStages(rec.current()),
                1e-9 * std::max(1.0, t));
  }
}

// --- Fault annotations ---

TEST(ObsTraceTest, FaultAnnotationsAreRecorded) {
  ClusterConfig cfg = SmallConfig();
  cfg.faults = NoisyPlan(5);
  Cluster c(cfg);
  obs::TraceRecorder rec;
  c.set_trace(&rec);
  RunPipeline(&c);
  ASSERT_TRUE(c.ok());
  ASSERT_GT(c.metrics().task_retries, 0);
  const obs::RunTrace& run = rec.current();
  int retried = 0;
  int speculative = 0;
  for (const obs::TaskSpan& t : run.tasks) {
    retried += t.retries > 0 ? 1 : 0;
    speculative += t.speculative ? 1 : 0;
  }
  EXPECT_GT(retried, 0);
  if (c.metrics().speculative_launches > 0) {
    EXPECT_GT(speculative, 0);
  }
  double fault_s = 0.0;
  for (const obs::StageSpan& s : run.stages) fault_s += s.fault_s;
  EXPECT_GT(fault_s, 0.0);
}

// --- Export: well-formed and bit-identical ---

TEST(ObsTraceTest, ChromeTraceIsWellFormedJson) {
  Cluster c(SmallConfig());
  obs::TraceRecorder rec;
  rec.SetRunNameHint("pipeline");
  c.set_trace(&rec);
  RunPipeline(&c);
  ASSERT_TRUE(c.ok());
  const std::string json = obs::ChromeTraceToString(rec);
  EXPECT_TRUE(JsonWellFormed(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"matryoshkaBreakdown\""), std::string::npos);
  EXPECT_NE(json.find("\"matryoshkaPlan\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("reduceByKey"), std::string::npos);
  EXPECT_NE(json.find("broadcastJoin"), std::string::npos);
}

std::string TraceFor(ClusterConfig cfg) {
  Cluster c(cfg);
  obs::TraceRecorder rec;
  rec.SetRunNameHint("suite");
  c.set_trace(&rec);
  RunPipeline(&c);
  EXPECT_TRUE(c.ok());
  return obs::ChromeTraceToString(rec);
}

TEST(ObsTraceTest, TraceIsByteIdenticalAcrossRunsPoolAndFaults) {
  // Repeatability.
  EXPECT_EQ(TraceFor(SmallConfig()), TraceFor(SmallConfig()));

  // The thread pool may only change wall-clock time, never a trace byte.
  ClusterConfig serial = SmallConfig();
  ClusterConfig parallel = SmallConfig();
  parallel.execute_parallel = true;
  EXPECT_EQ(TraceFor(serial), TraceFor(parallel));

  // Same under an active fault plan: draws are keyed on (seed, stage,
  // task), not execution order.
  serial.faults = NoisyPlan(7);
  parallel.faults = NoisyPlan(7);
  EXPECT_EQ(TraceFor(serial), TraceFor(parallel));
}

// --- Plan capture ---

TEST(ObsTraceTest, OptimizerDecisionsAreCaptured) {
  ClusterConfig cfg = SmallConfig();
  obs::TraceRecorder rec;
  core::Optimizer opt(&cfg, core::OptimizerOptions{}, &rec);

  // Fewer tags than the 8 cores: broadcast; more: repartition.
  EXPECT_EQ(opt.ChooseJoin(4), core::JoinStrategy::kBroadcast);
  EXPECT_EQ(opt.ChooseJoin(64), core::JoinStrategy::kRepartition);
  EXPECT_EQ(opt.ScalarPartitions(4), 4);
  EXPECT_EQ(opt.ChooseCross(1, 100.0, 1e9),
            core::CrossStrategy::kBroadcastScalar);
  EXPECT_EQ(opt.ChooseCross(4, 1e9, 100.0),
            core::CrossStrategy::kBroadcastPrimary);

  const auto& ds = rec.current().decisions;
  ASSERT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds[0].primitive, "tagJoin");
  EXPECT_EQ(ds[0].choice, "broadcast");
  EXPECT_EQ(ds[0].num_tags, 4);
  EXPECT_FALSE(ds[0].rationale.empty());
  EXPECT_EQ(ds[1].choice, "repartition");
  EXPECT_EQ(ds[2].primitive, "scalarPartitions");
  EXPECT_EQ(ds[2].partitions, 4);
  EXPECT_EQ(ds[3].primitive, "halfLiftedCross");
  EXPECT_EQ(ds[3].choice, "broadcast-scalar");
  EXPECT_EQ(ds[4].choice, "broadcast-primary");
  EXPECT_EQ(ds[4].scalar_bytes, 1e9);

  std::ostringstream json;
  obs::WritePlanJson(rec, json);
  EXPECT_TRUE(JsonWellFormed(json.str()));
  EXPECT_NE(json.str().find("\"tagJoin\""), std::string::npos);
  std::ostringstream dot;
  obs::WritePlanDot(rec, dot);
  EXPECT_NE(dot.str().find("digraph"), std::string::npos);
  EXPECT_NE(dot.str().find("halfLiftedCross"), std::string::npos);
}

// --- default_parallelism auto-resolve (satellite) ---

TEST(ObsTraceTest, DefaultParallelismAutoResolvesToThreeTimesCores) {
  ClusterConfig cfg = SmallConfig();
  cfg.default_parallelism = 0;  // auto
  Cluster c(cfg);
  EXPECT_EQ(c.config().default_parallelism, 3 * cfg.total_cores());
  ClusterConfig fixed = SmallConfig();
  Cluster c2(fixed);
  EXPECT_EQ(c2.config().default_parallelism, 8);
}

// --- Run lifecycle ---

TEST(ObsTraceTest, ResetArchivesRunsAndRecyclesEmptyOnes) {
  Cluster c(SmallConfig());
  obs::TraceRecorder rec;
  rec.SetRunNameHint("first");
  c.set_trace(&rec);
  c.Reset();  // opens (recycles) the first, still-empty run
  RunPipeline(&c);
  rec.SetRunNameHint("second");
  c.Reset();
  RunPipeline(&c);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(rec.runs().size(), 2u);
  EXPECT_EQ(rec.runs()[0].name, "first");
  EXPECT_EQ(rec.runs()[1].name, "second");
  EXPECT_FALSE(rec.runs()[0].IsEmpty());
  // The two runs recorded the same program: identical span counts.
  EXPECT_EQ(rec.runs()[0].stages.size(), rec.runs()[1].stages.size());
  EXPECT_EQ(rec.runs()[0].jobs.size(), rec.runs()[1].jobs.size());
}

}  // namespace
}  // namespace matryoshka
