#ifndef MATRYOSHKA_BENCH_BENCH_UTIL_H_
#define MATRYOSHKA_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "engine/cluster.h"
#include "workloads/workload.h"

/// Shared setup for the per-figure benchmark binaries. Each binary
/// regenerates one figure of the paper's evaluation (Sec. 9): it sweeps the
/// figure's x-axis as google-benchmark args and reports the *simulated*
/// cluster time as manual time, plus jobs / shuffle / OOM status as
/// counters. Runs that the paper reports as failing (out of memory) are
/// reported with counter oom=1 and time 0.
namespace matryoshka::bench {

/// The paper's evaluation cluster (Sec. 9.1): 25 machines, 2x8 cores, 22 GB
/// for Spark per machine, 1 Gb network, parallelism 3x total cores.
inline engine::ClusterConfig PaperCluster() {
  engine::ClusterConfig cfg;
  cfg.num_machines = 25;
  cfg.cores_per_machine = 16;
  cfg.memory_per_machine_bytes = 22.0 * (1ULL << 30);
  cfg.network_bytes_per_s = 125e6;
  cfg.job_launch_overhead_s = 0.1;
  cfg.task_overhead_s = 0.004;
  cfg.per_element_cost_s = 100e-9;
  cfg.default_parallelism = 3 * 25 * 16;
  return cfg;
}

/// The larger cluster of Sec. 9.7: 36 machines with 40 hardware threads and
/// 100 GB memory per Spark worker.
inline engine::ClusterConfig LargePaperCluster() {
  engine::ClusterConfig cfg = PaperCluster();
  cfg.num_machines = 36;
  cfg.cores_per_machine = 40;
  cfg.memory_per_machine_bytes = 100.0 * (1ULL << 30);
  cfg.default_parallelism = 3 * 36 * 40;
  return cfg;
}

/// Declares that the synthetic dataset of `synthetic_elements` elements
/// (about `bytes_per_element` estimated bytes each) stands for
/// `target_gb` GB of real data: sets data_scale so that each synthetic
/// element models R real ones in both CPU and memory terms.
inline void ScaleToTarget(engine::ClusterConfig* cfg, double target_gb,
                          int64_t synthetic_elements,
                          double bytes_per_element) {
  const double real_elements =
      target_gb * (1ULL << 30) / bytes_per_element;
  cfg->data_scale = real_elements / static_cast<double>(synthetic_elements);
}

/// Fills the benchmark state from a finished run: simulated time as manual
/// time, plus diagnostic counters. OOM runs get time 0 and oom=1 (mirroring
/// the "X" marks of the paper's figures).
template <typename K, typename R>
void Report(benchmark::State& state,
            const workloads::WorkloadResult<K, R>& result) {
  if (result.ok()) {
    state.SetIterationTime(result.metrics.simulated_time_s);
    state.counters["oom"] = 0;
  } else {
    state.SetIterationTime(0.0);
    state.counters["oom"] = result.status.IsOutOfMemory() ? 1 : -1;
    state.SetLabel(result.status.ToString());
  }
  state.counters["jobs"] = static_cast<double>(result.metrics.jobs);
  state.counters["stages"] = static_cast<double>(result.metrics.stages);
  state.counters["shuffle_gb"] =
      result.metrics.shuffle_bytes / (1ULL << 30);
  state.counters["spills"] = static_cast<double>(result.metrics.spill_events);
}

}  // namespace matryoshka::bench

#endif  // MATRYOSHKA_BENCH_BENCH_UTIL_H_
