#ifndef MATRYOSHKA_WORKLOADS_AVG_DISTANCES_H_
#define MATRYOSHKA_WORKLOADS_AVG_DISTANCES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/workload.h"

/// Average Distances (Sec. 2.2): the average shortest-path distance between
/// all pairs of vertices of every connected component of an input graph —
/// connectedComps(g).map(avgDistances). The task with THREE levels of
/// parallel operations (Sec. 9.1): (1) components, (2) one BFS per vertex
/// of a component, (3) the parallel frontier expansion of each BFS — with
/// an iterative computation (the BFS loop) at the innermost level, whose
/// instances terminate at different iterations.
namespace matryoshka::workloads {

struct AvgDistancesParams {
  int64_t max_bfs_iterations = 10000;
};

/// Per-component result: the average pairwise distance.
using AvgDistancesResult = WorkloadResult<int64_t, double>;

/// Fully nested Matryoshka version: components -> lifted per-vertex BFS
/// (depth-2 tags) -> lifted frontier loop.
AvgDistancesResult AvgDistancesMatryoshka(
    engine::Cluster* cluster, const engine::Bag<datagen::Edge>& edges,
    const AvgDistancesParams& params, core::OptimizerOptions options = {});

/// Outer-parallel workaround: parallel over components only; each
/// component's all-pairs BFS runs sequentially in one task.
AvgDistancesResult AvgDistancesOuterParallel(
    engine::Cluster* cluster, const engine::Bag<datagen::Edge>& edges,
    const AvgDistancesParams& params);

/// Inner-parallel workaround: driver loops over components AND over start
/// vertices; only the frontier expansion of one BFS at a time uses the
/// engine (the paper's point: with three levels, this parallelizes only the
/// innermost one and pays job overhead for every BFS step of every vertex
/// of every component).
AvgDistancesResult AvgDistancesInnerParallel(
    engine::Cluster* cluster, const engine::Bag<datagen::Edge>& edges,
    const AvgDistancesParams& params);

AvgDistancesResult RunAvgDistances(engine::Cluster* cluster,
                                   const engine::Bag<datagen::Edge>& edges,
                                   const AvgDistancesParams& params,
                                   Variant variant,
                                   core::OptimizerOptions options = {});

/// Driver-side sequential reference.
std::vector<std::pair<int64_t, double>> AvgDistancesReference(
    const std::vector<datagen::Edge>& edges);

/// Sequential all-pairs-BFS average distance of one component's edge list.
double SequentialAvgDistance(const std::vector<datagen::Edge>& edges);

}  // namespace matryoshka::workloads

#endif  // MATRYOSHKA_WORKLOADS_AVG_DISTANCES_H_
