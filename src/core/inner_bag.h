#ifndef MATRYOSHKA_CORE_INNER_BAG_H_
#define MATRYOSHKA_CORE_INNER_BAG_H_

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/inner_scalar.h"
#include "core/lifting_context.h"
#include "core/tag.h"
#include "engine/bag.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::core {

/// The lifted representation of a Bag variable inside a lifted UDF
/// (Sec. 4.4). Where the original UDF held one bag of E per invocation, the
/// InnerBag holds the union of all those bags as one flat Bag[(Tag, E)],
/// every element tagged with its invocation.
///
/// Unlike InnerScalar, tags are NOT unique here (one tag per inner-bag
/// element), and tags whose inner bag was empty have no element at all —
/// which is why operations that must produce output for empty bags (count,
/// folds) consult the context's tag bag.
template <typename E>
class InnerBag {
 public:
  using Repr = engine::Bag<std::pair<Tag, E>>;

  InnerBag(LiftingContext ctx, Repr repr)
      : ctx_(std::move(ctx)), repr_(std::move(repr)) {}

  const LiftingContext& ctx() const { return ctx_; }
  /// The flat bag representing all inner bags.
  const Repr& repr() const { return repr_; }

  /// Removes the tags (the implementation of the `flatten` operation that
  /// lifted flatMaps use, Sec. 4.6).
  engine::Bag<E> Flatten() const { return engine::Values(repr_); }

 private:
  LiftingContext ctx_;
  Repr repr_;
};

// --- Stateless element-wise operations: apply the UDF to the payload and
// --- forward the tag unchanged (Sec. 4.4).

/// Lifted map over every inner bag. f: E -> U.
template <typename E, typename F>
auto LiftedMap(const InnerBag<E>& b, F f, double weight = 1.0)
    -> InnerBag<std::decay_t<decltype(f(std::declval<const E&>()))>> {
  using U = std::decay_t<decltype(f(std::declval<const E&>()))>;
  // Tags are untouched, so any tag partitioning survives (mapValues).
  auto out = engine::MapValues(b.repr(), f, weight);
  (void)static_cast<U*>(nullptr);
  return InnerBag<U>(b.ctx(), std::move(out));
}

/// Lifted filter over every inner bag.
template <typename E, typename P>
InnerBag<E> LiftedFilter(const InnerBag<E>& b, P pred, double weight = 1.0) {
  auto out = engine::Filter(
      b.repr(),
      [pred](const std::pair<Tag, E>& p) { return pred(p.second); }, weight);
  return InnerBag<E>(b.ctx(), std::move(out));
}

/// Lifted flatMap over every inner bag. f: E -> iterable of U.
template <typename E, typename F>
auto LiftedFlatMap(const InnerBag<E>& b, F f, double weight = 1.0)
    -> InnerBag<
        std::decay_t<decltype(*std::begin(f(std::declval<const E&>())))>> {
  using U = std::decay_t<decltype(*std::begin(f(std::declval<const E&>())))>;
  auto out = engine::FlatMapValues(b.repr(), f, weight);
  (void)static_cast<U*>(nullptr);
  return InnerBag<U>(b.ctx(), std::move(out));
}

/// Lifted union of two inner bags (per tag). The lifted version is simply
/// the flat union (Sec. 4.4: "some other operations' lifted versions are
/// identical to the original operations, such as distinct and union").
template <typename E>
InnerBag<E> LiftedUnion(const InnerBag<E>& a, const InnerBag<E>& b) {
  return InnerBag<E>(a.ctx(), engine::Union(a.repr(), b.repr()));
}

/// Lifted distinct: per-inner-bag duplicate elimination == flat distinct on
/// the (tag, element) pairs.
template <typename E>
InnerBag<E> LiftedDistinct(const InnerBag<E>& b, int64_t num_partitions = -1) {
  return InnerBag<E>(b.ctx(), engine::Distinct(b.repr(), num_partitions));
}

/// Hash-partitions the InnerBag's representation by tag (the lowering
/// phase's equivalent of Spark's partitionBy before an iterative
/// computation): subsequent tag joins against this InnerBag skip their
/// shuffle entirely. Worth one upfront shuffle when the bag is joined on
/// its tag every iteration of a lifted loop — but ONLY when there are
/// enough tags to keep every core busy; with fewer tags than cores,
/// key-partitioning would collapse each inner bag onto one partition and
/// serialize it (the very pathology flattening exists to avoid). Prefer
/// MaybePartitionByTag, which applies the same optimizer rule as the join
/// choice (Sec. 8.2).
template <typename E>
InnerBag<E> PartitionByTag(const InnerBag<E>& b, int64_t num_partitions = -1) {
  return InnerBag<E>(b.ctx(),
                     engine::PartitionByKey(b.repr(), num_partitions));
}

/// Lowering-phase decision: tag-partition `b` iff the optimizer would use
/// repartition tag joins on this context (num_tags >= total cores);
/// otherwise those joins broadcast their scalar side and pre-partitioning
/// would only hurt.
template <typename E>
InnerBag<E> MaybePartitionByTag(const InnerBag<E>& b) {
  const LiftingContext& ctx = b.ctx();
  if (ctx.optimizer().ChooseJoin(ctx.num_tags()) ==
      JoinStrategy::kRepartition) {
    return PartitionByTag(b);
  }
  return b;
}

// --- Stateful operations: keep state per tag (Sec. 4.4).

/// Lifted reduce: folds every inner bag into one scalar per tag, i.e. a
/// reduce becomes a reduceByKey with the tag as key. Tags whose inner bag is
/// empty produce no element (a reduce of an empty bag is undefined); use
/// LiftedFold / LiftedCount when a value for empty bags is required.
template <typename E, typename F>
InnerScalar<E> LiftedReduce(const InnerBag<E>& b, F f, double weight = 1.0) {
  // The result is tag-sized: its scale is the tag bag's scale (1 for
  // top-level groups whose count is the experiment's own parameter).
  auto out = engine::ReduceByKey(b.repr(), f, b.ctx().ScalarPartitions(),
                                 weight, b.ctx().tags().scale());
  return InnerScalar<E>(b.ctx(), std::move(out));
}

/// Lifted fold with a zero element: like LiftedReduce, but every tag in the
/// context produces a value — tags with empty inner bags yield `zero`.
/// Implemented by left-outer-joining the context's tag bag with the per-tag
/// reduction (this is why the tag bag is stored once per lifted UDF,
/// Sec. 4.4 last paragraph).
template <typename E, typename Z, typename FMap, typename FCombine>
InnerScalar<Z> LiftedFold(const InnerBag<E>& b, Z zero, FMap map_to_z,
                          FCombine combine, double weight = 1.0) {
  auto mapped = LiftedMap(b, map_to_z, weight);
  auto reduced =
      engine::ReduceByKey(mapped.repr(), combine, b.ctx().ScalarPartitions(),
                          weight, b.ctx().tags().scale());
  auto tags_kv = engine::Map(b.ctx().tags(), [](const Tag& t) {
    return std::pair<Tag, char>(t, 0);
  });
  auto joined =
      engine::LeftOuterJoin(tags_kv, reduced, b.ctx().ScalarPartitions());
  auto out = engine::Map(
      joined,
      [zero](const std::pair<Tag, std::pair<char, std::optional<Z>>>& p) {
        return std::pair<Tag, Z>(p.first, p.second.second.value_or(zero));
      });
  return InnerScalar<Z>(b.ctx(), std::move(out));
}

/// Lifted count: the number of elements of every inner bag, 0 included for
/// empty bags.
template <typename E>
InnerScalar<int64_t> LiftedCount(const InnerBag<E>& b) {
  return LiftedFold(
      b, int64_t{0}, [](const E&) { return int64_t{1}; },
      [](int64_t a, int64_t c) { return a + c; }, 0.25);
}

/// Lifted reduceByKey over inner bags of (K, V) pairs: the per-key state
/// becomes per-(tag, key) state via a composite key (Sec. 4.4):
///   b'.map{(t,(k,v)) => ((t,k),v)}.reduceByKey(f).map{((t,k),v) => (t,(k,v))}
/// `result_scale` < 0 keeps the input's scale (right when the key space
/// scales with the data, e.g. per-vertex rank sums); pass the tag scale
/// when the per-tag key space is fixed (e.g. k centroid slots per run).
template <typename K, typename V, typename F>
InnerBag<std::pair<K, V>> LiftedReduceByKey(const InnerBag<std::pair<K, V>>& b,
                                            F f, double weight = 1.0,
                                            double result_scale = -1.0) {
  using TK = std::pair<Tag, K>;
  auto rekeyed = engine::Map(
      b.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<TK, V>(TK(p.first, p.second.first), p.second.second);
      });
  auto reduced = engine::ReduceByKey(rekeyed, f, -1, weight, result_scale);
  auto out =
      engine::Map(reduced, [](const std::pair<TK, V>& p) {
        return std::pair<Tag, std::pair<K, V>>(
            p.first.first, std::pair<K, V>(p.first.second, p.second));
      });
  return InnerBag<std::pair<K, V>>(b.ctx(), std::move(out));
}

/// Lifted inner equi-join between two inner bags of pairs, rekeying both
/// sides to the composite (tag, key) so only elements of the same original
/// UDF invocation match (Sec. 4.4 "we also lift joins with a similar
/// rekeying").
template <typename K, typename V, typename W>
InnerBag<std::pair<K, std::pair<V, W>>> LiftedJoin(
    const InnerBag<std::pair<K, V>>& a, const InnerBag<std::pair<K, W>>& b,
    int64_t num_partitions = -1) {
  using TK = std::pair<Tag, K>;
  auto ra = engine::Map(
      a.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<TK, V>(TK(p.first, p.second.first), p.second.second);
      });
  auto rb = engine::Map(
      b.repr(), [](const std::pair<Tag, std::pair<K, W>>& p) {
        return std::pair<TK, W>(TK(p.first, p.second.first), p.second.second);
      });
  auto joined = engine::RepartitionJoin(ra, rb, num_partitions);
  auto out = engine::Map(
      joined, [](const std::pair<TK, std::pair<V, W>>& p) {
        return std::pair<Tag, std::pair<K, std::pair<V, W>>>(
            p.first.first,
            std::pair<K, std::pair<V, W>>(p.first.second, p.second));
      });
  return InnerBag<std::pair<K, std::pair<V, W>>>(a.ctx(), std::move(out));
}

/// Lifted left outer equi-join (composite (tag, key) rekeying, like
/// LiftedJoin): every left element appears with its matching right values,
/// or with nullopt when its key has no match within its own tag. Used e.g.
/// by lifted PageRank to keep vertices without in-links alive.
template <typename K, typename V, typename W>
InnerBag<std::pair<K, std::pair<V, std::optional<W>>>> LiftedLeftOuterJoin(
    const InnerBag<std::pair<K, V>>& a, const InnerBag<std::pair<K, W>>& b,
    int64_t num_partitions = -1) {
  using TK = std::pair<Tag, K>;
  auto ra = engine::Map(
      a.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<TK, V>(TK(p.first, p.second.first), p.second.second);
      });
  auto rb = engine::Map(
      b.repr(), [](const std::pair<Tag, std::pair<K, W>>& p) {
        return std::pair<TK, W>(TK(p.first, p.second.first), p.second.second);
      });
  auto joined = engine::LeftOuterJoin(ra, rb, num_partitions);
  auto out = engine::Map(
      joined,
      [](const std::pair<TK, std::pair<V, std::optional<W>>>& p) {
        return std::pair<Tag, std::pair<K, std::pair<V, std::optional<W>>>>(
            p.first.first,
            std::pair<K, std::pair<V, std::optional<W>>>(p.first.second,
                                                         p.second));
      });
  return InnerBag<std::pair<K, std::pair<V, std::optional<W>>>>(
      a.ctx(), std::move(out));
}

/// A join side that stays fixed across the iterations of a lifted loop
/// (e.g. a graph's edge list joined with the evolving rank vector every
/// round): its composite (tag, key) rekeying and hash partitioning are done
/// ONCE, so the per-iteration joins only move the dynamic side. This is the
/// "fusing the join shuffle's map side with preceding operations"
/// optimization the paper's Sec. 8.2 attributes to knowing InnerScalar
/// structure ahead of time.
template <typename K, typename V>
class StaticJoinSide {
 public:
  using TK = std::pair<Tag, K>;
  StaticJoinSide(LiftingContext ctx, engine::Bag<std::pair<TK, V>> repr)
      : ctx_(std::move(ctx)), repr_(std::move(repr)) {}

  const LiftingContext& ctx() const { return ctx_; }
  const engine::Bag<std::pair<TK, V>>& repr() const { return repr_; }

 private:
  LiftingContext ctx_;
  engine::Bag<std::pair<TK, V>> repr_;
};

/// Rekeys an InnerBag of pairs onto the composite (tag, key) and hash
/// partitions it, paying the shuffle once.
template <typename K, typename V>
StaticJoinSide<K, V> MakeStaticJoinSide(const InnerBag<std::pair<K, V>>& b,
                                        int64_t num_partitions = -1) {
  using TK = std::pair<Tag, K>;
  auto rekeyed = engine::Map(
      b.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<TK, V>(TK(p.first, p.second.first), p.second.second);
      });
  return StaticJoinSide<K, V>(
      b.ctx(), engine::PartitionByKey(rekeyed, num_partitions));
}

/// Lifted inner join where the LEFT side is static and pre-partitioned:
/// only the dynamic right side is rekeyed and shuffled per call.
template <typename K, typename V, typename W>
InnerBag<std::pair<K, std::pair<V, W>>> LiftedJoinStatic(
    const StaticJoinSide<K, V>& left, const InnerBag<std::pair<K, W>>& right) {
  using TK = std::pair<Tag, K>;
  auto rb = engine::Map(
      right.repr(), [](const std::pair<Tag, std::pair<K, W>>& p) {
        return std::pair<TK, W>(TK(p.first, p.second.first), p.second.second);
      });
  auto joined = engine::RepartitionJoin(left.repr(), rb,
                                        left.repr().key_partitions());
  auto out = engine::Map(
      joined, [](const std::pair<TK, std::pair<V, W>>& p) {
        return std::pair<Tag, std::pair<K, std::pair<V, W>>>(
            p.first.first,
            std::pair<K, std::pair<V, W>>(p.first.second, p.second));
      });
  return InnerBag<std::pair<K, std::pair<V, W>>>(right.ctx(), std::move(out));
}

/// Lifted left outer join with a static, pre-partitioned left side.
template <typename K, typename V, typename W>
InnerBag<std::pair<K, std::pair<V, std::optional<W>>>>
LiftedLeftOuterJoinStatic(const StaticJoinSide<K, V>& left,
                          const InnerBag<std::pair<K, W>>& right) {
  using TK = std::pair<Tag, K>;
  auto rb = engine::Map(
      right.repr(), [](const std::pair<Tag, std::pair<K, W>>& p) {
        return std::pair<TK, W>(TK(p.first, p.second.first), p.second.second);
      });
  auto joined = engine::LeftOuterJoin(left.repr(), rb,
                                      left.repr().key_partitions());
  auto out = engine::Map(
      joined,
      [](const std::pair<TK, std::pair<V, std::optional<W>>>& p) {
        return std::pair<Tag, std::pair<K, std::pair<V, std::optional<W>>>>(
            p.first.first,
            std::pair<K, std::pair<V, std::optional<W>>>(p.first.second,
                                                         p.second));
      });
  return InnerBag<std::pair<K, std::pair<V, std::optional<W>>>>(
      right.ctx(), std::move(out));
}

/// Lifted groupByKey: collects, per tag, the values of each key. Composite
/// (tag, key) grouping; the same per-group memory accounting as the flat
/// GroupByKey applies.
template <typename K, typename V>
InnerBag<std::pair<K, std::vector<V>>> LiftedGroupByKey(
    const InnerBag<std::pair<K, V>>& b, int64_t num_partitions = -1,
    double group_expansion = 1.0) {
  using TK = std::pair<Tag, K>;
  auto rekeyed = engine::Map(
      b.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<TK, V>(TK(p.first, p.second.first), p.second.second);
      });
  auto grouped = engine::GroupByKey(rekeyed, num_partitions, group_expansion);
  auto out = engine::Map(
      grouped, [](const std::pair<TK, std::vector<V>>& p) {
        return std::pair<Tag, std::pair<K, std::vector<V>>>(
            p.first.first,
            std::pair<K, std::vector<V>>(p.first.second, p.second));
      });
  return InnerBag<std::pair<K, std::vector<V>>>(b.ctx(), std::move(out));
}

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_INNER_BAG_H_
