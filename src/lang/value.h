#ifndef MATRYOSHKA_LANG_VALUE_H_
#define MATRYOSHKA_LANG_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "common/sizing.h"

namespace matryoshka::lang {

/// A dynamically-typed value of the embedded query language: the element
/// type of every lang-level bag and the result type of every scalar
/// expression. Small closed set (like a row in a dynamically-typed query
/// engine): 64-bit int, double, bool, string, and tuples of values.
class Value {
 public:
  using Tuple = std::vector<Value>;

  Value() : v_(int64_t{0}) {}
  Value(int64_t i) : v_(i) {}            // NOLINT(runtime/explicit)
  Value(int i) : v_(int64_t{i}) {}       // NOLINT(runtime/explicit)
  Value(double d) : v_(d) {}             // NOLINT(runtime/explicit)
  Value(bool b) : v_(b) {}               // NOLINT(runtime/explicit)
  Value(std::string s) : v_(std::move(s)) {}  // NOLINT(runtime/explicit)
  Value(Tuple t) : v_(std::move(t)) {}   // NOLINT(runtime/explicit)

  static Value MakeTuple(std::initializer_list<Value> xs) {
    return Value(Tuple(xs));
  }

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_tuple() const { return std::holds_alternative<Tuple>(v_); }

  int64_t AsInt() const;
  double AsDouble() const;  // accepts int too (numeric widening)
  bool AsBool() const;
  const std::string& AsString() const;
  const Tuple& AsTuple() const;

  /// Tuple field access; checks bounds and tuple-ness.
  const Value& Field(std::size_t i) const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b);

  std::size_t HashValue() const;
  std::size_t EstimatedBytes() const;

 private:
  std::variant<int64_t, double, bool, std::string, Tuple> v_;
};

}  // namespace matryoshka::lang

namespace std {
template <>
struct hash<matryoshka::lang::Value> {
  std::size_t operator()(const matryoshka::lang::Value& v) const {
    return v.HashValue();
  }
};
}  // namespace std

namespace matryoshka::sizing_internal {
template <>
struct Sizer<lang::Value> {
  static std::size_t Of(const lang::Value& v) { return v.EstimatedBytes(); }
};
}  // namespace matryoshka::sizing_internal

#endif  // MATRYOSHKA_LANG_VALUE_H_
