# Empty dependencies file for skewed_bounce_rate.
# This may be replaced when dependencies are built.
