// Locks down that the real thread pool (ClusterConfig::execute_parallel) is
// invisible to everything but wall-clock time: the full operator suite must
// produce identical results AND identical simulated metrics with the pool on
// and off, including under an active fault plan. The cost model is charged
// from the driver thread only, so nothing may depend on execution order.
//
// The FusionDeterminismTest section extends the same contract to the fused
// narrow-op layer (ClusterConfig::fusion): with fusion on, every narrow op
// and every wide-op/action forcing point must produce bit-identical data
// (contents AND order, key_partitions), bit-identical Metrics, and
// byte-identical exported traces versus the eager path — clean, under an
// active FaultPlan, and under a RecoveryPolicy with auto-checkpointing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/extra_ops.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/parallel_shuffle.h"
#include "engine/recovery.h"
#include "engine/shuffle.h"
#include "obs/chrome_trace.h"
#include "obs/trace_recorder.h"

namespace matryoshka::engine {
namespace {

constexpr uint64_t kSeed = 77;

ClusterConfig Config(bool parallel) {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.execute_parallel = parallel;
  // Pin the pool size so real multi-thread scatter/concat runs regardless of
  // how many hardware threads the host exposes (CI containers often pin 1).
  cfg.pool_threads = 4;
  return cfg;
}

struct SuiteOutcome {
  Metrics metrics;
  bool ok = false;
  // Sorted driver-side snapshots of every operator chain's output.
  std::vector<int64_t> ints;
  std::vector<std::pair<int64_t, int64_t>> pairs;
  std::vector<int64_t> extras;
  int64_t count = 0;
  int64_t reduced = 0;
};

/// Runs one fixed program through every operator family and snapshots both
/// the results and the complete metrics.
SuiteOutcome RunSuite(ClusterConfig cfg) {
  Cluster c(cfg);
  SuiteOutcome out;

  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 3000; ++i) kv.emplace_back(i % 64, i % 11);
  auto pairs = Parallelize(&c, kv, 8);

  // Narrow chain.
  auto mapped = Map(pairs, [](const std::pair<int64_t, int64_t>& p) {
    return std::pair<int64_t, int64_t>(p.first, p.second + 1);
  });
  auto filtered =
      Filter(mapped, [](const std::pair<int64_t, int64_t>& p) {
        return p.second % 3 != 0;
      });
  auto flat = FlatMapValues(filtered, [](int64_t v) {
    return std::vector<int64_t>{v, v * 2};
  });
  auto repartitioned = MapPartitions(
      flat, [](const std::vector<std::pair<int64_t, int64_t>>& part) {
        return part;
      });
  auto with_ids = ZipWithUniqueId(Values(repartitioned));
  auto sampled = Sample(Keys(pairs), 0.5, kSeed);

  // Wide operators.
  auto reduced_bag = ReduceByKey(
      repartitioned, [](int64_t a, int64_t b) { return a + b; }, 8);
  auto grouped = GroupByKey(filtered, 8);
  auto grouped_sizes = MapValues(grouped, [](const std::vector<int64_t>& g) {
    return static_cast<int64_t>(g.size());
  });
  auto distinct = Distinct(Keys(filtered), 8);
  auto aggregated = AggregateByKey(
      filtered, int64_t{0}, [](int64_t a, int64_t v) { return a + v; },
      [](int64_t a, int64_t b) { return a + b; }, 8);

  // Joins.
  auto joined = RepartitionJoin(reduced_bag, aggregated, 8);
  auto joined_flat = MapValues(
      joined, [](const std::pair<int64_t, int64_t>& vw) {
        return vw.first + vw.second;
      });
  std::vector<std::pair<int64_t, int64_t>> small_kv;
  for (int64_t i = 0; i < 16; ++i) small_kv.emplace_back(i, i * 10);
  auto small = Parallelize(&c, small_kv, 2, /*scale=*/1.0);
  auto bjoined = BroadcastJoin(reduced_bag, small);
  auto louter = LeftOuterJoin(small, reduced_bag, 8);
  auto cogrouped = CoGroup(reduced_bag, aggregated, 8);
  auto cg_sizes = MapValues(
      cogrouped,
      [](const std::pair<std::vector<int64_t>, std::vector<int64_t>>& g) {
        return static_cast<int64_t>(g.first.size() + 100 * g.second.size());
      });
  auto cart = Cartesian(distinct, Keys(small));
  auto cart_sums = Map(cart, [](const std::pair<int64_t, int64_t>& p) {
    return p.first * 1000 + p.second;
  });

  // Set ops.
  auto sub = Subtract(Keys(filtered), distinct, 8);  // empty by construction
  auto inter = Intersection(Keys(filtered), sampled, 8);
  auto unioned = Union(distinct, inter);

  // Actions.
  out.count = Count(unioned);
  out.reduced =
      Reduce(Values(aggregated), [](int64_t a, int64_t b) { return a + b; })
          .value_or(0);
  auto top = TopK(Keys(pairs), 5, std::less<int64_t>());

  auto snap_pairs = [](std::vector<std::pair<int64_t, int64_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  auto snap_ints = [](std::vector<int64_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };

  out.pairs = snap_pairs(Collect(joined_flat));
  auto more_pairs = snap_pairs(Collect(grouped_sizes));
  out.pairs.insert(out.pairs.end(), more_pairs.begin(), more_pairs.end());
  auto bj = snap_pairs(Collect(MapValues(
      bjoined, [](const std::pair<int64_t, int64_t>& vw) {
        return vw.first - vw.second;
      })));
  out.pairs.insert(out.pairs.end(), bj.begin(), bj.end());
  auto cg = snap_pairs(Collect(cg_sizes));
  out.pairs.insert(out.pairs.end(), cg.begin(), cg.end());

  out.ints = snap_ints(Collect(cart_sums));
  auto extra1 = snap_ints(Collect(sub));
  auto extra2 = snap_ints(Collect(unioned));
  auto extra3 = snap_ints(Collect(Map(with_ids, [](const std::pair<uint64_t, int64_t>& p) {
    return static_cast<int64_t>(p.first);
  })));
  out.extras = extra1;
  out.extras.insert(out.extras.end(), extra2.begin(), extra2.end());
  out.extras.insert(out.extras.end(), extra3.begin(), extra3.end());
  out.extras.insert(out.extras.end(), top.begin(), top.end());
  (void)NotEmpty(louter);

  out.ok = c.ok();
  out.metrics = c.metrics();
  return out;
}

// The simulated cost model must be bit-identical: the pool may only change
// wall-clock time, never a single charged metric.
void ExpectSameMetrics(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.simulated_time_s, b.simulated_time_s);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.elements_processed, b.elements_processed);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  EXPECT_EQ(a.spill_events, b.spill_events);
  EXPECT_EQ(a.peak_task_bytes, b.peak_task_bytes);
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.machines_lost, b.machines_lost);
  EXPECT_EQ(a.recovery_time_s, b.recovery_time_s);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.driver_retries, b.driver_retries);
  EXPECT_EQ(a.plan_fallbacks, b.plan_fallbacks);
}

void ExpectSameOutcome(const SuiteOutcome& a, const SuiteOutcome& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.ints, b.ints);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.extras, b.extras);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.reduced, b.reduced);
  ExpectSameMetrics(a.metrics, b.metrics);
}

// --- Per-operator bit-identity -------------------------------------------
//
// The suite tests above compare sorted snapshots; the checks below are
// stricter: for each wide operator the pool-off and pool-on (4 threads)
// outputs must match partition by partition, element by element, IN ORDER —
// the exact guarantee of the ParallelScatter kernel — along with the
// key_partitions metadata and the full simulated metrics.

template <typename T>
void ExpectBitIdenticalBags(const Bag<T>& a, const Bag<T>& b) {
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  EXPECT_EQ(a.key_partitions(), b.key_partitions());
  for (int64_t i = 0; i < a.num_partitions(); ++i) {
    EXPECT_EQ(a.partitions()[static_cast<std::size_t>(i)],
              b.partitions()[static_cast<std::size_t>(i)])
        << "partition " << i << " differs between pool-off and pool-on";
  }
}

ClusterConfig WithFaults(ClusterConfig cfg) {
  cfg.faults.seed = 5;
  cfg.faults.task_failure_prob = 0.05;
  cfg.faults.straggler_fraction = 0.1;
  cfg.faults.straggler_slowdown = 4.0;
  cfg.faults.speculative_execution = true;
  return cfg;
}

Bag<std::pair<int64_t, int64_t>> MakePairs(Cluster* c) {
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 5000; ++i) kv.emplace_back((i * 37) % 128, i % 17);
  return Parallelize(c, kv, 8);
}

Bag<std::pair<int64_t, int64_t>> MakeSmallPairs(Cluster* c) {
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 32; ++i) kv.emplace_back(i * 4, i * 10);
  return Parallelize(c, kv, 2, /*scale=*/1.0);
}

/// Runs `make_op` (Cluster* -> Bag) once with the pool off and once with a
/// 4-thread pool — clean and again under an active FaultPlan — and requires
/// bit-identical bags and metrics each time.
template <typename MakeOp>
void ExpectOpBitIdentical(const MakeOp& make_op) {
  for (bool faulty : {false, true}) {
    ClusterConfig off_cfg = Config(false);
    ClusterConfig on_cfg = Config(true);
    if (faulty) {
      off_cfg = WithFaults(off_cfg);
      on_cfg = WithFaults(on_cfg);
    }
    Cluster off(off_cfg);
    Cluster on(on_cfg);
    auto a = make_op(&off);
    auto b = make_op(&on);
    ASSERT_TRUE(off.ok());
    ASSERT_TRUE(on.ok());
    ExpectBitIdenticalBags(a, b);
    ExpectSameMetrics(off.metrics(), on.metrics());
  }
}

TEST(ParallelDeterminismTest, ScatterKernelMatchesReferenceLoop) {
  // The kernel's ground truth: the sequential producer-order scatter loop.
  // Skewed, empty, and ragged producers; pool sizes 1..4 plus no pool.
  std::vector<std::vector<int64_t>> inputs(7);
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    if (p == 3) continue;  // leave one producer empty
    for (std::size_t j = 0; j < 100 * p * p + 5; ++j) {
      inputs[p].push_back(static_cast<int64_t>(p * 131071 + j * 2654435761u));
    }
  }
  const std::size_t kParts = 9;
  auto part_of = [&](int64_t x) {
    return static_cast<std::size_t>(static_cast<uint64_t>(x) % kParts);
  };
  std::vector<std::vector<int64_t>> expected(kParts);
  for (const auto& in : inputs) {
    for (int64_t x : in) expected[part_of(x)].push_back(x);
  }
  EXPECT_EQ(internal::ParallelScatter<int64_t>(nullptr, inputs, kParts,
                                               part_of),
            expected);
  for (std::size_t threads = 1; threads <= 4; ++threads) {
    ThreadPool pool(threads);
    EXPECT_EQ(internal::ParallelScatter<int64_t>(&pool, inputs, kParts,
                                                 part_of),
              expected)
        << "with a " << threads << "-thread pool";
  }
}

TEST(ParallelDeterminismTest, RepartitionBitIdentical) {
  ExpectOpBitIdentical(
      [](Cluster* c) { return Repartition(MakePairs(c), 5); });
}

TEST(ParallelDeterminismTest, PartitionByKeyBitIdentical) {
  ExpectOpBitIdentical(
      [](Cluster* c) { return PartitionByKey(MakePairs(c), 8); });
}

TEST(ParallelDeterminismTest, ReduceByKeyBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return ReduceByKey(
        MakePairs(c), [](int64_t a, int64_t b) { return a + b; }, 8);
  });
}

TEST(ParallelDeterminismTest, GroupByKeyBitIdentical) {
  ExpectOpBitIdentical(
      [](Cluster* c) { return GroupByKey(MakePairs(c), 8); });
}

TEST(ParallelDeterminismTest, AggregateByKeyBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return AggregateByKey(
        MakePairs(c), int64_t{0},
        [](int64_t a, int64_t v) { return a + v; },
        [](int64_t a, int64_t b) { return a + b; }, 8);
  });
}

TEST(ParallelDeterminismTest, DistinctBitIdentical) {
  ExpectOpBitIdentical(
      [](Cluster* c) { return Distinct(Keys(MakePairs(c)), 8); });
}

TEST(ParallelDeterminismTest, SubtractBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return Subtract(Keys(MakePairs(c)), Keys(MakeSmallPairs(c)), 8);
  });
}

TEST(ParallelDeterminismTest, IntersectionBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return Intersection(Keys(MakePairs(c)), Keys(MakeSmallPairs(c)), 8);
  });
}

TEST(ParallelDeterminismTest, RepartitionJoinBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    auto pairs = MakePairs(c);
    auto reduced = ReduceByKey(
        pairs, [](int64_t a, int64_t b) { return a + b; }, 8);
    return RepartitionJoin(pairs, reduced, 8);
  });
}

TEST(ParallelDeterminismTest, BroadcastJoinBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return BroadcastJoin(MakePairs(c), MakeSmallPairs(c));
  });
}

TEST(ParallelDeterminismTest, LeftOuterJoinBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return LeftOuterJoin(MakePairs(c), MakeSmallPairs(c), 8);
  });
}

TEST(ParallelDeterminismTest, CoGroupBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return CoGroup(MakePairs(c), MakeSmallPairs(c), 8);
  });
}

TEST(ParallelDeterminismTest, PoolDoesNotPerturbResultsOrCostModel) {
  SuiteOutcome serial = RunSuite(Config(false));
  SuiteOutcome parallel = RunSuite(Config(true));
  ASSERT_TRUE(serial.ok);
  EXPECT_GT(serial.count, 0);
  ExpectSameOutcome(serial, parallel);
}

TEST(ParallelDeterminismTest, PoolIsRepeatableAcrossRuns) {
  SuiteOutcome first = RunSuite(Config(true));
  SuiteOutcome second = RunSuite(Config(true));
  ExpectSameOutcome(first, second);
}

TEST(ParallelDeterminismTest, PoolDoesNotPerturbFaultInjection) {
  // Fault draws are keyed on (seed, stage, task), not on execution order, so
  // an active plan must stay bit-identical under the pool too.
  ClusterConfig serial_cfg = Config(false);
  ClusterConfig parallel_cfg = Config(true);
  for (ClusterConfig* cfg : {&serial_cfg, &parallel_cfg}) {
    cfg->faults.seed = 5;
    cfg->faults.task_failure_prob = 0.05;
    cfg->faults.straggler_fraction = 0.1;
    cfg->faults.straggler_slowdown = 4.0;
    cfg->faults.speculative_execution = true;
  }
  SuiteOutcome serial = RunSuite(serial_cfg);
  SuiteOutcome parallel = RunSuite(parallel_cfg);
  ASSERT_TRUE(serial.ok);
  EXPECT_GT(serial.metrics.failed_tasks, 0);
  ExpectSameOutcome(serial, parallel);
}

// --- Fusion bit-identity --------------------------------------------------
//
// ClusterConfig::fusion defaults on, so every test above already runs the
// fused path. The checks below pin the A/B contract explicitly: fusion off
// is the eager pre-fusion engine, fusion on must match it bit for bit on
// data, metrics, and traces — with all charging done at composition time.

ClusterConfig WithFusion(ClusterConfig cfg, bool enabled) {
  cfg.fusion.enabled = enabled;
  return cfg;
}

ClusterConfig WithStaticFeeds(ClusterConfig cfg, bool enabled) {
  cfg.fusion.static_feeds = enabled;
  return cfg;
}

ClusterConfig WithRecovery(ClusterConfig cfg) {
  cfg.faults.seed = 5;
  cfg.faults.task_failure_prob = 0.05;
  cfg.faults.max_task_retries = 8;
  cfg.faults.machine_loss_times_s = {0.01};
  cfg.recovery.auto_checkpoint = true;
  cfg.recovery.min_checkpoint_lineage = 2;
  cfg.recovery.checkpoint_bytes_per_s = 1e12;  // checkpoints almost free
  cfg.recovery.degraded_replanning = true;
  return cfg;
}

using PairBag = Bag<std::pair<int64_t, int64_t>>;

/// A map -> filter -> mapValues chain (pending under fusion: the filter
/// demotes the tracked counts to a bound, so the trailing mapValues starts
/// a fresh chain on the forced filter output).
PairBag NarrowChain(Cluster* c) {
  auto mapped = Map(MakePairs(c), [](const std::pair<int64_t, int64_t>& p) {
    return std::pair<int64_t, int64_t>(p.first, p.second + 3);
  });
  auto filtered = Filter(mapped, [](const std::pair<int64_t, int64_t>& p) {
    return p.second % 5 != 0;
  });
  return MapValues(filtered, [](int64_t v) { return v * 7; });
}

/// Runs `make_op` (Cluster* -> Bag) with fusion off and on (the fused arm
/// under BOTH feed representations: legacy type-erased std::function chains
/// and static CRTP chains) — pool off/on × {clean, active FaultPlan,
/// FaultPlan + RecoveryPolicy with auto-checkpointing} — and requires
/// bit-identical bags (contents AND order, key_partitions) and full Metrics
/// each time. Metrics are compared BEFORE the fused result is materialized:
/// the fusion contract charges everything at composition time, and forcing
/// must charge nothing — under either feed representation.
template <typename MakeOp>
void ExpectFusionBitIdentical(const MakeOp& make_op) {
  for (int regime = 0; regime < 3; ++regime) {
    for (bool parallel : {false, true}) {
      ClusterConfig base = Config(parallel);
      if (regime == 1) base = WithFaults(base);
      if (regime == 2) base = WithRecovery(base);
      Cluster off(WithFusion(base, false));
      Cluster erased(WithStaticFeeds(WithFusion(base, true), false));
      Cluster fused(WithStaticFeeds(WithFusion(base, true), true));
      auto eager_bag = make_op(&off);
      auto erased_bag = make_op(&erased);
      auto fused_bag = make_op(&fused);
      ASSERT_EQ(off.ok(), erased.ok())
          << "regime " << regime << " pool " << parallel;
      ASSERT_EQ(off.ok(), fused.ok())
          << "regime " << regime << " pool " << parallel;
      ExpectSameMetrics(off.metrics(), erased.metrics());
      ExpectSameMetrics(off.metrics(), fused.metrics());
      ExpectBitIdenticalBags(eager_bag, erased_bag);
      ExpectBitIdenticalBags(eager_bag, fused_bag);
      // ExpectBitIdenticalBags forced any pending chain; that must not have
      // added a single charge on either fused arm.
      ExpectSameMetrics(off.metrics(), erased.metrics());
      ExpectSameMetrics(off.metrics(), fused.metrics());
    }
  }
}

// Per narrow op: composition must match eager execution exactly.

TEST(FusionDeterminismTest, MapChainBitIdentical) {
  ExpectFusionBitIdentical([](Cluster* c) {
    auto once = Map(MakePairs(c), [](const std::pair<int64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(p.first, p.second + 1);
    });
    return Map(once, [](const std::pair<int64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(p.second, p.first * 2);
    });
  });
}

TEST(FusionDeterminismTest, FilterBitIdentical) {
  ExpectFusionBitIdentical([](Cluster* c) {
    return Filter(MakePairs(c), [](const std::pair<int64_t, int64_t>& p) {
      return (p.first + p.second) % 3 != 0;
    });
  });
}

TEST(FusionDeterminismTest, FlatMapBitIdentical) {
  ExpectFusionBitIdentical([](Cluster* c) {
    return FlatMap(Keys(MakePairs(c)), [](int64_t k) {
      return std::vector<int64_t>{k, -k};
    });
  });
}

TEST(FusionDeterminismTest, MapValuesBitIdentical) {
  ExpectFusionBitIdentical([](Cluster* c) {
    return MapValues(MakePairs(c), [](int64_t v) { return v * 11 - 5; });
  });
}

TEST(FusionDeterminismTest, FlatMapValuesBitIdentical) {
  ExpectFusionBitIdentical([](Cluster* c) {
    return FlatMapValues(MakePairs(c), [](int64_t v) {
      return std::vector<int64_t>{v, v + 1, v + 2};
    });
  });
}

TEST(FusionDeterminismTest, ZipWithUniqueIdBitIdentical) {
  ExpectFusionBitIdentical([](Cluster* c) {
    // Composed onto a size-preserving chain: stream offsets must equal the
    // materialized offsets, so the assigned ids match the eager path.
    auto mapped = Map(Keys(MakePairs(c)), [](int64_t k) { return k * 3; });
    auto zipped = ZipWithUniqueId(mapped);
    return Map(zipped, [](const std::pair<uint64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(static_cast<int64_t>(p.first),
                                         p.second);
    });
  });
}

TEST(FusionDeterminismTest, SampleBitIdentical) {
  ExpectFusionBitIdentical([](Cluster* c) {
    // The per-partition position counter drives Sample's deterministic
    // draws; composing must reproduce them exactly.
    auto mapped = Map(Keys(MakePairs(c)), [](int64_t k) { return k + 100; });
    return Sample(mapped, 0.5, kSeed);
  });
}

TEST(FusionDeterminismTest, MapPartitionsForcesPendingInput) {
  ExpectFusionBitIdentical([](Cluster* c) {
    auto mapped = Map(MakePairs(c), [](const std::pair<int64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(p.first, p.second * 2);
    });
    return MapPartitions(
        mapped, [](const std::vector<std::pair<int64_t, int64_t>>& part) {
          std::vector<std::pair<int64_t, int64_t>> out(part.rbegin(),
                                                       part.rend());
          return out;
        });
  });
}

TEST(FusionDeterminismTest, CardinalityChangingChainBitIdentical) {
  // filter -> map -> sample: every op after the filter composes on a forced
  // boundary; the data and charges must still match eager exactly.
  ExpectFusionBitIdentical([](Cluster* c) {
    auto filtered =
        Filter(MakePairs(c), [](const std::pair<int64_t, int64_t>& p) {
          return p.first % 2 == 0;
        });
    auto mapped = Map(filtered, [](const std::pair<int64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(p.first / 2, p.second);
    });
    return Sample(mapped, 0.7, kSeed + 1);
  });
}

TEST(FusionDeterminismTest, DepthCapForcesBoundary) {
  // A chain longer than max_chain_depth must force mid-chain and keep both
  // data and metrics identical to eager — under either feed representation.
  for (bool static_feeds : {false, true}) {
    for (bool parallel : {false, true}) {
      ClusterConfig on_cfg =
          WithStaticFeeds(WithFusion(Config(parallel), true), static_feeds);
      on_cfg.fusion.max_chain_depth = 2;
      Cluster off(WithFusion(Config(parallel), false));
      Cluster on(on_cfg);
      auto program = [](Cluster* c) {
        auto bag = MakePairs(c);
        for (int i = 0; i < 5; ++i) {
          bag = Map(bag, [](const std::pair<int64_t, int64_t>& p) {
            return std::pair<int64_t, int64_t>(p.first, p.second + 1);
          });
        }
        return bag;
      };
      auto eager = program(&off);
      auto fused = program(&on);
      ExpectSameMetrics(off.metrics(), on.metrics());
      ExpectBitIdenticalBags(eager, fused);
    }
  }
}

// Per wide-op forcing point: a pending chain consumed by each wide operator
// must materialize to exactly the eager input, leaving the wide op's output
// and charges bit-identical.

TEST(FusionDeterminismTest, ForcedByRepartition) {
  ExpectFusionBitIdentical(
      [](Cluster* c) { return Repartition(NarrowChain(c), 5); });
}

TEST(FusionDeterminismTest, ForcedByPartitionByKey) {
  ExpectFusionBitIdentical(
      [](Cluster* c) { return PartitionByKey(NarrowChain(c), 8); });
}

TEST(FusionDeterminismTest, ForcedByReduceByKeyBothPaths) {
  // Shuffle path.
  ExpectFusionBitIdentical([](Cluster* c) {
    return ReduceByKey(
        NarrowChain(c), [](int64_t a, int64_t b) { return a + b; }, 8);
  });
  // Co-partitioned narrow path: a key-preserving pending chain over an
  // already-partitioned bag.
  ExpectFusionBitIdentical([](Cluster* c) {
    auto keyed = PartitionByKey(MakePairs(c), 8);
    auto chain = MapValues(keyed, [](int64_t v) { return v + 2; });
    return ReduceByKey(
        chain, [](int64_t a, int64_t b) { return a + b; }, 8);
  });
}

TEST(FusionDeterminismTest, ForcedByGroupByKeyAndDistinct) {
  ExpectFusionBitIdentical([](Cluster* c) {
    auto grouped = GroupByKey(NarrowChain(c), 8);
    return MapValues(grouped, [](const std::vector<int64_t>& g) {
      return static_cast<int64_t>(g.size());
    });
  });
  ExpectFusionBitIdentical(
      [](Cluster* c) { return Distinct(Keys(NarrowChain(c)), 8); });
}

TEST(FusionDeterminismTest, ForcedByJoins) {
  ExpectFusionBitIdentical([](Cluster* c) {
    auto joined = RepartitionJoin(NarrowChain(c), MakeSmallPairs(c), 8);
    return MapValues(joined, [](const std::pair<int64_t, int64_t>& vw) {
      return vw.first + vw.second;
    });
  });
  ExpectFusionBitIdentical([](Cluster* c) {
    auto joined = BroadcastJoin(NarrowChain(c), MakeSmallPairs(c));
    return MapValues(joined, [](const std::pair<int64_t, int64_t>& vw) {
      return vw.first - vw.second;
    });
  });
  ExpectFusionBitIdentical([](Cluster* c) {
    auto joined = LeftOuterJoin(MakeSmallPairs(c), NarrowChain(c), 8);
    return MapValues(
        joined, [](const std::pair<int64_t, std::optional<int64_t>>& vw) {
          return vw.first + vw.second.value_or(-1);
        });
  });
  ExpectFusionBitIdentical([](Cluster* c) {
    auto cg = CoGroup(NarrowChain(c), MakeSmallPairs(c), 8);
    return MapValues(
        cg, [](const std::pair<std::vector<int64_t>, std::vector<int64_t>>& g) {
          return static_cast<int64_t>(g.first.size() + 100 * g.second.size());
        });
  });
}

TEST(FusionDeterminismTest, ForcedBySetOpsUnionAndCartesian) {
  ExpectFusionBitIdentical([](Cluster* c) {
    return Subtract(Keys(NarrowChain(c)), Keys(MakeSmallPairs(c)), 8);
  });
  ExpectFusionBitIdentical([](Cluster* c) {
    return Intersection(Keys(NarrowChain(c)), Keys(MakePairs(c)), 8);
  });
  ExpectFusionBitIdentical([](Cluster* c) {
    auto left = Map(Keys(MakePairs(c)), [](int64_t k) { return k + 1; });
    return Union(left, Keys(MakeSmallPairs(c)));
  });
  ExpectFusionBitIdentical([](Cluster* c) {
    auto cart = Cartesian(Keys(MakeSmallPairs(c)),
                          Distinct(Keys(NarrowChain(c)), 4));
    return Map(cart, [](const std::pair<int64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(p.first, p.second);
    });
  });
}

TEST(FusionDeterminismTest, ForcedByCheckpoint) {
  ExpectFusionBitIdentical(
      [](Cluster* c) { return Checkpoint(NarrowChain(c)); });
}

TEST(FusionDeterminismTest, ActionsForceAndMatch) {
  // Count / NotEmpty / Reduce / Collect / TopK on a pending chain must
  // return the eager values and charge the eager metrics.
  for (int regime = 0; regime < 3; ++regime) {
    ClusterConfig base = Config(true);
    if (regime == 1) base = WithFaults(base);
    if (regime == 2) base = WithRecovery(base);
    Cluster off(WithFusion(base, false));
    Cluster erased(WithStaticFeeds(WithFusion(base, true), false));
    Cluster fused(WithStaticFeeds(WithFusion(base, true), true));
    auto run = [](Cluster* c) {
      auto chain = NarrowChain(c);
      auto keys = Keys(NarrowChain(c));
      return std::tuple<int64_t, bool, int64_t,
                        std::vector<std::pair<int64_t, int64_t>>,
                        std::vector<int64_t>>(
          Count(chain), NotEmpty(chain),
          Reduce(keys, [](int64_t a, int64_t b) { return a + b; }).value_or(0),
          Collect(NarrowChain(c)), TopK(keys, 5, std::less<int64_t>()));
    };
    const auto expected = run(&off);
    EXPECT_EQ(expected, run(&erased)) << "regime " << regime;
    EXPECT_EQ(expected, run(&fused)) << "regime " << regime;
    ExpectSameMetrics(off.metrics(), erased.metrics());
    ExpectSameMetrics(off.metrics(), fused.metrics());
  }
}

// Suite level: the full operator program, the fault program, and the
// recovery program must be outcome- and metric-identical across fusion arms.

TEST(FusionDeterminismTest, FusionDoesNotPerturbSuiteResultsOrCostModel) {
  SuiteOutcome eager = RunSuite(WithFusion(Config(true), false));
  ASSERT_TRUE(eager.ok);
  EXPECT_GT(eager.count, 0);
  for (bool static_feeds : {false, true}) {
    SuiteOutcome fused = RunSuite(
        WithStaticFeeds(WithFusion(Config(true), true), static_feeds));
    ExpectSameOutcome(eager, fused);
  }
}

TEST(FusionDeterminismTest, FusionDoesNotPerturbFaultInjection) {
  SuiteOutcome eager = RunSuite(WithFaults(WithFusion(Config(true), false)));
  ASSERT_TRUE(eager.ok);
  EXPECT_GT(eager.metrics.failed_tasks, 0);
  for (bool static_feeds : {false, true}) {
    SuiteOutcome fused = RunSuite(WithFaults(
        WithStaticFeeds(WithFusion(Config(true), true), static_feeds)));
    ExpectSameOutcome(eager, fused);
  }
}

TEST(FusionDeterminismTest, FusionDoesNotPerturbRecoveryFeatures) {
  SuiteOutcome eager = RunSuite(WithRecovery(WithFusion(Config(true), false)));
  ASSERT_TRUE(eager.ok);
  EXPECT_EQ(eager.metrics.machines_lost, 1);
  EXPECT_GT(eager.metrics.checkpoints_written, 0);
  for (bool static_feeds : {false, true}) {
    SuiteOutcome fused = RunSuite(WithRecovery(
        WithStaticFeeds(WithFusion(Config(true), true), static_feeds)));
    ExpectSameOutcome(eager, fused);
  }
}

/// Exported trace of a narrow-chain + wide-op + action program (the obs
/// suite's byte-identity pattern).
std::string FusionTraceFor(ClusterConfig cfg) {
  Cluster c(cfg);
  obs::TraceRecorder rec;
  rec.SetRunNameHint("fusion-suite");
  c.set_trace(&rec);
  auto chain = NarrowChain(&c);
  auto reduced = ReduceByKey(
      chain, [](int64_t a, int64_t b) { return a + b; }, 8);
  (void)Count(reduced);
  (void)Collect(Keys(chain));
  EXPECT_TRUE(c.ok());
  return obs::ChromeTraceToString(rec);
}

TEST(FusionDeterminismTest, TraceIsByteIdenticalAcrossFusionArms) {
  for (int regime = 0; regime < 3; ++regime) {
    ClusterConfig base = Config(true);
    if (regime == 1) base = WithFaults(base);
    if (regime == 2) base = WithRecovery(base);
    const std::string eager = FusionTraceFor(WithFusion(base, false));
    EXPECT_EQ(eager, FusionTraceFor(WithStaticFeeds(WithFusion(base, true),
                                                    false)))
        << "regime " << regime;
    EXPECT_EQ(eager,
              FusionTraceFor(WithStaticFeeds(WithFusion(base, true), true)))
        << "regime " << regime;
  }
}

TEST(ParallelDeterminismTest, PoolDoesNotPerturbRecoveryFeatures) {
  // Auto-checkpointing, degraded re-planning, and machine loss are all
  // charged from the driver thread; the pool must not perturb a single new
  // counter either.
  ClusterConfig serial_cfg = Config(false);
  ClusterConfig parallel_cfg = Config(true);
  for (ClusterConfig* cfg : {&serial_cfg, &parallel_cfg}) {
    cfg->faults.seed = 5;
    cfg->faults.task_failure_prob = 0.05;
    cfg->faults.max_task_retries = 8;
    cfg->faults.machine_loss_times_s = {0.01};
    cfg->recovery.auto_checkpoint = true;
    cfg->recovery.min_checkpoint_lineage = 2;
    cfg->recovery.checkpoint_bytes_per_s = 1e12;  // checkpoints almost free
    cfg->recovery.degraded_replanning = true;
  }
  SuiteOutcome serial = RunSuite(serial_cfg);
  SuiteOutcome parallel = RunSuite(parallel_cfg);
  ASSERT_TRUE(serial.ok);
  EXPECT_EQ(serial.metrics.machines_lost, 1);
  EXPECT_GT(serial.metrics.checkpoints_written, 0);
  ExpectSameOutcome(serial, parallel);
}

}  // namespace
}  // namespace matryoshka::engine
