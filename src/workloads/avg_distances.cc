#include "workloads/avg_distances.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "baselines/baselines.h"
#include "core/matryoshka.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"
#include "workloads/connected_components.h"

namespace matryoshka::workloads {

namespace {

using datagen::Edge;
using engine::Bag;
using engine::Cluster;
using Vertex = int64_t;

/// BFS distances from `start` over an adjacency map; returns the sum of
/// distances to every reachable vertex.
int64_t BfsDistanceSum(
    const std::unordered_map<Vertex, std::vector<Vertex>>& adj, Vertex start) {
  std::unordered_map<Vertex, int64_t> dist;
  dist[start] = 0;
  std::deque<Vertex> queue{start};
  int64_t sum = 0;
  while (!queue.empty()) {
    Vertex v = queue.front();
    queue.pop_front();
    auto it = adj.find(v);
    if (it == adj.end()) continue;
    for (Vertex w : it->second) {
      if (dist.emplace(w, dist[v] + 1).second) {
        sum += dist[w];
        queue.push_back(w);
      }
    }
  }
  return sum;
}

std::unordered_map<Vertex, std::vector<Vertex>> BuildAdjacency(
    const std::vector<Edge>& edges) {
  std::unordered_map<Vertex, std::vector<Vertex>> adj;
  for (const Edge& e : edges) adj[e.src].push_back(e.dst);
  return adj;
}

/// Number of BFS settles a sequential all-pairs run performs (for the
/// outer-parallel cost model): one pass over the edge list per BFS.
int64_t AllPairsCostElements(const std::vector<Edge>& edges) {
  std::unordered_set<Vertex> verts;
  for (const Edge& e : edges) {
    verts.insert(e.src);
    verts.insert(e.dst);
  }
  return static_cast<int64_t>(verts.size()) *
         static_cast<int64_t>(edges.size());
}

}  // namespace

double SequentialAvgDistance(const std::vector<Edge>& edges) {
  auto adj = BuildAdjacency(edges);
  std::unordered_set<Vertex> verts;
  for (const Edge& e : edges) {
    verts.insert(e.src);
    verts.insert(e.dst);
  }
  const int64_t n = static_cast<int64_t>(verts.size());
  if (n <= 1) return 0.0;
  int64_t total = 0;
  for (Vertex v : verts) total += BfsDistanceSum(adj, v);
  return static_cast<double>(total) / static_cast<double>(n * (n - 1));
}

AvgDistancesResult AvgDistancesMatryoshka(Cluster* cluster,
                                          const Bag<Edge>& edges,
                                          const AvgDistancesParams& params,
                                          core::OptimizerOptions options) {
  using core::InnerBag;
  using core::InnerScalar;

  // Level 1: components, via the flat library function, then grouped into
  // the nested representation.
  auto comps = ConnectedComponents(edges);
  auto edges_by_comp = EdgesByComponent(edges, comps);
  auto nested = core::GroupByKeyIntoNestedBag(edges_by_comp, options);

  auto avg = core::MapWithLiftedUdf(nested, [&](const core::LiftingContext&
                                                    ctx,
                                                const InnerScalar<int64_t>&,
                                                const InnerBag<Edge>& es) {
    // Component vertex sets (level-1 tags) and per-source adjacency.
    auto vertices = core::LiftedDistinct(
        core::LiftedFlatMap(es, [](const Edge& e) {
          return std::vector<Vertex>{e.src, e.dst};
        }));
    auto edges_by_src = core::LiftedMap(es, [](const Edge& e) {
      return std::pair<Vertex, Vertex>(e.src, e.dst);
    });
    // Every BFS step of every instance probes the component's edges:
    // rekey + partition them once.
    auto edges_static = core::MakeParentStaticJoinSide(edges_by_src);

    // Level 2: one BFS instance per vertex — each vertex of each component
    // becomes its own child-tagged invocation.
    InnerScalar<Vertex> starts = core::LiftElements(vertices);

    // BFS state at level 2: the visited set with distances; the frontier at
    // iteration i is exactly the vertices discovered at distance i.
    auto visited0 = core::LiftedMap(
        core::InnerBag<Vertex>(starts.ctx(), starts.repr()),
        [](Vertex v) {
          return std::pair<Vertex, int64_t>(v, 0);
        });

    auto final_visited = core::LiftedWhile(
        visited0,
        [&](const core::LiftingContext& loop_ctx,
            const InnerBag<std::pair<Vertex, int64_t>>& visited,
            int64_t iter) {
          // Level 3 (parallel frontier expansion): expand the frontier
          // through the component's edges — a join across nesting levels
          // on the parent (component) tag.
          auto frontier = core::LiftedFilter(
              visited, [iter](const std::pair<Vertex, int64_t>& p) {
                return p.second == iter;
              });
          auto expanded = core::LiftedJoinWithParentStatic(
              core::LiftedMap(frontier,
                              [](const std::pair<Vertex, int64_t>& p) {
                                return std::pair<Vertex, char>(p.first, 0);
                              }),
              edges_static);
          auto candidates = core::LiftedReduceByKey(
              core::LiftedMap(
                  expanded,
                  [iter](const std::pair<Vertex,
                                         std::pair<char, Vertex>>& p) {
                    return std::pair<Vertex, int64_t>(p.second.second,
                                                      iter + 1);
                  }),
              [](int64_t a, int64_t) { return a; });  // dedup per instance
          // Keep only candidates not already visited.
          auto fresh = core::LiftedMap(
              core::LiftedFilter(
                  core::LiftedLeftOuterJoin(candidates, visited),
                  [](const std::pair<
                      Vertex, std::pair<int64_t, std::optional<int64_t>>>&
                         p) { return !p.second.second.has_value(); }),
              [](const std::pair<Vertex,
                                 std::pair<int64_t, std::optional<int64_t>>>&
                     p) {
                return std::pair<Vertex, int64_t>(p.first, p.second.first);
              });
          auto next = core::LiftedUnion(visited, fresh);
          // A BFS instance continues while it discovered new vertices.
          auto new_count = core::LiftedFold(
              fresh, int64_t{0},
              [](const std::pair<Vertex, int64_t>&) { return int64_t{1}; },
              [](int64_t a, int64_t b) { return a + b; });
          auto cond = core::UnaryScalarOp(
              new_count, [](int64_t c) { return c > 0; });
          (void)loop_ctx;
          return std::make_pair(next, cond);
        },
        params.max_bfs_iterations);

    // Per BFS instance: the distance sum; then ascend to the component
    // level and average over all n*(n-1) ordered pairs.
    auto per_start_sum = core::LiftedFold(
        final_visited, int64_t{0},
        [](const std::pair<Vertex, int64_t>& p) { return p.second; },
        [](int64_t a, int64_t b) { return a + b; });
    auto sums_at_comp = core::LowerToParent(per_start_sum, ctx);
    auto total = core::LiftedFold(
        sums_at_comp, int64_t{0}, [](int64_t s) { return s; },
        [](int64_t a, int64_t b) { return a + b; });
    auto n = core::LiftedCount(vertices);
    return core::BinaryScalarOp(total, n, [](int64_t t, int64_t nv) {
      return nv <= 1 ? 0.0
                     : static_cast<double>(t) /
                           static_cast<double>(nv * (nv - 1));
    });
  });

  auto collected = engine::Collect(core::ZipWithKeys(nested.keys(), avg));
  return FinishRun<int64_t, double>(cluster, std::move(collected));
}

AvgDistancesResult AvgDistancesOuterParallel(Cluster* cluster,
                                             const Bag<Edge>& edges,
                                             const AvgDistancesParams&) {
  constexpr double kExpansion = 4.0;
  // Sequential all-pairs BFS is pointer chasing through hash maps.
  constexpr double kSeqWeight = 5.0;
  auto comps = ConnectedComponents(edges);
  auto edges_by_comp = EdgesByComponent(edges, comps);
  auto grouped = engine::GroupByKey(edges_by_comp, -1, kExpansion);
  auto avgs = baselines::ProcessGroupsSequentially(
      grouped,
      [](const int64_t&, const std::vector<Edge>& es) {
        return SequentialAvgDistance(es);
      },
      [](const int64_t&, const std::vector<Edge>& es) {
        return AllPairsCostElements(es);
      },
      kExpansion, kSeqWeight);
  auto collected = engine::Collect(avgs);
  return FinishRun<int64_t, double>(cluster, std::move(collected));
}

AvgDistancesResult AvgDistancesInnerParallel(Cluster* cluster,
                                             const Bag<Edge>& edges,
                                             const AvgDistancesParams& params) {
  auto comps = ConnectedComponents(edges);
  auto edges_by_comp = EdgesByComponent(edges, comps);
  std::vector<std::pair<int64_t, double>> avgs;
  baselines::ForEachGroupInnerParallel(
      edges_by_comp, [&](const int64_t& comp, const Bag<Edge>& es) {
        constexpr int64_t kGroupParallelism = 16;
        auto edges_by_src = engine::Map(es, [](const Edge& e) {
          return std::pair<Vertex, Vertex>(e.src, e.dst);
        });
        std::vector<Vertex> verts = engine::Collect(engine::Distinct(
            engine::FlatMap(es,
                            [](const Edge& e) {
                              return std::vector<Vertex>{e.src, e.dst};
                            }),
            kGroupParallelism));
        const int64_t n = static_cast<int64_t>(verts.size());
        int64_t total = 0;
        // Driver loop over start vertices: one engine-parallel BFS each.
        for (Vertex start : verts) {
          if (!cluster->ok()) return;
          auto visited = engine::Parallelize(
              cluster, std::vector<std::pair<Vertex, int64_t>>{{start, 0}},
              1);
          for (int64_t iter = 0;
               iter < params.max_bfs_iterations && cluster->ok(); ++iter) {
            auto frontier = engine::Filter(
                visited, [iter](const std::pair<Vertex, int64_t>& p) {
                  return p.second == iter;
                });
            auto expanded = engine::RepartitionJoin(
                engine::Map(frontier,
                            [](const std::pair<Vertex, int64_t>& p) {
                              return std::pair<Vertex, char>(p.first, 0);
                            }),
                edges_by_src, kGroupParallelism);
            auto candidates = engine::ReduceByKey(
                engine::Map(
                    expanded,
                    [iter](const std::pair<Vertex,
                                           std::pair<char, Vertex>>& p) {
                      return std::pair<Vertex, int64_t>(p.second.second,
                                                        iter + 1);
                    }),
                [](int64_t a, int64_t) { return a; }, kGroupParallelism);
            auto fresh = engine::Map(
                engine::Filter(
                    engine::LeftOuterJoin(candidates, visited,
                                          kGroupParallelism),
                    [](const std::pair<
                        Vertex, std::pair<int64_t, std::optional<int64_t>>>&
                           p) { return !p.second.second.has_value(); }),
                [](const std::pair<
                    Vertex, std::pair<int64_t, std::optional<int64_t>>>& p) {
                  return std::pair<Vertex, int64_t>(p.first, p.second.first);
                });
            visited = engine::Union(visited, fresh);
            if (!engine::NotEmpty(fresh)) break;  // one job per BFS step
          }
          for (auto& [v, d] : engine::Collect(visited)) {
            (void)v;
            total += d;
          }
        }
        avgs.emplace_back(
            comp, n <= 1 ? 0.0
                         : static_cast<double>(total) /
                               static_cast<double>(n * (n - 1)));
      });
  if (!cluster->ok()) avgs.clear();
  return FinishRun<int64_t, double>(cluster, std::move(avgs));
}

AvgDistancesResult RunAvgDistances(Cluster* cluster, const Bag<Edge>& edges,
                                   const AvgDistancesParams& params,
                                   Variant variant,
                                   core::OptimizerOptions options) {
  switch (variant) {
    case Variant::kMatryoshka:
      return AvgDistancesMatryoshka(cluster, edges, params, options);
    case Variant::kOuterParallel:
      return AvgDistancesOuterParallel(cluster, edges, params);
    case Variant::kInnerParallel:
      return AvgDistancesInnerParallel(cluster, edges, params);
    case Variant::kDiqlLike:
      break;
  }
  AvgDistancesResult r;
  r.status = Status::Unsupported(
      "DIQL-like baseline cannot run iterative tasks");
  return r;
}

std::vector<std::pair<int64_t, double>> AvgDistancesReference(
    const std::vector<Edge>& edges) {
  auto comps = ConnectedComponentsReference(edges);
  std::unordered_map<Vertex, int64_t> comp_of;
  for (const auto& [c, v] : comps) comp_of[v] = c;
  std::map<int64_t, std::vector<Edge>> by_comp;
  for (const Edge& e : edges) by_comp[comp_of[e.src]].push_back(e);
  std::vector<std::pair<int64_t, double>> out;
  out.reserve(by_comp.size());
  for (const auto& [c, es] : by_comp) {
    out.emplace_back(c, SequentialAvgDistance(es));
  }
  return out;
}

}  // namespace matryoshka::workloads
