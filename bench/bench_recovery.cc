// Recovery A/B: the Fig. 1 K-means setup run under the StandardFaultPlan
// (transient failures + one machine lost mid-run), with and without the
// recovery subsystem (auto-checkpointing + driver-level retry + degraded
// re-planning), for the inner-parallel workaround and Matryoshka.
//
// The quantitative claim on top of bench_faults: recovery *work* follows the
// job count. The inner-parallel workaround re-pays retry backoff and loss
// recompute once per inner computation, so its recovery_s counter grows
// linearly with the configurations axis, while checkpointed Matryoshka's
// stays flat — its stage count (and hence its exposure to the fault regime)
// is independent of the group count, and auto-checkpointing bounds the
// lineage any machine loss has to recompute.
//
// x-axis: args are (configurations, recovery_on). Compare recovery_on=1
// against recovery_on=0 of the same variant; sweep configurations to see the
// scaling. Pass --faults=<prob> to override the injected task failure
// probability (default 0.01).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "engine/recovery.h"
#include "workloads/kmeans.h"

namespace matryoshka::bench {
namespace {

using workloads::KMeansParams;
using workloads::Variant;

constexpr int64_t kTotalPoints = 1 << 18;
constexpr double kTargetGb = 8.0;
constexpr uint64_t kSeed = 2021;

double g_fault_prob = 0.01;  // set from --faults in main()

KMeansParams Params() {
  KMeansParams p;
  p.k = 4;
  p.max_iterations = 10;
  p.epsilon = 0.0;  // fixed work per run, like Fig. 1
  return p;
}

engine::ClusterConfig Config(bool recovery_on) {
  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, kTargetGb, kTotalPoints,
                sizeof(std::pair<int64_t, datagen::Point>));
  cfg.faults = StandardFaultPlan(kSeed);
  cfg.faults.task_failure_prob = g_fault_prob;
  if (recovery_on) cfg.recovery = StandardRecoveryPolicy();
  return cfg;
}

void RunVariant(benchmark::State& state, Variant variant) {
  const int64_t configs = state.range(0);
  const bool recovery_on = state.range(1) != 0;
  auto data = datagen::GenerateGroupedPoints(kTotalPoints, configs, 3, kSeed);
  engine::Cluster cluster(Config(recovery_on));
  ObsAttach(&cluster,
            variant == Variant::kInnerParallel ? "recovery/inner-parallel"
                                               : "recovery/matryoshka",
            {configs, recovery_on ? 1 : 0});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    workloads::KMeansResult result;
    if (recovery_on) {
      // Driver-level retry: a run killed by task-retry exhaustion restarts
      // from the parallelized input (its lineage is depth 1 — the
      // checkpoint) instead of surfacing the sticky failure.
      engine::RunWithRecovery(&cluster, [&](int) {
        result = workloads::RunKMeans(&cluster, bag, Params(), variant);
      });
    } else {
      result = workloads::RunKMeans(&cluster, bag, Params(), variant);
    }
    Report(state, result);
  }
  state.counters["recovery_on"] = recovery_on ? 1 : 0;
}

void BM_Recovery_InnerParallel(benchmark::State& state) {
  RunVariant(state, Variant::kInnerParallel);
}
void BM_Recovery_Matryoshka(benchmark::State& state) {
  RunVariant(state, Variant::kMatryoshka);
}

#define RECOVERY_ARGS                                                   \
  ArgsProduct({{64, 256}, {0, 1}})                                      \
      ->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1)

BENCHMARK(BM_Recovery_InnerParallel)->RECOVERY_ARGS;
BENCHMARK(BM_Recovery_Matryoshka)->RECOVERY_ARGS;

}  // namespace
}  // namespace matryoshka::bench

int main(int argc, char** argv) {
  matryoshka::bench::g_fault_prob =
      matryoshka::bench::ParseFaultsFlag(&argc, argv);
  matryoshka::bench::ObsSession::Get().ParseFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  matryoshka::bench::ObsSession::Get().Finalize();
  return 0;
}
