#ifndef MATRYOSHKA_BENCH_BENCH_UTIL_H_
#define MATRYOSHKA_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/cluster.h"
#include "workloads/workload.h"

/// Shared setup for the per-figure benchmark binaries. Each binary
/// regenerates one figure of the paper's evaluation (Sec. 9): it sweeps the
/// figure's x-axis as google-benchmark args and reports the *simulated*
/// cluster time as manual time, plus jobs / shuffle / OOM status as
/// counters. Runs that the paper reports as failing (out of memory) are
/// reported with counter oom=1 and time 0.
namespace matryoshka::bench {

/// The paper's evaluation cluster (Sec. 9.1): 25 machines, 2x8 cores, 22 GB
/// for Spark per machine, 1 Gb network, parallelism 3x total cores.
inline engine::ClusterConfig PaperCluster() {
  engine::ClusterConfig cfg;
  cfg.num_machines = 25;
  cfg.cores_per_machine = 16;
  cfg.memory_per_machine_bytes = 22.0 * (1ULL << 30);
  cfg.network_bytes_per_s = 125e6;
  cfg.job_launch_overhead_s = 0.1;
  cfg.task_overhead_s = 0.004;
  cfg.per_element_cost_s = 100e-9;
  cfg.default_parallelism = 3 * 25 * 16;
  return cfg;
}

/// The larger cluster of Sec. 9.7: 36 machines with 40 hardware threads and
/// 100 GB memory per Spark worker.
inline engine::ClusterConfig LargePaperCluster() {
  engine::ClusterConfig cfg = PaperCluster();
  cfg.num_machines = 36;
  cfg.cores_per_machine = 40;
  cfg.memory_per_machine_bytes = 100.0 * (1ULL << 30);
  cfg.default_parallelism = 3 * 36 * 40;
  return cfg;
}

/// The reference fault regime for A/B (faults on vs. off) runs: occasional
/// transient task failures with a generous retry budget (so runs survive),
/// a sprinkle of 4x stragglers, and one machine lost early in the run. All
/// draws are seeded: every benchmark iteration sees the identical fault
/// history.
inline engine::FaultPlan StandardFaultPlan(uint64_t seed = 2021) {
  engine::FaultPlan plan;
  plan.seed = seed;
  plan.task_failure_prob = 0.01;
  plan.max_task_retries = 6;
  plan.retry_backoff_s = 0.5;
  plan.straggler_fraction = 0.05;
  plan.straggler_slowdown = 4.0;
  plan.machine_loss_times_s = {30.0};
  return plan;
}

/// Parses and strips a `--faults[=prob]` flag (must precede
/// benchmark::Initialize, which rejects unknown flags). Returns the task
/// failure probability to use for the fault-on arms: the StandardFaultPlan
/// default when the flag is absent, or the given override.
inline double ParseFaultsFlag(int* argc, char** argv) {
  double prob = StandardFaultPlan().task_failure_prob;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) continue;  // default prob
    if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      prob = std::atof(argv[i] + 9);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return prob;
}

/// Declares that the synthetic dataset of `synthetic_elements` elements
/// (about `bytes_per_element` estimated bytes each) stands for
/// `target_gb` GB of real data: sets data_scale so that each synthetic
/// element models R real ones in both CPU and memory terms.
inline void ScaleToTarget(engine::ClusterConfig* cfg, double target_gb,
                          int64_t synthetic_elements,
                          double bytes_per_element) {
  const double real_elements =
      target_gb * (1ULL << 30) / bytes_per_element;
  cfg->data_scale = real_elements / static_cast<double>(synthetic_elements);
}

/// Fills the benchmark state from a finished run: simulated time as manual
/// time, plus diagnostic counters. OOM runs get time 0 and oom=1 (mirroring
/// the "X" marks of the paper's figures).
template <typename K, typename R>
void Report(benchmark::State& state,
            const workloads::WorkloadResult<K, R>& result) {
  if (result.ok()) {
    state.SetIterationTime(result.metrics.simulated_time_s);
    state.counters["oom"] = 0;
  } else {
    state.SetIterationTime(0.0);
    state.counters["oom"] = result.status.IsOutOfMemory() ? 1 : -1;
    state.SetLabel(result.status.ToString());
  }
  state.counters["jobs"] = static_cast<double>(result.metrics.jobs);
  state.counters["stages"] = static_cast<double>(result.metrics.stages);
  state.counters["shuffle_gb"] =
      result.metrics.shuffle_bytes / (1ULL << 30);
  state.counters["spills"] = static_cast<double>(result.metrics.spill_events);
  if (result.metrics.failed_tasks > 0 || result.metrics.machines_lost > 0 ||
      result.metrics.speculative_launches > 0) {
    state.counters["retries"] =
        static_cast<double>(result.metrics.task_retries);
    state.counters["failed_tasks"] =
        static_cast<double>(result.metrics.failed_tasks);
    state.counters["recovery_s"] = result.metrics.recovery_time_s;
  }
}

}  // namespace matryoshka::bench

#endif  // MATRYOSHKA_BENCH_BENCH_UTIL_H_
