#ifndef MATRYOSHKA_SERVE_PLAN_H_
#define MATRYOSHKA_SERVE_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "engine/bag.h"
#include "engine/cluster.h"
#include "engine/ops.h"
#include "lang/value.h"

/// Shared vocabulary of the serving layer (registry.h, serving_driver.h):
/// what a registered plan takes (PlanParams) and what it returns
/// (PlanOutput). Both are deliberately dynamic — lang::Value rows — so one
/// registry holds typed src/core plans (converted through CollectOutput)
/// and src/lang programs side by side, and the memo cache and the
/// bit-identity tests compare every plan's output the same way.
namespace matryoshka::serve {

/// Parameters of one serving request: an ordered (name -> Value) map. The
/// ordering makes Fingerprint() independent of insertion order, so two
/// requests with the same bindings share a memo-cache slot no matter how
/// the caller built them.
class PlanParams {
 public:
  PlanParams() = default;

  PlanParams& Set(const std::string& key, lang::Value value) {
    kv_[key] = std::move(value);
    return *this;
  }

  const lang::Value* Find(const std::string& key) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? nullptr : &it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const lang::Value* v = Find(key);
    return v != nullptr && v->is_int() ? v->AsInt() : fallback;
  }

  double GetDouble(const std::string& key, double fallback) const {
    const lang::Value* v = Find(key);
    if (v == nullptr) return fallback;
    return v->is_double() || v->is_int() ? v->AsDouble() : fallback;
  }

  std::string GetString(const std::string& key, std::string fallback) const {
    const lang::Value* v = Find(key);
    return v != nullptr && v->is_string() ? v->AsString()
                                          : std::move(fallback);
  }

  bool empty() const { return kv_.empty(); }
  std::size_t size() const { return kv_.size(); }
  const std::map<std::string, lang::Value>& entries() const { return kv_; }

  /// Order-independent content fingerprint (the params leg of the memo
  /// cache key). Folds (key, value-hash) pairs in the map's sorted order.
  uint64_t Fingerprint() const {
    uint64_t fp = 0x706172616d730ULL;  // "params"
    for (const auto& [key, value] : kv_) {
      fp = Mix64(fp ^ Mix64(std::hash<std::string>{}(key)));
      fp = Mix64(fp ^ static_cast<uint64_t>(value.HashValue()));
    }
    return fp;
  }

  /// "{a=1, b=\"x\"}" — for error messages and run names.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : kv_) {
      if (!first) out += ", ";
      first = false;
      out += key;
      out += "=";
      out += value.ToString();
    }
    out += "}";
    return out;
  }

 private:
  std::map<std::string, lang::Value> kv_;
};

/// A plan's result: partitioned rows plus the partitioner metadata, i.e.
/// exactly the payload the serving determinism contract compares (data,
/// order, key_partitions). Comparable and cacheable.
struct PlanOutput {
  std::vector<std::vector<lang::Value>> partitions;
  int64_t key_partitions = 0;

  int64_t NumRows() const {
    int64_t n = 0;
    for (const auto& p : partitions) n += static_cast<int64_t>(p.size());
    return n;
  }

  friend bool operator==(const PlanOutput& a, const PlanOutput& b) {
    return a.key_partitions == b.key_partitions &&
           a.partitions == b.partitions;
  }
  friend bool operator!=(const PlanOutput& a, const PlanOutput& b) {
    return !(a == b);
  }
};

namespace internal {

/// Row conversion from the typed engine world into serving rows. Pairs
/// become 2-tuples so keyed results keep their shape.
inline lang::Value ToValue(int64_t x) { return lang::Value(x); }
inline lang::Value ToValue(double x) { return lang::Value(x); }
inline lang::Value ToValue(bool x) { return lang::Value(x); }
inline lang::Value ToValue(std::string x) {
  return lang::Value(std::move(x));
}
inline lang::Value ToValue(lang::Value x) { return x; }
template <typename A, typename B>
lang::Value ToValue(const std::pair<A, B>& p) {
  return lang::Value::MakeTuple({ToValue(p.first), ToValue(p.second)});
}

}  // namespace internal

/// Terminates a plan body: charges a collect action (job launch + scan +
/// network to the driver, exactly like engine::Collect) and snapshots the
/// bag per partition into a PlanOutput. The per-partition layout — not
/// Collect's flattened vector — is what lets the determinism suite compare
/// order within partitions and the partitioner metadata.
template <typename T>
PlanOutput CollectOutput(const engine::Bag<T>& bag,
                         const char* label = "serve-collect") {
  engine::Cluster* c = bag.cluster();
  PlanOutput out;
  if (!c->ok()) return out;
  bag.Force();
  c->BeginJob(label);
  engine::internal::ChargeScanStage(bag, 0.25, label);
  const double bytes = engine::RealBagBytes(bag);
  if (bytes > c->config().memory_per_machine_bytes) {
    c->Fail(Status::OutOfMemory(
        std::string(label) + ": result does not fit on the driver"));
    return out;
  }
  c->AccrueCollect(bytes, label);
  if (!c->ok()) return out;
  out.key_partitions = bag.key_partitions();
  const auto& parts = bag.partitions();
  out.partitions.reserve(parts.size());
  for (const auto& part : parts) {
    std::vector<lang::Value> rows;
    rows.reserve(part.size());
    for (const auto& x : part) rows.push_back(internal::ToValue(x));
    out.partitions.push_back(std::move(rows));
  }
  return out;
}

}  // namespace matryoshka::serve

#endif  // MATRYOSHKA_SERVE_PLAN_H_
