# Empty compiler generated dependencies file for matryoshka_workloads.
# This may be replaced when dependencies are built.
