file(REMOVE_RECURSE
  "CMakeFiles/matryoshka_workloads.dir/avg_distances.cc.o"
  "CMakeFiles/matryoshka_workloads.dir/avg_distances.cc.o.d"
  "CMakeFiles/matryoshka_workloads.dir/bounce_rate.cc.o"
  "CMakeFiles/matryoshka_workloads.dir/bounce_rate.cc.o.d"
  "CMakeFiles/matryoshka_workloads.dir/connected_components.cc.o"
  "CMakeFiles/matryoshka_workloads.dir/connected_components.cc.o.d"
  "CMakeFiles/matryoshka_workloads.dir/kmeans.cc.o"
  "CMakeFiles/matryoshka_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/matryoshka_workloads.dir/pagerank.cc.o"
  "CMakeFiles/matryoshka_workloads.dir/pagerank.cc.o.d"
  "libmatryoshka_workloads.a"
  "libmatryoshka_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matryoshka_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
