#ifndef MATRYOSHKA_ENGINE_EXTERNAL_EXTERNAL_SCATTER_H_
#define MATRYOSHKA_ENGINE_EXTERNAL_EXTERNAL_SCATTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/sizing.h"
#include "common/thread_pool.h"
#include "engine/external/memory_budget.h"
#include "engine/external/serde.h"
#include "engine/external/spill_file.h"

/// The external (spilling) variant of parallel_shuffle.h's two-phase
/// scatter. Same determinism contract — the output is bit-identical to the
/// reference sequential scatter loop
///
///   for (p in producer order) for (x in inputs[p]) out[part_of(x)] += x
///
/// for ANY budget and ANY pool size — achieved by making every ordering and
/// every spill decision a pure function of one producer's input stream:
///
///  Phase 1 (parallel across producers): producer p buffers elements into
///  per-bucket vectors under a STATIC quota of budget/producers bytes
///  (estimated via EstimateSize). When the buffered bytes reach the quota,
///  the buffers are serialized bucket-by-bucket into one "run" appended to
///  the producer's own unlinked temp file (a per-bucket offset index stays
///  in memory) and the buffers reset. The flush points depend only on
///  producer p's elements and the quota — never on thread timing.
///
///  Phase 2 (parallel across output buckets): bucket b concatenates, in
///  ascending producer order, each producer's runs in chronological order
///  followed by its in-memory residue. Within a producer, run order equals
///  arrival order (runs are flushed in stream order and each run stores its
///  bucket segment in stream order), so the concatenation reproduces the
///  producer's element order exactly — the same argument that makes the
///  in-memory kernel deterministic.
///
/// Reads use positional pread on the producer's shared descriptor, safe for
/// concurrent phase-2 tasks. Temp files are unlinked at creation and closed
/// (freeing the blocks) when the scatter returns, on every path including
/// sticky-failure early-outs — see SpillFile's cleanup contract.
namespace matryoshka::engine::external {

namespace scatter_internal {

/// One flushed run: per-bucket (offset, bytes, element count) segments in
/// the producer's spill file.
struct RunSegment {
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint32_t count = 0;
};

template <typename T>
struct ProducerState {
  /// In-memory residue: elements buffered since the last flush.
  std::vector<std::vector<T>> buckets;
  /// Flushed runs, chronological; runs[r][b] is run r's bucket-b segment.
  std::vector<std::vector<RunSegment>> runs;
  SpillFile file;
  SpillStats stats;
};

}  // namespace scatter_internal

/// Drop-in replacement for internal::ParallelScatter under a real memory
/// budget. `budget` must be bounded and T spillable (callers gate on
/// `budget.unbounded() || !kSpillable<T>` and fall back to the in-memory
/// kernel otherwise). Per-producer spill counters are reduced into `*stats`
/// in ascending producer order on the calling (driver) thread.
template <typename T, typename PartOf>
std::vector<std::vector<T>> ExternalScatter(
    ThreadPool* pool, const std::vector<std::vector<T>>& inputs,
    std::size_t num_parts, const PartOf& part_of, const MemoryBudget& budget,
    SpillStats* stats) {
  static_assert(kSpillable<T>, "gate ExternalScatter on kSpillable<T>");
  std::vector<std::vector<T>> out(num_parts);
  const std::size_t producers = inputs.size();
  if (producers == 0 || num_parts == 0) return out;

  const std::size_t quota = budget.ShareFor(producers);
  std::vector<scatter_internal::ProducerState<T>> state(producers);

  // Phase 1: buffer under the quota, flush full buffers as runs.
  ParallelFor(pool, producers, [&](std::size_t p) {
    scatter_internal::ProducerState<T>& st = state[p];
    st.buckets.resize(num_parts);
    std::size_t buffered = 0;
    std::string buf;
    auto flush = [&] {
      std::vector<scatter_internal::RunSegment> run(num_parts);
      buf.clear();
      for (std::size_t b = 0; b < num_parts; ++b) {
        const uint64_t at = buf.size();
        for (const T& x : st.buckets[b]) SpillSerde<T>::Write(x, &buf);
        run[b].offset = at;  // relative; rebased below
        run[b].bytes = buf.size() - at;
        run[b].count = static_cast<uint32_t>(st.buckets[b].size());
        st.buckets[b].clear();
        st.stats.spill_runs += run[b].count > 0 ? 1 : 0;
      }
      const uint64_t base = st.file.Append(buf);
      for (auto& seg : run) seg.offset += base;
      budget.Charge(buffered);  // observational high-water mark
      budget.Release(buffered);
      st.stats.spill_events += 1;
      st.stats.spilled_bytes += static_cast<double>(buf.size());
      st.runs.push_back(std::move(run));
      buffered = 0;
    };
    for (const T& x : inputs[p]) {
      const auto b = static_cast<std::size_t>(part_of(x));
      buffered += EstimateSize(x);
      st.buckets[b].push_back(x);
      // >= so a zero quota still makes progress (one element per run).
      if (buffered >= quota) flush();
    }
  });

  // Phase 2: concatenate per bucket — producers ascending, runs
  // chronological, residue last; element order within every piece is the
  // producer's arrival order.
  ParallelFor(pool, num_parts, [&](std::size_t b) {
    std::size_t total = 0;
    for (std::size_t p = 0; p < producers; ++p) {
      for (const auto& run : state[p].runs) total += run[b].count;
      total += state[p].buckets[b].size();
    }
    std::vector<T>& dst = out[b];
    dst.reserve(total);
    std::string buf;
    for (std::size_t p = 0; p < producers; ++p) {
      scatter_internal::ProducerState<T>& st = state[p];
      for (const auto& run : st.runs) {
        const scatter_internal::RunSegment& seg = run[b];
        if (seg.count == 0) continue;
        st.file.ReadAt(seg.offset, static_cast<std::size_t>(seg.bytes), &buf);
        const char* rp = buf.data();
        const char* rend = buf.data() + buf.size();
        for (uint32_t i = 0; i < seg.count; ++i) {
          dst.push_back(SpillSerde<T>::Read(&rp, rend));
        }
      }
      std::vector<T>& residue = st.buckets[b];
      dst.insert(dst.end(), std::make_move_iterator(residue.begin()),
                 std::make_move_iterator(residue.end()));
    }
  });

  // Driver-side reduction in producer order: deterministic totals.
  for (const auto& st : state) stats->Add(st.stats);
  return out;
}

}  // namespace matryoshka::engine::external

#endif  // MATRYOSHKA_ENGINE_EXTERNAL_EXTERNAL_SCATTER_H_
