// Partitioned graph analytics (Sec. 2.2): compose two library functions —
// connectedComps(g) and avgDistances(g) — as connectedComps(g).map(
// avgDistances). The composition needs nested parallelism: avgDistances
// itself maps over the component's vertices launching one (iterative!) BFS
// per vertex, giving THREE levels of parallel operations. Matryoshka
// flattens all of it; this example also runs grouped PageRank over the
// same components.
//
// Build & run:  ./build/examples/graph_components

#include <cstdio>

#include "datagen/datagen.h"
#include "engine/bag.h"
#include "engine/ops.h"
#include "engine/shuffle.h"
#include "workloads/avg_distances.h"
#include "workloads/connected_components.h"
#include "workloads/pagerank.h"

namespace m = matryoshka;

int main() {
  m::engine::ClusterConfig config;
  config.num_machines = 8;
  config.cores_per_machine = 8;
  config.default_parallelism = 192;
  m::engine::Cluster cluster(config);

  // A graph of 6 hidden components (cycles plus random chords).
  auto edges = m::datagen::GenerateComponents(/*num_components=*/6,
                                              /*vertices_per_component=*/24,
                                              /*extra_edges_per_component=*/24,
                                              /*seed=*/11);
  auto edge_bag = m::engine::Parallelize(&cluster, edges);

  // Library function #1: connected components (flat iterative dataflow).
  auto comps = m::workloads::ConnectedComponents(edge_bag);
  std::printf("connected components found: %ld\n",
              static_cast<long>(
                  m::engine::Distinct(m::engine::Keys(comps)).Size()));

  // Library function #2 composed on top: average pairwise distance per
  // component — the full three-level nested program.
  auto avg = m::workloads::AvgDistancesMatryoshka(&cluster, edge_bag, {});
  if (!avg.ok()) {
    std::printf("avg distances failed: %s\n", avg.status.ToString().c_str());
    return 1;
  }
  std::printf("\n%-14s %-14s\n", "component", "avg distance");
  for (const auto& [comp, distance] : avg.per_group) {
    std::printf("%-14ld %-14.3f\n", static_cast<long>(comp), distance);
  }
  std::printf("(%ld jobs, %.2fs simulated)\n",
              static_cast<long>(avg.metrics.jobs), avg.time_s());

  // Bonus: a separate PageRank per component (grouped PageRank, Sec. 9.1),
  // reusing the component ids as grouping keys.
  m::engine::Cluster cluster2(config);
  auto edge_bag2 = m::engine::Parallelize(&cluster2, edges);
  auto comps2 = m::workloads::ConnectedComponents(edge_bag2);
  auto grouped = m::workloads::EdgesByComponent(edge_bag2, comps2);
  m::workloads::PageRankParams pr;
  pr.iterations = 8;
  auto ranks = m::workloads::PageRankMatryoshka(&cluster2, grouped, pr);
  if (!ranks.ok()) {
    std::printf("pagerank failed: %s\n", ranks.status.ToString().c_str());
    return 1;
  }
  std::printf("\nper-component PageRank mass (should each be ~1):\n");
  for (const auto& [comp, sum] : ranks.per_group) {
    std::printf("  component %-10ld rank sum %.4f\n",
                static_cast<long>(comp), sum);
  }
  return 0;
}
