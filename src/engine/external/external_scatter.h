#ifndef MATRYOSHKA_ENGINE_EXTERNAL_EXTERNAL_SCATTER_H_
#define MATRYOSHKA_ENGINE_EXTERNAL_EXTERNAL_SCATTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoints.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/sizing.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/external/memory_budget.h"
#include "engine/external/serde.h"
#include "engine/external/spill_file.h"

/// The external (spilling) variant of parallel_shuffle.h's two-phase
/// scatter. Same determinism contract — the output is bit-identical to the
/// reference sequential scatter loop
///
///   for (p in producer order) for (x in inputs[p]) out[part_of(x)] += x
///
/// for ANY budget and ANY pool size — achieved by making every ordering and
/// every spill decision a pure function of one producer's input stream:
///
///  Phase 1 (parallel across producers): producer p buffers elements into
///  per-bucket vectors under a STATIC quota of budget/producers bytes
///  (estimated via EstimateSize). When the buffered bytes reach the quota,
///  the buffers are serialized bucket-by-bucket into one "run" appended to
///  the producer's own unlinked temp file (a per-bucket offset index stays
///  in memory) and the buffers reset. The flush points depend only on
///  producer p's elements and the quota — never on thread timing.
///
///  Phase 2 (parallel across output buckets): bucket b concatenates, in
///  ascending producer order, each producer's runs in chronological order
///  followed by its in-memory residue. Within a producer, run order equals
///  arrival order (runs are flushed in stream order and each run stores its
///  bucket segment in stream order), so the concatenation reproduces the
///  producer's element order exactly — the same argument that makes the
///  in-memory kernel deterministic.
///
/// Real-fault hardening (DESIGN.md, "The real-fault contract"): every run
/// segment carries a checksum computed over its bytes BEFORE they left
/// memory and verified on merge-on-read; every IO failure surfaces as a
/// typed Status through the scatter's return value instead of aborting.
/// Error determinism: each producer (phase 1) and each bucket (phase 2)
/// records its own first failure; the scatter reports the failure of the
/// lowest producer index, then the lowest bucket index — independent of
/// thread timing. The caller (BudgetedScatter in shuffle.h) applies the
/// fallback policy: the inputs are untouched, so a whole-op in-memory
/// re-run reproduces the reference output bit for bit.
///
/// Reads use positional pread on the producer's shared descriptor, safe for
/// concurrent phase-2 tasks. Temp files are unlinked at creation and closed
/// (freeing the blocks) when the scatter returns, on every path including
/// sticky-failure early-outs — see SpillFile's cleanup contract.
namespace matryoshka::engine::external {

namespace scatter_internal {

/// One flushed run: per-bucket (offset, bytes, count, checksum) segments in
/// the producer's spill file. Checksums live in memory (trusted); only the
/// run bytes round-trip through the disk.
struct RunSegment {
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint32_t count = 0;
  uint64_t checksum = 0;
};

template <typename T>
struct ProducerState {
  /// In-memory residue: elements buffered since the last flush.
  std::vector<std::vector<T>> buckets;
  /// Flushed runs, chronological; runs[r][b] is run r's bucket-b segment.
  std::vector<std::vector<RunSegment>> runs;
  SpillFile file;
  SpillStats stats;
  /// First IO/alloc failure of this producer's own stream (phase 1).
  Status status;
};

}  // namespace scatter_internal

/// Drop-in replacement for internal::ParallelScatter under a real memory
/// budget. `budget` must be bounded and T spillable (callers gate on
/// `budget.unbounded() || !kSpillable<T>` and fall back to the in-memory
/// kernel otherwise). Per-producer spill counters are reduced into `*stats`
/// in ascending producer order on the calling (driver) thread; `*out` holds
/// the scattered partitions on success (contents unspecified on failure —
/// callers either fall back in memory or fail the job).
template <typename T, typename PartOf>
Status ExternalScatter(ThreadPool* pool,
                       const std::vector<std::vector<T>>& inputs,
                       std::size_t num_parts, const PartOf& part_of,
                       const MemoryBudget& budget,
                       const FailpointRegistry* fp, SpillStats* stats,
                       std::vector<std::vector<T>>* out) {
  static_assert(kSpillable<T>, "gate ExternalScatter on kSpillable<T>");
  out->assign(num_parts, {});
  const std::size_t producers = inputs.size();
  if (producers == 0 || num_parts == 0) return Status::OK();

  const std::size_t quota = budget.ShareFor(producers);
  std::vector<scatter_internal::ProducerState<T>> state(producers);
  const bool armed = fp != nullptr && fp->armed();

  // Phase 1: buffer under the quota, flush full buffers as runs. A
  // producer that hits a hard IO/alloc fault records it and stops feeding
  // its own stream (the whole scatter is void on failure anyway); other
  // producers run to completion, keeping every per-producer counter a pure
  // function of that producer's input.
  ParallelFor(pool, producers, [&](std::size_t p) {
    scatter_internal::ProducerState<T>& st = state[p];
    st.file.Arm(fp, /*stream_id=*/p);
    st.buckets.resize(num_parts);
    std::size_t buffered = 0;
    std::string buf;
    auto flush = [&]() -> Status {
      // Real scratch charge point: injected allocation failure surfaces
      // here, before the serialization buffers grow.
      if (armed && fp->Fires(p, kFpAlloc,
                             static_cast<uint64_t>(st.stats.spill_events),
                             fp->plan().alloc_failure_prob)) {
        st.stats.io_faults_injected += 1;
        return Status::OutOfMemory(
            "injected allocation failure charging scatter scratch");
      }
      std::vector<scatter_internal::RunSegment> run(num_parts);
      buf.clear();
      for (std::size_t b = 0; b < num_parts; ++b) {
        const uint64_t at = buf.size();
        for (const T& x : st.buckets[b]) SpillSerde<T>::Write(x, &buf);
        run[b].offset = at;  // relative; rebased below
        run[b].bytes = buf.size() - at;
        run[b].count = static_cast<uint32_t>(st.buckets[b].size());
        // Checksum over the segment's serialized bytes, in memory, before
        // the write: disk contents must reproduce exactly this.
        run[b].checksum =
            HashBytes(buf.data() + at, static_cast<std::size_t>(run[b].bytes));
        st.buckets[b].clear();
        st.stats.spill_runs += run[b].count > 0 ? 1 : 0;
      }
      uint64_t base = 0;
      MATRYOSHKA_RETURN_NOT_OK(st.file.Write(buf, &base, &st.stats));
      for (auto& seg : run) seg.offset += base;
      budget.Charge(buffered);  // observational high-water mark
      budget.Release(buffered);
      st.stats.spill_events += 1;
      st.stats.spilled_bytes += static_cast<double>(buf.size());
      st.runs.push_back(std::move(run));
      buffered = 0;
      return Status::OK();
    };
    for (const T& x : inputs[p]) {
      const auto b = static_cast<std::size_t>(part_of(x));
      buffered += EstimateSize(x);
      st.buckets[b].push_back(x);
      // >= so a zero quota still makes progress (one element per run).
      if (buffered >= quota) {
        st.status = flush();
        if (!st.status.ok()) break;
      }
    }
  });

  // First failure by ascending producer index: deterministic for any pool.
  Status failure;
  for (const auto& st : state) {
    if (!st.status.ok()) {
      failure = st.status;
      break;
    }
  }

  // Phase 2: concatenate per bucket — producers ascending, runs
  // chronological, residue last; element order within every piece is the
  // producer's arrival order. Each bucket verifies every segment's
  // checksum as it reads and records its own first failure.
  std::vector<Status> bucket_status(num_parts);
  std::vector<SpillStats> bucket_stats(num_parts);
  if (failure.ok()) {
    ParallelFor(pool, num_parts, [&](std::size_t b) {
      std::size_t total = 0;
      for (std::size_t p = 0; p < producers; ++p) {
        for (const auto& run : state[p].runs) total += run[b].count;
        total += state[p].buckets[b].size();
      }
      std::vector<T>& dst = (*out)[b];
      dst.reserve(total);
      std::string buf;
      for (std::size_t p = 0; p < producers; ++p) {
        scatter_internal::ProducerState<T>& st = state[p];
        for (const auto& run : st.runs) {
          const scatter_internal::RunSegment& seg = run[b];
          if (seg.count == 0) continue;
          bucket_status[b] = st.file.ReadRun(
              seg.offset, static_cast<std::size_t>(seg.bytes), seg.checksum,
              &buf, &bucket_stats[b]);
          if (!bucket_status[b].ok()) return;
          const char* rp = buf.data();
          const char* rend = buf.data() + buf.size();
          for (uint32_t i = 0; i < seg.count; ++i) {
            dst.push_back(SpillSerde<T>::Read(&rp, rend));
          }
        }
        std::vector<T>& residue = st.buckets[b];
        dst.insert(dst.end(), std::make_move_iterator(residue.begin()),
                   std::make_move_iterator(residue.end()));
      }
    });
    for (std::size_t b = 0; b < num_parts; ++b) {
      if (!bucket_status[b].ok()) {
        failure = bucket_status[b];
        break;
      }
    }
  }

  // Driver-side reduction: producers ascending, then buckets ascending —
  // deterministic totals for any pool size.
  for (const auto& st : state) stats->Add(st.stats);
  for (const auto& s : bucket_stats) stats->Add(s);
  return failure;
}

/// Legacy convenience (fault-free paths and direct kernel tests): aborts on
/// IO failure instead of returning it.
template <typename T, typename PartOf>
std::vector<std::vector<T>> ExternalScatter(
    ThreadPool* pool, const std::vector<std::vector<T>>& inputs,
    std::size_t num_parts, const PartOf& part_of, const MemoryBudget& budget,
    SpillStats* stats) {
  std::vector<std::vector<T>> out;
  const Status st = ExternalScatter(pool, inputs, num_parts, part_of, budget,
                                    /*fp=*/nullptr, stats, &out);
  MATRYOSHKA_CHECK(st.ok()) << st.ToString();
  return out;
}

}  // namespace matryoshka::engine::external

#endif  // MATRYOSHKA_ENGINE_EXTERNAL_EXTERNAL_SCATTER_H_
