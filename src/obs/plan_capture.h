#ifndef MATRYOSHKA_OBS_PLAN_CAPTURE_H_
#define MATRYOSHKA_OBS_PLAN_CAPTURE_H_

#include <ostream>

#include "obs/trace_recorder.h"

/// Plan / decision capture: the Matryoshka optimizer (Sec. 8) records every
/// lowering decision — broadcast vs. repartition tag join, chosen partition
/// count for InnerScalar-sized bags, which side of a half-lifted cross
/// product to broadcast — together with the runtime cardinalities that
/// justified it. These exporters dump the decision log next to the trace.
namespace matryoshka::obs {

/// All runs' decisions as a JSON array of
/// {"run": ..., "decisions": [{...}]} objects.
void WritePlanJson(const TraceRecorder& recorder, std::ostream& os);

/// The decision chains as a Graphviz digraph: one subgraph per run, one node
/// per decision (in recording order), labeled with the choice and its
/// justifying cardinalities. Render with `dot -Tsvg plan.dot`.
void WritePlanDot(const TraceRecorder& recorder, std::ostream& os);

}  // namespace matryoshka::obs

#endif  // MATRYOSHKA_OBS_PLAN_CAPTURE_H_
