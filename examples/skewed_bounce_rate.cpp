// Skew robustness (Sec. 9.5): bounce rate over a visit log whose day keys
// follow a Zipf distribution — a few huge days, a long tail of small ones.
// The outer-parallel workaround materializes each day's visits in one task
// and dies on the big days; inner-parallel launches jobs per day and drowns
// in overhead for the tail; the flattened program never materializes a
// group and barely notices the skew.
//
// Build & run:  ./build/examples/skewed_bounce_rate

#include <cstdio>

#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/bounce_rate.h"

namespace m = matryoshka;

int main() {
  // The paper's cluster (25 machines x 16 cores, 22 GB each), with the
  // synthetic log standing in for ~48 GB of real data.
  m::engine::ClusterConfig config;  // defaults model the paper's cluster
  constexpr int64_t kVisits = 1 << 17;
  const double real_elements =
      48.0 * (1ULL << 30) / sizeof(m::datagen::Visit);
  config.data_scale = real_elements / kVisits;

  for (double zipf : {0.0, 1.0}) {
    auto visits = m::datagen::GenerateVisits(kVisits, /*num_days=*/1024,
                                             zipf, /*bounce_fraction=*/0.5,
                                             /*seed=*/5);
    std::printf("\n=== day keys: %s ===\n",
                zipf == 0.0 ? "uniform" : "Zipf (skewed)");
    for (auto variant : {m::workloads::Variant::kMatryoshka,
                         m::workloads::Variant::kOuterParallel,
                         m::workloads::Variant::kInnerParallel}) {
      m::engine::Cluster cluster(config);
      auto bag = m::engine::Parallelize(&cluster, visits);
      auto result = m::workloads::RunBounceRate(&cluster, bag, variant);
      if (result.ok()) {
        std::printf("  %-15s %9.1fs simulated, %6ld jobs\n",
                    m::workloads::VariantName(variant), result.time_s(),
                    static_cast<long>(result.metrics.jobs));
      } else {
        std::printf("  %-15s FAILED: %s\n",
                    m::workloads::VariantName(variant),
                    result.status.ToString().c_str());
      }
    }
  }
  std::printf(
      "\nNote how the flattened program's time barely moves between the\n"
      "uniform and the skewed input, while the workarounds fail or slow "
      "down.\n");
  return 0;
}
