#include "common/failpoints.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/hash.h"

namespace matryoshka {

double FailpointRegistry::Draw(uint64_t stream, uint64_t salt,
                               uint64_t key) const {
  // Same construction as the simulated cluster's UnitDraw: two Mix64 rounds
  // over the independent components, top 53 bits to a double in [0, 1).
  const auto e = static_cast<uint64_t>(epoch());
  uint64_t z =
      Mix64(plan_.seed ^ Mix64(stream * 0x9e3779b97f4a7c15ULL + salt));
  z = Mix64(z ^ Mix64(key * 0x2545f4914f6cdd1dULL + e));
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

void FailpointRegistry::MaybeStall(uint64_t stream, uint64_t key) const {
  if (!Fires(stream, kFpSlowIo, key, plan_.slow_io_prob)) return;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(plan_.slow_io_ms > 0 ? plan_.slow_io_ms : 1));
}

RealFaultPlan ParseRealFaultStormEnv(const char* value) {
  RealFaultPlan plan;
  if (value == nullptr || value[0] == '\0') return plan;
  char* end = nullptr;
  const double prob = std::strtod(value, &end);
  if (end == value || prob <= 0.0) return plan;
  if (end != nullptr && *end == ':') {
    plan.seed = std::strtoull(end + 1, nullptr, 10);
  }
  // Recoverable faults only (see the header contract).
  plan.write_eio_prob = prob;
  plan.read_eio_prob = prob;
  plan.short_write_prob = prob;
  plan.short_read_prob = prob;
  plan.transient_duration = 1;
  return plan;
}

}  // namespace matryoshka
