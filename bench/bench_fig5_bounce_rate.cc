// Figure 5 (Sec. 9.4): Bounce Rate, the task WITHOUT control flow, against
// all baselines including DIQL. Two panels:
//  (a) weak scaling over the number of days at a 48 GB-class input —
//      DIQL and outer-parallel run out of memory in all cases (both fall
//      back to materializing whole groups); inner-parallel pays per-day
//      jobs and full-input filter scans; Matryoshka is nearly constant but
//      memory-constrained (it processes the entire input at once and
//      spills), making inner-parallel ~1.3x faster at 4-32 days;
//  (b) scale-out at 256 days.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/bounce_rate.h"

namespace matryoshka::bench {
namespace {

using workloads::Variant;

constexpr uint64_t kSeed = 77;
constexpr int64_t kTotalVisits = 1 << 18;
constexpr double kTargetGb = 48.0;

Variant VariantOf(int64_t i) {
  switch (i) {
    case 0:
      return Variant::kMatryoshka;
    case 1:
      return Variant::kOuterParallel;
    case 2:
      return Variant::kInnerParallel;
    default:
      return Variant::kDiqlLike;
  }
}

void BM_Fig5a_WeakScaling(benchmark::State& state) {
  const int64_t days = state.range(0);
  const Variant variant = VariantOf(state.range(1));
  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, kTargetGb, kTotalVisits, sizeof(datagen::Visit));
  auto data = datagen::GenerateVisits(kTotalVisits, days, 0.0, 0.5, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig5a/bounce-rate/") + workloads::VariantName(variant),
            {days});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunBounceRate(&cluster, bag, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void BM_Fig5b_ScaleOut(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const Variant variant = VariantOf(state.range(1));
  engine::ClusterConfig cfg = PaperCluster();
  cfg.num_machines = machines;
  // default_parallelism stays 0 = auto, rescaling with the machine count.
  ScaleToTarget(&cfg, kTargetGb, kTotalVisits, sizeof(datagen::Visit));
  auto data = datagen::GenerateVisits(kTotalVisits, 256, 0.0, 0.5, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig5b/bounce-rate/") + workloads::VariantName(variant),
            {machines});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunBounceRate(&cluster, bag, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void WeakArgs(benchmark::internal::Benchmark* b) {
  for (int64_t days : {4, 8, 16, 32, 64}) {
    for (int64_t variant = 0; variant < 4; ++variant) {
      b->Args({days, variant});
    }
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

void ScaleOutArgs(benchmark::internal::Benchmark* b) {
  for (int64_t machines : {5, 10, 15, 20, 25}) {
    for (int64_t variant = 0; variant < 4; ++variant) {
      b->Args({machines, variant});
    }
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

BENCHMARK(BM_Fig5a_WeakScaling)->Apply(WeakArgs);
BENCHMARK(BM_Fig5b_ScaleOut)->Apply(ScaleOutArgs);

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
