// Ablation (Sec. 8.1, called out in DESIGN.md): partition-count selection
// for InnerScalar-sized intermediates. With few inner computations, the
// bags representing InnerScalars are tiny; running their operations at the
// engine's cluster-wide default parallelism (3 x cores = 1200 partitions)
// drowns them in per-task scheduling overhead. Matryoshka sizes these
// operators from the InnerScalar cardinality it knows in advance. This
// bench runs K-means with partition tuning on vs. off across the inner-
// computation sweep.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/optimizer.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/kmeans.h"

namespace matryoshka::bench {
namespace {

constexpr uint64_t kSeed = 17;

void BM_Ablation_PartitionTuning(benchmark::State& state) {
  const int64_t groups = state.range(0);
  const bool tuned = state.range(1) == 1;
  constexpr int64_t kTotalPoints = 1 << 18;
  workloads::KMeansParams params;
  params.k = 4;
  params.max_iterations = 10;
  params.epsilon = -1.0;
  core::OptimizerOptions opts;
  opts.tune_partitions = tuned;

  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, 8.0, kTotalPoints,
                sizeof(std::pair<int64_t, datagen::Point>));
  auto data = datagen::GenerateGroupedPoints(kTotalPoints, groups, 3, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            tuned ? "ablation/tuned-partitions" : "ablation/default-parallelism",
            {groups});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::KMeansMatryoshka(&cluster, bag, params, opts));
  }
  state.SetLabel(tuned ? "tuned-partitions" : "default-parallelism");
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t groups : {4, 16, 64, 256}) {
    b->Args({groups, 1});
    b->Args({groups, 0});
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

BENCHMARK(BM_Ablation_PartitionTuning)->Apply(Args);

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
