#ifndef MATRYOSHKA_CORE_CONTROL_FLOW_H_
#define MATRYOSHKA_CORE_CONTROL_FLOW_H_

#include <cstdint>
#include <utility>

#include "core/inner_bag.h"
#include "core/inner_scalar.h"
#include "core/lifting_context.h"
#include "core/tag_join.h"
#include "engine/bag.h"
#include "engine/ops.h"

/// Lifted control flow (Sec. 6): while loops and if statements that would
/// have run inside the original UDF run *once*, over all invocations at the
/// same time. The parsing phase turns control flow into these higher-order
/// functions; the lowering phase executes them.
namespace matryoshka::core {

namespace internal {

/// Shared machinery of the lifted do-while loop (Listing 4) over a flat
/// representation Bag[(Tag, X)] — used for both InnerBag-valued and
/// InnerScalar-valued loop state.
///
/// Iteration i executes iteration i of *all* original loops that have not
/// finished yet:
///  (P1) data of finished loops is discarded by joining the body output
///       with the lifted exit condition on the tag and filtering,
///  (P2) the discarded parts are saved into the result bag as they finish,
///  (P3) the lifted loop exits when no tag continues.
/// `body(ctx, repr, iteration)` returns the body output and the lifted exit
/// condition (true = continue). The per-iteration Count on the continuing
/// tags is the engine action that Listing 4 line 9 performs (notEmpty) and
/// costs one job per iteration — independent of the number of inner
/// computations, which is the core of Matryoshka's advantage over the
/// inner-parallel workaround.
template <typename X, typename Body>
std::pair<LiftingContext, engine::Bag<std::pair<Tag, X>>> LiftedWhileRepr(
    LiftingContext ctx, engine::Bag<std::pair<Tag, X>> body_in, Body body,
    int64_t max_iterations) {
  using TaggedX = std::pair<Tag, X>;
  engine::Cluster* cluster = ctx.cluster();
  const LiftingContext result_ctx = ctx;
  engine::Bag<TaggedX> result(cluster);
  int64_t iteration = 0;
  while (cluster->ok()) {
    if (iteration >= max_iterations) {
      cluster->Fail(Status::Cancelled(
          "lifted while loop exceeded max_iterations = " +
          std::to_string(max_iterations)));
      break;
    }
    auto [body_out, cond] = body(ctx, body_in, iteration);
    auto with_cond = TagJoin(ctx, body_out, cond);
    // Route continuing vs finished data with partitioning-preserving
    // filter + mapValues, so a repartition-joined state stays
    // tag-partitioned into the next iteration.
    body_in = engine::MapValues(
        engine::Filter(with_cond,
                       [](const std::pair<Tag, std::pair<X, bool>>& p) {
                         return p.second.second;
                       }),
        [](const std::pair<X, bool>& p) { return p.first; });
    auto finished = engine::MapValues(
        engine::Filter(with_cond,
                       [](const std::pair<Tag, std::pair<X, bool>>& p) {
                         return !p.second.second;
                       }),
        [](const std::pair<X, bool>& p) { return p.first; });
    result = engine::Union(result, finished);

    auto cont_tags = engine::Map(
        engine::Filter(cond, [](const std::pair<Tag, bool>& p) {
          return p.second;
        }),
        [](const std::pair<Tag, bool>& p) { return p.first; });
    const int64_t continuing = engine::Count(cont_tags);  // one job/iteration
    if (continuing == 0) break;
    ctx = ctx.Narrowed(std::move(cont_tags), continuing);
    ++iteration;
  }
  return {result_ctx, std::move(result)};
}

}  // namespace internal

/// Lifted while loop over InnerBag-valued state (e.g. the rank bag of every
/// PageRank group). `body(ctx, state, iteration)` returns the next state and
/// the lifted exit condition (true = this tag's loop continues). The result
/// holds, for every tag, the state at the iteration where that tag's loop
/// exited.
template <typename S, typename Body>
InnerBag<S> LiftedWhile(const InnerBag<S>& initial, Body body,
                        int64_t max_iterations = 1'000'000) {
  auto wrapped = [&body](const LiftingContext& ctx,
                         const engine::Bag<std::pair<Tag, S>>& repr,
                         int64_t iteration) {
    InnerBag<S> state(ctx, repr);
    auto [next, cond] = body(ctx, state, iteration);
    return std::pair<engine::Bag<std::pair<Tag, S>>,
                     engine::Bag<std::pair<Tag, bool>>>(next.repr(),
                                                        cond.repr());
  };
  auto [ctx, result] = internal::LiftedWhileRepr<S>(
      initial.ctx(), initial.repr(), wrapped, max_iterations);
  return InnerBag<S>(ctx, std::move(result));
}

/// Lifted while loop over InnerScalar-valued state (e.g. the means of every
/// K-means run, or an iteration counter). Same contract as LiftedWhile.
template <typename S, typename Body>
InnerScalar<S> LiftedWhileScalar(const InnerScalar<S>& initial, Body body,
                                 int64_t max_iterations = 1'000'000) {
  auto wrapped = [&body](const LiftingContext& ctx,
                         const engine::Bag<std::pair<Tag, S>>& repr,
                         int64_t iteration) {
    InnerScalar<S> state(ctx, repr);
    auto [next, cond] = body(ctx, state, iteration);
    return std::pair<engine::Bag<std::pair<Tag, S>>,
                     engine::Bag<std::pair<Tag, bool>>>(next.repr(),
                                                        cond.repr());
  };
  auto [ctx, result] = internal::LiftedWhileRepr<S>(
      initial.ctx(), initial.repr(), wrapped, max_iterations);
  return InnerScalar<S>(ctx, std::move(result));
}

/// Lifted if statement over InnerBag-valued data (Sec. 6.2): executes *both*
/// branches, each over only the tags whose condition routes there, and
/// unions the results. Branches receive the narrowed state and context.
/// `then_f`/`else_f`: (const InnerBag<S>&) -> InnerBag<S>.
template <typename S, typename ThenF, typename ElseF>
InnerBag<S> LiftedIf(const InnerScalar<bool>& cond, const InnerBag<S>& input,
                     ThenF then_f, ElseF else_f) {
  const LiftingContext& ctx = input.ctx();
  auto with_cond = TagJoin(ctx, input.repr(), cond.repr());

  auto route = [&](bool want) {
    auto repr = engine::Map(
        engine::Filter(with_cond,
                       [want](const std::pair<Tag, std::pair<S, bool>>& p) {
                         return p.second.second == want;
                       }),
        [](const std::pair<Tag, std::pair<S, bool>>& p) {
          return std::pair<Tag, S>(p.first, p.second.first);
        });
    auto tags = engine::Map(
        engine::Filter(cond.repr(),
                       [want](const std::pair<Tag, bool>& p) {
                         return p.second == want;
                       }),
        [](const std::pair<Tag, bool>& p) { return p.first; });
    const int64_t n = tags.Size();
    return InnerBag<S>(ctx.Narrowed(std::move(tags), n), std::move(repr));
  };

  InnerBag<S> then_out = then_f(route(true));
  InnerBag<S> else_out = else_f(route(false));
  return InnerBag<S>(ctx,
                     engine::Union(then_out.repr(), else_out.repr()));
}

/// Lifted if statement over InnerScalar-valued data. Branches:
/// (const InnerScalar<S>&) -> InnerScalar<S>.
template <typename S, typename ThenF, typename ElseF>
InnerScalar<S> LiftedIfScalar(const InnerScalar<bool>& cond,
                              const InnerScalar<S>& input, ThenF then_f,
                              ElseF else_f) {
  const LiftingContext& ctx = input.ctx();
  auto with_cond = TagJoin(ctx, input.repr(), cond.repr());

  auto route = [&](bool want) {
    auto repr = engine::Map(
        engine::Filter(with_cond,
                       [want](const std::pair<Tag, std::pair<S, bool>>& p) {
                         return p.second.second == want;
                       }),
        [](const std::pair<Tag, std::pair<S, bool>>& p) {
          return std::pair<Tag, S>(p.first, p.second.first);
        });
    const int64_t n = repr.Size();
    auto tags = engine::Keys(repr);
    return InnerScalar<S>(ctx.Narrowed(std::move(tags), n), std::move(repr));
  };

  InnerScalar<S> then_out = then_f(route(true));
  InnerScalar<S> else_out = else_f(route(false));
  return InnerScalar<S>(ctx,
                        engine::Union(then_out.repr(), else_out.repr()));
}

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_CONTROL_FLOW_H_
