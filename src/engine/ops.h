#ifndef MATRYOSHKA_ENGINE_OPS_H_
#define MATRYOSHKA_ENGINE_OPS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "engine/bag.h"
#include "engine/cluster.h"
#include "engine/fused_feed.h"
#include "engine/recovery.h"

/// Narrow (pipelined) transformations and actions of the flat dataflow
/// engine. Wide (shuffling) operators live in shuffle.h and join.h.
///
/// Conventions shared by every operator:
///  - `weight` is the relative CPU cost of the operator's UDF per element
///    (1.0 = a trivial projection). The cost model charges
///    synthetic_elements * bag.scale() * per_element_cost * weight.
///  - Element-wise operators propagate the input bag's scale to the output.
///  - Operators are no-ops returning empty results once the owning cluster
///    is in a failed state (sticky status; check cluster->status() at the
///    end of a program).
///  - Actions (Count, Collect, Reduce, NotEmpty, ...) charge one job-launch
///    overhead, mirroring Spark where every action triggers a job.
namespace matryoshka::engine {

namespace internal {

/// Per-task costs of scanning each partition once at the given UDF weight.
/// Uses the bag's tracked cardinalities, so charging a pending (fused) bag
/// does not materialize it and yields the same costs the eager path would.
template <typename T>
std::vector<double> ScanCosts(const Bag<T>& bag, double weight) {
  const std::vector<std::size_t> sizes = bag.PartitionSizes();
  std::vector<double> costs;
  costs.reserve(sizes.size());
  for (const std::size_t s : sizes) {
    costs.push_back(bag.cluster()->ComputeCost(
        static_cast<double>(s) * bag.scale(), weight));
  }
  return costs;
}

template <typename T>
void ChargeScanStage(const Bag<T>& bag, double weight,
                     const char* label = "scan") {
  Cluster* c = bag.cluster();
  if (!c->ok()) return;
  c->mutable_metrics().elements_processed +=
      static_cast<int64_t>(bag.RealSize());
  c->AccrueStage(ScanCosts(bag, weight), bag.lineage_depth(),
                 StageContext{label});
}

/// True when the narrow op being applied to `bag` should compose onto a
/// pending chain instead of executing eagerly. As a side effect, enforces
/// the forced boundaries of the fusion contract: a pending input whose
/// tracked cardinality is inexact (a cardinality-changing op ended the
/// chain) or whose chain is at the depth cap is materialized here, and the
/// new op starts a fresh chain on the result.
template <typename T>
bool ComposeReady(const Bag<T>& bag) {
  const FusionConfig& fusion = bag.cluster()->config().fusion;
  if (!fusion.enabled) return false;
  if (bag.pending() && (!bag.counts_exact() ||
                        bag.pending_chain_ops() >= fusion.max_chain_depth)) {
    bag.Force();
  }
  return true;
}

/// Chain length of the op being composed onto `bag`.
template <typename T>
int NextChainOps(const Bag<T>& bag) {
  return bag.pending_chain_ops() + 1;
}

/// Stacks one per-element transform onto `bag`'s stream, producing the
/// pending feed of the composing op's output. `make_sink(p, emit)` returns
/// the per-partition element consumer (a stateful lambda where the op needs
/// per-partition state, e.g. zipWithUniqueId's counter); it is invoked with
/// `const T&` elements when the upstream is already materialized and with
/// `T&&` chain temporaries when the upstream is itself pending, so
/// pass-through ops can move instead of copy.
template <typename U, typename T, typename MakeSink>
typename Bag<U>::Feed ComposeFeed(const Bag<T>& bag, MakeSink make_sink) {
  // When a sibling handle already forced the shared chain state, compose on
  // the memoized partitions instead of deep-copying the pending
  // `std::function` chain into yet another consumer (the copy bought
  // nothing: every consumer would stream the same shared materialization).
  if (bag.pending_materialized()) bag.Force();
  if (bag.pending()) {
    return [prev = bag.pending_feed(), make_sink](
               std::size_t p, const typename Bag<U>::Sink& emit) {
      auto sink = make_sink(p, emit);
      prev(p, [&sink](T&& x) { sink(std::move(x)); });
    };
  }
  return [parts = bag.shared_partitions(), make_sink](
             std::size_t p, const typename Bag<U>::Sink& emit) {
    auto sink = make_sink(p, emit);
    for (const T& x : (*parts)[p]) sink(x);
  };
}

/// Builds the deferred (feed, run, chain) triple of a narrow op whose
/// static representation is `ChainT`. With static feeds on, `make_chain()`
/// produces the concrete chain value and both erased closures wrap the one
/// shared instance; otherwise only the legacy type-erased feed from
/// `make_feed()` is built. Factored out so each operator's two overloads
/// stay declarative.
template <typename ChainT, typename MakeChain, typename MakeFeed>
struct DeferredRepr {
  typename Bag<typename ChainT::Out>::Feed feed;
  typename Bag<typename ChainT::Out>::Run run;
  std::shared_ptr<const ChainT> chain;

  DeferredRepr(const Cluster* c, MakeChain make_chain, MakeFeed make_feed) {
    if (StaticFeedsOn(c)) {
      chain = std::make_shared<const ChainT>(make_chain());
      EraseChain(chain, &feed, &run);
    } else {
      feed = make_feed();
    }
  }
};

template <typename ChainT, typename MakeChain, typename MakeFeed>
DeferredRepr<ChainT, MakeChain, MakeFeed> MakeDeferredRepr(
    const Cluster* c, MakeChain make_chain, MakeFeed make_feed) {
  return DeferredRepr<ChainT, MakeChain, MakeFeed>(c, std::move(make_chain),
                                                   std::move(make_feed));
}

/// True when a narrow op on this FusedBag handle should extend the concrete
/// chain in place (the zero-erasure path). Call AFTER ComposeReady enforced
/// the forced boundaries: a still-pending input is then size-preserving and
/// under the depth cap by construction. Declines when a sibling handle
/// already forced the shared state (extending would re-run the chain the
/// memoized result already paid for) — the caller re-roots at the
/// materialization instead.
template <typename Chain>
bool ExtendReady(const FusedBag<Chain>& bag) {
  return StaticFeedsOn(bag.cluster()) && bag.chain() != nullptr &&
         bag.pending() && !bag.pending_materialized();
}

}  // namespace internal

/// Applies `f` to every element. f: T -> U.
///
/// Like every narrow operator below, Map returns an internal::FusedBag — a
/// Bag subclass additionally carrying the pending chain's concrete feed
/// type (fused_feed.h). Holding the result in `auto` lets the next narrow
/// op extend that static chain without type erasure; assigning to a plain
/// Bag<U> slices the handle and still works through the erased pending
/// state (at one erased hop per such boundary).
template <typename T, typename F>
auto Map(const Bag<T>& bag, F f, double weight = 1.0) {
  using U = std::decay_t<decltype(f(std::declval<const T&>()))>;
  using ChainT = internal::MapFeed<F, internal::SourceFeed<T>>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ChainT>(Bag<U>(c), nullptr);
  if (internal::ComposeReady(bag)) {
    // Deferred: charge the cost model now, execute later in one fused pass.
    internal::ChargeScanStage(bag, weight, "map");
    const int chain = internal::NextChainOps(bag);
    auto repr = internal::MakeDeferredRepr<ChainT>(
        c,
        [&] { return ChainT{internal::MakeSourceFeed(bag), f}; },
        [&] {
          return internal::ComposeFeed<U>(
              bag, [f](std::size_t, const typename Bag<U>::Sink& emit) {
                return [f, &emit](auto&& x) { emit(f(x)); };
              });
        });
    return internal::FusedBag<ChainT>(
        internal::MaybeAutoCheckpoint(Bag<U>::Deferred(
            c, std::move(repr.feed), bag.PartitionSizes(),
            /*counts_exact=*/true, /*counts_bounded=*/true, chain,
            bag.scale(), 0, bag.lineage_depth() + 1, std::move(repr.run))),
        std::move(repr.chain));
  }
  internal::ChargeScanStage(bag, weight, "map");
  const auto& parts = bag.partitions();
  typename Bag<U>::Partitions out(parts.size());
  internal::GuardedParallelFor(c, parts.size(), [&](std::size_t i) {
    const auto& part = parts[i];
    out[i].reserve(part.size());
    for (const auto& x : part) out[i].push_back(f(x));
  });
  return internal::FusedBag<ChainT>(
      internal::MaybeAutoCheckpoint(
          Bag<U>(c, std::move(out), bag.scale(), 0, bag.lineage_depth() + 1)),
      nullptr);
}

/// Map over a FusedBag: extends the concrete chain type in place — the
/// composed pipeline stays ONE monomorphic loop — falling back to the
/// Bag<T> overload (re-rooted at the erased or materialized state) at any
/// runtime boundary: knob off, chain forced, depth cap, shared
/// materialization.
template <typename Chain, typename F>
auto Map(const internal::FusedBag<Chain>& bag, F f, double weight = 1.0) {
  using T = typename Chain::Out;
  using U = std::decay_t<decltype(f(std::declval<const T&>()))>;
  using ExtT = internal::MapFeed<F, Chain>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ExtT>(Bag<U>(c), nullptr);
  if (internal::ComposeReady(bag) && internal::ExtendReady(bag)) {
    internal::ChargeScanStage(bag, weight, "map");
    const int chain = internal::NextChainOps(bag);
    auto st = std::make_shared<const ExtT>(ExtT{*bag.chain(), f});
    typename Bag<U>::Feed feed;
    typename Bag<U>::Run run;
    internal::EraseChain(st, &feed, &run);
    return internal::FusedBag<ExtT>(
        internal::MaybeAutoCheckpoint(Bag<U>::Deferred(
            c, std::move(feed), bag.PartitionSizes(), /*counts_exact=*/true,
            /*counts_bounded=*/true, chain, bag.scale(), 0,
            bag.lineage_depth() + 1, std::move(run))),
        std::move(st));
  }
  return internal::FusedBag<ExtT>(
      Map(static_cast<const Bag<T>&>(bag), f, weight), nullptr);
}

/// Keeps the elements for which `pred` returns true.
template <typename T, typename P>
auto Filter(const Bag<T>& bag, P pred, double weight = 1.0) {
  using ChainT = internal::FilterFeed<P, internal::SourceFeed<T>>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ChainT>(Bag<T>(c), nullptr);
  if (internal::ComposeReady(bag)) {
    internal::ChargeScanStage(bag, weight, "filter");
    const int chain = internal::NextChainOps(bag);
    auto repr = internal::MakeDeferredRepr<ChainT>(
        c,
        [&] { return ChainT{internal::MakeSourceFeed(bag), pred}; },
        [&] {
          return internal::ComposeFeed<T>(
              bag, [pred](std::size_t, const typename Bag<T>::Sink& emit) {
                return [pred, &emit](auto&& x) {
                  if (pred(x)) emit(T(std::forward<decltype(x)>(x)));
                };
              });
        });
    // Output cardinality is now data-dependent: the tracked counts demote
    // to an upper bound (counts_exact=false), making this chain a forced
    // boundary for the next narrow op. Key partitioning survives filtering.
    return internal::FusedBag<ChainT>(
        internal::MaybeAutoCheckpoint(Bag<T>::Deferred(
            c, std::move(repr.feed), bag.PartitionSizes(),
            /*counts_exact=*/false, /*counts_bounded=*/true, chain,
            bag.scale(), bag.key_partitions(), bag.lineage_depth() + 1,
            std::move(repr.run))),
        std::move(repr.chain));
  }
  internal::ChargeScanStage(bag, weight, "filter");
  const auto& parts = bag.partitions();
  typename Bag<T>::Partitions out(parts.size());
  internal::GuardedParallelFor(c, parts.size(), [&](std::size_t i) {
    const auto& part = parts[i];
    // Selectivity-free capacity bound: the input size. Removes push_back
    // growth reallocations so the non-fused baseline is fair to A/B against.
    out[i].reserve(part.size());
    for (const auto& x : part) {
      if (pred(x)) out[i].push_back(x);
    }
  });
  // Filtering never moves elements: key partitioning survives.
  return internal::FusedBag<ChainT>(
      internal::MaybeAutoCheckpoint(
          Bag<T>(c, std::move(out), bag.scale(), bag.key_partitions(),
                 bag.lineage_depth() + 1)),
      nullptr);
}

/// Filter over a FusedBag: extends the concrete chain (see Map).
template <typename Chain, typename P>
auto Filter(const internal::FusedBag<Chain>& bag, P pred,
            double weight = 1.0) {
  using T = typename Chain::Out;
  using ExtT = internal::FilterFeed<P, Chain>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ExtT>(Bag<T>(c), nullptr);
  if (internal::ComposeReady(bag) && internal::ExtendReady(bag)) {
    internal::ChargeScanStage(bag, weight, "filter");
    const int chain = internal::NextChainOps(bag);
    auto st = std::make_shared<const ExtT>(ExtT{*bag.chain(), pred});
    typename Bag<T>::Feed feed;
    typename Bag<T>::Run run;
    internal::EraseChain(st, &feed, &run);
    return internal::FusedBag<ExtT>(
        internal::MaybeAutoCheckpoint(Bag<T>::Deferred(
            c, std::move(feed), bag.PartitionSizes(), /*counts_exact=*/false,
            /*counts_bounded=*/true, chain, bag.scale(),
            bag.key_partitions(), bag.lineage_depth() + 1, std::move(run))),
        std::move(st));
  }
  return internal::FusedBag<ExtT>(
      Filter(static_cast<const Bag<T>&>(bag), pred, weight), nullptr);
}

/// Applies `f` to every element and concatenates the results.
/// f: T -> iterable of U.
template <typename T, typename F>
auto FlatMap(const Bag<T>& bag, F f, double weight = 1.0) {
  using U = std::decay_t<decltype(*std::begin(f(std::declval<const T&>())))>;
  using ChainT = internal::FlatMapFeed<F, internal::SourceFeed<T>>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ChainT>(Bag<U>(c), nullptr);
  if (internal::ComposeReady(bag)) {
    internal::ChargeScanStage(bag, weight, "flatMap");
    const int chain = internal::NextChainOps(bag);
    auto repr = internal::MakeDeferredRepr<ChainT>(
        c,
        [&] { return ChainT{internal::MakeSourceFeed(bag), f}; },
        [&] {
          return internal::ComposeFeed<U>(
              bag, [f](std::size_t, const typename Bag<U>::Sink& emit) {
                return [f, &emit](auto&& x) {
                  for (auto&& y : f(x)) emit(std::move(y));
                };
              });
        });
    // Expansion is unbounded: counts keep only the partition count
    // (counts_bounded=false disables output reservation at force time).
    return internal::FusedBag<ChainT>(
        internal::MaybeAutoCheckpoint(Bag<U>::Deferred(
            c, std::move(repr.feed), bag.PartitionSizes(),
            /*counts_exact=*/false, /*counts_bounded=*/false, chain,
            bag.scale(), 0, bag.lineage_depth() + 1, std::move(repr.run))),
        std::move(repr.chain));
  }
  internal::ChargeScanStage(bag, weight, "flatMap");
  const auto& parts = bag.partitions();
  typename Bag<U>::Partitions out(parts.size());
  internal::GuardedParallelFor(c, parts.size(), [&](std::size_t i) {
    for (const auto& x : parts[i]) {
      for (auto&& y : f(x)) out[i].push_back(std::move(y));
    }
  });
  return internal::FusedBag<ChainT>(
      internal::MaybeAutoCheckpoint(
          Bag<U>(c, std::move(out), bag.scale(), 0, bag.lineage_depth() + 1)),
      nullptr);
}

/// FlatMap over a FusedBag: extends the concrete chain (see Map).
template <typename Chain, typename F>
auto FlatMap(const internal::FusedBag<Chain>& bag, F f, double weight = 1.0) {
  using T = typename Chain::Out;
  using ExtT = internal::FlatMapFeed<F, Chain>;
  using U = typename ExtT::Out;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ExtT>(Bag<U>(c), nullptr);
  if (internal::ComposeReady(bag) && internal::ExtendReady(bag)) {
    internal::ChargeScanStage(bag, weight, "flatMap");
    const int chain = internal::NextChainOps(bag);
    auto st = std::make_shared<const ExtT>(ExtT{*bag.chain(), f});
    typename Bag<U>::Feed feed;
    typename Bag<U>::Run run;
    internal::EraseChain(st, &feed, &run);
    return internal::FusedBag<ExtT>(
        internal::MaybeAutoCheckpoint(Bag<U>::Deferred(
            c, std::move(feed), bag.PartitionSizes(), /*counts_exact=*/false,
            /*counts_bounded=*/false, chain, bag.scale(), 0,
            bag.lineage_depth() + 1, std::move(run))),
        std::move(st));
  }
  return internal::FusedBag<ExtT>(
      FlatMap(static_cast<const Bag<T>&>(bag), f, weight), nullptr);
}

/// Transforms whole partitions. f: const std::vector<T>& -> std::vector<U>.
template <typename T, typename F>
auto MapPartitions(const Bag<T>& bag, F f, double weight = 1.0)
    -> Bag<typename std::decay_t<
        decltype(f(std::declval<const std::vector<T>&>()))>::value_type> {
  using U = typename std::decay_t<
      decltype(f(std::declval<const std::vector<T>&>()))>::value_type;
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<U>(c);
  // Whole-partition transforms cannot be fused per element: a pending input
  // chain is forced here (driver thread, before the parallel region).
  bag.Force();
  internal::ChargeScanStage(bag, weight, "mapPartitions");
  const auto& parts = bag.partitions();
  typename Bag<U>::Partitions out(parts.size());
  internal::GuardedParallelFor(c, parts.size(), [&](std::size_t i) {
    out[i] = f(parts[i]);
  });
  return internal::MaybeAutoCheckpoint(
      Bag<U>(c, std::move(out), bag.scale(), 0, bag.lineage_depth() + 1));
}

/// First components of a bag of pairs.
template <typename K, typename V>
auto Keys(const Bag<std::pair<K, V>>& bag) {
  return Map(bag, [](const std::pair<K, V>& p) { return p.first; });
}

/// Second components of a bag of pairs.
template <typename K, typename V>
auto Values(const Bag<std::pair<K, V>>& bag) {
  return Map(bag, [](const std::pair<K, V>& p) { return p.second; });
}

/// Applies `f` to the value of every pair, keeping keys, and — since keys
/// do not change — preserving the bag's key partitioning (Spark's
/// mapValues-with-preservesPartitioning).
template <typename K, typename V, typename F>
auto MapValues(const Bag<std::pair<K, V>>& bag, F f, double weight = 1.0) {
  using W = std::decay_t<decltype(f(std::declval<const V&>()))>;
  using Out = std::pair<K, W>;
  using ChainT =
      internal::MapValuesFeed<F, internal::SourceFeed<std::pair<K, V>>>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ChainT>(Bag<Out>(c), nullptr);
  if (internal::ComposeReady(bag)) {
    internal::ChargeScanStage(bag, weight, "mapValues");
    const int chain = internal::NextChainOps(bag);
    auto repr = internal::MakeDeferredRepr<ChainT>(
        c,
        [&] { return ChainT{internal::MakeSourceFeed(bag), f}; },
        [&] {
          return internal::ComposeFeed<Out>(
              bag, [f](std::size_t, const typename Bag<Out>::Sink& emit) {
                return [f, &emit](auto&& kv) {
                  // Forward the value so a chain temporary's payload moves
                  // through a by-value f instead of reallocating (same
                  // bytes; mirrors MapValuesFeed in fused_feed.h).
                  emit(Out(std::forward<decltype(kv)>(kv).first,
                           f(std::forward<decltype(kv)>(kv).second)));
                };
              });
        });
    return internal::FusedBag<ChainT>(
        internal::MaybeAutoCheckpoint(Bag<Out>::Deferred(
            c, std::move(repr.feed), bag.PartitionSizes(),
            /*counts_exact=*/true, /*counts_bounded=*/true, chain,
            bag.scale(), bag.key_partitions(), bag.lineage_depth() + 1,
            std::move(repr.run))),
        std::move(repr.chain));
  }
  internal::ChargeScanStage(bag, weight, "mapValues");
  const auto& parts = bag.partitions();
  typename Bag<Out>::Partitions out(parts.size());
  internal::GuardedParallelFor(c, parts.size(), [&](std::size_t i) {
    const auto& part = parts[i];
    out[i].reserve(part.size());
    for (const auto& [k, v] : part) out[i].emplace_back(k, f(v));
  });
  return internal::FusedBag<ChainT>(
      internal::MaybeAutoCheckpoint(
          Bag<Out>(c, std::move(out), bag.scale(), bag.key_partitions(),
                   bag.lineage_depth() + 1)),
      nullptr);
}

/// MapValues over a FusedBag: extends the concrete chain (see Map).
template <typename Chain, typename F>
auto MapValues(const internal::FusedBag<Chain>& bag, F f,
               double weight = 1.0) {
  using T = typename Chain::Out;
  using ExtT = internal::MapValuesFeed<F, Chain>;
  using Out = typename ExtT::Out;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ExtT>(Bag<Out>(c), nullptr);
  if (internal::ComposeReady(bag) && internal::ExtendReady(bag)) {
    internal::ChargeScanStage(bag, weight, "mapValues");
    const int chain = internal::NextChainOps(bag);
    auto st = std::make_shared<const ExtT>(ExtT{*bag.chain(), f});
    typename Bag<Out>::Feed feed;
    typename Bag<Out>::Run run;
    internal::EraseChain(st, &feed, &run);
    return internal::FusedBag<ExtT>(
        internal::MaybeAutoCheckpoint(Bag<Out>::Deferred(
            c, std::move(feed), bag.PartitionSizes(), /*counts_exact=*/true,
            /*counts_bounded=*/true, chain, bag.scale(),
            bag.key_partitions(), bag.lineage_depth() + 1, std::move(run))),
        std::move(st));
  }
  return internal::FusedBag<ExtT>(
      MapValues(static_cast<const Bag<T>&>(bag), f, weight), nullptr);
}

/// Applies `f` to the value of every pair and emits one output pair per
/// produced value, under the same key; preserves key partitioning.
/// f: V -> iterable of W.
template <typename K, typename V, typename F>
auto FlatMapValues(const Bag<std::pair<K, V>>& bag, F f, double weight = 1.0) {
  using W = std::decay_t<decltype(*std::begin(f(std::declval<const V&>())))>;
  using Out = std::pair<K, W>;
  using ChainT =
      internal::FlatMapValuesFeed<F, internal::SourceFeed<std::pair<K, V>>>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ChainT>(Bag<Out>(c), nullptr);
  if (internal::ComposeReady(bag)) {
    internal::ChargeScanStage(bag, weight, "flatMapValues");
    const int chain = internal::NextChainOps(bag);
    auto repr = internal::MakeDeferredRepr<ChainT>(
        c,
        [&] { return ChainT{internal::MakeSourceFeed(bag), f}; },
        [&] {
          return internal::ComposeFeed<Out>(
              bag, [f](std::size_t, const typename Bag<Out>::Sink& emit) {
                return [f, &emit](auto&& kv) {
                  for (auto&& w : f(kv.second)) {
                    emit(Out(kv.first, std::move(w)));
                  }
                };
              });
        });
    return internal::FusedBag<ChainT>(
        internal::MaybeAutoCheckpoint(Bag<Out>::Deferred(
            c, std::move(repr.feed), bag.PartitionSizes(),
            /*counts_exact=*/false, /*counts_bounded=*/false, chain,
            bag.scale(), bag.key_partitions(), bag.lineage_depth() + 1,
            std::move(repr.run))),
        std::move(repr.chain));
  }
  internal::ChargeScanStage(bag, weight, "flatMapValues");
  const auto& parts = bag.partitions();
  typename Bag<Out>::Partitions out(parts.size());
  internal::GuardedParallelFor(c, parts.size(), [&](std::size_t i) {
    for (const auto& [k, v] : parts[i]) {
      for (auto&& w : f(v)) out[i].emplace_back(k, std::move(w));
    }
  });
  return internal::FusedBag<ChainT>(
      internal::MaybeAutoCheckpoint(
          Bag<Out>(c, std::move(out), bag.scale(), bag.key_partitions(),
                   bag.lineage_depth() + 1)),
      nullptr);
}

/// FlatMapValues over a FusedBag: extends the concrete chain (see Map).
template <typename Chain, typename F>
auto FlatMapValues(const internal::FusedBag<Chain>& bag, F f,
                   double weight = 1.0) {
  using T = typename Chain::Out;
  using ExtT = internal::FlatMapValuesFeed<F, Chain>;
  using Out = typename ExtT::Out;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ExtT>(Bag<Out>(c), nullptr);
  if (internal::ComposeReady(bag) && internal::ExtendReady(bag)) {
    internal::ChargeScanStage(bag, weight, "flatMapValues");
    const int chain = internal::NextChainOps(bag);
    auto st = std::make_shared<const ExtT>(ExtT{*bag.chain(), f});
    typename Bag<Out>::Feed feed;
    typename Bag<Out>::Run run;
    internal::EraseChain(st, &feed, &run);
    return internal::FusedBag<ExtT>(
        internal::MaybeAutoCheckpoint(Bag<Out>::Deferred(
            c, std::move(feed), bag.PartitionSizes(), /*counts_exact=*/false,
            /*counts_bounded=*/false, chain, bag.scale(),
            bag.key_partitions(), bag.lineage_depth() + 1, std::move(run))),
        std::move(st));
  }
  return internal::FusedBag<ExtT>(
      FlatMapValues(static_cast<const Bag<T>&>(bag), f, weight), nullptr);
}

/// Bag union (multiset semantics, like Spark's union): concatenates the two
/// bags' partition lists. Metadata-only; free in the cost model. The result
/// takes the larger scale (unioning bags of different scales is rare and
/// the bigger side dominates the cost model). When both inputs share the
/// same key partitioning, partitions are merged pairwise so the result
/// stays co-partitioned (a zipPartitions-style union).
template <typename T>
Bag<T> Union(const Bag<T>& a, const Bag<T>& b) {
  MATRYOSHKA_CHECK(a.cluster() == b.cluster());
  Cluster* c = a.cluster();
  if (!c->ok()) return Bag<T>(c);
  // Union concatenates materialized partition lists; pending chains on
  // either side are forced (charge-free) rather than composed.
  a.Force();
  b.Force();
  const double scale = std::max(a.scale(), b.scale());
  // Metadata-only: lineage is whichever input chain is deeper.
  const int lineage = std::max(a.lineage_depth(), b.lineage_depth());
  if (a.key_partitions() > 0 && a.key_partitions() == b.key_partitions() &&
      a.num_partitions() == b.num_partitions()) {
    typename Bag<T>::Partitions out = a.partitions();
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].insert(out[i].end(), b.partitions()[i].begin(),
                    b.partitions()[i].end());
    }
    return Bag<T>(c, std::move(out), scale, a.key_partitions(), lineage);
  }
  typename Bag<T>::Partitions out = a.partitions();
  for (const auto& p : b.partitions()) out.push_back(p);
  return Bag<T>(c, std::move(out), scale, 0, lineage);
}

/// Pairs every element with a unique 64-bit id (narrow: ids are formed from
/// the partition index and the offset within the partition, like Spark's
/// zipWithUniqueId).
template <typename T>
auto ZipWithUniqueId(const Bag<T>& bag) {
  using Out = std::pair<uint64_t, T>;
  using ChainT = internal::ZipUniqueIdFeed<internal::SourceFeed<T>>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ChainT>(Bag<Out>(c), nullptr);
  const uint64_t stride =
      static_cast<uint64_t>(std::max<int64_t>(1, bag.num_partitions()));
  if (internal::ComposeReady(bag)) {
    internal::ChargeScanStage(bag, 1.0, "zipWithUniqueId");
    const int chain = internal::NextChainOps(bag);
    // Composing is only legal on size-preserving chains (ComposeReady
    // forces otherwise), so the stream offset of each element equals its
    // materialized offset and the assigned ids match the eager path.
    auto repr = internal::MakeDeferredRepr<ChainT>(
        c,
        [&] { return ChainT{internal::MakeSourceFeed(bag), stride}; },
        [&] {
          return internal::ComposeFeed<Out>(
              bag,
              [stride](std::size_t p, const typename Bag<Out>::Sink& emit) {
                return [stride, p, j = uint64_t{0}, &emit](auto&& x) mutable {
                  emit(Out(j++ * stride + p, std::forward<decltype(x)>(x)));
                };
              });
        });
    return internal::FusedBag<ChainT>(
        internal::MaybeAutoCheckpoint(Bag<Out>::Deferred(
            c, std::move(repr.feed), bag.PartitionSizes(),
            /*counts_exact=*/true, /*counts_bounded=*/true, chain,
            bag.scale(), 0, bag.lineage_depth() + 1, std::move(repr.run))),
        std::move(repr.chain));
  }
  internal::ChargeScanStage(bag, 1.0, "zipWithUniqueId");
  const auto& parts = bag.partitions();
  typename Bag<Out>::Partitions out(parts.size());
  internal::GuardedParallelFor(c, parts.size(), [&](std::size_t i) {
    const auto& part = parts[i];
    out[i].reserve(part.size());
    for (std::size_t j = 0; j < part.size(); ++j) {
      out[i].emplace_back(static_cast<uint64_t>(j) * stride + i, part[j]);
    }
  });
  return internal::FusedBag<ChainT>(
      internal::MaybeAutoCheckpoint(
          Bag<Out>(c, std::move(out), bag.scale(), 0,
                   bag.lineage_depth() + 1)),
      nullptr);
}

/// ZipWithUniqueId over a FusedBag: extends the concrete chain (see Map).
template <typename Chain>
auto ZipWithUniqueId(const internal::FusedBag<Chain>& bag) {
  using T = typename Chain::Out;
  using Out = std::pair<uint64_t, T>;
  using ExtT = internal::ZipUniqueIdFeed<Chain>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ExtT>(Bag<Out>(c), nullptr);
  const uint64_t stride =
      static_cast<uint64_t>(std::max<int64_t>(1, bag.num_partitions()));
  if (internal::ComposeReady(bag) && internal::ExtendReady(bag)) {
    internal::ChargeScanStage(bag, 1.0, "zipWithUniqueId");
    const int chain = internal::NextChainOps(bag);
    auto st = std::make_shared<const ExtT>(ExtT{*bag.chain(), stride});
    typename Bag<Out>::Feed feed;
    typename Bag<Out>::Run run;
    internal::EraseChain(st, &feed, &run);
    return internal::FusedBag<ExtT>(
        internal::MaybeAutoCheckpoint(Bag<Out>::Deferred(
            c, std::move(feed), bag.PartitionSizes(), /*counts_exact=*/true,
            /*counts_bounded=*/true, chain, bag.scale(), 0,
            bag.lineage_depth() + 1, std::move(run))),
        std::move(st));
  }
  return internal::FusedBag<ExtT>(
      ZipWithUniqueId(static_cast<const Bag<T>&>(bag)), nullptr);
}

// --- Actions ---
//
// Every action is a forcing point for pending fused chains: the chain
// materializes (charge-free — composition already paid) before the action's
// own job/scan charges, mirroring Spark where an action runs the pipelined
// stage it terminates.

/// Number of synthetic elements. Charges a job plus a scan.
template <typename T>
int64_t Count(const Bag<T>& bag) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return 0;
  bag.Force();
  c->BeginJob("count");
  internal::ChargeScanStage(bag, 0.25, "count");
  return bag.Size();
}

/// True iff the bag has at least one element. Charges a job plus a scan
/// (used by lifted loops to test their exit condition, Listing 4 line 9).
template <typename T>
bool NotEmpty(const Bag<T>& bag) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return false;
  bag.Force();
  c->BeginJob("notEmpty");
  internal::ChargeScanStage(bag, 0.05, "notEmpty");
  return bag.Size() > 0;
}

/// Folds all elements with the associative, commutative `f`; nullopt for an
/// empty bag. Charges a job plus a scan.
template <typename T, typename F>
std::optional<T> Reduce(const Bag<T>& bag, F f, double weight = 1.0) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return std::nullopt;
  bag.Force();
  c->BeginJob("reduce");
  internal::ChargeScanStage(bag, weight, "reduce");
  std::optional<T> acc;
  for (const auto& part : bag.partitions()) {
    for (const auto& x : part) {
      if (!acc.has_value()) {
        acc = x;
      } else {
        acc = f(*acc, x);
      }
    }
  }
  return acc;
}

/// Materializes the bag at the driver. Charges a job, a scan, and the
/// network transfer to the driver; fails the cluster with OutOfMemory if the
/// data does not fit into one machine.
template <typename T>
std::vector<T> Collect(const Bag<T>& bag) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return {};
  bag.Force();
  c->BeginJob("collect");
  internal::ChargeScanStage(bag, 0.25, "collect");
  const double bytes = RealBagBytes(bag);
  if (bytes > c->config().memory_per_machine_bytes) {
    c->Fail(Status::OutOfMemory("collect result does not fit on the driver"));
    return {};
  }
  c->AccrueCollect(bytes);
  return bag.ToVector();
}

}  // namespace matryoshka::engine

#endif  // MATRYOSHKA_ENGINE_OPS_H_
