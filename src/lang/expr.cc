#include "lang/expr.h"

#include <sstream>

namespace matryoshka::lang {

namespace {

std::shared_ptr<Expr> New(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

const char* KindName(ExprKind k) {
  switch (k) {
    case ExprKind::kSource:
      return "source";
    case ExprKind::kVar:
      return "var";
    case ExprKind::kConst:
      return "const";
    case ExprKind::kTupleMake:
      return "tuple";
    case ExprKind::kTupleField:
      return "field";
    case ExprKind::kBinOp:
      return "binop";
    case ExprKind::kMap:
      return "map";
    case ExprKind::kFilter:
      return "filter";
    case ExprKind::kFlatMap:
      return "flatMap";
    case ExprKind::kReduceByKey:
      return "reduceByKey";
    case ExprKind::kGroupByKey:
      return "groupByKey";
    case ExprKind::kDistinct:
      return "distinct";
    case ExprKind::kCount:
      return "count";
    case ExprKind::kUnion:
      return "union";
    case ExprKind::kWhile:
      return "while";
    case ExprKind::kLiftedWhile:
      return "liftedWhile";
    case ExprKind::kIf:
      return "if";
    case ExprKind::kLiftedIf:
      return "liftedIf";
    case ExprKind::kGroupByKeyIntoNestedBag:
      return "groupByKeyIntoNestedBag";
    case ExprKind::kMapWithLiftedUdf:
      return "mapWithLiftedUDF";
    case ExprKind::kLiftedMap:
      return "liftedMap";
    case ExprKind::kLiftedFilter:
      return "liftedFilter";
    case ExprKind::kLiftedFlatMap:
      return "liftedFlatMap";
    case ExprKind::kLiftedReduceByKey:
      return "liftedReduceByKey";
    case ExprKind::kLiftedDistinct:
      return "liftedDistinct";
    case ExprKind::kLiftedCount:
      return "liftedCount";
    case ExprKind::kBinaryScalarOp:
      return "binaryScalarOp";
    case ExprKind::kLiftedMapWithClosure:
      return "liftedMapWithClosure";
  }
  return "?";
}

const char* OpName(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd:
      return "+";
    case BinOpKind::kSub:
      return "-";
    case BinOpKind::kMul:
      return "*";
    case BinOpKind::kDiv:
      return "/";
    case BinOpKind::kEq:
      return "==";
    case BinOpKind::kNe:
      return "!=";
    case BinOpKind::kLt:
      return "<";
    case BinOpKind::kLe:
      return "<=";
    case BinOpKind::kAnd:
      return "&&";
    case BinOpKind::kOr:
      return "||";
  }
  return "?";
}

void Print(const Expr& e, std::ostringstream& out);

void Print(const Lambda& lam, std::ostringstream& out) {
  out << "\\(";
  for (std::size_t i = 0; i < lam.params.size(); ++i) {
    if (i > 0) out << ", ";
    out << lam.params[i];
  }
  if (!lam.captures.empty()) {
    out << " | captures:";
    for (const auto& c : lam.captures) out << " " << c;
  }
  out << ") -> ";
  if (!lam.body.empty()) {
    out << "{ ";
    for (const Stmt& s : lam.body) {
      out << "let " << s.name << " = ";
      Print(*s.expr, out);
      out << "; ";
    }
    out << "return ";
    Print(*lam.result, out);
    out << " }";
  } else {
    Print(*lam.result, out);
  }
}

void Print(const Expr& e, std::ostringstream& out) {
  switch (e.kind) {
    case ExprKind::kSource:
      out << "source(" << e.name << ")";
      return;
    case ExprKind::kVar:
      out << e.name;
      return;
    case ExprKind::kConst:
      out << e.literal.ToString();
      return;
    case ExprKind::kTupleMake: {
      out << "(";
      for (std::size_t i = 0; i < e.inputs.size(); ++i) {
        if (i > 0) out << ", ";
        Print(*e.inputs[i], out);
      }
      out << ")";
      return;
    }
    case ExprKind::kTupleField:
      Print(*e.inputs[0], out);
      out << "._" << e.index;
      return;
    case ExprKind::kBinOp:
    case ExprKind::kBinaryScalarOp: {
      out << KindName(e.kind) << "[" << OpName(e.op) << "](";
      Print(*e.inputs[0], out);
      out << ", ";
      Print(*e.inputs[1], out);
      out << ")";
      return;
    }
    default: {
      out << KindName(e.kind) << "(";
      bool first = true;
      for (const auto& in : e.inputs) {
        if (!first) out << ", ";
        first = false;
        Print(*in, out);
      }
      if (!e.name.empty()) {
        if (!first) out << ", ";
        first = false;
        out << "$" << e.name;
      }
      if (e.lambda) {
        if (!first) out << ", ";
        first = false;
        Print(*e.lambda, out);
      }
      if (e.lambda2) {
        if (!first) out << ", ";
        Print(*e.lambda2, out);
      }
      out << ")";
      return;
    }
  }
}

}  // namespace

ExprPtr Source(std::string name) {
  auto e = New(ExprKind::kSource);
  e->name = std::move(name);
  return e;
}

ExprPtr Var(std::string name) {
  auto e = New(ExprKind::kVar);
  e->name = std::move(name);
  return e;
}

ExprPtr Lit(Value v) {
  auto e = New(ExprKind::kConst);
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeTuple(std::vector<ExprPtr> parts) {
  auto e = New(ExprKind::kTupleMake);
  e->inputs = std::move(parts);
  return e;
}

ExprPtr Field(ExprPtr in, std::size_t i) {
  auto e = New(ExprKind::kTupleField);
  e->inputs = {std::move(in)};
  e->index = i;
  return e;
}

ExprPtr BinOp(BinOpKind op, ExprPtr a, ExprPtr b) {
  auto e = New(ExprKind::kBinOp);
  e->op = op;
  e->inputs = {std::move(a), std::move(b)};
  return e;
}

namespace {
ExprPtr UnaryBagOp(ExprKind kind, ExprPtr bag) {
  auto e = New(kind);
  e->inputs = {std::move(bag)};
  return e;
}

ExprPtr BagOpWithLambda(ExprKind kind, ExprPtr bag, LambdaPtr f) {
  auto e = New(kind);
  e->inputs = {std::move(bag)};
  e->lambda = std::move(f);
  return e;
}
}  // namespace

ExprPtr Map(ExprPtr bag, LambdaPtr f) {
  return BagOpWithLambda(ExprKind::kMap, std::move(bag), std::move(f));
}
ExprPtr Filter(ExprPtr bag, LambdaPtr f) {
  return BagOpWithLambda(ExprKind::kFilter, std::move(bag), std::move(f));
}
ExprPtr FlatMap(ExprPtr bag, LambdaPtr f) {
  return BagOpWithLambda(ExprKind::kFlatMap, std::move(bag), std::move(f));
}
ExprPtr ReduceByKey(ExprPtr bag, LambdaPtr f2) {
  auto e = New(ExprKind::kReduceByKey);
  e->inputs = {std::move(bag)};
  e->lambda2 = std::move(f2);
  return e;
}
ExprPtr GroupByKey(ExprPtr bag) {
  return UnaryBagOp(ExprKind::kGroupByKey, std::move(bag));
}
ExprPtr Distinct(ExprPtr bag) {
  return UnaryBagOp(ExprKind::kDistinct, std::move(bag));
}
ExprPtr Count(ExprPtr bag) {
  return UnaryBagOp(ExprKind::kCount, std::move(bag));
}
ExprPtr UnionOf(ExprPtr a, ExprPtr b) {
  auto e = New(ExprKind::kUnion);
  e->inputs = {std::move(a), std::move(b)};
  return e;
}

ExprPtr While(ExprPtr init, LambdaPtr body) {
  auto e = New(ExprKind::kWhile);
  e->inputs = {std::move(init)};
  e->lambda = std::move(body);
  return e;
}

ExprPtr If(ExprPtr cond, ExprPtr state, LambdaPtr then_branch,
           LambdaPtr else_branch) {
  auto e = New(ExprKind::kIf);
  e->inputs = {std::move(cond), std::move(state)};
  e->lambda = std::move(then_branch);
  e->lambda2 = std::move(else_branch);
  return e;
}

LambdaPtr Lam(std::string param, ExprPtr result) {
  auto l = std::make_shared<Lambda>();
  l->params = {std::move(param)};
  l->result = std::move(result);
  return l;
}

LambdaPtr Lam2(std::string a, std::string b, ExprPtr result) {
  auto l = std::make_shared<Lambda>();
  l->params = {std::move(a), std::move(b)};
  l->result = std::move(result);
  return l;
}

LambdaPtr LamProgram(std::vector<std::string> params, std::vector<Stmt> body,
                     ExprPtr result) {
  auto l = std::make_shared<Lambda>();
  l->params = std::move(params);
  l->body = std::move(body);
  l->result = std::move(result);
  return l;
}

std::string ToString(const Expr& e) {
  std::ostringstream out;
  Print(e, out);
  return out.str();
}

std::string ToString(const Program& p) {
  std::ostringstream out;
  for (const Stmt& s : p.stmts) {
    out << "let " << s.name << " = ";
    Print(*s.expr, out);
    out << "\n";
  }
  out << "return " << p.result << "\n";
  return out.str();
}

}  // namespace matryoshka::lang
