#ifndef MATRYOSHKA_ENGINE_CLUSTER_H_
#define MATRYOSHKA_ENGINE_CLUSTER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoints.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/external/memory_budget.h"
#include "obs/trace_recorder.h"

namespace matryoshka::engine {

/// Seeded, fully deterministic fault-injection plan for the simulated
/// cluster. All draws derive from (seed, stage index, task index, attempt),
/// so two runs of the same program with the same plan produce bit-identical
/// metrics, and a plan with every knob at its default injects nothing (the
/// cost model is then byte-for-byte the fault-free one).
///
/// Faults only perturb the *simulated* clock and the fault metrics: the
/// engine still really executes every operator in-process, so computed
/// results never change — exactly the lineage-recompute guarantee of the
/// Spark-like engines the model stands in for.
struct FaultPlan {
  uint64_t seed = 2021;

  /// Probability that one task attempt fails (transient executor fault).
  /// Failed attempts are retried up to `max_task_retries` times with
  /// exponential backoff; exhausting the budget fails the whole run with a
  /// sticky TaskFailed status (distinct from the memory model's OOM).
  double task_failure_prob = 0.0;
  int max_task_retries = 3;
  /// Backoff before retry attempt a is `retry_backoff_s * 2^a`, charged to
  /// the failing task's slot on the simulated clock.
  double retry_backoff_s = 0.5;

  /// Each task attempt independently straggles with this probability, ...
  double straggler_fraction = 0.0;
  /// ... running `straggler_slowdown` times slower than its base cost.
  double straggler_slowdown = 1.0;

  /// Simulated timestamps (seconds) at which one machine is lost. Each
  /// event fires once per run (Reset re-arms them): the cluster permanently
  /// loses one machine's slots, and the stage running when the event fires
  /// re-executes the lost machine's share of its work, multiplied by the
  /// stage input's lineage depth (the narrow chain that must be recomputed
  /// to regenerate the lost partitions).
  std::vector<double> machine_loss_times_s;

  /// If true, the scheduler launches a duplicate of the slowest
  /// `speculation_fraction` of each stage's tasks and takes the earlier
  /// finisher, occupying an extra slot for the duplicate's lifetime.
  bool speculative_execution = false;
  double speculation_fraction = 0.05;

  /// True when any knob can perturb the cost model. Inactive plans take the
  /// exact pre-fault accounting path.
  bool active() const {
    return task_failure_prob > 0.0 || !machine_loss_times_s.empty() ||
           (straggler_fraction > 0.0 && straggler_slowdown != 1.0) ||
           speculative_execution;
  }
};

/// Driver-side recovery policy: checkpointing, driver-level retry, and
/// degraded-mode re-planning after machine loss. Everything here defaults
/// *off*: a default-constructed policy leaves metrics and traces
/// byte-identical to an engine without the recovery subsystem, even under an
/// active FaultPlan (locked down by engine_recovery_test).
struct RecoveryPolicy {
  /// Driver-level retry budget: when a program run fails with a
  /// driver-retryable status (kTaskFailed, kDeadlineExceeded),
  /// RunWithRecovery re-runs it up to this many times instead of letting the
  /// sticky status poison the program. 0 disables driver retries.
  int max_driver_retries = 0;
  /// Backoff before driver retry attempt a is `driver_backoff_s * 2^a`
  /// simulated seconds, charged to the clock and to recovery_time_s.
  double driver_backoff_s = 2.0;
  /// Per-attempt deadline on the simulated clock: an attempt (measured from
  /// Reset / RunWithRecovery entry / the last driver retry) that runs longer
  /// fails with kDeadlineExceeded, which is itself driver-retryable.
  /// 0 disables the deadline.
  double run_deadline_s = 0.0;

  /// Cost-based auto-checkpointing: narrow operators checkpoint their output
  /// when its lineage depth has reached `min_checkpoint_lineage` AND the
  /// expected machine-loss recompute of the chain (depth x lost-machine
  /// share of the bag's compute, over the surviving slots) exceeds the
  /// checkpoint write cost — so machine-loss recompute is bounded by the
  /// checkpoint interval instead of growing with the narrow chain.
  bool auto_checkpoint = false;
  int min_checkpoint_lineage = 4;
  /// Write bandwidth per machine to the simulated replicated store.
  double checkpoint_bytes_per_s = 250e6;
  /// Copies written per checkpoint (HDFS-style replication).
  int checkpoint_replicas = 2;

  /// Degraded-mode re-planning: after machine loss, partition-count
  /// resolution, per-machine shuffle/spill shares, the optimizer's
  /// broadcast-vs-repartition choice, and the broadcast memory budget all
  /// consult available_machines() instead of the static config — and a
  /// broadcast join that no longer fits the shrunken cluster falls back to a
  /// repartition join instead of failing with a sticky OOM.
  bool degraded_replanning = false;

  /// True when any knob departs from the byte-identical default behavior.
  bool active() const {
    return max_driver_retries > 0 || run_deadline_s > 0.0 ||
           auto_checkpoint || degraded_replanning;
  }
};

/// Narrow-operator fusion (deferred execution). With fusion on, narrow
/// operators (Map, Filter, FlatMap, MapValues, FlatMapValues,
/// ZipWithUniqueId, Sample) do not execute immediately: they compose onto a
/// pending per-element pipeline that the next forcing point (any wide
/// operator, any action, Checkpoint, or Bag::Force) runs as ONE fused pass
/// per partition. The simulated cost model is charged identically at
/// composition time, so data results, Metrics, and exported traces are
/// bit-identical with the knob on or off; only real wall-clock changes.
/// See DESIGN.md, "Fusion contract".
struct FusionConfig {
  /// Master switch; off takes the eager per-op execution path,
  /// byte-identical to the pre-fusion engine. The MATRYOSHKA_FUSION
  /// environment variable ("0"/"1"), when set, overrides this at Cluster
  /// construction — scripts/check.sh fusion uses it to A/B entire test
  /// suites without recompiling.
  bool enabled = true;
  /// Maximum narrow ops composed into one pending chain before a forced
  /// materialization boundary. Bounds the per-element closure nesting depth
  /// (each composed op adds one indirect call per element).
  int max_chain_depth = 16;
  /// Feed representation of the pending chain. On (the default), composing
  /// narrow ops builds a statically-typed expression-template chain
  /// (fused_feed.h) whose forced materialization is one monomorphic loop
  /// per partition; off retains the type-erased per-element `std::function`
  /// composition for A/B. Results, Metrics, and traces are bit-identical
  /// either way; only real wall-clock changes. The MATRYOSHKA_STATIC_FEEDS
  /// environment variable ("0"/"1"), when set, overrides this at Cluster
  /// construction. Ignored while `enabled` is false.
  bool static_feeds = true;
};

/// Static description of the (simulated) cluster a program runs on, plus the
/// calibration constants of the cost model.
///
/// The engine *really executes* every operator on in-process data, but
/// reports time on a deterministic simulated clock driven by these constants.
/// Defaults model the paper's evaluation cluster (Sec. 9.1): 25 machines,
/// 2 x 8-core CPUs, 22 GB usable memory for Spark per machine, 1 Gb network.
///
/// Data in this repository is scaled down by ~3 orders of magnitude relative
/// to the paper's runs; `data_scale` lets a benchmark declare how many
/// "real" elements one synthetic element stands for, so memory pressure and
/// compute/overhead ratios match the paper's regime.
struct ClusterConfig {
  int num_machines = 25;
  int cores_per_machine = 16;
  /// Memory usable by the engine per machine, in (simulated) bytes.
  double memory_per_machine_bytes = 22.0 * (1ULL << 30);

  /// Fixed cost of launching one job (driver -> scheduler round trip, task
  /// serialization, ...). The paper's inner-parallel workaround pays this per
  /// inner computation per action.
  double job_launch_overhead_s = 0.1;
  /// Per-task scheduling/launch/teardown cost.
  double task_overhead_s = 0.004;
  /// CPU cost per real element per operator pass.
  double per_element_cost_s = 100e-9;
  /// Aggregate network bandwidth per machine (1 Gb/s by default).
  double network_bytes_per_s = 125e6;

  /// Spark-style parallelism default: number of partitions produced by wide
  /// operators when the caller does not override it. The paper sets it to
  /// 3x the total core count; 0 (the default) means exactly that — "auto",
  /// resolved to `3 * total_cores()` when the Cluster is constructed, so
  /// changing num_machines / cores_per_machine rescales it automatically.
  int default_parallelism = 0;

  /// Fraction of machine memory available to a single wide operator's
  /// build/aggregation structures before it starts spilling to disk
  /// (Spark's shuffle/execution memory fraction).
  double execution_memory_fraction = 0.15;
  /// JVM-style object overhead multiplier applied to wide operators'
  /// working sets when checking the execution-memory budget (boxed keys,
  /// hash-table load factors).
  double memory_object_overhead = 3.0;
  /// Time multiplier applied to the portion of a wide operator's input that
  /// exceeds the execution memory and must be spilled and re-read.
  double spill_penalty = 4.0;

  /// REAL (process RAM) byte budget for wide operators' scratch: scatter
  /// buffers and keyed-aggregation builds overflow to unlinked temp-file
  /// runs once their static share of this budget fills, and merge back on
  /// read. 0 (the default) = unbounded = today's purely in-memory execution,
  /// byte-identically. For ANY value — and any pool size — output data,
  /// partition order, key_partitions, and all simulated Metrics are
  /// bit-identical to the unbounded run (the external determinism contract,
  /// DESIGN.md); only real wall-clock and the real_* spill counters change.
  /// Unlike every knob above, this one is NOT simulated: it bounds actual
  /// engine memory so benches can run inputs larger than the scratch budget.
  /// The MATRYOSHKA_REAL_BUDGET environment variable (bytes), when set,
  /// overrides a zero (unbounded) config at Cluster construction —
  /// scripts/check.sh spill uses it to force whole test suites through the
  /// external paths; an explicit nonzero config value always wins.
  std::size_t real_memory_budget_bytes = 0;

  /// Deterministic REAL-fault injection into the external subsystem's
  /// actual IO (injected ENOSPC/EIO/short transfers/corruption/stalls at
  /// every spill syscall boundary, allocation failure at scratch charge
  /// points). Unlike `faults` above — which only perturbs the simulated
  /// cost model — an active plan exercises the engine's REAL error paths:
  /// bounded retry, checksum verification, in-memory fallback, typed
  /// failure. The default plan injects nothing and the disarmed paths are
  /// byte-identical to an engine without the registry. Draws are pure
  /// functions of (seed, worker stream, site, byte offset, epoch), so
  /// injected faults and the real_io_* counters are identical across pool
  /// sizes. The MATRYOSHKA_REAL_FAULTS environment variable
  /// ("<prob>[:<seed>]"), when set and this plan is inactive, arms a
  /// recoverable-only storm (transient EIO + short transfers) at Cluster
  /// construction — scripts/check.sh chaos uses it to force entire suites
  /// through the hardened paths. See common/failpoints.h.
  RealFaultPlan real_faults;

  /// Retry/backoff/fallback policy for real IO faults (injected or from
  /// actual hardware). See common/failpoints.h.
  RealIoPolicy real_io;

  /// How many "real" elements one synthetic element of a freshly loaded
  /// dataset stands for (Parallelize stamps it onto new bags). Every bag
  /// carries its own scale from there on: cardinality-preserving operators
  /// propagate it, while key-collapsing operators (aggregation to a fixed
  /// key space, the tag-sized InnerScalar bags) produce scale-1 bags whose
  /// synthetic cardinality IS the real cardinality. All compute, network,
  /// and memory accounting multiplies by the bag's scale.
  double data_scale = 1.0;

  /// If true, partition tasks run on a thread pool; results are identical,
  /// only real (not simulated) run time changes.
  bool execute_parallel = false;

  /// Worker threads in the real execution pool (with execute_parallel on).
  /// 0 = one per hardware thread. Results are bit-identical for any value
  /// (locked by engine_parallel_determinism_test, which pins it to exercise
  /// real concurrency regardless of the host's core count).
  int pool_threads = 0;

  /// Externally owned pool to execute on instead of spawning a private one
  /// (only consulted with execute_parallel on; pool_threads is then
  /// ignored). The serving layer runs every request's Cluster over ONE
  /// shared pool this way: per-request state (metrics, fault draws, sticky
  /// status, trace sink) stays isolated in each Cluster while the real CPU
  /// work of all in-flight requests interleaves on the shared workers. The
  /// pool must outlive the Cluster; results are bit-identical to a private
  /// pool of any size.
  ThreadPool* shared_pool = nullptr;

  /// Deterministic fault injection; the default plan injects nothing.
  FaultPlan faults;

  /// Driver-side recovery; the default policy changes nothing.
  RecoveryPolicy recovery;

  /// Narrow-operator fusion; on by default (off = the eager pre-fusion
  /// execution path, byte-identical results either way).
  FusionConfig fusion;

  int total_cores() const { return num_machines * cores_per_machine; }
  /// Memory budget of one task slot (machine memory divided across the
  /// concurrently running tasks of that machine).
  double task_memory_budget() const {
    return memory_per_machine_bytes / cores_per_machine;
  }
};

/// Per-stage annotations the operators pass to AccrueStage so the optional
/// trace sink can label and decompose the stage. Cheap aggregate of
/// literals; irrelevant to the cost model itself.
struct StageContext {
  /// Operator name ("map", "reduceByKey[merge]", ...).
  const char* label = "stage";
  /// Spill inflation already multiplied into the task costs (SpillFactor's
  /// return value); lets the trace separate spill seconds from compute.
  double spill_factor = 1.0;
};

/// Counters and the simulated clock accumulated over a program run.
struct Metrics {
  double simulated_time_s = 0.0;
  int64_t jobs = 0;
  int64_t stages = 0;
  int64_t tasks = 0;
  int64_t elements_processed = 0;
  double shuffle_bytes = 0.0;
  double broadcast_bytes = 0.0;
  double spilled_bytes = 0.0;
  int64_t spill_events = 0;
  double peak_task_bytes = 0.0;
  double peak_machine_bytes = 0.0;
  /// --- Fault injection / recovery (all zero when FaultPlan is inactive) ---
  /// Task attempts that failed transiently (each either retried or, once the
  /// retry budget is exhausted, fatal).
  int64_t failed_tasks = 0;
  /// Retry launches after transient task failures.
  int64_t task_retries = 0;
  /// Speculative duplicates launched for straggling tasks.
  int64_t speculative_launches = 0;
  /// Machine-loss events that fired.
  int64_t machines_lost = 0;
  /// Simulated seconds attributable to recovery: wasted work of failed
  /// attempts, retry backoff, lineage recomputation after machine loss, and
  /// driver-retry backoff.
  double recovery_time_s = 0.0;
  /// --- Recovery subsystem (all zero when RecoveryPolicy is defaulted and
  /// no explicit Checkpoint() is called) ---
  /// Checkpoints written (explicit Checkpoint() calls + auto-checkpoints).
  int64_t checkpoints_written = 0;
  /// Bytes written to the simulated replicated store, replication included.
  double checkpoint_bytes = 0.0;
  /// Driver-level re-runs after retryable failures (RunWithRecovery).
  int64_t driver_retries = 0;
  /// Degraded-mode plan fallbacks (e.g. broadcast join -> repartition join
  /// after machine loss shrank the broadcast memory budget).
  int64_t plan_fallbacks = 0;
  /// --- Serving memo cache (all zero outside the serving layer; per-request
  /// metrics never carry them — a cached response returns the memoized
  /// metrics of the original computation byte-identically, and the serving
  /// driver tallies hits/misses/evictions into its *aggregate* metrics
  /// snapshot only) ---
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  /// --- Real (out-of-core) execution, all zero with
  /// real_memory_budget_bytes == 0. These count ACTUAL bytes written to
  /// temp-file runs by the external subsystem — the only Metrics fields
  /// measured on real execution rather than the simulated cost model
  /// (spilled_bytes/spill_events above remain the simulated penalty and are
  /// untouched by the external paths). Deterministic for a fixed budget across
  /// pool sizes (static per-worker quotas; per-worker counters reduced on
  /// the driver in worker order), but EXCLUDED from the "simulated Metrics
  /// identity" of the determinism contract: they legitimately differ
  /// between budget arms. ---
  double real_spilled_bytes = 0.0;
  int64_t real_spill_events = 0;
  int64_t real_spill_runs = 0;
  /// --- Real-fault hardening (all zero with ClusterConfig::real_faults
  /// inactive and healthy hardware; like the real_spill_* counters above
  /// these are measured on real execution, excluded from the simulated
  /// Metrics identity, and deterministic for a fixed plan across pool
  /// sizes). ---
  /// Failpoint firings at spill-IO syscall and scratch-charge sites.
  int64_t real_io_faults_injected = 0;
  /// Bounded-retry attempts after (injected or real) transient IO errors.
  int64_t real_io_retries = 0;
  /// Spill runs whose bytes failed checksum verification on merge-on-read.
  int64_t checksum_failures = 0;
  /// Bounded ops that re-ran / drained in memory because the disk became
  /// unusable (graceful degradation; the output stays bit-identical).
  int64_t inmemory_fallbacks = 0;
};

/// Execution context shared by every Bag of one program run: cost-model
/// accounting, sticky error status, and the optional real thread pool.
///
/// Error handling is sticky, Arrow-builder style: the first failure (e.g. a
/// simulated out-of-memory) is recorded, subsequent operators become no-ops
/// producing empty results, and the caller checks `status()` once at the end
/// of the program.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  const Metrics& metrics() const { return metrics_; }
  Metrics& mutable_metrics() { return metrics_; }

  /// Sticky program status. Operators early-out once this is non-OK.
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }
  /// Records the first failure; later calls keep the original status.
  void Fail(Status status);
  /// Clears status and metrics (fresh run on the same cluster). With a
  /// trace sink attached, also archives the current trace run and starts a
  /// new one.
  void Reset();

  /// Optional observability sink. Null (the default) is the zero-cost path:
  /// the cost model is byte-identical to a build without tracing. With a
  /// recorder attached every job/stage/task interval, network transfer,
  /// spill, fault event, and optimizer decision is recorded on the
  /// simulated clock; metrics stay bit-identical either way.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  obs::TraceRecorder* trace() const { return trace_; }

  // --- Cost-model accounting (called by operators) ---

  /// Marks the start of a dataflow job (an *action* in Spark terms) and
  /// charges the job-launch overhead.
  void BeginJob(const std::string& label);

  /// Charges one stage whose tasks have the given per-task costs (seconds of
  /// single-core work each, already including any UDF weight). Simulates
  /// greedy list scheduling of the tasks onto the cluster's core slots and
  /// advances the clock by task overheads plus the resulting makespan.
  ///
  /// Under an active FaultPlan the per-task durations are perturbed by
  /// deterministic straggler/failure draws (retries with backoff occupy the
  /// task's slot), the slowest tasks may be speculatively duplicated, and
  /// machine-loss events that fire during the stage charge a lineage
  /// recompute of `lineage_depth` upstream narrow stages for the lost
  /// machine's share of the work.
  ///
  /// `stage_ctx` labels the stage for the trace sink and carries the spill
  /// inflation the caller multiplied into the costs; it never affects the
  /// cost model.
  void AccrueStage(const std::vector<double>& task_costs_s,
                   int lineage_depth = 1, const StageContext& stage_ctx = {});

  /// Convenience: a stage of `num_tasks` tasks uniformly covering
  /// `total_elements` real elements with `cost_weight` weight each.
  void AccrueUniformStage(int64_t num_tasks, double total_elements,
                          double cost_weight,
                          const StageContext& stage_ctx = {});

  /// Charges moving `bytes` (real, i.e. already multiplied by the source
  /// bag's scale) across the shuffle: each machine sends/receives its share
  /// at the configured bandwidth.
  void AccrueShuffle(double bytes, const char* label = "shuffle");

  /// Charges collecting `bytes` (real) to the driver and re-distributing
  /// them to every machine. Fails with OutOfMemory if the broadcast data
  /// does not fit into a single machine's memory.
  void AccrueBroadcast(double bytes, const char* label = "broadcast");

  /// Non-failing variant of AccrueBroadcast: returns OutOfMemory (without
  /// poisoning the cluster) when the data does not fit the broadcast memory
  /// budget, so degraded-mode planners can intercept and fall back to a
  /// repartition join; charges the transfer and returns OK otherwise.
  Status TryAccrueBroadcast(double bytes, const char* label = "broadcast");

  /// Charges writing `bytes` (real, pre-replication) to the simulated
  /// replicated store: every live machine writes its share of
  /// `bytes * checkpoint_replicas` in parallel at the policy's bandwidth.
  /// Counted in checkpoints_written / checkpoint_bytes and traced as a
  /// kCheckpoint driver span — NOT as a stage, so checkpointing never shifts
  /// stage indices (fault draws stay comparable across A/B runs).
  void AccrueCheckpoint(double bytes, const char* label = "checkpoint");

  /// Seconds one checkpoint of `bytes` (real, pre-replication) would take;
  /// used by the auto-checkpoint policy's cost comparison.
  double CheckpointWriteSeconds(double bytes) const {
    const auto replicas =
        static_cast<double>(std::max(1, config_.recovery.checkpoint_replicas));
    return bytes * replicas /
           (static_cast<double>(available_machines()) *
            config_.recovery.checkpoint_bytes_per_s);
  }

  /// Clears a driver-retryable sticky failure so the driver can re-run the
  /// program: charges `backoff_s` to the clock and recovery_time_s, counts
  /// driver_retries, and re-arms the per-attempt deadline. Metrics otherwise
  /// keep accumulating — the failed attempt's simulated time really passed.
  /// No-op when the cluster is OK. (Use engine::RunWithRecovery instead of
  /// calling this directly.)
  void BeginDriverRetry(double backoff_s, const std::string& why);

  /// Starts a deadline window at the current simulated time (RunWithRecovery
  /// calls this on entry; Reset and BeginDriverRetry re-arm it too).
  void ArmRunDeadline() { attempt_start_s_ = metrics_.simulated_time_s; }

  /// Counts a degraded-mode plan fallback (broadcast -> repartition, ...).
  void NotePlanFallback(const char* what);

  /// Charges transferring `bytes` (real) to the driver (the network half of
  /// a collect action).
  void AccrueCollect(double bytes, const char* label = "collect");

  /// Verifies that one task holding `bytes` of live data (real bytes, e.g.
  /// one materialized group in a groupByKey times the workload's expansion
  /// factor) fits into a task slot's memory budget; fails with OutOfMemory
  /// otherwise.
  void CheckTaskMemory(double bytes, const std::string& what);

  /// Accounts a wide operator's per-machine working set (real bytes): if it
  /// exceeds the execution-memory budget the exceeding fraction is charged
  /// the spill penalty. Returns the time multiplier (>= 1) the caller
  /// applies to the stage compute cost.
  double SpillFactor(double per_machine_bytes);

  /// The real scratch-memory accountant of the external (out-of-core)
  /// execution subsystem. Unbounded (total 0) when
  /// real_memory_budget_bytes == 0: wide operators then take the purely
  /// in-memory paths.
  const external::MemoryBudget& real_budget() const { return real_budget_; }

  /// The real-fault injection registry, armed from config().real_faults at
  /// construction (possibly via MATRYOSHKA_REAL_FAULTS). External-execution
  /// workers consult it at every spill syscall boundary; disarmed (the
  /// default) it is a single-branch no-op. Never null.
  const FailpointRegistry* failpoints() const { return &failpoints_; }

  /// Records one bounded phase's REAL spill totals (already reduced in
  /// worker order by the caller) into the real_* Metrics and, with a trace
  /// sink attached, as a zero-width kSpill driver span at the current
  /// simulated time. Never advances the simulated clock and never touches
  /// the simulated spill counters: real spilling must leave every simulated
  /// quantity bit-identical to the unbounded run. Driver-side only.
  void NoteRealSpill(const external::SpillStats& stats, const char* label);

  /// Seconds of single-core compute for `n` real elements at weight `w`.
  double ComputeCost(double n, double w) const {
    return n * config_.per_element_cost_s * w;
  }

  /// Thread pool for real parallel execution, or nullptr when disabled.
  /// Either privately owned or the config's shared_pool.
  ThreadPool* pool() { return pool_ptr_; }

  // --- Driver-thread contract ---
  //
  // A Cluster (and every Bag on it) is single-threaded BY DESIGN: all
  // cost-model accounting, fault draws, and pending-chain forcing happen on
  // one "driver" thread, which is what makes runs bit-identical. The pool
  // only ever executes closed per-index bodies handed over by ParallelFor.
  // The driver thread is whichever thread constructed the Cluster; a thread
  // that legitimately takes over a Cluster (e.g. a serving worker executing
  // a request on a Cluster built elsewhere) must call BindDriverThread()
  // first. CheckDriverThread turns a violation — previously silent UB —
  // into an immediate CHECK failure with an actionable message.

  /// Re-binds the driver thread to the calling thread. Only call while no
  /// operator is executing (between requests / before the program starts).
  void BindDriverThread() { driver_thread_ = std::this_thread::get_id(); }

  /// True on the thread that owns this Cluster's driver role.
  bool OnDriverThread() const {
    return std::this_thread::get_id() == driver_thread_;
  }

  /// Aborts with an actionable message when called off the driver thread.
  /// Called by Bag::Force() (and available to any driver-side entry point):
  /// forcing a pending fused chain off the driver thread would race the
  /// chain's memoization and the cost model. No-op on the driver thread.
  void CheckDriverThread(const char* what) const;

  /// Machines still alive (>= 1; machine-loss events permanently remove
  /// machines until the next Reset).
  int available_machines() const {
    return config_.num_machines - lost_machines_;
  }

  /// Core slots on the machines still alive.
  int available_cores() const {
    return available_machines() * config_.cores_per_machine;
  }

  // --- Degraded-aware planning accessors. With degraded_replanning off (the
  // default) these return the static config values, byte-identically to the
  // pre-recovery engine; with it on they track available_machines(). ---

  /// Machine count planners should divide per-machine shares by.
  int planning_machines() const {
    return config_.recovery.degraded_replanning ? available_machines()
                                                : config_.num_machines;
  }

  /// Core count planners should size repartition-vs-broadcast choices by.
  int planning_cores() const {
    return config_.recovery.degraded_replanning ? available_cores()
                                                : config_.total_cores();
  }

  /// Default wide-operator partition count, scaled down with the cluster
  /// when degraded re-planning is on (never below 1).
  int64_t effective_parallelism() const {
    const auto base = static_cast<int64_t>(config_.default_parallelism);
    if (!config_.recovery.degraded_replanning || lost_machines_ == 0) {
      return base;
    }
    return std::max<int64_t>(
        1, base * available_machines() / config_.num_machines);
  }

  /// Memory a broadcast must fit into. Degraded mode shrinks it with the
  /// lost machines' share: the survivors also hold the dead machines'
  /// re-replicated partitions, so broadcast headroom shrinks proportionally.
  double broadcast_memory_budget() const {
    if (!config_.recovery.degraded_replanning || lost_machines_ == 0) {
      return config_.memory_per_machine_bytes;
    }
    return config_.memory_per_machine_bytes *
           static_cast<double>(available_machines()) /
           static_cast<double>(config_.num_machines);
  }

 private:
  /// One entry of a stage's scheduled task list: the slot time of one task
  /// copy plus its trace annotations.
  struct ScheduledTask {
    double duration_s = 0.0;
    int64_t task_index = 0;
    /// Fault-free slot time (the caller-provided cost, incl. spill).
    double base_cost_s = 0.0;
    int retries = 0;
    bool speculative = false;
  };

  /// Greedy list scheduling of `sched` onto `slots` identical cores.
  /// Returns the makespan; when a trace sink is attached, records the
  /// per-slot task spans and the critical-slot decomposition for the stage
  /// opened as `trace_stage_id` starting at simulated time `t0`.
  double ScheduleStage(const std::vector<ScheduledTask>& sched, int slots,
                       double t0, int64_t trace_stage_id,
                       const StageContext& stage_ctx);

  /// Simulated duration one task copy occupies its slot: base cost perturbed
  /// by straggler and failure/retry draws keyed on (stage, task, salt).
  /// Sets *exhausted when the retry budget ran out and counts the retry
  /// launches into *retries.
  double SimulateTaskAttempts(double base_cost_s, uint64_t stage_index,
                              uint64_t task_index, uint64_t copy_salt,
                              bool* exhausted, int* retries);

  /// Fires every machine-loss event reached by the simulated clock; a stage
  /// whose execution window covers an event re-executes the lost machine's
  /// share (`stage_cost_s` single-core seconds over `num_tasks` tasks) times
  /// `lineage_depth`.
  void ProcessMachineLossEvents(double stage_cost_s, int64_t num_tasks,
                                int lineage_depth);

  /// Fails with kDeadlineExceeded when the current attempt has outrun the
  /// policy's run_deadline_s. No-op with the deadline off (the default).
  void CheckDeadline();

  /// The network transfer + trace span of a fitting broadcast.
  void ChargeBroadcastTransfer(double bytes, const char* label);

  ClusterConfig config_;
  Metrics metrics_;
  Status status_;
  /// Real scratch budget (constructed once from the resolved config; the
  /// accountant itself is thread-safe, the total immutable).
  external::MemoryBudget real_budget_;
  /// Real-fault injection registry (armed once in the ctor; the epoch is
  /// bumped by driver retries so a retried attempt sees fresh draws).
  FailpointRegistry failpoints_;
  obs::TraceRecorder* trace_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;
  /// The pool operators actually run on: pool_.get(), the config's
  /// shared_pool, or nullptr (serial execution).
  ThreadPool* pool_ptr_ = nullptr;
  /// Thread that owns the driver role (see BindDriverThread).
  std::thread::id driver_thread_;
  /// Sorted copy of config_.faults.machine_loss_times_s.
  std::vector<double> loss_times_;
  std::size_t next_loss_event_ = 0;
  int lost_machines_ = 0;
  /// Simulated time the current driver attempt started (deadline window).
  double attempt_start_s_ = 0.0;
};

namespace internal {

/// ParallelFor with operator-grade exception safety: a body that throws no
/// longer unwinds into the pool's WaitIdle (std::terminate) — ParallelFor
/// itself catches per-chunk exceptions, completes the barrier, and rethrows
/// the winning (lowest-index) one here, where it becomes the cluster's
/// sticky typed status. Every engine operator funnels its per-partition
/// bodies through this wrapper, so a throwing UDF fails the one program
/// (and, in the serving layer, the one request) instead of the process.
template <typename Body>
void GuardedParallelFor(Cluster* c, std::size_t n, const Body& body) {
  try {
    ParallelFor(c->pool(), n, body);
  } catch (const std::exception& e) {
    c->Fail(Status::Internal(std::string("uncaught exception in parallel "
                                         "task body: ") +
                             e.what()));
  } catch (...) {
    c->Fail(Status::Internal(
        "uncaught non-std exception in parallel task body"));
  }
}

}  // namespace internal

}  // namespace matryoshka::engine

#endif  // MATRYOSHKA_ENGINE_CLUSTER_H_
