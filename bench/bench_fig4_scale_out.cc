// Figure 4 (Sec. 9.3): scale-out — run time vs. number of machines, with
// the number of inner computations fixed at 64 for every task. Expected
// shapes: Matryoshka scales nearly linearly with machines; the workarounds
// stay flat in many cases (outer-parallel cannot use cores beyond its 64
// groups, inner-parallel's job overhead does not shrink and its scheduling
// overheads grow with more partitions). The paper starts each line where
// total memory suffices; runs below that report oom=1.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/avg_distances.h"
#include "workloads/bounce_rate.h"
#include "workloads/kmeans.h"
#include "workloads/pagerank.h"

namespace matryoshka::bench {
namespace {

using workloads::Variant;

constexpr uint64_t kSeed = 41;
constexpr int64_t kInnerComputations = 64;

Variant VariantOf(int64_t i) {
  switch (i) {
    case 0:
      return Variant::kMatryoshka;
    case 1:
      return Variant::kOuterParallel;
    default:
      return Variant::kInnerParallel;
  }
}

engine::ClusterConfig WithMachines(engine::ClusterConfig cfg, int machines) {
  cfg.num_machines = machines;
  // default_parallelism stays 0 = auto, rescaling with the machine count.
  return cfg;
}

void BM_Fig4_KMeans(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const Variant variant = VariantOf(state.range(1));
  constexpr int64_t kTotalPoints = 1 << 18;
  workloads::KMeansParams params;
  params.k = 4;
  params.max_iterations = 10;
  params.epsilon = -1.0;
  engine::ClusterConfig cfg = WithMachines(PaperCluster(), machines);
  ScaleToTarget(&cfg, 8.0, kTotalPoints,
                sizeof(std::pair<int64_t, datagen::Point>));
  auto data = datagen::GenerateGroupedPoints(kTotalPoints,
                                             kInnerComputations, 3, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig4/kmeans/") + workloads::VariantName(variant),
            {machines});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunKMeans(&cluster, bag, params, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void BM_Fig4_PageRank(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const Variant variant = VariantOf(state.range(1));
  constexpr int64_t kTotalEdges = 1 << 18;
  workloads::PageRankParams params;
  params.iterations = 10;
  engine::ClusterConfig cfg = WithMachines(PaperCluster(), machines);
  ScaleToTarget(&cfg, 20.0, kTotalEdges,
                sizeof(std::pair<int64_t, datagen::Edge>));
  auto data = datagen::GenerateGroupedEdges(
      kTotalEdges, kInnerComputations, (1 << 16) / kInnerComputations, 0.0,
      kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig4/pagerank/") + workloads::VariantName(variant),
            {machines});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunPageRank(&cluster, bag, params, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void BM_Fig4_BounceRate(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const Variant variant = VariantOf(state.range(1));
  constexpr int64_t kTotalVisits = 1 << 18;
  engine::ClusterConfig cfg = WithMachines(PaperCluster(), machines);
  ScaleToTarget(&cfg, 48.0, kTotalVisits, sizeof(datagen::Visit));
  auto data = datagen::GenerateVisits(kTotalVisits, kInnerComputations, 0.0,
                                      0.5, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig4/bounce-rate/") + workloads::VariantName(variant),
            {machines});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunBounceRate(&cluster, bag, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void BM_Fig4_AvgDistances(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const Variant variant = VariantOf(state.range(1));
  engine::ClusterConfig cfg = WithMachines(PaperCluster(), machines);
  auto data =
      datagen::GenerateComponents(kInnerComputations, 16, 16, kSeed);
  ScaleToTarget(&cfg, 1.0, static_cast<int64_t>(data.size()),
                sizeof(datagen::Edge));
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig4/avg-distances/") +
                workloads::VariantName(variant),
            {machines});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunAvgDistances(&cluster, bag, {}, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  for (int64_t machines : {5, 10, 15, 20, 25}) {
    for (int64_t variant = 0; variant < 3; ++variant) {
      b->Args({machines, variant});
    }
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

BENCHMARK(BM_Fig4_KMeans)->Apply(SweepArgs);
BENCHMARK(BM_Fig4_PageRank)->Apply(SweepArgs);
BENCHMARK(BM_Fig4_BounceRate)->Apply(SweepArgs);
BENCHMARK(BM_Fig4_AvgDistances)->Apply(SweepArgs);

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
