// Figure 1 (Sec. 1): K-means runtimes with a varying number of initial
// configurations, total computation size held constant (#configurations x
// points-per-configuration = const). Reproduces the motivation plot:
//  - inner-parallel is near-ideal at few configurations but degrades as the
//    per-configuration job-launch overhead accumulates,
//  - outer-parallel is up to two orders of magnitude slower at few
//    configurations (parallelism capped at #configurations) and approaches
//    ideal only with many of them,
//  - the crossover sits around 64 configurations, and even at the sweet
//    spot both workarounds stay well above ideal (the gray gap),
//  - Matryoshka (added for reference) tracks the ideal line.
// The "ideal" series is the time of a single configuration over the full
// input, fully parallelized.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/kmeans.h"

namespace matryoshka::bench {
namespace {

using workloads::KMeansParams;
using workloads::Variant;

constexpr int64_t kTotalPoints = 1 << 18;
constexpr double kTargetGb = 8.0;
constexpr uint64_t kSeed = 2021;

KMeansParams Params() {
  KMeansParams p;
  p.k = 4;
  p.max_iterations = 10;
  p.epsilon = 0.0;  // fixed work per run: #configs x size is exactly const
  return p;
}

engine::ClusterConfig Config() {
  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, kTargetGb, kTotalPoints,
                sizeof(std::pair<int64_t, datagen::Point>));
  return cfg;
}

const char* VariantLabel(Variant variant) {
  switch (variant) {
    case Variant::kInnerParallel:
      return "fig1/inner-parallel";
    case Variant::kOuterParallel:
      return "fig1/outer-parallel";
    default:
      return "fig1/matryoshka";
  }
}

void RunVariant(benchmark::State& state, Variant variant) {
  const int64_t configs = state.range(0);
  auto data =
      datagen::GenerateGroupedPoints(kTotalPoints, configs, 3, kSeed);
  engine::Cluster cluster(Config());
  ObsAttach(&cluster, VariantLabel(variant), {configs});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    auto result = workloads::RunKMeans(&cluster, bag, Params(), variant);
    Report(state, result);
  }
}

void BM_Fig1_InnerParallel(benchmark::State& state) {
  RunVariant(state, Variant::kInnerParallel);
}
void BM_Fig1_OuterParallel(benchmark::State& state) {
  RunVariant(state, Variant::kOuterParallel);
}
void BM_Fig1_Matryoshka(benchmark::State& state) {
  RunVariant(state, Variant::kMatryoshka);
}

/// The ideal line: one configuration over the full input, fully parallel.
/// Constant by construction; reported once per x to ease plotting.
void BM_Fig1_Ideal(benchmark::State& state) {
  auto data = datagen::GenerateGroupedPoints(kTotalPoints, 1, 3, kSeed);
  engine::Cluster cluster(Config());
  ObsAttach(&cluster, "fig1/ideal", {state.range(0)});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    auto result = workloads::KMeansInnerParallel(&cluster, bag, Params());
    Report(state, result);
  }
}

#define FIG1_ARGS                                            \
  RangeMultiplier(4)->Range(1, 1024)->UseManualTime()        \
      ->Unit(benchmark::kSecond)->Iterations(1)

BENCHMARK(BM_Fig1_Ideal)->FIG1_ARGS;
BENCHMARK(BM_Fig1_InnerParallel)->FIG1_ARGS;
BENCHMARK(BM_Fig1_OuterParallel)->FIG1_ARGS;
BENCHMARK(BM_Fig1_Matryoshka)->FIG1_ARGS;

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
