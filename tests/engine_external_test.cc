// Locks down the external execution determinism contract (DESIGN.md): for
// ANY real memory budget — including one so small every wide operator spills
// on every flush opportunity — and ANY pool size, the engine must produce
// bit-identical output data (contents AND order), key_partitions, and
// simulated Metrics versus the unbounded in-memory run. Only real wall-clock
// time and the real_* spill counters may differ between budget arms, and the
// real_* counters themselves must be deterministic for a fixed budget across
// pool sizes. Also covers the SpillFile cleanup contract (no temp files
// survive any path, fault/retry paths included), the spill serde round-trip,
// and Metrics::Reset re-arming the real-spill counters.
//
// The suite is named ExternalDeterminismTest so the tsan/spill-tsan test
// presets pick it up by regex.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/external/external_group.h"
#include "engine/external/external_scatter.h"
#include "engine/external/memory_budget.h"
#include "engine/external/serde.h"
#include "engine/external/spill_file.h"
#include "engine/extra_ops.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/recovery.h"
#include "engine/shuffle.h"

namespace matryoshka::engine {
namespace {

using external::kSpillable;
using external::MemoryBudget;
using external::SpillFile;
using external::SpillSerde;
using external::SpillStats;

/// True when scripts/check.sh spill forces a budget through the environment:
/// assertions that require the unbounded arm to really be unbounded must be
/// skipped then (the override only applies to budget-0 configs by design).
bool EnvBudgetForced() {
  return std::getenv("MATRYOSHKA_REAL_BUDGET") != nullptr;
}

ClusterConfig Config(bool parallel, std::size_t budget) {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.execute_parallel = parallel;
  // Pin the pool size so real multi-thread spill/merge runs regardless of
  // the host's core count.
  cfg.pool_threads = 4;
  cfg.real_memory_budget_bytes = budget;
  return cfg;
}

ClusterConfig WithFaults(ClusterConfig cfg) {
  cfg.faults.seed = 5;
  cfg.faults.task_failure_prob = 0.05;
  cfg.faults.straggler_fraction = 0.1;
  cfg.faults.straggler_slowdown = 4.0;
  cfg.faults.speculative_execution = true;
  return cfg;
}

// The budget sweep: unbounded, comfortable, tight, and pathological (1 byte:
// every flush opportunity spills). All four must agree bit for bit.
const std::size_t kBudgets[] = {0, 1 << 20, 1 << 12, 1};

Bag<std::pair<int64_t, int64_t>> MakePairs(Cluster* c) {
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 5000; ++i) kv.emplace_back((i * 37) % 128, i % 17);
  return Parallelize(c, kv, 8);
}

Bag<std::pair<int64_t, int64_t>> MakeSmallPairs(Cluster* c) {
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 32; ++i) kv.emplace_back(i * 4, i * 10);
  return Parallelize(c, kv, 2, /*scale=*/1.0);
}

/// The SIMULATED metrics identity of the contract: everything except the
/// real_* counters (which legitimately differ between budget arms).
void ExpectSameSimulatedMetrics(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.simulated_time_s, b.simulated_time_s);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.elements_processed, b.elements_processed);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  EXPECT_EQ(a.spill_events, b.spill_events);
  EXPECT_EQ(a.peak_task_bytes, b.peak_task_bytes);
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.machines_lost, b.machines_lost);
  EXPECT_EQ(a.recovery_time_s, b.recovery_time_s);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.driver_retries, b.driver_retries);
  EXPECT_EQ(a.plan_fallbacks, b.plan_fallbacks);
}

template <typename T>
void ExpectBitIdenticalBags(const Bag<T>& a, const Bag<T>& b) {
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  EXPECT_EQ(a.key_partitions(), b.key_partitions());
  for (int64_t i = 0; i < a.num_partitions(); ++i) {
    EXPECT_EQ(a.partitions()[static_cast<std::size_t>(i)],
              b.partitions()[static_cast<std::size_t>(i)])
        << "partition " << i << " differs from the unbounded run";
  }
}

/// Runs `make_op` (Cluster* -> Bag) unbounded and across the budget sweep —
/// pool off and on, clean and under an active FaultPlan — and requires
/// bit-identical bags and simulated metrics each time. Also pins the
/// SpillFile cleanup contract: zero live spill files after every arm.
template <typename MakeOp>
void ExpectBudgetInvariant(const MakeOp& make_op) {
  for (bool faulty : {false, true}) {
    for (bool parallel : {false, true}) {
      ClusterConfig base_cfg = Config(parallel, 0);
      if (faulty) base_cfg = WithFaults(base_cfg);
      Cluster base(base_cfg);
      auto expected = make_op(&base);
      ASSERT_TRUE(base.ok());
      for (std::size_t budget : kBudgets) {
        if (budget == 0) continue;
        ClusterConfig cfg = Config(parallel, budget);
        if (faulty) cfg = WithFaults(cfg);
        Cluster c(cfg);
        auto got = make_op(&c);
        ASSERT_TRUE(c.ok());
        ExpectBitIdenticalBags(expected, got);
        ExpectSameSimulatedMetrics(base.metrics(), c.metrics());
        EXPECT_EQ(SpillFile::LiveCount(), 0)
            << "spill files leaked (budget " << budget << ")";
      }
    }
  }
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

// --- Serde round-trip ----------------------------------------------------

template <typename T>
T RoundTrip(const T& v) {
  std::string buf;
  SpillSerde<T>::Write(v, &buf);
  const char* p = buf.data();
  const char* end = buf.data() + buf.size();
  T out = SpillSerde<T>::Read(&p, end);
  EXPECT_EQ(p, end) << "serde did not consume exactly its own bytes";
  return out;
}

TEST(ExternalDeterminismTest, SerdeRoundTripsExactly) {
  EXPECT_EQ(RoundTrip<int64_t>(-42), -42);
  EXPECT_EQ(RoundTrip<uint64_t>(~0ULL), ~0ULL);
  // Doubles round-trip bit-exactly (memcpy, no text formatting).
  const double pi = 3.141592653589793;
  EXPECT_EQ(RoundTrip(pi), pi);
  EXPECT_EQ(RoundTrip(std::string("hello spill")), "hello spill");
  EXPECT_EQ(RoundTrip(std::string()), "");
  const std::pair<int64_t, std::string> kv{7, "seven"};
  EXPECT_EQ(RoundTrip(kv), kv);
  const std::tuple<int32_t, double, std::string> t{1, 2.5, "x"};
  EXPECT_EQ(RoundTrip(t), t);
  const std::vector<std::pair<int64_t, int64_t>> vec{{1, 2}, {3, 4}};
  EXPECT_EQ(RoundTrip(vec), vec);
  const std::pair<std::optional<int64_t>, std::optional<std::string>> sides{
      std::nullopt, std::string("right")};
  EXPECT_EQ(RoundTrip(sides), sides);
}

TEST(ExternalDeterminismTest, SpillableGateMatchesSerdeCoverage) {
  static_assert(kSpillable<int64_t>);
  static_assert(kSpillable<std::string>);
  static_assert(kSpillable<std::pair<int64_t, std::string>>);
  static_assert(kSpillable<std::vector<std::pair<int64_t, int64_t>>>);
  static_assert(kSpillable<std::optional<std::string>>);
  static_assert(kSpillable<std::tuple<int32_t, double, std::string>>);
  struct NotTrivial {
    virtual ~NotTrivial() = default;
  };
  static_assert(!kSpillable<NotTrivial>);
  static_assert(!kSpillable<std::pair<int64_t, NotTrivial>>);
}

// --- SpillFile cleanup contract ------------------------------------------

TEST(ExternalDeterminismTest, SpillFileIsUnlinkedAndCountsLive) {
  namespace fs = std::filesystem;
  const char* env = std::getenv("TMPDIR");
  const fs::path tmp = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  auto count_visible = [&tmp] {
    int n = 0;
    for (const auto& e : fs::directory_iterator(tmp)) {
      if (e.path().filename().string().rfind("matryoshka-spill-", 0) == 0) {
        ++n;
      }
    }
    return n;
  };
  const int64_t live_before = SpillFile::LiveCount();
  {
    SpillFile f;
    EXPECT_EQ(SpillFile::LiveCount(), live_before + 1);
    // Unlinked at creation: never visible in the directory, so no crash or
    // error path can leave it behind.
    EXPECT_EQ(count_visible(), 0);
    const uint64_t at = f.Append("hello");
    EXPECT_EQ(at, 0u);
    EXPECT_EQ(f.Append(" world"), 5u);
    std::string out;
    f.ReadAt(0, 11, &out);
    EXPECT_EQ(out, "hello world");
    f.ReadAt(6, 5, &out);
    EXPECT_EQ(out, "world");
  }
  EXPECT_EQ(SpillFile::LiveCount(), live_before);
  EXPECT_EQ(count_visible(), 0);
}

// --- External scatter kernel ---------------------------------------------

TEST(ExternalDeterminismTest, ExternalScatterMatchesReferenceLoop) {
  // Same ground truth as the in-memory kernel's test: the sequential
  // producer-order scatter loop. Skewed, empty, and ragged producers; the
  // full budget sweep x pool sizes 0..4.
  std::vector<std::vector<int64_t>> inputs(7);
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    if (p == 3) continue;  // leave one producer empty
    for (std::size_t j = 0; j < 100 * p * p + 5; ++j) {
      inputs[p].push_back(static_cast<int64_t>(p * 131071 + j * 2654435761u));
    }
  }
  const std::size_t kParts = 9;
  auto part_of = [&](int64_t x) {
    return static_cast<std::size_t>(static_cast<uint64_t>(x) % kParts);
  };
  std::vector<std::vector<int64_t>> expected(kParts);
  for (const auto& in : inputs) {
    for (int64_t x : in) expected[part_of(x)].push_back(x);
  }
  for (std::size_t budget : {std::size_t{1}, std::size_t{256},
                             std::size_t{1} << 12, std::size_t{1} << 24}) {
    MemoryBudget mb(budget);
    SpillStats serial_stats;
    EXPECT_EQ(external::ExternalScatter<int64_t>(nullptr, inputs, kParts,
                                                 part_of, mb, &serial_stats),
              expected)
        << "budget " << budget << ", no pool";
    for (std::size_t threads = 1; threads <= 4; ++threads) {
      ThreadPool pool(threads);
      SpillStats stats;
      EXPECT_EQ(external::ExternalScatter<int64_t>(&pool, inputs, kParts,
                                                   part_of, mb, &stats),
                expected)
          << "budget " << budget << ", " << threads << " threads";
      // Real spill counters are a pure function of (inputs, budget): the
      // pool must not move them.
      EXPECT_EQ(stats.spill_events, serial_stats.spill_events);
      EXPECT_EQ(stats.spilled_bytes, serial_stats.spilled_bytes);
      EXPECT_EQ(stats.spill_runs, serial_stats.spill_runs);
    }
    // A 1-byte budget must actually have spilled.
    if (budget == 1) {
      EXPECT_GT(serial_stats.spill_events, 0);
    }
  }
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

// --- Bounded aggregation --------------------------------------------------

TEST(ExternalDeterminismTest, BoundedAggregatorPreservesFoldOrder) {
  // Non-associative float folding: (a - b) depends on exact element order,
  // so any budget-dependent reordering or partial-merge would change the
  // result. Compare the 1-byte-quota build against the unbounded one.
  std::vector<std::pair<int64_t, double>> stream;
  for (int64_t i = 0; i < 2000; ++i) {
    stream.emplace_back(i % 97, 1.0 / static_cast<double>(i + 1));
  }
  auto run = [&stream](std::size_t quota) {
    SpillStats stats;
    auto init = [](double&& v) { return v; };
    auto absorb = [](double& acc, double&& v) { acc = acc - v; };
    auto growth = [](const double&) { return std::size_t{0}; };
    external::BoundedAggregator<int64_t, double, double, decltype(init),
                                decltype(absorb), decltype(growth)>
        agg(quota, init, absorb, growth, &stats);
    for (const auto& [k, v] : stream) agg.Feed(k, v);
    return std::make_pair(agg.Finish(), stats);
  };
  auto [unbounded, no_stats] = run(static_cast<std::size_t>(-1));
  EXPECT_EQ(no_stats.spill_events, 0);
  // First-occurrence emission order: keys 0..96 in that exact order.
  ASSERT_EQ(unbounded.size(), 97u);
  for (std::size_t i = 0; i < unbounded.size(); ++i) {
    EXPECT_EQ(unbounded[i].first, static_cast<int64_t>(i));
  }
  for (std::size_t quota : {std::size_t{1}, std::size_t{100},
                            std::size_t{4096}}) {
    auto [bounded, stats] = run(quota);
    EXPECT_EQ(bounded, unbounded) << "quota " << quota;
    if (quota == 1) {
      EXPECT_GT(stats.spill_events, 0);
    }
  }
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

// --- Per-operator budget invariance --------------------------------------

TEST(ExternalDeterminismTest, RepartitionBudgetInvariant) {
  ExpectBudgetInvariant(
      [](Cluster* c) { return Repartition(MakePairs(c), 5); });
}

TEST(ExternalDeterminismTest, ReduceByKeyBudgetInvariant) {
  ExpectBudgetInvariant([](Cluster* c) {
    return ReduceByKey(
        MakePairs(c), [](int64_t a, int64_t b) { return a + b; }, 8);
  });
}

TEST(ExternalDeterminismTest, ReduceByKeyNarrowPathBudgetInvariant) {
  // The co-partitioned fast path reduces without a shuffle; its bounded
  // aggregation must also be budget-invariant.
  ExpectBudgetInvariant([](Cluster* c) {
    auto keyed = PartitionByKey(MakePairs(c), 8);
    return ReduceByKey(
        keyed, [](int64_t a, int64_t b) { return a + b; }, 8);
  });
}

TEST(ExternalDeterminismTest, NonAssociativeReduceBudgetInvariant) {
  // Floating-point (a - b) folding detects any budget-dependent reordering
  // or partial-map merge in the external path.
  ExpectBudgetInvariant([](Cluster* c) {
    auto vals = MapValues(MakePairs(c), [](int64_t v) {
      return 1.0 / static_cast<double>(v + 2);
    });
    return ReduceByKey(
        vals, [](double a, double b) { return a - b; }, 8);
  });
}

TEST(ExternalDeterminismTest, GroupByKeyBudgetInvariant) {
  ExpectBudgetInvariant(
      [](Cluster* c) { return GroupByKey(MakePairs(c), 8); });
}

TEST(ExternalDeterminismTest, AggregateByKeyBudgetInvariant) {
  ExpectBudgetInvariant([](Cluster* c) {
    return AggregateByKey(
        MakePairs(c), int64_t{0},
        [](int64_t a, int64_t v) { return a + v; },
        [](int64_t a, int64_t b) { return a + b; }, 8);
  });
}

TEST(ExternalDeterminismTest, DistinctBudgetInvariant) {
  ExpectBudgetInvariant(
      [](Cluster* c) { return Distinct(Keys(MakePairs(c)), 8); });
}

TEST(ExternalDeterminismTest, CoGroupBudgetInvariant) {
  ExpectBudgetInvariant([](Cluster* c) {
    return CoGroup(MakePairs(c), MakeSmallPairs(c), 8);
  });
}

TEST(ExternalDeterminismTest, JoinsBudgetInvariant) {
  ExpectBudgetInvariant([](Cluster* c) {
    auto pairs = MakePairs(c);
    auto reduced = ReduceByKey(
        pairs, [](int64_t a, int64_t b) { return a + b; }, 8);
    return RepartitionJoin(pairs, reduced, 8);
  });
  ExpectBudgetInvariant([](Cluster* c) {
    return LeftOuterJoin(MakeSmallPairs(c), MakePairs(c), 8);
  });
}

TEST(ExternalDeterminismTest, SetOpsBudgetInvariant) {
  ExpectBudgetInvariant([](Cluster* c) {
    return Subtract(Keys(MakePairs(c)), Keys(MakeSmallPairs(c)), 8);
  });
  ExpectBudgetInvariant([](Cluster* c) {
    return Intersection(Keys(MakePairs(c)), Keys(MakeSmallPairs(c)), 8);
  });
}

TEST(ExternalDeterminismTest, StringKeysBudgetInvariant) {
  // Variable-length serde (length-prefixed strings) through a real shuffle
  // and group build.
  ExpectBudgetInvariant([](Cluster* c) {
    std::vector<std::pair<std::string, int64_t>> kv;
    for (int64_t i = 0; i < 3000; ++i) {
      kv.emplace_back("key-" + std::to_string(i % 64) +
                          std::string(static_cast<std::size_t>(i % 7), 'x'),
                      i);
    }
    auto bag = Parallelize(c, kv, 8);
    return GroupByKey(bag, 8);
  });
}

// --- Real-spill counters --------------------------------------------------

TEST(ExternalDeterminismTest, RealCountersZeroWhenUnbounded) {
  if (EnvBudgetForced()) GTEST_SKIP() << "MATRYOSHKA_REAL_BUDGET forced";
  Cluster c(Config(true, 0));
  auto grouped = GroupByKey(MakePairs(&c), 8);
  (void)Count(grouped);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.metrics().real_spilled_bytes, 0.0);
  EXPECT_EQ(c.metrics().real_spill_events, 0);
  EXPECT_EQ(c.metrics().real_spill_runs, 0);
}

TEST(ExternalDeterminismTest, RealCountersDeterministicAcrossPools) {
  auto run = [](bool parallel) {
    Cluster c(Config(parallel, 512));
    auto reduced = ReduceByKey(
        MakePairs(&c), [](int64_t a, int64_t b) { return a + b; }, 8);
    auto grouped = GroupByKey(MakePairs(&c), 8);
    (void)Count(reduced);
    (void)Count(grouped);
    EXPECT_TRUE(c.ok());
    return c.metrics();
  };
  const Metrics serial = run(false);
  const Metrics parallel = run(true);
  EXPECT_GT(serial.real_spill_events, 0);
  EXPECT_GT(serial.real_spilled_bytes, 0.0);
  EXPECT_GT(serial.real_spill_runs, 0);
  EXPECT_EQ(serial.real_spill_events, parallel.real_spill_events);
  EXPECT_EQ(serial.real_spilled_bytes, parallel.real_spilled_bytes);
  EXPECT_EQ(serial.real_spill_runs, parallel.real_spill_runs);
  // And repeatable run to run.
  const Metrics again = run(true);
  EXPECT_EQ(parallel.real_spill_events, again.real_spill_events);
  EXPECT_EQ(parallel.real_spilled_bytes, again.real_spilled_bytes);
}

TEST(ExternalDeterminismTest, ResetRearmsRealSpillCounters) {
  Cluster c(Config(true, 512));
  (void)Count(GroupByKey(MakePairs(&c), 8));
  ASSERT_TRUE(c.ok());
  const Metrics first = c.metrics();
  EXPECT_GT(first.real_spill_events, 0);
  c.Reset();
  EXPECT_EQ(c.metrics().real_spilled_bytes, 0.0);
  EXPECT_EQ(c.metrics().real_spill_events, 0);
  EXPECT_EQ(c.metrics().real_spill_runs, 0);
  // A fresh identical run accumulates the same totals again.
  (void)Count(GroupByKey(MakePairs(&c), 8));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.metrics().real_spill_events, first.real_spill_events);
  EXPECT_EQ(c.metrics().real_spilled_bytes, first.real_spilled_bytes);
  EXPECT_EQ(c.metrics().real_spill_runs, first.real_spill_runs);
}

TEST(ExternalDeterminismTest, EnvOverrideOnlyAppliesToUnboundedConfigs) {
  if (EnvBudgetForced()) {
    // Under check.sh spill: a zero config resolves to the forced budget ...
    Cluster forced(Config(false, 0));
    EXPECT_FALSE(forced.real_budget().unbounded());
    // ... but an explicit budget always wins.
    Cluster explicit_budget(Config(false, 123456));
    EXPECT_EQ(explicit_budget.real_budget().total(), 123456u);
    return;
  }
  Cluster c(Config(false, 0));
  EXPECT_TRUE(c.real_budget().unbounded());
  Cluster bounded(Config(false, 4096));
  EXPECT_EQ(bounded.real_budget().total(), 4096u);
}

// --- Fault and retry paths ------------------------------------------------

TEST(ExternalDeterminismTest, NoSpillFileLeaksUnderFaultsAndRetries) {
  // Sticky failure mid-program: the retry budget is exhausted, operators
  // early-out, and every spill file opened before the failure must still be
  // gone when the bags go out of scope.
  {
    ClusterConfig cfg = Config(true, 512);
    cfg.faults.seed = 11;
    cfg.faults.task_failure_prob = 0.9;
    cfg.faults.max_task_retries = 1;
    Cluster c(cfg);
    auto grouped = GroupByKey(MakePairs(&c), 8);
    auto reduced = ReduceByKey(
        MakePairs(&c), [](int64_t a, int64_t b) { return a + b; }, 8);
    EXPECT_FALSE(c.ok());  // retries exhausted -> sticky TaskFailed
  }
  EXPECT_EQ(SpillFile::LiveCount(), 0);

  // Driver-level retries re-run the whole program over the external paths.
  {
    ClusterConfig cfg = Config(true, 512);
    cfg.faults.seed = 11;
    cfg.faults.task_failure_prob = 0.9;
    cfg.faults.max_task_retries = 1;
    cfg.recovery.max_driver_retries = 2;
    cfg.recovery.driver_backoff_s = 0.1;
    Cluster c(cfg);
    (void)RunWithRecovery(&c, [&](int /*attempt*/) {
      auto grouped = GroupByKey(MakePairs(&c), 8);
      (void)Count(grouped);
    });
    EXPECT_GT(c.metrics().driver_retries, 0);
  }
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(ExternalDeterminismTest, SuiteBudgetInvariantWithActions) {
  // A full mixed program (shuffles + group + join + actions) at a tight
  // budget must reproduce the unbounded scalar results exactly.
  auto run = [](std::size_t budget) {
    Cluster c(Config(true, budget));
    auto pairs = MakePairs(&c);
    auto reduced = ReduceByKey(
        pairs, [](int64_t a, int64_t b) { return a + b; }, 8);
    auto grouped = GroupByKey(pairs, 8);
    auto sizes = MapValues(grouped, [](const std::vector<int64_t>& g) {
      return static_cast<int64_t>(g.size());
    });
    auto joined = RepartitionJoin(reduced, sizes, 8);
    auto folded = MapValues(
        joined, [](const std::pair<int64_t, int64_t>& vw) {
          return vw.first * 31 + vw.second;
        });
    auto collected = Collect(folded);
    auto count = Count(Distinct(Keys(pairs), 8));
    EXPECT_TRUE(c.ok());
    return std::make_tuple(collected, count, c.metrics().simulated_time_s);
  };
  const auto expected = run(0);
  for (std::size_t budget : kBudgets) {
    if (budget == 0) continue;
    EXPECT_EQ(run(budget), expected) << "budget " << budget;
  }
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

}  // namespace
}  // namespace matryoshka::engine
