#ifndef MATRYOSHKA_CORE_LIFTED_EXTRA_H_
#define MATRYOSHKA_CORE_LIFTED_EXTRA_H_

#include <cstdint>
#include <utility>

#include "core/inner_bag.h"
#include "core/inner_scalar.h"
#include "engine/extra_ops.h"

/// Lifted versions of the secondary engine operators (Sec. 4.4's recipe
/// applied to the rest of the Bag API): stateless ones forward tags,
/// set-like ones operate on the (tag, element) pairs so groups stay apart.
namespace matryoshka::core {

/// Lifted Bernoulli sample: samples every inner bag independently. The
/// (tag, element) pair is what the sampler hashes, so the same element in
/// two groups draws independently — exactly what per-group sampling means.
template <typename E>
InnerBag<E> LiftedSample(const InnerBag<E>& b, double fraction,
                         uint64_t seed) {
  return InnerBag<E>(b.ctx(), engine::Sample(b.repr(), fraction, seed));
}

/// Lifted multiset difference: per tag, the elements of `a`'s inner bag not
/// occurring in `b`'s inner bag. Tags ride in the shuffled element, so the
/// subtraction never leaks across groups.
template <typename E>
InnerBag<E> LiftedSubtract(const InnerBag<E>& a, const InnerBag<E>& b,
                           int64_t num_partitions = -1) {
  return InnerBag<E>(a.ctx(),
                     engine::Subtract(a.repr(), b.repr(), num_partitions));
}

/// Lifted set intersection: per tag, the distinct elements on both sides.
template <typename E>
InnerBag<E> LiftedIntersection(const InnerBag<E>& a, const InnerBag<E>& b,
                               int64_t num_partitions = -1) {
  return InnerBag<E>(
      a.ctx(), engine::Intersection(a.repr(), b.repr(), num_partitions));
}

/// Lifted generalized keyed aggregation: per (tag, key), folds values into
/// an accumulator (composite-key rekeying like LiftedReduceByKey).
template <typename K, typename V, typename A, typename Seq, typename Comb>
InnerBag<std::pair<K, A>> LiftedAggregateByKey(
    const InnerBag<std::pair<K, V>>& b, A zero, Seq seq, Comb comb,
    double weight = 1.0, double result_scale = -1.0) {
  using TK = std::pair<Tag, K>;
  auto rekeyed = engine::Map(
      b.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<TK, V>(TK(p.first, p.second.first), p.second.second);
      });
  auto agg = engine::AggregateByKey(rekeyed, std::move(zero), seq, comb, -1,
                                    weight, result_scale);
  auto out = engine::Map(agg, [](const std::pair<TK, A>& p) {
    return std::pair<Tag, std::pair<K, A>>(
        p.first.first, std::pair<K, A>(p.first.second, p.second));
  });
  return InnerBag<std::pair<K, A>>(b.ctx(), std::move(out));
}

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_LIFTED_EXTRA_H_
