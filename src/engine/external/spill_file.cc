#include "engine/external/spill_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"

namespace matryoshka::engine::external {

namespace {

std::atomic<int64_t> g_live_spill_files{0};

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return (env != nullptr && env[0] != '\0') ? env : "/tmp";
}

/// Exponential backoff before retry `attempt` (0-based). A zero-ms policy
/// still retries, just without sleeping — the default keeps tests fast
/// while production configs can set real waits.
void Backoff(const RealIoPolicy& policy, int attempt) {
  if (policy.retry_backoff_ms <= 0) return;
  const int64_t ms = static_cast<int64_t>(policy.retry_backoff_ms)
                     << (attempt < 20 ? attempt : 20);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void Bump(SpillStats* stats, int64_t SpillStats::*field) {
  if (stats != nullptr) (stats->*field) += 1;
}

}  // namespace

SpillFile::SpillFile() {
  std::string tmpl = TempDir() + "/matryoshka-spill-XXXXXX";
  // mkstemp wants a mutable buffer; std::string data() is contiguous and
  // NUL-terminated in C++17.
  fd_ = mkstemp(tmpl.data());
  MATRYOSHKA_CHECK(fd_ >= 0)
      << "cannot create spill file in " << TempDir() << ": "
      << std::strerror(errno);
  // Unlink before the first write: the blocks live only as long as the
  // descriptor, so no failure path can leak a file (see header contract).
  MATRYOSHKA_CHECK(::unlink(tmpl.c_str()) == 0)
      << "cannot unlink spill file " << tmpl << ": " << std::strerror(errno);
  g_live_spill_files.fetch_add(1, std::memory_order_relaxed);
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) {
    ::close(fd_);
    g_live_spill_files.fetch_sub(1, std::memory_order_relaxed);
  }
}

SpillFile::SpillFile(SpillFile&& other) noexcept
    : fd_(other.fd_),
      write_offset_(other.write_offset_),
      fp_(other.fp_),
      stream_(other.stream_) {
  other.fd_ = -1;
  other.write_offset_ = 0;
}

Status SpillFile::Write(const std::string& data, uint64_t* offset,
                        SpillStats* stats) {
  MATRYOSHKA_DCHECK(fd_ >= 0);
  const uint64_t at = write_offset_;
  const bool armed = fp_ != nullptr && fp_->armed();
  const RealIoPolicy policy = armed ? fp_->policy() : RealIoPolicy{};

  if (armed) {
    const RealFaultPlan& plan = fp_->plan();
    fp_->MaybeStall(stream_, at);
    // ENOSPC is hard: a full disk does not drain by retrying the same
    // write. Surface it typed; the caller's fallback policy decides.
    if (fp_->Fires(stream_, kFpWriteEnospc, at, plan.write_enospc_prob)) {
      Bump(stats, &SpillStats::io_faults_injected);
      return Status::ResourceExhausted(
          "injected ENOSPC writing spill run at offset " +
          std::to_string(at));
    }
    // Transient EIO: the site fails transient_duration attempts, then
    // recovers — the bounded retry/backoff loop models a glitching disk.
    for (int attempt = 0;; ++attempt) {
      if (!fp_->FiresTransient(stream_, kFpWriteEio, at, attempt,
                               plan.write_eio_prob)) {
        break;
      }
      Bump(stats, &SpillStats::io_faults_injected);
      if (attempt >= policy.max_io_retries) {
        return Status::IOError("injected EIO writing spill run at offset " +
                               std::to_string(at) + " persisted through " +
                               std::to_string(policy.max_io_retries) +
                               " retries");
      }
      Bump(stats, &SpillStats::io_retries);
      Backoff(policy, attempt);
    }
  }

  const char* p = data.data();
  std::size_t left = data.size();
  uint64_t off = at;
  int errors = 0;
  while (left > 0) {
    std::size_t ask = left;
    if (armed && left > 1 &&
        fp_->Fires(stream_, kFpShortWrite, off, fp_->plan().short_write_prob)) {
      // Injected partial transfer: at least one byte always moves, so the
      // loop terminates even at probability 1.
      Bump(stats, &SpillStats::io_faults_injected);
      ask = left / 2 > 0 ? left / 2 : 1;
    }
    const ssize_t n = ::pwrite(fd_, p, ask, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;  // signal; not an error, not a retry
      if (errno == ENOSPC) {
        return Status::ResourceExhausted(
            std::string("spill write: ") + std::strerror(errno));
      }
      if (errors >= policy.max_io_retries) {
        return Status::IOError(std::string("spill write failed after ") +
                               std::to_string(errors) +
                               " retries: " + std::strerror(errno));
      }
      Bump(stats, &SpillStats::io_retries);
      Backoff(policy, errors);
      ++errors;
      continue;
    }
    p += n;
    off += static_cast<uint64_t>(n);
    left -= static_cast<std::size_t>(n);
  }

  if (armed && !data.empty() &&
      fp_->Fires(stream_, kFpCorrupt, at, fp_->plan().corrupt_prob)) {
    // Bit-rot on disk: flip one deterministic byte AFTER the caller
    // computed the run's checksum in memory — read-side verification must
    // catch it (kDataCorruption), never a silent wrong answer.
    Bump(stats, &SpillStats::io_faults_injected);
    const std::size_t idx =
        static_cast<std::size_t>(Mix64(at ^ kFpCorrupt) % data.size());
    const char flipped = static_cast<char>(data[idx] ^ 0x40);
    ssize_t n;
    do {
      n = ::pwrite(fd_, &flipped, 1, static_cast<off_t>(at + idx));
    } while (n < 0 && errno == EINTR);
    MATRYOSHKA_CHECK(n == 1) << "corruption injection write failed";
  }

  write_offset_ = at + data.size();
  if (offset != nullptr) *offset = at;
  return Status::OK();
}

Status SpillFile::Read(uint64_t offset, std::size_t size, std::string* out,
                       SpillStats* stats) const {
  MATRYOSHKA_DCHECK(fd_ >= 0);
  out->resize(size);
  const bool armed = fp_ != nullptr && fp_->armed();
  const RealIoPolicy policy = armed ? fp_->policy() : RealIoPolicy{};

  if (armed) {
    const RealFaultPlan& plan = fp_->plan();
    fp_->MaybeStall(stream_, offset ^ kFpReadEio);
    for (int attempt = 0;; ++attempt) {
      if (!fp_->FiresTransient(stream_, kFpReadEio, offset, attempt,
                               plan.read_eio_prob)) {
        break;
      }
      Bump(stats, &SpillStats::io_faults_injected);
      if (attempt >= policy.max_io_retries) {
        return Status::IOError("injected EIO reading spill run at offset " +
                               std::to_string(offset) +
                               " persisted through " +
                               std::to_string(policy.max_io_retries) +
                               " retries");
      }
      Bump(stats, &SpillStats::io_retries);
      Backoff(policy, attempt);
    }
  }

  char* p = out->empty() ? nullptr : &(*out)[0];
  std::size_t left = size;
  uint64_t off = offset;
  int errors = 0;
  while (left > 0) {
    std::size_t ask = left;
    if (armed && left > 1 &&
        fp_->Fires(stream_, kFpShortRead, off, fp_->plan().short_read_prob)) {
      Bump(stats, &SpillStats::io_faults_injected);
      ask = left / 2 > 0 ? left / 2 : 1;
    }
    const ssize_t n = ::pread(fd_, p, ask, static_cast<off_t>(off));
    if (n == 0) {
      // EOF inside a recorded run means the file is shorter than the index
      // says — truncated on disk, not a transient condition.
      return Status::IOError("spill read hit EOF at offset " +
                             std::to_string(off) + " (" +
                             std::to_string(left) + " bytes short)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errors >= policy.max_io_retries) {
        return Status::IOError(std::string("spill read failed after ") +
                               std::to_string(errors) +
                               " retries (offset " + std::to_string(off) +
                               "): " + std::strerror(errno));
      }
      Bump(stats, &SpillStats::io_retries);
      Backoff(policy, errors);
      ++errors;
      continue;
    }
    p += n;
    off += static_cast<uint64_t>(n);
    left -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status SpillFile::ReadRun(uint64_t offset, std::size_t size,
                          uint64_t expected_checksum, std::string* out,
                          SpillStats* stats) const {
  MATRYOSHKA_RETURN_NOT_OK(Read(offset, size, out, stats));
  const uint64_t actual = HashBytes(out->data(), out->size());
  if (actual != expected_checksum) {
    Bump(stats, &SpillStats::checksum_failures);
    return Status::DataCorruption(
        "spill run at offset " + std::to_string(offset) + " (" +
        std::to_string(size) + " bytes) failed checksum verification: the "
        "bytes on disk are not the bytes written");
  }
  return Status::OK();
}

uint64_t SpillFile::Append(const std::string& data) {
  uint64_t at = 0;
  const Status st = Write(data, &at, nullptr);
  MATRYOSHKA_CHECK(st.ok()) << st.ToString();
  return at;
}

void SpillFile::ReadAt(uint64_t offset, std::size_t size,
                       std::string* out) const {
  const Status st = Read(offset, size, out, nullptr);
  MATRYOSHKA_CHECK(st.ok()) << st.ToString();
}

int64_t SpillFile::LiveCount() {
  return g_live_spill_files.load(std::memory_order_relaxed);
}

}  // namespace matryoshka::engine::external
