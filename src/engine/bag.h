#ifndef MATRYOSHKA_ENGINE_BAG_H_
#define MATRYOSHKA_ENGINE_BAG_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/sizing.h"
#include "engine/cluster.h"

namespace matryoshka::engine {

/// An immutable, partitioned, unordered collection — the engine's dataset
/// abstraction (the paper's Bag; an RDD in Spark terms).
///
/// A Bag is a cheap handle: copies share the underlying partitions. All
/// operators live in ops.h as free functions; a Bag only carries data, its
/// partitioning, its Cluster, and its `scale`.
///
/// `scale` is the cost-model magnification: how many "real" elements each
/// synthetic element stands for. Freshly loaded data gets
/// ClusterConfig::data_scale; element-wise operators propagate the scale;
/// operators that collapse to a fixed key space (per-tag aggregates, the
/// bags representing InnerScalars) produce scale-1 bags because their
/// synthetic cardinality equals the real one. All time/network/memory
/// charges multiply element counts and byte estimates by the bag's scale.
template <typename T>
class Bag {
 public:
  using Element = T;
  using Partitions = std::vector<std::vector<T>>;

  /// An empty bag with zero partitions (the result of operators that ran
  /// after the cluster entered a failed state).
  explicit Bag(Cluster* cluster)
      : cluster_(cluster), parts_(std::make_shared<const Partitions>()) {}

  Bag(Cluster* cluster, Partitions parts, double scale = 1.0,
      int64_t key_partitions = 0, int lineage_depth = 1)
      : cluster_(cluster),
        parts_(std::make_shared<const Partitions>(std::move(parts))),
        scale_(scale),
        key_partitions_(key_partitions),
        lineage_depth_(lineage_depth) {}

  Cluster* cluster() const { return cluster_; }
  const Partitions& partitions() const { return *parts_; }
  int64_t num_partitions() const {
    return static_cast<int64_t>(parts_->size());
  }

  /// Real elements represented by one synthetic element (see class comment).
  double scale() const { return scale_; }

  /// Non-zero iff this bag of pairs is hash-partitioned on `.first` into
  /// exactly this many partitions (the engine's Partitioner metadata, like
  /// Spark's). Keyed wide operators whose partition count matches skip the
  /// network shuffle; mapValues/filter-style operators preserve it, while
  /// key-changing maps clear it.
  int64_t key_partitions() const { return key_partitions_; }

  /// Number of narrow stages that must re-run to regenerate one of this
  /// bag's partitions after a machine loss: 1 for freshly
  /// loaded/shuffled/aggregated data (stage boundaries cut lineage), +1 per
  /// narrow transformation since. The fault model multiplies machine-loss
  /// recompute cost by this depth.
  int lineage_depth() const { return lineage_depth_; }

  /// Total number of synthetic elements. Pure metadata access — does NOT
  /// model a count() action (see ops.h Count for the job-charging version).
  int64_t Size() const {
    int64_t n = 0;
    for (const auto& p : *parts_) n += static_cast<int64_t>(p.size());
    return n;
  }

  /// Real element count under the cost model.
  double RealSize() const { return static_cast<double>(Size()) * scale_; }

  /// The same data (partitions shared) with a different lineage depth.
  /// Used by engine::Checkpoint, which truncates lineage to 1 after the
  /// replicated write; cost-free metadata operation.
  Bag<T> WithLineageDepth(int depth) const {
    Bag<T> out = *this;
    out.lineage_depth_ = depth;
    return out;
  }

  /// All elements concatenated, for tests and driver-side logic. Does not
  /// charge the cost model (see ops.h Collect for the action).
  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(Size()));
    for (const auto& p : *parts_) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

 private:
  Cluster* cluster_;
  std::shared_ptr<const Partitions> parts_;
  double scale_ = 1.0;
  int64_t key_partitions_ = 0;
  int lineage_depth_ = 1;
};

/// Creates a bag on `cluster` by splitting `data` round-robin into
/// `num_partitions` partitions (cluster default parallelism if <= 0). The
/// bag's scale defaults to ClusterConfig::data_scale; pass an explicit
/// `scale` for driver-side collections whose synthetic cardinality is the
/// real one (e.g. the bag of hyperparameter configurations: scale 1).
template <typename T>
Bag<T> Parallelize(Cluster* cluster, std::vector<T> data,
                   int64_t num_partitions = -1, double scale = -1.0) {
  MATRYOSHKA_CHECK(cluster != nullptr);
  if (num_partitions <= 0) {
    // Degraded-aware: after machine loss (with degraded re-planning on) new
    // bags are cut for the machines still alive, not the construction-time
    // cluster shape.
    num_partitions = cluster->effective_parallelism();
  }
  if (scale < 0) scale = cluster->config().data_scale;
  num_partitions = std::max<int64_t>(1, num_partitions);
  typename Bag<T>::Partitions parts(static_cast<std::size_t>(num_partitions));
  const std::size_t n = data.size();
  // Contiguous chunks, like reading consecutive blocks of a file: locality
  // in the generated data (e.g. the visits of one session) stays within a
  // partition, which is what makes map-side combining effective on real
  // inputs.
  const std::size_t per = (n + num_partitions - 1) / num_partitions;
  std::size_t next = 0;
  for (auto& p : parts) {
    const std::size_t end = std::min(n, next + per);
    p.reserve(end - next);
    for (; next < end; ++next) p.push_back(std::move(data[next]));
  }
  return Bag<T>(cluster, std::move(parts), scale);
}

/// Estimates the *synthetic* bytes held by a bag by sampling up to
/// `sample_per_partition` elements per partition and extrapolating.
/// Multiply by bag.scale() for the real footprint (RealBagBytes).
template <typename T>
double EstimateBagBytes(const Bag<T>& bag, int sample_per_partition = 64) {
  double total = 0.0;
  for (const auto& part : bag.partitions()) {
    if (part.empty()) continue;
    const std::size_t sample =
        std::min<std::size_t>(part.size(),
                              static_cast<std::size_t>(sample_per_partition));
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < sample; ++i) bytes += EstimateSize(part[i]);
    total += static_cast<double>(bytes) / static_cast<double>(sample) *
             static_cast<double>(part.size());
  }
  return total;
}

/// The bag's estimated real in-memory footprint under the cost model.
template <typename T>
double RealBagBytes(const Bag<T>& bag) {
  return EstimateBagBytes(bag) * bag.scale();
}

}  // namespace matryoshka::engine

#endif  // MATRYOSHKA_ENGINE_BAG_H_
