file(REMOVE_RECURSE
  "libmatryoshka_common.a"
)
