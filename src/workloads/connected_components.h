#ifndef MATRYOSHKA_WORKLOADS_CONNECTED_COMPONENTS_H_
#define MATRYOSHKA_WORKLOADS_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "engine/bag.h"

/// Connected components over a flat undirected graph — the library building
/// block of Sec. 2.2 ("connectedComps(g)"), implemented as an iterative
/// flat dataflow program (min-label propagation, like the Spark GraphX /
/// Flink Gelly library functions the paper cites). The output tags every
/// vertex with its component id (the minimum vertex id of the component),
/// which downstream nested-parallel code groups on.
namespace matryoshka::workloads {

/// (component id, vertex) for every vertex of the graph. Expects both
/// directions of every undirected edge to be present.
engine::Bag<std::pair<int64_t, int64_t>> ConnectedComponents(
    const engine::Bag<datagen::Edge>& edges, int64_t max_iterations = 10000);

/// Edges re-keyed by the component id of their source vertex:
/// (component id, edge). Built from a ConnectedComponents result.
engine::Bag<std::pair<int64_t, datagen::Edge>> EdgesByComponent(
    const engine::Bag<datagen::Edge>& edges,
    const engine::Bag<std::pair<int64_t, int64_t>>& components);

/// Sequential reference (union-find).
std::vector<std::pair<int64_t, int64_t>> ConnectedComponentsReference(
    const std::vector<datagen::Edge>& edges);

}  // namespace matryoshka::workloads

#endif  // MATRYOSHKA_WORKLOADS_CONNECTED_COMPONENTS_H_
