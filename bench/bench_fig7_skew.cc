// Figure 7 (Sec. 9.5): data skew — grouping keys drawn from a Zipf
// distribution (1024 groups: a few large groups and many small ones) for
// Bounce Rate and PageRank. Expected: outer-parallel fails with
// out-of-memory (the biggest group does not fit in one task),
// inner-parallel is 11-71x slower than Matryoshka (per-group jobs over
// 1024 groups), and Matryoshka itself stays within ~15% of its own time on
// UNSKEWED data of the same size (flattening removes the skew problem).
// Both the skewed and the unskewed runs are reported so the <=15% claim
// can be checked directly.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/bounce_rate.h"
#include "workloads/pagerank.h"

namespace matryoshka::bench {
namespace {

using workloads::Variant;

constexpr uint64_t kSeed = 61;
constexpr int64_t kGroups = 1024;
constexpr double kZipf = 1.0;

Variant VariantOf(int64_t i) {
  switch (i) {
    case 0:
      return Variant::kMatryoshka;
    case 1:
      return Variant::kOuterParallel;
    default:
      return Variant::kInnerParallel;
  }
}

/// arg0: 0 = skewed (Zipf), 1 = uniform control; arg1: variant.
void BM_Fig7_BounceRate(benchmark::State& state) {
  const bool skewed = state.range(0) == 0;
  const Variant variant = VariantOf(state.range(1));
  constexpr int64_t kTotalVisits = 1 << 18;
  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, 48.0, kTotalVisits, sizeof(datagen::Visit));
  auto data = datagen::GenerateVisits(kTotalVisits, kGroups,
                                      skewed ? kZipf : 0.0, 0.5, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig7/bounce-rate/") +
                workloads::VariantName(variant) +
                (skewed ? "/zipf" : "/uniform"),
            {});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunBounceRate(&cluster, bag, variant));
  }
  state.SetLabel(std::string(workloads::VariantName(variant)) +
                 (skewed ? "/zipf" : "/uniform"));
}

void BM_Fig7_PageRank(benchmark::State& state) {
  const bool skewed = state.range(0) == 0;
  const Variant variant = VariantOf(state.range(1));
  constexpr int64_t kTotalEdges = 1 << 18;
  workloads::PageRankParams params;
  params.iterations = 10;
  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, 20.0, kTotalEdges,
                sizeof(std::pair<int64_t, datagen::Edge>));
  auto data = datagen::GenerateGroupedEdges(kTotalEdges, kGroups, 64,
                                            skewed ? kZipf : 0.0, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig7/pagerank/") + workloads::VariantName(variant) +
                (skewed ? "/zipf" : "/uniform"),
            {});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunPageRank(&cluster, bag, params, variant));
  }
  state.SetLabel(std::string(workloads::VariantName(variant)) +
                 (skewed ? "/zipf" : "/uniform"));
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t skew = 0; skew < 2; ++skew) {
    for (int64_t variant = 0; variant < 3; ++variant) {
      b->Args({skew, variant});
    }
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

BENCHMARK(BM_Fig7_BounceRate)->Apply(Args);
BENCHMARK(BM_Fig7_PageRank)->Apply(Args);

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
