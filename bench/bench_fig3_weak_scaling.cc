// Figure 3 (Sec. 9.2): weak scaling of the iterative tasks — K-means,
// PageRank, and Average Distances — varying the number of inner
// computations while shrinking each inner computation's input inversely, so
// the total input stays constant. Expected shapes:
//  - Matryoshka stays nearly constant across the sweep,
//  - outer-parallel is slow at few inner computations (parallelism capped)
//    and approaches Matryoshka only at many,
//  - inner-parallel is good at few inner computations and degrades with
//    their count (job-launch overhead x iterations),
//  - Average Distances (three levels of parallelism) shows the largest
//    gaps: outer-parallel parallelizes only level 1, inner-parallel only
//    level 3.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/avg_distances.h"
#include "workloads/kmeans.h"
#include "workloads/pagerank.h"

namespace matryoshka::bench {
namespace {

using workloads::Variant;

constexpr uint64_t kSeed = 93;

Variant VariantOf(int64_t i) {
  switch (i) {
    case 0:
      return Variant::kMatryoshka;
    case 1:
      return Variant::kOuterParallel;
    default:
      return Variant::kInnerParallel;
  }
}

// --- K-means: total points constant, groups = x-axis ---

void BM_Fig3_KMeans(benchmark::State& state) {
  const int64_t groups = state.range(0);
  const Variant variant = VariantOf(state.range(1));
  constexpr int64_t kTotalPoints = 1 << 18;
  workloads::KMeansParams params;
  params.k = 4;
  params.max_iterations = 10;
  params.epsilon = -1.0;  // fixed work: always max_iterations

  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, /*target_gb=*/8.0, kTotalPoints,
                sizeof(std::pair<int64_t, datagen::Point>));
  auto data = datagen::GenerateGroupedPoints(kTotalPoints, groups, 3, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig3/kmeans/") + workloads::VariantName(variant),
            {groups});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunKMeans(&cluster, bag, params, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

// --- PageRank: total edges constant; per-group graphs shrink with count ---

void BM_Fig3_PageRank(benchmark::State& state) {
  const int64_t groups = state.range(0);
  const Variant variant = VariantOf(state.range(1));
  constexpr int64_t kTotalEdges = 1 << 18;
  workloads::PageRankParams params;
  params.iterations = 10;

  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, /*target_gb=*/20.0, kTotalEdges,
                sizeof(std::pair<int64_t, datagen::Edge>));
  const int64_t verts_per_group =
      std::max<int64_t>(16, (1 << 16) / groups);
  auto data = datagen::GenerateGroupedEdges(kTotalEdges, groups,
                                            verts_per_group, 0.0, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig3/pagerank/") + workloads::VariantName(variant),
            {groups});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunPageRank(&cluster, bag, params, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

// --- Average Distances: components = x-axis; component size shrinks ---

void BM_Fig3_AvgDistances(benchmark::State& state) {
  const int64_t comps = state.range(0);
  const Variant variant = VariantOf(state.range(1));
  // All-pairs BFS is quadratic in component size: keep totals moderate,
  // and keep components dense (small diameter) so BFS depth — and with it
  // the lifted loop's iteration count — stays realistic.
  const int64_t verts_per_comp = std::max<int64_t>(12, 1024 / comps);

  engine::ClusterConfig cfg = PaperCluster();
  auto data = datagen::GenerateComponents(comps, verts_per_comp,
                                          verts_per_comp, kSeed);
  ScaleToTarget(&cfg, /*target_gb=*/1.0,
                static_cast<int64_t>(data.size()), sizeof(datagen::Edge));
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig3/avg-distances/") +
                workloads::VariantName(variant),
            {comps});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunAvgDistances(&cluster, bag, {}, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  for (int64_t groups : {4, 16, 64, 256, 1024}) {
    for (int64_t variant = 0; variant < 3; ++variant) {
      b->Args({groups, variant});
    }
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

void SweepArgsSmall(benchmark::internal::Benchmark* b) {
  // Average Distances sweeps fewer points: the inner-parallel baseline
  // launches jobs per (component x vertex x BFS step) and becomes
  // unreasonably slow (in real time) beyond this.
  for (int64_t comps : {4, 16, 64}) {
    for (int64_t variant = 0; variant < 3; ++variant) {
      b->Args({comps, variant});
    }
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

BENCHMARK(BM_Fig3_KMeans)->Apply(SweepArgs);
BENCHMARK(BM_Fig3_PageRank)->Apply(SweepArgs);
BENCHMARK(BM_Fig3_AvgDistances)->Apply(SweepArgsSmall);

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
