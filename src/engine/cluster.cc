#include "engine/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <queue>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace matryoshka::engine {

namespace {

// Salts separating the independent draw streams of the fault plan.
constexpr uint64_t kSaltStraggler = 0x5354524147474c52ULL;
constexpr uint64_t kSaltFailure = 0x4641494c55524553ULL;
constexpr uint64_t kSaltDetect = 0x4445544543544954ULL;
constexpr uint64_t kSaltSpeculative = 0x5350454355544956ULL;

/// Deterministic uniform draw in [0, 1) keyed on the plan seed, the stage
/// and task indices, the retry attempt, and a stream salt. Independent of
/// execution order and thread count.
double UnitDraw(uint64_t seed, uint64_t stage, uint64_t task, uint64_t attempt,
                uint64_t salt) {
  uint64_t z = Mix64(seed ^ Mix64(stage * 0x9e3779b97f4a7c15ULL + salt));
  z = Mix64(z ^ Mix64(task * 0x2545f4914f6cdd1dULL + attempt));
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

/// Resolves the real scratch budget: an explicit nonzero config value wins;
/// otherwise MATRYOSHKA_REAL_BUDGET (bytes) can force a process-wide budget
/// so scripts/check.sh spill runs entire suites through the external paths.
/// Writes the resolved value back so config() reflects what runs.
std::size_t ResolveRealBudget(ClusterConfig* config) {
  if (config->real_memory_budget_bytes == 0) {
    if (const char* env = std::getenv("MATRYOSHKA_REAL_BUDGET")) {
      config->real_memory_budget_bytes =
          static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
  }
  return config->real_memory_budget_bytes;
}

/// Resolves the real-fault plan: an explicitly active config plan wins;
/// otherwise MATRYOSHKA_REAL_FAULTS ("<prob>[:<seed>]") can force a
/// process-wide recoverable-only fault storm so scripts/check.sh chaos runs
/// entire suites through the hardened IO paths. Writes the resolved plan
/// back so config() reflects what runs.
void ResolveRealFaults(ClusterConfig* config) {
  if (config->real_faults.active()) return;
  if (const char* env = std::getenv("MATRYOSHKA_REAL_FAULTS")) {
    const RealFaultPlan storm = ParseRealFaultStormEnv(env);
    if (storm.active()) config->real_faults = storm;
  }
}

/// Strict parse for binary ("0"/"1") environment overrides. Anything else —
/// empty string, "true", "2", trailing junk — CHECK-fails with the offending
/// value instead of silently picking a fallback, so a typo'd A/B sweep in
/// scripts/check.sh cannot quietly run both arms in the same mode.
bool ParseBinaryEnv(const char* name, const char* value) {
  if (value[0] != '\0' && value[1] == '\0') {
    if (value[0] == '0') return false;
    if (value[0] == '1') return true;
  }
  MATRYOSHKA_CHECK(false)
      << name << "=\"" << value
      << "\" is not a valid binary override: set it to exactly \"0\" or "
         "\"1\" (or unset it to use the configured default).";
  return false;
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config), real_budget_(ResolveRealBudget(&config_)) {
  MATRYOSHKA_CHECK(config_.num_machines >= 1);
  MATRYOSHKA_CHECK(config_.cores_per_machine >= 1);
  // Process-wide A/B switches for the fusion layer: let scripts/check.sh
  // fusion re-run whole suites with the fused path (and its static-feed
  // representation) forced on and off without recompiling or threading a
  // flag through every test.
  if (const char* env = std::getenv("MATRYOSHKA_FUSION")) {
    config_.fusion.enabled = ParseBinaryEnv("MATRYOSHKA_FUSION", env);
  }
  if (const char* env = std::getenv("MATRYOSHKA_STATIC_FEEDS")) {
    config_.fusion.static_feeds =
        ParseBinaryEnv("MATRYOSHKA_STATIC_FEEDS", env);
  }
  // default_parallelism <= 0 means "auto": the paper's 3x total cores,
  // resolved here so it tracks whatever cluster shape was configured.
  if (config_.default_parallelism <= 0) {
    config_.default_parallelism = 3 * config_.total_cores();
  }
  if (config_.execute_parallel) {
    if (config_.shared_pool != nullptr) {
      // Externally owned (serving): per-request isolation with shared CPUs.
      pool_ptr_ = config_.shared_pool;
    } else {
      const std::size_t threads = config_.pool_threads > 0
                                      ? static_cast<std::size_t>(
                                            config_.pool_threads)
                                      : ThreadPool::DefaultThreads();
      pool_ = std::make_unique<ThreadPool>(threads);
      pool_ptr_ = pool_.get();
    }
  }
  driver_thread_ = std::this_thread::get_id();
  loss_times_ = config_.faults.machine_loss_times_s;
  std::sort(loss_times_.begin(), loss_times_.end());
  ResolveRealFaults(&config_);
  failpoints_.Arm(config_.real_faults, config_.real_io);
}

void Cluster::CheckDriverThread(const char* what) const {
  if (OnDriverThread()) return;
  MATRYOSHKA_CHECK(false)
      << what
      << " called off the cluster's driver thread. A Cluster and its Bags "
         "are single-threaded: all cost-model accounting and pending-chain "
         "forcing must run on the one thread that drives the program (the "
         "thread pool only executes per-index bodies handed over by "
         "ParallelFor). If this thread legitimately took over the program "
         "(e.g. a serving worker executing a request on a Cluster built "
         "elsewhere), call Cluster::BindDriverThread() on it before running "
         "any operator; otherwise move this call to the driver thread.";
}

Cluster::~Cluster() = default;

void Cluster::Fail(Status status) {
  MATRYOSHKA_DCHECK(!status.ok());
  if (status_.ok()) {
    MATRYOSHKA_LOG(kInfo) << "cluster run failed: " << status.ToString();
    if (trace_ != nullptr) {
      trace_->AddInstant("run-failed", status.ToString(),
                         metrics_.simulated_time_s);
    }
    status_ = std::move(status);
  }
}

void Cluster::Reset() {
  status_ = Status::OK();
  metrics_ = Metrics();
  // Re-arm the fault plan: lost machines come back and machine-loss events
  // fire again, so repeated runs on one cluster are bit-identical. The
  // recovery state (driver-retry counters, checkpoint tallies, the deadline
  // window) lives in metrics_ / attempt_start_s_ and re-arms with them.
  next_loss_event_ = 0;
  lost_machines_ = 0;
  attempt_start_s_ = 0.0;
  // Re-arm the real-fault epoch too: a fresh run draws the same injected
  // faults as the first one (bit-identical repeated runs).
  failpoints_.ResetEpoch();
  // A Reset is a run boundary for the trace too.
  if (trace_ != nullptr) trace_->StartRun();
}

void Cluster::CheckDeadline() {
  const double deadline = config_.recovery.run_deadline_s;
  if (deadline <= 0.0 || !ok()) return;
  const double elapsed = metrics_.simulated_time_s - attempt_start_s_;
  if (elapsed > deadline) {
    Fail(Status::DeadlineExceeded(
        "run attempt exceeded its deadline of " + std::to_string(deadline) +
        " s (" + std::to_string(elapsed) + " s elapsed)"));
  }
}

void Cluster::BeginDriverRetry(double backoff_s, const std::string& why) {
  if (ok()) return;
  status_ = Status::OK();
  metrics_.driver_retries += 1;
  const double t0 = metrics_.simulated_time_s;
  metrics_.simulated_time_s += backoff_s;
  metrics_.recovery_time_s += backoff_s;
  ArmRunDeadline();
  // Advance the real-fault epoch: under a bounded storm
  // (RealFaultPlan::storm_epochs) the retried attempt runs on healthy IO —
  // the "disk glitched, driver retried, run recovered" scenario, still a
  // pure function of (seed, epoch).
  failpoints_.BumpEpoch();
  if (trace_ != nullptr) {
    trace_->AddInstant("driver-retry", why, t0);
    trace_->AddDriverSpan(obs::Category::kRecovery, "driver-retry backoff",
                          t0, metrics_.simulated_time_s, 0.0);
  }
}

void Cluster::NotePlanFallback(const char* what) {
  if (!ok()) return;
  metrics_.plan_fallbacks += 1;
  if (trace_ != nullptr) {
    trace_->AddInstant("plan-fallback", what, metrics_.simulated_time_s);
  }
}

void Cluster::AccrueCheckpoint(double bytes, const char* label) {
  if (!ok()) return;
  const auto replicas =
      static_cast<double>(std::max(1, config_.recovery.checkpoint_replicas));
  metrics_.checkpoints_written += 1;
  metrics_.checkpoint_bytes += bytes * replicas;
  const double t0 = metrics_.simulated_time_s;
  metrics_.simulated_time_s += CheckpointWriteSeconds(bytes);
  if (trace_ != nullptr) {
    trace_->AddDriverSpan(obs::Category::kCheckpoint, label, t0,
                          metrics_.simulated_time_s, bytes * replicas);
  }
  CheckDeadline();
}

void Cluster::BeginJob(const std::string& label) {
  if (!ok()) return;
  metrics_.jobs += 1;
  const double t0 = metrics_.simulated_time_s;
  metrics_.simulated_time_s += config_.job_launch_overhead_s;
  if (trace_ != nullptr) {
    trace_->AddJob(label, t0, metrics_.simulated_time_s);
  }
  if (config_.faults.active()) {
    // Machine losses can fire between stages too; nothing is running, so
    // there is no recompute, only permanently fewer slots.
    ProcessMachineLossEvents(/*stage_cost_s=*/0.0, /*num_tasks=*/0,
                             /*lineage_depth=*/1);
  }
  CheckDeadline();
}

double Cluster::SimulateTaskAttempts(double base_cost_s, uint64_t stage_index,
                                     uint64_t task_index, uint64_t copy_salt,
                                     bool* exhausted, int* retries) {
  const FaultPlan& plan = config_.faults;
  double duration = 0.0;
  for (uint64_t attempt = 0;; ++attempt) {
    double cost = base_cost_s;
    if (plan.straggler_fraction > 0.0 &&
        UnitDraw(plan.seed, stage_index, task_index, attempt,
                 kSaltStraggler ^ copy_salt) < plan.straggler_fraction) {
      cost *= plan.straggler_slowdown;
    }
    const bool fails =
        plan.task_failure_prob > 0.0 &&
        UnitDraw(plan.seed, stage_index, task_index, attempt,
                 kSaltFailure ^ copy_salt) < plan.task_failure_prob;
    if (!fails) return duration + cost;
    // The failure is detected a deterministic fraction of the way through
    // the attempt: that work is wasted and charged as recovery.
    const double wasted =
        cost * UnitDraw(plan.seed, stage_index, task_index, attempt,
                        kSaltDetect ^ copy_salt);
    duration += wasted;
    metrics_.failed_tasks += 1;
    metrics_.recovery_time_s += wasted;
    if (static_cast<int>(attempt) >= plan.max_task_retries) {
      *exhausted = true;
      return duration;
    }
    const double backoff =
        plan.retry_backoff_s * std::ldexp(1.0, static_cast<int>(attempt));
    duration += backoff;
    metrics_.task_retries += 1;
    *retries += 1;
    metrics_.recovery_time_s += backoff;
  }
}

void Cluster::ProcessMachineLossEvents(double stage_cost_s, int64_t num_tasks,
                                       int lineage_depth) {
  while (next_loss_event_ < loss_times_.size() &&
         loss_times_[next_loss_event_] <= metrics_.simulated_time_s) {
    next_loss_event_ += 1;
    // The last machine never dies (the driver runs somewhere).
    if (lost_machines_ >= config_.num_machines - 1) continue;
    const int machines_before = available_machines();
    lost_machines_ += 1;
    metrics_.machines_lost += 1;
    if (trace_ != nullptr) {
      trace_->AddInstant(
          "machine-lost",
          std::to_string(available_machines()) + " machines left",
          metrics_.simulated_time_s);
    }
    if (stage_cost_s <= 0.0 && num_tasks <= 0) continue;
    // The lost machine held ~1/machines of the running stage's partitions;
    // regenerating them re-runs the upstream narrow chain (lineage_depth
    // stages' worth of work) for that share, spread over surviving slots.
    const double lost_fraction = 1.0 / static_cast<double>(machines_before);
    const int surviving_slots = available_machines() * config_.cores_per_machine;
    const double recompute =
        static_cast<double>(lineage_depth) * lost_fraction *
        (stage_cost_s +
         static_cast<double>(num_tasks) * config_.task_overhead_s) /
        static_cast<double>(surviving_slots);
    const double t0 = metrics_.simulated_time_s;
    metrics_.recovery_time_s += recompute;
    metrics_.simulated_time_s += recompute;
    if (trace_ != nullptr) {
      trace_->AddDriverSpan(obs::Category::kRecovery, "machine-loss recompute",
                            t0, metrics_.simulated_time_s, 0.0);
    }
  }
}

double Cluster::ScheduleStage(const std::vector<ScheduledTask>& sched,
                              int slots, double t0, int64_t trace_stage_id,
                              const StageContext& stage_ctx) {
  // Greedy list scheduling onto `slots` identical cores: each task goes to
  // the currently least-loaded slot; the stage takes the resulting makespan.
  // A min-heap over (load, slot) keeps this O(n log slots) and — since among
  // equal loads only the slot index differs — charges bit-identical time to
  // a heap over plain loads. Tasks smaller than the slot count finish in one
  // "wave" of max task cost — exactly the effect that starves the
  // outer-parallel workaround when there are fewer groups than cores.
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  const int used_slots =
      std::min<int64_t>(slots, static_cast<int64_t>(sched.size()));
  for (int i = 0; i < used_slots; ++i) heap.emplace(0.0, i);

  const bool tracing = trace_ != nullptr;
  const bool record_tasks =
      tracing &&
      trace_->ShouldRecordTasks(static_cast<int64_t>(sched.size()));
  // Per-slot aggregates for the critical-path decomposition (trace only).
  std::vector<double> slot_end, slot_compute, slot_overhead, slot_spill,
      slot_fault;
  if (tracing) {
    slot_end.assign(static_cast<std::size_t>(used_slots), 0.0);
    slot_compute.assign(static_cast<std::size_t>(used_slots), 0.0);
    slot_overhead.assign(static_cast<std::size_t>(used_slots), 0.0);
    slot_spill.assign(static_cast<std::size_t>(used_slots), 0.0);
    slot_fault.assign(static_cast<std::size_t>(used_slots), 0.0);
  }

  double makespan = 0.0;
  for (const ScheduledTask& task : sched) {
    auto [load, slot] = heap.top();
    heap.pop();
    load += config_.task_overhead_s + task.duration_s;
    makespan = std::max(makespan, load);
    heap.emplace(load, slot);
    if (tracing) {
      const double factor = stage_ctx.spill_factor;
      const double compute =
          factor > 1.0 ? task.base_cost_s / factor : task.base_cost_s;
      const std::size_t s = static_cast<std::size_t>(slot);
      const double begin = slot_end[s];
      slot_end[s] = load;
      slot_overhead[s] += config_.task_overhead_s;
      slot_compute[s] += compute;
      slot_spill[s] += task.base_cost_s - compute;
      slot_fault[s] += task.duration_s - task.base_cost_s;
      if (record_tasks) {
        obs::TaskSpan span;
        span.stage_id = trace_stage_id;
        span.task_index = task.task_index;
        span.slot = slot;
        span.begin_s = t0 + begin;
        span.end_s = t0 + load;
        span.overhead_s = config_.task_overhead_s;
        span.base_cost_s = task.base_cost_s;
        span.spill_s = task.base_cost_s - compute;
        span.retries = task.retries;
        span.speculative = task.speculative;
        trace_->AddTask(span);
      }
    }
  }

  if (tracing) {
    int64_t critical = -1;
    for (int i = 0; i < used_slots; ++i) {
      if (critical < 0 ||
          slot_end[static_cast<std::size_t>(i)] >
              slot_end[static_cast<std::size_t>(critical)]) {
        critical = i;
      }
    }
    const std::size_t c = static_cast<std::size_t>(std::max<int64_t>(0, critical));
    trace_->EndStage(trace_stage_id, t0 + makespan, critical,
                     critical >= 0 ? slot_compute[c] : 0.0,
                     critical >= 0 ? slot_overhead[c] : 0.0,
                     critical >= 0 ? slot_spill[c] : 0.0,
                     critical >= 0 ? slot_fault[c] : 0.0);
  }
  return makespan;
}

void Cluster::AccrueStage(const std::vector<double>& task_costs_s,
                          int lineage_depth, const StageContext& stage_ctx) {
  if (!ok()) return;
  const FaultPlan& plan = config_.faults;
  const std::size_t n = task_costs_s.size();

  if (!plan.active()) {
    metrics_.stages += 1;
    metrics_.tasks += static_cast<int64_t>(n);
    const double t0 = metrics_.simulated_time_s;
    int64_t stage_id = 0;
    if (trace_ != nullptr) {
      stage_id = trace_->AddStage(stage_ctx.label, metrics_.jobs, t0,
                                  static_cast<int64_t>(n), lineage_depth,
                                  stage_ctx.spill_factor);
    }
    std::vector<ScheduledTask> sched(n);
    for (std::size_t i = 0; i < n; ++i) {
      sched[i].duration_s = task_costs_s[i];
      sched[i].base_cost_s = task_costs_s[i];
      sched[i].task_index = static_cast<int64_t>(i);
    }
    metrics_.simulated_time_s +=
        ScheduleStage(sched, config_.total_cores(), t0, stage_id, stage_ctx);
    CheckDeadline();
    return;
  }

  metrics_.stages += 1;
  metrics_.tasks += static_cast<int64_t>(n);
  const uint64_t stage_index = static_cast<uint64_t>(metrics_.stages);

  // 1. Perturb every task's slot time by straggler and failure/retry draws.
  std::vector<ScheduledTask> sched(n);
  std::vector<char> exhausted(n, 0);
  double stage_cost_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    stage_cost_total += task_costs_s[i];
    bool ex = false;
    int retries = 0;
    sched[i].duration_s = SimulateTaskAttempts(
        task_costs_s[i], stage_index, static_cast<uint64_t>(i),
        /*copy_salt=*/0, &ex, &retries);
    sched[i].base_cost_s = task_costs_s[i];
    sched[i].task_index = static_cast<int64_t>(i);
    sched[i].retries = retries;
    exhausted[i] = ex ? 1 : 0;
  }

  // 2. Speculative execution: duplicate the slowest k% of the tasks and let
  // the earlier finisher win (a speculative copy can rescue a task whose
  // original exhausted its retries). Both copies occupy a slot until the
  // winner finishes.
  if (plan.speculative_execution && n > 0) {
    const auto k = static_cast<std::size_t>(
        static_cast<double>(n) * plan.speculation_fraction);
    const std::size_t num_spec = std::max<std::size_t>(1, k);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    // Deterministic slowest-first order; index breaks duration ties.
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (sched[a].duration_s != sched[b].duration_s) {
        return sched[a].duration_s > sched[b].duration_s;
      }
      return a < b;
    });
    for (std::size_t s = 0; s < std::min(num_spec, n); ++s) {
      const std::size_t i = order[s];
      bool spec_exhausted = false;
      int spec_retries = 0;
      const double spec_duration = SimulateTaskAttempts(
          task_costs_s[i], stage_index, static_cast<uint64_t>(i),
          kSaltSpeculative, &spec_exhausted, &spec_retries);
      const double winner = std::min(sched[i].duration_s, spec_duration);
      if (exhausted[i] && !spec_exhausted) exhausted[i] = 0;
      sched[i].duration_s = winner;
      ScheduledTask dup;  // the duplicate's slot occupancy
      dup.duration_s = winner;
      dup.base_cost_s = task_costs_s[i];
      dup.task_index = static_cast<int64_t>(i);
      dup.retries = spec_retries;
      dup.speculative = true;
      sched.push_back(dup);
      metrics_.speculative_launches += 1;
    }
  }

  // 3. Greedy list scheduling of the perturbed durations onto the slots of
  // the machines still alive.
  const double t0 = metrics_.simulated_time_s;
  int64_t stage_id = 0;
  if (trace_ != nullptr) {
    stage_id = trace_->AddStage(stage_ctx.label, metrics_.jobs, t0,
                                static_cast<int64_t>(n), lineage_depth,
                                stage_ctx.spill_factor);
  }
  const int slots = available_machines() * config_.cores_per_machine;
  metrics_.simulated_time_s +=
      ScheduleStage(sched, slots, t0, stage_id, stage_ctx);

  // 4. Machine-loss events reached by the clock fire against this stage.
  ProcessMachineLossEvents(stage_cost_total, static_cast<int64_t>(n),
                           lineage_depth);

  // 5. A task that exhausted its retries (and was not rescued by a
  // speculative copy) kills the whole run: transient failures are
  // recoverable at task level, running out of the retry budget fails the run
  // (the *driver* may still retry the whole program, see RunWithRecovery).
  for (std::size_t i = 0; i < n; ++i) {
    if (exhausted[i]) {
      Fail(Status::TaskFailed(
          "task " + std::to_string(i) + " of stage " +
          std::to_string(stage_index) + " failed after " +
          std::to_string(plan.max_task_retries + 1) + " attempts"));
      return;
    }
  }
  CheckDeadline();
}

void Cluster::AccrueUniformStage(int64_t num_tasks, double total_elements,
                                 double cost_weight,
                                 const StageContext& stage_ctx) {
  if (!ok()) return;
  MATRYOSHKA_DCHECK(num_tasks >= 1);
  metrics_.elements_processed += static_cast<int64_t>(total_elements);
  const double per_task =
      ComputeCost(total_elements, cost_weight) / static_cast<double>(num_tasks);
  std::vector<double> costs(static_cast<std::size_t>(num_tasks), per_task);
  AccrueStage(costs, /*lineage_depth=*/1, stage_ctx);
}

void Cluster::AccrueShuffle(double bytes, const char* label) {
  if (!ok()) return;
  const double scaled = bytes;
  metrics_.shuffle_bytes += scaled;
  // With hash partitioning, a fraction (1 - 1/machines) of the data crosses
  // machine boundaries; every machine sends and receives its share in
  // parallel at the configured per-machine bandwidth. Degraded re-planning
  // spreads the shuffle over the machines still alive.
  const int machines = planning_machines();
  const double crossing =
      scaled * (1.0 - 1.0 / static_cast<double>(machines));
  const double per_machine = crossing / static_cast<double>(machines);
  const double t0 = metrics_.simulated_time_s;
  metrics_.simulated_time_s += per_machine / config_.network_bytes_per_s;
  if (trace_ != nullptr) {
    trace_->AddDriverSpan(obs::Category::kShuffle, label, t0,
                          metrics_.simulated_time_s, scaled);
  }
  CheckDeadline();
}

void Cluster::ChargeBroadcastTransfer(double bytes, const char* label) {
  // Collect to the driver, then torrent-style redistribution (every machine
  // both uploads and downloads chunks, so distribution is ~one transfer of
  // the full payload at per-machine bandwidth, not num_machines transfers).
  const double t0 = metrics_.simulated_time_s;
  metrics_.simulated_time_s += 2.0 * bytes / config_.network_bytes_per_s;
  if (trace_ != nullptr) {
    trace_->AddDriverSpan(obs::Category::kBroadcast, label, t0,
                          metrics_.simulated_time_s, bytes);
  }
  CheckDeadline();
}

void Cluster::AccrueBroadcast(double bytes, const char* label) {
  if (!ok()) return;
  const double scaled = bytes;
  // Accounting order predates the fit check on purpose: an attempted
  // broadcast counts its bytes and peak even when it OOMs.
  metrics_.broadcast_bytes += scaled;
  metrics_.peak_machine_bytes = std::max(metrics_.peak_machine_bytes, scaled);
  if (scaled > broadcast_memory_budget()) {
    Fail(Status::OutOfMemory(
        "broadcast data does not fit on a single machine"));
    return;
  }
  ChargeBroadcastTransfer(scaled, label);
}

Status Cluster::TryAccrueBroadcast(double bytes, const char* label) {
  if (!ok()) return status_;
  if (bytes > broadcast_memory_budget()) {
    // Typed and catchable: the caller decides whether to fall back to a
    // shuffle-based plan or Fail() the cluster. No bytes are accounted for
    // the broadcast that did not happen.
    return Status::OutOfMemory(
        std::string(label) +
        ": broadcast data does not fit on a single machine");
  }
  metrics_.broadcast_bytes += bytes;
  metrics_.peak_machine_bytes = std::max(metrics_.peak_machine_bytes, bytes);
  ChargeBroadcastTransfer(bytes, label);
  return Status::OK();
}

void Cluster::AccrueCollect(double bytes, const char* label) {
  if (!ok()) return;
  const double t0 = metrics_.simulated_time_s;
  metrics_.simulated_time_s += bytes / config_.network_bytes_per_s;
  if (trace_ != nullptr) {
    trace_->AddDriverSpan(obs::Category::kCollect, label, t0,
                          metrics_.simulated_time_s, bytes);
  }
  CheckDeadline();
}

void Cluster::CheckTaskMemory(double bytes, const std::string& what) {
  if (!ok()) return;
  const double scaled = bytes;
  metrics_.peak_task_bytes = std::max(metrics_.peak_task_bytes, scaled);
  if (scaled > config_.task_memory_budget()) {
    Fail(Status::OutOfMemory(what + ": task working set of " +
                             std::to_string(scaled / (1 << 20)) +
                             " MB exceeds the per-task budget of " +
                             std::to_string(config_.task_memory_budget() /
                                            (1 << 20)) +
                             " MB"));
  }
}

void Cluster::NoteRealSpill(const external::SpillStats& stats,
                            const char* label) {
  const bool faulted = stats.io_faults_injected != 0 || stats.io_retries != 0 ||
                       stats.checksum_failures != 0 ||
                       stats.inmemory_fallbacks != 0;
  if (stats.spill_events == 0 && !faulted) return;
  metrics_.real_spill_events += stats.spill_events;
  metrics_.real_spilled_bytes += stats.spilled_bytes;
  metrics_.real_spill_runs += stats.spill_runs;
  metrics_.real_io_faults_injected += stats.io_faults_injected;
  metrics_.real_io_retries += stats.io_retries;
  metrics_.checksum_failures += stats.checksum_failures;
  metrics_.inmemory_fallbacks += stats.inmemory_fallbacks;
  if (trace_ != nullptr) {
    // Zero-width span: real spilling happens on the hardware clock, which
    // the trace's simulated timeline must not (and does not) advance for.
    if (stats.spill_events != 0) {
      trace_->AddDriverSpan(obs::Category::kSpill, label,
                            metrics_.simulated_time_s,
                            metrics_.simulated_time_s, stats.spilled_bytes);
    }
    if (faulted) {
      trace_->AddInstant(
          "real-io-fault",
          std::string(label) + ": " +
              std::to_string(stats.io_faults_injected) + " injected, " +
              std::to_string(stats.io_retries) + " retries, " +
              std::to_string(stats.checksum_failures) + " checksum, " +
              std::to_string(stats.inmemory_fallbacks) + " fallbacks",
          metrics_.simulated_time_s);
    }
  }
}

double Cluster::SpillFactor(double per_machine_bytes) {
  if (!ok()) return 1.0;
  const double scaled = per_machine_bytes * config_.memory_object_overhead;
  metrics_.peak_machine_bytes = std::max(metrics_.peak_machine_bytes, scaled);
  const double budget =
      config_.memory_per_machine_bytes * config_.execution_memory_fraction;
  if (scaled <= budget) return 1.0;
  const double excess_fraction = (scaled - budget) / scaled;
  metrics_.spill_events += 1;
  metrics_.spilled_bytes += scaled - budget;
  if (trace_ != nullptr) {
    trace_->AddInstant(
        "spill",
        std::to_string((scaled - budget) / (1 << 20)) + " MB over budget",
        metrics_.simulated_time_s);
  }
  return 1.0 + excess_fraction * (config_.spill_penalty - 1.0);
}

}  // namespace matryoshka::engine
