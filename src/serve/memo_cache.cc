#include "serve/memo_cache.h"

#include <utility>

namespace matryoshka::serve {

std::shared_ptr<const CachedResult> MemoCache::Lookup(const CacheKey& key) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.pos);
  return it->second.result;
}

void MemoCache::Insert(const CacheKey& key,
                       std::shared_ptr<const CachedResult> result) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent recompute of the same point (both missed before either
    // inserted): keep the first entry — deterministic plans make the two
    // results identical anyway — and just freshen it.
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return;
  }
  if (map_.size() >= max_entries_) {
    const CacheKey& victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(result), lru_.begin()});
}

MemoCache::Stats MemoCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, evictions_, map_.size()};
}

}  // namespace matryoshka::serve
