file(REMOVE_RECURSE
  "CMakeFiles/engine_cost_model_test.dir/engine_cost_model_test.cc.o"
  "CMakeFiles/engine_cost_model_test.dir/engine_cost_model_test.cc.o.d"
  "engine_cost_model_test"
  "engine_cost_model_test.pdb"
  "engine_cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
