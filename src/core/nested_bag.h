#ifndef MATRYOSHKA_CORE_NESTED_BAG_H_
#define MATRYOSHKA_CORE_NESTED_BAG_H_

#include <cstdint>
#include <utility>

#include "common/hash.h"
#include "core/inner_bag.h"
#include "core/inner_scalar.h"
#include "core/lifting_context.h"
#include "core/optimizer.h"
#include "core/tag.h"
#include "engine/bag.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::core {

/// The lifted representation of a nested bag outside a UDF (Sec. 4.5):
/// Bag[(O, Bag[I])] becomes an InnerScalar[T, O] holding the per-group
/// scalar component plus an InnerBag[T, I] holding all inner-bag elements,
/// sharing one tag space.
///
/// Example: {(fruit, {apple, orange}), (animal, {dog, cat})} is represented
/// by the InnerScalar {(0, fruit), (1, animal)} and the InnerBag
/// {(0, apple), (0, orange), (1, dog), (1, cat)}.
template <typename O, typename I>
class NestedBag {
 public:
  NestedBag(InnerScalar<O> keys, InnerBag<I> values)
      : keys_(std::move(keys)), values_(std::move(values)) {}

  const LiftingContext& ctx() const { return keys_.ctx(); }
  /// The per-group scalar components (e.g. the grouping keys).
  const InnerScalar<O>& keys() const { return keys_; }
  /// All elements of all inner bags, tagged by group.
  const InnerBag<I>& values() const { return values_; }

 private:
  InnerScalar<O> keys_;
  InnerBag<I> values_;
};

namespace internal {

/// Deterministic tag for a grouping key. 64-bit mixed hash; with the group
/// counts used here (<= a few million), collisions are negligible, and this
/// avoids the extra shuffle a zipWithUniqueId-based tag assignment of
/// grouped keys would need.
template <typename K>
Tag TagOfKey(const K& key) {
  return Tag::Root(static_cast<uint64_t>(Hasher{}(key)));
}

template <typename K>
Tag ChildTagOfKey(const Tag& parent, const K& key) {
  return parent.Child(static_cast<uint64_t>(Hasher{}(key)));
}

}  // namespace internal

/// The parsing phase's replacement for a groupByKey whose result flows into
/// nested-parallel operations (Listing 2 line 3): groups `bag` by key but
/// produces the flat NestedBag representation directly — the inner bags are
/// never materialized per-task, so this cannot OOM on big or skewed groups
/// the way the flat GroupByKey can.
///
/// The number of groups (= the InnerScalar size, Sec. 8.1) is taken from the
/// engine's stage statistics of the distinct() that computes the key set —
/// information a dataflow engine has for free after running the stage.
template <typename K, typename V>
NestedBag<K, V> GroupByKeyIntoNestedBag(const engine::Bag<std::pair<K, V>>& bag,
                                        OptimizerOptions options = {}) {
  engine::Cluster* cluster = bag.cluster();
  // The number of groups is a property of the key space, not of the data
  // volume: the key set is a scale-1 bag (its synthetic cardinality is the
  // real group count — this is also why the InnerScalar size is exact).
  auto keys = engine::Distinct(engine::Keys(bag), /*num_partitions=*/-1,
                               /*result_scale=*/1.0);
  auto keys_repr = engine::Map(keys, [](const K& k) {
    return std::pair<Tag, K>(internal::TagOfKey(k), k);
  });
  const int64_t num_tags = keys_repr.Size();
  auto tags = engine::Keys(keys_repr);
  LiftingContext ctx(cluster, tags, num_tags, options);
  auto values_repr = engine::Map(bag, [](const std::pair<K, V>& p) {
    return std::pair<Tag, V>(internal::TagOfKey(p.first), p.second);
  });
  return NestedBag<K, V>(InnerScalar<K>(ctx, std::move(keys_repr)),
                         InnerBag<V>(ctx, std::move(values_repr)));
}

/// Multi-level variant (Sec. 7): groups an InnerBag *inside* a lifted UDF,
/// producing a NestedBag one nesting level deeper. Tags of the new level are
/// children of the enclosing invocation's tag, so lifted operations keep
/// working unchanged on the composite keys.
template <typename K, typename V>
NestedBag<K, V> LiftedGroupByKeyIntoNestedBag(
    const InnerBag<std::pair<K, V>>& bag) {
  const LiftingContext& outer = bag.ctx();
  auto keys_repr_outer = engine::Distinct(
      engine::Map(bag.repr(),
                  [](const std::pair<Tag, std::pair<K, V>>& p) {
                    return std::pair<Tag, K>(
                        internal::ChildTagOfKey(p.first, p.second.first),
                        p.second.first);
                  }),
      /*num_partitions=*/-1, /*result_scale=*/1.0);
  const int64_t num_tags = keys_repr_outer.Size();
  auto tags = engine::Keys(keys_repr_outer);
  LiftingContext ctx = outer.Narrowed(tags, num_tags);
  auto values_repr =
      engine::Map(bag.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<Tag, V>(
            internal::ChildTagOfKey(p.first, p.second.first), p.second.second);
      });
  return NestedBag<K, V>(InnerScalar<K>(ctx, std::move(keys_repr_outer)),
                         InnerBag<V>(ctx, std::move(values_repr)));
}

/// Lifts a flat bag for a mapWithLiftedUDF over a *non-nested* input (the
/// hyperparameter-optimization pattern of Sec. 2.3): every element becomes
/// one UDF invocation, with tags assigned by zipWithUniqueId (Sec. 4.3).
template <typename T>
InnerScalar<T> LiftFlatBag(const engine::Bag<T>& bag,
                           OptimizerOptions options = {}) {
  auto zipped = engine::ZipWithUniqueId(bag);
  auto repr = engine::Map(zipped, [](const std::pair<uint64_t, T>& p) {
    return std::pair<Tag, T>(Tag::Root(p.first), p.second);
  });
  auto tags = engine::Keys(repr);
  LiftingContext ctx(bag.cluster(), tags, bag.Size(), options);
  return InnerScalar<T>(ctx, std::move(repr));
}

/// The lifted map over a NestedBag (Listing 2 line 4): in contrast to a
/// normal map, the UDF is called exactly *once*, at lowering time, and its
/// single execution operates on all groups at the same time through the
/// InnerScalar/InnerBag arguments. Returns whatever the UDF returns
/// (typically an InnerScalar or InnerBag).
template <typename O, typename I, typename F>
auto MapWithLiftedUdf(const NestedBag<O, I>& nb, F udf) {
  return udf(nb.ctx(), nb.keys(), nb.values());
}

/// The lifted map over a flat bag: one UDF invocation per element, tags via
/// zipWithUniqueId; the UDF again runs once, on the lifted input.
template <typename T, typename F>
auto MapWithLiftedUdf(const engine::Bag<T>& bag, F udf,
                      OptimizerOptions options = {}) {
  InnerScalar<T> lifted = LiftFlatBag(bag, options);
  return udf(lifted.ctx(), lifted);
}

/// Attaches the group keys to a per-group result: the flat bag of
/// (key, result) pairs, via a tag join (a BinaryScalarOp).
template <typename O, typename S>
engine::Bag<std::pair<O, S>> ZipWithKeys(const InnerScalar<O>& keys,
                                         const InnerScalar<S>& result) {
  auto paired = BinaryScalarOp(keys, result, [](const O& k, const S& s) {
    return std::pair<O, S>(k, s);
  });
  return paired.Flatten();
}

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_NESTED_BAG_H_
