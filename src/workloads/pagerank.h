#ifndef MATRYOSHKA_WORKLOADS_PAGERANK_H_
#define MATRYOSHKA_WORKLOADS_PAGERANK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/workload.h"

/// Grouped PageRank (Sec. 9.1): the input graph's edges are grouped, and a
/// separate PageRank runs for each group (as in Topic-Sensitive PageRank /
/// BlockRank). Iterative, two levels of parallelism; the init-weight closure
/// is the running example of Sec. 5.1, and the rank/exit-condition joins are
/// the operations whose physical strategy Fig. 8 (left) ablates.
namespace matryoshka::workloads {

struct PageRankParams {
  int64_t iterations = 10;
  double damping = 0.85;
};

/// Per-group validation checksum: the sum of all final ranks (deterministic
/// up to floating-point association).
using PageRankResult = WorkloadResult<int64_t, double>;

PageRankResult PageRankMatryoshka(
    engine::Cluster* cluster,
    const engine::Bag<std::pair<int64_t, datagen::Edge>>& edges,
    const PageRankParams& params, core::OptimizerOptions options = {});

PageRankResult PageRankOuterParallel(
    engine::Cluster* cluster,
    const engine::Bag<std::pair<int64_t, datagen::Edge>>& edges,
    const PageRankParams& params);

PageRankResult PageRankInnerParallel(
    engine::Cluster* cluster,
    const engine::Bag<std::pair<int64_t, datagen::Edge>>& edges,
    const PageRankParams& params);

PageRankResult RunPageRank(
    engine::Cluster* cluster,
    const engine::Bag<std::pair<int64_t, datagen::Edge>>& edges,
    const PageRankParams& params, Variant variant,
    core::OptimizerOptions options = {});

/// Driver-side sequential reference.
std::vector<std::pair<int64_t, double>> PageRankReference(
    const std::vector<std::pair<int64_t, datagen::Edge>>& edges,
    const PageRankParams& params);

/// Sequential PageRank over one group's edge list; returns the rank sum.
/// Exposed for the outer-parallel baseline and tests.
double SequentialPageRank(const std::vector<datagen::Edge>& edges,
                          const PageRankParams& params);

}  // namespace matryoshka::workloads

#endif  // MATRYOSHKA_WORKLOADS_PAGERANK_H_
