#ifndef MATRYOSHKA_CORE_MATRYOSHKA_H_
#define MATRYOSHKA_CORE_MATRYOSHKA_H_

/// Umbrella header for the Matryoshka nested-parallelism library: the three
/// nesting primitives (InnerScalar, InnerBag, NestedBag), lifted control
/// flow, closure handling, and the lowering-phase optimizer, on top of the
/// flat dataflow engine in engine/.
///
/// Quick orientation (paper section in parentheses):
///  - GroupByKeyIntoNestedBag / LiftFlatBag enter the lifted world (4.5),
///  - MapWithLiftedUdf runs a lifted UDF once over all groups (4.2),
///  - UnaryScalarOp / BinaryScalarOp lift scalar computation (4.3),
///  - LiftedMap / LiftedFilter / LiftedReduceByKey / LiftedCount / ... lift
///    bag operations (4.4),
///  - MapWithClosure / HalfLiftedMapWithClosure / HalfLiftedJoin handle
///    closures (5),
///  - LiftedWhile / LiftedIf lift control flow (6),
///  - OptimizerOptions selects physical strategies at runtime (8).

#include "core/closures.h"       // IWYU pragma: export
#include "core/control_flow.h"   // IWYU pragma: export
#include "core/inner_bag.h"      // IWYU pragma: export
#include "core/inner_scalar.h"   // IWYU pragma: export
#include "core/lifting_context.h"  // IWYU pragma: export
#include "core/multi_level.h"    // IWYU pragma: export
#include "core/nested_bag.h"     // IWYU pragma: export
#include "core/optimizer.h"      // IWYU pragma: export
#include "core/tag.h"            // IWYU pragma: export

#endif  // MATRYOSHKA_CORE_MATRYOSHKA_H_
