#ifndef MATRYOSHKA_SERVE_MEMO_CACHE_H_
#define MATRYOSHKA_SERVE_MEMO_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/hash.h"
#include "common/status.h"
#include "engine/cluster.h"
#include "serve/plan.h"

/// Result memoization for the serving driver, keyed by
/// (plan name, params fingerprint, input fingerprint).
///
/// Determinism contract: a cached entry stores the COMPLETE response of
/// the original computation — output, Metrics, exported trace — so a hit
/// returns bytes identical to a recompute (the memo-cache invariant
/// tests diff the two). Hit/miss/eviction counters live here and surface
/// only in the driver's aggregate stats, never in a per-request response:
/// which request hits the cache is timing-dependent under concurrent
/// load, and per-request responses must stay bit-identical regardless.
namespace matryoshka::serve {

struct CacheKey {
  std::string plan;
  uint64_t params_fp = 0;
  uint64_t input_fp = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.params_fp == b.params_fp && a.input_fp == b.input_fp &&
           a.plan == b.plan;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    uint64_t h = Mix64(std::hash<std::string>{}(k.plan));
    h = Mix64(h ^ k.params_fp);
    h = Mix64(h ^ k.input_fp);
    return static_cast<std::size_t>(h);
  }
};

/// The memoized response of one (plan, params, input) point. Shared
/// immutably between the cache and in-flight responses.
struct CachedResult {
  Status status;
  PlanOutput output;
  engine::Metrics metrics;
  std::string trace_json;
};

/// Mutex-guarded LRU map. `max_entries == 0` disables caching entirely
/// (every Lookup misses without counting, Insert drops).
class MemoCache {
 public:
  explicit MemoCache(std::size_t max_entries) : max_entries_(max_entries) {}
  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  bool enabled() const { return max_entries_ > 0; }

  /// Returns the cached result (freshening its LRU position, counting a
  /// hit) or nullptr (counting a miss). Disabled caches return nullptr
  /// without counting.
  std::shared_ptr<const CachedResult> Lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when full. No-op on a disabled cache.
  void Insert(const CacheKey& key, std::shared_ptr<const CachedResult> result);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    std::size_t size = 0;
  };
  Stats GetStats() const;

 private:
  struct Entry {
    std::shared_ptr<const CachedResult> result;
    std::list<CacheKey>::iterator pos;  // position in lru_
  };

  mutable std::mutex mu_;
  const std::size_t max_entries_;
  std::list<CacheKey> lru_;  // front = most recently used
  std::unordered_map<CacheKey, Entry, CacheKeyHash> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace matryoshka::serve

#endif  // MATRYOSHKA_SERVE_MEMO_CACHE_H_
