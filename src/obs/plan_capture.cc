#include "obs/plan_capture.h"

#include <string>

#include "obs/json_writer.h"

namespace matryoshka::obs {

namespace {

void WriteDecisionJson(const Decision& d, std::ostream& os) {
  os << "{\"primitive\":\"" << JsonEscape(d.primitive) << "\",\"choice\":\""
     << JsonEscape(d.choice) << "\"";
  if (d.num_tags >= 0) os << ",\"num_tags\":" << d.num_tags;
  if (d.partitions >= 0) os << ",\"partitions\":" << d.partitions;
  if (d.scalar_bytes >= 0.0) {
    os << ",\"scalar_bytes\":" << JsonDouble(d.scalar_bytes);
  }
  if (d.primary_bytes >= 0.0) {
    os << ",\"primary_bytes\":" << JsonDouble(d.primary_bytes);
  }
  os << ",\"rationale\":\"" << JsonEscape(d.rationale) << "\"}";
}

std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void WritePlanJson(const TraceRecorder& recorder, std::ostream& os) {
  os << "[";
  bool first_run = true;
  for (const RunTrace& run : recorder.runs()) {
    if (run.IsEmpty()) continue;
    if (!first_run) os << ",";
    first_run = false;
    os << "\n{\"run\":\"" << JsonEscape(run.name) << "\",\"decisions\":[";
    bool first = true;
    for (const Decision& d : run.decisions) {
      if (!first) os << ",";
      first = false;
      os << "\n";
      WriteDecisionJson(d, os);
    }
    os << "]}";
  }
  os << "\n]";
}

void WritePlanDot(const TraceRecorder& recorder, std::ostream& os) {
  os << "digraph matryoshka_plan {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  int run_index = 0;
  for (const RunTrace& run : recorder.runs()) {
    if (run.IsEmpty()) continue;
    ++run_index;
    os << "  subgraph cluster_run" << run_index << " {\n"
       << "    label=\"" << DotEscape(run.name) << "\";\n";
    std::string prev;
    for (std::size_t i = 0; i < run.decisions.size(); ++i) {
      const Decision& d = run.decisions[i];
      std::string node =
          "d" + std::to_string(run_index) + "_" + std::to_string(i);
      // "\\n" is DOT's in-label line break; escape each fragment separately
      // so the breaks survive DotEscape.
      std::string label = DotEscape(d.primitive + " -> " + d.choice);
      if (d.num_tags >= 0) {
        label += "\\nnum_tags=" + std::to_string(d.num_tags);
      }
      if (d.partitions >= 0) {
        label += "\\npartitions=" + std::to_string(d.partitions);
      }
      label += "\\n" + DotEscape(d.rationale);
      os << "    " << node << " [label=\"" << label << "\"];\n";
      if (!prev.empty()) os << "    " << prev << " -> " << node << ";\n";
      prev = node;
    }
    os << "  }\n";
  }
  os << "}\n";
}

}  // namespace matryoshka::obs
