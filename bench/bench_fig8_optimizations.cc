// Figure 8 (Sec. 9.6): the lowering-phase optimizer's physical choices.
//  (left)  InnerBag x InnerScalar joins in PageRank: forced broadcast vs.
//          forced repartition vs. the optimizer, sweeping the number of
//          inner computations. The repartition join is much slower when
//          there are few inner computations (it shuffles the data-sized
//          side into a handful of partitions, starving the cluster), the
//          two converge at many inner computations, and the optimizer
//          tracks the better choice.
//  (right) half-lifted MapWithClosure in hyperparameter K-means: broadcast
//          the per-run means (the InnerScalar) vs. broadcast the shared
//          point set (the primary input) vs. the optimizer. Broadcasting
//          the primary input crashes with out-of-memory once the point set
//          outgrows a machine; the optimizer never does.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/optimizer.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/kmeans.h"
#include "workloads/pagerank.h"

namespace matryoshka::bench {
namespace {

constexpr uint64_t kSeed = 83;

const char* JoinName(core::JoinStrategy s) {
  switch (s) {
    case core::JoinStrategy::kAuto:
      return "optimizer";
    case core::JoinStrategy::kBroadcast:
      return "broadcast";
    case core::JoinStrategy::kRepartition:
      return "repartition";
  }
  return "?";
}

const char* CrossName(core::CrossStrategy s) {
  switch (s) {
    case core::CrossStrategy::kAuto:
      return "optimizer";
    case core::CrossStrategy::kBroadcastScalar:
      return "broadcast-means";
    case core::CrossStrategy::kBroadcastPrimary:
      return "broadcast-points";
  }
  return "?";
}

void BM_Fig8a_JoinStrategies(benchmark::State& state) {
  const int64_t groups = state.range(0);
  const auto strategy = static_cast<core::JoinStrategy>(state.range(1));
  constexpr int64_t kTotalEdges = 1 << 18;
  workloads::PageRankParams params;
  params.iterations = 10;
  core::OptimizerOptions opts;
  opts.join_strategy = strategy;

  engine::ClusterConfig cfg = PaperCluster();
  // The paper runs this at a 160 GB-class input (Fig. 8a caption).
  ScaleToTarget(&cfg, 160.0, kTotalEdges,
                sizeof(std::pair<int64_t, datagen::Edge>));
  auto data = datagen::GenerateGroupedEdges(
      kTotalEdges, groups, std::max<int64_t>(16, (1 << 16) / groups), 0.0,
      kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster, std::string("fig8a/join/") + JoinName(strategy),
            {groups});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state,
           workloads::PageRankMatryoshka(&cluster, bag, params, opts));
  }
  state.SetLabel(JoinName(strategy));
}

void BM_Fig8b_HalfLiftedStrategies(benchmark::State& state) {
  const int64_t runs = state.range(0);
  const auto strategy = static_cast<core::CrossStrategy>(state.range(1));
  // The half-lifted cross product materializes |points| x |runs| synthetic
  // elements per iteration; keep the synthetic set small (the data_scale
  // still models a 40 GB-class input).
  constexpr int64_t kTotalPoints = 1 << 15;
  workloads::KMeansParams params;
  params.k = 4;
  params.max_iterations = 5;
  params.epsilon = -1.0;
  core::OptimizerOptions opts;
  opts.cross_strategy = strategy;

  engine::ClusterConfig cfg = PaperCluster();
  // A 40 GB-class shared point set: broadcasting it (2x for the
  // deserialized build) cannot fit into one 22 GB machine.
  ScaleToTarget(&cfg, 40.0, kTotalPoints, sizeof(datagen::Point));
  auto data = datagen::GeneratePoints(kTotalPoints, 4, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster, std::string("fig8b/cross/") + CrossName(strategy),
            {runs});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::KMeansHyperparameterMatryoshka(
                      &cluster, bag, runs, params, opts));
  }
  state.SetLabel(CrossName(strategy));
}

void JoinArgs(benchmark::internal::Benchmark* b) {
  for (int64_t groups : {4, 16, 64, 256, 1024, 4096}) {
    for (int64_t s :
         {static_cast<int64_t>(core::JoinStrategy::kAuto),
          static_cast<int64_t>(core::JoinStrategy::kBroadcast),
          static_cast<int64_t>(core::JoinStrategy::kRepartition)}) {
      b->Args({groups, s});
    }
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

void CrossArgs(benchmark::internal::Benchmark* b) {
  for (int64_t runs : {4, 16, 64}) {
    for (int64_t s :
         {static_cast<int64_t>(core::CrossStrategy::kAuto),
          static_cast<int64_t>(core::CrossStrategy::kBroadcastScalar),
          static_cast<int64_t>(core::CrossStrategy::kBroadcastPrimary)}) {
      b->Args({runs, s});
    }
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

BENCHMARK(BM_Fig8a_JoinStrategies)->Apply(JoinArgs);
BENCHMARK(BM_Fig8b_HalfLiftedStrategies)->Apply(CrossArgs);

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
