#ifndef MATRYOSHKA_CORE_OPTIMIZER_H_
#define MATRYOSHKA_CORE_OPTIMIZER_H_

#include <cstdint>
#include <string>

#include "engine/cluster.h"
#include "obs/trace_recorder.h"

namespace matryoshka::core {

/// Physical implementation of an equi-join between the flat bags that
/// represent InnerBags / InnerScalars (Sec. 8.2).
enum class JoinStrategy {
  /// Decide at lowering time from InnerScalar sizes (the paper's optimizer).
  kAuto,
  /// Broadcast the (scalar) side, probe from the other side; no shuffle.
  kBroadcast,
  /// Hash-shuffle both sides on the tag.
  kRepartition,
};

/// Physical implementation of a half-lifted MapWithClosure — a cross
/// product between a plain bag (the primary input from outside the lifted
/// UDF) and an InnerScalar (the closure from inside it) (Sec. 8.3).
enum class CrossStrategy {
  /// Decide at lowering time: broadcast the InnerScalar when it has a
  /// single partition, otherwise broadcast whichever input is smaller per
  /// the size estimator.
  kAuto,
  /// Always broadcast the bag representing the InnerScalar.
  kBroadcastScalar,
  /// Always broadcast the primary input bag.
  kBroadcastPrimary,
};

/// Knobs controlling the lowering-phase optimizer. The defaults enable every
/// optimization; benchmarks force individual strategies to reproduce the
/// ablations of Fig. 8 and Sec. 9.6.
struct OptimizerOptions {
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  CrossStrategy cross_strategy = CrossStrategy::kAuto;
  /// Sec. 8.1: set the partition counts of InnerScalar-sized intermediates
  /// from the known InnerScalar size instead of the engine default.
  bool tune_partitions = true;
};

/// The lowering-phase optimizer (Sec. 8). Stateless: every decision is a
/// pure function of the cluster shape, the options, and the runtime
/// cardinalities tracked by the LiftingContext. With a trace recorder
/// attached, every decision is captured with its justifying cardinalities
/// (dump with obs::WritePlanJson / WritePlanDot); the decisions themselves
/// never change.
class Optimizer {
 public:
  /// Static planning over a cluster description (unit tests, tooling).
  /// Degraded-mode re-planning needs live cluster state — prefer the
  /// Cluster overload whenever a Cluster exists.
  Optimizer(const engine::ClusterConfig* config, OptimizerOptions options,
            obs::TraceRecorder* trace = nullptr)
      : config_(config), options_(options), trace_(trace) {}

  /// Cluster-aware planning: when the RecoveryPolicy enables degraded
  /// re-planning, partition counts, the repartition-vs-broadcast core
  /// threshold, and the broadcast memory budget follow the machines still
  /// alive after loss events instead of the static config.
  Optimizer(const engine::Cluster* cluster, OptimizerOptions options,
            obs::TraceRecorder* trace = nullptr)
      : cluster_(cluster),
        config_(&cluster->config()),
        options_(options),
        trace_(trace) {}

  const OptimizerOptions& options() const { return options_; }

  /// Sec. 8.1: number of partitions for a bag whose size equals the
  /// InnerScalar size (`num_tags` elements). Small InnerScalars get few
  /// partitions so per-partition overhead does not dominate.
  int64_t ScalarPartitions(int64_t num_tags) const {
    int64_t parts;
    const char* why;
    if (!options_.tune_partitions) {
      parts = planning_parallelism();
      why = "partition tuning disabled: engine default";
    } else if (num_tags <= 0) {
      parts = 1;
      why = "empty InnerScalar: one partition";
    } else if (num_tags < planning_parallelism()) {
      parts = num_tags;
      why = "one partition per tag (fewer tags than default parallelism)";
    } else {
      parts = planning_parallelism();
      why = "tags exceed default parallelism: engine default";
    }
    if (trace_ != nullptr) {
      obs::Decision d;
      d.primitive = "scalarPartitions";
      d.choice = std::to_string(parts);
      d.rationale = why;
      d.num_tags = num_tags;
      d.partitions = parts;
      trace_->AddDecision(d);
    }
    return parts;
  }

  /// Sec. 8.2: join between an InnerBag/InnerScalar and an InnerScalar of
  /// `num_tags` elements. "We choose a repartition join when there are
  /// enough elements in the InnerScalar to give work to all CPU cores.
  /// Otherwise, we choose a broadcast join."
  ///
  /// `broadcast_build_bytes` (optional, real bytes of the would-be broadcast
  /// build table) enables the degraded-mode fallback: under degraded
  /// re-planning a broadcast pick whose build no longer fits the shrunken
  /// broadcast memory budget is demoted to a repartition join at *planning*
  /// time (the engine's BroadcastJoin still has an execution-time fallback).
  JoinStrategy ChooseJoin(int64_t num_tags,
                          double broadcast_build_bytes = -1.0) const {
    JoinStrategy chosen;
    const char* why;
    if (options_.join_strategy != JoinStrategy::kAuto) {
      chosen = options_.join_strategy;
      why = "forced by OptimizerOptions";
    } else if (num_tags >= planning_cores()) {
      chosen = JoinStrategy::kRepartition;
      why = "enough tags to give work to all cores";
    } else if (degraded_replanning() && broadcast_build_bytes >= 0.0 &&
               broadcast_build_bytes > broadcast_budget()) {
      chosen = JoinStrategy::kRepartition;
      why = "degraded fallback: broadcast build no longer fits the "
            "shrunken cluster";
    } else {
      chosen = JoinStrategy::kBroadcast;
      why = "fewer tags than cores: repartitioning would idle slots";
    }
    if (trace_ != nullptr) {
      obs::Decision d;
      d.primitive = "tagJoin";
      d.choice =
          chosen == JoinStrategy::kRepartition ? "repartition" : "broadcast";
      d.rationale = why;
      d.num_tags = num_tags;
      if (broadcast_build_bytes >= 0.0) d.scalar_bytes = broadcast_build_bytes;
      trace_->AddDecision(d);
    }
    return chosen;
  }

  /// Sec. 8.3: which side of a half-lifted cross product to broadcast.
  /// `scalar_partitions` is the partition count of the InnerScalar's bag;
  /// byte sizes are real (scale-adjusted) estimates.
  CrossStrategy ChooseCross(int64_t scalar_partitions, double scalar_bytes,
                            double primary_bytes) const {
    CrossStrategy chosen;
    const char* why;
    if (options_.cross_strategy != CrossStrategy::kAuto) {
      chosen = options_.cross_strategy;
      why = "forced by OptimizerOptions";
    } else if (scalar_partitions <= 1) {
      // Single-partition InnerScalars are the common case (thanks to
      // ScalarPartitions) and are quick to check — broadcast them.
      chosen = CrossStrategy::kBroadcastScalar;
      why = "single-partition InnerScalar: broadcast it";
    } else if (scalar_bytes <= primary_bytes) {
      chosen = CrossStrategy::kBroadcastScalar;
      why = "InnerScalar side is the smaller estimate";
    } else {
      chosen = CrossStrategy::kBroadcastPrimary;
      why = "primary side is the smaller estimate";
    }
    if (trace_ != nullptr) {
      obs::Decision d;
      d.primitive = "halfLiftedCross";
      d.choice = chosen == CrossStrategy::kBroadcastScalar
                     ? "broadcast-scalar"
                     : "broadcast-primary";
      d.rationale = why;
      d.partitions = scalar_partitions;
      d.scalar_bytes = scalar_bytes;
      d.primary_bytes = primary_bytes;
      trace_->AddDecision(d);
    }
    return chosen;
  }

 private:
  // Degraded-aware planning inputs: with a live Cluster these follow the
  // machines still alive (when its policy opts in); config-only optimizers
  // and default policies see the static values.
  int64_t planning_parallelism() const {
    return cluster_ != nullptr ? cluster_->effective_parallelism()
                               : config_->default_parallelism;
  }
  int planning_cores() const {
    return cluster_ != nullptr ? cluster_->planning_cores()
                               : config_->total_cores();
  }
  double broadcast_budget() const {
    return cluster_ != nullptr ? cluster_->broadcast_memory_budget()
                               : config_->memory_per_machine_bytes;
  }
  bool degraded_replanning() const {
    return cluster_ != nullptr && config_->recovery.degraded_replanning;
  }

  const engine::Cluster* cluster_ = nullptr;
  const engine::ClusterConfig* config_;
  OptimizerOptions options_;
  obs::TraceRecorder* trace_;
};

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_OPTIMIZER_H_
