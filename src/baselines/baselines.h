#ifndef MATRYOSHKA_BASELINES_BASELINES_H_
#define MATRYOSHKA_BASELINES_BASELINES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/cluster.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

/// The two workarounds users of flat dataflow engines employ for
/// nested-parallel tasks (Sec. 1), plus a DIQL-like comparator. These are
/// the baselines every experiment in Sec. 9 compares against.
namespace matryoshka::baselines {

/// Outer-parallel workaround: parallelize over the groups only; each group
/// is materialized inside one task and processed by a *sequential* UDF.
///
/// `work(key, values)` really computes the per-group result in memory.
/// `cost_elements(key, values)` returns the number of element-passes the
/// sequential UDF performs (e.g. iterations * group size for K-means) —
/// charged to the cost model at weight `cost_weight`. `expansion` is the
/// UDF's working-set multiplier over the raw group bytes (hash maps, boxed
/// objects); the memory check fails the cluster with OutOfMemory when one
/// group's working set exceeds a task slot's budget.
///
/// The two failure modes of this workaround fall out of the model:
///  - fewer groups than cores => idle cores (makespan = max task),
///  - big/skewed groups => per-task OutOfMemory.
template <typename K, typename V, typename WorkFn, typename CostFn>
auto ProcessGroupsSequentially(
    const engine::Bag<std::pair<K, std::vector<V>>>& groups, WorkFn work,
    CostFn cost_elements, double expansion, double cost_weight = 1.0)
    -> engine::Bag<std::pair<
        K, std::decay_t<decltype(work(std::declval<const K&>(),
                                      std::declval<const std::vector<V>&>()))>>> {
  using R = std::decay_t<decltype(work(std::declval<const K&>(),
                                       std::declval<const std::vector<V>&>()))>;
  using Out = engine::Bag<std::pair<K, R>>;
  engine::Cluster* c = groups.cluster();
  if (!c->ok()) return Out(c);

  // One task per group: the whole group's sequential processing is a single
  // unit of scheduling (this is what caps the parallelism at #groups).
  std::vector<double> task_costs;
  double max_group_bytes = 0.0;
  for (const auto& part : groups.partitions()) {
    for (const auto& [k, vs] : part) {
      task_costs.push_back(c->ComputeCost(
          static_cast<double>(cost_elements(k, vs)) * groups.scale(),
          cost_weight));
      double bytes = 0.0;
      if (!vs.empty()) {
        bytes = EstimateSize(vs.front()) * static_cast<double>(vs.size());
      }
      max_group_bytes = std::max(max_group_bytes, bytes * groups.scale());
    }
  }
  c->CheckTaskMemory(max_group_bytes * expansion, "outer-parallel group UDF");
  if (!c->ok()) return Out(c);
  c->AccrueStage(task_costs, /*lineage_depth=*/1,
                 engine::StageContext{"outer-parallel[group-udf]"});

  typename Out::Partitions out(groups.partitions().size());
  ParallelFor(c->pool(), groups.partitions().size(), [&](std::size_t i) {
    for (const auto& [k, vs] : groups.partitions()[i]) {
      out[i].emplace_back(k, work(k, vs));
    }
  });
  return Out(c, std::move(out));
}

/// Inner-parallel workaround: a driver loop iterates over the groups
/// sequentially and processes each group with parallel engine operations.
///
/// Returns the distinct group keys (one job), and hands `per_group` a
/// *filter-derived* bag for each key — the Array[(K, Bag[V])] pattern of
/// Sec. 2.1, where producing each inner bag scans the full input. Every
/// engine action inside `per_group` launches its own job, so the total
/// job-launch overhead grows with (#groups x #actions-per-group), which is
/// exactly the overhead the paper attributes to this workaround.
template <typename K, typename V, typename PerGroup>
void ForEachGroupInnerParallel(const engine::Bag<std::pair<K, V>>& input,
                               PerGroup per_group) {
  engine::Cluster* c = input.cluster();
  if (!c->ok()) return;
  std::vector<K> keys = engine::Collect(engine::Distinct(engine::Keys(input)));
  for (const K& key : keys) {
    if (!c->ok()) return;
    auto group = engine::Values(engine::Filter(
        input,
        [key](const std::pair<K, V>& p) { return p.first == key; },
        /*weight=*/0.1));
    per_group(key, group);
  }
}

/// Configuration of the DIQL-like baseline (Sec. 9.4, Fig. 5-6): a
/// flattening system that (a) cannot flatten group-wise aggregation
/// programs like Bounce Rate and silently falls back to the outer-parallel
/// workaround, (b) does not support control flow at inner nesting levels at
/// all, and (c) performs no runtime optimization (no partition tuning, no
/// join/broadcast selection) and pays a constant interpretation overhead.
struct DiqlLikeOptions {
  /// Multiplier over the hand-written outer-parallel UDF cost (generated
  /// code without the fusion/combining a hand optimizer applies, boxed
  /// iterators between generated operators).
  double interpretation_overhead = 4.0;
  /// Working-set multiplier of the generated per-group processing (the
  /// generated pipeline streams part of its state, so this sits below the
  /// hand-written workaround's hash-map expansion).
  double group_expansion = 3.0;
};

}  // namespace matryoshka::baselines

#endif  // MATRYOSHKA_BASELINES_BASELINES_H_
