#ifndef MATRYOSHKA_CORE_INNER_SCALAR_H_
#define MATRYOSHKA_CORE_INNER_SCALAR_H_

#include <type_traits>
#include <utility>

#include "core/lifting_context.h"
#include "core/tag.h"
#include "core/tag_join.h"
#include "engine/bag.h"
#include "engine/ops.h"

namespace matryoshka::core {

/// The lifted representation of a scalar variable inside a lifted UDF
/// (Sec. 4.3). Where the original UDF held one value of type T per
/// invocation, the InnerScalar holds the values of *all* invocations as a
/// flat Bag[(Tag, T)], one element per tag.
///
/// Invariant: the tag is a unique key — each tag appears exactly once — and
/// the set of tags equals the context's tag set. This uniqueness is what the
/// optimizer exploits when sizing partitions and picking join algorithms.
template <typename T>
class InnerScalar {
 public:
  using Repr = engine::Bag<std::pair<Tag, T>>;

  InnerScalar(LiftingContext ctx, Repr repr)
      : ctx_(std::move(ctx)), repr_(std::move(repr)) {}

  const LiftingContext& ctx() const { return ctx_; }
  /// The flat bag representing this scalar: one (tag, value) pair per
  /// original UDF invocation.
  const Repr& repr() const { return repr_; }

  /// Extracts the values, dropping tags.
  engine::Bag<T> Flatten() const { return engine::Values(repr_); }

 private:
  LiftingContext ctx_;
  Repr repr_;
};

/// Lifted version of `b = f(a)` where a and b are scalars (Sec. 4.3):
/// applies f to the value of every tag. Resolved to
/// s'.map((t,x) => (t,f(x))).
template <typename T, typename F>
auto UnaryScalarOp(const InnerScalar<T>& s, F f, double weight = 1.0)
    -> InnerScalar<std::decay_t<decltype(f(std::declval<const T&>()))>> {
  using U = std::decay_t<decltype(f(std::declval<const T&>()))>;
  // Tags don't change: mapValues preserves any tag partitioning.
  auto out = engine::MapValues(s.repr(), f, weight);
  (void)static_cast<U*>(nullptr);
  return InnerScalar<U>(s.ctx(), std::move(out));
}

/// Lifted version of `c = f(a, b)` where a, b, c are scalars (Sec. 4.3):
/// brings together the two values belonging to the same original UDF
/// invocation with an equi-join on the tag (physical join chosen by the
/// optimizer), then applies f. Resolved to
/// a'.join(b').map((t,(x,y)) => (t,f(x,y))).
template <typename A, typename B, typename F>
auto BinaryScalarOp(const InnerScalar<A>& a, const InnerScalar<B>& b, F f,
                    double weight = 1.0)
    -> InnerScalar<std::decay_t<
        decltype(f(std::declval<const A&>(), std::declval<const B&>()))>> {
  using C = std::decay_t<
      decltype(f(std::declval<const A&>(), std::declval<const B&>()))>;
  auto joined = TagJoin(a.ctx(), a.repr(), b.repr());
  auto out = engine::MapValues(
      joined,
      [f](const std::pair<A, B>& p) { return f(p.first, p.second); }, weight);
  (void)static_cast<C*>(nullptr);
  return InnerScalar<C>(a.ctx(), std::move(out));
}

/// Lifts a plain driver-side constant into an InnerScalar holding that value
/// for every tag (the lifted-UDF closure case of Sec. 5.2, scalar flavor).
template <typename T>
InnerScalar<T> LiftConstant(const LiftingContext& ctx, T value) {
  auto out = engine::Map(ctx.tags(), [value](const Tag& t) {
    return std::pair<Tag, T>(t, value);
  });
  return InnerScalar<T>(ctx, std::move(out));
}

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_INNER_SCALAR_H_
