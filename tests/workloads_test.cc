// Cross-variant correctness tests for the four evaluation workloads: the
// Matryoshka, outer-parallel, and inner-parallel implementations must all
// reproduce the sequential driver-side reference (up to floating-point
// association). This is the repository-level statement of Theorem 2
// (flattening preserves program semantics).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/avg_distances.h"
#include "workloads/bounce_rate.h"
#include "workloads/connected_components.h"
#include "workloads/kmeans.h"
#include "workloads/pagerank.h"

namespace matryoshka::workloads {
namespace {

using engine::Cluster;
using engine::ClusterConfig;
using engine::Parallelize;

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 4;
  cfg.default_parallelism = 16;
  return cfg;
}

template <typename K, typename R>
std::map<K, R> AsMap(const std::vector<std::pair<K, R>>& v) {
  return std::map<K, R>(v.begin(), v.end());
}

// ---------- Bounce rate ----------

class BounceRateTest : public ::testing::TestWithParam<Variant> {};

TEST_P(BounceRateTest, MatchesReference) {
  auto visits = datagen::GenerateVisits(3000, 16, 0.0, 0.5, 7);
  auto ref = AsMap(BounceRateReference(visits));
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, visits, 8);
  auto result = RunBounceRate(&cluster, bag, GetParam());
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  auto got = AsMap(result.per_group);
  ASSERT_EQ(got.size(), ref.size());
  for (auto& [day, rate] : ref) {
    ASSERT_TRUE(got.count(day)) << "missing day " << day;
    EXPECT_NEAR(got[day], rate, 1e-12) << "day " << day;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BounceRateTest,
                         ::testing::Values(Variant::kMatryoshka,
                                           Variant::kOuterParallel,
                                           Variant::kInnerParallel,
                                           Variant::kDiqlLike),
                         [](const auto& info) {
                           std::string n = VariantName(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(BounceRateSkewTest, ZipfKeysStillCorrect) {
  auto visits = datagen::GenerateVisits(3000, 32, 1.1, 0.4, 11);
  auto ref = AsMap(BounceRateReference(visits));
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, visits, 8);
  auto result = BounceRateMatryoshka(&cluster, bag);
  ASSERT_TRUE(result.ok());
  auto got = AsMap(result.per_group);
  ASSERT_EQ(got.size(), ref.size());
  for (auto& [day, rate] : ref) EXPECT_NEAR(got[day], rate, 1e-12);
}

TEST(BounceRateJobsTest, MatryoshkaJobCountIndependentOfGroups) {
  Cluster cluster(TestConfig());
  for (int64_t days : {4, 64}) {
    auto visits = datagen::GenerateVisits(2000, days, 0.0, 0.5, 3);
    cluster.Reset();
    auto bag = Parallelize(&cluster, visits, 8);
    auto result = BounceRateMatryoshka(&cluster, bag);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.metrics.jobs, 3) << days << " days";
  }
}

TEST(BounceRateJobsTest, InnerParallelJobCountGrowsWithGroups) {
  Cluster cluster(TestConfig());
  auto visits = datagen::GenerateVisits(2000, 32, 0.0, 0.5, 3);
  auto bag = Parallelize(&cluster, visits, 8);
  auto result = BounceRateInnerParallel(&cluster, bag);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.metrics.jobs, 64);  // >= 2 jobs per day
}

// ---------- K-means (grouped) ----------

class KMeansTest : public ::testing::TestWithParam<Variant> {};

TEST_P(KMeansTest, MatchesReference) {
  KMeansParams params;
  params.k = 3;
  params.max_iterations = 8;
  params.epsilon = 1e-3;
  auto points = datagen::GenerateGroupedPoints(2000, 6, 3, 21);
  auto ref = AsMap(KMeansReference(points, params));
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, points, 8);
  auto result = RunKMeans(&cluster, bag, params, GetParam());
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  auto got = AsMap(result.per_group);
  ASSERT_EQ(got.size(), ref.size());
  for (auto& [run, model] : ref) {
    ASSERT_TRUE(got.count(run));
    const KMeansModel& g = got[run];
    EXPECT_EQ(g.iterations, model.iterations) << "run " << run;
    ASSERT_EQ(g.means.size(), model.means.size());
    EXPECT_NEAR(g.inertia, model.inertia,
                1e-6 * (1.0 + std::abs(model.inertia)))
        << "run " << run;
    for (std::size_t i = 0; i < g.means.size(); ++i) {
      for (std::size_t d = 0; d < g.means[i].size(); ++d) {
        EXPECT_NEAR(g.means[i][d], model.means[i][d], 1e-8);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ParallelVariants, KMeansTest,
                         ::testing::Values(Variant::kMatryoshka,
                                           Variant::kOuterParallel,
                                           Variant::kInnerParallel),
                         [](const auto& info) {
                           std::string n = VariantName(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(KMeansDiqlTest, DiqlVariantIsUnsupported) {
  KMeansParams params;
  Cluster cluster(TestConfig());
  auto bag = Parallelize(
      &cluster, datagen::GenerateGroupedPoints(100, 2, 2, 5), 4);
  auto result = RunKMeans(&cluster, bag, params, Variant::kDiqlLike);
  EXPECT_TRUE(result.status.IsUnsupported());
}

TEST(KMeansConvergenceTest, RunsConvergeAtDifferentIterations) {
  // The per-tag loop exit (Sec. 6.2 P1-P3) should be exercised: with
  // different groups, iteration counts should not all be equal.
  KMeansParams params;
  params.k = 3;
  params.max_iterations = 30;
  params.epsilon = 1e-2;
  auto points = datagen::GenerateGroupedPoints(3000, 8, 3, 31);
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, points, 8);
  auto result = KMeansMatryoshka(&cluster, bag, params);
  ASSERT_TRUE(result.ok());
  std::vector<int64_t> iters;
  for (auto& [run, m] : result.per_group) iters.push_back(m.iterations);
  std::sort(iters.begin(), iters.end());
  EXPECT_GT(iters.back(), iters.front())
      << "all runs converged at the same iteration; the test data is too "
         "uniform to exercise per-tag loop exits";
}

// ---------- K-means (hyperparameter mode) ----------

TEST(KMeansHyperTest, MatryoshkaMatchesInnerParallel) {
  KMeansParams params;
  params.k = 3;
  params.max_iterations = 6;
  params.epsilon = 1e-3;
  auto points = datagen::GeneratePoints(1500, 3, 17);
  Cluster c1(TestConfig()), c2(TestConfig());
  auto b1 = Parallelize(&c1, points, 8);
  auto b2 = Parallelize(&c2, points, 8);
  auto m = KMeansHyperparameterMatryoshka(&c1, b1, 5, params);
  auto i = KMeansHyperparameterInnerParallel(&c2, b2, 5, params);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(i.ok());
  auto gm = AsMap(m.per_group);
  auto gi = AsMap(i.per_group);
  ASSERT_EQ(gm.size(), 5u);
  ASSERT_EQ(gi.size(), 5u);
  for (auto& [run, model] : gi) {
    EXPECT_EQ(gm[run].iterations, model.iterations);
    EXPECT_NEAR(gm[run].inertia, model.inertia,
                1e-6 * (1.0 + std::abs(model.inertia)));
  }
}

TEST(KMeansHyperTest, ForcedCrossStrategiesAgree) {
  KMeansParams params;
  params.k = 2;
  params.max_iterations = 4;
  auto points = datagen::GeneratePoints(500, 2, 23);
  auto run = [&](core::CrossStrategy s) {
    Cluster c(TestConfig());
    core::OptimizerOptions opts;
    opts.cross_strategy = s;
    auto bag = Parallelize(&c, points, 6);
    auto r = KMeansHyperparameterMatryoshka(&c, bag, 3, params, opts);
    EXPECT_TRUE(r.ok());
    return r.per_group;
  };
  auto a = AsMap(run(core::CrossStrategy::kBroadcastScalar));
  auto b = AsMap(run(core::CrossStrategy::kBroadcastPrimary));
  ASSERT_EQ(a.size(), b.size());
  for (auto& [k, m] : a) {
    EXPECT_NEAR(m.inertia, b[k].inertia, 1e-6 * (1.0 + std::abs(m.inertia)));
  }
}

// ---------- PageRank ----------

class PageRankTest : public ::testing::TestWithParam<Variant> {};

TEST_P(PageRankTest, MatchesReference) {
  PageRankParams params;
  params.iterations = 5;
  auto edges = datagen::GenerateGroupedEdges(2000, 6, 24, 0.0, 13);
  auto ref = AsMap(PageRankReference(edges, params));
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, edges, 8);
  auto result = RunPageRank(&cluster, bag, params, GetParam());
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  auto got = AsMap(result.per_group);
  ASSERT_EQ(got.size(), ref.size());
  for (auto& [g, sum] : ref) {
    ASSERT_TRUE(got.count(g)) << "missing group " << g;
    EXPECT_NEAR(got[g], sum, 1e-9) << "group " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(ParallelVariants, PageRankTest,
                         ::testing::Values(Variant::kMatryoshka,
                                           Variant::kOuterParallel,
                                           Variant::kInnerParallel),
                         [](const auto& info) {
                           std::string n = VariantName(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(PageRankSkewTest, ZipfGroupsStillCorrect) {
  PageRankParams params;
  params.iterations = 4;
  auto edges = datagen::GenerateGroupedEdges(2000, 12, 24, 1.1, 19);
  auto ref = AsMap(PageRankReference(edges, params));
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, edges, 8);
  auto result = PageRankMatryoshka(&cluster, bag, params);
  ASSERT_TRUE(result.ok());
  auto got = AsMap(result.per_group);
  ASSERT_EQ(got.size(), ref.size());
  for (auto& [g, sum] : ref) EXPECT_NEAR(got[g], sum, 1e-9);
}

TEST(PageRankJobsTest, MatryoshkaJobsScaleWithIterationsNotGroups) {
  PageRankParams params;
  params.iterations = 5;
  Cluster cluster(TestConfig());
  auto edges = datagen::GenerateGroupedEdges(2000, 16, 16, 0.0, 23);
  auto bag = Parallelize(&cluster, edges, 8);
  auto result = PageRankMatryoshka(&cluster, bag, params);
  ASSERT_TRUE(result.ok());
  // ~1 job per lifted-loop iteration + constant overhead; far below
  // 16 groups x 5 iterations.
  EXPECT_LE(result.metrics.jobs, params.iterations + 4);
}

TEST(PageRankForcedJoinsTest, BroadcastAndRepartitionAgree) {
  PageRankParams params;
  params.iterations = 4;
  auto edges = datagen::GenerateGroupedEdges(1500, 8, 16, 0.0, 29);
  auto run = [&](core::JoinStrategy s) {
    Cluster c(TestConfig());
    core::OptimizerOptions opts;
    opts.join_strategy = s;
    auto bag = Parallelize(&c, edges, 8);
    auto r = PageRankMatryoshka(&c, bag, params, opts);
    EXPECT_TRUE(r.ok());
    return AsMap(r.per_group);
  };
  auto a = run(core::JoinStrategy::kBroadcast);
  auto b = run(core::JoinStrategy::kRepartition);
  ASSERT_EQ(a.size(), b.size());
  for (auto& [g, sum] : a) EXPECT_NEAR(sum, b[g], 1e-9);
}

// ---------- Connected components ----------

TEST(ConnectedComponentsTest, MatchesUnionFind) {
  auto edges = datagen::GenerateComponents(5, 12, 6, 37);
  auto ref = ConnectedComponentsReference(edges);
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, edges, 8);
  auto got = engine::Collect(ConnectedComponents(bag));
  ASSERT_TRUE(cluster.ok());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, ref);
}

TEST(ConnectedComponentsTest, SingleComponent) {
  auto edges = datagen::GenerateComponents(1, 8, 0, 41);
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, edges, 4);
  auto got = engine::Collect(ConnectedComponents(bag));
  std::set<int64_t> labels;
  for (auto& [c, v] : got) labels.insert(c);
  EXPECT_EQ(labels.size(), 1u);
  EXPECT_EQ(got.size(), 8u);
}

TEST(ConnectedComponentsTest, EdgesByComponentKeysEveryEdge) {
  auto edges = datagen::GenerateComponents(3, 6, 2, 43);
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, edges, 4);
  auto comps = ConnectedComponents(bag);
  auto keyed = EdgesByComponent(bag, comps);
  EXPECT_EQ(keyed.Size(), bag.Size());
  // Every edge's component equals the union-find component of its source.
  auto ref = ConnectedComponentsReference(edges);
  std::map<int64_t, int64_t> comp_of;
  for (auto& [c, v] : ref) comp_of[v] = c;
  for (auto& [c, e] : engine::Collect(keyed)) {
    EXPECT_EQ(c, comp_of[e.src]);
  }
}

// ---------- Average distances (3 levels) ----------

class AvgDistancesTest : public ::testing::TestWithParam<Variant> {};

TEST_P(AvgDistancesTest, MatchesReference) {
  auto edges = datagen::GenerateComponents(4, 8, 3, 47);
  auto ref = AsMap(AvgDistancesReference(edges));
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, edges, 6);
  auto result = RunAvgDistances(&cluster, bag, {}, GetParam());
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  auto got = AsMap(result.per_group);
  ASSERT_EQ(got.size(), ref.size());
  for (auto& [c, avg] : ref) {
    ASSERT_TRUE(got.count(c)) << "missing component " << c;
    EXPECT_NEAR(got[c], avg, 1e-9) << "component " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(ParallelVariants, AvgDistancesTest,
                         ::testing::Values(Variant::kMatryoshka,
                                           Variant::kOuterParallel,
                                           Variant::kInnerParallel),
                         [](const auto& info) {
                           std::string n = VariantName(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(AvgDistancesJobsTest, InnerParallelPaysJobsPerVertexPerStep) {
  auto edges = datagen::GenerateComponents(2, 6, 0, 53);
  Cluster c1(TestConfig()), c2(TestConfig());
  auto b1 = Parallelize(&c1, edges, 4);
  auto b2 = Parallelize(&c2, edges, 4);
  auto inner = AvgDistancesInnerParallel(&c1, b1, {});
  auto matry = AvgDistancesMatryoshka(&c2, b2, {});
  ASSERT_TRUE(inner.ok());
  ASSERT_TRUE(matry.ok());
  // 12 BFS instances x several steps each vs ~max-BFS-depth iterations.
  EXPECT_GT(inner.metrics.jobs, 3 * matry.metrics.jobs);
}

TEST(AvgDistancesTest, CycleGraphClosedForm) {
  // A single cycle of n vertices: average distance = sum over pairs of
  // min(k, n-k) / (n-1) per vertex. For n = 6: (1+1+2+2+3)/5 = 1.8.
  auto edges = datagen::GenerateComponents(1, 6, 0, 59);
  Cluster cluster(TestConfig());
  auto bag = Parallelize(&cluster, edges, 4);
  auto result = AvgDistancesMatryoshka(&cluster, bag, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.per_group.size(), 1u);
  EXPECT_NEAR(result.per_group[0].second, 1.8, 1e-9);
}

}  // namespace
}  // namespace matryoshka::workloads
