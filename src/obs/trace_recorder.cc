#include "obs/trace_recorder.h"

#include <cassert>
#include <utility>

#include "common/logging.h"

namespace matryoshka::obs {

const char* CategoryName(Category category) {
  switch (category) {
    case Category::kJobLaunch:
      return "job_launch";
    case Category::kCompute:
      return "compute";
    case Category::kTaskOverhead:
      return "task_overhead";
    case Category::kSpill:
      return "spill";
    case Category::kShuffle:
      return "shuffle";
    case Category::kBroadcast:
      return "broadcast";
    case Category::kCollect:
      return "collect";
    case Category::kRecovery:
      return "recovery";
    case Category::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

void TraceRecorder::StartRun() {
  if (!runs_.empty() && runs_.back().IsEmpty() && !runs_.back().reported) {
    runs_.back().name = name_hint_;
    return;
  }
  runs_.emplace_back();
  runs_.back().name = name_hint_;
}

RunTrace& TraceRecorder::current() {
  if (runs_.empty()) StartRun();
  return runs_.back();
}

void TraceRecorder::AddJob(const std::string& label, double begin_s,
                           double end_s) {
  RunTrace& run = current();
  JobSpan job;
  job.id = static_cast<int64_t>(run.jobs.size()) + 1;
  job.label = label;
  job.begin_s = begin_s;
  job.end_s = end_s;
  run.jobs.push_back(std::move(job));
}

int64_t TraceRecorder::AddStage(const char* label, int64_t job_id,
                                double begin_s, int64_t num_tasks,
                                int lineage_depth, double spill_factor) {
  RunTrace& run = current();
  StageSpan stage;
  stage.id = static_cast<int64_t>(run.stages.size()) + 1;
  stage.job_id = job_id;
  stage.label = label;
  stage.begin_s = begin_s;
  stage.end_s = begin_s;
  stage.num_tasks = num_tasks;
  stage.lineage_depth = lineage_depth;
  stage.spill_factor = spill_factor;
  run.stages.push_back(std::move(stage));
  return run.stages.back().id;
}

void TraceRecorder::AddTask(TaskSpan span) {
  RunTrace& run = current();
  if (span.slot > run.max_slot) run.max_slot = span.slot;
  run.tasks.push_back(std::move(span));
}

void TraceRecorder::EndStage(int64_t stage_id, double end_s,
                             int64_t critical_slot, double compute_s,
                             double overhead_s, double spill_s,
                             double fault_s) {
  RunTrace& run = current();
  MATRYOSHKA_DCHECK(stage_id >= 1 &&
                    stage_id <= static_cast<int64_t>(run.stages.size()));
  StageSpan& stage = run.stages[static_cast<std::size_t>(stage_id - 1)];
  stage.end_s = end_s;
  stage.critical_slot = critical_slot;
  stage.compute_s = compute_s;
  stage.overhead_s = overhead_s;
  stage.spill_s = spill_s;
  stage.fault_s = fault_s;
}

void TraceRecorder::AddDriverSpan(Category category, const char* label,
                                  double begin_s, double end_s, double bytes) {
  DriverSpan span;
  span.category = category;
  span.label = label;
  span.begin_s = begin_s;
  span.end_s = end_s;
  span.bytes = bytes;
  current().driver.push_back(std::move(span));
}

void TraceRecorder::AddInstant(const char* name, std::string detail,
                               double t_s) {
  InstantEvent event;
  event.name = name;
  event.detail = std::move(detail);
  event.t_s = t_s;
  current().instants.push_back(std::move(event));
}

void TraceRecorder::AddDecision(Decision decision) {
  current().decisions.push_back(std::move(decision));
}

}  // namespace matryoshka::obs
