#ifndef MATRYOSHKA_DATAGEN_DATAGEN_H_
#define MATRYOSHKA_DATAGEN_DATAGEN_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace matryoshka::datagen {

/// A page-visit event: (day, visitor IP). The bounce-rate task groups these
/// by day (Sec. 2.1).
using Visit = std::pair<int64_t, int64_t>;

/// A directed edge of a grouped graph.
struct Edge {
  int64_t src = 0;
  int64_t dst = 0;
  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

/// A point for K-means. Fixed dimensionality keeps elements trivially
/// copyable (cheap to shuffle and size-estimate).
using Point = std::array<double, 2>;
/// One K-means model: the current centroids.
using Means = std::vector<Point>;

/// Page-visit log generator for the bounce-rate task.
///
/// Produces `num_visits` events over `num_days` days. Day keys are drawn
/// uniformly when `zipf_s == 0`, else Zipf(zipf_s) (the skew experiment of
/// Sec. 9.5 draws grouping keys from a Zipf distribution). Visitors are
/// day-local; roughly `bounce_fraction` of them visit exactly one page, the
/// rest visit 2-4 pages, so every day has a meaningful bounce rate.
std::vector<Visit> GenerateVisits(int64_t num_visits, int64_t num_days,
                                  double zipf_s, double bounce_fraction,
                                  uint64_t seed);

/// Grouped random graphs for per-group PageRank (Sec. 9.1 groups the edges
/// of the input graph and computes a separate PageRank per group).
///
/// Produces `num_edges` edges over `num_groups` groups; group keys uniform
/// or Zipf(zipf_s). Each group g has its own vertex space of
/// `vertices_per_group` ids (globally disjoint across groups); edges pick
/// src/dst uniformly in the group's space. Note: with Zipf group keys, big
/// groups get more *edges* over the same vertex count (denser graphs).
std::vector<std::pair<int64_t, Edge>> GenerateGroupedEdges(
    int64_t num_edges, int64_t num_groups, int64_t vertices_per_group,
    double zipf_s, uint64_t seed);

/// A flat undirected graph made of `num_components` disjoint random
/// connected subgraphs (for connected components + average distances,
/// Sec. 2.2). Each component is a cycle (guaranteeing connectivity) of
/// `vertices_per_component` vertices plus `extra_edges_per_component`
/// random chords. Both edge directions are emitted.
std::vector<Edge> GenerateComponents(int64_t num_components,
                                     int64_t vertices_per_component,
                                     int64_t extra_edges_per_component,
                                     uint64_t seed);

/// Points for grouped K-means: `num_points` points spread over `num_groups`
/// groups (keys uniform), each group sampling from its own mixture of
/// `clusters_per_group` Gaussian blobs.
std::vector<std::pair<int64_t, Point>> GenerateGroupedPoints(
    int64_t num_points, int64_t num_groups, int64_t clusters_per_group,
    uint64_t seed);

/// Points for hyperparameter-mode K-means: one shared point set.
std::vector<Point> GeneratePoints(int64_t num_points, int64_t num_clusters,
                                  uint64_t seed);

/// `k` random initial centroids in the data range, seeded per run so
/// different hyperparameter configurations differ deterministically.
Means GenerateInitialMeans(int64_t k, uint64_t seed);

}  // namespace matryoshka::datagen

namespace std {
template <>
struct hash<matryoshka::datagen::Edge> {
  std::size_t operator()(const matryoshka::datagen::Edge& e) const {
    return std::hash<int64_t>{}(e.src * 1000003 + e.dst);
  }
};
}  // namespace std

#endif  // MATRYOSHKA_DATAGEN_DATAGEN_H_
