// Hyperparameter optimization with K-means (Sec. 2.3): try many random
// centroid initializations of the SAME data set in parallel, while every
// individual training step is also parallelized — the nested-parallel
// pattern current dataflow engines cannot express. The assignment step is
// the half-lifted MapWithClosure of Sec. 8.3: the shared points live
// outside the lifted UDF, the per-run means inside it, and the optimizer
// picks which side to broadcast.
//
// Build & run:  ./build/examples/hyperparameter_kmeans

#include <algorithm>
#include <cstdio>

#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/kmeans.h"

namespace m = matryoshka;

int main() {
  m::engine::ClusterConfig config;  // the paper's 25-machine cluster
  m::engine::Cluster cluster(config);

  // One shared point set, 16 random initializations.
  auto points = m::datagen::GeneratePoints(/*num_points=*/30000,
                                           /*num_clusters=*/4, /*seed=*/7);
  auto point_bag = m::engine::Parallelize(&cluster, points);

  m::workloads::KMeansParams params;
  params.k = 4;
  params.max_iterations = 15;
  params.epsilon = 1e-3;  // runs converge at different iterations

  auto result = m::workloads::KMeansHyperparameterMatryoshka(
      &cluster, point_bag, /*num_runs=*/16, params);
  if (!result.ok()) {
    std::printf("run failed: %s\n", result.status.ToString().c_str());
    return 1;
  }

  // Pick the best model (lowest inertia) — the point of the exercise.
  auto best = std::min_element(
      result.per_group.begin(), result.per_group.end(),
      [](const auto& a, const auto& b) {
        return a.second.inertia < b.second.inertia;
      });

  std::printf("%-5s %-12s %-10s\n", "run", "inertia", "iterations");
  for (const auto& [run, model] : result.per_group) {
    std::printf("%-5ld %-12.1f %-10ld%s\n", static_cast<long>(run),
                model.inertia, static_cast<long>(model.iterations),
                run == best->first ? "  <- best" : "");
  }
  std::printf(
      "\nbest run %ld: inertia %.1f after %ld iterations; centroids:\n",
      static_cast<long>(best->first), best->second.inertia,
      static_cast<long>(best->second.iterations));
  for (const auto& c : best->second.means) {
    std::printf("  (%.2f, %.2f)\n", c[0], c[1]);
  }
  std::printf(
      "\ncluster: %ld jobs, %.2fs simulated — independent of the number of "
      "initializations,\nbecause ALL runs advance inside one lifted loop "
      "(one job per iteration, Sec. 6).\n",
      static_cast<long>(result.metrics.jobs), result.time_s());
  return 0;
}
