// Fault-injection and recovery tests for the simulated cluster: a default
// (inactive) FaultPlan must reproduce the fault-free cost model bit for bit,
// active plans must be fully deterministic in the seed, faults may only
// stretch the simulated clock — never change computed results — and the
// retry/straggler/speculation/machine-loss policies must behave as
// documented. Also locks down the Reset() round trip and the sticky-status
// early-out of every operator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/extra_ops.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::engine {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.job_launch_overhead_s = 0.1;
  cfg.task_overhead_s = 0.01;
  cfg.per_element_cost_s = 1e-6;
  cfg.memory_object_overhead = 1.0;
  return cfg;
}

std::vector<std::pair<int64_t, int64_t>> PairData(int64_t n, int64_t keys) {
  std::vector<std::pair<int64_t, int64_t>> data;
  data.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) data.emplace_back(i % keys, 1);
  return data;
}

/// A small program exercising narrow ops, a shuffle, and actions; returns
/// the collected (sorted) result so tests can compare results across fault
/// plans.
std::vector<std::pair<int64_t, int64_t>> RunPipeline(Cluster* c) {
  auto bag = Parallelize(c, PairData(2000, 32), 8);
  auto mapped = MapValues(bag, [](int64_t v) { return v * 2; });
  auto filtered =
      Filter(mapped, [](const std::pair<int64_t, int64_t>& p) {
        return p.first % 7 != 3;
      });
  auto reduced = ReduceByKey(
      filtered, [](int64_t a, int64_t b) { return a + b; }, 8);
  Count(reduced);
  auto out = Collect(reduced);
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectMetricsEq(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.simulated_time_s, b.simulated_time_s);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.elements_processed, b.elements_processed);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  EXPECT_EQ(a.spill_events, b.spill_events);
  EXPECT_EQ(a.peak_task_bytes, b.peak_task_bytes);
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.machines_lost, b.machines_lost);
  EXPECT_EQ(a.recovery_time_s, b.recovery_time_s);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.driver_retries, b.driver_retries);
  EXPECT_EQ(a.plan_fallbacks, b.plan_fallbacks);
}

FaultPlan NoisyPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.task_failure_prob = 0.1;
  plan.max_task_retries = 8;
  plan.retry_backoff_s = 0.25;
  plan.straggler_fraction = 0.1;
  plan.straggler_slowdown = 3.0;
  plan.speculative_execution = true;
  plan.speculation_fraction = 0.1;
  return plan;
}

// --- Zero-fault identity ---

TEST(FaultsTest, InactivePlanMatchesFaultFreeModelBitForBit) {
  // A plan whose knobs are all at their defaults must not perturb a single
  // metric, even with a different seed: the pre-fault accounting path runs.
  ClusterConfig plain = SmallConfig();
  ClusterConfig with_inactive_plan = SmallConfig();
  with_inactive_plan.faults.seed = 0xdeadbeef;
  Cluster c1(plain), c2(with_inactive_plan);
  auto r1 = RunPipeline(&c1);
  auto r2 = RunPipeline(&c2);
  EXPECT_EQ(r1, r2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  ExpectMetricsEq(c1.metrics(), c2.metrics());
  EXPECT_EQ(c2.metrics().task_retries, 0);
  EXPECT_EQ(c2.metrics().failed_tasks, 0);
  EXPECT_EQ(c2.metrics().speculative_launches, 0);
  EXPECT_EQ(c2.metrics().machines_lost, 0);
  EXPECT_DOUBLE_EQ(c2.metrics().recovery_time_s, 0.0);
}

TEST(FaultsTest, ZeroProbabilityKnobsStayInactive) {
  FaultPlan plan;
  plan.seed = 7;
  EXPECT_FALSE(plan.active());
  plan.straggler_fraction = 0.5;  // slowdown still 1.0: no effect
  EXPECT_FALSE(plan.active());
  plan.straggler_slowdown = 2.0;
  EXPECT_TRUE(plan.active());
}

// --- Determinism ---

TEST(FaultsTest, SameSeedIsDeterministicAcrossClusters) {
  ClusterConfig cfg = SmallConfig();
  cfg.faults = NoisyPlan(42);
  Cluster c1(cfg), c2(cfg);
  auto r1 = RunPipeline(&c1);
  auto r2 = RunPipeline(&c2);
  EXPECT_EQ(r1, r2);
  ASSERT_TRUE(c1.ok());
  ExpectMetricsEq(c1.metrics(), c2.metrics());
  // The plan is noisy enough that something must actually have fired.
  EXPECT_GT(c1.metrics().failed_tasks, 0);
  EXPECT_GT(c1.metrics().task_retries, 0);
  EXPECT_GT(c1.metrics().speculative_launches, 0);
}

TEST(FaultsTest, ResetReplaysTheSameFaultsIdentically) {
  ClusterConfig cfg = SmallConfig();
  cfg.faults = NoisyPlan(7);
  cfg.faults.machine_loss_times_s = {0.5};
  Cluster c(cfg);
  RunPipeline(&c);
  ASSERT_TRUE(c.ok());
  const Metrics first = c.metrics();
  EXPECT_EQ(first.machines_lost, 1);
  c.Reset();
  EXPECT_EQ(c.available_machines(), cfg.num_machines);
  RunPipeline(&c);
  ExpectMetricsEq(first, c.metrics());
}

TEST(FaultsTest, DifferentSeedsPerturbTheClockDifferently) {
  ClusterConfig a = SmallConfig(), b = SmallConfig();
  a.faults = NoisyPlan(1);
  b.faults = NoisyPlan(2);
  Cluster ca(a), cb(b);
  auto ra = RunPipeline(&ca);
  auto rb = RunPipeline(&cb);
  EXPECT_EQ(ra, rb);  // results never depend on the seed
  EXPECT_NE(ca.metrics().simulated_time_s, cb.metrics().simulated_time_s);
}

// --- Faults stretch the clock, never the results ---

TEST(FaultsTest, FaultsIncreaseSimulatedTimeButNotResults) {
  ClusterConfig clean = SmallConfig();
  ClusterConfig faulty = SmallConfig();
  faulty.faults.seed = 3;
  faulty.faults.task_failure_prob = 0.3;
  faulty.faults.max_task_retries = 10;
  Cluster cc(clean), cf(faulty);
  auto rc = RunPipeline(&cc);
  auto rf = RunPipeline(&cf);
  ASSERT_TRUE(cf.ok()) << cf.status().ToString();
  EXPECT_EQ(rc, rf);
  EXPECT_GT(cf.metrics().simulated_time_s, cc.metrics().simulated_time_s);
  // Bookkeeping that does not depend on the clock is untouched.
  EXPECT_EQ(cf.metrics().jobs, cc.metrics().jobs);
  EXPECT_EQ(cf.metrics().stages, cc.metrics().stages);
  EXPECT_EQ(cf.metrics().tasks, cc.metrics().tasks);
  EXPECT_EQ(cf.metrics().elements_processed, cc.metrics().elements_processed);
  EXPECT_EQ(cf.metrics().shuffle_bytes, cc.metrics().shuffle_bytes);
}

TEST(FaultsTest, RetriesAreCountedAndChargedAsRecovery) {
  ClusterConfig cfg = SmallConfig();
  cfg.faults.seed = 11;
  cfg.faults.task_failure_prob = 0.5;
  cfg.faults.max_task_retries = 16;
  cfg.faults.retry_backoff_s = 0.125;
  Cluster c(cfg);
  c.AccrueStage(std::vector<double>(64, 0.1));
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c.metrics().failed_tasks, 0);
  EXPECT_GT(c.metrics().task_retries, 0);
  // Every counted retry follows a counted failure.
  EXPECT_GE(c.metrics().failed_tasks, c.metrics().task_retries);
  EXPECT_GT(c.metrics().recovery_time_s, 0.0);
}

// --- Retry exhaustion: non-recoverable, distinct from OOM ---

TEST(FaultsTest, RetryExhaustionFailsWithTaskFailedNotOom) {
  ClusterConfig cfg = SmallConfig();
  cfg.faults.seed = 5;
  cfg.faults.task_failure_prob = 1.0;  // every attempt fails
  cfg.faults.max_task_retries = 2;
  Cluster c(cfg);
  c.AccrueStage({1.0});
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsTaskFailed());
  EXPECT_FALSE(c.status().IsOutOfMemory());
  EXPECT_EQ(c.metrics().failed_tasks, 3);   // initial attempt + 2 retries
  EXPECT_EQ(c.metrics().task_retries, 2);   // bounded by the budget
}

TEST(FaultsTest, TaskFailureIsStickyLikeOom) {
  ClusterConfig cfg = SmallConfig();
  cfg.faults.seed = 5;
  cfg.faults.task_failure_prob = 1.0;
  cfg.faults.max_task_retries = 0;
  Cluster c(cfg);
  auto bag = Parallelize(&c, PairData(100, 4), 4);
  auto mapped = MapValues(bag, [](int64_t v) { return v + 1; });  // dies here
  EXPECT_FALSE(c.ok());
  const double frozen = c.metrics().simulated_time_s;
  const int64_t jobs = c.metrics().jobs;
  auto more = Map(mapped, [](const std::pair<int64_t, int64_t>& p) {
    return p.second;
  });
  EXPECT_EQ(more.Size(), 0);
  EXPECT_EQ(Count(more), 0);
  EXPECT_EQ(c.metrics().simulated_time_s, frozen);
  EXPECT_EQ(c.metrics().jobs, jobs);
}

// --- Stragglers and speculation ---

TEST(FaultsTest, StragglersStretchTheMakespan) {
  ClusterConfig clean = SmallConfig();
  ClusterConfig slow = SmallConfig();
  slow.faults.seed = 13;
  slow.faults.straggler_fraction = 1.0;  // every task straggles...
  slow.faults.straggler_slowdown = 10.0;  // ...ten times slower
  Cluster cc(clean), cs(slow);
  const std::vector<double> costs(16, 1.0);
  cc.AccrueStage(costs);
  cs.AccrueStage(costs);
  EXPECT_GT(cs.metrics().simulated_time_s,
            9.0 * cc.metrics().simulated_time_s);
  EXPECT_EQ(cs.metrics().failed_tasks, 0);  // slow is not failed
}

TEST(FaultsTest, SpeculationRescuesStragglersAndIsCounted) {
  ClusterConfig without = SmallConfig();
  without.faults.seed = 17;
  without.faults.straggler_fraction = 0.05;
  without.faults.straggler_slowdown = 100.0;
  ClusterConfig with = without;
  with.faults.speculative_execution = true;
  with.faults.speculation_fraction = 0.2;
  Cluster cw(without), cs(with);
  const std::vector<double> costs(64, 1.0);
  cw.AccrueStage(costs);
  cs.AccrueStage(costs);
  // The duplicate of a 100x straggler re-draws its straggler fate and (at
  // this seed) finishes first, cutting the stage makespan.
  EXPECT_LT(cs.metrics().simulated_time_s, cw.metrics().simulated_time_s);
  EXPECT_EQ(cs.metrics().speculative_launches, 12);  // floor(64 * 0.2)
  EXPECT_EQ(cw.metrics().speculative_launches, 0);
}

TEST(FaultsTest, SpeculativeCopyCanRescueAnExhaustedTask) {
  // One task, failure probability tuned so the primary copy exhausts its
  // only attempt but the speculative copy succeeds: the run survives.
  ClusterConfig cfg = SmallConfig();
  cfg.faults.max_task_retries = 0;
  cfg.faults.speculative_execution = true;
  cfg.faults.speculation_fraction = 1.0;
  // Find a seed where the primary fails and the duplicate succeeds; the
  // draws are deterministic, so scanning seeds is stable forever.
  bool found = false;
  for (uint64_t seed = 0; seed < 64 && !found; ++seed) {
    cfg.faults.seed = seed;
    cfg.faults.task_failure_prob = 0.5;
    Cluster probe(cfg);
    probe.AccrueStage({1.0});
    if (probe.ok() && probe.metrics().failed_tasks == 1) {
      EXPECT_EQ(probe.metrics().speculative_launches, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- Machine loss and lineage ---

TEST(FaultsTest, MachineLossChargesRecoveryAndRemovesTheMachine) {
  ClusterConfig clean = SmallConfig();
  ClusterConfig lossy = SmallConfig();
  lossy.faults.machine_loss_times_s = {0.5};
  Cluster cc(clean), cl(lossy);
  const std::vector<double> costs(8, 1.0);  // makespan > 0.5: loss mid-stage
  cc.AccrueStage(costs);
  cl.AccrueStage(costs);
  EXPECT_EQ(cl.metrics().machines_lost, 1);
  EXPECT_EQ(cl.available_machines(), 3);
  EXPECT_GT(cl.metrics().recovery_time_s, 0.0);
  EXPECT_GT(cl.metrics().simulated_time_s, cc.metrics().simulated_time_s);
  EXPECT_TRUE(cl.ok());  // lineage recompute recovers the lost partitions
}

TEST(FaultsTest, MachineLossReducesSlotsForLaterStages) {
  ClusterConfig cfg = SmallConfig();
  cfg.num_machines = 2;
  cfg.cores_per_machine = 2;
  cfg.faults.machine_loss_times_s = {0.05};
  Cluster lossy(cfg);
  lossy.BeginJob("warmup");  // clock passes 0.05: the event fires idle
  EXPECT_EQ(lossy.metrics().machines_lost, 1);
  EXPECT_DOUBLE_EQ(lossy.metrics().recovery_time_s, 0.0);  // nothing ran
  const double before = lossy.metrics().simulated_time_s;
  lossy.AccrueStage(std::vector<double>(8, 1.0));
  const double lossy_stage = lossy.metrics().simulated_time_s - before;

  ClusterConfig full = SmallConfig();
  full.num_machines = 2;
  full.cores_per_machine = 2;
  Cluster healthy(full);
  healthy.AccrueStage(std::vector<double>(8, 1.0));
  // 8 x 1s tasks: 4 waves on the surviving 2 slots vs 2 waves on 4 slots.
  EXPECT_NEAR(lossy_stage, 2.0 * healthy.metrics().simulated_time_s, 1e-9);
}

TEST(FaultsTest, TheLastMachineNeverDies) {
  ClusterConfig cfg = SmallConfig();
  cfg.num_machines = 2;
  cfg.faults.machine_loss_times_s = {0.0, 0.0, 0.0};
  Cluster c(cfg);
  c.BeginJob("a");
  c.AccrueStage({1.0});
  EXPECT_EQ(c.metrics().machines_lost, 1);
  EXPECT_EQ(c.available_machines(), 1);
  EXPECT_TRUE(c.ok());
}

TEST(FaultsTest, DeeperLineageCostsProportionallyMoreRecovery) {
  ClusterConfig cfg = SmallConfig();
  cfg.faults.machine_loss_times_s = {0.5};
  Cluster shallow(cfg), deep(cfg);
  const std::vector<double> costs(8, 1.0);
  shallow.AccrueStage(costs, /*lineage_depth=*/1);
  deep.AccrueStage(costs, /*lineage_depth=*/5);
  ASSERT_GT(shallow.metrics().recovery_time_s, 0.0);
  EXPECT_NEAR(deep.metrics().recovery_time_s,
              5.0 * shallow.metrics().recovery_time_s, 1e-9);
}

TEST(FaultsTest, LineageDepthGrowsNarrowAndResetsAtShuffles) {
  Cluster c(SmallConfig());
  auto bag = Parallelize(&c, PairData(256, 16), 4);
  EXPECT_EQ(bag.lineage_depth(), 1);
  auto m = MapValues(bag, [](int64_t v) { return v + 1; });
  EXPECT_EQ(m.lineage_depth(), 2);
  auto f = Filter(m, [](const std::pair<int64_t, int64_t>&) { return true; });
  EXPECT_EQ(f.lineage_depth(), 3);
  auto s = Sample(f, 1.0, 99);
  EXPECT_EQ(s.lineage_depth(), 4);
  // A shuffle cuts the chain: only work since the last wide op re-runs.
  auto r = ReduceByKey(s, [](int64_t a, int64_t b) { return a + b; }, 4);
  EXPECT_EQ(r.lineage_depth(), 1);
  // The co-partitioned (narrow) reduce keeps growing it.
  auto r2 = ReduceByKey(r, [](int64_t a, int64_t b) { return a + b; }, 4);
  EXPECT_EQ(r2.lineage_depth(), 2);
  auto u = Union(f, s);
  EXPECT_EQ(u.lineage_depth(), 4);  // metadata-only: max of the inputs
}

// --- The paper-spirit claim: many small jobs degrade faster ---

TEST(FaultsTest, ManyJobStrategiesDegradeFasterUnderFaults) {
  // Same total single-core work, two shapes: the inner-parallel workaround
  // launches many jobs of tiny tasks, Matryoshka a few jobs of chunky
  // tasks. Retry backoff is charged per failed task, so the many-task shape
  // pays disproportionally once failures arrive.
  FaultPlan plan;
  plan.seed = 2021;
  plan.task_failure_prob = 0.02;
  plan.max_task_retries = 6;
  plan.retry_backoff_s = 0.5;

  auto run_shape = [](const ClusterConfig& cfg, int jobs, int tasks_per_job,
                      double cost_per_task) {
    Cluster c(cfg);
    for (int j = 0; j < jobs; ++j) {
      c.BeginJob("stage");
      c.AccrueStage(std::vector<double>(
          static_cast<std::size_t>(tasks_per_job), cost_per_task));
    }
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.metrics().simulated_time_s;
  };

  ClusterConfig clean = SmallConfig();
  ClusterConfig faulty = SmallConfig();
  faulty.faults = plan;
  // 200 jobs x 32 tasks x 10ms  ==  2 jobs x 32 tasks x 1s  (64s total).
  const double inner_clean = run_shape(clean, 200, 32, 0.01);
  const double inner_faulty = run_shape(faulty, 200, 32, 0.01);
  const double matry_clean = run_shape(clean, 2, 32, 1.0);
  const double matry_faulty = run_shape(faulty, 2, 32, 1.0);
  const double inner_degradation = inner_faulty / inner_clean;
  const double matry_degradation = matry_faulty / matry_clean;
  EXPECT_GT(inner_degradation, 1.0);
  EXPECT_GT(matry_degradation, 1.0);
  EXPECT_GT(inner_degradation, 2.0 * matry_degradation);
}

// --- Reset round trip (satellite) ---

TEST(FaultsTest, ResetRoundTripZeroesEveryMetricAndClearsStatus) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 4096.0;
  cfg.faults = NoisyPlan(23);
  cfg.faults.machine_loss_times_s = {0.01};
  Cluster c(cfg);
  // Accrue a bit of everything: jobs, stages, shuffle, broadcast, spill,
  // memory peaks, faults — then blow up with a giant group.
  auto bag = Parallelize(&c, PairData(512, 1), 4);
  c.AccrueBroadcast(128.0);
  c.SpillFactor(1e9);
  GroupByKey(bag, 4);  // one giant group: OOM
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsOutOfMemory());

  c.Reset();
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.status().ok());
  EXPECT_EQ(c.available_machines(), cfg.num_machines);
  ExpectMetricsEq(c.metrics(), Metrics());
  EXPECT_DOUBLE_EQ(c.metrics().simulated_time_s, 0.0);
  EXPECT_EQ(c.metrics().spill_events, 0);
  EXPECT_DOUBLE_EQ(c.metrics().spilled_bytes, 0.0);
  EXPECT_DOUBLE_EQ(c.metrics().peak_task_bytes, 0.0);
  EXPECT_DOUBLE_EQ(c.metrics().peak_machine_bytes, 0.0);
}

TEST(FaultsTest, ResetReArmsMachineLossUnderActiveRecoveryPolicy) {
  // Reset must re-arm machine-loss events and replay runs bit-identically
  // with the recovery features (auto-checkpoint + degraded re-planning +
  // retries) switched on, not just under the default policy.
  ClusterConfig cfg = SmallConfig();
  cfg.faults = NoisyPlan(7);
  cfg.faults.machine_loss_times_s = {0.5};
  cfg.recovery.max_driver_retries = 4;
  cfg.recovery.auto_checkpoint = true;
  cfg.recovery.min_checkpoint_lineage = 2;
  cfg.recovery.checkpoint_bytes_per_s = 1e12;  // checkpoints almost free
  cfg.recovery.degraded_replanning = true;
  Cluster c(cfg);
  auto r1 = RunPipeline(&c);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  const Metrics first = c.metrics();
  EXPECT_EQ(first.machines_lost, 1);
  c.Reset();
  EXPECT_EQ(c.available_machines(), cfg.num_machines);
  EXPECT_EQ(c.metrics().checkpoints_written, 0);
  EXPECT_EQ(c.metrics().driver_retries, 0);
  auto r2 = RunPipeline(&c);
  EXPECT_EQ(r1, r2);
  ExpectMetricsEq(first, c.metrics());
}

// --- Sticky-status early-out of every operator (satellite) ---

TEST(FaultsTest, EveryOperatorEarlyOutsEmptyAfterFailWithoutAdvancingClock) {
  Cluster c(SmallConfig());
  auto pairs = Parallelize(&c, PairData(200, 8), 4);
  auto ints = Keys(pairs);
  c.Fail(Status::Internal("injected"));
  ASSERT_FALSE(c.ok());
  const double frozen = c.metrics().simulated_time_s;
  const int64_t stages = c.metrics().stages;
  const int64_t jobs = c.metrics().jobs;

  // ops.h
  EXPECT_EQ(Map(ints, [](int64_t x) { return x; }).Size(), 0);
  EXPECT_EQ(Filter(ints, [](int64_t) { return true; }).Size(), 0);
  EXPECT_EQ(FlatMap(ints, [](int64_t x) {
              return std::vector<int64_t>{x};
            }).Size(),
            0);
  EXPECT_EQ(MapPartitions(ints, [](const std::vector<int64_t>& p) {
              return p;
            }).Size(),
            0);
  EXPECT_EQ(Keys(pairs).Size(), 0);
  EXPECT_EQ(Values(pairs).Size(), 0);
  EXPECT_EQ(MapValues(pairs, [](int64_t v) { return v; }).Size(), 0);
  EXPECT_EQ(FlatMapValues(pairs, [](int64_t v) {
              return std::vector<int64_t>{v};
            }).Size(),
            0);
  EXPECT_EQ(Union(ints, ints).Size(), 0);
  EXPECT_EQ(ZipWithUniqueId(ints).Size(), 0);
  EXPECT_EQ(Count(ints), 0);
  EXPECT_FALSE(NotEmpty(ints));
  EXPECT_FALSE(Reduce(ints, [](int64_t a, int64_t b) { return a + b; })
                   .has_value());
  EXPECT_TRUE(Collect(ints).empty());

  // shuffle.h
  EXPECT_EQ(Repartition(ints, 4).Size(), 0);
  EXPECT_EQ(PartitionByKey(pairs, 4).Size(), 0);
  EXPECT_EQ(
      ReduceByKey(pairs, [](int64_t a, int64_t b) { return a + b; }, 4).Size(),
      0);
  EXPECT_EQ(GroupByKey(pairs, 4).Size(), 0);
  EXPECT_EQ(Distinct(ints, 4).Size(), 0);

  // join.h
  EXPECT_EQ(RepartitionJoin(pairs, pairs, 4).Size(), 0);
  EXPECT_EQ(BroadcastJoin(pairs, pairs).Size(), 0);
  EXPECT_EQ(LeftOuterJoin(pairs, pairs, 4).Size(), 0);
  EXPECT_EQ(CoGroup(pairs, pairs, 4).Size(), 0);
  EXPECT_EQ(Cartesian(ints, ints).Size(), 0);

  // extra_ops.h
  EXPECT_EQ(Sample(ints, 1.0, 1).Size(), 0);
  EXPECT_EQ(Subtract(ints, ints, 4).Size(), 0);
  EXPECT_EQ(Intersection(ints, ints, 4).Size(), 0);
  EXPECT_EQ(AggregateByKey(
                pairs, int64_t{0},
                [](int64_t a, int64_t v) { return a + v; },
                [](int64_t a, int64_t b) { return a + b; }, 4)
                .Size(),
            0);
  EXPECT_TRUE(TopK(ints, 3, std::less<int64_t>()).empty());

  // No operator advanced the simulated clock or launched anything.
  EXPECT_EQ(c.metrics().simulated_time_s, frozen);
  EXPECT_EQ(c.metrics().stages, stages);
  EXPECT_EQ(c.metrics().jobs, jobs);
  EXPECT_TRUE(c.status().message() == "injected");
}

}  // namespace
}  // namespace matryoshka::engine
