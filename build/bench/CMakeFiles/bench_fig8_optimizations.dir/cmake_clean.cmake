file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_optimizations.dir/bench_fig8_optimizations.cc.o"
  "CMakeFiles/bench_fig8_optimizations.dir/bench_fig8_optimizations.cc.o.d"
  "bench_fig8_optimizations"
  "bench_fig8_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
