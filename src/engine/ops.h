#ifndef MATRYOSHKA_ENGINE_OPS_H_
#define MATRYOSHKA_ENGINE_OPS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "engine/bag.h"
#include "engine/cluster.h"
#include "engine/recovery.h"

/// Narrow (pipelined) transformations and actions of the flat dataflow
/// engine. Wide (shuffling) operators live in shuffle.h and join.h.
///
/// Conventions shared by every operator:
///  - `weight` is the relative CPU cost of the operator's UDF per element
///    (1.0 = a trivial projection). The cost model charges
///    synthetic_elements * bag.scale() * per_element_cost * weight.
///  - Element-wise operators propagate the input bag's scale to the output.
///  - Operators are no-ops returning empty results once the owning cluster
///    is in a failed state (sticky status; check cluster->status() at the
///    end of a program).
///  - Actions (Count, Collect, Reduce, NotEmpty, ...) charge one job-launch
///    overhead, mirroring Spark where every action triggers a job.
namespace matryoshka::engine {

namespace internal {

/// Per-task costs of scanning each partition once at the given UDF weight.
template <typename T>
std::vector<double> ScanCosts(const Bag<T>& bag, double weight) {
  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(bag.num_partitions()));
  for (const auto& part : bag.partitions()) {
    costs.push_back(bag.cluster()->ComputeCost(
        static_cast<double>(part.size()) * bag.scale(), weight));
  }
  return costs;
}

template <typename T>
void ChargeScanStage(const Bag<T>& bag, double weight,
                     const char* label = "scan") {
  Cluster* c = bag.cluster();
  if (!c->ok()) return;
  c->mutable_metrics().elements_processed +=
      static_cast<int64_t>(bag.RealSize());
  c->AccrueStage(ScanCosts(bag, weight), bag.lineage_depth(),
                 StageContext{label});
}

}  // namespace internal

/// Applies `f` to every element. f: T -> U.
template <typename T, typename F>
auto Map(const Bag<T>& bag, F f, double weight = 1.0)
    -> Bag<std::decay_t<decltype(f(std::declval<const T&>()))>> {
  using U = std::decay_t<decltype(f(std::declval<const T&>()))>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<U>(c);
  internal::ChargeScanStage(bag, weight, "map");
  typename Bag<U>::Partitions out(bag.partitions().size());
  ParallelFor(c->pool(), bag.partitions().size(), [&](std::size_t i) {
    const auto& part = bag.partitions()[i];
    out[i].reserve(part.size());
    for (const auto& x : part) out[i].push_back(f(x));
  });
  return internal::MaybeAutoCheckpoint(
      Bag<U>(c, std::move(out), bag.scale(), 0, bag.lineage_depth() + 1));
}

/// Keeps the elements for which `pred` returns true.
template <typename T, typename P>
Bag<T> Filter(const Bag<T>& bag, P pred, double weight = 1.0) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<T>(c);
  internal::ChargeScanStage(bag, weight, "filter");
  typename Bag<T>::Partitions out(bag.partitions().size());
  ParallelFor(c->pool(), bag.partitions().size(), [&](std::size_t i) {
    for (const auto& x : bag.partitions()[i]) {
      if (pred(x)) out[i].push_back(x);
    }
  });
  // Filtering never moves elements: key partitioning survives.
  return internal::MaybeAutoCheckpoint(Bag<T>(
      c, std::move(out), bag.scale(), bag.key_partitions(),
      bag.lineage_depth() + 1));
}

/// Applies `f` to every element and concatenates the results.
/// f: T -> iterable of U.
template <typename T, typename F>
auto FlatMap(const Bag<T>& bag, F f, double weight = 1.0)
    -> Bag<std::decay_t<decltype(*std::begin(f(std::declval<const T&>())))>> {
  using U = std::decay_t<decltype(*std::begin(f(std::declval<const T&>())))>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<U>(c);
  internal::ChargeScanStage(bag, weight, "flatMap");
  typename Bag<U>::Partitions out(bag.partitions().size());
  ParallelFor(c->pool(), bag.partitions().size(), [&](std::size_t i) {
    for (const auto& x : bag.partitions()[i]) {
      for (auto&& y : f(x)) out[i].push_back(std::move(y));
    }
  });
  return internal::MaybeAutoCheckpoint(
      Bag<U>(c, std::move(out), bag.scale(), 0, bag.lineage_depth() + 1));
}

/// Transforms whole partitions. f: const std::vector<T>& -> std::vector<U>.
template <typename T, typename F>
auto MapPartitions(const Bag<T>& bag, F f, double weight = 1.0)
    -> Bag<typename std::decay_t<
        decltype(f(std::declval<const std::vector<T>&>()))>::value_type> {
  using U = typename std::decay_t<
      decltype(f(std::declval<const std::vector<T>&>()))>::value_type;
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<U>(c);
  internal::ChargeScanStage(bag, weight, "mapPartitions");
  typename Bag<U>::Partitions out(bag.partitions().size());
  ParallelFor(c->pool(), bag.partitions().size(), [&](std::size_t i) {
    out[i] = f(bag.partitions()[i]);
  });
  return internal::MaybeAutoCheckpoint(
      Bag<U>(c, std::move(out), bag.scale(), 0, bag.lineage_depth() + 1));
}

/// First components of a bag of pairs.
template <typename K, typename V>
Bag<K> Keys(const Bag<std::pair<K, V>>& bag) {
  return Map(bag, [](const std::pair<K, V>& p) { return p.first; });
}

/// Second components of a bag of pairs.
template <typename K, typename V>
Bag<V> Values(const Bag<std::pair<K, V>>& bag) {
  return Map(bag, [](const std::pair<K, V>& p) { return p.second; });
}

/// Applies `f` to the value of every pair, keeping keys, and — since keys
/// do not change — preserving the bag's key partitioning (Spark's
/// mapValues-with-preservesPartitioning).
template <typename K, typename V, typename F>
auto MapValues(const Bag<std::pair<K, V>>& bag, F f, double weight = 1.0)
    -> Bag<std::pair<K, std::decay_t<decltype(f(std::declval<const V&>()))>>> {
  using W = std::decay_t<decltype(f(std::declval<const V&>()))>;
  using Out = std::pair<K, W>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<Out>(c);
  internal::ChargeScanStage(bag, weight, "mapValues");
  typename Bag<Out>::Partitions out(bag.partitions().size());
  ParallelFor(c->pool(), bag.partitions().size(), [&](std::size_t i) {
    const auto& part = bag.partitions()[i];
    out[i].reserve(part.size());
    for (const auto& [k, v] : part) out[i].emplace_back(k, f(v));
  });
  return internal::MaybeAutoCheckpoint(Bag<Out>(
      c, std::move(out), bag.scale(), bag.key_partitions(),
      bag.lineage_depth() + 1));
}

/// Applies `f` to the value of every pair and emits one output pair per
/// produced value, under the same key; preserves key partitioning.
/// f: V -> iterable of W.
template <typename K, typename V, typename F>
auto FlatMapValues(const Bag<std::pair<K, V>>& bag, F f, double weight = 1.0)
    -> Bag<std::pair<
        K, std::decay_t<decltype(*std::begin(f(std::declval<const V&>())))>>> {
  using W = std::decay_t<decltype(*std::begin(f(std::declval<const V&>())))>;
  using Out = std::pair<K, W>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<Out>(c);
  internal::ChargeScanStage(bag, weight, "flatMapValues");
  typename Bag<Out>::Partitions out(bag.partitions().size());
  ParallelFor(c->pool(), bag.partitions().size(), [&](std::size_t i) {
    for (const auto& [k, v] : bag.partitions()[i]) {
      for (auto&& w : f(v)) out[i].emplace_back(k, std::move(w));
    }
  });
  return internal::MaybeAutoCheckpoint(Bag<Out>(
      c, std::move(out), bag.scale(), bag.key_partitions(),
      bag.lineage_depth() + 1));
}

/// Bag union (multiset semantics, like Spark's union): concatenates the two
/// bags' partition lists. Metadata-only; free in the cost model. The result
/// takes the larger scale (unioning bags of different scales is rare and
/// the bigger side dominates the cost model). When both inputs share the
/// same key partitioning, partitions are merged pairwise so the result
/// stays co-partitioned (a zipPartitions-style union).
template <typename T>
Bag<T> Union(const Bag<T>& a, const Bag<T>& b) {
  MATRYOSHKA_CHECK(a.cluster() == b.cluster());
  Cluster* c = a.cluster();
  if (!c->ok()) return Bag<T>(c);
  const double scale = std::max(a.scale(), b.scale());
  // Metadata-only: lineage is whichever input chain is deeper.
  const int lineage = std::max(a.lineage_depth(), b.lineage_depth());
  if (a.key_partitions() > 0 && a.key_partitions() == b.key_partitions() &&
      a.num_partitions() == b.num_partitions()) {
    typename Bag<T>::Partitions out = a.partitions();
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].insert(out[i].end(), b.partitions()[i].begin(),
                    b.partitions()[i].end());
    }
    return Bag<T>(c, std::move(out), scale, a.key_partitions(), lineage);
  }
  typename Bag<T>::Partitions out = a.partitions();
  for (const auto& p : b.partitions()) out.push_back(p);
  return Bag<T>(c, std::move(out), scale, 0, lineage);
}

/// Pairs every element with a unique 64-bit id (narrow: ids are formed from
/// the partition index and the offset within the partition, like Spark's
/// zipWithUniqueId).
template <typename T>
Bag<std::pair<uint64_t, T>> ZipWithUniqueId(const Bag<T>& bag) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<std::pair<uint64_t, T>>(c);
  internal::ChargeScanStage(bag, 1.0, "zipWithUniqueId");
  const uint64_t stride =
      static_cast<uint64_t>(std::max<int64_t>(1, bag.num_partitions()));
  typename Bag<std::pair<uint64_t, T>>::Partitions out(bag.partitions().size());
  ParallelFor(c->pool(), bag.partitions().size(), [&](std::size_t i) {
    const auto& part = bag.partitions()[i];
    out[i].reserve(part.size());
    for (std::size_t j = 0; j < part.size(); ++j) {
      out[i].emplace_back(static_cast<uint64_t>(j) * stride + i, part[j]);
    }
  });
  return internal::MaybeAutoCheckpoint(Bag<std::pair<uint64_t, T>>(
      c, std::move(out), bag.scale(), 0, bag.lineage_depth() + 1));
}

// --- Actions ---

/// Number of synthetic elements. Charges a job plus a scan.
template <typename T>
int64_t Count(const Bag<T>& bag) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return 0;
  c->BeginJob("count");
  internal::ChargeScanStage(bag, 0.25, "count");
  return bag.Size();
}

/// True iff the bag has at least one element. Charges a job plus a scan
/// (used by lifted loops to test their exit condition, Listing 4 line 9).
template <typename T>
bool NotEmpty(const Bag<T>& bag) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return false;
  c->BeginJob("notEmpty");
  internal::ChargeScanStage(bag, 0.05, "notEmpty");
  return bag.Size() > 0;
}

/// Folds all elements with the associative, commutative `f`; nullopt for an
/// empty bag. Charges a job plus a scan.
template <typename T, typename F>
std::optional<T> Reduce(const Bag<T>& bag, F f, double weight = 1.0) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return std::nullopt;
  c->BeginJob("reduce");
  internal::ChargeScanStage(bag, weight, "reduce");
  std::optional<T> acc;
  for (const auto& part : bag.partitions()) {
    for (const auto& x : part) {
      if (!acc.has_value()) {
        acc = x;
      } else {
        acc = f(*acc, x);
      }
    }
  }
  return acc;
}

/// Materializes the bag at the driver. Charges a job, a scan, and the
/// network transfer to the driver; fails the cluster with OutOfMemory if the
/// data does not fit into one machine.
template <typename T>
std::vector<T> Collect(const Bag<T>& bag) {
  Cluster* c = bag.cluster();
  if (!c->ok()) return {};
  c->BeginJob("collect");
  internal::ChargeScanStage(bag, 0.25, "collect");
  const double bytes = RealBagBytes(bag);
  if (bytes > c->config().memory_per_machine_bytes) {
    c->Fail(Status::OutOfMemory("collect result does not fit on the driver"));
    return {};
  }
  c->AccrueCollect(bytes);
  return bag.ToVector();
}

}  // namespace matryoshka::engine

#endif  // MATRYOSHKA_ENGINE_OPS_H_
