#!/usr/bin/env sh
# Builds and runs the test suite. Usage:
#   scripts/check.sh            # RelWithDebInfo build + full ctest
#   scripts/check.sh asan       # ASan+UBSan build + full ctest
#   scripts/check.sh faults     # RelWithDebInfo build + fault-suite only
# Any extra arguments are forwarded to ctest.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-default}"
[ $# -gt 0 ] && shift

case "$mode" in
  default)
    preset=default; test_preset=default ;;
  asan)
    preset=asan; test_preset=asan ;;
  faults)
    preset=default; test_preset=faults ;;
  *)
    echo "usage: scripts/check.sh [default|asan|faults] [ctest args...]" >&2
    exit 2 ;;
esac

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$test_preset" -j "$(nproc)" "$@"
