#ifndef MATRYOSHKA_COMMON_RANDOM_H_
#define MATRYOSHKA_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace matryoshka {

/// Fast, seedable, deterministic PRNG (splitmix64 core). All data generators
/// in this repository derive their randomness from this type so experiment
/// inputs are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next 64 uniformly random bits.
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Standard normal variate (Box-Muller; one value per call).
  double NextGaussian();

 private:
  uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Zipf-distributed integer sampler over {0, 1, ..., n-1} with exponent `s`.
///
/// Rank 0 is the most frequent value. Uses an inverse-CDF table built at
/// construction (O(n) memory, O(log n) per sample), which is exact and fast
/// for the group counts used in the skew experiments (Sec. 9.5 of the paper
/// uses 1024 groups).
class ZipfSampler {
 public:
  /// `n` must be >= 1; `s` is the skew exponent (s=0 degenerates to uniform).
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace matryoshka

#endif  // MATRYOSHKA_COMMON_RANDOM_H_
