#include "datagen/datagen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace matryoshka::datagen {

std::vector<Visit> GenerateVisits(int64_t num_visits, int64_t num_days,
                                  double zipf_s, double bounce_fraction,
                                  uint64_t seed) {
  MATRYOSHKA_CHECK(num_days >= 1);
  Rng rng(seed);
  ZipfSampler day_dist(static_cast<uint64_t>(num_days), zipf_s);
  std::vector<Visit> visits;
  visits.reserve(static_cast<std::size_t>(num_visits));
  // Emit visitor "sessions": a fresh visitor on a day, visiting either one
  // page (a bounce) or several. Visitor ids are made day-local by packing
  // the day into the high bits.
  int64_t next_visitor = 0;
  while (static_cast<int64_t>(visits.size()) < num_visits) {
    const int64_t day = static_cast<int64_t>(day_dist.Sample(rng));
    const int64_t visitor = (day << 40) | (next_visitor++ & ((1LL << 40) - 1));
    int64_t pages = 1;
    if (rng.NextDouble() >= bounce_fraction) {
      pages = 2 + static_cast<int64_t>(rng.Uniform(3));
    }
    for (int64_t p = 0;
         p < pages && static_cast<int64_t>(visits.size()) < num_visits; ++p) {
      visits.emplace_back(day, visitor);
    }
  }
  return visits;
}

std::vector<std::pair<int64_t, Edge>> GenerateGroupedEdges(
    int64_t num_edges, int64_t num_groups, int64_t vertices_per_group,
    double zipf_s, uint64_t seed) {
  MATRYOSHKA_CHECK(num_groups >= 1);
  MATRYOSHKA_CHECK(vertices_per_group >= 2);
  Rng rng(seed);
  ZipfSampler group_dist(static_cast<uint64_t>(num_groups), zipf_s);
  std::vector<std::pair<int64_t, Edge>> edges;
  edges.reserve(static_cast<std::size_t>(num_edges));
  for (int64_t i = 0; i < num_edges; ++i) {
    const int64_t g = static_cast<int64_t>(group_dist.Sample(rng));
    const int64_t base = g * vertices_per_group;
    Edge e;
    e.src = base + static_cast<int64_t>(
                       rng.Uniform(static_cast<uint64_t>(vertices_per_group)));
    e.dst = base + static_cast<int64_t>(
                       rng.Uniform(static_cast<uint64_t>(vertices_per_group)));
    edges.emplace_back(g, e);
  }
  return edges;
}

std::vector<Edge> GenerateComponents(int64_t num_components,
                                     int64_t vertices_per_component,
                                     int64_t extra_edges_per_component,
                                     uint64_t seed) {
  MATRYOSHKA_CHECK(vertices_per_component >= 2);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(
      num_components * (vertices_per_component + extra_edges_per_component) *
      2));
  for (int64_t c = 0; c < num_components; ++c) {
    const int64_t base = c * vertices_per_component;
    // Connectivity backbone: a cycle.
    for (int64_t v = 0; v < vertices_per_component; ++v) {
      const int64_t a = base + v;
      const int64_t b = base + (v + 1) % vertices_per_component;
      edges.push_back(Edge{a, b});
      edges.push_back(Edge{b, a});
    }
    for (int64_t i = 0; i < extra_edges_per_component; ++i) {
      const int64_t a =
          base + static_cast<int64_t>(
                     rng.Uniform(static_cast<uint64_t>(vertices_per_component)));
      const int64_t b =
          base + static_cast<int64_t>(
                     rng.Uniform(static_cast<uint64_t>(vertices_per_component)));
      if (a == b) continue;
      edges.push_back(Edge{a, b});
      edges.push_back(Edge{b, a});
    }
  }
  return edges;
}

namespace {

Point SampleBlob(Rng& rng, const Point& center, double stddev) {
  Point p;
  for (std::size_t d = 0; d < p.size(); ++d) {
    p[d] = center[d] + stddev * rng.NextGaussian();
  }
  return p;
}

Point RandomCenter(Rng& rng) {
  Point c;
  for (std::size_t d = 0; d < c.size(); ++d) {
    c[d] = rng.NextDouble() * 100.0;
  }
  return c;
}

}  // namespace

std::vector<std::pair<int64_t, Point>> GenerateGroupedPoints(
    int64_t num_points, int64_t num_groups, int64_t clusters_per_group,
    uint64_t seed) {
  MATRYOSHKA_CHECK(num_groups >= 1);
  MATRYOSHKA_CHECK(clusters_per_group >= 1);
  Rng rng(seed);
  // Per-group blob centers.
  std::vector<std::vector<Point>> centers(
      static_cast<std::size_t>(num_groups));
  for (auto& group_centers : centers) {
    group_centers.reserve(static_cast<std::size_t>(clusters_per_group));
    for (int64_t c = 0; c < clusters_per_group; ++c) {
      group_centers.push_back(RandomCenter(rng));
    }
  }
  std::vector<std::pair<int64_t, Point>> points;
  points.reserve(static_cast<std::size_t>(num_points));
  for (int64_t i = 0; i < num_points; ++i) {
    const int64_t g =
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(num_groups)));
    const auto& group_centers = centers[static_cast<std::size_t>(g)];
    const auto& center =
        group_centers[rng.Uniform(group_centers.size())];
    points.emplace_back(g, SampleBlob(rng, center, 2.5));
  }
  return points;
}

std::vector<Point> GeneratePoints(int64_t num_points, int64_t num_clusters,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> centers;
  centers.reserve(static_cast<std::size_t>(num_clusters));
  for (int64_t c = 0; c < num_clusters; ++c) {
    centers.push_back(RandomCenter(rng));
  }
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(num_points));
  for (int64_t i = 0; i < num_points; ++i) {
    points.push_back(
        SampleBlob(rng, centers[rng.Uniform(centers.size())], 2.5));
  }
  return points;
}

Means GenerateInitialMeans(int64_t k, uint64_t seed) {
  Rng rng(seed);
  Means means;
  means.reserve(static_cast<std::size_t>(k));
  for (int64_t i = 0; i < k; ++i) means.push_back(RandomCenter(rng));
  return means;
}

}  // namespace matryoshka::datagen
