// Locks down that the real thread pool (ClusterConfig::execute_parallel) is
// invisible to everything but wall-clock time: the full operator suite must
// produce identical results AND identical simulated metrics with the pool on
// and off, including under an active fault plan. The cost model is charged
// from the driver thread only, so nothing may depend on execution order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/extra_ops.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::engine {
namespace {

constexpr uint64_t kSeed = 77;

ClusterConfig Config(bool parallel) {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.execute_parallel = parallel;
  return cfg;
}

struct SuiteOutcome {
  Metrics metrics;
  bool ok = false;
  // Sorted driver-side snapshots of every operator chain's output.
  std::vector<int64_t> ints;
  std::vector<std::pair<int64_t, int64_t>> pairs;
  std::vector<int64_t> extras;
  int64_t count = 0;
  int64_t reduced = 0;
};

/// Runs one fixed program through every operator family and snapshots both
/// the results and the complete metrics.
SuiteOutcome RunSuite(ClusterConfig cfg) {
  Cluster c(cfg);
  SuiteOutcome out;

  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 3000; ++i) kv.emplace_back(i % 64, i % 11);
  auto pairs = Parallelize(&c, kv, 8);

  // Narrow chain.
  auto mapped = Map(pairs, [](const std::pair<int64_t, int64_t>& p) {
    return std::pair<int64_t, int64_t>(p.first, p.second + 1);
  });
  auto filtered =
      Filter(mapped, [](const std::pair<int64_t, int64_t>& p) {
        return p.second % 3 != 0;
      });
  auto flat = FlatMapValues(filtered, [](int64_t v) {
    return std::vector<int64_t>{v, v * 2};
  });
  auto repartitioned = MapPartitions(
      flat, [](const std::vector<std::pair<int64_t, int64_t>>& part) {
        return part;
      });
  auto with_ids = ZipWithUniqueId(Values(repartitioned));
  auto sampled = Sample(Keys(pairs), 0.5, kSeed);

  // Wide operators.
  auto reduced_bag = ReduceByKey(
      repartitioned, [](int64_t a, int64_t b) { return a + b; }, 8);
  auto grouped = GroupByKey(filtered, 8);
  auto grouped_sizes = MapValues(grouped, [](const std::vector<int64_t>& g) {
    return static_cast<int64_t>(g.size());
  });
  auto distinct = Distinct(Keys(filtered), 8);
  auto aggregated = AggregateByKey(
      filtered, int64_t{0}, [](int64_t a, int64_t v) { return a + v; },
      [](int64_t a, int64_t b) { return a + b; }, 8);

  // Joins.
  auto joined = RepartitionJoin(reduced_bag, aggregated, 8);
  auto joined_flat = MapValues(
      joined, [](const std::pair<int64_t, int64_t>& vw) {
        return vw.first + vw.second;
      });
  std::vector<std::pair<int64_t, int64_t>> small_kv;
  for (int64_t i = 0; i < 16; ++i) small_kv.emplace_back(i, i * 10);
  auto small = Parallelize(&c, small_kv, 2, /*scale=*/1.0);
  auto bjoined = BroadcastJoin(reduced_bag, small);
  auto louter = LeftOuterJoin(small, reduced_bag, 8);
  auto cogrouped = CoGroup(reduced_bag, aggregated, 8);
  auto cg_sizes = MapValues(
      cogrouped,
      [](const std::pair<std::vector<int64_t>, std::vector<int64_t>>& g) {
        return static_cast<int64_t>(g.first.size() + 100 * g.second.size());
      });
  auto cart = Cartesian(distinct, Keys(small));
  auto cart_sums = Map(cart, [](const std::pair<int64_t, int64_t>& p) {
    return p.first * 1000 + p.second;
  });

  // Set ops.
  auto sub = Subtract(Keys(filtered), distinct, 8);  // empty by construction
  auto inter = Intersection(Keys(filtered), sampled, 8);
  auto unioned = Union(distinct, inter);

  // Actions.
  out.count = Count(unioned);
  out.reduced =
      Reduce(Values(aggregated), [](int64_t a, int64_t b) { return a + b; })
          .value_or(0);
  auto top = TopK(Keys(pairs), 5, std::less<int64_t>());

  auto snap_pairs = [](std::vector<std::pair<int64_t, int64_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  auto snap_ints = [](std::vector<int64_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };

  out.pairs = snap_pairs(Collect(joined_flat));
  auto more_pairs = snap_pairs(Collect(grouped_sizes));
  out.pairs.insert(out.pairs.end(), more_pairs.begin(), more_pairs.end());
  auto bj = snap_pairs(Collect(MapValues(
      bjoined, [](const std::pair<int64_t, int64_t>& vw) {
        return vw.first - vw.second;
      })));
  out.pairs.insert(out.pairs.end(), bj.begin(), bj.end());
  auto cg = snap_pairs(Collect(cg_sizes));
  out.pairs.insert(out.pairs.end(), cg.begin(), cg.end());

  out.ints = snap_ints(Collect(cart_sums));
  auto extra1 = snap_ints(Collect(sub));
  auto extra2 = snap_ints(Collect(unioned));
  auto extra3 = snap_ints(Collect(Map(with_ids, [](const std::pair<uint64_t, int64_t>& p) {
    return static_cast<int64_t>(p.first);
  })));
  out.extras = extra1;
  out.extras.insert(out.extras.end(), extra2.begin(), extra2.end());
  out.extras.insert(out.extras.end(), extra3.begin(), extra3.end());
  out.extras.insert(out.extras.end(), top.begin(), top.end());
  (void)NotEmpty(louter);

  out.ok = c.ok();
  out.metrics = c.metrics();
  return out;
}

void ExpectSameOutcome(const SuiteOutcome& a, const SuiteOutcome& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.ints, b.ints);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.extras, b.extras);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.reduced, b.reduced);
  // The simulated cost model must be bit-identical: the pool may only change
  // wall-clock time, never a single charged metric.
  EXPECT_EQ(a.metrics.simulated_time_s, b.metrics.simulated_time_s);
  EXPECT_EQ(a.metrics.jobs, b.metrics.jobs);
  EXPECT_EQ(a.metrics.stages, b.metrics.stages);
  EXPECT_EQ(a.metrics.tasks, b.metrics.tasks);
  EXPECT_EQ(a.metrics.elements_processed, b.metrics.elements_processed);
  EXPECT_EQ(a.metrics.shuffle_bytes, b.metrics.shuffle_bytes);
  EXPECT_EQ(a.metrics.broadcast_bytes, b.metrics.broadcast_bytes);
  EXPECT_EQ(a.metrics.spilled_bytes, b.metrics.spilled_bytes);
  EXPECT_EQ(a.metrics.spill_events, b.metrics.spill_events);
  EXPECT_EQ(a.metrics.peak_task_bytes, b.metrics.peak_task_bytes);
  EXPECT_EQ(a.metrics.peak_machine_bytes, b.metrics.peak_machine_bytes);
  EXPECT_EQ(a.metrics.failed_tasks, b.metrics.failed_tasks);
  EXPECT_EQ(a.metrics.task_retries, b.metrics.task_retries);
  EXPECT_EQ(a.metrics.speculative_launches, b.metrics.speculative_launches);
  EXPECT_EQ(a.metrics.machines_lost, b.metrics.machines_lost);
  EXPECT_EQ(a.metrics.recovery_time_s, b.metrics.recovery_time_s);
  EXPECT_EQ(a.metrics.checkpoints_written, b.metrics.checkpoints_written);
  EXPECT_EQ(a.metrics.checkpoint_bytes, b.metrics.checkpoint_bytes);
  EXPECT_EQ(a.metrics.driver_retries, b.metrics.driver_retries);
  EXPECT_EQ(a.metrics.plan_fallbacks, b.metrics.plan_fallbacks);
}

TEST(ParallelDeterminismTest, PoolDoesNotPerturbResultsOrCostModel) {
  SuiteOutcome serial = RunSuite(Config(false));
  SuiteOutcome parallel = RunSuite(Config(true));
  ASSERT_TRUE(serial.ok);
  EXPECT_GT(serial.count, 0);
  ExpectSameOutcome(serial, parallel);
}

TEST(ParallelDeterminismTest, PoolIsRepeatableAcrossRuns) {
  SuiteOutcome first = RunSuite(Config(true));
  SuiteOutcome second = RunSuite(Config(true));
  ExpectSameOutcome(first, second);
}

TEST(ParallelDeterminismTest, PoolDoesNotPerturbFaultInjection) {
  // Fault draws are keyed on (seed, stage, task), not on execution order, so
  // an active plan must stay bit-identical under the pool too.
  ClusterConfig serial_cfg = Config(false);
  ClusterConfig parallel_cfg = Config(true);
  for (ClusterConfig* cfg : {&serial_cfg, &parallel_cfg}) {
    cfg->faults.seed = 5;
    cfg->faults.task_failure_prob = 0.05;
    cfg->faults.straggler_fraction = 0.1;
    cfg->faults.straggler_slowdown = 4.0;
    cfg->faults.speculative_execution = true;
  }
  SuiteOutcome serial = RunSuite(serial_cfg);
  SuiteOutcome parallel = RunSuite(parallel_cfg);
  ASSERT_TRUE(serial.ok);
  EXPECT_GT(serial.metrics.failed_tasks, 0);
  ExpectSameOutcome(serial, parallel);
}

TEST(ParallelDeterminismTest, PoolDoesNotPerturbRecoveryFeatures) {
  // Auto-checkpointing, degraded re-planning, and machine loss are all
  // charged from the driver thread; the pool must not perturb a single new
  // counter either.
  ClusterConfig serial_cfg = Config(false);
  ClusterConfig parallel_cfg = Config(true);
  for (ClusterConfig* cfg : {&serial_cfg, &parallel_cfg}) {
    cfg->faults.seed = 5;
    cfg->faults.task_failure_prob = 0.05;
    cfg->faults.max_task_retries = 8;
    cfg->faults.machine_loss_times_s = {0.01};
    cfg->recovery.auto_checkpoint = true;
    cfg->recovery.min_checkpoint_lineage = 2;
    cfg->recovery.checkpoint_bytes_per_s = 1e12;  // checkpoints almost free
    cfg->recovery.degraded_replanning = true;
  }
  SuiteOutcome serial = RunSuite(serial_cfg);
  SuiteOutcome parallel = RunSuite(parallel_cfg);
  ASSERT_TRUE(serial.ok);
  EXPECT_EQ(serial.metrics.machines_lost, 1);
  EXPECT_GT(serial.metrics.checkpoints_written, 0);
  ExpectSameOutcome(serial, parallel);
}

}  // namespace
}  // namespace matryoshka::engine
