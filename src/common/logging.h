#ifndef MATRYOSHKA_COMMON_LOGGING_H_
#define MATRYOSHKA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace matryoshka {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level for emitted log lines. Defaults to kWarning so
/// tests and benchmarks stay quiet; benchmarks that narrate progress raise it.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line collector; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after emitting. Used by checks.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace matryoshka

#define MATRYOSHKA_LOG(level)                                      \
  ::matryoshka::internal::LogMessage(::matryoshka::LogLevel::level, \
                                     __FILE__, __LINE__)

/// Invariant check that is always on (release builds included); logs the
/// failed condition plus any streamed context, then aborts. Use for internal
/// invariants, not for validating user input (user input gets a Status).
#define MATRYOSHKA_CHECK(cond)                                        \
  if (cond) {                                                         \
  } else /* NOLINT */                                                 \
    ::matryoshka::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define MATRYOSHKA_DCHECK(cond) assert(cond)

#endif  // MATRYOSHKA_COMMON_LOGGING_H_
