file(REMOVE_RECURSE
  "CMakeFiles/matryoshka_common.dir/logging.cc.o"
  "CMakeFiles/matryoshka_common.dir/logging.cc.o.d"
  "CMakeFiles/matryoshka_common.dir/random.cc.o"
  "CMakeFiles/matryoshka_common.dir/random.cc.o.d"
  "CMakeFiles/matryoshka_common.dir/status.cc.o"
  "CMakeFiles/matryoshka_common.dir/status.cc.o.d"
  "CMakeFiles/matryoshka_common.dir/thread_pool.cc.o"
  "CMakeFiles/matryoshka_common.dir/thread_pool.cc.o.d"
  "libmatryoshka_common.a"
  "libmatryoshka_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matryoshka_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
