#ifndef MATRYOSHKA_OBS_TRACE_RECORDER_H_
#define MATRYOSHKA_OBS_TRACE_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

/// Structured observability for the simulated cluster (no engine
/// dependencies: the engine pushes plain intervals and records into this
/// sink, so `obs` sits below `engine` in the library graph).
///
/// A TraceRecorder captures, per program run:
///  - every job / stage / task interval on the *simulated* clock, including
///    the fault model's retry / speculation / machine-loss annotations,
///  - driver-side network intervals (shuffle, broadcast, collect) and
///    recovery intervals,
///  - instant events (spills, machine losses, run failure),
///  - the lowering decisions of the Matryoshka optimizer (broadcast vs.
///    repartition join, chosen partition counts, cross-product side) with
///    the runtime cardinalities that justified them.
///
/// Everything is recorded from the driver thread with values that are pure
/// functions of the cost model, so a trace is bit-identical across repeated
/// runs, with the thread pool on or off, and under an active FaultPlan.
namespace matryoshka::obs {

/// What a simulated-time interval was spent on. These are the buckets of the
/// per-run breakdown report (breakdown.h).
enum class Category {
  kJobLaunch,
  kCompute,
  kTaskOverhead,
  kSpill,
  kShuffle,
  kBroadcast,
  kCollect,
  kRecovery,
  /// Replicated checkpoint writes (engine::Checkpoint / auto-checkpoints).
  kCheckpoint,
};

const char* CategoryName(Category category);

/// One dataflow job (an action): the span is the job-launch overhead
/// interval charged by the driver.
struct JobSpan {
  int64_t id = 0;
  std::string label;
  double begin_s = 0.0;
  double end_s = 0.0;
};

/// One task attempt chain occupying one core slot. Speculative duplicates
/// appear as a second span with the same task_index and speculative=true.
struct TaskSpan {
  int64_t stage_id = 0;
  int64_t task_index = 0;
  /// Core slot (0 .. slots-1) the greedy list scheduler placed the task on.
  int64_t slot = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  /// Scheduling/launch/teardown cost charged at the head of the span.
  double overhead_s = 0.0;
  /// Fault-free slot time (includes any spill inflation).
  double base_cost_s = 0.0;
  /// Portion of base_cost_s attributable to spill inflation.
  double spill_s = 0.0;
  /// Transient-fault retries this chain went through.
  int retries = 0;
  bool speculative = false;
};

/// One stage: the span covers the scheduled makespan of its tasks. The
/// decomposition fields explain the makespan via the *critical slot* (the
/// slot whose load determined the stage duration): compute + overhead +
/// spill + fault seconds on that slot sum to the stage duration.
struct StageSpan {
  int64_t id = 0;
  /// The job whose action triggered this stage (0 before the first job:
  /// transformations are charged eagerly in this engine).
  int64_t job_id = 0;
  std::string label;
  double begin_s = 0.0;
  double end_s = 0.0;
  int64_t num_tasks = 0;
  int lineage_depth = 1;
  double spill_factor = 1.0;
  int64_t critical_slot = -1;
  double compute_s = 0.0;
  double overhead_s = 0.0;
  double spill_s = 0.0;
  /// Straggler slowdown, wasted failed attempts, and retry backoff on the
  /// critical slot.
  double fault_s = 0.0;
};

/// A driver-side interval that advances the simulated clock outside any
/// stage: network transfers and machine-loss recovery.
struct DriverSpan {
  Category category = Category::kShuffle;
  std::string label;
  double begin_s = 0.0;
  double end_s = 0.0;
  double bytes = 0.0;
};

/// A point event: spill, machine loss, sticky run failure.
struct InstantEvent {
  std::string name;
  std::string detail;
  double t_s = 0.0;
};

/// One lowering decision of the Matryoshka optimizer (Sec. 8), with the
/// runtime cardinalities that justified it.
struct Decision {
  /// Which choice point: "tag-join", "half-lifted-cross",
  /// "scalar-partitions".
  std::string primitive;
  /// The chosen physical implementation / value.
  std::string choice;
  /// Human-readable justification.
  std::string rationale;
  /// InnerScalar cardinality driving the decision (-1 when not applicable).
  int64_t num_tags = -1;
  /// Chosen partition count (-1 when not applicable).
  int64_t partitions = -1;
  /// Size estimates for the cross-product choice (-1 when not applicable).
  double scalar_bytes = -1.0;
  double primary_bytes = -1.0;
};

/// Everything recorded between two Cluster::Reset calls.
struct RunTrace {
  std::string name;
  std::vector<JobSpan> jobs;
  std::vector<StageSpan> stages;
  std::vector<TaskSpan> tasks;
  std::vector<DriverSpan> driver;
  std::vector<InstantEvent> instants;
  std::vector<Decision> decisions;
  /// Largest slot index that ran a task (-1 if none); sizes the per-slot
  /// timelines of the Chrome export.
  int64_t max_slot = -1;
  /// Set once the run was consumed by a reporting layer (bench_util); keeps
  /// run records and runs in one-to-one correspondence.
  bool reported = false;

  bool IsEmpty() const {
    return jobs.empty() && stages.empty() && tasks.empty() &&
           driver.empty() && instants.empty() && decisions.empty();
  }
};

/// The sink the Cluster (and the optimizer) record into. Recording is
/// append-only and driver-thread-only; export lives in chrome_trace.h /
/// breakdown.h / plan_capture.h.
class TraceRecorder {
 public:
  struct Options {
    /// Record per-task spans (the per-slot timelines). Stage spans and the
    /// critical-path decomposition are always recorded.
    bool record_tasks = true;
    /// Per-stage cap on task spans: stages with more scheduled task copies
    /// record none (the decomposition still covers them). Bounds trace size
    /// on huge sweeps without affecting any metric.
    int64_t max_task_spans_per_stage = 1 << 14;
  };

  TraceRecorder() = default;
  explicit TraceRecorder(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// Name used for the next started (or first lazily-created) run.
  void SetRunNameHint(std::string hint) { name_hint_ = std::move(hint); }

  /// Archives the current run and opens a fresh one (Cluster::Reset calls
  /// this). An untouched current run is recycled instead of archived.
  void StartRun();

  /// Adopts a finished run recorded by ANOTHER recorder. The serving layer
  /// records each request into its own per-request recorder (isolation: a
  /// request's trace is a pure function of that request, bit-identical
  /// alone or under load), then appends the finished runs here so one
  /// combined export shows every request in its own lane (the Chrome export
  /// already renders one process per run). Caller provides any cross-thread
  /// synchronization; like all recording this is not thread-safe itself.
  void AppendRun(RunTrace run) { runs_.push_back(std::move(run)); }

  /// The run currently being recorded (created on demand).
  RunTrace& current();
  bool has_runs() const { return !runs_.empty(); }
  const std::vector<RunTrace>& runs() const { return runs_; }
  std::vector<RunTrace>& mutable_runs() { return runs_; }

  // --- Recording (called by the engine on the driver thread) ---

  void AddJob(const std::string& label, double begin_s, double end_s);

  /// Opens a stage; returns its id for AddTask/EndStage.
  int64_t AddStage(const char* label, int64_t job_id, double begin_s,
                   int64_t num_tasks, int lineage_depth, double spill_factor);

  /// True when AddTask calls for a stage of `scheduled` task copies should
  /// be recorded (the per-stage cap).
  bool ShouldRecordTasks(int64_t scheduled) const {
    return options_.record_tasks &&
           scheduled <= options_.max_task_spans_per_stage;
  }

  void AddTask(TaskSpan span);

  /// Closes a stage with its end time and critical-slot decomposition.
  void EndStage(int64_t stage_id, double end_s, int64_t critical_slot,
                double compute_s, double overhead_s, double spill_s,
                double fault_s);

  void AddDriverSpan(Category category, const char* label, double begin_s,
                     double end_s, double bytes);

  void AddInstant(const char* name, std::string detail, double t_s);

  void AddDecision(Decision decision);

 private:
  Options options_;
  std::string name_hint_;
  std::vector<RunTrace> runs_;
};

}  // namespace matryoshka::obs

#endif  // MATRYOSHKA_OBS_TRACE_RECORDER_H_
