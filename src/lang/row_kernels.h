#ifndef MATRYOSHKA_LANG_ROW_KERNELS_H_
#define MATRYOSHKA_LANG_ROW_KERNELS_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "lang/expr.h"
#include "lang/value.h"

/// Pre-instantiated fused kernels for the dynamically-typed Row (`Value`)
/// path.
///
/// The lowering phase's generic element UDF is a tree-walking interpreter:
/// per element it copies a `ScalarEnv` (an unordered_map of captured
/// scalars), binds the parameter, and recursively walks the shared `Expr`
/// nodes. For the common DiQL shapes — a comparison predicate, a tuple
/// projection, a flat tuple projection, a binop reduce combiner — that
/// interpretive overhead dominates the per-element cost.
///
/// The compilers here recognize those shapes at lowering time and produce
/// small concrete functors (no map, no tree, captures folded to constants)
/// that the engine's static feed chains (engine/fused_feed.h) then inline
/// into their monomorphic per-partition loops. Compilation is best-effort:
/// any unrecognized shape returns nullopt and the caller falls back to the
/// interpreter closure. Both arms evaluate scalars through the same
/// EvalRowBinOp, so results are identical by construction.
namespace matryoshka::lang {

/// Scalar binop semantics shared by the tree-walking interpreter
/// (lowering_phase.cc) and the compiled kernels — a single definition so
/// the two evaluation arms cannot drift.
inline Value EvalRowBinOp(BinOpKind op, const Value& a, const Value& b) {
  switch (op) {
    case BinOpKind::kAdd:
      if (a.is_int() && b.is_int()) return Value(a.AsInt() + b.AsInt());
      return Value(a.AsDouble() + b.AsDouble());
    case BinOpKind::kSub:
      if (a.is_int() && b.is_int()) return Value(a.AsInt() - b.AsInt());
      return Value(a.AsDouble() - b.AsDouble());
    case BinOpKind::kMul:
      if (a.is_int() && b.is_int()) return Value(a.AsInt() * b.AsInt());
      return Value(a.AsDouble() * b.AsDouble());
    case BinOpKind::kDiv: {
      const double d = b.AsDouble();
      return Value(d == 0.0 ? 0.0 : a.AsDouble() / d);
    }
    case BinOpKind::kEq:
      return Value(a == b);
    case BinOpKind::kNe:
      return Value(a != b);
    case BinOpKind::kLt:
      return Value(a < b);
    case BinOpKind::kLe:
      return Value(a < b || a == b);
    case BinOpKind::kAnd:
      return Value(a.AsBool() && b.AsBool());
    case BinOpKind::kOr:
      return Value(a.AsBool() || b.AsBool());
  }
  MATRYOSHKA_CHECK(false) << "unknown binop";
  return Value();
}

namespace rowkernel {

/// The captured driver scalars a lambda closes over, as the lowering
/// phase's CaptureEnv resolves them.
using CaptureMap = std::unordered_map<std::string, Value>;

/// One leaf of a compiled scalar expression: the lambda parameter itself, a
/// field of it, or a constant (literals, and captured names folded to their
/// driver-scalar values at compile time).
struct Operand {
  enum class Kind { kParam, kField, kConst };

  Kind kind = Kind::kConst;
  std::size_t field = 0;
  Value literal;

  const Value& Get(const Value& x) const {
    switch (kind) {
      case Kind::kParam:
        return x;
      case Kind::kField:
        return x.Field(field);
      case Kind::kConst:
        break;
    }
    return literal;
  }
};

/// A compiled scalar atom: an operand, or one binop over two operands. One
/// level of arithmetic/comparison is the depth the common DiQL predicate
/// and projection shapes need; deeper trees stay on the interpreter.
struct Atom {
  bool has_op = false;
  BinOpKind op = BinOpKind::kAdd;
  Operand a;
  Operand b;

  Value Eval(const Value& x) const {
    if (!has_op) return a.Get(x);
    return EvalRowBinOp(op, a.Get(x), b.Get(x));
  }
};

/// filter(x => <atom>): one map-free, tree-free call per element.
struct Predicate {
  Atom atom;
  bool operator()(const Value& x) const { return atom.Eval(x).AsBool(); }
};

/// map(x => (<atom>, ...)) or map(x => <atom>).
struct Projection {
  bool make_tuple = false;
  std::vector<Atom> slots;

  Value operator()(const Value& x) const {
    if (!make_tuple) return slots.front().Eval(x);
    Value::Tuple t;
    t.reserve(slots.size());
    for (const Atom& s : slots) t.push_back(s.Eval(x));
    return Value(std::move(t));
  }
};

/// flatMap(x => (<atom>, ...)): each slot becomes one output element.
struct FlatProjection {
  std::vector<Atom> slots;

  Value::Tuple operator()(const Value& x) const {
    Value::Tuple t;
    t.reserve(slots.size());
    for (const Atom& s : slots) t.push_back(s.Eval(x));
    return t;
  }
};

/// reduceByKey((a, b) => a <op> b): the key-extract map around it is
/// already a concrete pair projection in the lowering phase; this removes
/// the interpreter from the merge side.
struct Combiner {
  BinOpKind op = BinOpKind::kAdd;
  Value operator()(const Value& a, const Value& b) const {
    return EvalRowBinOp(op, a, b);
  }
};

inline std::optional<Operand> CompileOperand(const Expr& e,
                                             const std::string& param,
                                             const CaptureMap& cap) {
  Operand out;
  switch (e.kind) {
    case ExprKind::kVar: {
      if (e.name == param) {
        out.kind = Operand::Kind::kParam;
        return out;
      }
      auto it = cap.find(e.name);
      if (it == cap.end()) return std::nullopt;
      out.kind = Operand::Kind::kConst;
      out.literal = it->second;
      return out;
    }
    case ExprKind::kConst:
      out.kind = Operand::Kind::kConst;
      out.literal = e.literal;
      return out;
    case ExprKind::kTupleField: {
      const Expr& in = *e.inputs[0];
      if (in.kind != ExprKind::kVar || in.name != param) return std::nullopt;
      out.kind = Operand::Kind::kField;
      out.field = e.index;
      return out;
    }
    default:
      return std::nullopt;
  }
}

inline std::optional<Atom> CompileAtom(const Expr& e, const std::string& param,
                                       const CaptureMap& cap) {
  Atom out;
  if (e.kind == ExprKind::kBinOp) {
    auto a = CompileOperand(*e.inputs[0], param, cap);
    auto b = CompileOperand(*e.inputs[1], param, cap);
    if (!a.has_value() || !b.has_value()) return std::nullopt;
    out.has_op = true;
    out.op = e.op;
    out.a = std::move(*a);
    out.b = std::move(*b);
    return out;
  }
  auto a = CompileOperand(e, param, cap);
  if (!a.has_value()) return std::nullopt;
  out.a = std::move(*a);
  return out;
}

/// True when `lam` is a pure single-parameter lambda whose whole body is
/// its result expression — the only shape the kernels compile.
inline bool IsPureUnary(const Lambda& lam) {
  return lam.params.size() == 1 && lam.body.empty();
}

inline std::optional<Predicate> CompilePredicate(const Lambda& lam,
                                                 const CaptureMap& cap) {
  if (!IsPureUnary(lam)) return std::nullopt;
  auto atom = CompileAtom(*lam.result, lam.params[0], cap);
  if (!atom.has_value()) return std::nullopt;
  return Predicate{std::move(*atom)};
}

inline std::optional<Projection> CompileProjection(const Lambda& lam,
                                                   const CaptureMap& cap) {
  if (!IsPureUnary(lam)) return std::nullopt;
  const Expr& r = *lam.result;
  Projection out;
  if (r.kind == ExprKind::kTupleMake) {
    out.make_tuple = true;
    out.slots.reserve(r.inputs.size());
    for (const ExprPtr& in : r.inputs) {
      auto atom = CompileAtom(*in, lam.params[0], cap);
      if (!atom.has_value()) return std::nullopt;
      out.slots.push_back(std::move(*atom));
    }
    return out;
  }
  auto atom = CompileAtom(r, lam.params[0], cap);
  if (!atom.has_value()) return std::nullopt;
  out.slots.push_back(std::move(*atom));
  return out;
}

inline std::optional<FlatProjection> CompileFlatProjection(
    const Lambda& lam, const CaptureMap& cap) {
  if (!IsPureUnary(lam)) return std::nullopt;
  const Expr& r = *lam.result;
  if (r.kind != ExprKind::kTupleMake) return std::nullopt;
  FlatProjection out;
  out.slots.reserve(r.inputs.size());
  for (const ExprPtr& in : r.inputs) {
    auto atom = CompileAtom(*in, lam.params[0], cap);
    if (!atom.has_value()) return std::nullopt;
    out.slots.push_back(std::move(*atom));
  }
  return out;
}

inline std::optional<Combiner> CompileCombiner(const Lambda& lam) {
  if (lam.params.size() != 2 || !lam.body.empty()) return std::nullopt;
  const Expr& r = *lam.result;
  if (r.kind != ExprKind::kBinOp) return std::nullopt;
  const Expr& a = *r.inputs[0];
  const Expr& b = *r.inputs[1];
  if (a.kind != ExprKind::kVar || a.name != lam.params[0]) return std::nullopt;
  if (b.kind != ExprKind::kVar || b.name != lam.params[1]) return std::nullopt;
  return Combiner{r.op};
}

}  // namespace rowkernel
}  // namespace matryoshka::lang

#endif  // MATRYOSHKA_LANG_ROW_KERNELS_H_
