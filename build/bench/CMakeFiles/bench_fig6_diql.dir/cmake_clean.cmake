file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_diql.dir/bench_fig6_diql.cc.o"
  "CMakeFiles/bench_fig6_diql.dir/bench_fig6_diql.cc.o.d"
  "bench_fig6_diql"
  "bench_fig6_diql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_diql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
