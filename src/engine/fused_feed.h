#ifndef MATRYOSHKA_ENGINE_FUSED_FEED_H_
#define MATRYOSHKA_ENGINE_FUSED_FEED_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "engine/bag.h"

/// Static (expression-template) representation of a pending fused chain.
///
/// The type-erased representation in bag.h (`Bag<T>::Feed`) pays one
/// `std::function` indirect call per element per composed op. The feed
/// structs here instead nest by *type*: composing Map/Filter/FlatMap/
/// MapValues/FlatMapValues/Sample/ZipWithUniqueId builds a concrete
/// `MapFeed<F, FilterFeed<P, SourceFeed<T>>>`-style value whose `Drive`
/// is one monomorphic loop the compiler can fully inline — no virtual or
/// indirect calls in the hot path.
///
/// Type erasure happens exactly once, at the chain boundary: every chain is
/// also wrapped into the ordinary erased `Feed` (for consumers that only see
/// `Bag<T>`) and into a `Run` closure that `Force()` calls per partition, so
/// `Bag<T>`'s public surface and `PendingState` stay non-templated on the
/// chain. The typed chain itself travels on the side in a `FusedBag<Chain>`
/// subclass handle; slicing a `FusedBag` back to `Bag<T>` (crossing an
/// opaque API boundary) degrades gracefully to one erased hop, never to a
/// wrong answer.
///
/// Every feed replicates its erased twin's per-element semantics exactly
/// (construction order, position counters, hash draws), which is what keeps
/// the two representations bit-identical — see DESIGN.md, "The fusion
/// contract: feed representations".
namespace matryoshka::engine::internal {

/// Chain root: streams the upstream bag's elements. Holds EITHER the
/// materialized partitions (zero indirection) OR the upstream's erased
/// pending feed (one erased hop — the cost of composing across a `Bag<T>`
/// boundary that hid the upstream's concrete chain type).
template <typename T>
struct SourceFeed {
  using Out = T;

  std::shared_ptr<const typename Bag<T>::Partitions> parts;
  typename Bag<T>::Feed feed;

  template <typename Sink>
  void Drive(std::size_t p, Sink&& sink) const {
    if (parts != nullptr) {
      for (const T& x : (*parts)[p]) sink(x);
    } else {
      const typename Bag<T>::Sink emit = [&sink](T&& x) {
        sink(std::move(x));
      };
      feed(p, emit);
    }
  }
};

/// Map: f applied to every element.
template <typename F, typename Up>
struct MapFeed {
  using Out = std::decay_t<decltype(std::declval<const F&>()(
      std::declval<const typename Up::Out&>()))>;

  Up up;
  F f;

  template <typename Sink>
  void Drive(std::size_t p, Sink&& sink) const {
    up.Drive(p, [this, &sink](auto&& x) { sink(f(x)); });
  }
};

/// Filter: keeps elements passing pred. Like the erased sink, materializes
/// the kept element (copying from a materialized upstream, moving a chain
/// temporary) so downstream stages always see an owned value.
template <typename P, typename Up>
struct FilterFeed {
  using Out = typename Up::Out;

  Up up;
  P pred;

  template <typename Sink>
  void Drive(std::size_t p, Sink&& sink) const {
    up.Drive(p, [this, &sink](auto&& x) {
      if (pred(x)) sink(Out(std::forward<decltype(x)>(x)));
    });
  }
};

/// FlatMap: concatenates the iterables produced per element.
template <typename F, typename Up>
struct FlatMapFeed {
  using Out = std::decay_t<decltype(*std::begin(std::declval<const F&>()(
      std::declval<const typename Up::Out&>())))>;

  Up up;
  F f;

  template <typename Sink>
  void Drive(std::size_t p, Sink&& sink) const {
    up.Drive(p, [this, &sink](auto&& x) {
      for (auto&& y : f(x)) sink(std::move(y));
    });
  }
};

/// MapValues: f on the value of every pair, key unchanged. The value is
/// forwarded into `f`, so a chain temporary's heap payload moves through a
/// by-value parameter instead of reallocating (same bytes out either way —
/// this is a wall-clock distinction only, invisible to bit-identity).
template <typename F, typename Up>
struct MapValuesFeed {
  using K = typename Up::Out::first_type;
  using V = typename Up::Out::second_type;
  using Out = std::pair<K, std::decay_t<decltype(std::declval<const F&>()(
                               std::declval<const V&>()))>>;

  Up up;
  F f;

  template <typename Sink>
  void Drive(std::size_t p, Sink&& sink) const {
    up.Drive(p, [this, &sink](auto&& kv) {
      sink(Out(std::forward<decltype(kv)>(kv).first,
               f(std::forward<decltype(kv)>(kv).second)));
    });
  }
};

/// FlatMapValues: one output pair per produced value, same key.
template <typename F, typename Up>
struct FlatMapValuesFeed {
  using K = typename Up::Out::first_type;
  using V = typename Up::Out::second_type;
  using Out = std::pair<K, std::decay_t<decltype(*std::begin(
                               std::declval<const F&>()(
                                   std::declval<const V&>())))>>;

  Up up;
  F f;

  template <typename Sink>
  void Drive(std::size_t p, Sink&& sink) const {
    up.Drive(p, [this, &sink](auto&& kv) {
      for (auto&& w : f(kv.second)) sink(Out(kv.first, std::move(w)));
    });
  }
};

/// ZipWithUniqueId: ids from the stream offset, exactly as the erased sink
/// assigns them (legal because chains are size-preserving when this
/// composes — ComposeReady forces otherwise).
template <typename Up>
struct ZipUniqueIdFeed {
  using Out = std::pair<uint64_t, typename Up::Out>;

  Up up;
  uint64_t stride;

  template <typename Sink>
  void Drive(std::size_t p, Sink&& sink) const {
    uint64_t j = 0;
    up.Drive(p, [this, &sink, &j, p](auto&& x) {
      sink(Out(j++ * stride + p, std::forward<decltype(x)>(x)));
    });
  }
};

/// Bernoulli sample: the same (seed, position, element-hash) draw as the
/// erased sink, with the position counter kept per Drive call.
template <typename Up>
struct SampleFeed {
  using Out = typename Up::Out;

  Up up;
  uint64_t seed;
  uint64_t threshold;

  template <typename Sink>
  void Drive(std::size_t p, Sink&& sink) const {
    uint64_t pos = p * 0x9e3779b97f4a7c15ULL;
    up.Drive(p, [this, &sink, &pos](auto&& x) {
      pos += 0x2545f4914f6cdd1dULL;
      if (Mix64(seed ^ pos ^ Hasher{}(x)) <= threshold) {
        sink(Out(std::forward<decltype(x)>(x)));
      }
    });
  }
};

/// Roots a fresh chain at `bag`: at the materialized partitions when the
/// bag is (or can freely become) materialized, at its erased pending feed
/// otherwise. When a sibling handle already forced the shared chain state,
/// flip this handle to the memoized partitions instead of copying the
/// pending `std::function` chain (see also ComposeFeed in ops.h).
template <typename T>
SourceFeed<T> MakeSourceFeed(const Bag<T>& bag) {
  SourceFeed<T> src;
  if (bag.pending_materialized()) bag.Force();
  if (bag.pending()) {
    src.feed = bag.pending_feed();
  } else {
    src.parts = bag.shared_partitions();
  }
  return src;
}

/// The single type-erasure boundary: wraps one shared concrete chain into
/// the erased `Feed` (for `Bag<T>`-only consumers composing downstream) and
/// the `Run` closure `Force()` drives — the latter pushes straight into the
/// output vector, so a force of a static chain costs zero per-element
/// indirect calls.
template <typename Chain>
void EraseChain(const std::shared_ptr<const Chain>& chain,
                typename Bag<typename Chain::Out>::Feed* feed,
                typename Bag<typename Chain::Out>::Run* run) {
  using Out = typename Chain::Out;
  *feed = [chain](std::size_t p, const typename Bag<Out>::Sink& emit) {
    chain->Drive(p, [&emit](auto&& x) {
      emit(Out(std::forward<decltype(x)>(x)));
    });
  };
  *run = [chain](std::size_t p, std::vector<Out>& dst) {
    chain->Drive(p, [&dst](auto&& x) {
      dst.push_back(std::forward<decltype(x)>(x));
    });
  };
}

/// A Bag handle that additionally carries its pending chain's concrete
/// type, letting the next narrow op extend the chain without erasure. The
/// chain pointer is null when the bag was composed dynamically (knob off,
/// eager path, or re-rooted after a forced boundary); everything still
/// works through the erased base state then. Slicing to `Bag<T>` is always
/// safe: the base carries the erased feed and the Force run path.
template <typename Chain>
class FusedBag : public Bag<typename Chain::Out> {
 public:
  using Element = typename Chain::Out;

  FusedBag(Bag<Element> base, std::shared_ptr<const Chain> chain)
      : Bag<Element>(std::move(base)), chain_(std::move(chain)) {}

  /// `auto`-held chain handles get reassigned across loop iterations
  /// (`labels = NextRound(labels)` where the right side is an opaque Bag).
  /// Accepting any Bag of the element type keeps those call sites working:
  /// the concrete chain is dropped, so the next narrow op simply re-roots
  /// at the assigned bag's state. (Same-type FusedBag assignment still uses
  /// the implicit copy/move operators, which keep the chain.)
  FusedBag& operator=(Bag<Element> base) {
    Bag<Element>::operator=(std::move(base));
    chain_.reset();
    return *this;
  }

  /// The concrete chain; null when this handle has no extendable chain.
  const std::shared_ptr<const Chain>& chain() const { return chain_; }

 private:
  std::shared_ptr<const Chain> chain_;
};

/// True when narrow ops should build static chains (the fusion knob itself
/// is checked by ComposeReady).
inline bool StaticFeedsOn(const Cluster* c) {
  return c->config().fusion.static_feeds;
}

}  // namespace matryoshka::engine::internal

#endif  // MATRYOSHKA_ENGINE_FUSED_FEED_H_
