#ifndef MATRYOSHKA_BENCH_BENCH_UTIL_H_
#define MATRYOSHKA_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "engine/cluster.h"
#include "obs/breakdown.h"
#include "obs/chrome_trace.h"
#include "obs/json_writer.h"
#include "obs/trace_recorder.h"
#include "workloads/workload.h"

/// Shared setup for the per-figure benchmark binaries. Each binary
/// regenerates one figure of the paper's evaluation (Sec. 9): it sweeps the
/// figure's x-axis as google-benchmark args and reports the *simulated*
/// cluster time as manual time, plus jobs / shuffle / OOM status as
/// counters. Runs that the paper reports as failing (out of memory) are
/// reported with counter oom=1 and time 0.
///
/// Observability: every binary built with MATRYOSHKA_BENCH_MAIN accepts
///   --trace=FILE         Chrome/Perfetto trace_event JSON of all runs
///   --metrics-json=FILE  machine-readable per-run metrics + breakdown
/// (both stripped before benchmark::Initialize). Benchmarks opt runs in by
/// calling ObsAttach(&cluster, "figN/variant", {args}) before the state
/// loop; with neither flag present the cluster keeps a null trace sink and
/// the cost model takes the exact zero-cost path.
namespace matryoshka::bench {

/// The paper's evaluation cluster (Sec. 9.1): 25 machines, 2x8 cores, 22 GB
/// for Spark per machine, 1 Gb network, parallelism 3x total cores.
inline engine::ClusterConfig PaperCluster() {
  engine::ClusterConfig cfg;
  cfg.num_machines = 25;
  cfg.cores_per_machine = 16;
  cfg.memory_per_machine_bytes = 22.0 * (1ULL << 30);
  cfg.network_bytes_per_s = 125e6;
  cfg.job_launch_overhead_s = 0.1;
  cfg.task_overhead_s = 0.004;
  cfg.per_element_cost_s = 100e-9;
  // default_parallelism stays 0 = auto (3x total cores).
  return cfg;
}

/// The larger cluster of Sec. 9.7: 36 machines with 40 hardware threads and
/// 100 GB memory per Spark worker.
inline engine::ClusterConfig LargePaperCluster() {
  engine::ClusterConfig cfg = PaperCluster();
  cfg.num_machines = 36;
  cfg.cores_per_machine = 40;
  cfg.memory_per_machine_bytes = 100.0 * (1ULL << 30);
  return cfg;
}

/// The reference fault regime for A/B (faults on vs. off) runs: occasional
/// transient task failures with a generous retry budget (so runs survive),
/// a sprinkle of 4x stragglers, and one machine lost early in the run. All
/// draws are seeded: every benchmark iteration sees the identical fault
/// history.
inline engine::FaultPlan StandardFaultPlan(uint64_t seed = 2021) {
  engine::FaultPlan plan;
  plan.seed = seed;
  plan.task_failure_prob = 0.01;
  plan.max_task_retries = 6;
  plan.retry_backoff_s = 0.5;
  plan.straggler_fraction = 0.05;
  plan.straggler_slowdown = 4.0;
  plan.machine_loss_times_s = {30.0};
  return plan;
}

/// The reference recovery policy for checkpointed A/B arms: a generous
/// driver-retry budget with auto-checkpointing and degraded re-planning on.
/// Checkpoint bandwidth matches the 1 Gb network of PaperCluster.
inline engine::RecoveryPolicy StandardRecoveryPolicy() {
  engine::RecoveryPolicy policy;
  policy.max_driver_retries = 8;
  policy.driver_backoff_s = 2.0;
  policy.auto_checkpoint = true;
  policy.min_checkpoint_lineage = 4;
  policy.checkpoint_bytes_per_s = 125e6;
  policy.checkpoint_replicas = 2;
  policy.degraded_replanning = true;
  return policy;
}

/// Parses and strips a `--faults[=prob]` flag (must precede
/// benchmark::Initialize, which rejects unknown flags). Returns the task
/// failure probability to use for the fault-on arms: the StandardFaultPlan
/// default when the flag is absent, or the given override.
inline double ParseFaultsFlag(int* argc, char** argv) {
  double prob = StandardFaultPlan().task_failure_prob;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) continue;  // default prob
    if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      prob = std::atof(argv[i] + 9);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return prob;
}

/// Declares that the synthetic dataset of `synthetic_elements` elements
/// (about `bytes_per_element` estimated bytes each) stands for
/// `target_gb` GB of real data: sets data_scale so that each synthetic
/// element models R real ones in both CPU and memory terms.
inline void ScaleToTarget(engine::ClusterConfig* cfg, double target_gb,
                          int64_t synthetic_elements,
                          double bytes_per_element) {
  const double real_elements =
      target_gb * (1ULL << 30) / bytes_per_element;
  cfg->data_scale = real_elements / static_cast<double>(synthetic_elements);
}

/// Process-wide observability session for one bench binary: owns the
/// TraceRecorder behind the `--trace` / `--metrics-json` flags, collects one
/// record per reported run, and writes both files at exit. With neither flag
/// present it stays disabled and every hook is a no-op (clusters keep a null
/// trace sink).
class ObsSession {
 public:
  static ObsSession& Get() {
    static ObsSession session;
    return session;
  }

  /// Parses and strips `--trace=FILE` and `--metrics-json=FILE` (must run
  /// before benchmark::Initialize, which rejects unknown flags).
  void ParseFlags(int* argc, char** argv) {
    if (*argc >= 1 && binary_.empty()) {
      const char* slash = std::strrchr(argv[0], '/');
      binary_ = slash != nullptr ? slash + 1 : argv[0];
    }
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strncmp(argv[i], "--trace=", 8) == 0) {
        trace_path_ = argv[i] + 8;
        continue;
      }
      if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
        metrics_path_ = argv[i] + 15;
        continue;
      }
      argv[out++] = argv[i];
    }
    *argc = out;
  }

  bool enabled() const {
    return !trace_path_.empty() || !metrics_path_.empty();
  }

  /// The recorder benches attach to clusters, or nullptr when disabled.
  obs::TraceRecorder* recorder() { return enabled() ? &recorder_ : nullptr; }

  /// Names the runs the attached cluster will record from here on
  /// ("fig1/inner-parallel/64"); applies from the next Cluster::Reset.
  void SetRunName(std::string name) {
    if (enabled()) recorder_.SetRunNameHint(std::move(name));
  }

  /// Snapshots the finished current run (breakdown + engine metrics) into
  /// the metrics report and marks it consumed.
  void ReportRun(const engine::Metrics& metrics, bool ok,
                 const std::string& status) {
    if (!enabled()) return;
    obs::RunTrace& run = recorder_.current();
    run.reported = true;
    RunRecord rec;
    rec.name = run.name;
    rec.ok = ok;
    rec.status = status;
    rec.metrics = metrics;
    rec.breakdown = obs::ComputeBreakdown(run);
    records_.push_back(std::move(rec));
  }

  /// Writes the requested files; call once after RunSpecifiedBenchmarks.
  void Finalize() {
    if (!trace_path_.empty()) {
      std::ofstream os(trace_path_);
      obs::WriteChromeTrace(recorder_, os);
    }
    if (!metrics_path_.empty()) {
      std::ofstream os(metrics_path_);
      WriteMetricsJson(os);
    }
  }

  /// Real wall-clock measurement of one run (bench_engine_throughput): the
  /// engine *really executes* every operator, and these are the only numbers
  /// in the metrics report measured on the hardware clock rather than the
  /// simulated one.
  struct WallStats {
    double real_s = 0.0;
    int64_t elements = 0;
    double elements_per_s = 0.0;
    /// Serving-load extension (bench_serving): sustained request throughput
    /// and per-request wall-clock latency percentiles. Emitted into the
    /// "wall" object only when has_latency is set — an additive extension
    /// of the matryoshka-bench-metrics-v1 schema (validators assert key
    /// subsets, so older readers are unaffected).
    bool has_latency = false;
    double requests_per_s = 0.0;
    double p50_s = 0.0;
    double p99_s = 0.0;
  };

  /// Appends one named record directly, without the trace recorder: wall-time
  /// benches keep the measured region free of observability overhead (no
  /// trace sink attached to the cluster), then report the final metrics and
  /// the wall-clock stats here.
  void ReportNamedRun(std::string name, const engine::Metrics& metrics,
                      bool ok, const std::string& status,
                      const WallStats& wall) {
    if (!enabled()) return;
    RunRecord rec;
    rec.name = std::move(name);
    rec.ok = ok;
    rec.status = status;
    rec.metrics = metrics;
    rec.has_wall = true;
    rec.wall = wall;
    // Last write wins: google-benchmark re-invokes the function while
    // calibrating the iteration count, and only the final (longest)
    // measurement should survive in the snapshot.
    for (RunRecord& existing : records_) {
      if (existing.name == rec.name) {
        existing = std::move(rec);
        return;
      }
    }
    records_.push_back(std::move(rec));
  }

 private:
  struct RunRecord {
    std::string name;
    bool ok = true;
    std::string status;
    engine::Metrics metrics;
    obs::Breakdown breakdown;
    bool has_wall = false;
    WallStats wall;
  };

  void WriteMetricsJson(std::ostream& os) const {
    os << "{\n  \"schema\": \"matryoshka-bench-metrics-v1\",\n";
    os << "  \"binary\": \"" << obs::JsonEscape(binary_) << "\",\n";
    os << "  \"runs\": [";
    bool first = true;
    for (const RunRecord& rec : records_) {
      if (!first) os << ",";
      first = false;
      const engine::Metrics& m = rec.metrics;
      os << "\n    {\"name\": \"" << obs::JsonEscape(rec.name) << "\", ";
      os << "\"ok\": " << (rec.ok ? "true" : "false") << ", ";
      os << "\"status\": \"" << obs::JsonEscape(rec.status) << "\",\n";
      os << "     \"metrics\": {";
      os << "\"simulated_time_s\": " << obs::JsonDouble(m.simulated_time_s);
      os << ", \"jobs\": " << m.jobs;
      os << ", \"stages\": " << m.stages;
      os << ", \"tasks\": " << m.tasks;
      os << ", \"elements_processed\": " << m.elements_processed;
      os << ", \"shuffle_bytes\": " << obs::JsonDouble(m.shuffle_bytes);
      os << ", \"broadcast_bytes\": " << obs::JsonDouble(m.broadcast_bytes);
      os << ", \"spilled_bytes\": " << obs::JsonDouble(m.spilled_bytes);
      os << ", \"spill_events\": " << m.spill_events;
      os << ", \"peak_task_bytes\": " << obs::JsonDouble(m.peak_task_bytes);
      os << ", \"peak_machine_bytes\": "
         << obs::JsonDouble(m.peak_machine_bytes);
      os << ", \"failed_tasks\": " << m.failed_tasks;
      os << ", \"task_retries\": " << m.task_retries;
      os << ", \"speculative_launches\": " << m.speculative_launches;
      os << ", \"machines_lost\": " << m.machines_lost;
      os << ", \"recovery_time_s\": " << obs::JsonDouble(m.recovery_time_s);
      os << ", \"checkpoints_written\": " << m.checkpoints_written;
      os << ", \"checkpoint_bytes\": " << obs::JsonDouble(m.checkpoint_bytes);
      os << ", \"driver_retries\": " << m.driver_retries;
      os << ", \"plan_fallbacks\": " << m.plan_fallbacks;
      // Additive matryoshka-bench-metrics-v1 extension: REAL bytes spilled
      // to temp-file runs by the external (out-of-core) subsystem. All zero
      // unless the run had a real_memory_budget_bytes.
      os << ", \"real_spilled_bytes\": "
         << obs::JsonDouble(m.real_spilled_bytes);
      os << ", \"real_spill_events\": " << m.real_spill_events;
      os << ", \"real_spill_runs\": " << m.real_spill_runs;
      // Additive extension (real-fault contract): injected real-IO faults
      // and what the hardened IO layer did about them. All zero unless a
      // RealFaultPlan (or MATRYOSHKA_REAL_FAULTS) armed the failpoints.
      os << ", \"real_io_faults_injected\": " << m.real_io_faults_injected;
      os << ", \"real_io_retries\": " << m.real_io_retries;
      os << ", \"checksum_failures\": " << m.checksum_failures;
      os << ", \"inmemory_fallbacks\": " << m.inmemory_fallbacks;
      os << "},\n     \"breakdown\": ";
      obs::WriteBreakdownJson(rec.breakdown, os);
      if (rec.has_wall) {
        os << ",\n     \"wall\": {";
        os << "\"real_s\": " << obs::JsonDouble(rec.wall.real_s);
        os << ", \"elements\": " << rec.wall.elements;
        os << ", \"elements_per_s\": "
           << obs::JsonDouble(rec.wall.elements_per_s);
        if (rec.wall.has_latency) {
          os << ", \"requests_per_s\": "
             << obs::JsonDouble(rec.wall.requests_per_s);
          os << ", \"p50_s\": " << obs::JsonDouble(rec.wall.p50_s);
          os << ", \"p99_s\": " << obs::JsonDouble(rec.wall.p99_s);
        }
        os << "}";
      }
      os << "}";
    }
    os << "\n  ]\n}\n";
  }

  obs::TraceRecorder recorder_;
  std::string binary_;
  std::string trace_path_;
  std::string metrics_path_;
  std::vector<RunRecord> records_;
};

/// Attaches the session recorder (if any) to `cluster` and names its
/// upcoming runs `label "/" arg0 "/" arg1 ...` — call once per benchmark
/// invocation, before the state loop. Passing the args explicitly matches
/// google-benchmark's name/arg/... convention without depending on
/// State::name() (absent in older releases).
inline void ObsAttach(engine::Cluster* cluster, const std::string& label,
                      std::initializer_list<int64_t> args = {}) {
  ObsSession& session = ObsSession::Get();
  if (!session.enabled()) return;
  std::string name = label;
  for (int64_t arg : args) {
    name += "/";
    name += std::to_string(arg);
  }
  session.SetRunName(std::move(name));
  cluster->set_trace(session.recorder());
}

/// Fills the benchmark state from a finished run: simulated time as manual
/// time, plus diagnostic counters. OOM runs get time 0 and oom=1 (mirroring
/// the "X" marks of the paper's figures).
template <typename K, typename R>
void Report(benchmark::State& state,
            const workloads::WorkloadResult<K, R>& result) {
  if (result.ok()) {
    state.SetIterationTime(result.metrics.simulated_time_s);
    state.counters["oom"] = 0;
  } else {
    state.SetIterationTime(0.0);
    state.counters["oom"] = result.status.IsOutOfMemory() ? 1 : -1;
    state.SetLabel(result.status.ToString());
  }
  state.counters["jobs"] = static_cast<double>(result.metrics.jobs);
  state.counters["stages"] = static_cast<double>(result.metrics.stages);
  state.counters["shuffle_gb"] =
      result.metrics.shuffle_bytes / (1ULL << 30);
  state.counters["broadcast_gb"] =
      result.metrics.broadcast_bytes / (1ULL << 30);
  state.counters["peak_machine_gb"] =
      result.metrics.peak_machine_bytes / (1ULL << 30);
  state.counters["spills"] = static_cast<double>(result.metrics.spill_events);
  if (result.metrics.failed_tasks > 0 || result.metrics.machines_lost > 0 ||
      result.metrics.speculative_launches > 0) {
    state.counters["retries"] =
        static_cast<double>(result.metrics.task_retries);
    state.counters["failed_tasks"] =
        static_cast<double>(result.metrics.failed_tasks);
    state.counters["recovery_s"] = result.metrics.recovery_time_s;
  }
  if (result.metrics.checkpoints_written > 0 ||
      result.metrics.driver_retries > 0 || result.metrics.plan_fallbacks > 0) {
    state.counters["checkpoints"] =
        static_cast<double>(result.metrics.checkpoints_written);
    state.counters["checkpoint_gb"] =
        result.metrics.checkpoint_bytes / (1ULL << 30);
    state.counters["driver_retries"] =
        static_cast<double>(result.metrics.driver_retries);
    state.counters["plan_fallbacks"] =
        static_cast<double>(result.metrics.plan_fallbacks);
  }
  ObsSession::Get().ReportRun(result.metrics, result.ok(),
                              result.status.ToString());
}

}  // namespace matryoshka::bench

/// Drop-in replacement for BENCHMARK_MAIN() that installs the observability
/// flags (which must be stripped before benchmark::Initialize) and writes
/// the requested trace/metrics files after the benchmarks ran.
#define MATRYOSHKA_BENCH_MAIN()                                            \
  int main(int argc, char** argv) {                                        \
    ::matryoshka::bench::ObsSession::Get().ParseFlags(&argc, argv);        \
    ::benchmark::Initialize(&argc, argv);                                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    ::benchmark::RunSpecifiedBenchmarks();                                 \
    ::benchmark::Shutdown();                                               \
    ::matryoshka::bench::ObsSession::Get().Finalize();                     \
    return 0;                                                              \
  }                                                                        \
  int main(int, char**)

#endif  // MATRYOSHKA_BENCH_BENCH_UTIL_H_
