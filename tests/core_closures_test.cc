// Tests for closure handling (Sec. 5) and the optimizer's physical choices
// (Sec. 8): MapWithClosure, HalfLiftedMapWithClosure, HalfLiftedJoin, join
// strategy and partition-count selection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/matryoshka.h"

namespace matryoshka::core {
namespace {

using engine::Bag;
using engine::Cluster;
using engine::ClusterConfig;
using engine::Parallelize;

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

class ClosuresTest : public ::testing::Test {
 protected:
  ClosuresTest() : cluster_(TestConfig()) {}
  Cluster cluster_;
};

TEST_F(ClosuresTest, MapWithClosurePairsEachElementWithItsTagsClosure) {
  // Per group: initWeight = 1 / count(group); every element of the group is
  // mapped with ITS group's weight (the PageRank init pattern of Sec. 5.1).
  std::vector<std::pair<int64_t, int64_t>> data{
      {1, 10}, {1, 11}, {2, 20}, {2, 21}, {2, 22}};
  auto nested = GroupByKeyIntoNestedBag(Parallelize(&cluster_, data, 3));
  auto counts = LiftedCount(nested.values());
  auto init_weight = UnaryScalarOp(
      counts, [](int64_t c) { return 1.0 / static_cast<double>(c); });
  auto weighted = MapWithClosure(
      nested.values(), init_weight,
      [](int64_t x, double w) { return std::pair<int64_t, double>(x, w); });
  auto v = weighted.Flatten().ToVector();
  ASSERT_EQ(v.size(), 5u);
  for (auto& [x, w] : v) {
    if (x / 10 == 1) {
      EXPECT_DOUBLE_EQ(w, 0.5);
    } else {
      EXPECT_DOUBLE_EQ(w, 1.0 / 3.0);
    }
  }
}

TEST_F(ClosuresTest, MapWithClosureBroadcastAndRepartitionAgree) {
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 200; ++i) data.emplace_back(i % 8, i);
  auto run = [&](JoinStrategy strategy) {
    Cluster c(TestConfig());
    OptimizerOptions opts;
    opts.join_strategy = strategy;
    auto nested =
        GroupByKeyIntoNestedBag(Parallelize(&c, data, 5), opts);
    auto counts = LiftedCount(nested.values());
    auto tagged = MapWithClosure(
        nested.values(), counts,
        [](int64_t x, int64_t cnt) { return x * 1000 + cnt; });
    auto v = tagged.Flatten().ToVector();
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(run(JoinStrategy::kBroadcast), run(JoinStrategy::kRepartition));
}

TEST_F(ClosuresTest, HalfLiftedMapWithClosureCrossesPrimaryWithEveryTag) {
  // K-means pattern: shared points (outside) x per-run means (inside).
  auto points = Parallelize(&cluster_, std::vector<int64_t>{1, 2, 3}, 2);
  auto runs = Parallelize(&cluster_, std::vector<int64_t>{10, 20}, 2);
  auto lifted_runs = LiftFlatBag(runs);
  auto crossed = HalfLiftedMapWithClosure(
      points, lifted_runs, [](int64_t p, int64_t r) { return p + r; });
  auto v = crossed.Flatten().ToVector();
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int64_t>{11, 12, 13, 21, 22, 23}));
  // Per tag, all 3 points appear.
  auto counts = LiftedCount(crossed);
  for (auto& [t, c] : counts.repr().ToVector()) EXPECT_EQ(c, 3);
}

TEST_F(ClosuresTest, HalfLiftedStrategiesProduceIdenticalResults) {
  auto run = [&](CrossStrategy strategy) {
    Cluster c(TestConfig());
    OptimizerOptions opts;
    opts.cross_strategy = strategy;
    auto points = Parallelize(&c, std::vector<int64_t>{1, 2, 3, 4}, 3);
    auto runs = Parallelize(&c, std::vector<int64_t>{100, 200, 300}, 2);
    auto lifted = LiftFlatBag(runs, opts);
    auto crossed = HalfLiftedMapWithClosure(
        points, lifted, [](int64_t p, int64_t r) { return p * r; });
    auto v = crossed.Flatten().ToVector();
    std::sort(v.begin(), v.end());
    return v;
  };
  auto a = run(CrossStrategy::kBroadcastScalar);
  auto b = run(CrossStrategy::kBroadcastPrimary);
  auto c = run(CrossStrategy::kAuto);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a.size(), 12u);
}

TEST_F(ClosuresTest, HalfLiftedBroadcastPrimaryOomsWhenPrimaryHuge) {
  ClusterConfig cfg = TestConfig();
  cfg.data_scale = 1e6;  // each synthetic element stands for 1e6 real ones
  cfg.memory_per_machine_bytes = 1e9;
  Cluster c(cfg);
  std::vector<int64_t> big(100000, 1);
  auto points = Parallelize(&c, big, 8);  // ~800 KB * 1e6 = 800 GB scaled
  OptimizerOptions opts;
  opts.cross_strategy = CrossStrategy::kBroadcastPrimary;
  auto runs = LiftFlatBag(Parallelize(&c, std::vector<int64_t>{1}, 1), opts);
  HalfLiftedMapWithClosure(points, runs,
                           [](int64_t p, int64_t r) { return p + r; });
  EXPECT_TRUE(c.status().IsOutOfMemory());
}

TEST_F(ClosuresTest, HalfLiftedAutoAvoidsTheOom) {
  ClusterConfig cfg = TestConfig();
  cfg.data_scale = 1e6;
  cfg.memory_per_machine_bytes = 1e9;
  Cluster c(cfg);
  std::vector<int64_t> big(100000, 1);
  auto points = Parallelize(&c, big, 8);
  auto runs = LiftFlatBag(Parallelize(&c, std::vector<int64_t>{1}, 1));
  auto crossed = HalfLiftedMapWithClosure(
      points, runs, [](int64_t p, int64_t r) { return p + r; });
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(crossed.repr().Size(), 100000);
}

TEST_F(ClosuresTest, HalfLiftedJoinMatchesOnKeyAcrossLiftBoundary) {
  // InnerBag of (vertex, rank) inside the UDF joined with a static plain
  // bag of (vertex, degree) from outside.
  std::vector<std::pair<int64_t, std::pair<int64_t, int64_t>>> inner{
      {1, {100, 5}}, {1, {101, 6}}, {2, {100, 7}}};
  auto nested = GroupByKeyIntoNestedBag(Parallelize(&cluster_, inner, 2));
  std::vector<std::pair<int64_t, int64_t>> degrees{{100, 3}, {101, 4}};
  auto deg_bag = Parallelize(&cluster_, degrees, 2);
  auto joined = HalfLiftedJoin(nested.values(), deg_bag);
  auto v = joined.Flatten().ToVector();
  std::sort(v.begin(), v.end());
  // Every (vertex, rank) matched its degree; group tags kept both groups'
  // vertex-100 entries separate.
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0],
            (std::pair<int64_t, std::pair<int64_t, int64_t>>{100, {5, 3}}));
  EXPECT_EQ(v[1],
            (std::pair<int64_t, std::pair<int64_t, int64_t>>{100, {7, 3}}));
  EXPECT_EQ(v[2],
            (std::pair<int64_t, std::pair<int64_t, int64_t>>{101, {6, 4}}));
}

// --- Optimizer decision unit tests (Sec. 8) ---

TEST(OptimizerTest, ScalarPartitionsTracksTagCount) {
  ClusterConfig cfg = TestConfig();  // default_parallelism = 8
  Optimizer opt(&cfg, {});
  EXPECT_EQ(opt.ScalarPartitions(1), 1);
  EXPECT_EQ(opt.ScalarPartitions(5), 5);
  EXPECT_EQ(opt.ScalarPartitions(100), 8);
  EXPECT_EQ(opt.ScalarPartitions(0), 1);
}

TEST(OptimizerTest, ScalarPartitionsDisabledUsesDefault) {
  ClusterConfig cfg = TestConfig();
  OptimizerOptions o;
  o.tune_partitions = false;
  Optimizer opt(&cfg, o);
  EXPECT_EQ(opt.ScalarPartitions(1), 8);
}

TEST(OptimizerTest, JoinChoiceSwitchesAtCoreCount) {
  ClusterConfig cfg = TestConfig();  // 16 cores
  Optimizer opt(&cfg, {});
  EXPECT_EQ(opt.ChooseJoin(1), JoinStrategy::kBroadcast);
  EXPECT_EQ(opt.ChooseJoin(15), JoinStrategy::kBroadcast);
  EXPECT_EQ(opt.ChooseJoin(16), JoinStrategy::kRepartition);
  EXPECT_EQ(opt.ChooseJoin(10000), JoinStrategy::kRepartition);
}

TEST(OptimizerTest, ForcedJoinStrategyWins) {
  ClusterConfig cfg = TestConfig();
  OptimizerOptions o;
  o.join_strategy = JoinStrategy::kBroadcast;
  Optimizer opt(&cfg, o);
  EXPECT_EQ(opt.ChooseJoin(1 << 20), JoinStrategy::kBroadcast);
}

TEST(OptimizerTest, CrossChoicePrefersSinglePartitionScalar) {
  ClusterConfig cfg = TestConfig();
  Optimizer opt(&cfg, {});
  EXPECT_EQ(opt.ChooseCross(1, 1e9, 10.0), CrossStrategy::kBroadcastScalar);
}

TEST(OptimizerTest, CrossChoiceComparesSizesOtherwise) {
  ClusterConfig cfg = TestConfig();
  Optimizer opt(&cfg, {});
  EXPECT_EQ(opt.ChooseCross(4, 100.0, 1e9), CrossStrategy::kBroadcastScalar);
  EXPECT_EQ(opt.ChooseCross(4, 1e9, 100.0), CrossStrategy::kBroadcastPrimary);
}

TEST(OptimizerTest, ForcedCrossStrategyWins) {
  ClusterConfig cfg = TestConfig();
  OptimizerOptions o;
  o.cross_strategy = CrossStrategy::kBroadcastPrimary;
  Optimizer opt(&cfg, o);
  EXPECT_EQ(opt.ChooseCross(1, 1.0, 1e9), CrossStrategy::kBroadcastPrimary);
}

TEST_F(ClosuresTest, BroadcastJoinAvoidsShuffleInTagJoin) {
  // With few tags the optimizer must pick broadcast: no shuffle bytes from
  // the tag join itself on the big side.
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 500; ++i) data.emplace_back(i % 4, i);
  auto nested = GroupByKeyIntoNestedBag(Parallelize(&cluster_, data, 4));
  auto counts = LiftedCount(nested.values());
  const double shuffle_before = cluster_.metrics().shuffle_bytes;
  MapWithClosure(nested.values(), counts,
                 [](int64_t x, int64_t) { return x; });
  // Only broadcast traffic should have been added (4 tags << 16 cores).
  EXPECT_DOUBLE_EQ(cluster_.metrics().shuffle_bytes, shuffle_before);
  EXPECT_GT(cluster_.metrics().broadcast_bytes, 0.0);
}

}  // namespace
}  // namespace matryoshka::core
