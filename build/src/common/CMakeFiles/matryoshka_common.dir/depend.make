# Empty dependencies file for matryoshka_common.
# This may be replaced when dependencies are built.
