file(REMOVE_RECURSE
  "libmatryoshka_workloads.a"
)
