#include "obs/chrome_trace.h"

#include <sstream>

#include "obs/breakdown.h"
#include "obs/json_writer.h"
#include "obs/plan_capture.h"

namespace matryoshka::obs {

namespace {

/// Emits one complete event ("ph":"X"). `tid` 0 is the driver lane; slot s
/// maps to tid s+1.
void EmitComplete(std::ostream& os, bool* first, int pid, int64_t tid,
                  const std::string& name, const char* cat, double begin_s,
                  double end_s, const std::string& args_json) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << cat
     << "\",\"ph\":\"X\",\"ts\":" << JsonMicros(begin_s)
     << ",\"dur\":" << JsonMicros(end_s - begin_s) << ",\"pid\":" << pid
     << ",\"tid\":" << tid;
  if (!args_json.empty()) os << ",\"args\":" << args_json;
  os << "}";
}

void EmitInstant(std::ostream& os, bool* first, int pid, int64_t tid,
                 const std::string& name, double t_s,
                 const std::string& args_json) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":\"" << JsonEscape(name)
     << "\",\"cat\":\"instant\",\"ph\":\"i\",\"s\":\"p\",\"ts\":"
     << JsonMicros(t_s) << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (!args_json.empty()) os << ",\"args\":" << args_json;
  os << "}";
}

void EmitMetadata(std::ostream& os, bool* first, int pid, int64_t tid,
                  const char* what, const std::string& value) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":\"" << JsonEscape(value) << "\"}}";
}

void EmitRun(std::ostream& os, bool* first, const RunTrace& run, int pid) {
  const std::string run_name =
      run.name.empty() ? "run " + std::to_string(pid) : run.name;
  EmitMetadata(os, first, pid, -1, "process_name", run_name);
  EmitMetadata(os, first, pid, 0, "thread_name", "driver");
  for (int64_t s = 0; s <= run.max_slot; ++s) {
    EmitMetadata(os, first, pid, s + 1, "thread_name",
                 "slot " + std::to_string(s));
  }

  for (const JobSpan& job : run.jobs) {
    EmitComplete(os, first, pid, 0, "job:" + job.label, "job_launch",
                 job.begin_s, job.end_s,
                 "{\"job\":" + std::to_string(job.id) + "}");
  }
  for (const StageSpan& stage : run.stages) {
    std::string args = "{\"stage\":" + std::to_string(stage.id) +
                       ",\"job\":" + std::to_string(stage.job_id) +
                       ",\"tasks\":" + std::to_string(stage.num_tasks) +
                       ",\"lineage_depth\":" +
                       std::to_string(stage.lineage_depth) +
                       ",\"critical_slot\":" +
                       std::to_string(stage.critical_slot) +
                       ",\"spill_factor\":" + JsonDouble(stage.spill_factor) +
                       ",\"compute_s\":" + JsonDouble(stage.compute_s) +
                       ",\"overhead_s\":" + JsonDouble(stage.overhead_s) +
                       ",\"fault_s\":" + JsonDouble(stage.fault_s) + "}";
    EmitComplete(os, first, pid, 0, "stage:" + stage.label, "stage",
                 stage.begin_s, stage.end_s, args);
  }
  for (const DriverSpan& span : run.driver) {
    EmitComplete(os, first, pid, 0, span.label, CategoryName(span.category),
                 span.begin_s, span.end_s,
                 "{\"bytes\":" + JsonDouble(span.bytes) + "}");
  }
  for (const TaskSpan& task : run.tasks) {
    std::string args = "{\"stage\":" + std::to_string(task.stage_id) +
                       ",\"task\":" + std::to_string(task.task_index) +
                       ",\"base_cost_s\":" + JsonDouble(task.base_cost_s);
    if (task.retries > 0) {
      args += ",\"retries\":" + std::to_string(task.retries);
    }
    if (task.speculative) args += ",\"speculative\":true";
    args += "}";
    const StageSpan& stage =
        run.stages[static_cast<std::size_t>(task.stage_id - 1)];
    std::string name = stage.label + "#" + std::to_string(task.task_index);
    if (task.speculative) name += "*";
    EmitComplete(os, first, pid, task.slot + 1, name,
                 task.speculative ? "speculative" : "task", task.begin_s,
                 task.end_s, args);
  }
  for (const InstantEvent& event : run.instants) {
    EmitInstant(os, first, pid, 0, event.name, event.t_s,
                event.detail.empty()
                    ? ""
                    : "{\"detail\":\"" + JsonEscape(event.detail) + "\"}");
  }
}

}  // namespace

void WriteChromeTrace(const TraceRecorder& recorder, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  bool first = true;
  int pid = 0;
  for (const RunTrace& run : recorder.runs()) {
    if (run.IsEmpty()) continue;
    EmitRun(os, &first, run, ++pid);
  }
  os << "\n],\n\"matryoshkaBreakdown\":[";
  bool first_run = true;
  for (const RunTrace& run : recorder.runs()) {
    if (run.IsEmpty()) continue;
    if (!first_run) os << ",";
    first_run = false;
    os << "\n{\"run\":\"" << JsonEscape(run.name) << "\",\"breakdown\":";
    WriteBreakdownJson(ComputeBreakdown(run), os);
    os << "}";
  }
  os << "\n],\n\"matryoshkaPlan\":";
  WritePlanJson(recorder, os);
  os << "}\n";
}

std::string ChromeTraceToString(const TraceRecorder& recorder) {
  std::ostringstream os;
  WriteChromeTrace(recorder, os);
  return os.str();
}

}  // namespace matryoshka::obs
