#ifndef MATRYOSHKA_CORE_TAG_H_
#define MATRYOSHKA_CORE_TAG_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.h"
#include "common/logging.h"
#include "common/sizing.h"

namespace matryoshka::core {

/// Identifier of one invocation of an original (unlifted) UDF.
///
/// Every element of the flat bag representing an InnerScalar or InnerBag
/// carries a Tag saying which inner computation it belongs to (Sec. 4.3-4.4
/// of the paper). For programs with more than two levels of parallelism the
/// tag is *composite*: one component per surrounding lifted UDF (Sec. 7,
/// "lifting tags for three or more levels are composed of one lifting tag
/// for each outer level"). A depth-1 tag identifies an invocation at the
/// second level, a depth-2 tag at the third level, and so on.
///
/// Tags are small PODs (trivially copyable, hashable, totally ordered) so
/// they can be shuffled and used as composite join keys cheaply.
class Tag {
 public:
  static constexpr uint32_t kMaxDepth = 4;

  Tag() : depth_(0) {}

  /// A depth-1 tag for top-level lifted UDF invocation `id`.
  static Tag Root(uint64_t id) {
    Tag t;
    t.depth_ = 1;
    t.ids_[0] = id;
    return t;
  }

  /// Derives the tag of an invocation nested inside this one.
  Tag Child(uint64_t id) const {
    MATRYOSHKA_CHECK(depth_ < kMaxDepth) << "tag nesting deeper than "
                                         << kMaxDepth << " levels";
    Tag t = *this;
    t.ids_[t.depth_++] = id;
    return t;
  }

  /// The tag of the enclosing invocation (depth reduced by one).
  Tag Parent() const {
    MATRYOSHKA_CHECK(depth_ > 0);
    Tag t = *this;
    t.ids_[--t.depth_] = 0;
    return t;
  }

  uint32_t depth() const { return depth_; }
  uint64_t id_at(uint32_t level) const {
    MATRYOSHKA_DCHECK(level < depth_);
    return ids_[level];
  }
  /// The innermost id component.
  uint64_t leaf_id() const {
    MATRYOSHKA_CHECK(depth_ > 0);
    return ids_[depth_ - 1];
  }

  friend bool operator==(const Tag& a, const Tag& b) {
    if (a.depth_ != b.depth_) return false;
    for (uint32_t i = 0; i < a.depth_; ++i) {
      if (a.ids_[i] != b.ids_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Tag& a, const Tag& b) { return !(a == b); }
  friend bool operator<(const Tag& a, const Tag& b) {
    if (a.depth_ != b.depth_) return a.depth_ < b.depth_;
    for (uint32_t i = 0; i < a.depth_; ++i) {
      if (a.ids_[i] != b.ids_[i]) return a.ids_[i] < b.ids_[i];
    }
    return false;
  }

  std::size_t HashValue() const {
    std::size_t seed = depth_;
    for (uint32_t i = 0; i < depth_; ++i) seed = HashCombine(seed, ids_[i]);
    return seed;
  }

  std::string ToString() const {
    std::string s = "[";
    for (uint32_t i = 0; i < depth_; ++i) {
      if (i > 0) s += ".";
      s += std::to_string(ids_[i]);
    }
    s += "]";
    return s;
  }

 private:
  std::array<uint64_t, kMaxDepth> ids_{};
  uint32_t depth_;
};

}  // namespace matryoshka::core

namespace matryoshka::sizing_internal {
// On the wire a tag is one 64-bit id per level (the in-memory struct is
// padded to max depth, but shuffles/broadcasts move the serialized form).
template <>
struct Sizer<core::Tag> {
  static std::size_t Of(const core::Tag& t) {
    return sizeof(uint64_t) * std::max<uint32_t>(1, t.depth());
  }
};
}  // namespace matryoshka::sizing_internal

namespace std {
template <>
struct hash<matryoshka::core::Tag> {
  std::size_t operator()(const matryoshka::core::Tag& t) const {
    return t.HashValue();
  }
};
}  // namespace std

#endif  // MATRYOSHKA_CORE_TAG_H_
