#ifndef MATRYOSHKA_CORE_CLOSURES_H_
#define MATRYOSHKA_CORE_CLOSURES_H_

#include <type_traits>
#include <utility>
#include <vector>

#include "core/inner_bag.h"
#include "core/inner_scalar.h"
#include "core/optimizer.h"
#include "core/tag_join.h"
#include "engine/bag.h"
#include "engine/join.h"
#include "engine/ops.h"

/// Lifted operations for UDFs that capture outside variables (closures,
/// Sec. 5), including the half-lifted operations whose physical strategy the
/// optimizer picks at runtime (Sec. 8.3).
namespace matryoshka::core {

/// Unlifted-UDF closure case (Sec. 5.1): a map whose UDF is not lifted but
/// captures a variable that became an InnerScalar (e.g. PageRank's
/// initWeight). Modeled as a two-input operation: the primary InnerBag is
/// joined with the closure InnerScalar on the tag (physical join chosen per
/// Sec. 8.2), and the UDF receives the matching closure value as an extra
/// argument: pages.mapWithClosure(initWeight, (x, clos) => ...).
template <typename E, typename C, typename F>
auto MapWithClosure(const InnerBag<E>& primary, const InnerScalar<C>& closure,
                    F f, double weight = 1.0)
    -> InnerBag<std::decay_t<
        decltype(f(std::declval<const E&>(), std::declval<const C&>()))>> {
  using U = std::decay_t<
      decltype(f(std::declval<const E&>(), std::declval<const C&>()))>;
  // The closure's context carries the live tag set (it may be narrower than
  // the primary's, e.g. inside a lifted loop), so its size drives the join
  // choice and the result context.
  auto joined = TagJoin(closure.ctx(), primary.repr(), closure.repr());
  auto out = engine::Map(
      joined,
      [f](const std::pair<Tag, std::pair<E, C>>& p) {
        return std::pair<Tag, U>(p.first,
                                 f(p.second.first, p.second.second));
      },
      weight);
  return InnerBag<U>(closure.ctx(), std::move(out));
}

/// Lifted-UDF closure case (Sec. 5.2 + 8.3): the primary input is a *plain*
/// bag defined outside the lifted UDF (e.g. the training points shared by
/// every K-means run), the closure is an InnerScalar from inside it (e.g.
/// the current means of every run). Semantically this replicates the
/// primary bag for every tag — a cross product — and applies f.
///
/// The optimizer chooses which side to broadcast (CrossStrategy): the
/// InnerScalar when it has one partition (the common case) or whichever
/// side the size estimator says is smaller; a forced wrong choice reproduces
/// the crashes/slowdowns of Fig. 8 (right).
template <typename E, typename C, typename F>
auto HalfLiftedMapWithClosure(const engine::Bag<E>& primary,
                              const InnerScalar<C>& closure, F f,
                              double weight = 1.0)
    -> InnerBag<std::decay_t<
        decltype(f(std::declval<const E&>(), std::declval<const C&>()))>> {
  using U = std::decay_t<
      decltype(f(std::declval<const E&>(), std::declval<const C&>()))>;
  const LiftingContext& ctx = closure.ctx();
  engine::Cluster* c = ctx.cluster();
  using Out = engine::Bag<std::pair<Tag, U>>;
  if (!c->ok()) return InnerBag<U>(ctx, Out(c));

  const double out_scale = primary.scale() * closure.repr().scale();
  const CrossStrategy strategy = ctx.optimizer().ChooseCross(
      closure.repr().num_partitions(), engine::RealBagBytes(closure.repr()),
      engine::RealBagBytes(primary));

  if (strategy == CrossStrategy::kBroadcastScalar) {
    // Ship all (tag, closure-value) pairs to every machine; each primary
    // partition emits one output per (element, tag).
    c->AccrueBroadcast(engine::RealBagBytes(closure.repr()) * 2.0,
                       "cross[scalar]");
    if (!c->ok()) return InnerBag<U>(ctx, Out(c));
    std::vector<std::pair<Tag, C>> clos = closure.repr().ToVector();
    std::vector<double> costs;
    costs.reserve(primary.partitions().size());
    for (const auto& part : primary.partitions()) {
      costs.push_back(c->ComputeCost(
          static_cast<double>(part.size() * clos.size()) * out_scale,
          weight));
    }
    c->AccrueStage(costs, /*lineage_depth=*/1,
                   engine::StageContext{"cross[probe-scalar]"});
    typename Out::Partitions out(primary.partitions().size());
    ParallelFor(c->pool(), primary.partitions().size(), [&](std::size_t i) {
      out[i].reserve(primary.partitions()[i].size() * clos.size());
      for (const auto& x : primary.partitions()[i]) {
        for (const auto& [t, cv] : clos) out[i].emplace_back(t, f(x, cv));
      }
    });
    return InnerBag<U>(ctx, Out(c, std::move(out), out_scale));
  }

  // kBroadcastPrimary: ship the primary bag everywhere; each closure
  // partition emits one output per (tag, element).
  c->AccrueBroadcast(engine::RealBagBytes(primary) * 2.0, "cross[primary]");
  if (!c->ok()) return InnerBag<U>(ctx, Out(c));
  std::vector<E> prim = primary.ToVector();
  std::vector<double> costs;
  costs.reserve(closure.repr().partitions().size());
  for (const auto& part : closure.repr().partitions()) {
    costs.push_back(c->ComputeCost(
        static_cast<double>(part.size() * prim.size()) * out_scale, weight));
  }
  c->AccrueStage(costs, /*lineage_depth=*/1,
                 engine::StageContext{"cross[probe-primary]"});
  typename Out::Partitions out(closure.repr().partitions().size());
  ParallelFor(c->pool(), closure.repr().partitions().size(),
              [&](std::size_t i) {
                out[i].reserve(closure.repr().partitions()[i].size() *
                               prim.size());
                for (const auto& [t, cv] : closure.repr().partitions()[i]) {
                  for (const auto& x : prim) out[i].emplace_back(t, f(x, cv));
                }
              });
  return InnerBag<U>(ctx, Out(c, std::move(out), out_scale));
}

/// Half-lifted equi-join (Sec. 5.2 code listing): joins an InnerBag of
/// (K, V) pairs from inside the lifted UDF with a plain bag of (K, W) pairs
/// from outside it, on K. The tag rides along in the value:
///   rekeyed = left.repr.map{(t,(k,v)) => (k,(t,v))}
///   joined  = rekeyed join right
///   result  = joined.map{(k,((t,v),w)) => (t,(k,(v,w)))}
template <typename K, typename V, typename W>
InnerBag<std::pair<K, std::pair<V, W>>> HalfLiftedJoin(
    const InnerBag<std::pair<K, V>>& left,
    const engine::Bag<std::pair<K, W>>& right, int64_t num_partitions = -1) {
  auto rekeyed = engine::Map(
      left.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<K, std::pair<Tag, V>>(
            p.second.first, std::pair<Tag, V>(p.first, p.second.second));
      });
  auto joined = engine::RepartitionJoin(rekeyed, right, num_partitions);
  auto out = engine::Map(
      joined,
      [](const std::pair<K, std::pair<std::pair<Tag, V>, W>>& p) {
        return std::pair<Tag, std::pair<K, std::pair<V, W>>>(
            p.second.first.first,
            std::pair<K, std::pair<V, W>>(
                p.first,
                std::pair<V, W>(p.second.first.second, p.second.second)));
      });
  return InnerBag<std::pair<K, std::pair<V, W>>>(left.ctx(), std::move(out));
}

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_CLOSURES_H_
