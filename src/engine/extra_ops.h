#ifndef MATRYOSHKA_ENGINE_EXTRA_OPS_H_
#define MATRYOSHKA_ENGINE_EXTRA_OPS_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "engine/bag.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

/// Secondary operators of the flat engine, rounding out the RDD-style API:
/// sampling (the paper's Sec. 2.3 mentions sampling-based hyperparameter
/// techniques that vary sample sizes), multiset difference/intersection,
/// generalized keyed aggregation, and a top-k action.
namespace matryoshka::engine {

/// Bernoulli sample: keeps each element independently with probability
/// `fraction`, deterministically derived from (seed, element hash, position)
/// so re-evaluation is stable. Narrow; preserves scale (a real engine's
/// sample of the real data keeps fraction * real elements).
template <typename T>
auto Sample(const Bag<T>& bag, double fraction, uint64_t seed) {
  using ChainT = internal::SampleFeed<internal::SourceFeed<T>>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ChainT>(Bag<T>(c), nullptr);
  const auto threshold = static_cast<uint64_t>(
      fraction >= 1.0 ? ~uint64_t{0}
                      : fraction * static_cast<double>(~uint64_t{0}));
  if (internal::ComposeReady(bag)) {
    internal::ChargeScanStage(bag, 0.25, "sample");
    const int chain = internal::NextChainOps(bag);
    // The position counter advances per streamed element; ComposeReady only
    // composes on size-preserving chains, so positions — and therefore the
    // deterministic keep/drop draws — match the eager path exactly.
    auto repr = internal::MakeDeferredRepr<ChainT>(
        c,
        [&] {
          return ChainT{internal::MakeSourceFeed(bag), seed, threshold};
        },
        [&] {
          return internal::ComposeFeed<T>(
              bag, [seed, threshold](std::size_t i,
                                     const typename Bag<T>::Sink& emit) {
                return [seed, threshold, pos = i * 0x9e3779b97f4a7c15ULL,
                        &emit](auto&& x) mutable {
                  pos += 0x2545f4914f6cdd1dULL;
                  if (Mix64(seed ^ pos ^ Hasher{}(x)) <= threshold) {
                    emit(T(std::forward<decltype(x)>(x)));
                  }
                };
              });
        });
    return internal::FusedBag<ChainT>(
        internal::MaybeAutoCheckpoint(Bag<T>::Deferred(
            c, std::move(repr.feed), bag.PartitionSizes(),
            /*counts_exact=*/false, /*counts_bounded=*/true, chain,
            bag.scale(), bag.key_partitions(), bag.lineage_depth() + 1,
            std::move(repr.run))),
        std::move(repr.chain));
  }
  internal::ChargeScanStage(bag, 0.25, "sample");
  const auto& parts = bag.partitions();
  typename Bag<T>::Partitions out(parts.size());
  internal::GuardedParallelFor(c, parts.size(), [&](std::size_t i) {
    uint64_t pos = i * 0x9e3779b97f4a7c15ULL;
    for (const auto& x : parts[i]) {
      pos += 0x2545f4914f6cdd1dULL;
      const uint64_t r = Mix64(seed ^ pos ^ Hasher{}(x));
      if (r <= threshold) out[i].push_back(x);
    }
  });
  return internal::FusedBag<ChainT>(
      internal::MaybeAutoCheckpoint(
          Bag<T>(c, std::move(out), bag.scale(), bag.key_partitions(),
                 bag.lineage_depth() + 1)),
      nullptr);
}

/// Sample over a FusedBag: extends the concrete chain without erasure (see
/// ops.h Map for the extension contract).
template <typename Chain>
auto Sample(const internal::FusedBag<Chain>& bag, double fraction,
            uint64_t seed) {
  using T = typename Chain::Out;
  using ExtT = internal::SampleFeed<Chain>;
  Cluster* c = bag.cluster();
  if (!c->ok()) return internal::FusedBag<ExtT>(Bag<T>(c), nullptr);
  const auto threshold = static_cast<uint64_t>(
      fraction >= 1.0 ? ~uint64_t{0}
                      : fraction * static_cast<double>(~uint64_t{0}));
  if (internal::ComposeReady(bag) && internal::ExtendReady(bag)) {
    internal::ChargeScanStage(bag, 0.25, "sample");
    const int chain = internal::NextChainOps(bag);
    auto st =
        std::make_shared<const ExtT>(ExtT{*bag.chain(), seed, threshold});
    typename Bag<T>::Feed feed;
    typename Bag<T>::Run run;
    internal::EraseChain(st, &feed, &run);
    return internal::FusedBag<ExtT>(
        internal::MaybeAutoCheckpoint(Bag<T>::Deferred(
            c, std::move(feed), bag.PartitionSizes(), /*counts_exact=*/false,
            /*counts_bounded=*/true, chain, bag.scale(),
            bag.key_partitions(), bag.lineage_depth() + 1, std::move(run))),
        std::move(st));
  }
  return internal::FusedBag<ExtT>(
      Sample(static_cast<const Bag<T>&>(bag), fraction, seed), nullptr);
}

/// Multiset difference with set semantics on the right (Spark's subtract):
/// keeps the elements of `a` that do not occur in `b` at all. Shuffles both
/// sides by element hash.
template <typename T>
Bag<T> Subtract(const Bag<T>& a, const Bag<T>& b,
                int64_t num_partitions = -1) {
  MATRYOSHKA_CHECK(a.cluster() == b.cluster());
  Cluster* c = a.cluster();
  if (!c->ok()) return Bag<T>(c);
  const int64_t parts = internal::ResolveParallelism(c, num_partitions);
  auto as = internal::ShuffleBy(
      a, parts, [&](const T& x) { return internal::PartitionOfKey(x, parts); },
      0.25, "subtract[left]");
  auto bs = internal::ShuffleBy(
      b, parts, [&](const T& x) { return internal::PartitionOfKey(x, parts); },
      0.25, "subtract[right]");
  std::vector<double> costs(static_cast<std::size_t>(parts));
  for (int64_t i = 0; i < parts; ++i) {
    costs[static_cast<std::size_t>(i)] =
        c->ComputeCost(static_cast<double>(as[i].size()) * a.scale() +
                           static_cast<double>(bs[i].size()) * b.scale(),
                       0.5);
  }
  c->AccrueStage(costs, /*lineage_depth=*/1, StageContext{"subtract"});
  typename Bag<T>::Partitions out(static_cast<std::size_t>(parts));
  internal::GuardedParallelFor(c, static_cast<std::size_t>(parts), [&](std::size_t i) {
    std::unordered_set<T, Hasher> exclude(bs[i].begin(), bs[i].end());
    for (const auto& x : as[i]) {
      if (!exclude.count(x)) out[i].push_back(x);
    }
  });
  return Bag<T>(c, std::move(out), a.scale());
}

/// Set intersection (deduplicated, like Spark's intersection): the distinct
/// elements occurring on both sides.
template <typename T>
Bag<T> Intersection(const Bag<T>& a, const Bag<T>& b,
                    int64_t num_partitions = -1) {
  MATRYOSHKA_CHECK(a.cluster() == b.cluster());
  Cluster* c = a.cluster();
  if (!c->ok()) return Bag<T>(c);
  const int64_t parts = internal::ResolveParallelism(c, num_partitions);
  auto as = internal::ShuffleBy(
      a, parts, [&](const T& x) { return internal::PartitionOfKey(x, parts); },
      0.25, "intersection[left]");
  auto bs = internal::ShuffleBy(
      b, parts, [&](const T& x) { return internal::PartitionOfKey(x, parts); },
      0.25, "intersection[right]");
  std::vector<double> costs(static_cast<std::size_t>(parts));
  for (int64_t i = 0; i < parts; ++i) {
    costs[static_cast<std::size_t>(i)] =
        c->ComputeCost(static_cast<double>(as[i].size()) * a.scale() +
                           static_cast<double>(bs[i].size()) * b.scale(),
                       0.5);
  }
  c->AccrueStage(costs, /*lineage_depth=*/1, StageContext{"intersection"});
  typename Bag<T>::Partitions out(static_cast<std::size_t>(parts));
  internal::GuardedParallelFor(c, static_cast<std::size_t>(parts), [&](std::size_t i) {
    std::unordered_set<T, Hasher> right(bs[i].begin(), bs[i].end());
    std::unordered_set<T, Hasher> seen;
    for (const auto& x : as[i]) {
      if (right.count(x) && seen.insert(x).second) out[i].push_back(x);
    }
  });
  return Bag<T>(c, std::move(out), std::min(a.scale(), b.scale()));
}

/// Generalized keyed aggregation (Spark's aggregateByKey): folds each key's
/// values into an accumulator of a different type. `seq(acc, v)` absorbs a
/// value; `comb(acc, acc)` merges partial accumulators across partitions.
/// Map-side combining applies, like ReduceByKey; see shuffle.h for
/// `result_scale`.
template <typename K, typename V, typename A, typename Seq, typename Comb>
Bag<std::pair<K, A>> AggregateByKey(const Bag<std::pair<K, V>>& bag, A zero,
                                    Seq seq, Comb comb,
                                    int64_t num_partitions = -1,
                                    double weight = 1.0,
                                    double result_scale = -1.0) {
  // Absorb values into accumulators map-side — emitting keys in
  // first-occurrence order, the canonical keyed-build order (see
  // external/external_group.h) — then merge accumulators with an ordinary
  // (budget-aware) ReduceByKey.
  auto partials = MapPartitions(
      bag,
      [zero, seq](const std::vector<std::pair<K, V>>& part) {
        std::unordered_map<K, std::size_t, Hasher> index;
        index.reserve(part.size());
        std::vector<std::pair<K, A>> out;
        for (const auto& [k, v] : part) {
          auto [it, inserted] = index.try_emplace(k, out.size());
          if (inserted) out.emplace_back(k, zero);
          A& acc = out[it->second].second;
          acc = seq(acc, v);
        }
        return out;
      },
      weight);
  return ReduceByKey(partials, comb, num_partitions, weight, result_scale);
}

/// The k smallest elements under `cmp` (an action; k is expected to be
/// driver-sized). Deterministic: ties are broken by comparison order after
/// a full sort of the per-partition winners.
template <typename T, typename Cmp>
std::vector<T> TopK(const Bag<T>& bag, std::size_t k, Cmp cmp) {
  Cluster* c = bag.cluster();
  if (!c->ok() || k == 0) return {};
  bag.Force();  // actions are forcing points
  c->BeginJob("top");
  internal::ChargeScanStage(bag, 0.5, "top");
  std::vector<T> heap;
  for (const auto& part : bag.partitions()) {
    for (const auto& x : part) {
      heap.push_back(x);
      std::push_heap(heap.begin(), heap.end(), cmp);
      if (heap.size() > k) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.pop_back();
      }
    }
  }
  std::sort(heap.begin(), heap.end(), cmp);
  return heap;
}

}  // namespace matryoshka::engine

#endif  // MATRYOSHKA_ENGINE_EXTRA_OPS_H_
