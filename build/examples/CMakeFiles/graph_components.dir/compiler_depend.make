# Empty compiler generated dependencies file for graph_components.
# This may be replaced when dependencies are built.
