
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/avg_distances.cc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/avg_distances.cc.o" "gcc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/avg_distances.cc.o.d"
  "/root/repo/src/workloads/bounce_rate.cc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/bounce_rate.cc.o" "gcc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/bounce_rate.cc.o.d"
  "/root/repo/src/workloads/connected_components.cc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/connected_components.cc.o" "gcc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/connected_components.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/pagerank.cc.o" "gcc" "src/workloads/CMakeFiles/matryoshka_workloads.dir/pagerank.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/matryoshka_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/matryoshka_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/matryoshka_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
