#include "engine/cluster.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace matryoshka::engine {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  MATRYOSHKA_CHECK(config_.num_machines >= 1);
  MATRYOSHKA_CHECK(config_.cores_per_machine >= 1);
  if (config_.execute_parallel) {
    unsigned hw = std::thread::hardware_concurrency();
    pool_ = std::make_unique<ThreadPool>(hw == 0 ? 4 : hw);
  }
}

Cluster::~Cluster() = default;

void Cluster::Fail(Status status) {
  MATRYOSHKA_DCHECK(!status.ok());
  if (status_.ok()) {
    MATRYOSHKA_LOG(kInfo) << "cluster run failed: " << status.ToString();
    status_ = std::move(status);
  }
}

void Cluster::Reset() {
  status_ = Status::OK();
  metrics_ = Metrics();
}

void Cluster::BeginJob(const std::string& label) {
  (void)label;
  if (!ok()) return;
  metrics_.jobs += 1;
  metrics_.simulated_time_s += config_.job_launch_overhead_s;
}

void Cluster::AccrueStage(const std::vector<double>& task_costs_s) {
  if (!ok()) return;
  metrics_.stages += 1;
  metrics_.tasks += static_cast<int64_t>(task_costs_s.size());
  const int slots = config_.total_cores();
  // Greedy list scheduling onto `slots` identical cores: each task goes to
  // the currently least-loaded slot; the stage takes the resulting makespan.
  // A min-heap over slot loads keeps this O(n log slots). Tasks smaller than
  // the slot count finish in one "wave" of max task cost — exactly the
  // effect that starves the outer-parallel workaround when there are fewer
  // groups than cores.
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap;
  const int used_slots =
      std::min<int64_t>(slots, static_cast<int64_t>(task_costs_s.size()));
  for (int i = 0; i < used_slots; ++i) heap.push(0.0);
  double makespan = 0.0;
  for (double cost : task_costs_s) {
    double load = heap.top();
    heap.pop();
    load += config_.task_overhead_s + cost;
    makespan = std::max(makespan, load);
    heap.push(load);
  }
  metrics_.simulated_time_s += makespan;
}

void Cluster::AccrueUniformStage(int64_t num_tasks, double total_elements,
                                 double cost_weight) {
  if (!ok()) return;
  MATRYOSHKA_DCHECK(num_tasks >= 1);
  metrics_.elements_processed += static_cast<int64_t>(total_elements);
  const double per_task =
      ComputeCost(total_elements, cost_weight) / static_cast<double>(num_tasks);
  std::vector<double> costs(static_cast<std::size_t>(num_tasks), per_task);
  AccrueStage(costs);
}

void Cluster::AccrueShuffle(double bytes) {
  if (!ok()) return;
  const double scaled = bytes;
  metrics_.shuffle_bytes += scaled;
  // With hash partitioning, a fraction (1 - 1/machines) of the data crosses
  // machine boundaries; every machine sends and receives its share in
  // parallel at the configured per-machine bandwidth.
  const double crossing =
      scaled * (1.0 - 1.0 / static_cast<double>(config_.num_machines));
  const double per_machine =
      crossing / static_cast<double>(config_.num_machines);
  metrics_.simulated_time_s += per_machine / config_.network_bytes_per_s;
}

void Cluster::AccrueBroadcast(double bytes) {
  if (!ok()) return;
  const double scaled = bytes;
  metrics_.broadcast_bytes += scaled;
  metrics_.peak_machine_bytes = std::max(metrics_.peak_machine_bytes, scaled);
  if (scaled > config_.memory_per_machine_bytes) {
    Fail(Status::OutOfMemory(
        "broadcast data does not fit on a single machine"));
    return;
  }
  // Collect to the driver, then torrent-style redistribution (every machine
  // both uploads and downloads chunks, so distribution is ~one transfer of
  // the full payload at per-machine bandwidth, not num_machines transfers).
  metrics_.simulated_time_s += 2.0 * scaled / config_.network_bytes_per_s;
}

void Cluster::CheckTaskMemory(double bytes, const std::string& what) {
  if (!ok()) return;
  const double scaled = bytes;
  metrics_.peak_task_bytes = std::max(metrics_.peak_task_bytes, scaled);
  if (scaled > config_.task_memory_budget()) {
    Fail(Status::OutOfMemory(what + ": task working set of " +
                             std::to_string(scaled / (1 << 20)) +
                             " MB exceeds the per-task budget of " +
                             std::to_string(config_.task_memory_budget() /
                                            (1 << 20)) +
                             " MB"));
  }
}

double Cluster::SpillFactor(double per_machine_bytes) {
  if (!ok()) return 1.0;
  const double scaled = per_machine_bytes * config_.memory_object_overhead;
  metrics_.peak_machine_bytes = std::max(metrics_.peak_machine_bytes, scaled);
  const double budget =
      config_.memory_per_machine_bytes * config_.execution_memory_fraction;
  if (scaled <= budget) return 1.0;
  const double excess_fraction = (scaled - budget) / scaled;
  metrics_.spill_events += 1;
  metrics_.spilled_bytes += scaled - budget;
  return 1.0 + excess_fraction * (config_.spill_penalty - 1.0);
}

}  // namespace matryoshka::engine
