// Tests for the two-phase flattening pipeline on the plan IR: the parsing
// phase must turn surface programs (Listing 1) into explicitly
// nested-parallel plans (Listing 2), and the lowering phase must execute
// those plans on the engine with results equal to a driver-side reference
// (the Listing 3 equivalence).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "engine/bag.h"
#include "lang/expr.h"
#include "lang/lowering_phase.h"
#include "lang/parsing_phase.h"
#include "lang/value.h"
#include "workloads/bounce_rate.h"

namespace matryoshka::lang {
namespace {

using engine::Cluster;
using engine::ClusterConfig;

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

// ---------- Value ----------

TEST(ValueTest, ScalarAccessors) {
  EXPECT_EQ(Value(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value(3).AsDouble(), 3.0);  // int widens
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value(std::string("hi")).AsString(), "hi");
}

TEST(ValueTest, TuplesAndFields) {
  Value t = Value::MakeTuple({Value(1), Value(2.0), Value(std::string("x"))});
  EXPECT_TRUE(t.is_tuple());
  EXPECT_EQ(t.Field(0).AsInt(), 1);
  EXPECT_DOUBLE_EQ(t.Field(1).AsDouble(), 2.0);
  EXPECT_EQ(t.ToString(), "(1, 2.000000, \"x\")");
}

TEST(ValueTest, EqualityAndHash) {
  Value a = Value::MakeTuple({Value(1), Value(2)});
  Value b = Value::MakeTuple({Value(1), Value(2)});
  Value c = Value::MakeTuple({Value(2), Value(1)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::hash<Value> h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(Value(1), Value(1.0));  // type-tagged equality
}

TEST(ValueTest, OrderingIsTotalWithinTypes) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(std::string("a")), Value(std::string("b")));
}

// ---------- The bounce-rate program (Listing 1 in the IR) ----------

/// visits: Bag of (day, ip) 2-tuples.
Program BounceRateSurfaceProgram() {
  using B = BinOpKind;
  Program p;
  // let visitsPerDay = visits.groupByKey()
  p.stmts.push_back(Stmt{"visitsPerDay", GroupByKey(Source("visits"))});
  // let rates = visitsPerDay.map { (day, group) =>
  //   let countsPerIP   = group.map(ip => (ip, 1)).reduceByKey(_ + _)
  //   let bounced       = countsPerIP.filter(p => p._2 == 1)
  //   let numBounces    = bounced.count()
  //   let numTotal      = group.distinct().count()
  //   return numBounces / numTotal }
  std::vector<Stmt> body;
  body.push_back(Stmt{
      "countsPerIP",
      ReduceByKey(Map(Var("group"),
                      Lam("ip", MakeTuple({Var("ip"), Lit(Value(1))}))),
                  Lam2("a", "b", BinOp(B::kAdd, Var("a"), Var("b"))))});
  body.push_back(
      Stmt{"bounced",
           Filter(Var("countsPerIP"),
                  Lam("p", BinOp(B::kEq, Field(Var("p"), 1),
                                 Lit(Value(1)))))});
  body.push_back(Stmt{"numBounces", Count(Var("bounced"))});
  body.push_back(Stmt{"numTotal", Count(Distinct(Var("group")))});
  p.stmts.push_back(
      Stmt{"rates", Map(Var("visitsPerDay"),
                        LamProgram({"day", "group"}, std::move(body),
                                   BinOp(B::kDiv, Var("numBounces"),
                                         Var("numTotal"))))});
  p.result = "rates";
  return p;
}

engine::Bag<Value> VisitsBag(Cluster* cluster,
                             const std::vector<datagen::Visit>& visits) {
  std::vector<Value> rows;
  rows.reserve(visits.size());
  for (const auto& [day, ip] : visits) {
    rows.push_back(Value::MakeTuple({Value(day), Value(ip)}));
  }
  return engine::Parallelize(cluster, std::move(rows), 8);
}

// ---------- Parsing phase ----------

TEST(ParsingPhaseTest, BounceRateBecomesListing2) {
  ParsingPhase parser;
  auto parsed = parser.Rewrite(BounceRateSurfaceProgram());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string plan = ToString(*parsed);
  // The groupByKey became the nesting primitive...
  EXPECT_NE(plan.find("groupByKeyIntoNestedBag"), std::string::npos);
  EXPECT_EQ(plan.find("groupByKey("), std::string::npos);
  // ...the map became a mapWithLiftedUDF...
  EXPECT_NE(plan.find("mapWithLiftedUDF"), std::string::npos);
  // ...and its body uses the lifted operations of Listing 2.
  EXPECT_NE(plan.find("liftedReduceByKey"), std::string::npos);
  EXPECT_NE(plan.find("liftedFilter"), std::string::npos);
  EXPECT_NE(plan.find("liftedCount"), std::string::npos);
  EXPECT_NE(plan.find("liftedDistinct"), std::string::npos);
  EXPECT_NE(plan.find("binaryScalarOp[/]"), std::string::npos);
  // The original in-UDF operations are gone.
  EXPECT_EQ(plan.find(" count("), std::string::npos);
}

TEST(ParsingPhaseTest, TypesAreTracked) {
  ParsingPhase parser;
  auto parsed = parser.Rewrite(BounceRateSurfaceProgram());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parser.types().at("visitsPerDay"), VType::kNestedBag);
  EXPECT_EQ(parser.types().at("rates"), VType::kInnerScalar);
}

TEST(ParsingPhaseTest, PlainMapStaysUnlifted) {
  Program p;
  p.stmts.push_back(Stmt{
      "doubled",
      Map(Source("xs"),
          Lam("x", BinOp(BinOpKind::kMul, Var("x"), Lit(Value(2)))))});
  p.result = "doubled";
  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->stmts[0].expr->kind, ExprKind::kMap);
  EXPECT_EQ(parser.types().at("doubled"), VType::kBag);
}

TEST(ParsingPhaseTest, ClosureConversionRecordsCaptures) {
  // A plain map whose lambda references a driver scalar.
  Program p;
  p.stmts.push_back(Stmt{"threshold", Lit(Value(10))});
  p.stmts.push_back(Stmt{
      "big", Filter(Source("xs"),
                    Lam("x", BinOp(BinOpKind::kLt, Var("threshold"),
                                   Var("x"))))});
  p.result = "big";
  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok());
  const auto& lam = parsed->stmts[1].expr->lambda;
  ASSERT_EQ(lam->captures.size(), 1u);
  EXPECT_EQ(lam->captures[0], "threshold");
}

TEST(ParsingPhaseTest, InnerScalarClosureBecomesMapWithClosure) {
  // Inside the lifted UDF, an element lambda references numTotal (an
  // InnerScalar): Sec. 5.1 requires a mapWithClosure.
  using B = BinOpKind;
  std::vector<Stmt> body;
  body.push_back(Stmt{"numTotal", Count(Var("group"))});
  body.push_back(Stmt{
      "weighted",
      Map(Var("group"),
          Lam("x", BinOp(B::kMul, Var("x"), Var("numTotal"))))});
  body.push_back(Stmt{"sum", Count(Var("weighted"))});
  Program p;
  p.stmts.push_back(Stmt{"grouped", GroupByKey(Source("data"))});
  p.stmts.push_back(Stmt{
      "out", Map(Var("grouped"),
                 LamProgram({"k", "group"}, std::move(body), Var("sum")))});
  p.result = "out";
  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string plan = ToString(*parsed);
  EXPECT_NE(plan.find("liftedMapWithClosure"), std::string::npos);
  EXPECT_NE(plan.find("$numTotal"), std::string::npos);
}

TEST(ParsingPhaseTest, RejectsBagOpsInAggregationUdfs) {
  // Sec. 7's stated assumption: reduce UDFs must not contain bag ops.
  Program p;
  p.stmts.push_back(Stmt{
      "bad", ReduceByKey(Source("xs"),
                         Lam2("a", "b", Count(Source("ys"))))});
  p.result = "bad";
  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  EXPECT_TRUE(parsed.status().IsUnsupported());
}

TEST(ParsingPhaseTest, RejectsUnboundResult) {
  Program p;
  p.result = "nothing";
  ParsingPhase parser;
  EXPECT_TRUE(parser.Rewrite(p).status().IsInvalidArgument());
}

TEST(ParsingPhaseTest, RejectsUnboundVariable) {
  Program p;
  p.stmts.push_back(Stmt{"y", Count(Var("missing"))});
  p.result = "y";
  ParsingPhase parser;
  EXPECT_TRUE(parser.Rewrite(p).status().IsInvalidArgument());
}

// ---------- Lowering phase (end-to-end Listing 1 -> result) ----------

TEST(LoweringPhaseTest, BounceRateEndToEndMatchesReference) {
  auto visits = datagen::GenerateVisits(4000, 12, 0.0, 0.5, 3);
  auto ref_pairs = workloads::BounceRateReference(visits);
  std::map<int64_t, double> ref(ref_pairs.begin(), ref_pairs.end());

  Cluster cluster(TestConfig());
  ParsingPhase parser;
  auto parsed = parser.Rewrite(BounceRateSurfaceProgram());
  ASSERT_TRUE(parsed.ok());
  LoweringPhase lowering(&cluster);
  lowering.BindSource("visits", VisitsBag(&cluster, visits));
  auto result = lowering.Execute(*parsed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), ref.size());
  for (const Value& row : *result) {
    const int64_t day = row.Field(0).AsInt();
    ASSERT_TRUE(ref.count(day)) << "unexpected day " << day;
    EXPECT_NEAR(row.Field(1).AsDouble(), ref[day], 1e-12) << "day " << day;
  }
}

TEST(LoweringPhaseTest, RefusesRawSurfacePlan) {
  // Executing the surface program directly (without the parsing phase)
  // must fail: the lowering phase only understands the explicit plan.
  Cluster cluster(TestConfig());
  LoweringPhase lowering(&cluster);
  lowering.BindSource("visits", VisitsBag(&cluster, {}));
  auto result = lowering.Execute(BounceRateSurfaceProgram());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(LoweringPhaseTest, FlatPipelineExecutes) {
  Program p;
  p.stmts.push_back(Stmt{
      "evens",
      Filter(Source("xs"),
             Lam("x", BinOp(BinOpKind::kEq,
                            BinOp(BinOpKind::kSub, Var("x"),
                                  BinOp(BinOpKind::kMul,
                                        BinOp(BinOpKind::kDiv, Var("x"),
                                              Lit(Value(2))),
                                        Lit(Value(2)))),
                            Lit(Value(0.0)))))});
  p.result = "evens";
  // Simpler: x * 2 pipeline instead; the above exercises nested scalar ops.
  Program q;
  q.stmts.push_back(Stmt{
      "doubled",
      Map(Source("xs"),
          Lam("x", BinOp(BinOpKind::kMul, Var("x"), Lit(Value(2)))))});
  q.stmts.push_back(Stmt{"n", Count(Var("doubled"))});
  q.result = "doubled";

  Cluster cluster(TestConfig());
  ParsingPhase parser;
  auto parsed = parser.Rewrite(q);
  ASSERT_TRUE(parsed.ok());
  LoweringPhase lowering(&cluster);
  std::vector<Value> xs = {Value(1), Value(2), Value(3)};
  lowering.BindSource("xs", engine::Parallelize(&cluster, xs, 2));
  auto result = lowering.Execute(*parsed);
  ASSERT_TRUE(result.ok());
  std::vector<int64_t> got;
  for (const Value& v : *result) got.push_back(v.AsInt());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int64_t>{2, 4, 6}));
}

TEST(LoweringPhaseTest, CountActionReturnsDriverScalar) {
  Program p;
  p.stmts.push_back(Stmt{"n", Count(Source("xs"))});
  p.result = "n";
  Cluster cluster(TestConfig());
  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok());
  LoweringPhase lowering(&cluster);
  lowering.BindSource(
      "xs", engine::Parallelize(&cluster,
                                std::vector<Value>{Value(1), Value(2)}, 2));
  auto result = lowering.Execute(*parsed);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].AsInt(), 2);
}

TEST(LoweringPhaseTest, LiftedMapWithClosureExecutes) {
  // Per group: multiply every element by the group's size.
  using B = BinOpKind;
  std::vector<Stmt> body;
  body.push_back(Stmt{"n", Count(Var("group"))});
  body.push_back(Stmt{
      "scaled", Map(Var("group"),
                    Lam("x", BinOp(B::kMul, Var("x"), Var("n"))))});
  body.push_back(Stmt{"total", Count(Var("scaled"))});
  Program p;
  p.stmts.push_back(Stmt{"grouped", GroupByKey(Source("data"))});
  p.stmts.push_back(Stmt{
      "out", Map(Var("grouped"),
                 LamProgram({"k", "group"}, std::move(body), Var("total")))});
  p.result = "out";

  Cluster cluster(TestConfig());
  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  LoweringPhase lowering(&cluster);
  std::vector<Value> rows = {
      Value::MakeTuple({Value(1), Value(10)}),
      Value::MakeTuple({Value(1), Value(11)}),
      Value::MakeTuple({Value(2), Value(20)}),
  };
  lowering.BindSource("data", engine::Parallelize(&cluster, rows, 2));
  auto result = lowering.Execute(*parsed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Result: per group the count of scaled elements = group size.
  std::map<int64_t, int64_t> got;
  for (const Value& row : *result) {
    got[row.Field(0).AsInt()] = row.Field(1).AsInt();
  }
  EXPECT_EQ(got[1], 2);
  EXPECT_EQ(got[2], 1);
}

TEST(LoweringPhaseTest, UnboundSourceFails) {
  Program p;
  p.stmts.push_back(Stmt{"n", Count(Source("nowhere"))});
  p.result = "n";
  Cluster cluster(TestConfig());
  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok());
  LoweringPhase lowering(&cluster);
  EXPECT_TRUE(lowering.Execute(*parsed).status().IsInvalidArgument());
}

TEST(LiftedWhileIrTest, IterativeInnerComputationEndToEnd) {
  // THE headline feature (Sec. 6): a while loop INSIDE the UDF of a nested
  // map, flowing through parsing + lowering. Per group: every element
  // doubles until the group's total element count (constant here) ... use
  // a scalar state: the group's count c doubles until >= 100; groups of
  // different sizes exit at different iterations.
  using B = BinOpKind;
  std::vector<Stmt> body;
  body.push_back(Stmt{"c0", Count(Var("group"))});
  std::vector<Stmt> loop_body;  // state s -> (s*2, s*2 < 100)
  loop_body.push_back(
      Stmt{"next", BinOp(B::kMul, Var("s"), Lit(Value(2)))});
  body.push_back(Stmt{
      "grown",
      While(Var("c0"),
            LamProgram({"s"}, std::move(loop_body),
                       MakeTuple({Var("next"),
                                  BinOp(B::kLt, Var("next"),
                                        Lit(Value(100)))})))});
  Program p;
  p.stmts.push_back(Stmt{"grouped", GroupByKey(Source("data"))});
  p.stmts.push_back(Stmt{
      "out", Map(Var("grouped"),
                 LamProgram({"k", "group"}, std::move(body), Var("grown")))});
  p.result = "out";

  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string plan = ToString(*parsed);
  EXPECT_NE(plan.find("liftedWhile"), std::string::npos);
  EXPECT_EQ(plan.find("while("), std::string::npos);

  // Groups of size 3, 20, and 60: 3->6->..->192 (6 rounds), 20->160 (3),
  // 60->120 (1).
  Cluster cluster(TestConfig());
  std::vector<Value> rows;
  for (int i = 0; i < 3; ++i)
    rows.push_back(Value::MakeTuple({Value(1), Value(i)}));
  for (int i = 0; i < 20; ++i)
    rows.push_back(Value::MakeTuple({Value(2), Value(i)}));
  for (int i = 0; i < 60; ++i)
    rows.push_back(Value::MakeTuple({Value(3), Value(i)}));
  LoweringPhase lowering(&cluster);
  lowering.BindSource("data", engine::Parallelize(&cluster, rows, 4));
  auto result = lowering.Execute(*parsed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<int64_t, int64_t> got;
  for (const Value& row : *result) {
    got[row.Field(0).AsInt()] = row.Field(1).AsInt();
  }
  EXPECT_EQ(got[1], 192);
  EXPECT_EQ(got[2], 160);
  EXPECT_EQ(got[3], 120);
}

TEST(LiftedWhileIrTest, BagStateLoopEndToEnd) {
  // InnerBag-valued loop state: keep halving all of a group's values until
  // none exceeds 2; the filter keeps the loop's data path honest.
  using B = BinOpKind;
  std::vector<Stmt> loop_body;
  loop_body.push_back(Stmt{
      "halved", Map(Var("s"), Lam("x", BinOp(B::kDiv, Var("x"),
                                             Lit(Value(2)))))});
  loop_body.push_back(Stmt{
      "big", Count(Filter(Var("halved"),
                          Lam("x", BinOp(B::kLt, Lit(Value(2.0)),
                                         Var("x")))))});
  std::vector<Stmt> body;
  body.push_back(Stmt{
      "shrunk",
      While(Var("group"),
            LamProgram({"s"}, std::move(loop_body),
                       MakeTuple({Var("halved"),
                                  BinOp(B::kLt, Lit(Value(0)),
                                        Var("big"))})))});
  body.push_back(Stmt{"n", Count(Var("shrunk"))});
  Program p;
  p.stmts.push_back(Stmt{"grouped", GroupByKey(Source("data"))});
  p.stmts.push_back(Stmt{
      "out", Map(Var("grouped"),
                 LamProgram({"k", "group"}, std::move(body), Var("n")))});
  p.result = "out";

  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Cluster cluster(TestConfig());
  std::vector<Value> rows = {
      Value::MakeTuple({Value(1), Value(64)}),
      Value::MakeTuple({Value(1), Value(8)}),
      Value::MakeTuple({Value(2), Value(4)}),
  };
  LoweringPhase lowering(&cluster);
  lowering.BindSource("data", engine::Parallelize(&cluster, rows, 2));
  auto result = lowering.Execute(*parsed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every group keeps all of its elements; only values shrink.
  std::map<int64_t, int64_t> got;
  for (const Value& row : *result) {
    got[row.Field(0).AsInt()] = row.Field(1).AsInt();
  }
  EXPECT_EQ(got[1], 2);
  EXPECT_EQ(got[2], 1);
}

TEST(LiftedIfIrTest, BranchesRouteByGroupCondition) {
  // Groups with >= 3 elements double their values; smaller groups negate.
  using B = BinOpKind;
  std::vector<Stmt> body;
  body.push_back(Stmt{"n", Count(Var("group"))});
  body.push_back(Stmt{"isBig", BinOp(B::kLe, Lit(Value(3)), Var("n"))});
  std::vector<Stmt> none;
  body.push_back(Stmt{
      "routed",
      If(Var("isBig"), Var("group"),
         LamProgram({"g"}, {},
                    Map(Var("g"), Lam("x", BinOp(B::kMul, Var("x"),
                                                 Lit(Value(2)))))),
         LamProgram({"g"}, {},
                    Map(Var("g"), Lam("x", BinOp(B::kSub, Lit(Value(0)),
                                                 Var("x"))))))});
  body.push_back(Stmt{"total", Count(Var("routed"))});
  Program p;
  p.stmts.push_back(Stmt{"grouped", GroupByKey(Source("data"))});
  p.stmts.push_back(Stmt{
      "out", Map(Var("grouped"),
                 LamProgram({"k", "group"}, std::move(body), Var("total")))});
  p.result = "out";

  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string plan = ToString(*parsed);
  EXPECT_NE(plan.find("liftedIf"), std::string::npos);
  EXPECT_EQ(plan.find("if("), std::string::npos);

  Cluster cluster(TestConfig());
  std::vector<Value> rows = {
      Value::MakeTuple({Value(1), Value(5)}),
      Value::MakeTuple({Value(1), Value(6)}),
      Value::MakeTuple({Value(1), Value(7)}),
      Value::MakeTuple({Value(2), Value(9)}),
  };
  LoweringPhase lowering(&cluster);
  lowering.BindSource("data", engine::Parallelize(&cluster, rows, 2));
  auto result = lowering.Execute(*parsed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<int64_t, int64_t> got;
  for (const Value& row : *result) {
    got[row.Field(0).AsInt()] = row.Field(1).AsInt();
  }
  // Counts survive both branches.
  EXPECT_EQ(got[1], 3);
  EXPECT_EQ(got[2], 1);
}

TEST(LiftedIfIrTest, BranchValuesAreActuallyRouted) {
  // Return the routed bag itself so the branch effects are visible.
  using B = BinOpKind;
  std::vector<Stmt> body;
  body.push_back(Stmt{"n", Count(Var("group"))});
  body.push_back(Stmt{"isBig", BinOp(B::kLe, Lit(Value(2)), Var("n"))});
  body.push_back(Stmt{
      "routed",
      If(Var("isBig"), Var("group"),
         LamProgram({"g"}, {},
                    Map(Var("g"), Lam("x", BinOp(B::kMul, Var("x"),
                                                 Lit(Value(10)))))),
         LamProgram({"g"}, {}, Var("g")))});
  Program p;
  p.stmts.push_back(Stmt{"grouped", GroupByKey(Source("data"))});
  p.stmts.push_back(Stmt{
      "out", Map(Var("grouped"),
                 LamProgram({"k", "group"}, std::move(body), Var("routed")))});
  p.result = "out";

  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parser.types().at("out"), VType::kInnerBag);

  Cluster cluster(TestConfig());
  std::vector<Value> rows = {
      Value::MakeTuple({Value(1), Value(5)}),
      Value::MakeTuple({Value(1), Value(6)}),
      Value::MakeTuple({Value(2), Value(9)}),
  };
  LoweringPhase lowering(&cluster);
  lowering.BindSource("data", engine::Parallelize(&cluster, rows, 2));
  auto result = lowering.Execute(*parsed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::multiset<int64_t> got;
  for (const Value& v : *result) got.insert(v.AsInt());
  // Group 1 (2 elements) doubled x10: 50, 60; group 2 untouched: 9.
  EXPECT_EQ(got, (std::multiset<int64_t>{9, 50, 60}));
}

TEST(LiftedWhileIrTest, TopLevelWhileIsRejected) {
  Program p;
  p.stmts.push_back(Stmt{
      "w", While(Source("xs"),
                 LamProgram({"s"}, {},
                            MakeTuple({Var("s"), Lit(Value(false))})))});
  p.result = "w";
  ParsingPhase parser;
  auto parsed = parser.Rewrite(p);
  EXPECT_FALSE(parsed.ok());
}

TEST(LoweringPhaseTest, JobCountIndependentOfGroupCount) {
  // The flattened bounce-rate plan launches O(1) jobs no matter how many
  // days there are — the property the whole system exists for.
  for (int64_t days : {4, 64}) {
    auto visits = datagen::GenerateVisits(2000, days, 0.0, 0.5, 9);
    Cluster cluster(TestConfig());
    ParsingPhase parser;
    auto parsed = parser.Rewrite(BounceRateSurfaceProgram());
    ASSERT_TRUE(parsed.ok());
    LoweringPhase lowering(&cluster);
    lowering.BindSource("visits", VisitsBag(&cluster, visits));
    auto result = lowering.Execute(*parsed);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(cluster.metrics().jobs, 3) << days << " days";
  }
}

}  // namespace
}  // namespace matryoshka::lang
