# Empty compiler generated dependencies file for hyperparameter_kmeans.
# This may be replaced when dependencies are built.
