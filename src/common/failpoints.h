#ifndef MATRYOSHKA_COMMON_FAILPOINTS_H_
#define MATRYOSHKA_COMMON_FAILPOINTS_H_

#include <atomic>
#include <cstdint>

/// Deterministic real-fault injection for the code paths that touch actual
/// hardware: spill-file IO (pwrite/pread) and real scratch allocation. The
/// simulated cluster has had seeded fault injection since PR 1; this is the
/// same discipline extended down to the real IO layer (DESIGN.md, "The
/// real-fault contract").
///
/// Determinism: every draw is a pure function of
///   (seed, stream id, site salt, site key, epoch)
/// where the stream id identifies one worker's own spill stream (a scatter
/// producer index, an aggregation partition), the site key is the byte
/// offset (or charge size) at the syscall boundary, and the epoch counts
/// driver-level retries. No global counters, no thread timing: the same
/// plan injects the same faults at the same sites for ANY pool size, so
/// chaos runs are reproducible and the injected-fault counters are exact
/// across pool arms. A disarmed registry costs one branch per site and
/// leaves execution byte-identical to a build without this header.
namespace matryoshka {

/// Seeded plan of real faults to inject. All probabilities default to 0:
/// a default plan is inactive and injects nothing.
struct RealFaultPlan {
  uint64_t seed = 2021;

  /// Probability a spill write site reports ENOSPC (disk full). Hard by
  /// definition — retrying the same full disk cannot help — so the site
  /// fails immediately with kResourceExhausted and the caller's fallback
  /// policy (RealIoPolicy::fallback_in_memory) decides what happens.
  double write_enospc_prob = 0.0;
  /// Probability a spill write site reports a transient EIO. The site fails
  /// `transient_duration` attempts, then succeeds — so bounded retry with
  /// backoff recovers iff transient_duration <= max_io_retries.
  double write_eio_prob = 0.0;
  /// Same for read sites.
  double read_eio_prob = 0.0;
  /// Probability a pwrite transfers only part of the buffer (the loop must
  /// finish the rest). Injected short transfers always move at least one
  /// byte, so progress is guaranteed even at probability 1.
  double short_write_prob = 0.0;
  /// Same for pread.
  double short_read_prob = 0.0;
  /// Probability one byte of a written run is flipped ON DISK after the
  /// caller computed its checksum — detected at merge-on-read as a checksum
  /// mismatch (kDataCorruption), never a silent wrong answer.
  double corrupt_prob = 0.0;
  /// Probability a real scratch charge point reports allocation failure
  /// (kOutOfMemory), subject to the same fallback policy as ENOSPC.
  double alloc_failure_prob = 0.0;
  /// Probability an IO site sleeps `slow_io_ms` of real wall clock before
  /// succeeding (a stalling disk). Never changes any output.
  double slow_io_prob = 0.0;
  int slow_io_ms = 1;

  /// How many attempts a transient-EIO site fails before recovering.
  /// 1 (default) recovers on the first retry; a value above
  /// RealIoPolicy::max_io_retries makes the site exhaust the retry budget.
  int transient_duration = 1;

  /// Faults fire only in epochs < storm_epochs; 0 means every epoch. With
  /// storm_epochs = 1 a run fails deterministically, and the driver retry
  /// (which bumps the epoch) finds calm weather — the deterministic
  /// "fails once, then recovers" chaos arm.
  int storm_epochs = 0;
  /// Epoch the registry starts in (the serving driver sets it per retry
  /// attempt so a re-run sees fresh draws).
  int initial_epoch = 0;

  /// True when any knob can inject anything.
  bool active() const {
    return write_enospc_prob > 0.0 || write_eio_prob > 0.0 ||
           read_eio_prob > 0.0 || short_write_prob > 0.0 ||
           short_read_prob > 0.0 || corrupt_prob > 0.0 ||
           alloc_failure_prob > 0.0 || slow_io_prob > 0.0;
  }
};

/// What the hardened IO layer does about real faults (injected or genuine).
struct RealIoPolicy {
  /// Bounded retries for transient EIO / syscall errors, with exponential
  /// backoff (retry_backoff_ms * 2^attempt of real wall clock per retry).
  int max_io_retries = 4;
  int retry_backoff_ms = 0;
  /// When the disk is unusable (ENOSPC, retries exhausted, corruption
  /// detected on a recoverable path): true = re-run the op in memory
  /// ignoring the scratch budget (counted in inmemory_fallbacks, output
  /// bit-identical); false = fail the job with the typed status.
  bool fallback_in_memory = true;
};

/// Site salts separating the independent fault streams (mirrors the salt
/// scheme of the simulated FaultPlan in engine/cluster.cc).
inline constexpr uint64_t kFpWriteEnospc = 0x454e4f5350432121ULL;
inline constexpr uint64_t kFpWriteEio = 0x57524954452d4549ULL;
inline constexpr uint64_t kFpReadEio = 0x524541442d45494fULL;
inline constexpr uint64_t kFpShortWrite = 0x53484f52542d5752ULL;
inline constexpr uint64_t kFpShortRead = 0x53484f52542d5244ULL;
inline constexpr uint64_t kFpCorrupt = 0x434f52525550542eULL;
inline constexpr uint64_t kFpAlloc = 0x414c4c4f432d4641ULL;
inline constexpr uint64_t kFpSlowIo = 0x534c4f572d494f2eULL;

/// The armed (or disarmed) failpoint state one engine run carries. Owned by
/// the Cluster; SpillFiles and charge points hold a const pointer and draw
/// through it. Thread-safe: the plan/policy are immutable after Arm and the
/// epoch is atomic (bumped only between driver attempts).
class FailpointRegistry {
 public:
  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  /// Installs the plan and policy. Call once, before any IO site draws.
  void Arm(const RealFaultPlan& plan, const RealIoPolicy& policy) {
    plan_ = plan;
    policy_ = policy;
    armed_ = plan.active();
    epoch_.store(plan.initial_epoch, std::memory_order_relaxed);
  }

  /// One branch on the hot path; everything else only runs when armed.
  bool armed() const { return armed_; }
  const RealFaultPlan& plan() const { return plan_; }
  const RealIoPolicy& policy() const { return policy_; }

  int epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Driver retries move to the next epoch: a re-run sees fresh draws
  /// (and calm weather once past storm_epochs).
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }
  void ResetEpoch() {
    epoch_.store(plan_.initial_epoch, std::memory_order_relaxed);
  }

  /// Deterministic per-site uniform draw in [0, 1). Pure function of
  /// (seed, stream, salt, key, epoch) — see the header comment.
  double Draw(uint64_t stream, uint64_t salt, uint64_t key) const;

  /// True when the (stream, salt, key) site is faulty under `prob` in the
  /// current epoch. Hard sites (ENOSPC, corruption, alloc) fail whenever
  /// faulty; pass attempt < 0 for those.
  bool Fires(uint64_t stream, uint64_t salt, uint64_t key,
             double prob) const {
    if (!armed_ || prob <= 0.0) return false;
    if (plan_.storm_epochs > 0 && epoch() >= plan_.storm_epochs) return false;
    return Draw(stream, salt, key) < prob;
  }

  /// Transient variant: a faulty site fails attempts
  /// 0..transient_duration-1, then succeeds.
  bool FiresTransient(uint64_t stream, uint64_t salt, uint64_t key,
                      int attempt, double prob) const {
    return attempt < plan_.transient_duration &&
           Fires(stream, salt, key, prob);
  }

  /// Sleeps the plan's slow-IO stall if the site draws one (real wall
  /// clock only; no output-visible effect).
  void MaybeStall(uint64_t stream, uint64_t key) const;

 private:
  bool armed_ = false;
  RealFaultPlan plan_;
  RealIoPolicy policy_;
  std::atomic<int> epoch_{0};
};

/// Parses the MATRYOSHKA_REAL_FAULTS environment value ("<prob>" or
/// "<prob>:<seed>") into a RECOVERABLE-ONLY storm: transient write/read EIO
/// (transient_duration 1, well inside the default retry budget) and short
/// transfers at the given probability. Never arms ENOSPC, corruption, or
/// allocation failure — the env override runs entire existing suites under
/// scripts/check.sh chaos, and those suites assert OK results; hard faults
/// are exercised by the chaos suite's explicit per-test plans instead.
/// Returns an inactive plan for an unparsable value.
RealFaultPlan ParseRealFaultStormEnv(const char* value);

}  // namespace matryoshka

#endif  // MATRYOSHKA_COMMON_FAILPOINTS_H_
