#ifndef MATRYOSHKA_ENGINE_EXTERNAL_SERDE_H_
#define MATRYOSHKA_ENGINE_EXTERNAL_SERDE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"

/// Byte serialization for spilled scratch elements. The contract is exact
/// round-tripping: Read(Write(x)) compares equal to x for every supported
/// type, including bit-exact doubles (memcpy, no text formatting), so an
/// element that took the spill-and-reread path is indistinguishable from one
/// that stayed in memory — a precondition of the external determinism
/// contract.
///
/// Coverage mirrors common/sizing.h: trivially copyable types, std::string,
/// and pair/tuple/vector/optional compositions thereof. Types outside this
/// set (e.g. the dynamically-typed lang::Value) report kSpillable == false
/// and the engine silently keeps their scratch in memory — correct (outputs
/// are identical by contract), just not memory-bounded for those bags.
namespace matryoshka::engine::external {

/// True when SpillSerde<T> can serialize T.
template <typename T>
inline constexpr bool kSpillable = std::is_trivially_copyable_v<T>;

template <>
inline constexpr bool kSpillable<std::string> = true;

template <typename A, typename B>
inline constexpr bool kSpillable<std::pair<A, B>> =
    kSpillable<A> && kSpillable<B>;

template <typename... Ts>
inline constexpr bool kSpillable<std::tuple<Ts...>> =
    (kSpillable<Ts> && ...);

template <typename T>
inline constexpr bool kSpillable<std::vector<T>> = kSpillable<T>;

template <typename T>
inline constexpr bool kSpillable<std::optional<T>> = kSpillable<T>;

template <typename T, typename Enable = void>
struct SpillSerde {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpillSerde: unsupported element type (gate on kSpillable)");
  static void Write(const T& v, std::string* buf) {
    buf->append(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  static T Read(const char** p, const char* end) {
    MATRYOSHKA_CHECK(*p + sizeof(T) <= end) << "spill run truncated";
    T v;
    std::memcpy(&v, *p, sizeof(T));
    *p += sizeof(T);
    return v;
  }
};

namespace serde_internal {

inline void WriteSize(std::size_t n, std::string* buf) {
  const auto v = static_cast<uint64_t>(n);
  buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline std::size_t ReadSize(const char** p, const char* end) {
  MATRYOSHKA_CHECK(*p + sizeof(uint64_t) <= end) << "spill run truncated";
  uint64_t v;
  std::memcpy(&v, *p, sizeof(v));
  *p += sizeof(v);
  return static_cast<std::size_t>(v);
}

}  // namespace serde_internal

template <>
struct SpillSerde<std::string> {
  static void Write(const std::string& s, std::string* buf) {
    serde_internal::WriteSize(s.size(), buf);
    buf->append(s);
  }
  static std::string Read(const char** p, const char* end) {
    const std::size_t n = serde_internal::ReadSize(p, end);
    MATRYOSHKA_CHECK(*p + n <= end) << "spill run truncated";
    std::string s(*p, n);
    *p += n;
    return s;
  }
};

template <typename A, typename B>
struct SpillSerde<std::pair<A, B>> {
  static void Write(const std::pair<A, B>& v, std::string* buf) {
    SpillSerde<A>::Write(v.first, buf);
    SpillSerde<B>::Write(v.second, buf);
  }
  static std::pair<A, B> Read(const char** p, const char* end) {
    A a = SpillSerde<A>::Read(p, end);
    B b = SpillSerde<B>::Read(p, end);
    return std::pair<A, B>(std::move(a), std::move(b));
  }
};

template <typename... Ts>
struct SpillSerde<std::tuple<Ts...>> {
  static void Write(const std::tuple<Ts...>& v, std::string* buf) {
    std::apply([&](const Ts&... xs) { (SpillSerde<Ts>::Write(xs, buf), ...); },
               v);
  }
  static std::tuple<Ts...> Read(const char** p, const char* end) {
    // Braced init guarantees left-to-right evaluation of the element reads.
    return std::tuple<Ts...>{SpillSerde<Ts>::Read(p, end)...};
  }
};

template <typename T>
struct SpillSerde<std::vector<T>> {
  static void Write(const std::vector<T>& v, std::string* buf) {
    serde_internal::WriteSize(v.size(), buf);
    for (const T& x : v) SpillSerde<T>::Write(x, buf);
  }
  static std::vector<T> Read(const char** p, const char* end) {
    const std::size_t n = serde_internal::ReadSize(p, end);
    std::vector<T> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(SpillSerde<T>::Read(p, end));
    return v;
  }
};

template <typename T>
struct SpillSerde<std::optional<T>> {
  static void Write(const std::optional<T>& v, std::string* buf) {
    buf->push_back(v.has_value() ? 1 : 0);
    if (v.has_value()) SpillSerde<T>::Write(*v, buf);
  }
  static std::optional<T> Read(const char** p, const char* end) {
    MATRYOSHKA_CHECK(*p < end) << "spill run truncated";
    const bool has = **p != 0;
    *p += 1;
    if (!has) return std::nullopt;
    return SpillSerde<T>::Read(p, end);
  }
};

}  // namespace matryoshka::engine::external

#endif  // MATRYOSHKA_ENGINE_EXTERNAL_SERDE_H_
