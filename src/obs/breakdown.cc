#include "obs/breakdown.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"

namespace matryoshka::obs {

Breakdown ComputeBreakdown(const RunTrace& run) {
  Breakdown b;
  for (const JobSpan& job : run.jobs) {
    b.job_launch_s += job.end_s - job.begin_s;
  }
  for (const StageSpan& stage : run.stages) {
    b.compute_s += stage.compute_s;
    b.task_overhead_s += stage.overhead_s;
    b.spill_s += stage.spill_s;
    b.recovery_s += stage.fault_s;
  }
  for (const DriverSpan& span : run.driver) {
    const double dt = span.end_s - span.begin_s;
    switch (span.category) {
      case Category::kShuffle:
        b.shuffle_s += dt;
        break;
      case Category::kBroadcast:
        b.broadcast_s += dt;
        break;
      case Category::kCollect:
        b.collect_s += dt;
        break;
      case Category::kRecovery:
        b.recovery_s += dt;
        break;
      case Category::kCheckpoint:
        b.checkpoint_s += dt;
        break;
      default:
        // Job launch arrives via JobSpan, compute via StageSpan; any other
        // driver interval would be a new category — count it as compute so
        // the total still covers the clock.
        b.compute_s += dt;
        break;
    }
  }
  return b;
}

std::vector<CriticalStage> CriticalPath(const RunTrace& run) {
  std::vector<CriticalStage> chain;
  chain.reserve(run.stages.size());
  for (const StageSpan& stage : run.stages) {
    CriticalStage link;
    link.stage_id = stage.id;
    link.label = stage.label;
    link.begin_s = stage.begin_s;
    link.duration_s = stage.end_s - stage.begin_s;
    link.num_tasks = stage.num_tasks;
    link.critical_slot = stage.critical_slot;
    chain.push_back(std::move(link));
  }
  return chain;
}

namespace {

void AppendRow(std::string* out, const char* name, double seconds,
               double total) {
  char buf[128];
  const double pct = total > 0.0 ? 100.0 * seconds / total : 0.0;
  std::snprintf(buf, sizeof(buf), "  %-14s %12.4f s  %5.1f%%\n", name,
                seconds, pct);
  *out += buf;
}

}  // namespace

std::string FormatBreakdown(const RunTrace& run, int top_stages) {
  const Breakdown b = ComputeBreakdown(run);
  const double total = b.total();
  std::string out;
  out += "breakdown";
  if (!run.name.empty()) out += " of " + run.name;
  out += ":\n";
  AppendRow(&out, "job-launch", b.job_launch_s, total);
  AppendRow(&out, "compute", b.compute_s, total);
  AppendRow(&out, "task-overhead", b.task_overhead_s, total);
  AppendRow(&out, "spill", b.spill_s, total);
  AppendRow(&out, "shuffle", b.shuffle_s, total);
  AppendRow(&out, "broadcast", b.broadcast_s, total);
  AppendRow(&out, "collect", b.collect_s, total);
  AppendRow(&out, "recovery", b.recovery_s, total);
  AppendRow(&out, "checkpoint", b.checkpoint_s, total);
  AppendRow(&out, "total", total, total);

  std::vector<CriticalStage> chain = CriticalPath(run);
  std::sort(chain.begin(), chain.end(),
            [](const CriticalStage& a, const CriticalStage& b2) {
              if (a.duration_s != b2.duration_s) {
                return a.duration_s > b2.duration_s;
              }
              return a.stage_id < b2.stage_id;
            });
  const std::size_t n =
      std::min<std::size_t>(chain.size(), static_cast<std::size_t>(
                                              std::max(0, top_stages)));
  if (n > 0) out += "top stages by makespan:\n";
  for (std::size_t i = 0; i < n; ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  #%-5lld %-24s %10.4f s  (%lld tasks, slot %lld)\n",
                  static_cast<long long>(chain[i].stage_id),
                  chain[i].label.c_str(), chain[i].duration_s,
                  static_cast<long long>(chain[i].num_tasks),
                  static_cast<long long>(chain[i].critical_slot));
    out += buf;
  }
  return out;
}

void WriteBreakdownJson(const Breakdown& b, std::ostream& os) {
  os << "{\"job_launch_s\":" << JsonDouble(b.job_launch_s)
     << ",\"compute_s\":" << JsonDouble(b.compute_s)
     << ",\"task_overhead_s\":" << JsonDouble(b.task_overhead_s)
     << ",\"spill_s\":" << JsonDouble(b.spill_s)
     << ",\"shuffle_s\":" << JsonDouble(b.shuffle_s)
     << ",\"broadcast_s\":" << JsonDouble(b.broadcast_s)
     << ",\"collect_s\":" << JsonDouble(b.collect_s)
     << ",\"recovery_s\":" << JsonDouble(b.recovery_s)
     << ",\"checkpoint_s\":" << JsonDouble(b.checkpoint_s)
     << ",\"total_s\":" << JsonDouble(b.total()) << "}";
}

}  // namespace matryoshka::obs
