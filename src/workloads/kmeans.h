#ifndef MATRYOSHKA_WORKLOADS_KMEANS_H_
#define MATRYOSHKA_WORKLOADS_KMEANS_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/sizing.h"
#include "core/optimizer.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/workload.h"

/// K-means clustering with many initial configurations (Sec. 2.3, Fig. 1),
/// the paper's canonical iterative task with control flow at the inner
/// nesting level. Two modes:
///  - grouped: every run clusters its own point set (the weak-scaling
///    experiments of Fig. 3, where #runs x points-per-run is constant),
///  - hyperparameter: every run clusters the SAME shared point set from a
///    different initialization — the assignment step is then a half-lifted
///    MapWithClosure between the shared points (outside the lifted UDF) and
///    the per-run means (inside), the operation of Sec. 8.3 / Fig. 8 right.
namespace matryoshka::workloads {

/// Upper bound on K supported by the lifted implementation (the per-run
/// partial aggregate is a fixed-size array so it stays trivially copyable).
inline constexpr int64_t kMaxK = 16;

struct KMeansParams {
  int64_t k = 4;
  int64_t max_iterations = 10;
  /// Convergence threshold on the total centroid shift per iteration;
  /// different runs converge at different iterations, exercising the lifted
  /// loop's per-tag exit (Sec. 6.2).
  double epsilon = 1e-3;
  uint64_t init_seed = 42;
};

/// Per-run outcome: the converged means, the inertia (sum of squared
/// distances of points to their centroid, comparable across variants), and
/// the number of iterations executed.
struct KMeansModel {
  datagen::Means means;
  double inertia = 0.0;
  int64_t iterations = 0;
};

using KMeansResult = WorkloadResult<int64_t, KMeansModel>;

}  // namespace matryoshka::workloads

namespace matryoshka::sizing_internal {
template <>
struct Sizer<workloads::KMeansModel> {
  static std::size_t Of(const workloads::KMeansModel& m) {
    return EstimateSize(m.means) + sizeof(double) + sizeof(int64_t);
  }
};
}  // namespace matryoshka::sizing_internal

namespace matryoshka::workloads {

// --- Grouped mode (each run owns its points) ---

KMeansResult KMeansMatryoshka(
    engine::Cluster* cluster,
    const engine::Bag<std::pair<int64_t, datagen::Point>>& points,
    const KMeansParams& params, core::OptimizerOptions options = {});

KMeansResult KMeansOuterParallel(
    engine::Cluster* cluster,
    const engine::Bag<std::pair<int64_t, datagen::Point>>& points,
    const KMeansParams& params);

KMeansResult KMeansInnerParallel(
    engine::Cluster* cluster,
    const engine::Bag<std::pair<int64_t, datagen::Point>>& points,
    const KMeansParams& params);

KMeansResult RunKMeans(
    engine::Cluster* cluster,
    const engine::Bag<std::pair<int64_t, datagen::Point>>& points,
    const KMeansParams& params, Variant variant,
    core::OptimizerOptions options = {});

/// Reference grouped K-means computed sequentially on the driver.
std::vector<std::pair<int64_t, KMeansModel>> KMeansReference(
    const std::vector<std::pair<int64_t, datagen::Point>>& points,
    const KMeansParams& params);

// --- Hyperparameter mode (shared points, per-run initializations) ---

/// Runs one K-means per initial configuration over the shared `points`.
/// `num_runs` initial configurations are generated from params.init_seed.
/// The cross-product strategy of the half-lifted assignment step follows
/// options.cross_strategy (Fig. 8 right forces each side).
KMeansResult KMeansHyperparameterMatryoshka(
    engine::Cluster* cluster, const engine::Bag<datagen::Point>& points,
    int64_t num_runs, const KMeansParams& params,
    core::OptimizerOptions options = {});

/// Inner-parallel hyperparameter search: a driver loop over configurations,
/// each iteration of each run a separate set of engine jobs.
KMeansResult KMeansHyperparameterInnerParallel(
    engine::Cluster* cluster, const engine::Bag<datagen::Point>& points,
    int64_t num_runs, const KMeansParams& params);

/// Sequential single-machine K-means (shared by baselines and reference).
KMeansModel SequentialKMeans(const std::vector<datagen::Point>& points,
                             datagen::Means init, int64_t max_iterations,
                             double epsilon);

}  // namespace matryoshka::workloads

#endif  // MATRYOSHKA_WORKLOADS_KMEANS_H_
