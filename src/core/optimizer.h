#ifndef MATRYOSHKA_CORE_OPTIMIZER_H_
#define MATRYOSHKA_CORE_OPTIMIZER_H_

#include <cstdint>

#include "engine/cluster.h"

namespace matryoshka::core {

/// Physical implementation of an equi-join between the flat bags that
/// represent InnerBags / InnerScalars (Sec. 8.2).
enum class JoinStrategy {
  /// Decide at lowering time from InnerScalar sizes (the paper's optimizer).
  kAuto,
  /// Broadcast the (scalar) side, probe from the other side; no shuffle.
  kBroadcast,
  /// Hash-shuffle both sides on the tag.
  kRepartition,
};

/// Physical implementation of a half-lifted MapWithClosure — a cross
/// product between a plain bag (the primary input from outside the lifted
/// UDF) and an InnerScalar (the closure from inside it) (Sec. 8.3).
enum class CrossStrategy {
  /// Decide at lowering time: broadcast the InnerScalar when it has a
  /// single partition, otherwise broadcast whichever input is smaller per
  /// the size estimator.
  kAuto,
  /// Always broadcast the bag representing the InnerScalar.
  kBroadcastScalar,
  /// Always broadcast the primary input bag.
  kBroadcastPrimary,
};

/// Knobs controlling the lowering-phase optimizer. The defaults enable every
/// optimization; benchmarks force individual strategies to reproduce the
/// ablations of Fig. 8 and Sec. 9.6.
struct OptimizerOptions {
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  CrossStrategy cross_strategy = CrossStrategy::kAuto;
  /// Sec. 8.1: set the partition counts of InnerScalar-sized intermediates
  /// from the known InnerScalar size instead of the engine default.
  bool tune_partitions = true;
};

/// The lowering-phase optimizer (Sec. 8). Stateless: every decision is a
/// pure function of the cluster shape, the options, and the runtime
/// cardinalities tracked by the LiftingContext.
class Optimizer {
 public:
  Optimizer(const engine::ClusterConfig* config, OptimizerOptions options)
      : config_(config), options_(options) {}

  const OptimizerOptions& options() const { return options_; }

  /// Sec. 8.1: number of partitions for a bag whose size equals the
  /// InnerScalar size (`num_tags` elements). Small InnerScalars get few
  /// partitions so per-partition overhead does not dominate.
  int64_t ScalarPartitions(int64_t num_tags) const {
    if (!options_.tune_partitions) return config_->default_parallelism;
    if (num_tags <= 0) return 1;
    return num_tags < config_->default_parallelism
               ? num_tags
               : config_->default_parallelism;
  }

  /// Sec. 8.2: join between an InnerBag/InnerScalar and an InnerScalar of
  /// `num_tags` elements. "We choose a repartition join when there are
  /// enough elements in the InnerScalar to give work to all CPU cores.
  /// Otherwise, we choose a broadcast join."
  JoinStrategy ChooseJoin(int64_t num_tags) const {
    if (options_.join_strategy != JoinStrategy::kAuto) {
      return options_.join_strategy;
    }
    return num_tags >= config_->total_cores() ? JoinStrategy::kRepartition
                                              : JoinStrategy::kBroadcast;
  }

  /// Sec. 8.3: which side of a half-lifted cross product to broadcast.
  /// `scalar_partitions` is the partition count of the InnerScalar's bag;
  /// byte sizes are real (scale-adjusted) estimates.
  CrossStrategy ChooseCross(int64_t scalar_partitions, double scalar_bytes,
                            double primary_bytes) const {
    if (options_.cross_strategy != CrossStrategy::kAuto) {
      return options_.cross_strategy;
    }
    // Single-partition InnerScalars are the common case (thanks to
    // ScalarPartitions) and are quick to check — broadcast them.
    if (scalar_partitions <= 1) return CrossStrategy::kBroadcastScalar;
    return scalar_bytes <= primary_bytes ? CrossStrategy::kBroadcastScalar
                                         : CrossStrategy::kBroadcastPrimary;
  }

 private:
  const engine::ClusterConfig* config_;
  OptimizerOptions options_;
};

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_OPTIMIZER_H_
