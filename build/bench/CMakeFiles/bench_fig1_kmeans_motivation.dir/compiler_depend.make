# Empty compiler generated dependencies file for bench_fig1_kmeans_motivation.
# This may be replaced when dependencies are built.
