#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/logging.h"

namespace matryoshka {

namespace {
std::atomic<int64_t> g_uncaught_task_exceptions{0};
}  // namespace

int64_t ThreadPool::UncaughtTaskExceptions() {
  return g_uncaught_task_exceptions.load(std::memory_order_relaxed);
}

std::size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  MATRYOSHKA_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(TaskFunction task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    TaskFunction task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // A fire-and-forget task that throws must not unwind the worker loop:
    // that would std::terminate the whole process for one bad task. Tasks
    // with callers that care (ParallelFor) do their own capture/rethrow and
    // never reach this catch.
    try {
      task();
    } catch (const std::exception& e) {
      g_uncaught_task_exceptions.fetch_add(1, std::memory_order_relaxed);
      MATRYOSHKA_LOG(kWarning)
          << "uncaught exception in fire-and-forget pool task: " << e.what();
    } catch (...) {
      g_uncaught_task_exceptions.fetch_add(1, std::memory_order_relaxed);
      MATRYOSHKA_LOG(kWarning)
          << "uncaught non-std exception in fire-and-forget pool task";
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

namespace {

/// State of one ParallelFor call, shared between the caller and the helper
/// tasks. Heap-allocated and owned jointly (shared_ptr): a helper that is
/// only scheduled after the loop already finished must still find valid
/// state, see that no chunks remain, and exit without touching `body`.
struct ParallelForState {
  std::atomic<std::size_t> next{0};  // next unclaimed index
  std::size_t n = 0;
  std::size_t chunk = 1;       // indices per chunk
  std::size_t num_chunks = 0;  // total chunks to complete
  const std::function<void(std::size_t)>* body = nullptr;

  /// Fast-path flag: once a body threw, later chunks are claimed and ticked
  /// but their bodies skipped (the loop's output is void anyway).
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable cv;
  std::size_t done_chunks = 0;  // guarded by mu
  /// First exception by LOWEST chunk start among the bodies that ran
  /// (guarded by mu). Lowest-index-wins keeps the rethrown error stable in
  /// the common one-bad-index case regardless of which thread hit it first.
  std::exception_ptr error;
  std::size_t error_begin = 0;

  /// Claims and runs chunks until none remain. Safe to call from any number
  /// of threads; every claimed chunk is reported done exactly once — also
  /// when its body throws, which is what keeps the caller's barrier from
  /// deadlocking on a failed loop.
  void RunChunks() {
    for (;;) {
      const std::size_t begin =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + chunk);
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t i = begin; i < end; ++i) (*body)(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          std::unique_lock<std::mutex> lock(mu);
          if (error == nullptr || begin < error_begin) {
            error = std::current_exception();
            error_begin = begin;
          }
        }
      }
      std::unique_lock<std::mutex> lock(mu);
      if (++done_chunks == num_chunks) cv.notify_all();
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // ~4 chunks per participant: coarse enough that per-chunk bookkeeping (one
  // atomic claim + one mutex tick) is negligible, fine enough that uneven
  // per-index work still load-balances across workers.
  const std::size_t participants = pool->num_threads() + 1;  // + caller
  const std::size_t target_chunks = std::min(n, 4 * participants);

  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->chunk = (n + target_chunks - 1) / target_chunks;
  state->num_chunks = (n + state->chunk - 1) / state->chunk;
  state->body = &body;

  // One helper per worker, capped at chunks beyond the caller's first claim.
  // Helpers hold shared ownership: a straggler scheduled after completion
  // finds next >= n and exits without dereferencing `body`.
  const std::size_t helpers =
      std::min(pool->num_threads(), state->num_chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();  // the calling thread participates

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock,
                 [&] { return state->done_chunks == state->num_chunks; });
  // Rethrow after the barrier: every body has finished (or was skipped), so
  // the caller's data structures are quiescent when the exception unwinds.
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

}  // namespace matryoshka
