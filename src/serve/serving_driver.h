#ifndef MATRYOSHKA_SERVE_SERVING_DRIVER_H_
#define MATRYOSHKA_SERVE_SERVING_DRIVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/cluster.h"
#include "obs/trace_recorder.h"
#include "serve/memo_cache.h"
#include "serve/plan.h"
#include "serve/registry.h"

/// The plan-serving driver: executes registered plans concurrently over
/// ONE shared chunked thread pool, one isolated Cluster per request.
///
/// The serving isolation contract (DESIGN.md): a request's response —
/// data, partition order, key_partitions, full Metrics, exported trace —
/// is a pure function of (plan, params, engine config), bit-identical
/// whether the request runs alone or concurrently under load. The
/// architecture that guarantees it:
///  - per-request Cluster: each request gets its own simulated clock,
///    Metrics, fault-draw state, sticky status, and trace sink, created
///    on the worker thread that runs it (which makes that worker the
///    cluster's driver thread — Bag::Force() checks this);
///  - shared ThreadPool only for real CPU: ParallelFor is safe for
///    concurrent independent callers and all engine accounting happens
///    on the request's own driver thread;
///  - deterministic fault draws: keyed on (seed, stage, task, attempt),
///    independent of pool interleaving;
///  - cache-agnostic responses: a memo hit returns the memoized bytes of
///    the original computation, and hit/miss counters surface only in
///    the driver's aggregate stats (hit timing is load-dependent).
///
/// Admission control: `max_in_flight` worker threads bound concurrent
/// execution structurally; beyond that, requests queue up to
/// `max_queue_depth` and are then rejected with kResourceExhausted.
/// Fairness: queued requests are popped round-robin across tenants, so a
/// tenant flooding the queue cannot starve another's trickle.
namespace matryoshka::serve {

struct ServingConfig {
  /// Template for every per-request Cluster (parallelism, cost model,
  /// faults, fusion, recovery). `shared_pool` and `recovery.run_deadline_s`
  /// are overwritten per request; the rest is copied verbatim.
  engine::ClusterConfig cluster;
  /// Concurrent requests in execution (= worker threads).
  int max_in_flight = 4;
  /// Queued (admitted, not yet executing) requests beyond which Submit
  /// rejects with kResourceExhausted.
  int max_queue_depth = 64;
  /// Deadline (simulated seconds) for requests that don't set their own;
  /// 0 = none.
  double default_deadline_s = 0.0;
  /// Memo cache capacity in entries; 0 disables caching.
  std::size_t cache_entries = 128;
  /// Real threads of the shared pool (0 = ThreadPool::DefaultThreads()).
  /// Only consulted when cluster.execute_parallel is on.
  int pool_threads = 0;
  /// Record a per-request trace lane for every request (response carries
  /// the Chrome JSON; ExportCombinedTrace merges all lanes).
  bool record_traces = false;
  /// Scheduling weight per tenant (weighted round-robin): a tenant with
  /// weight w is served up to w queued requests per turn before the
  /// scheduler moves on. Unlisted tenants weigh 1.
  std::unordered_map<std::string, int> tenant_weights;
  /// Extra serving-level attempts for requests that fail with kIOError or
  /// kDataCorruption even after the engine's own driver recovery gives up.
  /// Each retry re-runs the plan on a FRESH Cluster with the real-fault
  /// epoch advanced (fresh deterministic draws — a transient storm may have
  /// passed). kResourceExhausted is never retried here: the request is shed
  /// (retrying against a full disk or budget only adds load). 0 = off.
  int real_fault_retries = 0;
  /// Real wall-clock backoff before serving-level retry k, doubling:
  /// real_fault_backoff_ms * 2^(k-1) milliseconds. 0 = retry immediately.
  double real_fault_backoff_ms = 0.0;
};

struct ServeRequest {
  std::string plan;
  std::string tenant = "default";
  PlanParams params;
  /// Per-request deadline in simulated seconds; < 0 = use the config
  /// default, 0 = explicitly none.
  double deadline_s = -1.0;
  bool use_cache = true;
};

struct ServeResponse {
  Status status;
  PlanOutput output;
  /// The request's isolated engine metrics (cache counters always zero
  /// here — see the isolation contract).
  engine::Metrics metrics;
  /// Chrome-trace JSON of this request's lane ("" unless record_traces).
  std::string trace_json;
  bool cache_hit = false;
  /// True when admission control turned the request away (status is
  /// kResourceExhausted and no execution happened).
  bool rejected = false;
  /// Real wall-clock seconds from Submit to completion.
  double wall_s = 0.0;
};

/// Completion handle for a submitted request. Wait() blocks until the
/// response is ready and returns a reference valid for the ticket's
/// lifetime; it may be called from any thread, any number of times.
class ServeTicket {
 public:
  const ServeResponse& Wait();
  bool Ready() const;

 private:
  friend class ServingDriver;
  void Complete(ServeResponse response);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool ready_ = false;
  ServeResponse response_;
};

/// The driver. Owns the worker threads, the shared pool, the memo cache,
/// and the combined trace. Registry must outlive the driver and must not
/// be mutated while requests reference its specs (register everything
/// first, then serve — the intended lifecycle).
class ServingDriver {
 public:
  ServingDriver(const PlanRegistry* registry, ServingConfig config);
  ~ServingDriver();
  ServingDriver(const ServingDriver&) = delete;
  ServingDriver& operator=(const ServingDriver&) = delete;

  /// Admits or rejects the request; never blocks on execution. Unknown
  /// plans and rejections complete the ticket immediately.
  std::shared_ptr<ServeTicket> Submit(ServeRequest request);

  /// Submit + Wait.
  ServeResponse Execute(ServeRequest request);

  /// Blocks until every admitted request has completed.
  void Drain();

  struct Stats {
    int64_t submitted = 0;
    int64_t accepted = 0;
    int64_t rejected = 0;
    int64_t completed = 0;  // executed to any terminal status
    int64_t failed = 0;     // completed with !status.ok()
    int64_t deadline_exceeded = 0;
    /// Requests whose final status was kIOError / kDataCorruption (after
    /// all serving-level retries).
    int64_t io_errors = 0;
    int64_t corruptions = 0;
    /// Serving-level re-runs taken for IO failures (ServingConfig::
    /// real_fault_retries); the engine's own driver retries are counted in
    /// aggregate.driver_retries instead.
    int64_t real_fault_retries = 0;
    /// Executed requests shed with kResourceExhausted (admission rejects
    /// are counted in `rejected`, not here).
    int64_t shed = 0;
    int64_t cache_hits = 0;
    MemoCache::Stats cache;
    /// Sum of per-request Metrics (peaks are maxed), plus the cache
    /// counters — the only place they appear.
    engine::Metrics aggregate;
  };
  Stats GetStats() const;

  /// Writes one Chrome trace containing every request's lane (one
  /// process per request, in completion order). Call quiesced (after
  /// Drain); empty unless record_traces.
  void ExportCombinedTrace(std::ostream& os) const;

  ThreadPool* shared_pool() const { return pool_.get(); }
  const ServingConfig& config() const { return config_; }

 private:
  struct QueuedItem {
    ServeRequest request;
    const PlanSpec* spec = nullptr;
    std::shared_ptr<ServeTicket> ticket;
    std::chrono::steady_clock::time_point submit_time;
  };

  void WorkerLoop();
  bool PopNext(QueuedItem* item);  // under mu_
  ServeResponse RunOne(const QueuedItem& item);

  const PlanRegistry* registry_;
  const ServingConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  MemoCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for queued items
  std::condition_variable drain_cv_;  // Drain waits for quiescence
  bool stop_ = false;
  /// Weighted round-robin state: tenants in first-seen order, the cursor,
  /// and how many requests the cursor tenant was served this turn; the
  /// scheduler stays on a tenant until its weight is spent, then advances.
  std::vector<std::string> tenant_order_;
  std::unordered_map<std::string, std::deque<QueuedItem>> queues_;
  std::size_t rr_cursor_ = 0;
  int turn_served_ = 0;
  int queued_ = 0;
  int executing_ = 0;
  Stats stats_;
  obs::TraceRecorder combined_trace_;

  std::vector<std::thread> workers_;
};

}  // namespace matryoshka::serve

#endif  // MATRYOSHKA_SERVE_SERVING_DRIVER_H_
