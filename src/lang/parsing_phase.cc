#include "lang/parsing_phase.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace matryoshka::lang {

namespace {

/// Mutable copy of an expression node (the rewriter builds new trees).
std::shared_ptr<Expr> Clone(const Expr& e) {
  return std::make_shared<Expr>(e);
}

/// Collects the free variables of an expression (vars not bound by
/// `bound`), in first-use order.
void CollectFreeVars(const Expr& e, std::set<std::string>& bound,
                     std::vector<std::string>& out) {
  switch (e.kind) {
    case ExprKind::kVar:
      if (!bound.count(e.name) &&
          std::find(out.begin(), out.end(), e.name) == out.end()) {
        out.push_back(e.name);
      }
      return;
    case ExprKind::kSource:
    case ExprKind::kConst:
      return;
    default:
      break;
  }
  for (const auto& in : e.inputs) CollectFreeVars(*in, bound, out);
  for (const LambdaPtr& lam : {e.lambda, e.lambda2}) {
    if (!lam) continue;
    std::set<std::string> inner = bound;
    for (const auto& p : lam->params) inner.insert(p);
    for (const Stmt& s : lam->body) {
      CollectFreeVars(*s.expr, inner, out);
      inner.insert(s.name);
    }
    CollectFreeVars(*lam->result, inner, out);
  }
}

std::vector<std::string> FreeVars(const Lambda& lam) {
  std::set<std::string> bound(lam.params.begin(), lam.params.end());
  std::vector<std::string> out;
  for (const Stmt& s : lam.body) {
    CollectFreeVars(*s.expr, bound, out);
    bound.insert(s.name);
  }
  CollectFreeVars(*lam.result, bound, out);
  return out;
}

bool IsBagOpKind(ExprKind k) {
  switch (k) {
    case ExprKind::kMap:
    case ExprKind::kFilter:
    case ExprKind::kFlatMap:
    case ExprKind::kReduceByKey:
    case ExprKind::kGroupByKey:
    case ExprKind::kDistinct:
    case ExprKind::kCount:
    case ExprKind::kUnion:
      return true;
    default:
      return false;
  }
}

/// Does the UDF body contain bag operations? (The trigger for lifting the
/// UDF — Theorem 1 case 1.)
bool HasBagOps(const Lambda& lam) {
  std::vector<const Expr*> stack;
  for (const Stmt& s : lam.body) stack.push_back(s.expr.get());
  stack.push_back(lam.result.get());
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (IsBagOpKind(e->kind)) return true;
    for (const auto& in : e->inputs) stack.push_back(in.get());
    for (const LambdaPtr& l : {e->lambda, e->lambda2}) {
      if (!l) continue;
      for (const Stmt& s : l->body) stack.push_back(s.expr.get());
      stack.push_back(l->result.get());
    }
  }
  return false;
}

/// Closure conversion for element-level lambdas: record free variables.
LambdaPtr WithCaptures(const LambdaPtr& lam) {
  auto vars = FreeVars(*lam);
  if (vars.empty()) return lam;
  auto out = std::make_shared<Lambda>(*lam);
  out->captures = std::move(vars);
  return out;
}

class Rewriter {
 public:
  Result<Program> Run(const Program& in,
                      std::unordered_map<std::string, VType>* types) {
    Program out;
    out.result = in.result;
    for (const Stmt& s : in.stmts) {
      MATRYOSHKA_ASSIGN_OR_RETURN(Typed t, RewriteTop(*s.expr));
      env_[s.name] = t.type;
      out.stmts.push_back(Stmt{s.name, t.expr});
    }
    if (!env_.count(in.result)) {
      return Status::InvalidArgument("program result '" + in.result +
                                     "' is not bound");
    }
    *types = env_;
    return out;
  }

 private:
  struct Typed {
    ExprPtr expr;
    VType type;
  };

  Result<VType> TypeOf(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kSource:
        return VType::kBag;
      case ExprKind::kVar: {
        auto it = env_.find(e.name);
        if (it == env_.end()) {
          return Status::InvalidArgument("unbound variable '" + e.name + "'");
        }
        return it->second;
      }
      case ExprKind::kConst:
        return VType::kScalar;
      default:
        return Status::Internal("TypeOf on composite expression");
    }
  }

  /// Rewrites a top-level statement (outside any UDF). Theorem 1's case
  /// analysis for top-level operations.
  Result<Typed> RewriteTop(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kSource:
        return Typed{Clone(e), VType::kBag};
      case ExprKind::kVar: {
        MATRYOSHKA_ASSIGN_OR_RETURN(VType t, TypeOf(e));
        return Typed{Clone(e), t};
      }
      case ExprKind::kConst:
        return Typed{Clone(e), VType::kScalar};
      case ExprKind::kGroupByKey: {
        // Case 2: flat input, nested output -> groupByKeyIntoNestedBag.
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed in, RewriteTop(*e.inputs[0]));
        if (in.type != VType::kBag) {
          return Status::Unsupported("groupByKey over a non-flat input");
        }
        auto out = Clone(e);
        out->kind = ExprKind::kGroupByKeyIntoNestedBag;
        out->inputs = {in.expr};
        return Typed{out, VType::kNestedBag};
      }
      case ExprKind::kMap: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed in, RewriteTop(*e.inputs[0]));
        if (in.type == VType::kNestedBag || HasBagOps(*e.lambda)) {
          // Cases 1 & 3: the UDF must be lifted.
          return RewriteLiftedMap(e, in);
        }
        auto out = Clone(e);
        out->inputs = {in.expr};
        out->lambda = WithCaptures(e.lambda);
        return Typed{out, VType::kBag};
      }
      case ExprKind::kFilter:
      case ExprKind::kFlatMap:
      case ExprKind::kDistinct: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed in, RewriteTop(*e.inputs[0]));
        if (in.type != VType::kBag) {
          return Status::Unsupported(
              "only map supports nested inputs at top level");
        }
        auto out = Clone(e);
        out->inputs = {in.expr};
        if (e.lambda) out->lambda = WithCaptures(e.lambda);
        return Typed{out, VType::kBag};
      }
      case ExprKind::kReduceByKey: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed in, RewriteTop(*e.inputs[0]));
        if (in.type != VType::kBag) {
          return Status::Unsupported("reduceByKey over a non-flat input");
        }
        if (HasBagOps(*e.lambda2)) {
          return Status::Unsupported(
              "bag operations inside aggregation UDFs (Sec. 7 assumption)");
        }
        auto out = Clone(e);
        out->inputs = {in.expr};
        return Typed{out, VType::kBag};
      }
      case ExprKind::kCount: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed in, RewriteTop(*e.inputs[0]));
        auto out = Clone(e);
        out->inputs = {in.expr};
        return Typed{out, VType::kScalar};
      }
      case ExprKind::kUnion: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed a, RewriteTop(*e.inputs[0]));
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed b, RewriteTop(*e.inputs[1]));
        auto out = Clone(e);
        out->inputs = {a.expr, b.expr};
        return Typed{out, VType::kBag};
      }
      case ExprKind::kBinOp: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed a, RewriteTop(*e.inputs[0]));
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed b, RewriteTop(*e.inputs[1]));
        if (a.type != VType::kScalar || b.type != VType::kScalar) {
          return Status::Unsupported("binop over non-scalars at top level");
        }
        auto out = Clone(e);
        out->inputs = {a.expr, b.expr};
        return Typed{out, VType::kScalar};
      }
      case ExprKind::kTupleMake:
      case ExprKind::kTupleField: {
        auto out = Clone(e);
        out->inputs.clear();
        for (const auto& in : e.inputs) {
          MATRYOSHKA_ASSIGN_OR_RETURN(Typed t, RewriteTop(*in));
          out->inputs.push_back(t.expr);
        }
        return Typed{out, VType::kScalar};
      }
      default:
        return Status::InvalidArgument(
            "parsing-phase primitive in the input program: " + ToString(e));
    }
  }

  /// Case 1/3: turns a map into mapWithLiftedUDF and lifts the UDF body.
  Result<Typed> RewriteLiftedMap(const Expr& e, const Typed& input) {
    const Lambda& lam = *e.lambda;
    std::unordered_map<std::string, VType> local = env_;
    if (input.type == VType::kNestedBag) {
      if (lam.params.size() != 2) {
        return Status::InvalidArgument(
            "the UDF of a map over a nested bag takes (key, group)");
      }
      local[lam.params[0]] = VType::kInnerScalar;
      local[lam.params[1]] = VType::kInnerBag;
    } else {
      if (lam.params.size() != 1) {
        return Status::InvalidArgument("map UDF takes one parameter");
      }
      local[lam.params[0]] = VType::kInnerScalar;
    }

    auto lifted = std::make_shared<Lambda>();
    lifted->params = lam.params;
    lifted->captures = FreeVars(lam);
    for (const Stmt& s : lam.body) {
      MATRYOSHKA_ASSIGN_OR_RETURN(Typed t, RewriteInUdf(*s.expr, local));
      local[s.name] = t.type;
      lifted->body.push_back(Stmt{s.name, t.expr});
    }
    MATRYOSHKA_ASSIGN_OR_RETURN(Typed res, RewriteInUdf(*lam.result, local));
    lifted->result = res.expr;
    if (res.type != VType::kInnerScalar && res.type != VType::kInnerBag) {
      return Status::Unsupported(
          "the result of a lifted UDF must be a lifted scalar or bag");
    }

    auto out = Clone(e);
    out->kind = ExprKind::kMapWithLiftedUdf;
    out->inputs = {input.expr};
    out->lambda = lifted;
    return Typed{out, res.type};
  }

  /// Rewrites a statement INSIDE a lifted UDF: bag operations become lifted
  /// operations, scalar operations over lifted scalars become scalar-op
  /// primitives (Sec. 4.3-4.4).
  Result<Typed> RewriteInUdf(const Expr& e,
                             std::unordered_map<std::string, VType>& local) {
    switch (e.kind) {
      case ExprKind::kVar: {
        auto it = local.find(e.name);
        if (it == local.end()) {
          return Status::InvalidArgument("unbound variable '" + e.name +
                                         "' in lifted UDF");
        }
        return Typed{Clone(e), it->second};
      }
      case ExprKind::kConst:
        return Typed{Clone(e), VType::kScalar};
      case ExprKind::kSource:
        // A bag from outside the UDF: the lifted-UDF closure case of
        // Sec. 5.2 (half-lifted operations).
        return Typed{Clone(e), VType::kBag};
      case ExprKind::kMap:
      case ExprKind::kFilter:
      case ExprKind::kFlatMap:
      case ExprKind::kDistinct: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed in, RewriteInUdf(*e.inputs[0], local));
        if (in.type != VType::kInnerBag) {
          return Status::Unsupported(
              "bag op inside a lifted UDF over a non-lifted bag");
        }
        auto out = Clone(e);
        out->inputs = {in.expr};
        switch (e.kind) {
          case ExprKind::kMap: {
            // An element lambda capturing an InnerScalar is the unlifted-UDF
            // closure case (Sec. 5.1): mapWithClosure.
            auto captured = WithCaptures(e.lambda);
            std::string closure_var;
            for (const auto& c : captured->captures) {
              auto it = local.find(c);
              if (it != local.end() && it->second == VType::kInnerScalar) {
                if (!closure_var.empty()) {
                  return Status::Unsupported(
                      "more than one InnerScalar closure per lambda");
                }
                closure_var = c;
              }
            }
            if (!closure_var.empty()) {
              out->kind = ExprKind::kLiftedMapWithClosure;
              out->name = closure_var;
            } else {
              out->kind = ExprKind::kLiftedMap;
            }
            out->lambda = captured;
            break;
          }
          case ExprKind::kFilter:
            out->kind = ExprKind::kLiftedFilter;
            out->lambda = WithCaptures(e.lambda);
            break;
          case ExprKind::kFlatMap:
            out->kind = ExprKind::kLiftedFlatMap;
            out->lambda = WithCaptures(e.lambda);
            break;
          case ExprKind::kDistinct:
            out->kind = ExprKind::kLiftedDistinct;
            break;
          default:
            break;
        }
        return Typed{out, VType::kInnerBag};
      }
      case ExprKind::kReduceByKey: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed in, RewriteInUdf(*e.inputs[0], local));
        if (in.type != VType::kInnerBag) {
          return Status::Unsupported("reduceByKey over a non-lifted bag");
        }
        if (HasBagOps(*e.lambda2)) {
          return Status::Unsupported(
              "bag operations inside aggregation UDFs (Sec. 7 assumption)");
        }
        auto out = Clone(e);
        out->kind = ExprKind::kLiftedReduceByKey;
        out->inputs = {in.expr};
        return Typed{out, VType::kInnerBag};
      }
      case ExprKind::kCount: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed in, RewriteInUdf(*e.inputs[0], local));
        if (in.type != VType::kInnerBag) {
          return Status::Unsupported("count over a non-lifted bag in a UDF");
        }
        auto out = Clone(e);
        out->kind = ExprKind::kLiftedCount;
        out->inputs = {in.expr};
        return Typed{out, VType::kInnerScalar};
      }
      case ExprKind::kUnion: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed a, RewriteInUdf(*e.inputs[0], local));
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed b, RewriteInUdf(*e.inputs[1], local));
        if (a.type != VType::kInnerBag || b.type != VType::kInnerBag) {
          return Status::Unsupported("union over non-lifted bags in a UDF");
        }
        auto out = Clone(e);
        out->inputs = {a.expr, b.expr};
        return Typed{out, VType::kInnerBag};
      }
      case ExprKind::kBinOp: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed a, RewriteInUdf(*e.inputs[0], local));
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed b, RewriteInUdf(*e.inputs[1], local));
        auto out = Clone(e);
        out->inputs = {a.expr, b.expr};
        const bool a_lifted = a.type == VType::kInnerScalar;
        const bool b_lifted = b.type == VType::kInnerScalar;
        if (a_lifted || b_lifted) {
          if ((a_lifted && b.type != VType::kInnerScalar &&
               b.type != VType::kScalar) ||
              (b_lifted && a.type != VType::kInnerScalar &&
               a.type != VType::kScalar)) {
            return Status::Unsupported("binop between lifted scalar and bag");
          }
          out->kind = ExprKind::kBinaryScalarOp;
          return Typed{out, VType::kInnerScalar};
        }
        return Typed{out, VType::kScalar};
      }
      case ExprKind::kTupleMake:
      case ExprKind::kTupleField: {
        auto out = Clone(e);
        out->inputs.clear();
        VType t = VType::kScalar;
        for (const auto& in : e.inputs) {
          MATRYOSHKA_ASSIGN_OR_RETURN(Typed x, RewriteInUdf(*in, local));
          if (x.type == VType::kInnerScalar) t = VType::kInnerScalar;
          out->inputs.push_back(x.expr);
        }
        if (t == VType::kInnerScalar) {
          return Status::Unsupported(
              "tuple construction over lifted scalars (use binaryScalarOp-"
              "compatible operations)");
        }
        return Typed{out, t};
      }
      case ExprKind::kWhile: {
        // Sec. 6: the loop becomes a lifted loop. Its state is an InnerBag
        // or InnerScalar; the body's result must be the 2-tuple
        // (next state, continue?) with a lifted-scalar condition.
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed init,
                                    RewriteInUdf(*e.inputs[0], local));
        if (init.type != VType::kInnerBag &&
            init.type != VType::kInnerScalar) {
          return Status::Unsupported(
              "while loop state inside a lifted UDF must be a lifted bag or "
              "scalar");
        }
        const Lambda& body = *e.lambda;
        if (body.params.size() != 1) {
          return Status::InvalidArgument(
              "while body takes exactly the loop state");
        }
        auto saved = local;
        local[body.params[0]] = init.type;
        auto lifted = std::make_shared<Lambda>();
        lifted->params = body.params;
        lifted->captures = FreeVars(body);
        for (const Stmt& s : body.body) {
          MATRYOSHKA_ASSIGN_OR_RETURN(Typed t, RewriteInUdf(*s.expr, local));
          local[s.name] = t.type;
          lifted->body.push_back(Stmt{s.name, t.expr});
        }
        if (body.result->kind != ExprKind::kTupleMake ||
            body.result->inputs.size() != 2) {
          return Status::InvalidArgument(
              "while body must return (next state, continue?)");
        }
        MATRYOSHKA_ASSIGN_OR_RETURN(
            Typed next, RewriteInUdf(*body.result->inputs[0], local));
        MATRYOSHKA_ASSIGN_OR_RETURN(
            Typed cond, RewriteInUdf(*body.result->inputs[1], local));
        if (next.type != init.type) {
          return Status::InvalidArgument(
              "while body's next state has a different shape than the "
              "initial state");
        }
        if (cond.type != VType::kInnerScalar) {
          return Status::Unsupported(
              "while condition must be a lifted scalar (per-group exit, "
              "Sec. 6.2)");
        }
        auto res = std::make_shared<Expr>();
        res->kind = ExprKind::kTupleMake;
        res->inputs = {next.expr, cond.expr};
        lifted->result = res;
        local = saved;
        auto out = Clone(e);
        out->kind = ExprKind::kLiftedWhile;
        out->inputs = {init.expr};
        out->lambda = lifted;
        return Typed{out, init.type};
      }
      case ExprKind::kIf: {
        // Sec. 6.2: a lifted if executes BOTH branches, each over the tags
        // whose condition routes there.
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed cond,
                                    RewriteInUdf(*e.inputs[0], local));
        MATRYOSHKA_ASSIGN_OR_RETURN(Typed state,
                                    RewriteInUdf(*e.inputs[1], local));
        if (cond.type != VType::kInnerScalar) {
          return Status::Unsupported(
              "if condition inside a lifted UDF must be a lifted scalar");
        }
        if (state.type != VType::kInnerBag &&
            state.type != VType::kInnerScalar) {
          return Status::Unsupported(
              "if state inside a lifted UDF must be a lifted bag or scalar");
        }
        auto rewrite_branch =
            [&](const Lambda& br) -> Result<LambdaPtr> {
          if (br.params.size() != 1) {
            return Status::InvalidArgument(
                "if branches take exactly the routed state");
          }
          auto saved = local;
          local[br.params[0]] = state.type;
          auto lifted = std::make_shared<Lambda>();
          lifted->params = br.params;
          lifted->captures = FreeVars(br);
          for (const Stmt& s : br.body) {
            MATRYOSHKA_ASSIGN_OR_RETURN(Typed t, RewriteInUdf(*s.expr, local));
            local[s.name] = t.type;
            lifted->body.push_back(Stmt{s.name, t.expr});
          }
          MATRYOSHKA_ASSIGN_OR_RETURN(Typed res,
                                      RewriteInUdf(*br.result, local));
          if (res.type != state.type) {
            return Status::InvalidArgument(
                "if branches must return the state's shape");
          }
          lifted->result = res.expr;
          local = saved;
          return LambdaPtr(lifted);
        };
        MATRYOSHKA_ASSIGN_OR_RETURN(LambdaPtr then_l, rewrite_branch(*e.lambda));
        MATRYOSHKA_ASSIGN_OR_RETURN(LambdaPtr else_l,
                                    rewrite_branch(*e.lambda2));
        auto out = Clone(e);
        out->kind = ExprKind::kLiftedIf;
        out->inputs = {cond.expr, state.expr};
        out->lambda = then_l;
        out->lambda2 = else_l;
        return Typed{out, state.type};
      }
      case ExprKind::kGroupByKey:
        return Status::Unsupported(
            "nested grouping inside a lifted UDF is not supported by the "
            "plan-level pipeline (use the typed core API, Sec. 7)");
      default:
        return Status::InvalidArgument(
            "unexpected node inside a lifted UDF: " + ToString(e));
    }
  }

  std::unordered_map<std::string, VType> env_;
};

}  // namespace

const char* VTypeName(VType t) {
  switch (t) {
    case VType::kScalar:
      return "Scalar";
    case VType::kBag:
      return "Bag";
    case VType::kNestedBag:
      return "NestedBag";
    case VType::kInnerScalar:
      return "InnerScalar";
    case VType::kInnerBag:
      return "InnerBag";
  }
  return "?";
}

Result<Program> ParsingPhase::Rewrite(const Program& program) {
  Rewriter rewriter;
  return rewriter.Run(program, &types_);
}

}  // namespace matryoshka::lang
