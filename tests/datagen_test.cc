// Tests for the synthetic data generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "datagen/datagen.h"

namespace matryoshka::datagen {
namespace {

TEST(VisitsTest, CountAndDayRange) {
  auto v = GenerateVisits(1000, 8, 0.0, 0.5, 1);
  EXPECT_EQ(v.size(), 1000u);
  for (auto& [day, ip] : v) {
    EXPECT_GE(day, 0);
    EXPECT_LT(day, 8);
  }
}

TEST(VisitsTest, Deterministic) {
  auto a = GenerateVisits(500, 4, 0.0, 0.5, 9);
  auto b = GenerateVisits(500, 4, 0.0, 0.5, 9);
  EXPECT_EQ(a, b);
}

TEST(VisitsTest, BounceFractionRoughlyHonored) {
  auto v = GenerateVisits(20000, 4, 0.0, 0.7, 3);
  std::map<int64_t, int64_t> per_ip;
  for (auto& [day, ip] : v) per_ip[ip]++;
  int64_t bounces = 0;
  for (auto& [ip, c] : per_ip) bounces += (c == 1) ? 1 : 0;
  double rate = static_cast<double>(bounces) / per_ip.size();
  EXPECT_GT(rate, 0.6);
  EXPECT_LT(rate, 0.85);
}

TEST(VisitsTest, ZipfSkewsDays) {
  auto v = GenerateVisits(20000, 16, 1.2, 0.5, 5);
  std::map<int64_t, int64_t> per_day;
  for (auto& [day, ip] : v) per_day[day]++;
  // The most popular day dominates the median day by a wide margin.
  std::vector<int64_t> counts;
  for (auto& [d, c] : per_day) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  EXPECT_GT(counts[0], 4 * counts[counts.size() / 2]);
}

TEST(VisitsTest, VisitorsAreDayLocal) {
  auto v = GenerateVisits(5000, 8, 0.0, 0.5, 7);
  std::map<int64_t, std::set<int64_t>> days_of_ip;
  for (auto& [day, ip] : v) days_of_ip[ip].insert(day);
  for (auto& [ip, days] : days_of_ip) EXPECT_EQ(days.size(), 1u);
}

TEST(GroupedEdgesTest, VertexSpacesDisjoint) {
  auto edges = GenerateGroupedEdges(2000, 8, 32, 0.0, 11);
  EXPECT_EQ(edges.size(), 2000u);
  for (auto& [g, e] : edges) {
    EXPECT_GE(e.src, g * 32);
    EXPECT_LT(e.src, (g + 1) * 32);
    EXPECT_GE(e.dst, g * 32);
    EXPECT_LT(e.dst, (g + 1) * 32);
  }
}

TEST(GroupedEdgesTest, ZipfSkewsGroups) {
  auto edges = GenerateGroupedEdges(20000, 64, 16, 1.2, 13);
  std::map<int64_t, int64_t> per_group;
  for (auto& [g, e] : edges) per_group[g]++;
  EXPECT_GT(per_group[0], 8 * per_group.rbegin()->second);
}

TEST(ComponentsTest, CycleBackboneConnects) {
  auto edges = GenerateComponents(3, 10, 0, 17);
  // 3 components x 10 cycle edges x 2 directions.
  EXPECT_EQ(edges.size(), 60u);
  // Vertices of different components never share an edge.
  for (const auto& e : edges) {
    EXPECT_EQ(e.src / 10, e.dst / 10);
  }
}

TEST(ComponentsTest, ExtraEdgesStayInComponent) {
  auto edges = GenerateComponents(4, 8, 5, 19);
  for (const auto& e : edges) EXPECT_EQ(e.src / 8, e.dst / 8);
}

TEST(PointsTest, GroupedPointsCoverAllGroups) {
  auto pts = GenerateGroupedPoints(4000, 8, 3, 23);
  std::set<int64_t> groups;
  for (auto& [g, p] : pts) groups.insert(g);
  EXPECT_EQ(groups.size(), 8u);
}

TEST(PointsTest, InitialMeansDeterministicPerSeed) {
  auto a = GenerateInitialMeans(4, 100);
  auto b = GenerateInitialMeans(4, 100);
  auto c = GenerateInitialMeans(4, 101);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 4u);
}

}  // namespace
}  // namespace matryoshka::datagen
