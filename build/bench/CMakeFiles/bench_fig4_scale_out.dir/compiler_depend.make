# Empty compiler generated dependencies file for bench_fig4_scale_out.
# This may be replaced when dependencies are built.
