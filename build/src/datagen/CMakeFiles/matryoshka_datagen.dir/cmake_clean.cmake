file(REMOVE_RECURSE
  "CMakeFiles/matryoshka_datagen.dir/datagen.cc.o"
  "CMakeFiles/matryoshka_datagen.dir/datagen.cc.o.d"
  "libmatryoshka_datagen.a"
  "libmatryoshka_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matryoshka_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
