// Tests for the simulated-cluster cost model: job/stage/task accounting,
// makespan scheduling (including skew effects), shuffle and broadcast
// charges, memory checks, and spill behaviour.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::engine {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 2;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.job_launch_overhead_s = 1.0;
  cfg.task_overhead_s = 0.01;
  cfg.per_element_cost_s = 1e-6;
  cfg.memory_object_overhead = 1.0;  // tests reason in raw bytes
  return cfg;
}

TEST(CostModelTest, BeginJobChargesLaunchOverhead) {
  Cluster c(SmallConfig());
  c.BeginJob("a");
  c.BeginJob("b");
  EXPECT_EQ(c.metrics().jobs, 2);
  EXPECT_DOUBLE_EQ(c.metrics().simulated_time_s, 2.0);
}

TEST(CostModelTest, StageMakespanSingleWave) {
  Cluster c(SmallConfig());
  // 4 slots, 4 tasks of 1s each -> makespan = task_overhead + 1s.
  c.AccrueStage({1.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(c.metrics().simulated_time_s, 1.01, 1e-9);
  EXPECT_EQ(c.metrics().stages, 1);
  EXPECT_EQ(c.metrics().tasks, 4);
}

TEST(CostModelTest, StageMakespanTwoWaves) {
  Cluster c(SmallConfig());
  // 8 tasks of 1s on 4 slots -> 2 waves.
  c.AccrueStage(std::vector<double>(8, 1.0));
  EXPECT_NEAR(c.metrics().simulated_time_s, 2.02, 1e-9);
}

TEST(CostModelTest, SkewedTaskDominatesMakespan) {
  Cluster c(SmallConfig());
  // One 10s task among tiny ones: makespan ~ 10s even with free slots.
  std::vector<double> costs(4, 0.001);
  costs.push_back(10.0);
  c.AccrueStage(costs);
  EXPECT_GE(c.metrics().simulated_time_s, 10.0);
  EXPECT_LT(c.metrics().simulated_time_s, 10.1);
}

TEST(CostModelTest, FewerTasksThanSlotsGetNoSpeedupBeyondTaskCount) {
  // This is the outer-parallel starvation effect: 1 task on a 4-slot
  // cluster takes the full task time.
  Cluster c(SmallConfig());
  c.AccrueStage({8.0});
  EXPECT_NEAR(c.metrics().simulated_time_s, 8.01, 1e-9);
}

TEST(CostModelTest, UniformStageSplitsWork) {
  Cluster c(SmallConfig());
  c.AccrueUniformStage(4, 4'000'000, 1.0);  // 4s of work over 4 slots
  EXPECT_NEAR(c.metrics().simulated_time_s, 1.01, 1e-9);
  EXPECT_EQ(c.metrics().elements_processed, 4'000'000);
}

TEST(CostModelTest, ComputeCostIsLinearInElementsAndWeight) {
  Cluster c(SmallConfig());
  EXPECT_DOUBLE_EQ(c.ComputeCost(100, 2.0), 100 * 1e-6 * 2.0);
  EXPECT_DOUBLE_EQ(c.ComputeCost(0, 5.0), 0.0);
}

TEST(CostModelTest, BagScaleAmplifiesComputeCharges) {
  // The same synthetic data at scale 1000 must cost ~1000x the stage time.
  Cluster c1(SmallConfig()), c2(SmallConfig());
  std::vector<int64_t> data(1000, 1);
  auto small = Parallelize(&c1, data, 4, /*scale=*/1.0);
  auto big = Parallelize(&c2, data, 4, /*scale=*/1000.0);
  Map(small, [](int64_t x) { return x + 1; });
  Map(big, [](int64_t x) { return x + 1; });
  // Subtract the constant task overhead before comparing.
  const double overhead = 4 * 0.01 / 4;  // 4 tasks on 4 slots, one wave
  const double t1 = c1.metrics().simulated_time_s - overhead;
  const double t2 = c2.metrics().simulated_time_s - overhead;
  EXPECT_NEAR(t2 / t1, 1000.0, 1.0);
}

TEST(CostModelTest, ScalePropagatesThroughElementwiseOps) {
  Cluster c(SmallConfig());
  auto bag = Parallelize(&c, std::vector<int64_t>{1, 2, 3}, 2, 500.0);
  auto mapped = Map(bag, [](int64_t x) { return x; });
  EXPECT_DOUBLE_EQ(mapped.scale(), 500.0);
  auto filtered = Filter(mapped, [](int64_t) { return true; });
  EXPECT_DOUBLE_EQ(filtered.scale(), 500.0);
}

TEST(CostModelTest, ReduceByKeyResultScaleOverride) {
  Cluster c(SmallConfig());
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 100; ++i) data.emplace_back(i % 4, 1);
  auto bag = Parallelize(&c, data, 4, /*scale=*/1000.0);
  auto keep = ReduceByKey(bag, [](int64_t a, int64_t b) { return a + b; }, 4);
  EXPECT_DOUBLE_EQ(keep.scale(), 1000.0);
  auto fixed = ReduceByKey(
      bag, [](int64_t a, int64_t b) { return a + b; }, 4, 1.0,
      /*result_scale=*/1.0);
  EXPECT_DOUBLE_EQ(fixed.scale(), 1.0);
}

TEST(CostModelTest, ShuffleChargesCrossingBytesOnly) {
  ClusterConfig cfg = SmallConfig();
  cfg.network_bytes_per_s = 100.0;
  Cluster c(cfg);
  c.AccrueShuffle(400.0);
  // Half the data crosses machines (2 machines), each machine moves its
  // share in parallel: 400 * 0.5 / 2 machines / 100 B/s = 1s.
  EXPECT_NEAR(c.metrics().simulated_time_s, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.metrics().shuffle_bytes, 400.0);
}

TEST(CostModelTest, SingleMachineShuffleIsFree) {
  ClusterConfig cfg = SmallConfig();
  cfg.num_machines = 1;
  cfg.network_bytes_per_s = 1.0;
  Cluster c(cfg);
  c.AccrueShuffle(1e9);
  EXPECT_DOUBLE_EQ(c.metrics().simulated_time_s, 0.0);
}

TEST(CostModelTest, BroadcastWithinMemorySucceeds) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 1000.0;
  cfg.network_bytes_per_s = 100.0;
  Cluster c(cfg);
  c.AccrueBroadcast(500.0);
  EXPECT_TRUE(c.ok());
  EXPECT_NEAR(c.metrics().simulated_time_s, 10.0, 1e-9);  // 2 * 500/100
}

TEST(CostModelTest, BroadcastBeyondMemoryFailsOom) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 1000.0;
  Cluster c(cfg);
  c.AccrueBroadcast(2000.0);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsOutOfMemory());
}

TEST(CostModelTest, BagScaleAmplifiesMemoryPressure) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 1000.0;
  Cluster c(cfg);
  // 10 x 8-byte elements at scale 100 = 8000 real bytes > 1000: the
  // broadcast side of a join blows the per-machine budget.
  std::vector<std::pair<int64_t, int64_t>> small{{1, 1}};
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 10; ++i) data.emplace_back(i, i);
  auto left = Parallelize(&c, small, 1, 1.0);
  auto right = Parallelize(&c, data, 2, 100.0);
  BroadcastJoin(left, right);
  EXPECT_TRUE(c.status().IsOutOfMemory());
}

TEST(CostModelTest, TaskMemoryCheck) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 1000.0;  // budget per task = 500
  Cluster c(cfg);
  c.CheckTaskMemory(400.0, "group");
  EXPECT_TRUE(c.ok());
  c.CheckTaskMemory(600.0, "group");
  EXPECT_TRUE(c.status().IsOutOfMemory());
  EXPECT_DOUBLE_EQ(c.metrics().peak_task_bytes, 600.0);
}

TEST(CostModelTest, SpillFactorBelowBudgetIsOne) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 1000.0;
  cfg.execution_memory_fraction = 0.5;  // budget 500
  Cluster c(cfg);
  EXPECT_DOUBLE_EQ(c.SpillFactor(400.0), 1.0);
  EXPECT_EQ(c.metrics().spill_events, 0);
}

TEST(CostModelTest, SpillFactorGrowsWithExcess) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 1000.0;
  cfg.execution_memory_fraction = 0.5;
  cfg.spill_penalty = 4.0;
  Cluster c(cfg);
  double f1 = c.SpillFactor(1000.0);  // half the data spills
  EXPECT_NEAR(f1, 1.0 + 0.5 * 3.0, 1e-9);
  EXPECT_EQ(c.metrics().spill_events, 1);
  double f2 = c.SpillFactor(1e9);  // nearly everything spills
  EXPECT_LT(f2, 4.0 + 1e-9);
  EXPECT_GT(f2, 3.9);
}

TEST(CostModelTest, ResetClearsStateAndMetrics) {
  Cluster c(SmallConfig());
  c.BeginJob("x");
  c.Fail(Status::OutOfMemory("boom"));
  c.Reset();
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.metrics().jobs, 0);
  EXPECT_DOUBLE_EQ(c.metrics().simulated_time_s, 0.0);
}

TEST(CostModelTest, GroupByKeyOomsOnGiantGroup) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 4096.0;  // task budget = 2048 bytes
  Cluster c(cfg);
  // One key owning 1000 elements of 16 bytes = 16000 bytes > 2048.
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 1000; ++i) data.emplace_back(0, i);
  auto bag = Parallelize(&c, data, 4);
  GroupByKey(bag, 4);
  EXPECT_TRUE(c.status().IsOutOfMemory());
}

TEST(CostModelTest, GroupByKeySurvivesSmallGroups) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 1 << 20;
  Cluster c(cfg);
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 1000; ++i) data.emplace_back(i % 100, i);
  auto g = GroupByKey(Parallelize(&c, data, 4), 4);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(g.Size(), 100);
}

TEST(CostModelTest, GroupExpansionTriggersOom) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 4096.0;  // budget 2048
  Cluster c(cfg);
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 100; ++i) data.emplace_back(0, i);  // ~1600 bytes
  auto bag = Parallelize(&c, data, 4);
  GroupByKey(bag, 4, /*group_expansion=*/1.0);
  EXPECT_TRUE(c.ok());
  GroupByKey(bag, 4, /*group_expansion=*/4.0);
  EXPECT_TRUE(c.status().IsOutOfMemory());
}

TEST(CostModelTest, ActionsCountJobsTransformationsDoNot) {
  Cluster c(SmallConfig());
  auto bag = Parallelize(&c, std::vector<int64_t>{1, 2, 3}, 2);
  auto m = Map(bag, [](int64_t x) { return x + 1; });
  auto f = Filter(m, [](int64_t x) { return x > 1; });
  EXPECT_EQ(c.metrics().jobs, 0);
  Count(f);
  EXPECT_EQ(c.metrics().jobs, 1);
  Collect(f);
  EXPECT_EQ(c.metrics().jobs, 2);
}

TEST(CostModelTest, BroadcastJoinChargesBroadcastNotShuffle) {
  Cluster c(SmallConfig());
  std::vector<std::pair<int64_t, int64_t>> l, r;
  for (int64_t i = 0; i < 100; ++i) l.emplace_back(i % 5, i);
  for (int64_t i = 0; i < 5; ++i) r.emplace_back(i, i);
  auto lb = Parallelize(&c, l, 4);
  auto rb = Parallelize(&c, r, 2);
  BroadcastJoin(lb, rb);
  EXPECT_GT(c.metrics().broadcast_bytes, 0.0);
  EXPECT_DOUBLE_EQ(c.metrics().shuffle_bytes, 0.0);
  Cluster c2(SmallConfig());
  auto lb2 = Parallelize(&c2, l, 4);
  auto rb2 = Parallelize(&c2, r, 2);
  RepartitionJoin(lb2, rb2, 4);
  EXPECT_GT(c2.metrics().shuffle_bytes, 0.0);
  EXPECT_DOUBLE_EQ(c2.metrics().broadcast_bytes, 0.0);
}

TEST(CostModelTest, MoreMachinesShortenStages) {
  ClusterConfig small = SmallConfig();
  ClusterConfig big = SmallConfig();
  big.num_machines = 8;
  Cluster cs(small), cb(big);
  std::vector<double> tasks(32, 1.0);
  cs.AccrueStage(tasks);
  cb.AccrueStage(tasks);
  EXPECT_GT(cs.metrics().simulated_time_s,
            3.0 * cb.metrics().simulated_time_s);
}

}  // namespace
}  // namespace matryoshka::engine
