file(REMOVE_RECURSE
  "CMakeFiles/core_primitives_test.dir/core_primitives_test.cc.o"
  "CMakeFiles/core_primitives_test.dir/core_primitives_test.cc.o.d"
  "core_primitives_test"
  "core_primitives_test.pdb"
  "core_primitives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
