// Quickstart: the per-day bounce rate of Sec. 2.1, written three ways —
//  1. against the Matryoshka nesting primitives (the program the parsing
//     phase would produce from Listing 1),
//  2. as the same surface program in the embedded IR, run through the real
//     two-phase pipeline (ParsingPhase -> LoweringPhase),
//  3. via the packaged workload runner, comparing against the workarounds.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/matryoshka.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "engine/ops.h"
#include "lang/expr.h"
#include "lang/lowering_phase.h"
#include "lang/parsing_phase.h"
#include "workloads/bounce_rate.h"

namespace m = matryoshka;

int main() {
  // A small simulated cluster: 4 machines x 4 cores.
  m::engine::ClusterConfig config;
  config.num_machines = 4;
  config.cores_per_machine = 4;
  config.default_parallelism = 48;
  m::engine::Cluster cluster(config);

  // Synthetic page-visit log: (day, visitor) pairs over 8 days.
  auto visits = m::datagen::GenerateVisits(/*num_visits=*/20000,
                                           /*num_days=*/8, /*zipf_s=*/0.0,
                                           /*bounce_fraction=*/0.5,
                                           /*seed=*/42);
  auto visit_bag = m::engine::Parallelize(&cluster, visits);

  // ------------------------------------------------------------------
  // 1. The nesting primitives directly (what Listing 2 of the paper is).
  // ------------------------------------------------------------------
  auto nested = m::core::GroupByKeyIntoNestedBag(visit_bag);
  auto rates = m::core::MapWithLiftedUdf(
      nested,
      [](const m::core::LiftingContext&,
         const m::core::InnerScalar<int64_t>& /*days*/,
         const m::core::InnerBag<int64_t>& group) {
        auto counts_per_ip = m::core::LiftedReduceByKey(
            m::core::LiftedMap(group,
                               [](int64_t ip) {
                                 return std::pair<int64_t, int64_t>(ip, 1);
                               }),
            [](int64_t a, int64_t b) { return a + b; });
        auto bounces = m::core::LiftedCount(m::core::LiftedFilter(
            counts_per_ip, [](const std::pair<int64_t, int64_t>& p) {
              return p.second == 1;
            }));
        auto total = m::core::LiftedCount(m::core::LiftedDistinct(group));
        return m::core::BinaryScalarOp(
            bounces, total, [](int64_t b, int64_t t) {
              return t == 0 ? 0.0
                            : static_cast<double>(b) / static_cast<double>(t);
            });
      });
  auto per_day = m::engine::Collect(m::core::ZipWithKeys(nested.keys(), rates));

  std::printf("Bounce rate per day (core API):\n");
  for (const auto& [day, rate] : per_day) {
    std::printf("  day %2ld: %.4f\n", static_cast<long>(day), rate);
  }
  std::printf("  simulated time: %.2fs, jobs: %ld\n\n",
              cluster.metrics().simulated_time_s,
              static_cast<long>(cluster.metrics().jobs));

  // ------------------------------------------------------------------
  // 2. The SAME program as a surface plan through the two phases.
  // ------------------------------------------------------------------
  using m::lang::BinOp;
  using m::lang::BinOpKind;
  using m::lang::Count;
  using m::lang::Distinct;
  using m::lang::Field;
  using m::lang::Filter;
  using m::lang::GroupByKey;
  using m::lang::Lam;
  using m::lang::Lam2;
  using m::lang::LamProgram;
  using m::lang::Lit;
  using m::lang::MakeTuple;
  using m::lang::Map;
  using m::lang::ReduceByKey;
  using m::lang::Source;
  using m::lang::Stmt;
  using m::lang::Value;
  using m::lang::Var;

  m::lang::Program program;
  program.stmts.push_back(Stmt{"perDay", GroupByKey(Source("visits"))});
  std::vector<Stmt> udf;
  udf.push_back(Stmt{
      "countsPerIP",
      ReduceByKey(
          Map(Var("group"), Lam("ip", MakeTuple({Var("ip"), Lit(Value(1))}))),
          Lam2("a", "b", BinOp(BinOpKind::kAdd, Var("a"), Var("b"))))});
  udf.push_back(Stmt{
      "numBounces",
      Count(Filter(Var("countsPerIP"),
                   Lam("p", BinOp(BinOpKind::kEq, Field(Var("p"), 1),
                                  Lit(Value(1))))))});
  udf.push_back(Stmt{"numTotal", Count(Distinct(Var("group")))});
  program.stmts.push_back(Stmt{
      "rates",
      Map(Var("perDay"),
          LamProgram({"day", "group"}, std::move(udf),
                     BinOp(BinOpKind::kDiv, Var("numBounces"),
                           Var("numTotal"))))});
  program.result = "rates";

  m::lang::ParsingPhase parser;
  auto parsed = parser.Rewrite(program);
  if (!parsed.ok()) {
    std::printf("parsing phase failed: %s\n",
                parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("Parsing phase output (the explicit Listing-2 plan):\n%s\n",
              m::lang::ToString(*parsed).c_str());

  std::vector<Value> rows;
  rows.reserve(visits.size());
  for (const auto& [day, ip] : visits) {
    rows.push_back(Value::MakeTuple({Value(day), Value(ip)}));
  }
  m::engine::Cluster cluster2(config);
  m::lang::LoweringPhase lowering(&cluster2);
  lowering.BindSource("visits", m::engine::Parallelize(&cluster2, rows));
  auto lowered = lowering.Execute(*parsed);
  if (!lowered.ok()) {
    std::printf("lowering phase failed: %s\n",
                lowered.status().ToString().c_str());
    return 1;
  }
  std::printf("Bounce rate per day (two-phase pipeline):\n");
  for (const Value& row : *lowered) {
    std::printf("  day %2ld: %.4f\n",
                static_cast<long>(row.Field(0).AsInt()),
                row.Field(1).AsDouble());
  }

  // ------------------------------------------------------------------
  // 3. Against the workarounds, via the packaged runners.
  // ------------------------------------------------------------------
  std::printf("\nSimulated run times (same task, same cluster):\n");
  for (auto variant : {m::workloads::Variant::kMatryoshka,
                       m::workloads::Variant::kOuterParallel,
                       m::workloads::Variant::kInnerParallel}) {
    m::engine::Cluster c(config);
    auto bag = m::engine::Parallelize(&c, visits);
    auto result = m::workloads::RunBounceRate(&c, bag, variant);
    std::printf("  %-15s %8.2fs  (%ld jobs)%s\n",
                m::workloads::VariantName(variant), result.time_s(),
                static_cast<long>(result.metrics.jobs),
                result.ok() ? "" : "  FAILED");
  }
  return 0;
}
