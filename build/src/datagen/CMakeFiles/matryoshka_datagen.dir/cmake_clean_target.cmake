file(REMOVE_RECURSE
  "libmatryoshka_datagen.a"
)
