#include "lang/value.h"

#include "common/hash.h"
#include "common/logging.h"

namespace matryoshka::lang {

int64_t Value::AsInt() const {
  MATRYOSHKA_CHECK(is_int()) << "Value is not an int: " << ToString();
  return std::get<int64_t>(v_);
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  MATRYOSHKA_CHECK(is_double()) << "Value is not numeric: " << ToString();
  return std::get<double>(v_);
}

bool Value::AsBool() const {
  MATRYOSHKA_CHECK(is_bool()) << "Value is not a bool: " << ToString();
  return std::get<bool>(v_);
}

const std::string& Value::AsString() const {
  MATRYOSHKA_CHECK(is_string()) << "Value is not a string: " << ToString();
  return std::get<std::string>(v_);
}

const Value::Tuple& Value::AsTuple() const {
  MATRYOSHKA_CHECK(is_tuple()) << "Value is not a tuple: " << ToString();
  return std::get<Tuple>(v_);
}

const Value& Value::Field(std::size_t i) const {
  const Tuple& t = AsTuple();
  MATRYOSHKA_CHECK(i < t.size())
      << "tuple field " << i << " out of range (size " << t.size() << ")";
  return t[i];
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(std::get<int64_t>(v_));
  if (is_double()) return std::to_string(std::get<double>(v_));
  if (is_bool()) return std::get<bool>(v_) ? "true" : "false";
  if (is_string()) return "\"" + std::get<std::string>(v_) + "\"";
  std::string s = "(";
  const Tuple& t = std::get<Tuple>(v_);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) s += ", ";
    s += t[i].ToString();
  }
  return s + ")";
}

bool operator<(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) return a.v_.index() < b.v_.index();
  return a.v_ < b.v_;
}

std::size_t Value::HashValue() const {
  std::size_t seed = v_.index();
  if (is_int()) return HashCombine(seed, std::hash<int64_t>{}(std::get<int64_t>(v_)));
  if (is_double()) return HashCombine(seed, std::hash<double>{}(std::get<double>(v_)));
  if (is_bool()) return HashCombine(seed, std::get<bool>(v_) ? 1 : 2);
  if (is_string()) {
    return HashCombine(seed, std::hash<std::string>{}(std::get<std::string>(v_)));
  }
  for (const Value& x : std::get<Tuple>(v_)) {
    seed = HashCombine(seed, x.HashValue());
  }
  return seed;
}

std::size_t Value::EstimatedBytes() const {
  if (is_string()) return 16 + std::get<std::string>(v_).size();
  if (is_tuple()) {
    std::size_t total = 8;
    for (const Value& x : std::get<Tuple>(v_)) total += x.EstimatedBytes();
    return total;
  }
  return 8;
}

}  // namespace matryoshka::lang
