#include "workloads/pagerank.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "baselines/baselines.h"
#include "core/matryoshka.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::workloads {

namespace {

using datagen::Edge;
using engine::Bag;
using engine::Cluster;

using Vertex = int64_t;
using Rank = double;

}  // namespace

double SequentialPageRank(const std::vector<Edge>& edges,
                          const PageRankParams& params) {
  std::unordered_map<Vertex, int64_t> degree;
  std::unordered_set<Vertex> vertex_set;
  for (const Edge& e : edges) {
    degree[e.src]++;
    vertex_set.insert(e.src);
    vertex_set.insert(e.dst);
  }
  if (vertex_set.empty()) return 0.0;
  const double n = static_cast<double>(vertex_set.size());
  std::unordered_map<Vertex, Rank> ranks;
  ranks.reserve(vertex_set.size());
  for (Vertex v : vertex_set) ranks[v] = 1.0 / n;
  for (int64_t it = 0; it < params.iterations; ++it) {
    std::unordered_map<Vertex, Rank> contrib;
    contrib.reserve(vertex_set.size());
    for (const Edge& e : edges) {
      contrib[e.dst] +=
          ranks[e.src] / static_cast<double>(degree[e.src]);
    }
    std::unordered_map<Vertex, Rank> next;
    next.reserve(vertex_set.size());
    for (Vertex v : vertex_set) {
      auto it2 = contrib.find(v);
      const double c = it2 == contrib.end() ? 0.0 : it2->second;
      next[v] = (1.0 - params.damping) / n + params.damping * c;
    }
    ranks = std::move(next);
  }
  double sum = 0.0;
  for (const auto& [v, r] : ranks) sum += r;
  return sum;
}

PageRankResult PageRankMatryoshka(Cluster* cluster,
                                  const Bag<std::pair<int64_t, Edge>>& edges,
                                  const PageRankParams& params,
                                  core::OptimizerOptions options) {
  using core::InnerBag;
  using core::InnerScalar;
  using core::LiftConstant;
  using core::LiftedCount;
  using core::LiftedDistinct;
  using core::LiftedFlatMap;
  using core::LiftedJoin;
  using core::LiftedLeftOuterJoin;
  using core::LiftedMap;
  using core::LiftedReduce;
  using core::LiftedReduceByKey;
  using core::MapWithClosure;
  using core::UnaryScalarOp;

  auto nested = core::GroupByKeyIntoNestedBag(edges, options);
  const auto& group_edges = nested.values();

  auto result = core::MapWithLiftedUdf(nested, [&](const core::LiftingContext&,
                                                   const InnerScalar<int64_t>&,
                                                   const InnerBag<Edge>& es) {
    // vertices = edges.flatMap(e => {e.src, e.dst}).distinct()
    auto vertices = LiftedDistinct(LiftedFlatMap(es, [](const Edge& e) {
      return std::vector<Vertex>{e.src, e.dst};
    }));
    // val initWeight = 1.0 / numVertices  (the Sec. 5.1 closure example)
    auto num_v = LiftedCount(vertices);
    auto init_weight = UnaryScalarOp(num_v, [](int64_t n) {
      return n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
    });
    // out-degrees, and edges pre-joined with their source degree.
    auto degrees = LiftedReduceByKey(
        LiftedMap(es,
                  [](const Edge& e) {
                    return std::pair<Vertex, int64_t>(e.src, 1);
                  }),
        [](int64_t a, int64_t b) { return a + b; });
    auto edges_by_src = LiftedMap(es, [](const Edge& e) {
      return std::pair<Vertex, Vertex>(e.src, e.dst);
    });
    auto edges_deg = LiftedJoin(edges_by_src, degrees);
    // val initPR = vertices.map(v => (v, initWeight))  — mapWithClosure.
    auto verts_kv = LiftedMap(vertices, [](Vertex v) {
      return std::pair<Vertex, char>(v, 0);
    });
    // The edge list and the vertex set are joined against the evolving
    // ranks every iteration: rekey + partition them once (Sec. 8.2's fused
    // map-side shuffles) so the loop only moves rank-sized data.
    auto edges_deg_static = core::MakeStaticJoinSide(edges_deg);
    auto verts_static = core::MakeStaticJoinSide(verts_kv);
    auto ranks0 = MapWithClosure(
        vertices, init_weight,
        [](Vertex v, double w) { return std::pair<Vertex, Rank>(v, w); });

    const double damping = params.damping;
    const int64_t total_iters = params.iterations;
    auto final_ranks = core::LiftedWhile(
        ranks0,
        [&](const core::LiftingContext& loop_ctx,
            const InnerBag<std::pair<Vertex, Rank>>& ranks, int64_t iter) {
          // contributions: (src,(dst,deg)) join (src,rank) =>
          //   (dst, rank/deg), summed per destination.
          auto joined = core::LiftedJoinStatic(edges_deg_static, ranks);
          auto msgs = LiftedMap(
              joined,
              [](const std::pair<Vertex,
                                 std::pair<std::pair<Vertex, int64_t>, Rank>>&
                     p) {
                const auto& [dst, deg] = p.second.first;
                return std::pair<Vertex, Rank>(
                    dst, p.second.second / static_cast<double>(deg));
              });
          auto sums = LiftedReduceByKey(
              msgs, [](Rank a, Rank b) { return a + b; });
          // All vertices survive the iteration (dangling ones get no
          // contribution) — left outer join with the static vertex set.
          auto with_all = core::LiftedLeftOuterJoinStatic(verts_static, sums);
          auto stripped = LiftedMap(
              with_all,
              [](const std::pair<Vertex,
                                 std::pair<char, std::optional<Rank>>>& p) {
                return std::pair<Vertex, Rank>(
                    p.first, p.second.second.value_or(0.0));
              });
          auto next = MapWithClosure(
              stripped, init_weight,
              [damping](const std::pair<Vertex, Rank>& p, double w) {
                return std::pair<Vertex, Rank>(
                    p.first, (1.0 - damping) * w + damping * p.second);
              });
          auto cond = LiftConstant(loop_ctx, iter + 1 < total_iters);
          return std::make_pair(next, cond);
        },
        params.iterations + 1);

    // Per-group checksum: sum of final ranks.
    return core::LiftedFold(
        final_ranks, 0.0,
        [](const std::pair<Vertex, Rank>& p) { return p.second; },
        [](Rank a, Rank b) { return a + b; });
  });

  (void)group_edges;
  auto collected = engine::Collect(core::ZipWithKeys(nested.keys(), result));
  return FinishRun<int64_t, double>(cluster, std::move(collected));
}

PageRankResult PageRankOuterParallel(Cluster* cluster,
                                     const Bag<std::pair<int64_t, Edge>>& edges,
                                     const PageRankParams& params) {
  // Adjacency + degree + two rank maps over the group.
  constexpr double kExpansion = 4.0;
  // A sequential hash-map PageRank pays two random hash lookups plus
  // boxing per edge per iteration — roughly an order of magnitude over a
  // tight sequential scan.
  constexpr double kSeqWeight = 8.0;
  auto grouped = engine::GroupByKey(edges, -1, kExpansion);
  auto sums = baselines::ProcessGroupsSequentially(
      grouped,
      [&params](const int64_t&, const std::vector<Edge>& es) {
        return SequentialPageRank(es, params);
      },
      [&params](const int64_t&, const std::vector<Edge>& es) {
        return static_cast<int64_t>(es.size()) * params.iterations;
      },
      kExpansion, kSeqWeight);
  auto collected = engine::Collect(sums);
  return FinishRun<int64_t, double>(cluster, std::move(collected));
}

PageRankResult PageRankInnerParallel(Cluster* cluster,
                                     const Bag<std::pair<int64_t, Edge>>& edges,
                                     const PageRankParams& params) {
  std::vector<std::pair<int64_t, double>> sums;
  baselines::ForEachGroupInnerParallel(
      edges, [&](const int64_t& group, const Bag<Edge>& es) {
        constexpr int64_t kGroupParallelism = 32;
        auto vertices = engine::Distinct(
            engine::FlatMap(es,
                            [](const Edge& e) {
                              return std::vector<Vertex>{e.src, e.dst};
                            }),
            kGroupParallelism);
        const int64_t n = engine::Count(vertices);  // job
        if (n == 0) {
          sums.emplace_back(group, 0.0);
          return;
        }
        const double init = 1.0 / static_cast<double>(n);
        auto degrees = engine::ReduceByKey(
            engine::Map(es,
                        [](const Edge& e) {
                          return std::pair<Vertex, int64_t>(e.src, 1);
                        }),
            [](int64_t a, int64_t b) { return a + b; }, kGroupParallelism);
        auto edges_deg = engine::RepartitionJoin(
            engine::Map(es,
                        [](const Edge& e) {
                          return std::pair<Vertex, Vertex>(e.src, e.dst);
                        }),
            degrees, kGroupParallelism);
        auto verts_kv = engine::Map(
            vertices, [](Vertex v) { return std::pair<Vertex, char>(v, 0); });
        auto ranks = engine::Map(vertices, [init](Vertex v) {
          return std::pair<Vertex, Rank>(v, init);
        });
        const double damping = params.damping;
        for (int64_t it = 0; it < params.iterations && cluster->ok(); ++it) {
          auto joined =
              engine::RepartitionJoin(edges_deg, ranks, kGroupParallelism);
          auto msgs = engine::Map(
              joined,
              [](const std::pair<Vertex,
                                 std::pair<std::pair<Vertex, int64_t>, Rank>>&
                     p) {
                const auto& [dst, deg] = p.second.first;
                return std::pair<Vertex, Rank>(
                    dst, p.second.second / static_cast<double>(deg));
              });
          auto contribs = engine::ReduceByKey(
              msgs, [](Rank a, Rank b) { return a + b; }, kGroupParallelism);
          auto with_all =
              engine::LeftOuterJoin(verts_kv, contribs, kGroupParallelism);
          ranks = engine::Map(
              with_all,
              [init, damping](
                  const std::pair<Vertex,
                                  std::pair<char, std::optional<Rank>>>& p) {
                return std::pair<Vertex, Rank>(
                    p.first, (1.0 - damping) * init +
                                 damping * p.second.second.value_or(0.0));
              });
          // Per-iteration materialization (convergence bookkeeping): a job.
          engine::NotEmpty(ranks);
        }
        double sum = 0.0;
        for (Rank r : engine::Collect(engine::Values(ranks))) sum += r;
        sums.emplace_back(group, sum);
      });
  if (!cluster->ok()) sums.clear();
  return FinishRun<int64_t, double>(cluster, std::move(sums));
}

PageRankResult RunPageRank(Cluster* cluster,
                           const Bag<std::pair<int64_t, Edge>>& edges,
                           const PageRankParams& params, Variant variant,
                           core::OptimizerOptions options) {
  switch (variant) {
    case Variant::kMatryoshka:
      return PageRankMatryoshka(cluster, edges, params, options);
    case Variant::kOuterParallel:
      return PageRankOuterParallel(cluster, edges, params);
    case Variant::kInnerParallel:
      return PageRankInnerParallel(cluster, edges, params);
    case Variant::kDiqlLike:
      break;
  }
  PageRankResult r;
  r.status = Status::Unsupported(
      "DIQL-like baseline cannot run iterative tasks");
  return r;
}

std::vector<std::pair<int64_t, double>> PageRankReference(
    const std::vector<std::pair<int64_t, Edge>>& edges,
    const PageRankParams& params) {
  std::map<int64_t, std::vector<Edge>> by_group;
  for (const auto& [g, e] : edges) by_group[g].push_back(e);
  std::vector<std::pair<int64_t, double>> out;
  out.reserve(by_group.size());
  for (const auto& [g, es] : by_group) {
    out.emplace_back(g, SequentialPageRank(es, params));
  }
  return out;
}

}  // namespace matryoshka::workloads
