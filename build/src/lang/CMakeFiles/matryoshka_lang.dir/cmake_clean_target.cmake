file(REMOVE_RECURSE
  "libmatryoshka_lang.a"
)
