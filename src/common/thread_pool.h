#ifndef MATRYOSHKA_COMMON_THREAD_POOL_H_
#define MATRYOSHKA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace matryoshka {

/// Fixed-size worker pool used by the engine to execute partition tasks in
/// parallel when ClusterConfig::execute_parallel is set. Task submission is
/// fire-and-forget; use ParallelFor for fork-join workloads.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Runs body(i) for i in [0, n) using the pool (or inline when pool is null
/// or n <= 1) and waits for completion. `body` must be safe to invoke
/// concurrently for distinct indices.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& body);

}  // namespace matryoshka

#endif  // MATRYOSHKA_COMMON_THREAD_POOL_H_
