#include "lang/lowering_phase.h"

#include <optional>
#include <variant>

#include "common/logging.h"
#include "core/matryoshka.h"
#include "engine/ops.h"
#include "engine/shuffle.h"
#include "lang/row_kernels.h"

namespace matryoshka::lang {

namespace {

using engine::Bag;
using ScalarEnv = std::unordered_map<std::string, Value>;

/// What a name can denote at lowering time.
struct NestedRuntime {
  core::InnerScalar<Value> keys;
  core::InnerBag<Value> values;
};

using RuntimeValue =
    std::variant<Value, Bag<Value>, core::InnerScalar<Value>,
                 core::InnerBag<Value>, std::shared_ptr<NestedRuntime>>;

using Env = std::unordered_map<std::string, RuntimeValue>;

/// Scalar binop semantics live in row_kernels.h (EvalRowBinOp) so the
/// tree-walking interpreter and the compiled kernels share one definition.
Value EvalBinOp(BinOpKind op, const Value& a, const Value& b) {
  return EvalRowBinOp(op, a, b);
}

/// Evaluates a scalar expression against an environment of Values — the
/// per-element interpreter used inside engine UDFs and for driver scalars.
Value EvalScalar(const Expr& e, const ScalarEnv& env) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.literal;
    case ExprKind::kVar: {
      auto it = env.find(e.name);
      MATRYOSHKA_CHECK(it != env.end())
          << "unbound scalar variable '" << e.name << "'";
      return it->second;
    }
    case ExprKind::kTupleMake: {
      Value::Tuple t;
      t.reserve(e.inputs.size());
      for (const auto& in : e.inputs) t.push_back(EvalScalar(*in, env));
      return Value(std::move(t));
    }
    case ExprKind::kTupleField:
      return EvalScalar(*e.inputs[0], env).Field(e.index);
    case ExprKind::kBinOp:
      return EvalBinOp(e.op, EvalScalar(*e.inputs[0], env),
                       EvalScalar(*e.inputs[1], env));
    default:
      MATRYOSHKA_CHECK(false)
          << "non-scalar node in element context: " << ToString(e);
      return Value();
  }
}

/// Applies a pure element lambda (with captures already bound into `base`).
Value ApplyLambda(const Lambda& lam, const ScalarEnv& base,
                  std::initializer_list<Value> args) {
  MATRYOSHKA_CHECK(lam.params.size() == args.size());
  ScalarEnv env = base;
  std::size_t i = 0;
  for (const Value& a : args) env[lam.params[i++]] = a;
  for (const Stmt& s : lam.body) env[s.name] = EvalScalar(*s.expr, env);
  return EvalScalar(*lam.result, env);
}

class Interpreter {
 public:
  Interpreter(engine::Cluster* cluster, core::OptimizerOptions options,
              const std::unordered_map<std::string, Bag<Value>>& sources)
      : cluster_(cluster), options_(options), sources_(sources) {}

  Result<std::vector<Value>> Run(const Program& program) {
    for (const Stmt& s : program.stmts) {
      MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue v, Eval(*s.expr, env_));
      env_[s.name] = std::move(v);
      if (std::holds_alternative<core::InnerScalar<Value>>(env_[s.name]) ||
          std::holds_alternative<core::InnerBag<Value>>(env_[s.name])) {
        // Remember which nested bag a lifted result came from so the final
        // collection can attach the group keys.
        lifted_origin_[s.name] = current_nested_;
      }
    }
    auto it = env_.find(program.result);
    if (it == env_.end()) {
      return Status::InvalidArgument("unbound result '" + program.result +
                                     "'");
    }
    auto out = CollectResult(program.result, it->second);
    if (!cluster_->ok()) return cluster_->status();
    return out;
  }

 private:
  Result<std::vector<Value>> CollectResult(const std::string& name,
                                           const RuntimeValue& rv) {
    std::vector<Value> out;
    if (const auto* v = std::get_if<Value>(&rv)) {
      out.push_back(*v);
      return out;
    }
    if (const auto* bag = std::get_if<Bag<Value>>(&rv)) {
      return engine::Collect(*bag);
    }
    if (const auto* is = std::get_if<core::InnerScalar<Value>>(&rv)) {
      auto origin = lifted_origin_[name];
      if (origin != nullptr) {
        auto pairs = engine::Collect(core::ZipWithKeys(origin->keys, *is));
        for (auto& [k, v] : pairs) out.push_back(Value::MakeTuple({k, v}));
        return out;
      }
      return engine::Collect(is->Flatten());
    }
    if (const auto* ib = std::get_if<core::InnerBag<Value>>(&rv)) {
      return engine::Collect(ib->Flatten());
    }
    return Status::Unsupported("program result is a nested bag; map it");
  }

  /// Builds the capture environment of an element lambda: every captured
  /// name must denote a driver scalar here (InnerScalar captures were
  /// rewritten to liftedMapWithClosure by the parsing phase).
  Result<ScalarEnv> CaptureEnv(const Lambda& lam,
                               const std::string& skip = "") {
    ScalarEnv captured;
    for (const std::string& c : lam.captures) {
      if (c == skip) continue;
      auto it = env_.find(c);
      if (it == env_.end()) continue;  // bound later inside the lambda? no: error below on use
      if (const auto* v = std::get_if<Value>(&it->second)) {
        captured[c] = *v;
      } else if (!std::holds_alternative<core::InnerScalar<Value>>(
                     it->second)) {
        return Status::Unsupported("element lambda captures non-scalar '" +
                                   c + "'");
      } else {
        return Status::Internal(
            "InnerScalar capture '" + c +
            "' not rewritten to liftedMapWithClosure by the parsing phase");
      }
    }
    return captured;
  }

  Result<RuntimeValue> Eval(const Expr& e, Env& env) {
    switch (e.kind) {
      case ExprKind::kSource: {
        auto it = sources_.find(e.name);
        if (it == sources_.end()) {
          return Status::InvalidArgument("unbound source '" + e.name + "'");
        }
        return RuntimeValue(it->second);
      }
      case ExprKind::kVar: {
        auto it = env.find(e.name);
        if (it == env.end()) {
          return Status::InvalidArgument("unbound variable '" + e.name + "'");
        }
        return it->second;
      }
      case ExprKind::kConst:
        return RuntimeValue(e.literal);

      // --- flat engine operations ---
      case ExprKind::kMap:
      case ExprKind::kFilter:
      case ExprKind::kFlatMap:
      case ExprKind::kDistinct:
      case ExprKind::kCount: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Bag<Value> in, EvalBag(*e.inputs[0], env));
        switch (e.kind) {
          case ExprKind::kMap: {
            MATRYOSHKA_ASSIGN_OR_RETURN(ScalarEnv cap, CaptureEnv(*e.lambda));
            // Common projection shapes run as a compiled concrete functor
            // (row_kernels.h) instead of the per-element tree interpreter;
            // the engine's static feed chain then inlines it into the fused
            // partition loop.
            if (auto kern = rowkernel::CompileProjection(*e.lambda, cap)) {
              return RuntimeValue(engine::Map(in, *kern));
            }
            LambdaPtr lam = e.lambda;
            return RuntimeValue(engine::Map(in, [lam, cap](const Value& x) {
              return ApplyLambda(*lam, cap, {x});
            }));
          }
          case ExprKind::kFilter: {
            MATRYOSHKA_ASSIGN_OR_RETURN(ScalarEnv cap, CaptureEnv(*e.lambda));
            if (auto kern = rowkernel::CompilePredicate(*e.lambda, cap)) {
              return RuntimeValue(engine::Filter(in, *kern));
            }
            LambdaPtr lam = e.lambda;
            return RuntimeValue(
                engine::Filter(in, [lam, cap](const Value& x) {
                  return ApplyLambda(*lam, cap, {x}).AsBool();
                }));
          }
          case ExprKind::kFlatMap: {
            MATRYOSHKA_ASSIGN_OR_RETURN(ScalarEnv cap, CaptureEnv(*e.lambda));
            if (auto kern =
                    rowkernel::CompileFlatProjection(*e.lambda, cap)) {
              return RuntimeValue(engine::FlatMap(in, *kern));
            }
            LambdaPtr lam = e.lambda;
            return RuntimeValue(
                engine::FlatMap(in, [lam, cap](const Value& x) {
                  return ApplyLambda(*lam, cap, {x}).AsTuple();
                }));
          }
          case ExprKind::kDistinct:
            return RuntimeValue(engine::Distinct(in));
          case ExprKind::kCount:
            return RuntimeValue(Value(engine::Count(in)));
          default:
            break;
        }
        return Status::Internal("unreachable");
      }
      case ExprKind::kReduceByKey: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Bag<Value> in, EvalBag(*e.inputs[0], env));
        LambdaPtr f2 = e.lambda2;
        // The key-extract map is already a concrete pair projection; a
        // binop-shaped merge function additionally compiles to a concrete
        // combiner, taking the interpreter out of the (map-side and
        // reduce-side) merge loop.
        auto kv = engine::Map(in, [](const Value& x) {
          return std::pair<Value, Value>(x.Field(0), x.Field(1));
        });
        auto retuple = [](const std::pair<Value, Value>& p) {
          return Value::MakeTuple({p.first, p.second});
        };
        if (auto kern = rowkernel::CompileCombiner(*f2)) {
          return RuntimeValue(
              engine::Map(engine::ReduceByKey(kv, *kern), retuple));
        }
        auto red = engine::ReduceByKey(
            kv, [f2](const Value& a, const Value& b) {
              return ApplyLambda(*f2, {}, {a, b});
            });
        return RuntimeValue(engine::Map(red, retuple));
      }
      case ExprKind::kUnion: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Bag<Value> a, EvalBag(*e.inputs[0], env));
        MATRYOSHKA_ASSIGN_OR_RETURN(Bag<Value> b, EvalBag(*e.inputs[1], env));
        return RuntimeValue(engine::Union(a, b));
      }
      case ExprKind::kBinOp: {
        MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue a, Eval(*e.inputs[0], env));
        MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue b, Eval(*e.inputs[1], env));
        const auto* va = std::get_if<Value>(&a);
        const auto* vb = std::get_if<Value>(&b);
        if (va == nullptr || vb == nullptr) {
          return Status::InvalidArgument(
              "binop over non-scalars survived the parsing phase");
        }
        return RuntimeValue(EvalBinOp(e.op, *va, *vb));
      }
      case ExprKind::kTupleMake: {
        Value::Tuple t;
        for (const auto& in : e.inputs) {
          MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue v, Eval(*in, env));
          const auto* sv = std::get_if<Value>(&v);
          if (sv == nullptr) return Status::InvalidArgument("tuple of bags");
          t.push_back(*sv);
        }
        return RuntimeValue(Value(std::move(t)));
      }
      case ExprKind::kTupleField: {
        MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue v, Eval(*e.inputs[0], env));
        const auto* sv = std::get_if<Value>(&v);
        if (sv == nullptr) return Status::InvalidArgument("field of a bag");
        return RuntimeValue(sv->Field(e.index));
      }

      // --- the nesting primitives (the parsing phase's output) ---
      case ExprKind::kGroupByKeyIntoNestedBag: {
        MATRYOSHKA_ASSIGN_OR_RETURN(Bag<Value> in, EvalBag(*e.inputs[0], env));
        auto kv = engine::Map(
            in,
            [](const Value& x) {
              return std::pair<Value, Value>(x.Field(0), x.Field(1));
            },
            0.25);
        auto nested = core::GroupByKeyIntoNestedBag(kv, options_);
        auto rt = std::make_shared<NestedRuntime>(
            NestedRuntime{nested.keys(), nested.values()});
        return RuntimeValue(rt);
      }
      case ExprKind::kMapWithLiftedUdf: {
        MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue in, Eval(*e.inputs[0], env));
        const Lambda& lam = *e.lambda;
        Env local = env;
        std::shared_ptr<NestedRuntime> nested;
        if (auto* nb = std::get_if<std::shared_ptr<NestedRuntime>>(&in)) {
          nested = *nb;
          local[lam.params[0]] = nested->keys;
          local[lam.params[1]] = nested->values;
        } else if (auto* bag = std::get_if<Bag<Value>>(&in)) {
          auto lifted = core::LiftFlatBag(*bag, options_);
          local[lam.params[0]] = lifted;
        } else {
          return Status::InvalidArgument(
              "mapWithLiftedUDF over a non-bag input");
        }
        current_nested_ = nested;
        // The lifted UDF runs exactly ONCE, here, over all groups.
        for (const Stmt& s : lam.body) {
          MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue v, Eval(*s.expr, local));
          local[s.name] = std::move(v);
        }
        return Eval(*lam.result, local);
      }
      case ExprKind::kLiftedMap:
      case ExprKind::kLiftedFilter:
      case ExprKind::kLiftedFlatMap:
      case ExprKind::kLiftedDistinct:
      case ExprKind::kLiftedCount: {
        MATRYOSHKA_ASSIGN_OR_RETURN(core::InnerBag<Value> in,
                                    EvalInnerBag(*e.inputs[0], env));
        switch (e.kind) {
          case ExprKind::kLiftedMap: {
            MATRYOSHKA_ASSIGN_OR_RETURN(ScalarEnv cap, CaptureEnv(*e.lambda));
            LambdaPtr lam = e.lambda;
            return RuntimeValue(
                core::LiftedMap(in, [lam, cap](const Value& x) {
                  return ApplyLambda(*lam, cap, {x});
                }));
          }
          case ExprKind::kLiftedFilter: {
            MATRYOSHKA_ASSIGN_OR_RETURN(ScalarEnv cap, CaptureEnv(*e.lambda));
            LambdaPtr lam = e.lambda;
            return RuntimeValue(
                core::LiftedFilter(in, [lam, cap](const Value& x) {
                  return ApplyLambda(*lam, cap, {x}).AsBool();
                }));
          }
          case ExprKind::kLiftedFlatMap: {
            MATRYOSHKA_ASSIGN_OR_RETURN(ScalarEnv cap, CaptureEnv(*e.lambda));
            LambdaPtr lam = e.lambda;
            return RuntimeValue(
                core::LiftedFlatMap(in, [lam, cap](const Value& x) {
                  return ApplyLambda(*lam, cap, {x}).AsTuple();
                }));
          }
          case ExprKind::kLiftedDistinct:
            return RuntimeValue(core::LiftedDistinct(in));
          case ExprKind::kLiftedCount: {
            auto counts = core::LiftedCount(in);
            return RuntimeValue(core::UnaryScalarOp(
                counts, [](int64_t c) { return Value(c); }));
          }
          default:
            break;
        }
        return Status::Internal("unreachable");
      }
      case ExprKind::kLiftedMapWithClosure: {
        MATRYOSHKA_ASSIGN_OR_RETURN(core::InnerBag<Value> in,
                                    EvalInnerBag(*e.inputs[0], env));
        auto cit = env.find(e.name);
        if (cit == env.end() ||
            !std::holds_alternative<core::InnerScalar<Value>>(cit->second)) {
          return Status::InvalidArgument("closure '" + e.name +
                                         "' is not an InnerScalar");
        }
        auto closure = std::get<core::InnerScalar<Value>>(cit->second);
        MATRYOSHKA_ASSIGN_OR_RETURN(ScalarEnv cap,
                                    CaptureEnv(*e.lambda, e.name));
        LambdaPtr lam = e.lambda;
        const std::string closure_name = e.name;
        return RuntimeValue(core::MapWithClosure(
            in, closure, [lam, cap, closure_name](const Value& x,
                                                  const Value& c) {
              ScalarEnv env2 = cap;
              env2[closure_name] = c;
              return ApplyLambda(*lam, env2, {x});
            }));
      }
      case ExprKind::kLiftedReduceByKey: {
        MATRYOSHKA_ASSIGN_OR_RETURN(core::InnerBag<Value> in,
                                    EvalInnerBag(*e.inputs[0], env));
        LambdaPtr f2 = e.lambda2;
        auto kv = core::LiftedMap(in, [](const Value& x) {
          return std::pair<Value, Value>(x.Field(0), x.Field(1));
        });
        auto red = core::LiftedReduceByKey(
            kv, [f2](const Value& a, const Value& b) {
              return ApplyLambda(*f2, {}, {a, b});
            });
        return RuntimeValue(
            core::LiftedMap(red, [](const std::pair<Value, Value>& p) {
              return Value::MakeTuple({p.first, p.second});
            }));
      }
      case ExprKind::kBinaryScalarOp: {
        MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue a, Eval(*e.inputs[0], env));
        MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue b, Eval(*e.inputs[1], env));
        const BinOpKind op = e.op;
        const auto* ia = std::get_if<core::InnerScalar<Value>>(&a);
        const auto* ib = std::get_if<core::InnerScalar<Value>>(&b);
        if (ia != nullptr && ib != nullptr) {
          return RuntimeValue(core::BinaryScalarOp(
              *ia, *ib, [op](const Value& x, const Value& y) {
                return EvalBinOp(op, x, y);
              }));
        }
        if (ia != nullptr) {
          const auto* vb = std::get_if<Value>(&b);
          if (vb == nullptr) return Status::InvalidArgument("bad operand");
          const Value c = *vb;
          return RuntimeValue(core::UnaryScalarOp(
              *ia, [op, c](const Value& x) { return EvalBinOp(op, x, c); }));
        }
        if (ib != nullptr) {
          const auto* va = std::get_if<Value>(&a);
          if (va == nullptr) return Status::InvalidArgument("bad operand");
          const Value c = *va;
          return RuntimeValue(core::UnaryScalarOp(
              *ib, [op, c](const Value& y) { return EvalBinOp(op, c, y); }));
        }
        return Status::InvalidArgument("binaryScalarOp over plain scalars");
      }

      case ExprKind::kLiftedWhile: {
        MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue init,
                                    Eval(*e.inputs[0], env));
        const Lambda& body = *e.lambda;
        const std::string& state_name = body.params[0];
        // One lifted loop drives the iterations of ALL groups (Listing 4);
        // the body is re-lowered each iteration against the current state.
        Status body_status;  // first error inside the body, if any
        auto run_body = [&](const core::LiftingContext& ctx, Env& local)
            -> std::optional<std::pair<RuntimeValue, RuntimeValue>> {
          (void)ctx;
          for (const Stmt& s : body.body) {
            auto v = Eval(*s.expr, local);
            if (!v.ok()) {
              body_status = v.status();
              return std::nullopt;
            }
            local[s.name] = std::move(*v);
          }
          auto next = Eval(*body.result->inputs[0], local);
          auto cond = Eval(*body.result->inputs[1], local);
          if (!next.ok() || !cond.ok()) {
            body_status = next.ok() ? cond.status() : next.status();
            return std::nullopt;
          }
          return std::make_pair(std::move(*next), std::move(*cond));
        };

        if (auto* ib = std::get_if<core::InnerBag<Value>>(&init)) {
          auto result = core::LiftedWhile(
              *ib,
              [&](const core::LiftingContext& ctx,
                  const core::InnerBag<Value>& state, int64_t) {
                Env local = env;
                local[state_name] = state;
                auto out = run_body(ctx, local);
                if (!out.has_value()) {
                  // Poison the cluster so the loop terminates; the status
                  // is surfaced below.
                  cluster_->Fail(Status::Internal("lifted while body failed"));
                  auto cond_false = core::UnaryScalarOp(
                      core::LiftedCount(state), [](int64_t) { return false; });
                  return std::make_pair(state, cond_false);
                }
                auto next = std::get<core::InnerBag<Value>>(out->first);
                auto cond_vals =
                    std::get<core::InnerScalar<Value>>(out->second);
                auto cond = core::UnaryScalarOp(
                    cond_vals, [](const Value& v) { return v.AsBool(); });
                return std::make_pair(next, cond);
              });
          if (!body_status.ok()) return body_status;
          return RuntimeValue(result);
        }
        if (auto* is = std::get_if<core::InnerScalar<Value>>(&init)) {
          auto result = core::LiftedWhileScalar(
              *is,
              [&](const core::LiftingContext& ctx,
                  const core::InnerScalar<Value>& state, int64_t) {
                Env local = env;
                local[state_name] = state;
                auto out = run_body(ctx, local);
                if (!out.has_value()) {
                  cluster_->Fail(Status::Internal("lifted while body failed"));
                  auto cond_false = core::UnaryScalarOp(
                      state, [](const Value&) { return false; });
                  return std::make_pair(state, cond_false);
                }
                auto next = std::get<core::InnerScalar<Value>>(out->first);
                auto cond_vals =
                    std::get<core::InnerScalar<Value>>(out->second);
                auto cond = core::UnaryScalarOp(
                    cond_vals, [](const Value& v) { return v.AsBool(); });
                return std::make_pair(next, cond);
              });
          if (!body_status.ok()) return body_status;
          return RuntimeValue(result);
        }
        return Status::InvalidArgument(
            "lifted while over a non-lifted initial state");
      }

      case ExprKind::kLiftedIf: {
        MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue cond_rv,
                                    Eval(*e.inputs[0], env));
        MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue state_rv,
                                    Eval(*e.inputs[1], env));
        const auto* cond_is = std::get_if<core::InnerScalar<Value>>(&cond_rv);
        if (cond_is == nullptr) {
          return Status::InvalidArgument("lifted if over a non-lifted cond");
        }
        auto cond = core::UnaryScalarOp(
            *cond_is, [](const Value& v) { return v.AsBool(); });
        Status body_status;
        auto run_branch = [&](const Lambda& br, RuntimeValue routed)
            -> std::optional<RuntimeValue> {
          Env local = env;
          local[br.params[0]] = std::move(routed);
          for (const Stmt& s : br.body) {
            auto v = Eval(*s.expr, local);
            if (!v.ok()) {
              body_status = v.status();
              return std::nullopt;
            }
            local[s.name] = std::move(*v);
          }
          auto res = Eval(*br.result, local);
          if (!res.ok()) {
            body_status = res.status();
            return std::nullopt;
          }
          return std::move(*res);
        };
        if (auto* ib = std::get_if<core::InnerBag<Value>>(&state_rv)) {
          auto result = core::LiftedIf(
              cond, *ib,
              [&](const core::InnerBag<Value>& routed) {
                auto out = run_branch(*e.lambda, RuntimeValue(routed));
                return out.has_value()
                           ? std::get<core::InnerBag<Value>>(*out)
                           : routed;
              },
              [&](const core::InnerBag<Value>& routed) {
                auto out = run_branch(*e.lambda2, RuntimeValue(routed));
                return out.has_value()
                           ? std::get<core::InnerBag<Value>>(*out)
                           : routed;
              });
          if (!body_status.ok()) return body_status;
          return RuntimeValue(result);
        }
        if (auto* is = std::get_if<core::InnerScalar<Value>>(&state_rv)) {
          auto result = core::LiftedIfScalar(
              cond, *is,
              [&](const core::InnerScalar<Value>& routed) {
                auto out = run_branch(*e.lambda, RuntimeValue(routed));
                return out.has_value()
                           ? std::get<core::InnerScalar<Value>>(*out)
                           : routed;
              },
              [&](const core::InnerScalar<Value>& routed) {
                auto out = run_branch(*e.lambda2, RuntimeValue(routed));
                return out.has_value()
                           ? std::get<core::InnerScalar<Value>>(*out)
                           : routed;
              });
          if (!body_status.ok()) return body_status;
          return RuntimeValue(result);
        }
        return Status::InvalidArgument("lifted if over a non-lifted state");
      }

      // --- surface operations the parsing phase must have removed ---
      case ExprKind::kGroupByKey:
        return Status::InvalidArgument(
            "raw groupByKey reached the lowering phase; run ParsingPhase");
      default:
        return Status::InvalidArgument("cannot lower: " + ToString(e));
    }
  }

  Result<Bag<Value>> EvalBag(const Expr& e, Env& env) {
    MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue v, Eval(e, env));
    if (auto* bag = std::get_if<Bag<Value>>(&v)) return *bag;
    return Status::InvalidArgument("expected a flat bag: " + ToString(e));
  }

  Result<core::InnerBag<Value>> EvalInnerBag(const Expr& e, Env& env) {
    MATRYOSHKA_ASSIGN_OR_RETURN(RuntimeValue v, Eval(e, env));
    if (auto* ib = std::get_if<core::InnerBag<Value>>(&v)) return *ib;
    return Status::InvalidArgument("expected a lifted bag: " + ToString(e));
  }

  engine::Cluster* cluster_;
  core::OptimizerOptions options_;
  const std::unordered_map<std::string, Bag<Value>>& sources_;
  Env env_;
  std::shared_ptr<NestedRuntime> current_nested_;
  std::unordered_map<std::string, std::shared_ptr<NestedRuntime>>
      lifted_origin_;
};

}  // namespace

LoweringPhase::LoweringPhase(engine::Cluster* cluster,
                             core::OptimizerOptions options)
    : cluster_(cluster), options_(options) {}

void LoweringPhase::BindSource(const std::string& name,
                               engine::Bag<Value> bag) {
  sources_.insert_or_assign(name, std::move(bag));
}

Result<std::vector<Value>> LoweringPhase::Execute(const Program& program) {
  Interpreter interp(cluster_, options_, sources_);
  return interp.Run(program);
}

}  // namespace matryoshka::lang
