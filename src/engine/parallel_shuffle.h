#ifndef MATRYOSHKA_ENGINE_PARALLEL_SHUFFLE_H_
#define MATRYOSHKA_ENGINE_PARALLEL_SHUFFLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "common/thread_pool.h"

/// The deterministic parallel shuffle kernel: every wide operator's data
/// movement (Repartition, PartitionByKey, the ReduceByKey / Distinct
/// reduce-side scatters, both join sides, Subtract, Intersection) funnels
/// through ParallelScatter below.
///
/// Determinism contract (locked by engine_parallel_determinism_test):
/// the output is BIT-IDENTICAL — contents and element order per partition —
/// to the reference sequential scatter loop
///
///   for (p in input partition order)
///     for (x in inputs[p] in element order)
///       out[part_of(x)].push_back(x)
///
/// for every pool size, including no pool at all. The kernel achieves this
/// with the two-phase partitioned layout of cache-conscious radix join /
/// sort-shuffle writers:
///
///  Phase 1 (parallel across input partitions / "producers"): each producer
///  scans its elements once to count per-bucket occupancy (the counting
///  pre-pass), prefix-sums the counts into bucket offsets, and writes its
///  elements grouped by destination bucket into one contiguous scratch
///  vector — one exact reservation per producer, no push_back growth, and
///  element order within each (producer, bucket) pair is input order.
///
///  Phase 2 (parallel across output partitions): each output partition
///  reserves its exact total size and concatenates the producers' buckets
///  for it in ascending producer order, moving elements out of the scratch.
///
/// Since phase 2 concatenates in producer order and phase 1 preserves
/// element order within a bucket, the result equals the sequential loop's
/// regardless of which thread ran what when.
namespace matryoshka::engine::internal {

/// Redistributes `inputs` into `num_parts` buckets by `part_of(element)`
/// (which must be pure and return a value in [0, num_parts)). Elements are
/// copied out of `inputs`; T must be default-constructible (scratch storage)
/// — true of every bag element type the engine shuffles.
template <typename T, typename PartOf>
std::vector<std::vector<T>> ParallelScatter(
    ThreadPool* pool, const std::vector<std::vector<T>>& inputs,
    std::size_t num_parts, const PartOf& part_of) {
  std::vector<std::vector<T>> out(num_parts);
  const std::size_t producers = inputs.size();
  if (producers == 0 || num_parts == 0) return out;

  if (pool == nullptr || pool->num_threads() < 2) {
    // Single-threaded fast path (also taken when the pool cannot provide
    // two concurrent workers, where the two-phase layout's extra copy can
    // never pay for itself): same counting pre-pass (destinations are
    // hashed once and remembered), exact reservation of every output
    // partition, then ONE copy pass straight into the outputs — strictly
    // less work than the two-phase layout, identical results by the same
    // ordering argument (producers ascending, element order within).
    std::vector<std::vector<uint32_t>> dests(producers);
    std::vector<std::size_t> counts(num_parts, 0);
    for (std::size_t p = 0; p < producers; ++p) {
      const std::vector<T>& in = inputs[p];
      std::vector<uint32_t>& dest = dests[p];
      dest.resize(in.size());
      for (std::size_t j = 0; j < in.size(); ++j) {
        dest[j] = static_cast<uint32_t>(part_of(in[j]));
        ++counts[dest[j]];
      }
    }
    for (std::size_t b = 0; b < num_parts; ++b) out[b].reserve(counts[b]);
    for (std::size_t p = 0; p < producers; ++p) {
      const std::vector<T>& in = inputs[p];
      const std::vector<uint32_t>& dest = dests[p];
      for (std::size_t j = 0; j < in.size(); ++j) {
        out[dest[j]].push_back(in[j]);
      }
    }
    return out;
  }

  // Phase 1: per-producer counting pre-pass + bucket-grouped scatter into
  // contiguous scratch. offsets[p][b] .. offsets[p][b+1] is producer p's
  // bucket b inside scratch[p].
  std::vector<std::vector<std::size_t>> offsets(producers);
  std::vector<std::vector<T>> scratch(producers);
  std::vector<std::vector<uint32_t>> dests(producers);
  ParallelFor(pool, producers, [&](std::size_t p) {
    const std::vector<T>& in = inputs[p];
    std::vector<uint32_t>& dest = dests[p];
    dest.resize(in.size());
    std::vector<std::size_t>& off = offsets[p];
    off.assign(num_parts + 1, 0);
    for (std::size_t j = 0; j < in.size(); ++j) {
      dest[j] = static_cast<uint32_t>(part_of(in[j]));
      ++off[dest[j] + 1];
    }
    for (std::size_t b = 1; b <= num_parts; ++b) off[b] += off[b - 1];
    std::vector<std::size_t> cursor(off.begin(), off.end() - 1);
    std::vector<T>& sc = scratch[p];
    sc.resize(in.size());
    for (std::size_t j = 0; j < in.size(); ++j) {
      sc[cursor[dest[j]]++] = in[j];
    }
  });

  // Phase 2: exact-reserve + concatenate in producer order. Distinct output
  // partitions touch disjoint scratch ranges, so moving elements out is safe
  // across concurrent phase-2 tasks.
  ParallelFor(pool, num_parts, [&](std::size_t b) {
    std::size_t total = 0;
    for (std::size_t p = 0; p < producers; ++p) {
      total += offsets[p][b + 1] - offsets[p][b];
    }
    std::vector<T>& dst = out[b];
    dst.reserve(total);
    for (std::size_t p = 0; p < producers; ++p) {
      auto begin = scratch[p].begin() +
                   static_cast<std::ptrdiff_t>(offsets[p][b]);
      auto end = scratch[p].begin() +
                 static_cast<std::ptrdiff_t>(offsets[p][b + 1]);
      dst.insert(dst.end(), std::make_move_iterator(begin),
                 std::make_move_iterator(end));
    }
  });
  return out;
}

}  // namespace matryoshka::engine::internal

#endif  // MATRYOSHKA_ENGINE_PARALLEL_SHUFFLE_H_
