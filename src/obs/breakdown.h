#ifndef MATRYOSHKA_OBS_BREAKDOWN_H_
#define MATRYOSHKA_OBS_BREAKDOWN_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_recorder.h"

/// Per-run breakdown report: where the simulated seconds went. Answers the
/// paper's Sec. 9 questions quantitatively — how much of a run is job-launch
/// overhead (the inner-parallel killer), task overhead, compute, spill,
/// network, and fault recovery — and which stages formed the critical path.
namespace matryoshka::obs {

/// Decomposition of one run's simulated time into exclusive buckets. The
/// driver clock is serial in this engine, so the buckets sum to the run's
/// simulated_time_s (up to floating-point rounding of the per-task
/// decompositions).
struct Breakdown {
  double job_launch_s = 0.0;
  /// Fault-free UDF compute on the critical slot of every stage.
  double compute_s = 0.0;
  /// Per-task scheduling/launch/teardown on critical slots.
  double task_overhead_s = 0.0;
  /// Spill-inflation share of critical-slot compute.
  double spill_s = 0.0;
  double shuffle_s = 0.0;
  double broadcast_s = 0.0;
  /// Driver-side collect transfers.
  double collect_s = 0.0;
  /// Straggler slowdown, wasted failed attempts, retry backoff on critical
  /// slots, machine-loss lineage recompute, plus driver-retry backoff.
  double recovery_s = 0.0;
  /// Replicated checkpoint writes (explicit and auto-checkpoints).
  double checkpoint_s = 0.0;

  double total() const {
    return job_launch_s + compute_s + task_overhead_s + spill_s + shuffle_s +
           broadcast_s + collect_s + recovery_s + checkpoint_s;
  }
};

/// One link of the critical-path stage chain: in this serial-driver model
/// every stage gates the run, so the chain is the stages in time order; the
/// entries carry each stage's makespan and its share of the run.
struct CriticalStage {
  int64_t stage_id = 0;
  std::string label;
  double begin_s = 0.0;
  double duration_s = 0.0;
  int64_t num_tasks = 0;
  int64_t critical_slot = -1;
};

Breakdown ComputeBreakdown(const RunTrace& run);

/// The stage chain in time order (see CriticalStage).
std::vector<CriticalStage> CriticalPath(const RunTrace& run);

/// Human-readable report: the bucket table plus the top `top_stages` stages
/// by duration.
std::string FormatBreakdown(const RunTrace& run, int top_stages = 8);

/// The breakdown as a JSON object (used by --metrics-json and embedded in
/// the Chrome trace export).
void WriteBreakdownJson(const Breakdown& breakdown, std::ostream& os);

}  // namespace matryoshka::obs

#endif  // MATRYOSHKA_OBS_BREAKDOWN_H_
