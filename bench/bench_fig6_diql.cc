// Figure 6 (Sec. 9.4): Matryoshka vs. the DIQL-like baseline on Bounce
// Rate at a reduced (12 GB-class) input where DIQL's outer-parallel
// fallback survives. Expected: Matryoshka faster in all cases (the paper
// reports up to 6.6x), because DIQL materializes whole groups (capping
// parallelism at the group count) and runs generated, unfused per-group
// code with no runtime optimization.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/bounce_rate.h"

namespace matryoshka::bench {
namespace {

using workloads::Variant;

constexpr uint64_t kSeed = 55;
constexpr int64_t kTotalVisits = 1 << 18;
constexpr double kTargetGb = 12.0;

void BM_Fig6_DiqlComparison(benchmark::State& state) {
  const int64_t days = state.range(0);
  const Variant variant =
      state.range(1) == 0 ? Variant::kMatryoshka : Variant::kDiqlLike;
  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, kTargetGb, kTotalVisits, sizeof(datagen::Visit));
  auto data = datagen::GenerateVisits(kTotalVisits, days, 0.0, 0.5, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig6/bounce-rate/") + workloads::VariantName(variant),
            {days});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunBounceRate(&cluster, bag, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t days : {16, 32, 64, 128}) {
    b->Args({days, 0});
    b->Args({days, 1});
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

BENCHMARK(BM_Fig6_DiqlComparison)->Apply(Args);

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
