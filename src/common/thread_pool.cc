#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace matryoshka {

ThreadPool::ThreadPool(std::size_t num_threads) {
  MATRYOSHKA_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t done = 0;
  const std::size_t workers = std::min(n, pool->num_threads());
  for (std::size_t w = 0; w < workers; ++w) {
    pool->Submit([&, n] {
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        body(i);
      }
      std::unique_lock<std::mutex> lock(done_mu);
      ++done;
      done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == workers; });
}

}  // namespace matryoshka
