file(REMOVE_RECURSE
  "CMakeFiles/matryoshka_lang.dir/expr.cc.o"
  "CMakeFiles/matryoshka_lang.dir/expr.cc.o.d"
  "CMakeFiles/matryoshka_lang.dir/lowering_phase.cc.o"
  "CMakeFiles/matryoshka_lang.dir/lowering_phase.cc.o.d"
  "CMakeFiles/matryoshka_lang.dir/parsing_phase.cc.o"
  "CMakeFiles/matryoshka_lang.dir/parsing_phase.cc.o.d"
  "CMakeFiles/matryoshka_lang.dir/value.cc.o"
  "CMakeFiles/matryoshka_lang.dir/value.cc.o.d"
  "libmatryoshka_lang.a"
  "libmatryoshka_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matryoshka_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
