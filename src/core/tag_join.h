#ifndef MATRYOSHKA_CORE_TAG_JOIN_H_
#define MATRYOSHKA_CORE_TAG_JOIN_H_

#include <utility>

#include "core/lifting_context.h"
#include "core/optimizer.h"
#include "core/tag.h"
#include "engine/join.h"

namespace matryoshka::core {

/// Equi-join on tags between the flat representations of two lifted values,
/// with the physical implementation (broadcast vs. repartition, Sec. 8.2)
/// chosen by the context's optimizer from the InnerScalar size — which is
/// known *before* either input is computed, unlike what a generic engine
/// optimizer sees. `right` is the InnerScalar-sized side (one element per
/// tag); `left` may be InnerBag-sized.
template <typename A, typename B>
engine::Bag<std::pair<Tag, std::pair<A, B>>> TagJoin(
    const LiftingContext& ctx, const engine::Bag<std::pair<Tag, A>>& left,
    const engine::Bag<std::pair<Tag, B>>& right) {
  // Under degraded re-planning, the build-side byte estimate (same 2x
  // object overhead BroadcastJoin charges) lets the optimizer demote a
  // broadcast that no longer fits the shrunken cluster to a repartition
  // join at planning time. Default policies pass no estimate, keeping the
  // captured decision records identical to the pre-recovery engine.
  const double build_bytes =
      ctx.cluster()->config().recovery.degraded_replanning
          ? engine::RealBagBytes(right) * 2.0
          : -1.0;
  if (ctx.optimizer().ChooseJoin(ctx.num_tags(), build_bytes) ==
      JoinStrategy::kBroadcast) {
    return engine::BroadcastJoin(left, right);
  }
  // A left side that is already tag-partitioned keeps its layout (pass -1 so
  // the join adopts its partitioner); otherwise size the join for the
  // InnerScalar cardinality (Sec. 8.1).
  const int64_t parts =
      left.key_partitions() > 0 ? -1 : ctx.ScalarPartitions();
  return engine::RepartitionJoin(left, right, parts);
}

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_TAG_JOIN_H_
