#ifndef MATRYOSHKA_ENGINE_EXTERNAL_EXTERNAL_GROUP_H_
#define MATRYOSHKA_ENGINE_EXTERNAL_EXTERNAL_GROUP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/failpoints.h"
#include "common/hash.h"
#include "common/sizing.h"
#include "common/status.h"
#include "engine/external/memory_budget.h"
#include "engine/external/serde.h"
#include "engine/external/spill_file.h"

/// Out-of-core keyed aggregation builds (ReduceByKey's combine and merge,
/// GroupByKey's group build, CoGroup) under a real per-partition byte quota.
///
/// Canonical emission order: FIRST OCCURRENCE. Every build — bounded or not
/// — emits its keys in the order their first element arrived in the input
/// stream. Hash-map iteration order (the pre-external behavior) cannot be
/// reproduced by an out-of-core build, so the engine canonicalizes on the
/// one order both paths can produce exactly; see DESIGN.md, "The external
/// execution determinism contract".
///
/// Why raw-element spilling instead of merging partial aggregate maps: a
/// partial-map merge applies the combiner as f(partial1, partial2), which
/// changes the result for non-associative combiners (floating-point sums
/// included) and would make results depend on the budget. Instead the
/// bounded build ADMITS keys — the first keys to occur, in stream order,
/// until the quota is reached — and spills the raw elements of non-admitted
/// keys, in stream order, to an unlinked temp file. Admitted keys absorb
/// every one of their elements in exact stream order during that pass, so
/// their accumulators are finished when the pass ends. The next pass re-runs
/// the same procedure over the spilled stream, admitting the next tranche of
/// keys. Since admission happens at a key's first occurrence and the spilled
/// stream preserves order, pass k's keys all first-occurred before pass
/// k+1's, and concatenating the passes' outputs IS the global
/// first-occurrence order with the combiner applied in exact sequential
/// element order — bit-identical to the unbounded build for any quota,
/// including non-associative combiners.
///
/// Real-fault behavior (DESIGN.md, "The real-fault contract"):
///
///  * Every spilled chunk carries a checksum computed in memory before the
///    write and verified by Finish's merge-on-read. A mismatch fails the
///    build typed (kDataCorruption) — never a silent wrong answer.
///
///  * A WRITE failure (ENOSPC, EIO through the retry budget) with
///    RealIoPolicy::fallback_in_memory set flips the build to DISK-DOWN
///    mode: the already-spilled chunks are read back and re-fed (they are
///    still readable — only the new write failed), the pending buffer is
///    re-fed from memory, and from then on every key is admitted regardless
///    of quota. Admitted keys are a PREFIX of the first-occurrence order and
///    the spilled stream preserves the order of the rest, so the drain
///    reproduces the in-memory build bit for bit. Counted in
///    SpillStats::inmemory_fallbacks. Without the fallback the build fails
///    typed and the job surfaces the Status.
///
///  * A READ failure during Finish (corruption, EIO through the retry
///    budget) always fails typed: the stream elements were consumed into
///    accumulators as they were read, so a partial re-feed cannot be made
///    exact. The driver layer (RunWithRecovery, serving) retries the whole
///    op instead.
namespace matryoshka::engine::external {

/// Insertion-ordered, quota-bounded aggregation of a stream of (K, P) pairs
/// into first-occurrence-ordered (K, Acc) output.
///
///   Init:   P&& -> Acc         first element of a key opens its accumulator
///   Absorb: (Acc&, P&&)        subsequent elements fold in, in stream order
///   Growth: (const P&) -> size_t   bytes Absorb adds to the live build
///                                  (0 for replace-style combiners)
///
/// `quota == SIZE_MAX` (or a non-spillable pair type) never spills: the
/// build is then exactly an insertion-ordered hash aggregation in memory.
/// One instance is used by ONE worker (no internal locking); per-worker
/// SpillStats are reduced driver-side in worker order.
///
/// Callers of the fault-aware ctor MUST check status() after Finish(): a
/// build that hit an unrecoverable IO fault returns its partial output with
/// a non-OK status, and that output must be discarded.
template <typename K, typename P, typename Acc, typename Init, typename Absorb,
          typename Growth>
class BoundedAggregator {
 public:
  using Out = std::vector<std::pair<K, Acc>>;

  BoundedAggregator(std::size_t quota, Init init, Absorb absorb, Growth growth,
                    SpillStats* stats, const FailpointRegistry* fp = nullptr,
                    uint64_t stream_id = 0)
      : quota_(quota),
        init_(std::move(init)),
        absorb_(std::move(absorb)),
        growth_(std::move(growth)),
        stats_(stats),
        fp_(fp),
        stream_(stream_id) {}

  /// Feeds the next element in stream order.
  void Feed(K k, P p) {
    if (!status_.ok()) return;  // build already failed; output is void
    auto it = index_.find(k);
    if (it != index_.end()) {
      used_ += growth_(p);
      absorb_(out_[it->second].second, std::move(p));
      return;
    }
    if (disk_down_ || used_ < quota_ || index_.empty()) {
      Admit(std::move(k), std::move(p));
      return;
    }
    if constexpr (kSpillable<std::pair<K, P>>) {
      Spill(k, p);
    } else {
      // Unserializable element type: stay in memory (documented fallback;
      // results are identical either way).
      Admit(std::move(k), std::move(p));
    }
  }

  /// First unrecoverable failure of this build's own IO stream; OK while
  /// healthy and after a successful disk-down drain.
  const Status& status() const { return status_; }

  /// Drains the spilled passes (if any) and returns the finished build in
  /// global first-occurrence order. Check status() before using the output.
  Out Finish() {
    if constexpr (kSpillable<std::pair<K, P>>) {
      // Flush BEFORE testing the loop condition: a pass whose spilled tail
      // never reached the chunk threshold lives only in pending_, with no
      // file yet.
      FlushPending();
      while (status_.ok() && file_ != nullptr) {
        // Steal this pass's spill and start a fresh one: elements re-fed
        // below may spill again (keys beyond the next quota tranche).
        std::unique_ptr<SpillFile> reading = std::move(file_);
        std::vector<Chunk> chunks = std::move(chunks_);
        chunks_.clear();
        index_.clear();
        used_ = 0;
        std::string buf;
        for (const Chunk& chunk : chunks) {
          const Status st = reading->ReadRun(
              chunk.offset, static_cast<std::size_t>(chunk.bytes),
              chunk.checksum, &buf, stats_);
          if (!st.ok()) {
            // Elements already read this pass were consumed into
            // accumulators; no exact re-feed exists. Fail typed.
            status_ = st;
            return std::move(out_);
          }
          const char* p = buf.data();
          const char* end = buf.data() + buf.size();
          for (uint32_t i = 0; i < chunk.count; ++i) {
            std::pair<K, P> kv = SpillSerde<std::pair<K, P>>::Read(&p, end);
            Feed(std::move(kv.first), std::move(kv.second));
          }
        }
        FlushPending();
      }
    }
    return std::move(out_);
  }

 private:
  struct Chunk {
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint32_t count = 0;
    uint64_t checksum = 0;  ///< HashBytes over the chunk, pre-write
  };

  void Admit(K&& k, P&& p) {
    used_ += EstimateSize(k) + EstimateSize(p);
    index_.emplace(k, out_.size());
    out_.emplace_back(std::move(k), init_(std::move(p)));
  }

  void Spill(const K& k, const P& p) {
    SpillSerde<K>::Write(k, &pending_);
    SpillSerde<P>::Write(p, &pending_);
    pending_count_ += 1;
    // Deterministic chunking: flush at a fixed threshold derived from the
    // quota alone (clamped so tiny quotas do not write per-element and huge
    // ones do not buffer unboundedly).
    const std::size_t threshold =
        std::clamp<std::size_t>(quota_, std::size_t{1} << 12,
                                std::size_t{1} << 20);
    if (pending_.size() >= threshold) FlushPending();
  }

  void FlushPending() {
    if (pending_count_ == 0 || !status_.ok()) return;
    if (file_ == nullptr) {
      file_ = std::make_unique<SpillFile>();
      file_->Arm(fp_, stream_);
    }
    Chunk chunk;
    chunk.bytes = pending_.size();
    chunk.count = pending_count_;
    chunk.checksum = HashBytes(pending_.data(), pending_.size());
    const Status st = file_->Write(pending_, &chunk.offset, stats_);
    if (!st.ok()) {
      HandleWriteFailure(st);
      return;
    }
    chunks_.push_back(chunk);
    stats_->spill_events += 1;
    stats_->spill_runs += 1;
    stats_->spilled_bytes += static_cast<double>(pending_.size());
    pending_.clear();
    pending_count_ = 0;
  }

  /// The disk refused a new chunk. With the in-memory fallback the build
  /// flips to disk-down mode and drains everything it spilled back into the
  /// live (now unbounded) build: chunks in write order, then the pending
  /// buffer — exactly the spilled stream's element order, so first
  /// occurrence and absorb order match the in-memory build bit for bit.
  void HandleWriteFailure(const Status& st) {
    const bool fallback =
        fp_ != nullptr ? fp_->policy().fallback_in_memory : true;
    if (!fallback) {
      status_ = st;
      return;
    }
    disk_down_ = true;
    if (stats_ != nullptr) stats_->inmemory_fallbacks += 1;
    std::unique_ptr<SpillFile> reading = std::move(file_);
    std::vector<Chunk> chunks = std::move(chunks_);
    chunks_.clear();
    std::string spilled = std::move(pending_);
    const uint32_t spilled_count = pending_count_;
    pending_.clear();
    pending_count_ = 0;
    std::string buf;
    for (const Chunk& chunk : chunks) {
      const Status rs = reading->ReadRun(
          chunk.offset, static_cast<std::size_t>(chunk.bytes), chunk.checksum,
          &buf, stats_);
      if (!rs.ok()) {
        // Disk is failing on the read side too: nothing left to fall back
        // on. Surface the read error (it names the corrupt/unreadable run).
        status_ = rs;
        return;
      }
      const char* p = buf.data();
      const char* end = buf.data() + buf.size();
      for (uint32_t i = 0; i < chunk.count; ++i) {
        std::pair<K, P> kv = SpillSerde<std::pair<K, P>>::Read(&p, end);
        Feed(std::move(kv.first), std::move(kv.second));
      }
    }
    const char* p = spilled.data();
    const char* end = spilled.data() + spilled.size();
    for (uint32_t i = 0; i < spilled_count; ++i) {
      std::pair<K, P> kv = SpillSerde<std::pair<K, P>>::Read(&p, end);
      Feed(std::move(kv.first), std::move(kv.second));
    }
  }

  const std::size_t quota_;
  Init init_;
  Absorb absorb_;
  Growth growth_;
  SpillStats* stats_;
  const FailpointRegistry* fp_;
  uint64_t stream_;

  std::unordered_map<K, std::size_t, Hasher> index_;  // key -> slot in out_
  Out out_;
  std::size_t used_ = 0;
  bool disk_down_ = false;  ///< write failed; admit everything from now on
  Status status_;           ///< sticky first unrecoverable failure

  // Current pass's spilled stream (elements of non-admitted keys, in order).
  std::string pending_;
  uint32_t pending_count_ = 0;
  std::unique_ptr<SpillFile> file_;
  std::vector<Chunk> chunks_;
};

/// Convenience entry point: aggregates one partition's (K, P) stream under
/// `quota` with the given callbacks. See BoundedAggregator.
template <typename K, typename P, typename Acc, typename Init, typename Absorb,
          typename Growth, typename Source>
std::vector<std::pair<K, Acc>> AggregatePartition(Source&& source,
                                                  std::size_t quota, Init init,
                                                  Absorb absorb, Growth growth,
                                                  SpillStats* stats) {
  BoundedAggregator<K, P, Acc, Init, Absorb, Growth> agg(
      quota, std::move(init), std::move(absorb), std::move(growth), stats);
  source(agg);
  return agg.Finish();
}

}  // namespace matryoshka::engine::external

#endif  // MATRYOSHKA_ENGINE_EXTERNAL_EXTERNAL_GROUP_H_
