#ifndef MATRYOSHKA_ENGINE_JOIN_H_
#define MATRYOSHKA_ENGINE_JOIN_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "engine/bag.h"
#include "engine/shuffle.h"

/// Binary operators of the flat engine: equi-joins (repartition and
/// broadcast physical implementations — Sec. 8.2 of the paper chooses
/// between these two at runtime), cogroup, and cartesian product.
///
/// Scale semantics: join outputs take the larger input scale (the join of a
/// data-sized bag with a key-unique, scale-1 side — the common tag join —
/// has data-sized output); Cartesian multiplies the scales.
namespace matryoshka::engine {

namespace internal {

/// Join partition-count resolution, Spark-style: an explicit request wins;
/// otherwise adopt the partitioner of an already-key-partitioned input
/// (left side preferred), else the engine default.
template <typename L, typename R>
int64_t ResolveJoinParallelism(Cluster* c, int64_t requested, const Bag<L>& l,
                               const Bag<R>& r) {
  if (requested > 0) return requested;
  if (l.key_partitions() > 0) return l.key_partitions();
  if (r.key_partitions() > 0) return r.key_partitions();
  return c->effective_parallelism();
}

/// Shuffles one join input onto `parts` key partitions, or reuses its
/// existing layout (charging only the scan, no network) when it is already
/// co-partitioned.
template <typename K, typename V>
typename Bag<std::pair<K, V>>::Partitions JoinSide(
    const Bag<std::pair<K, V>>& side, int64_t parts,
    const char* label = "join[side]") {
  if (AlreadyKeyPartitioned(side, parts)) {
    ChargeScanStage(side, 0.25, label);
    return side.partitions();
  }
  return ShuffleBy(
      side, parts,
      [&](const std::pair<K, V>& x) { return PartitionOfKey(x.first, parts); },
      0.25, label);
}

}  // namespace internal

/// Inner equi-join by shuffling both sides on the key, then hash-joining
/// each co-partition (build side = right). Inputs already partitioned on
/// the key with a matching partition count are not re-shuffled.
template <typename K, typename V, typename W>
Bag<std::pair<K, std::pair<V, W>>> RepartitionJoin(
    const Bag<std::pair<K, V>>& left, const Bag<std::pair<K, W>>& right,
    int64_t num_partitions = -1) {
  using Out = std::pair<K, std::pair<V, W>>;
  MATRYOSHKA_CHECK(left.cluster() == right.cluster());
  Cluster* c = left.cluster();
  if (!c->ok()) return Bag<Out>(c);
  // Joins are forcing points for both inputs' pending fused chains.
  left.Force();
  right.Force();
  const int64_t parts =
      internal::ResolveJoinParallelism(c, num_partitions, left, right);
  const double out_scale = std::max(left.scale(), right.scale());

  auto ls = internal::JoinSide(left, parts, "join[left]");
  auto rs = internal::JoinSide(right, parts, "join[right]");
  const double build_bytes =
      RealBagBytes(right) / static_cast<double>(c->planning_machines());
  const double spill = c->SpillFactor(build_bytes);

  std::vector<double> costs(static_cast<std::size_t>(parts));
  for (int64_t i = 0; i < parts; ++i) {
    costs[static_cast<std::size_t>(i)] =
        spill * c->ComputeCost(static_cast<double>(ls[i].size()) *
                                       left.scale() +
                                   static_cast<double>(rs[i].size()) *
                                       right.scale(),
                               1.0);
  }
  c->AccrueStage(costs, /*lineage_depth=*/1,
                 StageContext{"repartitionJoin", spill});

  typename Bag<Out>::Partitions out(static_cast<std::size_t>(parts));
  internal::GuardedParallelFor(
      c, static_cast<std::size_t>(parts), [&](std::size_t i) {
        std::unordered_map<K, std::vector<W>, Hasher> build;
        build.reserve(rs[i].size());
        for (const auto& [k, w] : rs[i]) build[k].push_back(w);
        for (const auto& [k, v] : ls[i]) {
          auto it = build.find(k);
          if (it == build.end()) continue;
          for (const auto& w : it->second) {
            out[i].emplace_back(k, std::pair<V, W>(v, w));
          }
        }
      });
  return Bag<Out>(c, std::move(out), out_scale, parts);
}

/// Inner equi-join that broadcasts the (small) right side to every machine
/// and probes it from the left side without any shuffle. Fails with
/// OutOfMemory when the broadcast build table does not fit on one machine —
/// unless degraded re-planning is on, in which case a build side that no
/// longer fits the (possibly shrunken) broadcast budget falls back to a
/// repartition join instead of poisoning the run.
template <typename K, typename V, typename W>
Bag<std::pair<K, std::pair<V, W>>> BroadcastJoin(
    const Bag<std::pair<K, V>>& left, const Bag<std::pair<K, W>>& right) {
  using Out = std::pair<K, std::pair<V, W>>;
  MATRYOSHKA_CHECK(left.cluster() == right.cluster());
  Cluster* c = left.cluster();
  if (!c->ok()) return Bag<Out>(c);
  left.Force();   // forcing point for both inputs
  right.Force();
  const double out_scale = std::max(left.scale(), right.scale());

  // Hash tables over the broadcast data cost noticeably more than the raw
  // payload; 2x is a conservative stand-in for JVM object overhead.
  const double build_bytes = RealBagBytes(right) * 2.0;
  if (c->config().recovery.degraded_replanning) {
    Status st = c->TryAccrueBroadcast(build_bytes, "broadcastJoin");
    if (st.IsOutOfMemory()) {
      c->NotePlanFallback("broadcastJoin -> repartitionJoin");
      return RepartitionJoin(left, right);
    }
    if (!c->ok()) return Bag<Out>(c);
  } else {
    c->AccrueBroadcast(build_bytes, "broadcastJoin");
    if (!c->ok()) return Bag<Out>(c);
  }

  // The broadcast build table stays single-threaded: it is one global hash
  // map over the (small by contract) right side; per-partition probe work
  // below is where the real time goes, and that runs on the pool.
  std::unordered_map<K, std::vector<W>, Hasher> build;
  build.reserve(static_cast<std::size_t>(right.Size()));
  for (const auto& part : right.partitions()) {
    for (const auto& [k, w] : part) build[k].push_back(w);
  }
  // Every probe task pays for building its hash table over the broadcast
  // data (Spark deserializes the broadcast per executor): charge the probe
  // scan plus a per-task build of right.RealSize() elements.
  {
    std::vector<double> costs = internal::ScanCosts(left, 1.0);
    const double build_cost = c->ComputeCost(right.RealSize(), 1.0);
    for (auto& cost : costs) cost += build_cost;
    c->mutable_metrics().elements_processed +=
        static_cast<int64_t>(left.RealSize());
    c->AccrueStage(costs, left.lineage_depth(),
                   StageContext{"broadcastJoin[probe]"});
  }
  typename Bag<Out>::Partitions out(left.partitions().size());
  internal::GuardedParallelFor(c, left.partitions().size(), [&](std::size_t i) {
    for (const auto& [k, v] : left.partitions()[i]) {
      auto it = build.find(k);
      if (it == build.end()) continue;
      for (const auto& w : it->second) {
        out[i].emplace_back(k, std::pair<V, W>(v, w));
      }
    }
  });
  // A broadcast join is map-side: the left layout (and partitioner) stays,
  // and so does the left lineage chain (no stage boundary).
  return internal::MaybeAutoCheckpoint(Bag<Out>(
      c, std::move(out), out_scale, left.key_partitions(),
      left.lineage_depth() + 1));
}

/// Left outer equi-join (repartition implementation): every left element
/// appears once per matching right element, or once with nullopt when the
/// key has no match. Used by lifted count/aggregations to produce results
/// for empty inner bags (Sec. 4.4).
template <typename K, typename V, typename W>
Bag<std::pair<K, std::pair<V, std::optional<W>>>> LeftOuterJoin(
    const Bag<std::pair<K, V>>& left, const Bag<std::pair<K, W>>& right,
    int64_t num_partitions = -1) {
  using Out = std::pair<K, std::pair<V, std::optional<W>>>;
  MATRYOSHKA_CHECK(left.cluster() == right.cluster());
  Cluster* c = left.cluster();
  if (!c->ok()) return Bag<Out>(c);
  left.Force();   // forcing point for both inputs
  right.Force();
  const int64_t parts =
      internal::ResolveJoinParallelism(c, num_partitions, left, right);
  const double out_scale = std::max(left.scale(), right.scale());

  auto ls = internal::JoinSide(left, parts, "leftOuterJoin[left]");
  auto rs = internal::JoinSide(right, parts, "leftOuterJoin[right]");
  std::vector<double> costs(static_cast<std::size_t>(parts));
  for (int64_t i = 0; i < parts; ++i) {
    costs[static_cast<std::size_t>(i)] = c->ComputeCost(
        static_cast<double>(ls[i].size()) * left.scale() +
            static_cast<double>(rs[i].size()) * right.scale(),
        1.0);
  }
  c->AccrueStage(costs, /*lineage_depth=*/1, StageContext{"leftOuterJoin"});

  typename Bag<Out>::Partitions out(static_cast<std::size_t>(parts));
  internal::GuardedParallelFor(
      c, static_cast<std::size_t>(parts), [&](std::size_t i) {
        std::unordered_map<K, std::vector<W>, Hasher> build;
        build.reserve(rs[i].size());
        for (const auto& [k, w] : rs[i]) build[k].push_back(w);
        for (const auto& [k, v] : ls[i]) {
          auto it = build.find(k);
          if (it == build.end()) {
            out[i].emplace_back(
                k, std::pair<V, std::optional<W>>(v, std::nullopt));
          } else {
            for (const auto& w : it->second) {
              out[i].emplace_back(k, std::pair<V, std::optional<W>>(v, w));
            }
          }
        }
      });
  return Bag<Out>(c, std::move(out), out_scale, parts);
}

/// Full cogroup: for every key present on either side, the pair of value
/// lists. Groups materialize per task, so the same memory check as
/// GroupByKey applies.
template <typename K, typename V, typename W>
Bag<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> CoGroup(
    const Bag<std::pair<K, V>>& left, const Bag<std::pair<K, W>>& right,
    int64_t num_partitions = -1) {
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  MATRYOSHKA_CHECK(left.cluster() == right.cluster());
  Cluster* c = left.cluster();
  if (!c->ok()) return Bag<Out>(c);
  left.Force();   // forcing point for both inputs
  right.Force();
  const int64_t parts =
      internal::ResolveJoinParallelism(c, num_partitions, left, right);
  const double out_scale = std::max(left.scale(), right.scale());

  auto ls = internal::JoinSide(left, parts, "cogroup[left]");
  auto rs = internal::JoinSide(right, parts, "cogroup[right]");
  std::vector<double> costs(static_cast<std::size_t>(parts));
  for (int64_t i = 0; i < parts; ++i) {
    costs[static_cast<std::size_t>(i)] = c->ComputeCost(
        static_cast<double>(ls[i].size()) * left.scale() +
            static_cast<double>(rs[i].size()) * right.scale(),
        0.5);
  }
  c->AccrueStage(costs, /*lineage_depth=*/1, StageContext{"cogroup"});

  // Group build, parallel across co-partitions, emitting keys in
  // first-occurrence order over the left-then-right element stream (the
  // canonical keyed-build order; see external/external_group.h). Under a
  // real memory budget, elements of non-admitted keys — wrapped as
  // (optional<V>, optional<W>) so one stream carries both sides — spill and
  // re-feed in later passes; group contents stay in exact arrival order for
  // any budget. Per-partition maxima are reduced on the driver so the
  // memory check is order-independent.
  using Side = std::pair<std::optional<V>, std::optional<W>>;
  using Groups = std::pair<std::vector<V>, std::vector<W>>;
  typename Bag<Out>::Partitions out(static_cast<std::size_t>(parts));
  std::vector<double> max_bytes(static_cast<std::size_t>(parts), 0.0);
  std::vector<external::SpillStats> spill_stats(
      static_cast<std::size_t>(parts));
  std::vector<Status> build_status(static_cast<std::size_t>(parts));
  const std::size_t quota =
      internal::WorkerQuota(c, static_cast<std::size_t>(parts));
  internal::GuardedParallelFor(
      c, static_cast<std::size_t>(parts), [&](std::size_t i) {
    auto push = [](Groups& g, Side&& s) {
      if (s.first.has_value()) {
        g.first.push_back(std::move(*s.first));
      } else {
        g.second.push_back(std::move(*s.second));
      }
    };
    auto init = [&push](Side&& s) {
      Groups g;
      push(g, std::move(s));
      return g;
    };
    auto growth = [](const Side& s) {
      return s.first.has_value() ? EstimateSize(*s.first)
                                 : EstimateSize(*s.second);
    };
    external::BoundedAggregator<K, Side, Groups, decltype(init),
                                decltype(push), decltype(growth)>
        agg(quota, init, push, growth, &spill_stats[i], c->failpoints(),
            /*stream_id=*/i);
    for (auto& [k, v] : ls[i]) {
      agg.Feed(k, Side(std::move(v), std::nullopt));
    }
    for (auto& [k, w] : rs[i]) {
      agg.Feed(k, Side(std::nullopt, std::move(w)));
    }
    out[i] = agg.Finish();
    build_status[i] = agg.status();
    for (const auto& [k, g] : out[i]) {
      double bytes = static_cast<double>(sizeof(Out));
      if (!g.first.empty()) {
        bytes += EstimateSize(g.first.front()) *
                 static_cast<double>(g.first.size()) * left.scale();
      }
      if (!g.second.empty()) {
        bytes += EstimateSize(g.second.front()) *
                 static_cast<double>(g.second.size()) * right.scale();
      }
      max_bytes[i] = std::max(max_bytes[i], bytes);
    }
  });
  external::SpillStats group_spill;
  for (const auto& s : spill_stats) group_spill.Add(s);
  c->NoteRealSpill(group_spill, "cogroup");
  for (const Status& st : build_status) {
    if (!st.ok()) {
      c->Fail(st);
      return Bag<Out>(c);
    }
  }
  double max_group_bytes = 0.0;
  for (double b : max_bytes) max_group_bytes = std::max(max_group_bytes, b);
  c->CheckTaskMemory(max_group_bytes, "cogroup");
  if (!c->ok()) return Bag<Out>(c);
  return Bag<Out>(c, std::move(out), out_scale, parts);
}

/// Cartesian product, implemented by broadcasting the right side (which
/// must therefore fit on one machine). The output scale is the product of
/// the input scales (|L_real| x |R_real| pairs).
template <typename A, typename B>
Bag<std::pair<A, B>> Cartesian(const Bag<A>& left, const Bag<B>& right) {
  using Out = std::pair<A, B>;
  MATRYOSHKA_CHECK(left.cluster() == right.cluster());
  Cluster* c = left.cluster();
  if (!c->ok()) return Bag<Out>(c);
  left.Force();   // forcing point for both inputs
  right.Force();
  const double out_scale = left.scale() * right.scale();
  c->AccrueBroadcast(RealBagBytes(right), "cartesian");
  if (!c->ok()) return Bag<Out>(c);

  std::vector<B> rhs = right.ToVector();
  std::vector<double> costs;
  costs.reserve(left.partitions().size());
  for (const auto& part : left.partitions()) {
    costs.push_back(c->ComputeCost(
        static_cast<double>(part.size() * rhs.size()) * out_scale, 0.5));
  }
  c->AccrueStage(costs, left.lineage_depth(), StageContext{"cartesian"});

  typename Bag<Out>::Partitions out(left.partitions().size());
  internal::GuardedParallelFor(c, left.partitions().size(), [&](std::size_t i) {
    out[i].reserve(left.partitions()[i].size() * rhs.size());
    for (const auto& a : left.partitions()[i]) {
      for (const auto& b : rhs) out[i].emplace_back(a, b);
    }
  });
  return Bag<Out>(c, std::move(out), out_scale);
}

}  // namespace matryoshka::engine

#endif  // MATRYOSHKA_ENGINE_JOIN_H_
