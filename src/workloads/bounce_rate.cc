#include "workloads/bounce_rate.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/matryoshka.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::workloads {

namespace {

using datagen::Visit;
using engine::Bag;
using engine::Cluster;

using Ip = int64_t;
using Day = int64_t;

/// Sequential bounce rate of one group of IPs (the original, unlifted UDF of
/// Listing 1): |{visitors with exactly one visit}| / |distinct visitors|.
double BounceRateOfGroup(const std::vector<Ip>& ips) {
  std::unordered_map<Ip, int64_t> counts;
  counts.reserve(ips.size());
  for (Ip ip : ips) counts[ip]++;
  if (counts.empty()) return 0.0;
  int64_t bounces = 0;
  for (const auto& [ip, c] : counts) {
    if (c == 1) ++bounces;
  }
  return static_cast<double>(bounces) / static_cast<double>(counts.size());
}

}  // namespace

BounceRateResult BounceRateMatryoshka(Cluster* cluster,
                                      const Bag<Visit>& visits,
                                      core::OptimizerOptions options) {
  using core::BinaryScalarOp;
  using core::LiftedCount;
  using core::LiftedDistinct;
  using core::LiftedFilter;
  using core::LiftedMap;
  using core::LiftedReduceByKey;

  // Listing 2 line 3: groupByKeyIntoNestedBag.
  auto nested = core::GroupByKeyIntoNestedBag(visits, options);

  // Listing 2 lines 5-10, the lifted UDF (executed once over all days).
  auto result = core::MapWithLiftedUdf(
      nested, [&](const core::LiftingContext& ctx,
                  const core::InnerScalar<Day>& days,
                  const core::InnerBag<Ip>& group) {
        (void)ctx;
        (void)days;
        // val countsPerIP = group.map((_, 1)).reduceByKey(_+_)
        auto counts_per_ip = LiftedReduceByKey(
            LiftedMap(group,
                      [](Ip ip) { return std::pair<Ip, int64_t>(ip, 1); }),
            [](int64_t a, int64_t b) { return a + b; });
        // val numBounces = countsPerIP.filter(_._2 == 1).count()
        auto num_bounces = LiftedCount(LiftedFilter(
            counts_per_ip,
            [](const std::pair<Ip, int64_t>& p) { return p.second == 1; }));
        // val numTotalVisitors = group.distinct().count()
        auto num_total = LiftedCount(LiftedDistinct(group));
        // val bounceRate = binaryScalarOp(numBounces, numTotal)(_ / _)
        return BinaryScalarOp(num_bounces, num_total,
                              [](int64_t b, int64_t t) {
                                return t == 0 ? 0.0
                                              : static_cast<double>(b) /
                                                    static_cast<double>(t);
                              });
      });

  auto rates = engine::Collect(core::ZipWithKeys(nested.keys(), result));
  return FinishRun<Day, double>(cluster, std::move(rates));
}

BounceRateResult BounceRateOuterParallel(Cluster* cluster,
                                         const Bag<Visit>& visits) {
  auto grouped =
      engine::GroupByKey(visits, /*num_partitions=*/-1,
                         /*group_expansion=*/kBounceRateGroupExpansion);
  auto rates_bag = baselines::ProcessGroupsSequentially(
      grouped,
      [](const Day&, const std::vector<Ip>& ips) {
        return BounceRateOfGroup(ips);
      },
      // Sequential UDF passes: count per IP, scan for bounces, distinct.
      [](const Day&, const std::vector<Ip>& ips) {
        return static_cast<int64_t>(3 * ips.size());
      },
      kBounceRateGroupExpansion);
  auto rates = engine::Collect(rates_bag);
  return FinishRun<Day, double>(cluster, std::move(rates));
}

BounceRateResult BounceRateInnerParallel(Cluster* cluster,
                                         const Bag<Visit>& visits) {
  std::vector<std::pair<Day, double>> rates;
  baselines::ForEachGroupInnerParallel(
      visits, [&](const Day& day, const Bag<Ip>& group) {
        // Per-group jobs use a modest tuned parallelism (a real user would
        // not run a 1-day job with cluster-wide partition counts).
        constexpr int64_t kGroupParallelism = 32;
        auto counts = engine::ReduceByKey(
            engine::Map(group,
                        [](Ip ip) { return std::pair<Ip, int64_t>(ip, 1); }),
            [](int64_t a, int64_t b) { return a + b; }, kGroupParallelism);
        const int64_t bounces = engine::Count(engine::Filter(
            counts,
            [](const std::pair<Ip, int64_t>& p) { return p.second == 1; }));
        const int64_t total =
            engine::Count(engine::Distinct(group, kGroupParallelism));
        rates.emplace_back(day, total == 0 ? 0.0
                                           : static_cast<double>(bounces) /
                                                 static_cast<double>(total));
      });
  if (!cluster->ok()) rates.clear();
  return FinishRun<Day, double>(cluster, std::move(rates));
}

BounceRateResult BounceRateDiqlLike(Cluster* cluster,
                                    const Bag<Visit>& visits,
                                    baselines::DiqlLikeOptions diql_options) {
  // DIQL could not flatten this program and fell back to the outer-parallel
  // plan (Sec. 9.4), with generated (unfused) per-group code.
  auto grouped = engine::GroupByKey(visits, /*num_partitions=*/-1,
                                    diql_options.group_expansion);
  auto rates_bag = baselines::ProcessGroupsSequentially(
      grouped,
      [](const Day&, const std::vector<Ip>& ips) {
        return BounceRateOfGroup(ips);
      },
      [](const Day&, const std::vector<Ip>& ips) {
        return static_cast<int64_t>(3 * ips.size());
      },
      diql_options.group_expansion, diql_options.interpretation_overhead);
  auto rates = engine::Collect(rates_bag);
  return FinishRun<Day, double>(cluster, std::move(rates));
}

BounceRateResult RunBounceRate(Cluster* cluster, const Bag<Visit>& visits,
                               Variant variant,
                               core::OptimizerOptions options) {
  switch (variant) {
    case Variant::kMatryoshka:
      return BounceRateMatryoshka(cluster, visits, options);
    case Variant::kOuterParallel:
      return BounceRateOuterParallel(cluster, visits);
    case Variant::kInnerParallel:
      return BounceRateInnerParallel(cluster, visits);
    case Variant::kDiqlLike:
      return BounceRateDiqlLike(cluster, visits);
  }
  MATRYOSHKA_CHECK(false) << "unknown variant";
  return {};
}

std::vector<std::pair<int64_t, double>> BounceRateReference(
    const std::vector<Visit>& visits) {
  std::map<Day, std::vector<Ip>> by_day;
  for (const auto& [day, ip] : visits) by_day[day].push_back(ip);
  std::vector<std::pair<Day, double>> out;
  out.reserve(by_day.size());
  for (const auto& [day, ips] : by_day) {
    out.emplace_back(day, BounceRateOfGroup(ips));
  }
  return out;
}

}  // namespace matryoshka::workloads
