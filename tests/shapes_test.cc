// Integration tests pinning the paper's headline QUALITATIVE results at a
// scale small enough for CI. Each test is a miniature of one evaluation
// claim (Sec. 9); the full-size versions live in bench/. If one of these
// breaks, a figure's shape broke.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/bounce_rate.h"
#include "workloads/kmeans.h"
#include "workloads/pagerank.h"

namespace matryoshka::workloads {
namespace {

using engine::Cluster;
using engine::ClusterConfig;
using engine::Parallelize;

/// A miniature of the paper's cluster: 8 machines x 8 cores, 4 GB each,
/// with data scaled to stand for `target_gb` of real input.
ClusterConfig MiniPaperCluster(double target_gb, int64_t elements,
                               double bytes_per_element) {
  ClusterConfig cfg;
  cfg.num_machines = 8;
  cfg.cores_per_machine = 8;
  cfg.memory_per_machine_bytes = 4.0 * (1ULL << 30);
  cfg.default_parallelism = 3 * 8 * 8;
  cfg.data_scale =
      target_gb * (1ULL << 30) / bytes_per_element / elements;
  return cfg;
}

double RunKMeansVariant(Variant variant, int64_t groups, int64_t points,
                        const ClusterConfig& cfg) {
  Cluster cluster(cfg);
  auto data = datagen::GenerateGroupedPoints(points, groups, 3, 5);
  KMeansParams params;
  params.k = 3;
  params.max_iterations = 6;
  params.epsilon = -1.0;
  auto bag = Parallelize(&cluster, data);
  auto result = RunKMeans(&cluster, bag, params, variant);
  EXPECT_TRUE(result.ok()) << VariantName(variant) << ": "
                           << result.status.ToString();
  return result.time_s();
}

TEST(ShapeTest, Fig1CrossoverAndMatryoshkaDominance) {
  constexpr int64_t kPoints = 1 << 14;
  auto cfg = MiniPaperCluster(2.0, kPoints,
                              sizeof(std::pair<int64_t, datagen::Point>));
  // Few groups: outer-parallel starves; inner-parallel is fine.
  const double outer_few = RunKMeansVariant(Variant::kOuterParallel, 2,
                                            kPoints, cfg);
  const double inner_few = RunKMeansVariant(Variant::kInnerParallel, 2,
                                            kPoints, cfg);
  EXPECT_GT(outer_few, 3.0 * inner_few);
  // Many groups: inner-parallel drowns in job overhead; outer is fine.
  const double outer_many = RunKMeansVariant(Variant::kOuterParallel, 256,
                                             kPoints, cfg);
  const double inner_many = RunKMeansVariant(Variant::kInnerParallel, 256,
                                             kPoints, cfg);
  EXPECT_GT(inner_many, 3.0 * outer_many);
  // Matryoshka beats or roughly matches the best workaround at BOTH ends
  // (at this miniature scale its fixed per-stage costs weigh relatively
  // more than in the full-size Fig. 1 run, hence the loose factor).
  const double m_few =
      RunKMeansVariant(Variant::kMatryoshka, 2, kPoints, cfg);
  const double m_many =
      RunKMeansVariant(Variant::kMatryoshka, 256, kPoints, cfg);
  EXPECT_LT(m_few, 1.5 * inner_few);
  EXPECT_LT(m_many, 2.5 * outer_many);
  // And it is far better than the WRONG workaround at each end.
  EXPECT_LT(4.0 * m_few, outer_few);
  EXPECT_LT(4.0 * m_many, inner_many);
}

TEST(ShapeTest, WeakScalingMatryoshkaStaysFlat) {
  constexpr int64_t kPoints = 1 << 14;
  auto cfg = MiniPaperCluster(2.0, kPoints,
                              sizeof(std::pair<int64_t, datagen::Point>));
  const double at4 = RunKMeansVariant(Variant::kMatryoshka, 4, kPoints, cfg);
  const double at128 =
      RunKMeansVariant(Variant::kMatryoshka, 128, kPoints, cfg);
  // "Nearly constant": within 2x across a 32x change in inner computations.
  EXPECT_LT(at128, 2.0 * at4);
  EXPECT_LT(at4, 2.0 * at128);
}

TEST(ShapeTest, ScaleOutMatryoshkaSpeedsUpWorkaroundsDoNot) {
  constexpr int64_t kPoints = 1 << 14;
  auto run = [&](Variant v, int machines) {
    auto cfg = MiniPaperCluster(2.0, kPoints,
                                sizeof(std::pair<int64_t, datagen::Point>));
    cfg.num_machines = machines;
    cfg.default_parallelism = 3 * machines * cfg.cores_per_machine;
    return RunKMeansVariant(v, 32, kPoints, cfg);
  };
  const double m2 = run(Variant::kMatryoshka, 2);
  const double m8 = run(Variant::kMatryoshka, 8);
  EXPECT_GT(m2, 2.0 * m8);  // near-linear scale-out
  const double outer2 = run(Variant::kOuterParallel, 2);
  const double outer8 = run(Variant::kOuterParallel, 8);
  EXPECT_LT(outer2, 1.5 * outer8);  // flat: capped at 32 groups
}

TEST(ShapeTest, SkewKillsOuterParallelNotMatryoshka) {
  constexpr int64_t kVisits = 1 << 14;
  auto cfg = MiniPaperCluster(12.0, kVisits, sizeof(datagen::Visit));
  auto skewed = datagen::GenerateVisits(kVisits, 256, 1.1, 0.5, 3);
  auto uniform = datagen::GenerateVisits(kVisits, 256, 0.0, 0.5, 3);

  Cluster c1(cfg);
  auto r1 = BounceRateOuterParallel(&c1, Parallelize(&c1, skewed));
  EXPECT_TRUE(r1.status.IsOutOfMemory());

  Cluster c2(cfg), c3(cfg);
  auto m_skew = BounceRateMatryoshka(&c2, Parallelize(&c2, skewed));
  auto m_uni = BounceRateMatryoshka(&c3, Parallelize(&c3, uniform));
  ASSERT_TRUE(m_skew.ok());
  ASSERT_TRUE(m_uni.ok());
  // Sec. 9.5: within 15% of the unskewed run. Allow 25% at mini scale.
  EXPECT_LT(m_skew.time_s(), 1.25 * m_uni.time_s());
  EXPECT_GT(m_skew.time_s(), 0.75 * m_uni.time_s());
}

TEST(ShapeTest, JobCountsAreTheMechanism) {
  // The causal claim behind every figure: Matryoshka's job count depends on
  // the iteration count only; inner-parallel's multiplies by the number of
  // inner computations.
  constexpr int64_t kEdges = 1 << 13;
  auto cfg = MiniPaperCluster(1.0, kEdges,
                              sizeof(std::pair<int64_t, datagen::Edge>));
  PageRankParams params;
  params.iterations = 4;
  for (int64_t groups : {8, 64}) {
    auto data = datagen::GenerateGroupedEdges(kEdges, groups, 32, 0.0, 7);
    Cluster cm(cfg), ci(cfg);
    auto m = PageRankMatryoshka(&cm, Parallelize(&cm, data), params);
    auto i = PageRankInnerParallel(&ci, Parallelize(&ci, data), params);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(i.ok());
    EXPECT_LE(m.metrics.jobs, params.iterations + 4);
    EXPECT_GE(i.metrics.jobs, groups * params.iterations);
  }
}

TEST(ShapeTest, OptimizerNeverLosesBadlyOnJoins) {
  // Sec. 9.6's summary: the optimizer's choice is never much worse than
  // the better forced strategy, at either end of the sweep.
  constexpr int64_t kEdges = 1 << 13;
  auto cfg = MiniPaperCluster(4.0, kEdges,
                              sizeof(std::pair<int64_t, datagen::Edge>));
  PageRankParams params;
  params.iterations = 4;
  for (int64_t groups : {4, 256}) {
    auto data = datagen::GenerateGroupedEdges(
        kEdges, groups, std::max<int64_t>(16, 4096 / groups), 0.0, 9);
    double times[3];
    int idx = 0;
    for (auto strategy :
         {core::JoinStrategy::kAuto, core::JoinStrategy::kBroadcast,
          core::JoinStrategy::kRepartition}) {
      Cluster c(cfg);
      core::OptimizerOptions opts;
      opts.join_strategy = strategy;
      auto r = PageRankMatryoshka(&c, Parallelize(&c, data), params, opts);
      ASSERT_TRUE(r.ok());
      times[idx++] = r.time_s();
    }
    const double best = std::min(times[1], times[2]);
    EXPECT_LT(times[0], 1.3 * best) << groups << " groups";
  }
}

}  // namespace
}  // namespace matryoshka::workloads
