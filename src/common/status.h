#ifndef MATRYOSHKA_COMMON_STATUS_H_
#define MATRYOSHKA_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace matryoshka {

/// Machine-readable error categories used across the library. Mirrors the
/// Arrow/RocksDB convention of a small closed set of codes plus a free-form
/// message.
enum class StatusCode {
  kOk = 0,
  kOutOfMemory,
  kInvalidArgument,
  kNotImplemented,
  kUnsupported,
  kInternal,
  kCancelled,
  /// A simulated task exhausted its retry budget (fault injection). Distinct
  /// from kOutOfMemory so callers can tell recoverable-but-exhausted task
  /// failures apart from deterministic memory-model failures.
  kTaskFailed,
  /// A run blew the RecoveryPolicy's per-attempt deadline on the simulated
  /// clock. Like kTaskFailed it is retryable at the driver level
  /// (engine::RetryableForDriver), unlike the deterministic memory failures.
  kDeadlineExceeded,
  /// The serving layer refused to admit a request (queue depth or in-flight
  /// bound reached), or a real resource (spill disk: ENOSPC) ran out.
  /// Nothing retried inside the process can help; the caller may retry
  /// later or shed load.
  kResourceExhausted,
  /// A real IO operation (spill pwrite/pread) failed after exhausting the
  /// bounded retry budget. Driver-retryable: a re-run (fresh failpoint
  /// epoch on injected faults; fresh kernel weather on genuine ones) may
  /// succeed.
  kIOError,
  /// A spill run's checksum did not match on merge-on-read: the bytes on
  /// disk are not the bytes written. Never surfaced as silent wrong data;
  /// driver-retryable like kIOError (the rewritten runs verify fresh).
  kDataCorruption,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Out of memory", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// The success path stores no allocation: an OK Status is two words. Error
/// statuses carry a code and a message. Statuses are cheap to copy.
///
/// This library does not throw exceptions across API boundaries; every
/// fallible operation returns a Status or a Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code),
        msg_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<const std::string>(std::move(msg))) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status TaskFailed(std::string msg) {
    return Status(StatusCode::kTaskFailed, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DataCorruption(std::string msg) {
    return Status(StatusCode::kDataCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsTaskFailed() const { return code_ == StatusCode::kTaskFailed; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsDataCorruption() const {
    return code_ == StatusCode::kDataCorruption;
  }

  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return msg_ ? *msg_ : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message() == b.message();
  }

 private:
  StatusCode code_;
  std::shared_ptr<const std::string> msg_;
};

/// Holder of either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Access to the value of a non-OK result aborts in
/// debug builds; callers must check ok() first (or use ValueOr).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success path), per the Arrow idiom.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `alternative` if this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace matryoshka

/// Propagates a non-OK status out of the current function.
#define MATRYOSHKA_RETURN_NOT_OK(expr)                 \
  do {                                                 \
    ::matryoshka::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                         \
  } while (false)

/// Evaluates a Result-returning expression; on error returns the status,
/// otherwise moves the value into `lhs`.
#define MATRYOSHKA_ASSIGN_OR_RETURN(lhs, rexpr)        \
  auto MATRYOSHKA_CONCAT_(_res_, __LINE__) = (rexpr);  \
  if (!MATRYOSHKA_CONCAT_(_res_, __LINE__).ok())       \
    return MATRYOSHKA_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(MATRYOSHKA_CONCAT_(_res_, __LINE__)).value()

#define MATRYOSHKA_CONCAT_IMPL_(a, b) a##b
#define MATRYOSHKA_CONCAT_(a, b) MATRYOSHKA_CONCAT_IMPL_(a, b)

#endif  // MATRYOSHKA_COMMON_STATUS_H_
