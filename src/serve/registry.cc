#include "serve/registry.h"

#include <utility>

#include "common/hash.h"
#include "engine/bag.h"
#include "lang/lowering_phase.h"
#include "lang/parsing_phase.h"

namespace matryoshka::serve {

Status PlanRegistry::Register(PlanSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("PlanRegistry: plan name must not be empty");
  }
  if (!spec.body) {
    return Status::InvalidArgument("PlanRegistry: plan '" + spec.name +
                                   "' has no body");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Take the key before moving the spec: argument evaluation order is
  // unspecified, so `try_emplace(spec.name, ...move(spec)...)` may read a
  // moved-from name.
  std::string name = spec.name;
  auto [it, inserted] = plans_.try_emplace(
      std::move(name), std::make_unique<PlanSpec>(std::move(spec)));
  if (!inserted) {
    return Status::InvalidArgument("PlanRegistry: plan '" + it->first +
                                   "' is already registered");
  }
  return Status::OK();
}

Result<const PlanSpec*> PlanRegistry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(name);
  if (it == plans_.end()) {
    std::string known;
    for (const auto& [n, spec] : plans_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::InvalidArgument(
        "PlanRegistry: unknown plan '" + name + "' (registered: " +
        (known.empty() ? "<none>" : known) + ")");
  }
  return it->second.get();
}

std::vector<std::string> PlanRegistry::PlanNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(plans_.size());
  for (const auto& [name, spec] : plans_) names.push_back(name);
  return names;
}

std::size_t PlanRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

Result<PlanSpec> MakeLangPlanSpec(std::string name,
                                  const lang::Program& surface,
                                  std::vector<LangSource> sources,
                                  std::string description) {
  // Compile time: rewrite the surface program into the explicitly
  // nested-parallel plan once; every request lowers the same plan.
  lang::ParsingPhase parser;
  Result<lang::Program> rewritten = parser.Rewrite(surface);
  if (!rewritten.ok()) return rewritten.status();
  auto plan = std::make_shared<const lang::Program>(std::move(rewritten).value());

  uint64_t input_fp = 0x6c616e672d696eULL;  // "lang-in"
  for (const LangSource& src : sources) {
    input_fp = Mix64(input_fp ^ Mix64(std::hash<std::string>{}(src.name)));
    input_fp = Mix64(input_fp ^ static_cast<uint64_t>(src.partitions));
    if (src.rows != nullptr) {
      for (const lang::Value& row : *src.rows) {
        input_fp = Mix64(input_fp ^ static_cast<uint64_t>(row.HashValue()));
      }
    }
  }

  PlanSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.input_fingerprint = input_fp;
  spec.body = [plan, sources = std::move(sources)](
                  engine::Cluster* cluster,
                  const PlanParams& params) -> PlanOutput {
    lang::LoweringPhase lowering(cluster);
    for (const LangSource& src : sources) {
      std::vector<lang::Value> rows =
          src.rows != nullptr ? *src.rows : std::vector<lang::Value>{};
      lowering.BindSource(src.name, engine::Parallelize(cluster, std::move(rows),
                                                        src.partitions,
                                                        /*scale=*/1.0));
    }
    // Runtime parameter binding: each param becomes a single-element
    // source bag named after it, usable via Source("<param>") in the
    // program (e.g. unioned in, or consumed by a lifted UDF).
    for (const auto& [key, value] : params.entries()) {
      lowering.BindSource(
          key, engine::Parallelize(cluster, std::vector<lang::Value>{value},
                                   /*num_partitions=*/1, /*scale=*/1.0));
    }
    Result<std::vector<lang::Value>> rows = lowering.Execute(*plan);
    PlanOutput out;
    if (!rows.ok()) {
      // Surface the lowering failure through the cluster's sticky status
      // so the driver reports it like any engine failure.
      if (cluster->ok()) cluster->Fail(rows.status());
      return out;
    }
    out.key_partitions = 0;
    out.partitions.push_back(std::move(rows).value());
    return out;
  };
  return spec;
}

}  // namespace matryoshka::serve
