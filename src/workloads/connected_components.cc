#include "workloads/connected_components.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::workloads {

namespace {
using datagen::Edge;
using engine::Bag;
using Vertex = int64_t;
using Label = int64_t;
}  // namespace

Bag<std::pair<Label, Vertex>> ConnectedComponents(const Bag<Edge>& edges,
                                                  int64_t max_iterations) {
  engine::Cluster* c = edges.cluster();
  auto vertices = engine::Distinct(engine::FlatMap(edges, [](const Edge& e) {
    return std::vector<Vertex>{e.src, e.dst};
  }));
  auto edges_by_src = engine::Map(edges, [](const Edge& e) {
    return std::pair<Vertex, Vertex>(e.src, e.dst);
  });
  // Every vertex starts labeled with itself; labels propagate along edges
  // and each vertex keeps the minimum it has seen.
  auto labels = engine::Map(vertices, [](Vertex v) {
    return std::pair<Vertex, Label>(v, v);
  });
  for (int64_t it = 0; it < max_iterations && c->ok(); ++it) {
    auto msgs = engine::Map(
        engine::RepartitionJoin(edges_by_src, labels),
        [](const std::pair<Vertex, std::pair<Vertex, Label>>& p) {
          // Send the source's label to the destination.
          return std::pair<Vertex, Label>(p.second.first, p.second.second);
        });
    auto next = engine::ReduceByKey(
        engine::Union(labels, msgs),
        [](Label a, Label b) { return std::min(a, b); });
    // Converged when no vertex's label shrank this round.
    auto improved = engine::Filter(
        engine::RepartitionJoin(next, labels),
        [](const std::pair<Vertex, std::pair<Label, Label>>& p) {
          return p.second.first < p.second.second;
        });
    const bool changed = engine::NotEmpty(improved);  // one job per round
    labels = next;
    if (!changed) break;
    if (it + 1 == max_iterations) {
      c->Fail(Status::Internal("connected components did not converge"));
    }
  }
  // (component id, vertex)
  return engine::Map(labels, [](const std::pair<Vertex, Label>& p) {
    return std::pair<Label, Vertex>(p.second, p.first);
  });
}

Bag<std::pair<Label, Edge>> EdgesByComponent(
    const Bag<Edge>& edges, const Bag<std::pair<Label, Vertex>>& components) {
  auto vertex_to_comp =
      engine::Map(components, [](const std::pair<Label, Vertex>& p) {
        return std::pair<Vertex, Label>(p.second, p.first);
      });
  auto edges_by_src = engine::Map(edges, [](const Edge& e) {
    return std::pair<Vertex, Edge>(e.src, e);
  });
  return engine::Map(
      engine::RepartitionJoin(edges_by_src, vertex_to_comp),
      [](const std::pair<Vertex, std::pair<Edge, Label>>& p) {
        return std::pair<Label, Edge>(p.second.second, p.second.first);
      });
}

std::vector<std::pair<Label, Vertex>> ConnectedComponentsReference(
    const std::vector<Edge>& edges) {
  std::unordered_map<Vertex, Vertex> parent;
  std::function<Vertex(Vertex)> find = [&](Vertex v) {
    auto it = parent.find(v);
    if (it == parent.end()) {
      parent[v] = v;
      return v;
    }
    if (it->second == v) return v;
    Vertex root = find(it->second);
    parent[v] = root;
    return root;
  };
  for (const Edge& e : edges) {
    Vertex a = find(e.src), b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  std::vector<std::pair<Label, Vertex>> out;
  out.reserve(parent.size());
  for (const auto& [v, p] : parent) {
    (void)p;
    out.emplace_back(find(v), v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace matryoshka::workloads
