file(REMOVE_RECURSE
  "CMakeFiles/hyperparameter_kmeans.dir/hyperparameter_kmeans.cpp.o"
  "CMakeFiles/hyperparameter_kmeans.dir/hyperparameter_kmeans.cpp.o.d"
  "hyperparameter_kmeans"
  "hyperparameter_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperparameter_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
