#ifndef MATRYOSHKA_COMMON_HASH_H_
#define MATRYOSHKA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <utility>

namespace matryoshka {

/// 64-bit mix (splitmix64 finalizer). Used to turn std::hash outputs into
/// well-distributed partition assignments: libstdc++'s std::hash for integers
/// is the identity, which would send consecutive keys to consecutive
/// partitions and hide shuffle skew.
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::size_t HashCombine(std::size_t seed, std::size_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// xxhash-style 64-bit checksum over a byte range: 8-byte little-endian
/// lanes folded through Mix64, a tail lane padded with the byte count, and
/// the length mixed into the final avalanche. Used by the spill layer to
/// verify runs on merge-on-read; any single flipped bit changes the result.
inline uint64_t HashBytes(const void* data, std::size_t n,
                          uint64_t seed = 0x9e3779b97f4a7c15ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = Mix64(seed ^ (0x27d4eb2f165667c5ULL + n));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t lane = 0;
    for (int b = 0; b < 8; ++b) {
      lane |= static_cast<uint64_t>(p[i + static_cast<std::size_t>(b)])
              << (8 * b);
    }
    h = Mix64(h ^ lane) * 0x9e3779b97f4a7c15ULL + 0x165667b19e3779f9ULL;
  }
  if (i < n) {
    uint64_t lane = static_cast<uint64_t>(n);  // length-pads the tail
    for (int b = 0; i < n; ++i, ++b) {
      lane = (lane << 8) | p[i];
    }
    h = Mix64(h ^ lane) * 0x9e3779b97f4a7c15ULL + 0x165667b19e3779f9ULL;
  }
  return Mix64(h ^ (h >> 29));
}

/// Hash functor covering the key types the engine shuffles on: anything with
/// a std::hash specialization, plus pairs and tuples of such types.
struct Hasher {
  template <typename T>
  std::size_t operator()(const T& v) const {
    return Mix64(std::hash<T>{}(v));
  }

  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine((*this)(p.first), (*this)(p.second));
  }

  template <typename... Ts>
  std::size_t operator()(const std::tuple<Ts...>& t) const {
    std::size_t seed = 0x12345678u;
    std::apply(
        [&](const Ts&... xs) { ((seed = HashCombine(seed, (*this)(xs))), ...); },
        t);
    return seed;
  }
};

}  // namespace matryoshka

#endif  // MATRYOSHKA_COMMON_HASH_H_
