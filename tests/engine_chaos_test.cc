// The chaos suite: locks down the real-fault contract (DESIGN.md).
//
//  - Determinism: injected faults are a pure function of
//    (seed, stream, site, epoch) — counters and outputs identical across
//    pool sizes, budgets, and repeated runs; a disarmed registry leaves
//    everything byte-identical with all four real_io counters at zero.
//  - Hardened IO: transient EIO recovers through bounded retry; short
//    pwrite/pread transfers complete through the loops; on-disk corruption
//    is caught by the run checksums as kDataCorruption, never silent wrong
//    data; ENOSPC surfaces typed as kResourceExhausted.
//  - Graceful degradation: with fallback_in_memory the engine re-runs the
//    failed op in memory bit-identically (counted in inmemory_fallbacks);
//    without it the job fails with the typed status. Injected allocation
//    failure never falls back (more memory is not a fix for OOM).
//  - ThreadPool exception safety: a throwing ParallelFor body rethrows on
//    the calling thread after the barrier; a throwing fire-and-forget task
//    is swallowed and counted; engine operators surface throwing UDFs as a
//    typed kInternal failure instead of std::terminate.
//  - Serving: IO failures retry with a fresh fault epoch, ENOSPC is shed
//    without retry, plan-body exceptions fail one request typed, shutdown
//    under an active storm drains cleanly with zero spill-file leaks.
//
// Suite names contain "Chaos" so the chaos/chaos-asan/chaos-tsan presets
// pick them up by regex; the whole file is TSan-clean.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoints.h"
#include "common/hash.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/bag.h"
#include "engine/external/external_group.h"
#include "engine/external/memory_budget.h"
#include "engine/external/spill_file.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/recovery.h"
#include "engine/shuffle.h"
#include "serve/plan.h"
#include "serve/registry.h"
#include "serve/serving_driver.h"

namespace matryoshka::engine {
namespace {

using external::MemoryBudget;
using external::SpillFile;
using external::SpillStats;

/// True when scripts/check.sh chaos forces a storm through the environment:
/// assertions that require a genuinely disarmed registry must skip then
/// (the override only applies to configs whose own plan is inactive).
bool EnvFaultsForced() {
  return std::getenv("MATRYOSHKA_REAL_FAULTS") != nullptr;
}

ClusterConfig Config(bool parallel, std::size_t budget) {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.execute_parallel = parallel;
  cfg.pool_threads = 4;
  cfg.real_memory_budget_bytes = budget;
  return cfg;
}

/// A storm every hardened path can absorb: transient EIO (one attempt, well
/// inside the retry budget) plus short transfers on both directions.
RealFaultPlan RecoverableStorm(uint64_t seed = 2021) {
  RealFaultPlan p;
  p.seed = seed;
  p.write_eio_prob = 0.3;
  p.read_eio_prob = 0.3;
  p.short_write_prob = 0.5;
  p.short_read_prob = 0.5;
  p.transient_duration = 1;
  return p;
}

Bag<std::pair<int64_t, int64_t>> MakePairs(Cluster* c) {
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 5000; ++i) kv.emplace_back((i * 37) % 128, i % 17);
  return Parallelize(c, kv, 8);
}

template <typename T>
void ExpectBitIdenticalBags(const Bag<T>& a, const Bag<T>& b) {
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  EXPECT_EQ(a.key_partitions(), b.key_partitions());
  for (int64_t i = 0; i < a.num_partitions(); ++i) {
    EXPECT_EQ(a.partitions()[static_cast<std::size_t>(i)],
              b.partitions()[static_cast<std::size_t>(i)])
        << "partition " << i << " differs from the fault-free run";
  }
}

/// Runs `make_op` fault-free and under `plan` (same budget, pool on), and
/// requires the faulty run to recover bit-identically: same bag, same
/// simulated clock, OK status. Returns the faulty run's metrics so callers
/// can assert on the real_io counters.
template <typename MakeOp>
Metrics ExpectRecoversIdentically(const MakeOp& make_op,
                                  const RealFaultPlan& plan,
                                  std::size_t budget = 512,
                                  RealIoPolicy policy = RealIoPolicy()) {
  Cluster clean(Config(true, budget));
  auto expected = make_op(&clean);
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();

  ClusterConfig cfg = Config(true, budget);
  cfg.real_faults = plan;
  cfg.real_io = policy;
  Cluster faulty(cfg);
  auto got = make_op(&faulty);
  EXPECT_TRUE(faulty.ok()) << faulty.status().ToString();
  ExpectBitIdenticalBags(expected, got);
  EXPECT_EQ(clean.metrics().simulated_time_s, faulty.metrics().simulated_time_s);
  EXPECT_EQ(clean.metrics().spilled_bytes, faulty.metrics().spilled_bytes);
  EXPECT_EQ(SpillFile::LiveCount(), 0);
  return faulty.metrics();
}

// --- Disarmed identity -----------------------------------------------------

TEST(ChaosEngineTest, DisarmedRunsKeepRealFaultCountersZero) {
  if (EnvFaultsForced()) GTEST_SKIP() << "MATRYOSHKA_REAL_FAULTS forced";
  Cluster c(Config(true, 512));
  (void)Count(GroupByKey(MakePairs(&c), 8));
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c.metrics().real_spill_events, 0);  // it really spilled ...
  EXPECT_EQ(c.metrics().real_io_faults_injected, 0);  // ... fault-free
  EXPECT_EQ(c.metrics().real_io_retries, 0);
  EXPECT_EQ(c.metrics().checksum_failures, 0);
  EXPECT_EQ(c.metrics().inmemory_fallbacks, 0);
  EXPECT_FALSE(c.failpoints()->armed());
}

TEST(ChaosEngineTest, EnvStormParsesRecoverableOnly) {
  const RealFaultPlan p = ParseRealFaultStormEnv("0.5:77");
  EXPECT_TRUE(p.active());
  EXPECT_EQ(p.seed, 77u);
  EXPECT_DOUBLE_EQ(p.write_eio_prob, 0.5);
  EXPECT_DOUBLE_EQ(p.read_eio_prob, 0.5);
  EXPECT_DOUBLE_EQ(p.short_write_prob, 0.5);
  EXPECT_DOUBLE_EQ(p.short_read_prob, 0.5);
  // Never the hard faults: whole OK-asserting suites run under this storm.
  EXPECT_DOUBLE_EQ(p.write_enospc_prob, 0.0);
  EXPECT_DOUBLE_EQ(p.corrupt_prob, 0.0);
  EXPECT_DOUBLE_EQ(p.alloc_failure_prob, 0.0);
  EXPECT_EQ(p.transient_duration, 1);
  EXPECT_FALSE(ParseRealFaultStormEnv("bogus").active());
  EXPECT_FALSE(ParseRealFaultStormEnv("").active());
}

// --- Recoverable faults ----------------------------------------------------

TEST(ChaosEngineTest, TransientWriteEioRecoversThroughRetry) {
  RealFaultPlan p;
  p.write_eio_prob = 1.0;  // every write site fails its first attempt
  p.transient_duration = 1;
  const Metrics m = ExpectRecoversIdentically(
      [](Cluster* c) { return Repartition(MakePairs(c), 5); }, p);
  EXPECT_GT(m.real_io_faults_injected, 0);
  EXPECT_GT(m.real_io_retries, 0);
  EXPECT_EQ(m.inmemory_fallbacks, 0);  // retry healed it, no fallback
  EXPECT_EQ(m.checksum_failures, 0);
}

TEST(ChaosEngineTest, TransientReadEioRecoversThroughRetry) {
  RealFaultPlan p;
  p.read_eio_prob = 1.0;
  p.transient_duration = 1;
  const Metrics m = ExpectRecoversIdentically(
      [](Cluster* c) { return GroupByKey(MakePairs(c), 8); }, p);
  EXPECT_GT(m.real_io_retries, 0);
  EXPECT_EQ(m.inmemory_fallbacks, 0);
}

TEST(ChaosEngineTest, ShortTransfersAlwaysComplete) {
  RealFaultPlan p;
  p.short_write_prob = 1.0;  // every pwrite/pread moves a partial buffer
  p.short_read_prob = 1.0;
  const Metrics m = ExpectRecoversIdentically(
      [](Cluster* c) { return GroupByKey(MakePairs(c), 8); }, p);
  EXPECT_GT(m.real_io_faults_injected, 0);
  EXPECT_EQ(m.inmemory_fallbacks, 0);  // the loops finish, nothing degrades
  EXPECT_EQ(m.checksum_failures, 0);
}

TEST(ChaosEngineTest, SlowIoChangesNothing) {
  RealFaultPlan p;
  p.slow_io_prob = 0.2;
  p.slow_io_ms = 1;
  const Metrics m = ExpectRecoversIdentically(
      [](Cluster* c) { return Repartition(MakePairs(c), 5); }, p,
      /*budget=*/4096);
  EXPECT_EQ(m.inmemory_fallbacks, 0);
  EXPECT_EQ(m.checksum_failures, 0);
}

// --- Graceful degradation --------------------------------------------------

TEST(ChaosEngineTest, EnospcFallsBackInMemoryBitIdentically) {
  RealFaultPlan p;
  p.write_enospc_prob = 1.0;  // the disk is full from the first write
  const Metrics m = ExpectRecoversIdentically(
      [](Cluster* c) {
        return ReduceByKey(
            MakePairs(c), [](int64_t a, int64_t b) { return a + b; }, 8);
      },
      p);
  EXPECT_GT(m.inmemory_fallbacks, 0);
  EXPECT_GT(m.real_io_faults_injected, 0);
}

TEST(ChaosEngineTest, EnospcFailsTypedWithoutFallback) {
  ClusterConfig cfg = Config(true, 512);
  cfg.real_faults.write_enospc_prob = 1.0;
  cfg.real_io.fallback_in_memory = false;
  Cluster c(cfg);
  (void)Count(Repartition(MakePairs(&c), 5));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsResourceExhausted()) << c.status().ToString();
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(ChaosEngineTest, EioOutlastingRetriesFallsBack) {
  RealFaultPlan p;
  p.write_eio_prob = 1.0;
  p.transient_duration = 100;  // outlasts any sane retry budget
  RealIoPolicy policy;
  policy.max_io_retries = 2;
  const Metrics m = ExpectRecoversIdentically(
      [](Cluster* c) { return Repartition(MakePairs(c), 5); }, p,
      /*budget=*/512, policy);
  EXPECT_GT(m.inmemory_fallbacks, 0);
}

TEST(ChaosEngineTest, EioOutlastingRetriesFailsTypedWithoutFallback) {
  ClusterConfig cfg = Config(true, 512);
  cfg.real_faults.write_eio_prob = 1.0;
  cfg.real_faults.transient_duration = 100;
  cfg.real_io.max_io_retries = 2;
  cfg.real_io.fallback_in_memory = false;
  Cluster c(cfg);
  (void)Count(Repartition(MakePairs(&c), 5));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsIOError()) << c.status().ToString();
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(ChaosEngineTest, CorruptionDetectedAndFallsBackBitIdentically) {
  RealFaultPlan p;
  p.corrupt_prob = 1.0;  // every written run gets one byte flipped on disk
  const Metrics m = ExpectRecoversIdentically(
      [](Cluster* c) { return Repartition(MakePairs(c), 5); }, p);
  EXPECT_GT(m.checksum_failures, 0);  // caught, never silent wrong data
  EXPECT_GT(m.inmemory_fallbacks, 0);
}

TEST(ChaosEngineTest, AllocFailureNeverFallsBack) {
  // Falling back to an unbudgeted in-memory run is the cure for a BROKEN
  // DISK, not for allocation failure — more memory use cannot fix OOM.
  ClusterConfig cfg = Config(true, 512);
  cfg.real_faults.alloc_failure_prob = 1.0;
  cfg.real_io.fallback_in_memory = true;  // must be ignored for OOM
  Cluster c(cfg);
  (void)Count(Repartition(MakePairs(&c), 5));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsOutOfMemory()) << c.status().ToString();
  EXPECT_EQ(c.metrics().inmemory_fallbacks, 0);
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(ChaosEngineTest, NoSpillFileLeaksUnderHardFaults) {
  for (int which = 0; which < 3; ++which) {
    ClusterConfig cfg = Config(true, 512);
    if (which == 0) cfg.real_faults.write_enospc_prob = 0.05;
    if (which == 1) cfg.real_faults.corrupt_prob = 0.05;
    if (which == 2) cfg.real_faults.alloc_failure_prob = 0.05;
    cfg.real_io.fallback_in_memory = false;
    {
      Cluster c(cfg);
      auto grouped = GroupByKey(MakePairs(&c), 8);
      auto joined = RepartitionJoin(MakePairs(&c), MakePairs(&c), 8);
      (void)grouped;
      (void)joined;
    }
    EXPECT_EQ(SpillFile::LiveCount(), 0) << "fault arm " << which;
  }
}

// --- Determinism of the injection itself -----------------------------------

TEST(ChaosEngineTest, FaultDrawsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    ClusterConfig cfg = Config(true, 512);
    cfg.real_faults = RecoverableStorm(seed);
    Cluster c(cfg);
    (void)Count(GroupByKey(MakePairs(&c), 8));
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.metrics();
  };
  const Metrics a = run(7);
  const Metrics b = run(7);
  EXPECT_GT(a.real_io_faults_injected, 0);
  EXPECT_EQ(a.real_io_faults_injected, b.real_io_faults_injected);
  EXPECT_EQ(a.real_io_retries, b.real_io_retries);
  EXPECT_EQ(a.checksum_failures, b.checksum_failures);
  EXPECT_EQ(a.inmemory_fallbacks, b.inmemory_fallbacks);
}

TEST(ChaosEngineTest, FaultCountersIdenticalAcrossPoolSizes) {
  // The draws are pure functions of each worker's own stream — the pool
  // must not move a single counter.
  auto run = [](bool parallel) {
    ClusterConfig cfg = Config(parallel, 512);
    cfg.real_faults = RecoverableStorm();
    Cluster c(cfg);
    (void)Count(ReduceByKey(
        MakePairs(&c), [](int64_t a, int64_t b) { return a + b; }, 8));
    (void)Count(GroupByKey(MakePairs(&c), 8));
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.metrics();
  };
  const Metrics serial = run(false);
  const Metrics parallel = run(true);
  EXPECT_GT(serial.real_io_faults_injected, 0);
  EXPECT_EQ(serial.real_io_faults_injected, parallel.real_io_faults_injected);
  EXPECT_EQ(serial.real_io_retries, parallel.real_io_retries);
  EXPECT_EQ(serial.checksum_failures, parallel.checksum_failures);
  EXPECT_EQ(serial.inmemory_fallbacks, parallel.inmemory_fallbacks);
}

TEST(ChaosEngineTest, StormRecoveryBitIdenticalAcrossBudgetsAndPools) {
  // The acceptance sweep: a mixed recoverable storm over budgets
  // {1, 4K, 16M} x pool off/on must reproduce the fault-free unbounded
  // run's bags and simulated metrics exactly.
  Cluster clean(Config(true, 0));
  auto expected = GroupByKey(MakePairs(&clean), 8);
  ASSERT_TRUE(clean.ok());
  for (std::size_t budget :
       {std::size_t{1}, std::size_t{4096}, std::size_t{16} << 20}) {
    for (bool parallel : {false, true}) {
      ClusterConfig cfg = Config(parallel, budget);
      cfg.real_faults = RecoverableStorm();
      cfg.real_faults.write_enospc_prob = 0.05;  // plus a degrading fault
      Cluster c(cfg);
      auto got = GroupByKey(MakePairs(&c), 8);
      ASSERT_TRUE(c.ok()) << c.status().ToString();
      ExpectBitIdenticalBags(expected, got);
      EXPECT_EQ(clean.metrics().simulated_time_s,
                c.metrics().simulated_time_s)
          << "budget " << budget << " parallel " << parallel;
      EXPECT_EQ(SpillFile::LiveCount(), 0);
    }
  }
}

TEST(ChaosEngineTest, DriverRetryMovesPastStormEpoch) {
  // storm_epochs = 1: the first attempt deterministically fails with
  // kIOError (persistent EIO, no fallback); the driver retry bumps the
  // fault epoch and finds calm weather.
  Cluster clean(Config(true, 512));
  auto expected = Collect(Repartition(MakePairs(&clean), 5));
  ASSERT_TRUE(clean.ok());

  ClusterConfig cfg = Config(true, 512);
  cfg.real_faults.write_eio_prob = 1.0;
  cfg.real_faults.transient_duration = 100;
  cfg.real_faults.storm_epochs = 1;
  cfg.real_io.max_io_retries = 2;
  cfg.real_io.fallback_in_memory = false;
  cfg.recovery.max_driver_retries = 2;
  cfg.recovery.driver_backoff_s = 0.1;
  Cluster c(cfg);
  std::vector<std::pair<int64_t, int64_t>> got;
  const Status st = RunWithRecovery(&c, [&](int /*attempt*/) {
    got = Collect(Repartition(MakePairs(&c), 5));
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(c.metrics().driver_retries, 0);
  EXPECT_GT(c.metrics().real_io_faults_injected, 0);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(ChaosEngineTest, ResetRearmsFaultEpoch) {
  ClusterConfig cfg = Config(true, 512);
  cfg.real_faults.write_eio_prob = 1.0;
  cfg.real_faults.transient_duration = 100;
  cfg.real_faults.storm_epochs = 1;
  cfg.real_io.max_io_retries = 1;
  cfg.real_io.fallback_in_memory = false;
  cfg.recovery.max_driver_retries = 1;
  cfg.recovery.driver_backoff_s = 0.1;
  Cluster c(cfg);
  // The driver retry bumps the epoch out of the storm and succeeds ...
  const Status st = RunWithRecovery(
      &c, [&](int /*attempt*/) { (void)Count(Repartition(MakePairs(&c), 5)); });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(c.failpoints()->epoch(), 0);
  // ... and Reset must re-enter epoch 0: the storm is back.
  c.Reset();
  EXPECT_EQ(c.failpoints()->epoch(), 0);
  (void)Count(Repartition(MakePairs(&c), 5));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsIOError()) << c.status().ToString();
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

// --- Kernel-level checks ---------------------------------------------------

TEST(ChaosKernelTest, SpillFileChecksumVerifyCatchesFlippedByte) {
  RealFaultPlan plan;
  plan.corrupt_prob = 1.0;
  FailpointRegistry fp;
  fp.Arm(plan, RealIoPolicy());
  SpillFile f;
  f.Arm(&fp, /*stream_id=*/3);
  const std::string run = "the bytes the caller hands to pwrite";
  const uint64_t checksum = HashBytes(run.data(), run.size());
  uint64_t offset = 0;
  SpillStats stats;
  ASSERT_TRUE(f.Write(run, &offset, &stats).ok());
  EXPECT_GT(stats.io_faults_injected, 0);  // the flip was injected
  std::string out;
  const Status st = f.ReadRun(offset, run.size(), checksum, &out, &stats);
  EXPECT_TRUE(st.IsDataCorruption()) << st.ToString();
  EXPECT_GT(stats.checksum_failures, 0);
  // The plain read path hands back the corrupted bytes — that is exactly
  // why every merge-on-read goes through ReadRun.
  std::string raw;
  ASSERT_TRUE(f.Read(offset, run.size(), &raw, &stats).ok());
  EXPECT_NE(raw, run);
}

TEST(ChaosKernelTest, AggregatorEnospcDrainPreservesFoldOrder) {
  // Non-associative float folding: the disk-down drain (chunks, then
  // pending, then live) must reproduce first-occurrence order exactly.
  std::vector<std::pair<int64_t, double>> stream;
  for (int64_t i = 0; i < 2000; ++i) {
    stream.emplace_back(i % 97, 1.0 / static_cast<double>(i + 1));
  }
  auto init = [](double&& v) { return v; };
  auto absorb = [](double& acc, double&& v) { acc = acc - v; };
  auto growth = [](const double&) { return std::size_t{0}; };
  using Agg = external::BoundedAggregator<int64_t, double, double,
                                          decltype(init), decltype(absorb),
                                          decltype(growth)>;
  SpillStats clean_stats;
  Agg unbounded(static_cast<std::size_t>(-1), init, absorb, growth,
                &clean_stats);
  for (const auto& [k, v] : stream) unbounded.Feed(k, v);
  const auto expected = unbounded.Finish();
  ASSERT_TRUE(unbounded.status().ok());

  RealFaultPlan plan;
  plan.write_enospc_prob = 1.0;
  FailpointRegistry fp;
  fp.Arm(plan, RealIoPolicy());  // fallback_in_memory defaults true
  SpillStats stats;
  Agg bounded(/*quota=*/1, init, absorb, growth, &stats, &fp,
              /*stream_id=*/0);
  for (const auto& [k, v] : stream) bounded.Feed(k, v);
  const auto got = bounded.Finish();
  ASSERT_TRUE(bounded.status().ok()) << bounded.status().ToString();
  EXPECT_EQ(got, expected);
  EXPECT_GT(stats.inmemory_fallbacks, 0);
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(ChaosKernelTest, AggregatorCorruptionOnMergeIsTyped) {
  // Corruption is discovered at Finish, after the writes were consumed:
  // there is nothing safe to fall back to, so the status is always typed.
  std::vector<std::pair<int64_t, double>> stream;
  for (int64_t i = 0; i < 500; ++i) {
    stream.emplace_back(i % 31, static_cast<double>(i));
  }
  auto init = [](double&& v) { return v; };
  auto absorb = [](double& acc, double&& v) { acc = acc + v; };
  auto growth = [](const double&) { return std::size_t{0}; };
  RealFaultPlan plan;
  plan.corrupt_prob = 1.0;
  FailpointRegistry fp;
  fp.Arm(plan, RealIoPolicy());
  SpillStats stats;
  external::BoundedAggregator<int64_t, double, double, decltype(init),
                              decltype(absorb), decltype(growth)>
      agg(/*quota=*/1, init, absorb, growth, &stats, &fp, /*stream_id=*/0);
  for (const auto& [k, v] : stream) agg.Feed(k, v);
  (void)agg.Finish();
  EXPECT_TRUE(agg.status().IsDataCorruption()) << agg.status().ToString();
  EXPECT_GT(stats.checksum_failures, 0);
}

// --- ThreadPool exception safety -------------------------------------------

TEST(ChaosThreadPoolTest, ParallelForRethrowsBodyExceptionOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 64,
                  [](std::size_t i) {
                    if (i == 13) throw std::runtime_error("body 13 failed");
                  }),
      std::runtime_error);
  // The barrier completed and the pool survived: it still runs work.
  std::atomic<int> ran{0};
  ParallelFor(&pool, 32, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
}

TEST(ChaosThreadPoolTest, ParallelForFailureSkipsRemainingBodies) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    ParallelFor(&pool, 256, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first body failed");
      ran.fetch_add(1);
    });
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first body failed");
  }
  // Some bodies may have been in flight, but the failure stopped the loop
  // from running all of them.
  EXPECT_LT(ran.load(), 255);
}

TEST(ChaosThreadPoolTest, SubmittedTaskExceptionIsSwallowedAndCounted) {
  const int64_t before = ThreadPool::UncaughtTaskExceptions();
  {
    ThreadPool pool(2);
    pool.Submit([] { throw std::runtime_error("fire-and-forget boom"); });
    pool.Submit([] { throw 42; });  // non-std exceptions too
    pool.WaitIdle();
  }
  EXPECT_EQ(ThreadPool::UncaughtTaskExceptions(), before + 2);
}

TEST(ChaosThreadPoolTest, ThrowingUdfFailsProgramTyped) {
  // A user lambda that throws inside a parallel operator surfaces as a
  // typed kInternal failure on the cluster — not std::terminate, and not a
  // hung barrier.
  Cluster c(Config(true, 0));
  auto bag = Map(MakePairs(&c), [](const std::pair<int64_t, int64_t>& kv) {
    if (kv.first == 64) throw std::runtime_error("udf rejected row");
    return kv.first;
  });
  (void)Count(bag);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInternal);
  EXPECT_NE(c.status().message().find("udf rejected row"), std::string::npos)
      << c.status().message();
}

}  // namespace
}  // namespace matryoshka::engine

// --- Serving under real faults ---------------------------------------------

namespace matryoshka::serve {
namespace {

using engine::ClusterConfig;
using engine::external::SpillFile;

ClusterConfig ServeEngineConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.execute_parallel = true;
  cfg.real_memory_budget_bytes = 512;  // every request really spills
  return cfg;
}

PlanSpec SumByKeySpec() {
  PlanSpec spec;
  spec.name = "sum_by_key";
  spec.description = "keyed sum over synthetic rows";
  spec.body = [](engine::Cluster* c, const PlanParams& params) {
    const int64_t mod = params.GetInt("mod", 97);
    std::vector<std::pair<int64_t, int64_t>> kv;
    for (int64_t i = 0; i < 3000; ++i) kv.emplace_back(i % mod, i % 13);
    auto bag = engine::Parallelize(c, std::move(kv), 8);
    auto reduced = engine::ReduceByKey(
        bag, [](int64_t a, int64_t b) { return a + b; }, 8);
    return CollectOutput(reduced);
  };
  return spec;
}

ServeRequest Req(const std::string& plan) {
  ServeRequest req;
  req.plan = plan;
  return req;
}

PlanSpec ThrowingSpec() {
  PlanSpec spec;
  spec.name = "throwing_plan";
  spec.description = "plan body that throws";
  spec.body = [](engine::Cluster*, const PlanParams&) -> PlanOutput {
    throw std::runtime_error("plan body exploded");
  };
  return spec;
}

TEST(ChaosServingTest, RetriesIoFailuresWithFreshEpoch) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());

  // The fault-free answer, served once without any storm.
  ServingConfig clean_cfg;
  clean_cfg.cluster = ServeEngineConfig();
  clean_cfg.max_in_flight = 1;
  PlanOutput expected;
  {
    ServingDriver driver(&registry, clean_cfg);
    ServeResponse resp = driver.Execute(Req("sum_by_key"));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    expected = resp.output;
  }

  // Epoch 0 is a persistent-EIO storm with no fallback and no engine-level
  // recovery: the first attempt deterministically fails with kIOError, the
  // serving retry re-runs in epoch 1 and succeeds.
  ServingConfig cfg = clean_cfg;
  cfg.cluster.real_faults.write_eio_prob = 1.0;
  cfg.cluster.real_faults.transient_duration = 100;
  cfg.cluster.real_faults.storm_epochs = 1;
  cfg.cluster.real_io.max_io_retries = 1;
  cfg.cluster.real_io.fallback_in_memory = false;
  cfg.cluster.recovery.max_driver_retries = 0;
  cfg.real_fault_retries = 2;
  ServingDriver driver(&registry, cfg);
  ServeResponse resp = driver.Execute(Req("sum_by_key"));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.output, expected);

  const ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.real_fault_retries, 1);
  EXPECT_EQ(stats.io_errors, 0);  // the FINAL status was OK
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(ChaosServingTest, ExhaustedRetriesSurfaceTypedIoError) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingConfig cfg;
  cfg.cluster = ServeEngineConfig();
  cfg.cluster.real_faults.write_eio_prob = 1.0;
  cfg.cluster.real_faults.transient_duration = 100;  // storm never ends
  cfg.cluster.real_io.max_io_retries = 1;
  cfg.cluster.real_io.fallback_in_memory = false;
  cfg.cluster.recovery.max_driver_retries = 0;
  cfg.max_in_flight = 1;
  cfg.real_fault_retries = 2;
  ServingDriver driver(&registry, cfg);
  ServeResponse resp = driver.Execute(Req("sum_by_key"));
  EXPECT_TRUE(resp.status.IsIOError()) << resp.status.ToString();
  const ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.real_fault_retries, 2);  // every retry was spent
  EXPECT_EQ(stats.io_errors, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(ChaosServingTest, ShedsResourceExhaustionWithoutRetry) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingConfig cfg;
  cfg.cluster = ServeEngineConfig();
  cfg.cluster.real_faults.write_enospc_prob = 1.0;
  cfg.cluster.real_io.fallback_in_memory = false;
  cfg.cluster.recovery.max_driver_retries = 0;
  cfg.max_in_flight = 1;
  cfg.real_fault_retries = 3;  // must NOT be spent on a full disk
  ServingDriver driver(&registry, cfg);
  ServeResponse resp = driver.Execute(Req("sum_by_key"));
  EXPECT_TRUE(resp.status.IsResourceExhausted()) << resp.status.ToString();
  EXPECT_FALSE(resp.rejected);  // executed and shed, not turned away
  const ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.real_fault_retries, 0);
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(ChaosServingTest, AggregatesRealFaultCountersAcrossRequests) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingConfig cfg;
  cfg.cluster = ServeEngineConfig();
  cfg.cluster.real_faults.write_eio_prob = 0.3;
  cfg.cluster.real_faults.short_write_prob = 0.5;
  cfg.max_in_flight = 2;
  cfg.cache_entries = 0;  // force every request to really execute
  ServingDriver driver(&registry, cfg);
  std::vector<std::shared_ptr<ServeTicket>> tickets;
  for (int i = 0; i < 4; ++i) {
    ServeRequest req;
    req.plan = "sum_by_key";
    req.params.Set("mod", lang::Value(int64_t{31 + i}));
    tickets.push_back(driver.Submit(std::move(req)));
  }
  for (auto& t : tickets) {
    EXPECT_TRUE(t->Wait().status.ok()) << t->Wait().status.ToString();
    EXPECT_GT(t->Wait().metrics.real_io_faults_injected, 0);
  }
  const ServingDriver::Stats stats = driver.GetStats();
  EXPECT_GT(stats.aggregate.real_io_faults_injected, 0);
  EXPECT_GT(stats.aggregate.real_io_retries, 0);
  EXPECT_GT(stats.aggregate.real_spill_events, 0);
  EXPECT_EQ(stats.failed, 0);
}

TEST(ChaosServingTest, PlanBodyExceptionFailsOneRequestTyped) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(ThrowingSpec()).ok());
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingConfig cfg;
  cfg.cluster = ServeEngineConfig();
  cfg.max_in_flight = 2;
  ServingDriver driver(&registry, cfg);
  ServeResponse bad = driver.Execute(Req("throwing_plan"));
  EXPECT_EQ(bad.status.code(), StatusCode::kInternal)
      << bad.status.ToString();
  EXPECT_NE(bad.status.message().find("plan body exploded"),
            std::string::npos);
  // The worker survived; the next request on the same driver is healthy.
  ServeResponse good = driver.Execute(Req("sum_by_key"));
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();
}

TEST(ChaosServingTest, ShutdownDrainsInFlightRequestsUnderStorm) {
  // Destroying the driver with a queue full of spilling, fault-absorbing
  // requests must complete every ticket and leak no spill files.
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  std::vector<std::shared_ptr<ServeTicket>> tickets;
  {
    ServingConfig cfg;
    cfg.cluster = ServeEngineConfig();
    cfg.cluster.real_faults.write_eio_prob = 0.3;
    cfg.cluster.real_faults.read_eio_prob = 0.3;
    cfg.cluster.real_faults.short_write_prob = 0.5;
    cfg.max_in_flight = 3;
    cfg.cache_entries = 0;
    ServingDriver driver(&registry, cfg);
    for (int i = 0; i < 12; ++i) {
      ServeRequest req;
      req.plan = "sum_by_key";
      req.params.Set("mod", lang::Value(int64_t{17 + i}));
      req.tenant = i % 2 == 0 ? "a" : "b";
      tickets.push_back(driver.Submit(std::move(req)));
    }
    // No Drain, no Wait: the destructor must handle the in-flight storm.
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i]->Ready()) << "ticket " << i << " never completed";
    EXPECT_TRUE(tickets[i]->Wait().status.ok())
        << tickets[i]->Wait().status.ToString();
  }
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

}  // namespace
}  // namespace matryoshka::serve
