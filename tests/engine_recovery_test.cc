// Recovery-subsystem tests: checkpoint-based lineage truncation, the
// cost-based auto-checkpoint policy, driver-level retry with deadlines
// (RunWithRecovery), and degraded-mode re-planning after machine loss.
//
// The headline contract locked down here: a default-constructed
// RecoveryPolicy (active() == false) leaves every metric byte-identical to
// the pre-recovery engine — even under an active FaultPlan with machine
// loss — because every new behavior is gated on a policy knob that defaults
// off and checkpoints are charged as driver spans, never as stages.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/recovery.h"
#include "engine/shuffle.h"

namespace matryoshka::engine {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.job_launch_overhead_s = 0.1;
  cfg.task_overhead_s = 0.01;
  cfg.per_element_cost_s = 1e-6;
  cfg.memory_object_overhead = 1.0;
  return cfg;
}

std::vector<std::pair<int64_t, int64_t>> PairData(int64_t n, int64_t keys) {
  std::vector<std::pair<int64_t, int64_t>> data;
  data.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) data.emplace_back(i % keys, 1);
  return data;
}

std::vector<std::pair<int64_t, int64_t>> RunPipeline(Cluster* c) {
  auto bag = Parallelize(c, PairData(2000, 32), 8);
  auto mapped = MapValues(bag, [](int64_t v) { return v * 2; });
  auto filtered = Filter(mapped, [](const std::pair<int64_t, int64_t>& p) {
    return p.first % 7 != 3;
  });
  auto reduced = ReduceByKey(
      filtered, [](int64_t a, int64_t b) { return a + b; }, 8);
  Count(reduced);
  auto out = Collect(reduced);
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectMetricsEq(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.simulated_time_s, b.simulated_time_s);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.elements_processed, b.elements_processed);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  EXPECT_EQ(a.spill_events, b.spill_events);
  EXPECT_EQ(a.peak_task_bytes, b.peak_task_bytes);
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.machines_lost, b.machines_lost);
  EXPECT_EQ(a.recovery_time_s, b.recovery_time_s);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.driver_retries, b.driver_retries);
  EXPECT_EQ(a.plan_fallbacks, b.plan_fallbacks);
}

// --- The null-policy byte-identity contract ---

TEST(RecoveryTest, DefaultPolicyIsByteIdenticalEvenUnderActiveFaults) {
  // Knobs that do not flip active() (backoff, interval, bandwidth, replicas)
  // may take any value: with the gates off they must be dead weight, even
  // while a fault plan with machine loss is live.
  ClusterConfig plain = SmallConfig();
  plain.faults.seed = 42;
  plain.faults.task_failure_prob = 0.1;
  plain.faults.max_task_retries = 8;
  plain.faults.machine_loss_times_s = {0.5};
  ClusterConfig with_inert_policy = plain;
  with_inert_policy.recovery.driver_backoff_s = 99.0;
  with_inert_policy.recovery.min_checkpoint_lineage = 1;
  with_inert_policy.recovery.checkpoint_bytes_per_s = 1.0;
  with_inert_policy.recovery.checkpoint_replicas = 7;
  ASSERT_FALSE(plain.recovery.active());
  ASSERT_FALSE(with_inert_policy.recovery.active());
  Cluster c1(plain), c2(with_inert_policy);
  auto r1 = RunPipeline(&c1);
  auto r2 = RunPipeline(&c2);
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  EXPECT_EQ(r1, r2);
  ExpectMetricsEq(c1.metrics(), c2.metrics());
  EXPECT_EQ(c1.metrics().checkpoints_written, 0);
  EXPECT_DOUBLE_EQ(c1.metrics().checkpoint_bytes, 0.0);
  EXPECT_EQ(c1.metrics().driver_retries, 0);
  EXPECT_EQ(c1.metrics().plan_fallbacks, 0);
}

TEST(RecoveryTest, PolicyActiveFlagTracksTheGatingKnobs) {
  RecoveryPolicy policy;
  EXPECT_FALSE(policy.active());
  policy.driver_backoff_s = 10.0;     // retry knob without a retry budget
  policy.checkpoint_replicas = 5;     // checkpoint knob without the trigger
  policy.min_checkpoint_lineage = 1;
  EXPECT_FALSE(policy.active());
  policy.max_driver_retries = 1;
  EXPECT_TRUE(policy.active());
  policy = RecoveryPolicy();
  policy.run_deadline_s = 1.0;
  EXPECT_TRUE(policy.active());
  policy = RecoveryPolicy();
  policy.auto_checkpoint = true;
  EXPECT_TRUE(policy.active());
  policy = RecoveryPolicy();
  policy.degraded_replanning = true;
  EXPECT_TRUE(policy.active());
}

// --- Explicit checkpoints ---

TEST(RecoveryTest, CheckpointChargesTheWriteAndTruncatesLineage) {
  ClusterConfig cfg = SmallConfig();
  cfg.recovery.checkpoint_bytes_per_s = 1e6;
  cfg.recovery.checkpoint_replicas = 3;
  Cluster c(cfg);
  auto bag = Parallelize(&c, PairData(2000, 32), 8);
  auto deep = MapValues(MapValues(bag, [](int64_t v) { return v + 1; }),
                        [](int64_t v) { return v - 1; });
  ASSERT_EQ(deep.lineage_depth(), 3);
  const double bytes = RealBagBytes(deep);
  ASSERT_GT(bytes, 0.0);
  const double before = c.metrics().simulated_time_s;
  auto ckpt = Checkpoint(deep, "explicit");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(ckpt.lineage_depth(), 1);
  EXPECT_EQ(c.metrics().checkpoints_written, 1);
  EXPECT_DOUBLE_EQ(c.metrics().checkpoint_bytes, 3.0 * bytes);
  // All live machines write the replicated bytes in parallel.
  EXPECT_DOUBLE_EQ(c.metrics().simulated_time_s - before,
                   3.0 * bytes / (4 * 1e6));
  EXPECT_DOUBLE_EQ(c.metrics().simulated_time_s - before,
                   c.CheckpointWriteSeconds(bytes));
  // The data itself is untouched.
  auto a = Collect(deep);
  auto b = Collect(ckpt);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(RecoveryTest, CheckpointBoundsMachineLossRecompute) {
  // Same narrow chain, loss event during the final stage: the checkpointed
  // run recomputes a depth-1 chain, the plain one the full depth, so its
  // recovery charge is a multiple of the checkpointed run's.
  auto run = [](bool checkpointed) {
    ClusterConfig cfg = SmallConfig();
    cfg.faults.machine_loss_times_s = {1.0};
    cfg.recovery.checkpoint_bytes_per_s = 1e12;  // write cost ~ 0
    Cluster c(cfg);
    auto bag = Parallelize(&c, PairData(2000, 32), 8);
    for (int i = 0; i < 4; ++i) {
      bag = MapValues(bag, [](int64_t v) { return v + 1; });
      if (checkpointed) bag = Checkpoint(bag);
    }
    // A long stage (weight via many elements) that straddles t=1.0.
    c.AccrueStage(std::vector<double>(8, 1.0), bag.lineage_depth());
    EXPECT_TRUE(c.ok());
    EXPECT_EQ(c.metrics().machines_lost, 1);
    return c.metrics().recovery_time_s;
  };
  const double with_ckpt = run(true);
  const double without = run(false);
  ASSERT_GT(with_ckpt, 0.0);
  // Depth 1 vs depth 5: the uncheckpointed chain recomputes 5x the work.
  EXPECT_NEAR(without, 5.0 * with_ckpt, 1e-9);
}

// --- Auto-checkpointing ---

TEST(RecoveryTest, AutoCheckpointBoundsLineageDepthByTheInterval) {
  ClusterConfig cfg = SmallConfig();
  cfg.recovery.auto_checkpoint = true;
  cfg.recovery.min_checkpoint_lineage = 3;
  cfg.recovery.checkpoint_bytes_per_s = 1e12;  // write cost ~ 0: always worth it
  Cluster c(cfg);
  auto bag = Parallelize(&c, PairData(2000, 32), 8);
  int max_depth = bag.lineage_depth();
  for (int i = 0; i < 10; ++i) {
    bag = MapValues(bag, [](int64_t v) { return v + 1; });
    max_depth = std::max(max_depth, bag.lineage_depth());
  }
  ASSERT_TRUE(c.ok());
  // Depth cycles 1..min_checkpoint_lineage-1 + the in-flight value that
  // triggered each truncation; it never grows past the interval.
  EXPECT_LE(max_depth, 3);
  EXPECT_GT(c.metrics().checkpoints_written, 0);
  EXPECT_GT(c.metrics().checkpoint_bytes, 0.0);
}

TEST(RecoveryTest, AutoCheckpointSkipsWhenTheWriteCostsMoreThanRecompute) {
  // Absurdly slow checkpoint store: the cost condition never holds, so
  // lineage grows exactly as without the policy.
  ClusterConfig cfg = SmallConfig();
  cfg.recovery.auto_checkpoint = true;
  cfg.recovery.min_checkpoint_lineage = 2;
  cfg.recovery.checkpoint_bytes_per_s = 1e-3;
  Cluster c(cfg);
  auto bag = Parallelize(&c, PairData(2000, 32), 8);
  for (int i = 0; i < 5; ++i) {
    bag = MapValues(bag, [](int64_t v) { return v + 1; });
  }
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(bag.lineage_depth(), 6);
  EXPECT_EQ(c.metrics().checkpoints_written, 0);
  EXPECT_DOUBLE_EQ(c.metrics().simulated_time_s, [&] {
    Cluster plain(SmallConfig());
    auto b = Parallelize(&plain, PairData(2000, 32), 8);
    for (int i = 0; i < 5; ++i) {
      b = MapValues(b, [](int64_t v) { return v + 1; });
    }
    return plain.metrics().simulated_time_s;
  }());
}

// --- Driver-level retry ---

TEST(RecoveryTest, DriverRetryCompletesWhereABareRunStaysFailed) {
  // Failure probability high enough that some seed kills a bare run through
  // task-retry exhaustion; the driver-retried run must then complete (fresh
  // draws per attempt: stage indices keep advancing). Draws are
  // deterministic, so the scanned seed is stable forever.
  ClusterConfig base = SmallConfig();
  base.faults.task_failure_prob = 0.2;
  base.faults.max_task_retries = 2;
  Cluster clean(SmallConfig());
  const auto expected = RunPipeline(&clean);
  bool found = false;
  for (uint64_t seed = 0; seed < 64 && !found; ++seed) {
    base.faults.seed = seed;
    Cluster bare(base);
    RunPipeline(&bare);
    if (bare.ok()) continue;
    ASSERT_TRUE(bare.status().IsTaskFailed()) << bare.status().ToString();
    EXPECT_TRUE(RetryableForDriver(bare.status()));
    EXPECT_EQ(bare.metrics().driver_retries, 0);

    ClusterConfig recovering = base;
    recovering.recovery.max_driver_retries = 16;
    recovering.recovery.driver_backoff_s = 0.5;
    auto run_recovered = [&recovering, &expected] {
      Cluster c(recovering);
      std::vector<std::pair<int64_t, int64_t>> out;
      Status st = RunWithRecovery(&c, [&](int) { out = RunPipeline(&c); });
      EXPECT_TRUE(st.ok()) << st.ToString();
      EXPECT_TRUE(c.ok());
      EXPECT_GE(c.metrics().driver_retries, 1);
      EXPECT_LE(c.metrics().driver_retries, 16);
      EXPECT_GT(c.metrics().recovery_time_s, 0.0);
      EXPECT_EQ(out, expected);
      return c.metrics();
    };
    const Metrics first = run_recovered();
    // The whole retried execution is deterministic in (program, config).
    ExpectMetricsEq(first, run_recovered());
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RecoveryTest, NonRetryableFailuresAreNotDriverRetried) {
  ClusterConfig cfg = SmallConfig();
  cfg.recovery.max_driver_retries = 8;
  Cluster c(cfg);
  Status st = RunWithRecovery(&c, [&](int) {
    c.Fail(Status::OutOfMemory("deterministic: retry would reproduce it"));
  });
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.metrics().driver_retries, 0);
}

TEST(RecoveryTest, DriverBackoffEscalatesAndIsChargedAsRecovery) {
  ClusterConfig cfg = SmallConfig();
  cfg.recovery.max_driver_retries = 3;
  cfg.recovery.driver_backoff_s = 1.0;
  Cluster c(cfg);
  Status st = RunWithRecovery(&c, [&](int) {
    c.Fail(Status::TaskFailed("always"));
  });
  EXPECT_TRUE(st.IsTaskFailed());
  EXPECT_EQ(c.metrics().driver_retries, 3);
  // Backoffs 1 + 2 + 4 simulated seconds, all charged to recovery.
  EXPECT_DOUBLE_EQ(c.metrics().recovery_time_s, 7.0);
  EXPECT_DOUBLE_EQ(c.metrics().simulated_time_s, 7.0);
}

// --- Deadlines ---

TEST(RecoveryTest, BlownDeadlineFailsWithDeadlineExceeded) {
  ClusterConfig cfg = SmallConfig();
  cfg.recovery.run_deadline_s = 0.05;  // one job launch already blows it
  Cluster c(cfg);
  RunPipeline(&c);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsDeadlineExceeded());
  EXPECT_TRUE(RetryableForDriver(c.status()));
}

TEST(RecoveryTest, DeadlineIsPerAttemptAndRetriesExhaustDeterministically) {
  // Every attempt blows the same deadline: the driver retries the full
  // budget, then surfaces DeadlineExceeded.
  ClusterConfig cfg = SmallConfig();
  cfg.recovery.run_deadline_s = 0.05;
  cfg.recovery.max_driver_retries = 2;
  cfg.recovery.driver_backoff_s = 0.25;
  Cluster c(cfg);
  Status st = RunWithRecovery(&c, [&](int) { RunPipeline(&c); });
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_EQ(c.metrics().driver_retries, 2);
  Cluster twin(cfg);
  RunWithRecovery(&twin, [&](int) { RunPipeline(&twin); });
  ExpectMetricsEq(c.metrics(), twin.metrics());
}

TEST(RecoveryTest, GenerousDeadlineChangesNothing) {
  ClusterConfig with_deadline = SmallConfig();
  with_deadline.recovery.run_deadline_s = 1e9;
  Cluster c1(SmallConfig()), c2(with_deadline);
  auto r1 = RunPipeline(&c1);
  auto r2 = RunPipeline(&c2);
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  EXPECT_EQ(r1, r2);
  ExpectMetricsEq(c1.metrics(), c2.metrics());
}

// --- Degraded-mode re-planning ---

TEST(RecoveryTest, DegradedAccessorsTrackMachineLossOnlyWhenEnabled) {
  for (bool degraded : {false, true}) {
    ClusterConfig cfg = SmallConfig();
    cfg.faults.machine_loss_times_s = {0.01};
    cfg.recovery.degraded_replanning = degraded;
    Cluster c(cfg);
    EXPECT_EQ(c.effective_parallelism(), 8);
    EXPECT_DOUBLE_EQ(c.broadcast_memory_budget(),
                     cfg.memory_per_machine_bytes);
    c.BeginJob("warmup");  // clock passes 0.01: the loss event fires
    ASSERT_EQ(c.metrics().machines_lost, 1);
    ASSERT_EQ(c.available_machines(), 3);
    if (degraded) {
      EXPECT_EQ(c.planning_machines(), 3);
      EXPECT_EQ(c.planning_cores(), 6);
      EXPECT_EQ(c.effective_parallelism(), 6);  // 8 * 3/4
      EXPECT_DOUBLE_EQ(c.broadcast_memory_budget(),
                       cfg.memory_per_machine_bytes * 3.0 / 4.0);
    } else {
      EXPECT_EQ(c.planning_machines(), 4);
      EXPECT_EQ(c.planning_cores(), 8);
      EXPECT_EQ(c.effective_parallelism(), 8);
      EXPECT_DOUBLE_EQ(c.broadcast_memory_budget(),
                       cfg.memory_per_machine_bytes);
    }
  }
}

TEST(RecoveryTest, TryAccrueBroadcastDoesNotAccountOrPoisonOnOverflow) {
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 1000.0;
  Cluster c(cfg);
  Status st = c.TryAccrueBroadcast(5000.0, "probe");
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_TRUE(c.ok());  // the cluster stays healthy for the fallback plan
  EXPECT_DOUBLE_EQ(c.metrics().broadcast_bytes, 0.0);
  EXPECT_DOUBLE_EQ(c.metrics().peak_machine_bytes, 0.0);
  EXPECT_TRUE(c.TryAccrueBroadcast(500.0, "fits").ok());
  EXPECT_DOUBLE_EQ(c.metrics().broadcast_bytes, 500.0);
}

TEST(RecoveryTest, BroadcastJoinFallsBackToRepartitionWhenDegraded) {
  // The build side fits a full machine but not the budget left after one of
  // four machines died. With degraded re-planning the join demotes itself to
  // a repartition join; without it, the engine still (optimistically) uses
  // the static budget — the pre-PR behavior — and broadcasts.
  auto make_config = [](bool degraded) {
    ClusterConfig cfg = SmallConfig();
    cfg.faults.machine_loss_times_s = {0.01};
    cfg.recovery.degraded_replanning = degraded;
    return cfg;
  };
  auto build_inputs = [](Cluster* c) {
    auto left = Parallelize(c, PairData(2000, 16), 8);
    auto right = Parallelize(c, PairData(16, 16), 2);
    c->BeginJob("fire-loss");  // clock passes the loss event
    return std::make_pair(left, right);
  };
  // Size the budget between the degraded (3/4) and full build footprint.
  ClusterConfig probe_cfg = make_config(false);
  Cluster probe(probe_cfg);
  auto [pl, pr] = build_inputs(&probe);
  const double build_bytes = RealBagBytes(pr) * 2.0;
  ASSERT_GT(build_bytes, 0.0);

  auto run = [&](bool degraded) {
    ClusterConfig cfg = make_config(degraded);
    cfg.memory_per_machine_bytes = build_bytes / 0.9;  // fits; 3/4 doesn't
    Cluster c(cfg);
    auto [left, right] = build_inputs(&c);
    auto joined = BroadcastJoin(left, right);
    // Count, not Collect: the memory budget is sized (tiny) around the
    // broadcast build, and a full collect would OOM on the driver.
    const int64_t out = Count(joined);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::make_pair(out, c.metrics());
  };
  auto [degraded_out, degraded_metrics] = run(true);
  auto [sticky_out, sticky_metrics] = run(false);
  EXPECT_GT(degraded_out, 0);
  // Same results either way (the fallback is a pure strategy change)...
  EXPECT_EQ(degraded_out, sticky_out);
  // ...but the degraded plan shuffled instead of broadcasting.
  EXPECT_EQ(degraded_metrics.plan_fallbacks, 1);
  EXPECT_DOUBLE_EQ(degraded_metrics.broadcast_bytes, 0.0);
  EXPECT_GT(degraded_metrics.shuffle_bytes, sticky_metrics.shuffle_bytes);
  EXPECT_EQ(sticky_metrics.plan_fallbacks, 0);
  EXPECT_GT(sticky_metrics.broadcast_bytes, 0.0);
}

TEST(RecoveryTest, BroadcastJoinStillFailsWithoutFallbackWhenTooBig) {
  // Degraded mode only demotes; a build that does not fit even the full
  // cluster keeps the sticky OOM contract.
  ClusterConfig cfg = SmallConfig();
  cfg.memory_per_machine_bytes = 10.0;
  cfg.recovery.degraded_replanning = true;
  Cluster c(cfg);
  auto left = Parallelize(&c, PairData(2000, 16), 8);
  auto right = Parallelize(&c, PairData(1000, 16), 2);
  // No machine lost: the budget equals the static one, and the fallback is
  // reserved for loss-induced shrinkage — an always-too-big broadcast is a
  // plan bug the engine must surface... unless degraded replanning already
  // demotes it. Matching BroadcastJoin's contract: with the policy on, the
  // probe intercepts the OOM and falls back, keeping the run alive.
  auto joined = BroadcastJoin(left, right);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.metrics().plan_fallbacks, 1);
  EXPECT_GT(joined.Size(), 0);

  ClusterConfig off = SmallConfig();
  off.memory_per_machine_bytes = 10.0;
  Cluster c2(off);
  auto l2 = Parallelize(&c2, PairData(2000, 16), 8);
  auto r2 = Parallelize(&c2, PairData(1000, 16), 2);
  BroadcastJoin(l2, r2);
  EXPECT_FALSE(c2.ok());
  EXPECT_TRUE(c2.status().IsOutOfMemory());
}

// --- End to end: the ISSUE's survival scenario ---

TEST(RecoveryTest, CheckpointedDriverRetriedRunSurvivesWhatKillsTheBareRun) {
  // A fault plan harsh enough to exhaust task retries plus a machine loss:
  // today's engine returns kTaskFailed; with the full recovery policy the
  // same program completes with the same results.
  ClusterConfig base = SmallConfig();
  base.faults.task_failure_prob = 0.25;
  base.faults.max_task_retries = 2;
  base.faults.machine_loss_times_s = {0.5};
  Cluster clean(SmallConfig());
  const auto expected = RunPipeline(&clean);
  bool found = false;
  for (uint64_t seed = 0; seed < 64 && !found; ++seed) {
    base.faults.seed = seed;
    Cluster bare(base);
    RunPipeline(&bare);
    if (bare.ok() || !bare.status().IsTaskFailed()) continue;

    ClusterConfig recovering = base;
    recovering.recovery.max_driver_retries = 16;
    recovering.recovery.driver_backoff_s = 0.5;
    recovering.recovery.auto_checkpoint = true;
    recovering.recovery.min_checkpoint_lineage = 2;
    recovering.recovery.checkpoint_bytes_per_s = 1e12;
    recovering.recovery.degraded_replanning = true;
    Cluster c(recovering);
    std::vector<std::pair<int64_t, int64_t>> out;
    Status st = RunWithRecovery(&c, [&](int) { out = RunPipeline(&c); });
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(out, expected);
    EXPECT_GE(c.metrics().driver_retries, 1);
    found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace matryoshka::engine
