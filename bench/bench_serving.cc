// Wall-clock serving load: an open-loop generator drives the plan-serving
// driver (src/serve) with a fixed synthetic request schedule and reports
// sustained requests/second plus p50/p99 per-request latency on the
// HARDWARE clock (like bench_engine_throughput, not the simulated cluster
// time of the figure benches). BENCH_serving.json is the committed
// snapshot.
//
// Axes:
//   arg0: max_in_flight serving workers (1, 2, 4, 8). The shared engine
//         pool stays fixed at 4 threads, so this isolates the serving
//         layer's concurrency from the engine's.
//   arg1: memo cache (0 = off: every request recomputes; 1 = on: the
//         schedule's repeated (plan, params) points hit).
//
// The schedule is open-loop: all arrivals are generated up front,
// independent of completions, and the queue is sized to admit them all —
// so the measured rate is the driver's saturation throughput and the
// latency percentiles include queue wait, exactly what a serving operator
// sees. A second family (rejection/) shrinks the queue to measure the
// admission-control path under overload.
//
// With --metrics-json=FILE each run records a "wall" object extended with
// requests_per_s / p50_s / p99_s next to the aggregate simulated metrics
// (additive to the matryoshka-bench-metrics-v1 schema).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/bag.h"
#include "engine/ops.h"
#include "engine/shuffle.h"
#include "serve/plan.h"
#include "serve/registry.h"
#include "serve/serving_driver.h"

namespace matryoshka::bench {
namespace {

constexpr int kRequests = 192;
constexpr int kParamPoints = 16;  // distinct (plan, params) points -> 12x reuse
constexpr int kEnginePoolThreads = 4;

engine::ClusterConfig ServedEngine() {
  engine::ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.execute_parallel = true;
  return cfg;
}

/// The served plan: a keyed aggregation over synthetic rows, sized so one
/// request costs a few milliseconds of real work — large enough to contend
/// on the shared pool, small enough for a multi-hundred-request schedule.
serve::PlanSpec AggregationSpec() {
  serve::PlanSpec spec;
  spec.name = "agg";
  spec.description = "parameterized keyed aggregation";
  spec.body = [](engine::Cluster* c, const serve::PlanParams& params) {
    const int64_t mod = params.GetInt("mod", 64);
    std::vector<std::pair<int64_t, int64_t>> kv;
    kv.reserve(1 << 15);
    for (int64_t i = 0; i < (1 << 15); ++i) {
      kv.emplace_back(i % mod, i % 17);
    }
    auto bag = engine::Parallelize(c, std::move(kv), 8);
    auto mapped =
        engine::Map(bag, [](const std::pair<int64_t, int64_t>& p) {
          return std::pair<int64_t, int64_t>(p.first, p.second * 3 + 1);
        });
    auto reduced = engine::ReduceByKey(
        mapped, [](int64_t a, int64_t b) { return a + b; }, 8);
    return serve::CollectOutput(reduced);
  };
  return spec;
}

/// The fixed open-loop schedule: kRequests requests cycling over
/// kParamPoints parameter points and two tenants. Deterministic, so every
/// benchmark iteration (and every commit) offers the identical load.
std::vector<serve::ServeRequest> Schedule() {
  std::vector<serve::ServeRequest> reqs;
  reqs.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    serve::ServeRequest req;
    req.plan = "agg";
    req.tenant = (i % 3 == 0) ? "batch" : "interactive";
    req.params.Set("mod",
                   lang::Value(int64_t{8 + 7 * (i % kParamPoints)}));
    reqs.push_back(std::move(req));
  }
  return reqs;
}

struct LoadOutcome {
  double wall_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  int64_t completed = 0;
  int64_t rejected = 0;
  serve::ServingDriver::Stats stats;
};

LoadOutcome DriveSchedule(int max_in_flight, bool cache_on,
                          int queue_depth, bool budgeted = false,
                          bool storm = false) {
  serve::PlanRegistry registry;
  const Status registered = registry.Register(AggregationSpec());
  MATRYOSHKA_CHECK(registered.ok()) << registered.message();

  serve::ServingConfig cfg;
  cfg.cluster = ServedEngine();
  if (budgeted) {
    // The served plan map-side combines down to <=113 keys per producer, so
    // the budget must undercut even that (~2 KB) for every request's
    // shuffle + keyed build to go through spill files — the surface the
    // real-fault storm attacks.
    cfg.cluster.real_memory_budget_bytes = 512;
  }
  if (storm) {
    cfg.cluster.real_faults.seed = 2021;
    cfg.cluster.real_faults.write_eio_prob = 0.05;
    cfg.cluster.real_faults.read_eio_prob = 0.05;
    cfg.cluster.real_faults.short_write_prob = 0.1;
    cfg.cluster.real_faults.short_read_prob = 0.1;
    // ENOSPC lands on the aggregator's chunk writes, where the disk-down
    // drain recovers it (counted in inmemory_fallbacks). No corruption arm
    // here: a flipped byte detected at the aggregator's Finish merge is
    // typed-fatal by design (the elements were already consumed), which
    // would turn the storm into a failure-rate bench — that path is locked
    // by the chaos test suite instead.
    cfg.cluster.real_faults.write_enospc_prob = 0.01;
    // Environment failures that outlast the IO layer's own recovery are
    // retried on a fresh cluster with the epoch advanced.
    cfg.real_fault_retries = 2;
  }
  cfg.max_in_flight = max_in_flight;
  cfg.max_queue_depth = queue_depth;
  cfg.cache_entries = cache_on ? 64 : 0;
  cfg.pool_threads = kEnginePoolThreads;
  serve::ServingDriver driver(&registry, cfg);

  const std::vector<serve::ServeRequest> schedule = Schedule();
  std::vector<std::shared_ptr<serve::ServeTicket>> tickets;
  tickets.reserve(schedule.size());

  Stopwatch watch;
  for (const serve::ServeRequest& req : schedule) {
    tickets.push_back(driver.Submit(req));
  }
  std::vector<double> latencies;
  latencies.reserve(tickets.size());
  LoadOutcome out;
  for (auto& ticket : tickets) {
    const serve::ServeResponse& resp = ticket->Wait();
    if (resp.rejected) {
      ++out.rejected;
    } else if (resp.status.ok()) {
      ++out.completed;
      latencies.push_back(resp.wall_s);
    }
  }
  out.wall_s = watch.ElapsedSeconds();

  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    const std::size_t n = latencies.size();
    out.p50_s = latencies[n / 2];
    out.p99_s = latencies[(n * 99) / 100 < n ? (n * 99) / 100 : n - 1];
  }
  out.stats = driver.GetStats();
  return out;
}

void BM_ServeSustained(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const bool cache_on = state.range(1) != 0;
  LoadOutcome out;
  for (auto _ : state) {
    out = DriveSchedule(workers, cache_on, /*queue_depth=*/kRequests);
    state.SetIterationTime(out.wall_s);
  }
  state.counters["req_per_s"] =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0;
  state.counters["p50_ms"] = out.p50_s * 1e3;
  state.counters["p99_ms"] = out.p99_s * 1e3;
  state.counters["completed"] = static_cast<double>(out.completed);
  state.counters["cache_hits"] = static_cast<double>(out.stats.cache.hits);

  ObsSession::WallStats wall;
  wall.real_s = out.wall_s;
  wall.elements = out.stats.aggregate.elements_processed;
  wall.elements_per_s =
      out.wall_s > 0
          ? static_cast<double>(out.stats.aggregate.elements_processed) /
                out.wall_s
          : 0;
  wall.has_latency = true;
  wall.requests_per_s =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0;
  wall.p50_s = out.p50_s;
  wall.p99_s = out.p99_s;
  ObsSession::Get().ReportNamedRun(
      "serving/sustained/" + std::to_string(workers) + "/" +
          (cache_on ? "cache" : "nocache"),
      out.stats.aggregate, out.stats.failed == 0,
      out.stats.failed == 0 ? "OK" : "failures under load", wall);
}

/// Overload arm: the queue admits only a quarter of the schedule, so
/// admission control must reject the rest without hurting the admitted
/// requests' latency.
void BM_ServeOverload(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  LoadOutcome out;
  for (auto _ : state) {
    out = DriveSchedule(workers, /*cache_on=*/false,
                        /*queue_depth=*/kRequests / 4);
    state.SetIterationTime(out.wall_s);
  }
  state.counters["req_per_s"] =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0;
  state.counters["rejected"] = static_cast<double>(out.rejected);
  state.counters["p99_ms"] = out.p99_s * 1e3;

  ObsSession::WallStats wall;
  wall.real_s = out.wall_s;
  wall.elements = out.stats.aggregate.elements_processed;
  wall.elements_per_s =
      out.wall_s > 0
          ? static_cast<double>(out.stats.aggregate.elements_processed) /
                out.wall_s
          : 0;
  wall.has_latency = true;
  wall.requests_per_s =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0;
  wall.p50_s = out.p50_s;
  wall.p99_s = out.p99_s;
  ObsSession::Get().ReportNamedRun(
      "serving/overload/" + std::to_string(workers),
      out.stats.aggregate, true, "OK", wall);
}

/// Chaos arm: the same saturation schedule over a tiny real memory budget
/// (every request spills), calm vs. under a seeded real-fault storm —
/// transient EIO + short transfers recovered by the IO layer, rare ENOSPC /
/// corruption recovered by in-memory fallback or a serving-level retry on a
/// fresh cluster. Cache off so every request actually touches disk. The A/B
/// shows proportional throughput degradation with nonzero
/// real_io_retries / inmemory_fallbacks in the aggregate metrics under
/// storm, and all four real-fault counters exactly zero when calm.
void BM_ServeStorm(benchmark::State& state) {
  const bool storm = state.range(0) != 0;
  LoadOutcome out;
  for (auto _ : state) {
    out = DriveSchedule(/*max_in_flight=*/4, /*cache_on=*/false,
                        /*queue_depth=*/kRequests, /*budgeted=*/true, storm);
    state.SetIterationTime(out.wall_s);
  }
  state.counters["req_per_s"] =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0;
  state.counters["p99_ms"] = out.p99_s * 1e3;
  state.counters["completed"] = static_cast<double>(out.completed);
  state.counters["io_faults"] =
      static_cast<double>(out.stats.aggregate.real_io_faults_injected);
  state.counters["io_retries"] =
      static_cast<double>(out.stats.aggregate.real_io_retries);
  state.counters["fallbacks"] =
      static_cast<double>(out.stats.aggregate.inmemory_fallbacks);
  state.counters["fault_retries"] =
      static_cast<double>(out.stats.real_fault_retries);

  ObsSession::WallStats wall;
  wall.real_s = out.wall_s;
  wall.elements = out.stats.aggregate.elements_processed;
  wall.elements_per_s =
      out.wall_s > 0
          ? static_cast<double>(out.stats.aggregate.elements_processed) /
                out.wall_s
          : 0;
  wall.has_latency = true;
  wall.requests_per_s =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0;
  wall.p50_s = out.p50_s;
  wall.p99_s = out.p99_s;
  ObsSession::Get().ReportNamedRun(
      std::string("serving/chaos/") + (storm ? "storm" : "calm"),
      out.stats.aggregate, out.stats.failed == 0,
      out.stats.failed == 0 ? "OK" : "failures under load", wall);
}

BENCHMARK(BM_ServeSustained)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeStorm)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeOverload)
    ->Arg(2)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
