#ifndef MATRYOSHKA_OBS_CHROME_TRACE_H_
#define MATRYOSHKA_OBS_CHROME_TRACE_H_

#include <ostream>
#include <string>

#include "obs/trace_recorder.h"

/// Chrome/Perfetto `trace_event` JSON export. Open the file in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Layout: one "process" per recorded run, one "thread" per simulated core
/// slot (tid 1..slots; tid 0 is the driver lane carrying job-launch, stage,
/// network, and recovery spans). Idle gaps on the slot lanes are the
/// capped-parallelism / launch-overhead effects of the paper's Fig. 1,
/// rendered literally.
///
/// Besides the standard "traceEvents" array the top-level object carries two
/// Matryoshka extensions (ignored by the viewers): "matryoshkaBreakdown"
/// (per-run time buckets, breakdown.h) and "matryoshkaPlan" (per-run
/// lowering decisions, plan_capture.h).
namespace matryoshka::obs {

/// Serializes all archived runs of `recorder`.
void WriteChromeTrace(const TraceRecorder& recorder, std::ostream& os);

/// Convenience: the trace as a string (used by tests for byte-identity).
std::string ChromeTraceToString(const TraceRecorder& recorder);

}  // namespace matryoshka::obs

#endif  // MATRYOSHKA_OBS_CHROME_TRACE_H_
