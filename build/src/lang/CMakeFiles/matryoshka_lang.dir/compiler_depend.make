# Empty compiler generated dependencies file for matryoshka_lang.
# This may be replaced when dependencies are built.
