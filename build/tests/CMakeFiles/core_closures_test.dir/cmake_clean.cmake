file(REMOVE_RECURSE
  "CMakeFiles/core_closures_test.dir/core_closures_test.cc.o"
  "CMakeFiles/core_closures_test.dir/core_closures_test.cc.o.d"
  "core_closures_test"
  "core_closures_test.pdb"
  "core_closures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_closures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
