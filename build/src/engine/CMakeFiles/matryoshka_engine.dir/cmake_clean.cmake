file(REMOVE_RECURSE
  "CMakeFiles/matryoshka_engine.dir/cluster.cc.o"
  "CMakeFiles/matryoshka_engine.dir/cluster.cc.o.d"
  "libmatryoshka_engine.a"
  "libmatryoshka_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matryoshka_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
