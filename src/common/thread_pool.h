#ifndef MATRYOSHKA_COMMON_THREAD_POOL_H_
#define MATRYOSHKA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace matryoshka {

/// Move-only type-erased callable used for task storage. Unlike
/// std::function it accepts move-only captures and costs exactly one heap
/// allocation per *task* (std::function copies re-allocate any capture above
/// its small-buffer size, and fork-join loops used to pay that per index).
class TaskFunction {
 public:
  TaskFunction() = default;

  template <typename F>
  TaskFunction(F f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Impl<F>>(std::move(f))) {}

  TaskFunction(TaskFunction&&) = default;
  TaskFunction& operator=(TaskFunction&&) = default;

  void operator()() { impl_->Call(); }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual void Call() = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F g) : f(std::move(g)) {}
    void Call() override { f(); }
    F f;
  };
  std::unique_ptr<Base> impl_;
};

/// Fixed-size worker pool used by the engine to execute partition tasks in
/// parallel when ClusterConfig::execute_parallel is set. Task submission is
/// fire-and-forget; use ParallelFor for fork-join workloads.
///
/// Sharing contract (the serving layer leans on this): one pool may be
/// shared by any number of driver threads, each running its own Cluster.
/// Submit and ParallelFor are safe to call concurrently from different
/// threads; every ParallelFor call carries its own completion state, so
/// concurrent fork-join loops from different drivers interleave on the
/// workers without observing each other. Only WaitIdle is global (it waits
/// for ALL submitted work, whoever submitted it) — concurrent drivers
/// should rely on ParallelFor's own barrier instead.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  /// Worker count to use when the caller does not care: one per hardware
  /// thread, with a fixed fallback when the hardware does not say.
  static std::size_t DefaultThreads();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks. Tasks may start in any order and run
  /// concurrently with each other and with the submitting thread.
  ///
  /// Exception safety: a fire-and-forget task that throws is swallowed on
  /// the worker (logged and counted, see UncaughtTaskExceptions) instead of
  /// unwinding the worker loop into std::terminate. Fork-join callers get
  /// real propagation: ParallelFor rethrows a body's exception on the
  /// calling thread after the barrier.
  void Submit(TaskFunction task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  std::size_t num_threads() const { return threads_.size(); }

  /// Process-wide count of fire-and-forget tasks whose uncaught exception
  /// was swallowed by a worker. Diagnostics only (tests assert it stays
  /// zero on healthy paths); ParallelFor bodies never count here — their
  /// exceptions propagate to the caller.
  static int64_t UncaughtTaskExceptions();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<TaskFunction> queue_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Runs body(i) for i in [0, n) and waits for completion (full barrier).
///
/// Concurrency contract:
///  - The index range is split into contiguous chunks (about 4 per worker,
///    never more than n), claimed dynamically. Within a chunk, indices run
///    sequentially ascending on one thread; distinct chunks may run
///    concurrently on pool workers AND on the calling thread, which
///    participates in the loop instead of idling. `body` must therefore be
///    safe to invoke concurrently for distinct indices; it is invoked
///    exactly once per index.
///  - On return, every body(i) has completed, and its writes are visible to
///    the caller (the completion handshake synchronizes).
///  - With `pool == nullptr` or `n <= 1` the loop runs inline on the calling
///    thread — same results, zero setup cost. Callers get bit-identical
///    output for any pool size as long as bodies only write state owned by
///    their own index (the engine's operators write out[i] only).
///  - Re-entrant: a body may itself call ParallelFor on the same pool.
///    Progress is guaranteed because every caller drains remaining chunks
///    itself before waiting; a nested call can never block on pool capacity.
///  - Exception safety: a body that throws does not terminate the process.
///    The failure with the LOWEST chunk start index among the bodies that
///    ran is captured; remaining chunks are claimed but their bodies
///    skipped; the barrier completes; then the captured exception is
///    rethrown on the CALLING thread. Bodies already running when another
///    fails run to completion (they are never interrupted mid-index).
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& body);

}  // namespace matryoshka

#endif  // MATRYOSHKA_COMMON_THREAD_POOL_H_
