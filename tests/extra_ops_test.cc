// Tests for the secondary engine operators (sample, subtract, intersection,
// aggregateByKey, top-k) and their lifted counterparts.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/lifted_extra.h"
#include "core/matryoshka.h"
#include "engine/extra_ops.h"

namespace matryoshka {
namespace {

using core::GroupByKeyIntoNestedBag;
using engine::Bag;
using engine::Cluster;
using engine::ClusterConfig;
using engine::Parallelize;

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> v(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

template <typename T>
std::vector<T> Sorted(std::vector<T> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class ExtraOpsTest : public ::testing::Test {
 protected:
  ExtraOpsTest() : cluster_(TestConfig()) {}
  Cluster cluster_;
};

TEST_F(ExtraOpsTest, SampleFractionRoughlyHonored) {
  auto data = Iota(20000);
  auto bag = Parallelize(&cluster_, data, 8);
  auto s = engine::Sample(bag, 0.25, 7);
  EXPECT_NEAR(static_cast<double>(s.Size()), 5000.0, 400.0);
  // Sampled elements are a subset.
  std::set<int64_t> all(data.begin(), data.end());
  for (int64_t x : s.ToVector()) EXPECT_TRUE(all.count(x));
}

TEST_F(ExtraOpsTest, SampleDeterministicPerSeed) {
  auto bag = Parallelize(&cluster_, Iota(1000), 4);
  auto a = engine::Sample(bag, 0.5, 11).ToVector();
  auto b = engine::Sample(bag, 0.5, 11).ToVector();
  auto c = engine::Sample(bag, 0.5, 12).ToVector();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_F(ExtraOpsTest, SampleEdgeFractions) {
  auto bag = Parallelize(&cluster_, Iota(100), 4);
  EXPECT_EQ(engine::Sample(bag, 1.0, 1).Size(), 100);
  EXPECT_LE(engine::Sample(bag, 0.0, 1).Size(), 1);  // ~0 (boundary hash)
}

TEST_F(ExtraOpsTest, SubtractRemovesAllOccurrences) {
  std::vector<int64_t> a{1, 2, 2, 3, 4};
  std::vector<int64_t> b{2, 4, 9};
  auto ab = Parallelize(&cluster_, a, 3);
  auto bb = Parallelize(&cluster_, b, 2);
  EXPECT_EQ(Sorted(engine::Subtract(ab, bb, 4).ToVector()),
            (std::vector<int64_t>{1, 3}));
}

TEST_F(ExtraOpsTest, SubtractEmptyRight) {
  auto a = Parallelize(&cluster_, Iota(10), 3);
  auto b = Parallelize(&cluster_, std::vector<int64_t>{}, 2);
  EXPECT_EQ(Sorted(engine::Subtract(a, b).ToVector()), Iota(10));
}

TEST_F(ExtraOpsTest, IntersectionDeduplicates) {
  std::vector<int64_t> a{1, 2, 2, 3};
  std::vector<int64_t> b{2, 2, 3, 5};
  auto ab = Parallelize(&cluster_, a, 2);
  auto bb = Parallelize(&cluster_, b, 3);
  EXPECT_EQ(Sorted(engine::Intersection(ab, bb, 4).ToVector()),
            (std::vector<int64_t>{2, 3}));
}

TEST_F(ExtraOpsTest, AggregateByKeyComputesAverages) {
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 90; ++i) data.emplace_back(i % 3, i);
  auto bag = Parallelize(&cluster_, data, 6);
  using Acc = std::pair<int64_t, int64_t>;  // (sum, count)
  auto agg = engine::AggregateByKey(
      bag, Acc{0, 0},
      [](Acc acc, int64_t v) {
        return Acc{acc.first + v, acc.second + 1};
      },
      [](Acc x, const Acc& y) {
        return Acc{x.first + y.first, x.second + y.second};
      },
      4);
  auto v = agg.ToVector();
  ASSERT_EQ(v.size(), 3u);
  for (auto& [k, acc] : v) {
    EXPECT_EQ(acc.second, 30);
    // Sum of i in 0..89 with i % 3 == k.
    int64_t expect = 0;
    for (int64_t i = 0; i < 90; ++i) {
      if (i % 3 == k) expect += i;
    }
    EXPECT_EQ(acc.first, expect) << "key " << k;
  }
}

TEST_F(ExtraOpsTest, AggregateByKeyMatchesReduceByKeyForMonoids) {
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 200; ++i) data.emplace_back(i % 7, i);
  auto bag = Parallelize(&cluster_, data, 5);
  auto plus = [](int64_t a, int64_t b) { return a + b; };
  auto via_agg = Sorted(engine::AggregateByKey(bag, int64_t{0}, plus, plus, 4)
                            .ToVector());
  auto via_rbk = Sorted(engine::ReduceByKey(bag, plus, 4).ToVector());
  EXPECT_EQ(via_agg, via_rbk);
}

TEST_F(ExtraOpsTest, TopKSmallest) {
  std::vector<int64_t> data{5, 1, 9, 3, 7, 2, 8};
  auto bag = Parallelize(&cluster_, data, 3);
  auto top = engine::TopK(bag, 3, std::less<int64_t>());
  EXPECT_EQ(top, (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(ExtraOpsTest, TopKLargestViaGreater) {
  auto bag = Parallelize(&cluster_, Iota(100), 4);
  auto top = engine::TopK(bag, 2, std::greater<int64_t>());
  EXPECT_EQ(top, (std::vector<int64_t>{99, 98}));
}

TEST_F(ExtraOpsTest, TopKMoreThanSize) {
  auto bag = Parallelize(&cluster_, Iota(3), 2);
  EXPECT_EQ(engine::TopK(bag, 10, std::less<int64_t>()).size(), 3u);
}

TEST_F(ExtraOpsTest, TopKChargesAJob) {
  auto bag = Parallelize(&cluster_, Iota(10), 2);
  const int64_t before = cluster_.metrics().jobs;
  engine::TopK(bag, 2, std::less<int64_t>());
  EXPECT_EQ(cluster_.metrics().jobs, before + 1);
}

// ---- lifted counterparts ----

class LiftedExtraTest : public ::testing::Test {
 protected:
  LiftedExtraTest() : cluster_(TestConfig()) {}

  core::NestedBag<int64_t, int64_t> MakeNested(
      const std::vector<std::pair<int64_t, int64_t>>& data) {
    return GroupByKeyIntoNestedBag(Parallelize(&cluster_, data, 4));
  }

  std::map<int64_t, std::multiset<int64_t>> PerGroup(
      const core::NestedBag<int64_t, int64_t>& nested,
      const core::InnerBag<int64_t>& result) {
    std::map<core::Tag, int64_t> tag_to_key;
    for (auto& [t, k] : nested.keys().repr().ToVector()) tag_to_key[t] = k;
    std::map<int64_t, std::multiset<int64_t>> out;
    for (auto& [t, v] : result.repr().ToVector()) {
      out[tag_to_key.at(t)].insert(v);
    }
    return out;
  }

  Cluster cluster_;
};

TEST_F(LiftedExtraTest, LiftedSubtractStaysWithinGroups) {
  // Group 1 subtracts {10}; group 2 also CONTAINS 10 but subtracts nothing,
  // so its 10 must survive.
  auto a = MakeNested({{1, 10}, {1, 11}, {2, 10}});
  std::vector<std::pair<core::Tag, int64_t>> b_rows;
  for (auto& [t, k] : a.keys().repr().ToVector()) {
    if (k == 1) b_rows.emplace_back(t, 10);
  }
  core::InnerBag<int64_t> b(a.ctx(), Parallelize(&cluster_, b_rows, 2));
  auto result = core::LiftedSubtract(a.values(), b);
  auto per_group = PerGroup(a, result);
  EXPECT_EQ(per_group[1], (std::multiset<int64_t>{11}));
  EXPECT_EQ(per_group[2], (std::multiset<int64_t>{10}));
}

TEST_F(LiftedExtraTest, LiftedIntersectionStaysWithinGroups) {
  auto a = MakeNested({{1, 7}, {1, 8}, {2, 7}});
  std::vector<std::pair<core::Tag, int64_t>> b_rows;
  for (auto& [t, k] : a.keys().repr().ToVector()) {
    if (k == 1) {
      b_rows.emplace_back(t, 7);
      b_rows.emplace_back(t, 9);
    }
  }
  core::InnerBag<int64_t> b(a.ctx(), Parallelize(&cluster_, b_rows, 2));
  auto result = core::LiftedIntersection(a.values(), b);
  auto per_group = PerGroup(a, result);
  EXPECT_EQ(per_group[1], (std::multiset<int64_t>{7}));
  EXPECT_EQ(per_group.count(2), 0u);  // group 2's side b is empty
}

TEST_F(LiftedExtraTest, LiftedSampleSamplesPerGroup) {
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t g = 0; g < 4; ++g) {
    for (int64_t i = 0; i < 2000; ++i) data.emplace_back(g, i);
  }
  auto nested = MakeNested(data);
  auto sampled = core::LiftedSample(nested.values(), 0.5, 3);
  auto per_group = PerGroup(nested, sampled);
  for (auto& [g, vs] : per_group) {
    EXPECT_NEAR(static_cast<double>(vs.size()), 1000.0, 200.0)
        << "group " << g;
  }
}

TEST_F(LiftedExtraTest, LiftedAggregateByKeyPerGroupAverages) {
  // Per group: average value per key parity.
  std::vector<std::pair<int64_t, int64_t>> data{
      {1, 2}, {1, 4}, {1, 3}, {2, 10}};
  auto nested = MakeNested(data);
  auto keyed = core::LiftedMap(nested.values(), [](int64_t v) {
    return std::pair<int64_t, int64_t>(v % 2, v);
  });
  using Acc = std::pair<int64_t, int64_t>;
  auto agg = core::LiftedAggregateByKey(
      keyed, Acc{0, 0},
      [](Acc acc, int64_t v) {
        return Acc{acc.first + v, acc.second + 1};
      },
      [](Acc x, const Acc& y) {
        return Acc{x.first + y.first, x.second + y.second};
      });
  // Flatten and check: group 1 has parity-0 values {2,4} and parity-1 {3};
  // group 2 parity-0 {10}.
  std::multiset<std::pair<int64_t, Acc>> got;
  for (auto& p : agg.Flatten().ToVector()) got.insert(p);
  EXPECT_TRUE(got.count({0, Acc{6, 2}}));
  EXPECT_TRUE(got.count({1, Acc{3, 1}}));
  EXPECT_TRUE(got.count({0, Acc{10, 1}}));
  EXPECT_EQ(got.size(), 3u);
}

}  // namespace
}  // namespace matryoshka
