// Tests for the Matryoshka nesting primitives: Tag, LiftingContext,
// InnerScalar, InnerBag, and NestedBag. These check the semantics the
// correctness proof (Sec. 7) relies on: lifted operations commute with the
// nested<->flat representation change.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/matryoshka.h"

namespace matryoshka::core {
namespace {

using engine::Bag;
using engine::Cluster;
using engine::ClusterConfig;
using engine::Parallelize;

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

template <typename T>
std::vector<T> Sorted(std::vector<T> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(TagTest, RootAndChild) {
  Tag r = Tag::Root(7);
  EXPECT_EQ(r.depth(), 1u);
  EXPECT_EQ(r.leaf_id(), 7u);
  Tag c = r.Child(3);
  EXPECT_EQ(c.depth(), 2u);
  EXPECT_EQ(c.id_at(0), 7u);
  EXPECT_EQ(c.id_at(1), 3u);
  EXPECT_EQ(c.Parent(), r);
}

TEST(TagTest, EqualityAndOrdering) {
  EXPECT_EQ(Tag::Root(1), Tag::Root(1));
  EXPECT_NE(Tag::Root(1), Tag::Root(2));
  EXPECT_NE(Tag::Root(1), Tag::Root(1).Child(0));
  EXPECT_LT(Tag::Root(1), Tag::Root(2));
  EXPECT_LT(Tag::Root(5), Tag::Root(1).Child(0));  // depth dominates
}

TEST(TagTest, HashDistinguishesDepth) {
  std::hash<Tag> h;
  EXPECT_NE(h(Tag::Root(1)), h(Tag::Root(1).Child(1)));
  EXPECT_EQ(h(Tag::Root(9)), h(Tag::Root(9)));
}

TEST(TagTest, ToStringShowsComposite) {
  EXPECT_EQ(Tag::Root(1).Child(2).ToString(), "[1.2]");
}

class CorePrimitivesTest : public ::testing::Test {
 protected:
  CorePrimitivesTest() : cluster_(TestConfig()) {}

  /// A NestedBag of (key -> values) built from flat pairs.
  NestedBag<int64_t, int64_t> MakeNested(
      const std::vector<std::pair<int64_t, int64_t>>& data,
      OptimizerOptions opts = {}) {
    auto bag = Parallelize(&cluster_, data, 5);
    return GroupByKeyIntoNestedBag(bag, opts);
  }

  Cluster cluster_;
};

TEST_F(CorePrimitivesTest, GroupByKeyIntoNestedBagStructure) {
  auto nested = MakeNested({{1, 10}, {1, 11}, {2, 20}, {3, 30}, {3, 31}});
  EXPECT_EQ(nested.ctx().num_tags(), 3);
  EXPECT_EQ(nested.ctx().tags().Size(), 3);
  EXPECT_EQ(nested.keys().repr().Size(), 3);
  EXPECT_EQ(nested.values().repr().Size(), 5);
  // Keys InnerScalar has one (tag, key) per group with unique tags.
  auto keys = nested.keys().repr().ToVector();
  std::set<Tag> tags;
  std::set<int64_t> key_set;
  for (auto& [t, k] : keys) {
    tags.insert(t);
    key_set.insert(k);
  }
  EXPECT_EQ(tags.size(), 3u);
  EXPECT_EQ(key_set, (std::set<int64_t>{1, 2, 3}));
}

TEST_F(CorePrimitivesTest, NestedBagValuesShareKeyTags) {
  auto nested = MakeNested({{1, 10}, {1, 11}, {2, 20}});
  std::map<Tag, int64_t> tag_to_key;
  for (auto& [t, k] : nested.keys().repr().ToVector()) tag_to_key[t] = k;
  for (auto& [t, v] : nested.values().repr().ToVector()) {
    ASSERT_TRUE(tag_to_key.count(t));
    // Values 1x belong to key 1, 2x to key 2.
    EXPECT_EQ(v / 10, tag_to_key[t]);
  }
}

TEST_F(CorePrimitivesTest, LiftFlatBagAssignsOneTagPerElement) {
  auto bag = Parallelize(&cluster_, std::vector<int64_t>{5, 6, 7}, 2);
  InnerScalar<int64_t> lifted = LiftFlatBag(bag);
  EXPECT_EQ(lifted.ctx().num_tags(), 3);
  auto v = lifted.repr().ToVector();
  std::set<Tag> tags;
  for (auto& [t, x] : v) tags.insert(t);
  EXPECT_EQ(tags.size(), 3u);
  EXPECT_EQ(Sorted(lifted.Flatten().ToVector()),
            (std::vector<int64_t>{5, 6, 7}));
}

TEST_F(CorePrimitivesTest, UnaryScalarOpAppliesPerTag) {
  auto bag = Parallelize(&cluster_, std::vector<int64_t>{1, 2, 3}, 2);
  auto lifted = LiftFlatBag(bag);
  auto negated = UnaryScalarOp(lifted, [](int64_t x) { return -x; });
  EXPECT_EQ(Sorted(negated.Flatten().ToVector()),
            (std::vector<int64_t>{-3, -2, -1}));
  EXPECT_EQ(negated.repr().Size(), 3);
}

TEST_F(CorePrimitivesTest, BinaryScalarOpJoinsMatchingTags) {
  auto bag = Parallelize(&cluster_, std::vector<int64_t>{1, 2, 3}, 2);
  auto a = LiftFlatBag(bag);
  auto doubled = UnaryScalarOp(a, [](int64_t x) { return 2 * x; });
  auto sum = BinaryScalarOp(a, doubled,
                            [](int64_t x, int64_t y) { return x + y; });
  // Each tag: x + 2x = 3x.
  EXPECT_EQ(Sorted(sum.Flatten().ToVector()), (std::vector<int64_t>{3, 6, 9}));
}

TEST_F(CorePrimitivesTest, BinaryScalarOpMixedValueTypes) {
  auto bag = Parallelize(&cluster_, std::vector<int64_t>{4, 9}, 2);
  auto a = LiftFlatBag(bag);
  auto as_double = UnaryScalarOp(a, [](int64_t x) { return 0.5 * x; });
  auto ratio = BinaryScalarOp(
      a, as_double, [](int64_t x, double y) { return static_cast<double>(x) / y; });
  for (double r : ratio.Flatten().ToVector()) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST_F(CorePrimitivesTest, LiftConstantReplicatesPerTag) {
  auto nested = MakeNested({{1, 10}, {2, 20}, {3, 30}});
  auto c = LiftConstant(nested.ctx(), int64_t{42});
  EXPECT_EQ(c.repr().Size(), 3);
  for (int64_t v : c.Flatten().ToVector()) EXPECT_EQ(v, 42);
}

TEST_F(CorePrimitivesTest, LiftedMapPreservesTags) {
  auto nested = MakeNested({{1, 10}, {1, 11}, {2, 20}});
  auto mapped = LiftedMap(nested.values(), [](int64_t v) { return v + 1; });
  EXPECT_EQ(Sorted(mapped.Flatten().ToVector()),
            (std::vector<int64_t>{11, 12, 21}));
  // Tags unchanged: same multiset of tags as input.
  auto in_tags = engine::Keys(nested.values().repr()).ToVector();
  auto out_tags = engine::Keys(mapped.repr()).ToVector();
  EXPECT_EQ(Sorted(in_tags), Sorted(out_tags));
}

TEST_F(CorePrimitivesTest, LiftedFilterDropsWithinGroups) {
  auto nested = MakeNested({{1, 10}, {1, 11}, {2, 20}, {2, 21}});
  auto odd = LiftedFilter(nested.values(),
                          [](int64_t v) { return v % 2 == 1; });
  EXPECT_EQ(Sorted(odd.Flatten().ToVector()),
            (std::vector<int64_t>{11, 21}));
}

TEST_F(CorePrimitivesTest, LiftedFlatMapExpandsPerElement) {
  auto nested = MakeNested({{1, 10}, {2, 20}});
  auto out = LiftedFlatMap(nested.values(), [](int64_t v) {
    return std::vector<int64_t>{v, v + 1};
  });
  EXPECT_EQ(out.repr().Size(), 4);
}

TEST_F(CorePrimitivesTest, LiftedReducePerGroup) {
  auto nested = MakeNested({{1, 10}, {1, 11}, {2, 20}});
  auto sums = LiftedReduce(nested.values(),
                           [](int64_t a, int64_t b) { return a + b; });
  auto with_keys = ZipWithKeys(nested.keys(), sums);
  auto v = Sorted(with_keys.ToVector());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], (std::pair<int64_t, int64_t>{1, 21}));
  EXPECT_EQ(v[1], (std::pair<int64_t, int64_t>{2, 20}));
}

TEST_F(CorePrimitivesTest, LiftedCountCountsPerGroup) {
  auto nested = MakeNested({{1, 10}, {1, 11}, {1, 12}, {2, 20}});
  auto counts = LiftedCount(nested.values());
  auto v = Sorted(ZipWithKeys(nested.keys(), counts).ToVector());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].second, 3);
  EXPECT_EQ(v[1].second, 1);
}

TEST_F(CorePrimitivesTest, LiftedCountProducesZeroForEmptyBags) {
  // Filter everything out of group 2, then count: group 2 must report 0
  // (Sec. 4.4: operations producing output for empty bags need the tag bag).
  auto nested = MakeNested({{1, 10}, {2, 21}});
  auto filtered = LiftedFilter(nested.values(),
                               [](int64_t v) { return v % 2 == 0; });
  auto counts = LiftedCount(filtered);
  auto v = Sorted(ZipWithKeys(nested.keys(), counts).ToVector());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], (std::pair<int64_t, int64_t>{1, 1}));
  EXPECT_EQ(v[1], (std::pair<int64_t, int64_t>{2, 0}));
}

TEST_F(CorePrimitivesTest, LiftedFoldUsesZeroForEmpty) {
  auto nested = MakeNested({{1, 10}, {2, 21}});
  auto none = LiftedFilter(nested.values(), [](int64_t) { return false; });
  auto folded = LiftedFold(
      none, int64_t{-7}, [](int64_t v) { return v; },
      [](int64_t a, int64_t b) { return a + b; });
  for (auto& [k, s] : ZipWithKeys(nested.keys(), folded).ToVector()) {
    EXPECT_EQ(s, -7);
  }
}

TEST_F(CorePrimitivesTest, LiftedDistinctPerGroup) {
  // Same value in two groups must survive in both; duplicates within a
  // group collapse.
  auto nested = MakeNested({{1, 10}, {1, 10}, {2, 10}});
  auto d = LiftedDistinct(nested.values());
  EXPECT_EQ(d.repr().Size(), 2);
  auto counts = LiftedCount(d);
  for (auto& [k, c] : ZipWithKeys(nested.keys(), counts).ToVector()) {
    EXPECT_EQ(c, 1);
  }
}

TEST_F(CorePrimitivesTest, LiftedReduceByKeyKeepsGroupsApart) {
  // Inner bags of (word, 1) pairs; the same word in different groups must
  // not merge (composite (tag, key) rekeying).
  std::vector<std::pair<int64_t, std::pair<int64_t, int64_t>>> data{
      {1, {100, 1}}, {1, {100, 1}}, {1, {200, 1}}, {2, {100, 1}}};
  auto bag = Parallelize(&cluster_, data, 3);
  auto nested = GroupByKeyIntoNestedBag(bag);
  auto counts = LiftedReduceByKey(
      nested.values(), [](int64_t a, int64_t b) { return a + b; });
  // Group 1: (100,2), (200,1); group 2: (100,1).
  std::map<std::pair<int64_t, int64_t>, int64_t> result;
  auto keyed = ZipWithKeys(nested.keys(),
                           LiftedCount(counts));  // counts per group
  for (auto& [k, c] : keyed.ToVector()) {
    result[{k, 0}] = c;
  }
  EXPECT_EQ((result[{1, 0}]), 2);  // two distinct words in group 1
  EXPECT_EQ((result[{2, 0}]), 1);
  auto all = Sorted(counts.Flatten().ToVector());
  EXPECT_EQ(all, (std::vector<std::pair<int64_t, int64_t>>{
                     {100, 1}, {100, 2}, {200, 1}}));
}

TEST_F(CorePrimitivesTest, LiftedJoinMatchesWithinGroupOnly) {
  std::vector<std::pair<int64_t, std::pair<int64_t, int64_t>>> left{
      {1, {100, 5}}, {2, {100, 6}}};
  std::vector<std::pair<int64_t, std::pair<int64_t, int64_t>>> right{
      {1, {100, 50}}};
  auto lb = GroupByKeyIntoNestedBag(Parallelize(&cluster_, left, 2));
  // Build a second InnerBag in the SAME tag space by reusing lb's context.
  std::vector<std::pair<Tag, std::pair<int64_t, int64_t>>> right_tagged;
  for (auto& [g, kv] : right) {
    right_tagged.emplace_back(internal::TagOfKey(g), kv);
  }
  InnerBag<std::pair<int64_t, int64_t>> rb(
      lb.ctx(), Parallelize(&cluster_, right_tagged, 2));
  auto joined = LiftedJoin(lb.values(), rb);
  // Only group 1 joins: (100, (5, 50)).
  auto v = joined.Flatten().ToVector();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].first, 100);
  EXPECT_EQ(v[0].second, (std::pair<int64_t, int64_t>{5, 50}));
}

TEST_F(CorePrimitivesTest, LiftedGroupByKeyGroupsPerTag) {
  std::vector<std::pair<int64_t, std::pair<int64_t, int64_t>>> data{
      {1, {7, 70}}, {1, {7, 71}}, {2, {7, 72}}};
  auto nested = GroupByKeyIntoNestedBag(Parallelize(&cluster_, data, 2));
  auto grouped = LiftedGroupByKey(nested.values());
  auto v = grouped.Flatten().ToVector();
  ASSERT_EQ(v.size(), 2u);  // key 7 in group 1 and key 7 in group 2
  std::multiset<std::size_t> sizes;
  for (auto& [k, vs] : v) sizes.insert(vs.size());
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{1, 2}));
}

TEST_F(CorePrimitivesTest, LiftedUnionConcatenatesPerTag) {
  auto nested = MakeNested({{1, 10}, {2, 20}});
  auto u = LiftedUnion(nested.values(), nested.values());
  auto counts = LiftedCount(u);
  for (auto& [k, c] : ZipWithKeys(nested.keys(), counts).ToVector()) {
    EXPECT_EQ(c, 2);
  }
}

TEST_F(CorePrimitivesTest, ZipWithKeysPairsKeysWithResults) {
  auto nested = MakeNested({{5, 1}, {6, 2}, {6, 3}});
  auto counts = LiftedCount(nested.values());
  auto v = Sorted(ZipWithKeys(nested.keys(), counts).ToVector());
  EXPECT_EQ(v, (std::vector<std::pair<int64_t, int64_t>>{{5, 1}, {6, 2}}));
}

TEST_F(CorePrimitivesTest, MapWithLiftedUdfCalledExactlyOnce) {
  auto nested = MakeNested({{1, 10}, {2, 20}, {3, 30}});
  int calls = 0;
  auto result = MapWithLiftedUdf(
      nested, [&](const LiftingContext& ctx, const InnerScalar<int64_t>& keys,
                  const InnerBag<int64_t>& group) {
        ++calls;
        EXPECT_EQ(ctx.num_tags(), 3);
        (void)keys;
        return LiftedCount(group);
      });
  EXPECT_EQ(calls, 1);  // three groups, ONE UDF execution
  EXPECT_EQ(result.repr().Size(), 3);
}

TEST_F(CorePrimitivesTest, MapWithLiftedUdfOnFlatBag) {
  auto params = Parallelize(&cluster_, std::vector<int64_t>{2, 3, 4}, 2);
  int calls = 0;
  auto result = MapWithLiftedUdf(params, [&](const LiftingContext& ctx,
                                             const InnerScalar<int64_t>& p) {
    ++calls;
    EXPECT_EQ(ctx.num_tags(), 3);
    return UnaryScalarOp(p, [](int64_t x) { return x * x; });
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(Sorted(result.Flatten().ToVector()),
            (std::vector<int64_t>{4, 9, 16}));
}

TEST_F(CorePrimitivesTest, MultiLevelNestingComposesTags) {
  // Outer groups by g; inside the lifted UDF we group by h — tags must
  // become composite (depth 2) and keep (g, h) pairs apart.
  using Inner = std::pair<int64_t, int64_t>;  // (h, value)
  std::vector<std::pair<int64_t, Inner>> data{
      {1, {10, 100}}, {1, {10, 101}}, {1, {11, 110}}, {2, {10, 200}}};
  auto nested = GroupByKeyIntoNestedBag(Parallelize(&cluster_, data, 3));
  auto inner_nested = LiftedGroupByKeyIntoNestedBag(nested.values());
  EXPECT_EQ(inner_nested.ctx().num_tags(), 3);  // (1,10), (1,11), (2,10)
  for (auto& [t, k] : inner_nested.keys().repr().ToVector()) {
    EXPECT_EQ(t.depth(), 2u);
    (void)k;
  }
  auto counts = LiftedCount(inner_nested.values());
  auto v = ZipWithKeys(inner_nested.keys(), counts).ToVector();
  std::multiset<int64_t> count_set;
  for (auto& [h, c] : v) count_set.insert(c);
  EXPECT_EQ(count_set, (std::multiset<int64_t>{1, 1, 2}));
}

TEST_F(CorePrimitivesTest, FailedClusterPropagatesThroughPrimitives) {
  auto nested = MakeNested({{1, 10}});
  cluster_.Fail(Status::OutOfMemory("injected"));
  auto counts = LiftedCount(nested.values());
  EXPECT_EQ(counts.repr().Size(), 0);
  EXPECT_TRUE(cluster_.status().IsOutOfMemory());
}

}  // namespace
}  // namespace matryoshka::core
