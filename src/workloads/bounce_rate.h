#ifndef MATRYOSHKA_WORKLOADS_BOUNCE_RATE_H_
#define MATRYOSHKA_WORKLOADS_BOUNCE_RATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "baselines/baselines.h"
#include "core/optimizer.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/workload.h"

/// The per-day bounce-rate task of Sec. 2.1 / Listings 1-3: for every day,
/// the fraction of visitors who visited exactly one page. Two levels of
/// parallelism, no control flow — the task the paper evaluates against DIQL
/// (Sec. 9.4).
namespace matryoshka::workloads {

using BounceRateResult = WorkloadResult<int64_t, double>;

/// Working-set multiplier of the sequential bounce-rate UDF over the raw
/// group bytes (two hash tables plus JVM-like object overhead). Used by the
/// outer-parallel and DIQL-like variants' memory checks.
inline constexpr double kBounceRateGroupExpansion = 6.0;

/// Nested-parallel implementation via Matryoshka's primitives — the
/// flattened equivalent of Listing 1 (what the parsing + lowering phases
/// produce from the user program).
BounceRateResult BounceRateMatryoshka(engine::Cluster* cluster,
                                      const engine::Bag<datagen::Visit>& visits,
                                      core::OptimizerOptions options = {});

/// Outer-parallel workaround: groupByKey per day, sequential UDF per group.
BounceRateResult BounceRateOuterParallel(
    engine::Cluster* cluster, const engine::Bag<datagen::Visit>& visits);

/// Inner-parallel workaround: driver loop over days, engine jobs per day.
BounceRateResult BounceRateInnerParallel(
    engine::Cluster* cluster, const engine::Bag<datagen::Visit>& visits);

/// DIQL-like flattening baseline: falls back to the outer-parallel plan
/// (the behaviour the paper observed from DIQL on this task), with no
/// runtime optimization and generated-code overhead.
BounceRateResult BounceRateDiqlLike(
    engine::Cluster* cluster, const engine::Bag<datagen::Visit>& visits,
    baselines::DiqlLikeOptions diql_options = {});

/// Dispatches on `variant`.
BounceRateResult RunBounceRate(engine::Cluster* cluster,
                               const engine::Bag<datagen::Visit>& visits,
                               Variant variant,
                               core::OptimizerOptions options = {});

/// Reference result computed sequentially on the driver (for tests).
std::vector<std::pair<int64_t, double>> BounceRateReference(
    const std::vector<datagen::Visit>& visits);

}  // namespace matryoshka::workloads

#endif  // MATRYOSHKA_WORKLOADS_BOUNCE_RATE_H_
