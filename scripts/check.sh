#!/usr/bin/env sh
# Builds and runs the test suite. Usage:
#   scripts/check.sh            # RelWithDebInfo build + full ctest
#   scripts/check.sh asan       # ASan+UBSan build + full ctest
#   scripts/check.sh faults     # RelWithDebInfo build + fault-suite only
#   scripts/check.sh obs        # obs suite + end-to-end --trace/--metrics-json
# Any extra arguments are forwarded to ctest.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-default}"
[ $# -gt 0 ] && shift

case "$mode" in
  default)
    preset=default; test_preset=default ;;
  asan)
    preset=asan; test_preset=asan ;;
  faults)
    preset=default; test_preset=faults ;;
  obs)
    preset=default; test_preset=obs ;;
  *)
    echo "usage: scripts/check.sh [default|asan|faults|obs] [ctest args...]" >&2
    exit 2 ;;
esac

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$test_preset" -j "$(nproc)" "$@"

if [ "$mode" = obs ]; then
  # End-to-end: one bench with the observability flags on, both outputs
  # validated as JSON.
  out_dir="build/obs-check"
  mkdir -p "$out_dir"
  build/bench/bench_ablation_partitions \
    --trace="$out_dir/trace.json" \
    --metrics-json="$out_dir/metrics.json" >/dev/null
  for f in "$out_dir/trace.json" "$out_dir/metrics.json"; do
    [ -s "$f" ] || { echo "missing $f" >&2; exit 1; }
    python3 -m json.tool "$f" >/dev/null
    echo "ok: $f"
  done
fi
