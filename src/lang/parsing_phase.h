#ifndef MATRYOSHKA_LANG_PARSING_PHASE_H_
#define MATRYOSHKA_LANG_PARSING_PHASE_H_

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "lang/expr.h"

namespace matryoshka::lang {

/// Value categories the parsing phase tracks while rewriting (the "looking
/// at the code as data" of Sec. 4.1.1): what a name denotes before and
/// after lifting.
enum class VType {
  kScalar,       // plain driver-side value
  kBag,          // flat distributed bag
  kNestedBag,    // Bag[(K, Bag[V])] — only between groupByKey and its use
  kInnerScalar,  // lifted scalar inside a lifted UDF
  kInnerBag,     // lifted bag inside a lifted UDF
};

const char* VTypeName(VType t);

/// THE PARSING PHASE (Sec. 4.1.1, performed at "compile time" — here: on
/// the plan before execution). Takes a nested-parallel program written in
/// the surface language (Listing 1) and rewrites it into the explicitly
/// nested-parallel program (Listing 2):
///  - groupByKey producing a nested bag  -> groupByKeyIntoNestedBag,
///  - a map whose UDF contains bag operations (or whose input is nested)
///    -> mapWithLiftedUDF, its UDF body rewritten statement by statement:
///    bag ops -> lifted ops, scalar ops over lifted scalars ->
///    binaryScalarOp (Sec. 4.3/4.4),
///  - closures made explicit: every lambda's free variables are recorded
///    in its `captures`; an element-level lambda capturing an InnerScalar
///    becomes a liftedMapWithClosure (Sec. 5.1).
/// The output is a logical plan: the lifted operations' physical
/// implementations are chosen later, at runtime, by the lowering phase.
class ParsingPhase {
 public:
  /// Rewrites `program`; returns the explicitly nested-parallel program or
  /// an Unsupported/InvalidArgument status (e.g. bag ops in aggregation
  /// UDFs, see the assumptions of Sec. 7).
  Result<Program> Rewrite(const Program& program);

  /// Type assigned to each top-level binding during the last Rewrite.
  const std::unordered_map<std::string, VType>& types() const {
    return types_;
  }

 private:
  std::unordered_map<std::string, VType> types_;
};

}  // namespace matryoshka::lang

#endif  // MATRYOSHKA_LANG_PARSING_PHASE_H_
