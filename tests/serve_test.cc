// The serving determinism suite: locks the plan-serving driver's contract
// (src/serve/serving_driver.h).
//
//  - Registry: registration, lookup, duplicate/unknown/invalid names.
//  - Admission control: the queue bound is exact, rejections carry
//    kResourceExhausted, and a full queue never blocks Submit.
//  - Deadlines: a request that outruns its (simulated-clock) deadline ends
//    in kDeadlineExceeded without poisoning other in-flight requests.
//  - Fairness: queued requests drain round-robin across tenants.
//  - THE ISOLATION CONTRACT: a request executed concurrently under load is
//    bit-identical — data, partition order, key_partitions, full Metrics,
//    exported trace — to the same request executed alone. Checked clean,
//    under an active FaultPlan, and with fusion on/off.
//  - Memo cache: a hit is byte-identical to a recompute, hit/miss/eviction
//    counters are exact, a disabled cache leaves the engine byte-identical,
//    and per-request responses never carry cache counters.
//  - Bag::Force()'s driver-thread contract: off-thread Force on a pending
//    bag CHECK-fails with an actionable message; BindDriverThread hands a
//    cluster to another thread legitimately.
//
// The whole suite is TSan-clean (the serve-tsan preset runs it): real
// concurrency is exercised with the shared pool on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/cluster.h"
#include "engine/ops.h"
#include "engine/shuffle.h"
#include "lang/expr.h"
#include "serve/memo_cache.h"
#include "serve/plan.h"
#include "serve/registry.h"
#include "serve/serving_driver.h"

#if defined(__SANITIZE_THREAD__)
#define MATRYOSHKA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MATRYOSHKA_TSAN 1
#endif
#endif

namespace matryoshka::serve {
namespace {

using engine::ClusterConfig;
using engine::Metrics;

// --- shared fixtures -------------------------------------------------------

ClusterConfig EngineConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.execute_parallel = true;
  return cfg;
}

ClusterConfig WithFaults(ClusterConfig cfg) {
  cfg.faults.seed = 5;
  cfg.faults.task_failure_prob = 0.05;
  cfg.faults.straggler_fraction = 0.1;
  cfg.faults.straggler_slowdown = 4.0;
  cfg.faults.speculative_execution = true;
  return cfg;
}

ClusterConfig WithFusion(ClusterConfig cfg, bool enabled) {
  cfg.fusion.enabled = enabled;
  return cfg;
}

ServingConfig BaseServing(ClusterConfig engine_cfg) {
  ServingConfig cfg;
  cfg.cluster = engine_cfg;
  cfg.max_in_flight = 4;
  cfg.pool_threads = 4;
  return cfg;
}

/// "sum_by_key": a typed src/core-style plan. Params: mod (key space),
/// rows (input size). Deterministic keyed reduction ending in a collect.
PlanSpec SumByKeySpec() {
  PlanSpec spec;
  spec.name = "sum_by_key";
  spec.description = "keyed sum over synthetic rows";
  spec.body = [](engine::Cluster* c, const PlanParams& params) {
    const int64_t mod = params.GetInt("mod", 7);
    const int64_t rows = params.GetInt("rows", 2000);
    std::vector<std::pair<int64_t, int64_t>> kv;
    kv.reserve(static_cast<std::size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) kv.emplace_back(i % mod, i % 13);
    auto bag = engine::Parallelize(c, std::move(kv), 8);
    auto mapped = engine::Map(bag, [](const std::pair<int64_t, int64_t>& p) {
      return std::pair<int64_t, int64_t>(p.first, p.second + 1);
    });
    auto reduced = engine::ReduceByKey(
        mapped, [](int64_t a, int64_t b) { return a + b; }, 8);
    return CollectOutput(reduced);
  };
  return spec;
}

/// A lang-program plan: doubles the fixed source rows and unions in the
/// "boost" request parameter (bound as a single-element source bag).
Result<PlanSpec> DoublePlusBoostSpec() {
  lang::Program p;
  p.stmts.push_back(
      {"doubled",
       lang::Map(lang::Source("data"),
                 lang::Lam("x", lang::BinOp(lang::BinOpKind::kMul,
                                            lang::Var("x"),
                                            lang::Lit(lang::Value(2)))))});
  p.stmts.push_back(
      {"out", lang::UnionOf(lang::Var("doubled"), lang::Source("boost"))});
  p.result = "out";

  auto rows = std::make_shared<std::vector<lang::Value>>();
  for (int64_t i = 1; i <= 100; ++i) rows->push_back(lang::Value(i));
  return MakeLangPlanSpec("double_plus_boost", p,
                          {LangSource{"data", rows, 4}},
                          "2x over fixed rows, plus the boost param");
}

void ExpectSameMetrics(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.simulated_time_s, b.simulated_time_s);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.elements_processed, b.elements_processed);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  EXPECT_EQ(a.spill_events, b.spill_events);
  EXPECT_EQ(a.peak_task_bytes, b.peak_task_bytes);
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.machines_lost, b.machines_lost);
  EXPECT_EQ(a.recovery_time_s, b.recovery_time_s);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.driver_retries, b.driver_retries);
  EXPECT_EQ(a.plan_fallbacks, b.plan_fallbacks);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.cache_evictions, b.cache_evictions);
}

void ExpectSameResponse(const ServeResponse& a, const ServeResponse& b) {
  EXPECT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(a.output, b.output);
  ExpectSameMetrics(a.metrics, b.metrics);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

// --- registry --------------------------------------------------------------

TEST(ServingRegistryTest, RegisterLookupAndNames) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  EXPECT_EQ(registry.size(), 1u);

  Result<const PlanSpec*> spec = registry.Lookup("sum_by_key");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->name, "sum_by_key");
  EXPECT_TRUE((*spec)->cacheable);

  Result<PlanSpec> lang_spec = DoublePlusBoostSpec();
  ASSERT_TRUE(lang_spec.ok());
  ASSERT_TRUE(registry.Register(std::move(lang_spec).value()).ok());
  EXPECT_EQ(registry.PlanNames(),
            (std::vector<std::string>{"double_plus_boost", "sum_by_key"}));
}

TEST(ServingRegistryTest, DuplicateNameFails) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  Status dup = registry.Register(SumByKeySpec());
  EXPECT_FALSE(dup.ok());
  EXPECT_NE(dup.message().find("already registered"), std::string::npos);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ServingRegistryTest, UnknownLookupNamesTheRegisteredPlans) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  Result<const PlanSpec*> missing = registry.Lookup("no_such_plan");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("sum_by_key"),
            std::string::npos);
}

TEST(ServingRegistryTest, EmptyNameAndNullBodyRejected) {
  PlanRegistry registry;
  PlanSpec nameless;
  nameless.body = [](engine::Cluster*, const PlanParams&) {
    return PlanOutput{};
  };
  EXPECT_FALSE(registry.Register(std::move(nameless)).ok());

  PlanSpec bodyless;
  bodyless.name = "bodyless";
  EXPECT_FALSE(registry.Register(std::move(bodyless)).ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ServingRegistryTest, ParamsFingerprintIsOrderIndependent) {
  PlanParams ab;
  ab.Set("a", lang::Value(int64_t{1})).Set("b", lang::Value(std::string("x")));
  PlanParams ba;
  ba.Set("b", lang::Value(std::string("x"))).Set("a", lang::Value(int64_t{1}));
  EXPECT_EQ(ab.Fingerprint(), ba.Fingerprint());

  PlanParams other = ab;
  other.Set("a", lang::Value(int64_t{2}));
  EXPECT_NE(ab.Fingerprint(), other.Fingerprint());
}

// --- driver basics ---------------------------------------------------------

TEST(ServingDriverTest, ServesAPlanAndMatchesDirectExecution) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingDriver driver(&registry, BaseServing(EngineConfig()));

  ServeRequest req;
  req.plan = "sum_by_key";
  req.params.Set("mod", lang::Value(int64_t{5}));
  ServeResponse resp = driver.Execute(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status.message();
  EXPECT_FALSE(resp.rejected);
  EXPECT_GT(resp.output.NumRows(), 0);
  EXPECT_GT(resp.metrics.jobs, 0);

  // The same plan body on a plain standalone cluster must agree exactly.
  engine::Cluster direct(EngineConfig());
  PlanOutput expected = SumByKeySpec().body(&direct, req.params);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(resp.output, expected);
  ExpectSameMetrics(resp.metrics, direct.metrics());
}

TEST(ServingDriverTest, ParameterizationChangesTheResult) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingDriver driver(&registry, BaseServing(EngineConfig()));

  ServeRequest small;
  small.plan = "sum_by_key";
  small.params.Set("mod", lang::Value(int64_t{3}));
  ServeRequest large;
  large.plan = "sum_by_key";
  large.params.Set("mod", lang::Value(int64_t{31}));

  ServeResponse a = driver.Execute(small);
  ServeResponse b = driver.Execute(large);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_NE(a.output, b.output);
}

TEST(ServingDriverTest, UnknownPlanCompletesImmediatelyWithError) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingDriver driver(&registry, BaseServing(EngineConfig()));

  ServeRequest req;
  req.plan = "nope";
  ServeResponse resp = driver.Execute(req);
  EXPECT_FALSE(resp.status.ok());
  EXPECT_TRUE(resp.rejected);
  ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.accepted, 0);
}

TEST(ServingDriverTest, LangProgramPlanBindsRequestParams) {
  PlanRegistry registry;
  Result<PlanSpec> spec = DoublePlusBoostSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  ASSERT_TRUE(registry.Register(std::move(spec).value()).ok());
  ServingDriver driver(&registry, BaseServing(EngineConfig()));

  ServeRequest req;
  req.plan = "double_plus_boost";
  req.params.Set("boost", lang::Value(int64_t{-17}));
  ServeResponse resp = driver.Execute(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status.message();

  ASSERT_EQ(resp.output.partitions.size(), 1u);
  std::vector<lang::Value> rows = resp.output.partitions[0];
  ASSERT_EQ(rows.size(), 101u);  // 100 doubled rows + the boost param
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows.front(), lang::Value(int64_t{-17}));
  EXPECT_EQ(rows.back(), lang::Value(int64_t{200}));
}

// --- admission control -----------------------------------------------------

/// A plan that parks until released; lets tests fill the queue / pin the
/// single worker deterministically. Not cacheable (each run must execute).
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void AwaitEntered(int n) {
    while (entered.load() < n) std::this_thread::yield();
  }
};

PlanSpec GatedSpec(Gate* gate, std::vector<std::string>* order = nullptr,
                   std::mutex* order_mu = nullptr) {
  PlanSpec spec;
  spec.name = "gated";
  spec.cacheable = false;
  spec.body = [gate, order, order_mu](engine::Cluster* c,
                                      const PlanParams& params) {
    gate->entered.fetch_add(1);
    {
      std::unique_lock<std::mutex> lock(gate->mu);
      gate->cv.wait(lock, [gate] { return gate->open; });
    }
    if (order != nullptr) {
      std::lock_guard<std::mutex> lock(*order_mu);
      order->push_back(params.GetString("id", "?"));
    }
    auto bag = engine::Parallelize(c, std::vector<int64_t>{1, 2, 3}, 2);
    return CollectOutput(bag);
  };
  return spec;
}

TEST(ServingAdmissionTest, QueueBoundRejectsWithResourceExhausted) {
  Gate gate;
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(GatedSpec(&gate)).ok());

  ServingConfig cfg = BaseServing(EngineConfig());
  cfg.max_in_flight = 1;
  cfg.max_queue_depth = 2;
  ServingDriver driver(&registry, cfg);

  ServeRequest req;
  req.plan = "gated";
  auto executing = driver.Submit(req);
  gate.AwaitEntered(1);  // the worker is pinned, nothing else can start

  auto queued1 = driver.Submit(req);
  auto queued2 = driver.Submit(req);
  auto over = driver.Submit(req);  // depth 2 reached -> rejected
  ASSERT_TRUE(over->Ready());
  const ServeResponse& rejected = over->Wait();
  EXPECT_TRUE(rejected.rejected);
  EXPECT_TRUE(rejected.status.IsResourceExhausted());
  EXPECT_FALSE(queued1->Ready());

  gate.Release();
  EXPECT_TRUE(executing->Wait().status.ok());
  EXPECT_TRUE(queued1->Wait().status.ok());
  EXPECT_TRUE(queued2->Wait().status.ok());

  ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.accepted, 3);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 3);
}

TEST(ServingAdmissionTest, ManyConcurrentRequestsAllComplete) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingConfig cfg = BaseServing(EngineConfig());
  cfg.max_queue_depth = 100;
  cfg.cache_entries = 0;  // force every request through the engine
  ServingDriver driver(&registry, cfg);

  std::vector<std::shared_ptr<ServeTicket>> tickets;
  for (int i = 0; i < 50; ++i) {
    ServeRequest req;
    req.plan = "sum_by_key";
    req.params.Set("mod", lang::Value(int64_t{3 + (i % 5)}));
    tickets.push_back(driver.Submit(req));
  }
  for (auto& t : tickets) EXPECT_TRUE(t->Wait().status.ok());
  ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.completed, 50);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.rejected, 0);
}

// --- deadlines -------------------------------------------------------------

/// A plan whose simulated cost is astronomically high (weight 1e9): runs in
/// microseconds of real time but blows any simulated deadline.
PlanSpec ExpensiveSpec() {
  PlanSpec spec;
  spec.name = "expensive";
  spec.cacheable = false;
  spec.body = [](engine::Cluster* c, const PlanParams&) {
    auto bag = engine::Parallelize(
        c, std::vector<int64_t>(1000, int64_t{1}), 8);
    auto heavy =
        engine::Map(bag, [](int64_t x) { return x + 1; }, /*weight=*/1e9);
    return CollectOutput(heavy);
  };
  return spec;
}

TEST(ServingDeadlineTest, DeadlineExceededDoesNotPoisonOtherRequests) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(ExpensiveSpec()).ok());
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingConfig cfg = BaseServing(EngineConfig());
  cfg.cache_entries = 0;
  ServingDriver driver(&registry, cfg);

  std::vector<std::shared_ptr<ServeTicket>> healthy;
  for (int i = 0; i < 8; ++i) {
    ServeRequest ok_req;
    ok_req.plan = "sum_by_key";
    ok_req.params.Set("mod", lang::Value(int64_t{4 + i}));
    healthy.push_back(driver.Submit(ok_req));
  }
  ServeRequest doomed;
  doomed.plan = "expensive";
  doomed.deadline_s = 1.0;  // simulated seconds; the plan needs ~1e9
  ServeResponse failed = driver.Execute(doomed);
  EXPECT_TRUE(failed.status.IsDeadlineExceeded())
      << failed.status.message();

  for (auto& t : healthy) EXPECT_TRUE(t->Wait().status.ok());
  ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.failed, 1);
}

TEST(ServingDeadlineTest, PerRequestDeadlineOverridesTheDefault) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(ExpensiveSpec()).ok());
  ServingConfig cfg = BaseServing(EngineConfig());
  cfg.cache_entries = 0;
  cfg.default_deadline_s = 1.0;  // default would kill the expensive plan
  ServingDriver driver(&registry, cfg);

  ServeRequest with_default;
  with_default.plan = "expensive";
  EXPECT_TRUE(driver.Execute(with_default).status.IsDeadlineExceeded());

  ServeRequest opted_out = with_default;
  opted_out.deadline_s = 0.0;  // explicitly no deadline
  EXPECT_TRUE(driver.Execute(opted_out).status.ok());
}

// --- fairness --------------------------------------------------------------

TEST(ServingFairnessTest, RoundRobinAcrossTenants) {
  Gate gate;
  std::vector<std::string> order;
  std::mutex order_mu;
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(GatedSpec(&gate, &order, &order_mu)).ok());

  ServingConfig cfg = BaseServing(EngineConfig());
  cfg.max_in_flight = 1;  // one worker -> pop order IS completion order
  cfg.max_queue_depth = 16;
  ServingDriver driver(&registry, cfg);

  // Pin the worker, then build the queues: tenant A floods five requests,
  // tenant B trickles three.
  ServeRequest blocker;
  blocker.plan = "gated";
  blocker.tenant = "A";
  blocker.params.Set("id", lang::Value(std::string("blk")));
  auto blk = driver.Submit(blocker);
  gate.AwaitEntered(1);

  auto enqueue = [&](const std::string& tenant, const std::string& id) {
    ServeRequest req;
    req.plan = "gated";
    req.tenant = tenant;
    req.params.Set("id", lang::Value(id));
    return driver.Submit(req);
  };
  std::vector<std::shared_ptr<ServeTicket>> tickets;
  for (int i = 1; i <= 5; ++i) tickets.push_back(enqueue("A", "A" + std::to_string(i)));
  for (int i = 1; i <= 3; ++i) tickets.push_back(enqueue("B", "B" + std::to_string(i)));

  gate.Release();
  EXPECT_TRUE(blk->Wait().status.ok());
  for (auto& t : tickets) EXPECT_TRUE(t->Wait().status.ok());

  // Cursor semantics: the worker resumes scanning after the tenant it just
  // served, so A's flood and B's trickle alternate until B drains.
  const std::vector<std::string> expected = {"blk", "A1", "B1", "A2", "B2",
                                             "A3", "B3", "A4", "A5"};
  std::lock_guard<std::mutex> lock(order_mu);
  EXPECT_EQ(order, expected);
}

TEST(ServingFairnessTest, TenantWeightsSkewTheRoundRobin) {
  Gate gate;
  std::vector<std::string> order;
  std::mutex order_mu;
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(GatedSpec(&gate, &order, &order_mu)).ok());

  ServingConfig cfg = BaseServing(EngineConfig());
  cfg.max_in_flight = 1;
  cfg.max_queue_depth = 16;
  cfg.tenant_weights["A"] = 2;  // A is served two per turn, B one
  ServingDriver driver(&registry, cfg);

  // The blocker lives in its own tenant so it doesn't consume A's credit.
  ServeRequest blocker;
  blocker.plan = "gated";
  blocker.tenant = "warm";
  blocker.params.Set("id", lang::Value(std::string("blk")));
  auto blk = driver.Submit(blocker);
  gate.AwaitEntered(1);

  auto enqueue = [&](const std::string& tenant, const std::string& id) {
    ServeRequest req;
    req.plan = "gated";
    req.tenant = tenant;
    req.params.Set("id", lang::Value(id));
    return driver.Submit(req);
  };
  std::vector<std::shared_ptr<ServeTicket>> tickets;
  for (int i = 1; i <= 5; ++i) tickets.push_back(enqueue("A", "A" + std::to_string(i)));
  for (int i = 1; i <= 3; ++i) tickets.push_back(enqueue("B", "B" + std::to_string(i)));

  gate.Release();
  EXPECT_TRUE(blk->Wait().status.ok());
  for (auto& t : tickets) EXPECT_TRUE(t->Wait().status.ok());

  const std::vector<std::string> expected = {"blk", "A1", "A2", "B1", "A3",
                                             "A4", "B2", "A5", "B3"};
  std::lock_guard<std::mutex> lock(order_mu);
  EXPECT_EQ(order, expected);
}

// --- the isolation contract ------------------------------------------------

std::vector<ServeRequest> ContractRequests() {
  std::vector<ServeRequest> reqs;
  for (int64_t mod : {3, 5, 11, 31}) {
    ServeRequest req;
    req.plan = "sum_by_key";
    req.params.Set("mod", lang::Value(mod));
    reqs.push_back(req);
  }
  ServeRequest lang_req;
  lang_req.plan = "double_plus_boost";
  lang_req.params.Set("boost", lang::Value(int64_t{7}));
  reqs.push_back(lang_req);
  return reqs;
}

/// Runs the contract requests alone (one-at-a-time driver) and concurrently
/// under load (all submitted at once, several repeats), and requires every
/// concurrent response to be bit-identical to its solo baseline.
void CheckConcurrentVsSerialBitIdentity(ClusterConfig engine_cfg) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  Result<PlanSpec> lang_spec = DoublePlusBoostSpec();
  ASSERT_TRUE(lang_spec.ok());
  ASSERT_TRUE(registry.Register(std::move(lang_spec).value()).ok());

  const std::vector<ServeRequest> requests = ContractRequests();

  ServingConfig solo_cfg = BaseServing(engine_cfg);
  solo_cfg.max_in_flight = 1;
  solo_cfg.cache_entries = 0;
  solo_cfg.record_traces = true;
  std::vector<ServeResponse> baseline;
  {
    ServingDriver solo(&registry, solo_cfg);
    for (const ServeRequest& req : requests) {
      baseline.push_back(solo.Execute(req));
      ASSERT_TRUE(baseline.back().status.ok())
          << baseline.back().status.message();
    }
  }

  ServingConfig load_cfg = BaseServing(engine_cfg);
  load_cfg.max_in_flight = 4;
  load_cfg.max_queue_depth = 64;
  load_cfg.cache_entries = 0;  // every request truly recomputes under load
  load_cfg.record_traces = true;
  ServingDriver load(&registry, load_cfg);
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<std::shared_ptr<ServeTicket>> tickets;
    for (const ServeRequest& req : requests) tickets.push_back(load.Submit(req));
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      ExpectSameResponse(tickets[i]->Wait(), baseline[i]);
    }
  }
}

TEST(ServingDeterminismTest, ConcurrentMatchesSerialClean) {
  CheckConcurrentVsSerialBitIdentity(EngineConfig());
}

TEST(ServingDeterminismTest, ConcurrentMatchesSerialUnderFaults) {
  CheckConcurrentVsSerialBitIdentity(WithFaults(EngineConfig()));
}

TEST(ServingDeterminismTest, ConcurrentMatchesSerialFusionOn) {
  CheckConcurrentVsSerialBitIdentity(WithFusion(EngineConfig(), true));
}

TEST(ServingDeterminismTest, ConcurrentMatchesSerialFusionOff) {
  CheckConcurrentVsSerialBitIdentity(WithFusion(EngineConfig(), false));
}

// --- memo cache ------------------------------------------------------------

TEST(ServingCacheTest, HitIsByteIdenticalToRecompute) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingConfig cfg = BaseServing(EngineConfig());
  cfg.cache_entries = 8;
  cfg.record_traces = true;
  ServingDriver driver(&registry, cfg);

  ServeRequest req;
  req.plan = "sum_by_key";
  req.params.Set("mod", lang::Value(int64_t{9}));
  ServeResponse first = driver.Execute(req);
  ServeResponse second = driver.Execute(req);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  ExpectSameResponse(second, first);

  // The isolation contract: responses never carry cache counters, hit or
  // not — those live only in the driver's aggregate stats.
  EXPECT_EQ(first.metrics.cache_hits, 0);
  EXPECT_EQ(second.metrics.cache_hits, 0);
  EXPECT_EQ(second.metrics.cache_misses, 0);
  ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.cache.hits, 1);
  EXPECT_EQ(stats.cache.misses, 1);
  EXPECT_EQ(stats.aggregate.cache_hits, 1);
  EXPECT_EQ(stats.aggregate.cache_misses, 1);
}

TEST(ServingCacheTest, HitMissEvictionCountersAreExact) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingConfig cfg = BaseServing(EngineConfig());
  cfg.cache_entries = 2;
  ServingDriver driver(&registry, cfg);

  auto run = [&](int64_t mod) {
    ServeRequest req;
    req.plan = "sum_by_key";
    req.params.Set("mod", lang::Value(mod));
    ASSERT_TRUE(driver.Execute(req).status.ok());
  };
  run(3);  // miss, insert              {3}
  run(5);  // miss, insert              {5, 3}
  run(3);  // hit, freshen              {3, 5}
  run(7);  // miss, insert, evict 5     {7, 3}
  run(5);  // miss again (was evicted)  {5, 7}
  run(5);  // hit

  ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.cache.hits, 2);
  EXPECT_EQ(stats.cache.misses, 4);
  EXPECT_EQ(stats.cache.evictions, 2);
  EXPECT_EQ(stats.cache.size, 2u);
}

TEST(ServingCacheTest, DisabledCacheLeavesTheEngineByteIdentical) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());

  ServeRequest req;
  req.plan = "sum_by_key";
  req.params.Set("mod", lang::Value(int64_t{6}));

  ServingConfig on_cfg = BaseServing(EngineConfig());
  on_cfg.cache_entries = 8;
  on_cfg.record_traces = true;
  ServingConfig off_cfg = on_cfg;
  off_cfg.cache_entries = 0;

  ServingDriver on(&registry, on_cfg);
  ServingDriver off(&registry, off_cfg);
  ServeResponse cold = on.Execute(req);
  ServeResponse warm = on.Execute(req);   // cache hit
  ServeResponse plain = off.Execute(req);  // cache disabled
  ASSERT_TRUE(plain.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(plain.cache_hit);
  ExpectSameResponse(cold, plain);
  ExpectSameResponse(warm, plain);
  EXPECT_EQ(off.GetStats().cache.misses, 0);  // disabled: not even counted

  // Per-request opt-out behaves like a disabled cache for that request.
  ServeRequest no_cache = req;
  no_cache.use_cache = false;
  ServeResponse opted_out = on.Execute(no_cache);
  ExpectSameResponse(opted_out, plain);
  EXPECT_FALSE(opted_out.cache_hit);
}

TEST(ServingCacheTest, KeySeparatesPlansParamsAndInputs) {
  MemoCache cache(8);
  auto result = std::make_shared<CachedResult>();
  const CacheKey a{"plan_a", 1, 100};
  cache.Insert(a, result);
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.Lookup(CacheKey{"plan_b", 1, 100}), nullptr);
  EXPECT_EQ(cache.Lookup(CacheKey{"plan_a", 2, 100}), nullptr);
  EXPECT_EQ(cache.Lookup(CacheKey{"plan_a", 1, 101}), nullptr);
  MemoCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
}

TEST(ServingCacheTest, EvictionCounterExactUnderConcurrentEvictions) {
  // N threads insert all-distinct keys into a small cache: every insert
  // beyond capacity evicts exactly one LRU entry, so the final accounting
  // must balance to the key: evictions == inserts - capacity, size ==
  // capacity — exactly, not approximately, even with all threads racing the
  // eviction path.
  constexpr std::size_t kCapacity = 7;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  MemoCache cache(kCapacity);
  auto result = std::make_shared<CachedResult>();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &result, t] {
      for (int i = 0; i < kPerThread; ++i) {
        cache.Insert(CacheKey{"plan", static_cast<uint64_t>(t),
                              static_cast<uint64_t>(i)},
                     result);
      }
    });
  }
  for (auto& th : threads) th.join();
  MemoCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.size, kCapacity);
  EXPECT_EQ(stats.evictions,
            static_cast<int64_t>(kThreads * kPerThread - kCapacity));
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
}

TEST(ServingCacheTest, ConcurrentIdenticalRequestsStayCoherent) {
  PlanRegistry registry;
  ASSERT_TRUE(registry.Register(SumByKeySpec()).ok());
  ServingConfig cfg = BaseServing(EngineConfig());
  cfg.cache_entries = 8;
  cfg.max_queue_depth = 64;
  ServingDriver driver(&registry, cfg);

  ServeRequest req;
  req.plan = "sum_by_key";
  req.params.Set("mod", lang::Value(int64_t{13}));
  std::vector<std::shared_ptr<ServeTicket>> tickets;
  for (int i = 0; i < 16; ++i) tickets.push_back(driver.Submit(req));

  const ServeResponse& first = tickets[0]->Wait();
  ASSERT_TRUE(first.status.ok());
  for (auto& t : tickets) {
    const ServeResponse& resp = t->Wait();
    // Hit or recompute is timing-dependent; the response must not be.
    EXPECT_EQ(resp.output, first.output);
    ExpectSameMetrics(resp.metrics, first.metrics);
  }
  ServingDriver::Stats stats = driver.GetStats();
  EXPECT_EQ(stats.completed, 16);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 16);
}

// --- the Force() driver-thread contract ------------------------------------

#if !defined(MATRYOSHKA_TSAN) && defined(GTEST_HAS_DEATH_TEST)
TEST(ServingForceContractTest, OffThreadForceOnPendingBagDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ClusterConfig cfg;  // serial engine: the death is about threads, not pools
  cfg.fusion.enabled = true;
  engine::Cluster cluster(cfg);
  auto bag = engine::Parallelize(&cluster, std::vector<int64_t>{1, 2, 3}, 2);
  auto pending = engine::Map(bag, [](int64_t x) { return x * 2; });
  ASSERT_TRUE(pending.pending());

  EXPECT_DEATH(
      {
        std::thread t([&pending] { pending.Force(); });
        t.join();
      },
      "driver thread");
}
#endif  // !MATRYOSHKA_TSAN && GTEST_HAS_DEATH_TEST

TEST(ServingForceContractTest, BindDriverThreadHandsTheClusterOver) {
  ClusterConfig cfg;
  cfg.fusion.enabled = true;
  engine::Cluster cluster(cfg);
  auto bag = engine::Parallelize(&cluster, std::vector<int64_t>{1, 2, 3}, 2);
  auto pending = engine::Map(bag, [](int64_t x) { return x * 2; });
  ASSERT_TRUE(pending.pending());

  std::vector<int64_t> values;
  std::thread t([&] {
    cluster.BindDriverThread();  // the sanctioned hand-off
    pending.Force();
    values = engine::Collect(pending);
  });
  t.join();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int64_t>{2, 4, 6}));
  EXPECT_TRUE(cluster.ok());
}

TEST(ServingForceContractTest, MaterializedBagsForceAnywhere) {
  // A no-op Force (nothing pending) is legal from any thread: serving
  // workers hold materialized bags without owning the cluster.
  ClusterConfig cfg;
  cfg.fusion.enabled = true;
  engine::Cluster cluster(cfg);
  auto bag = engine::Parallelize(&cluster, std::vector<int64_t>{1, 2, 3}, 2);
  auto mapped = engine::Map(bag, [](int64_t x) { return x + 1; });
  mapped.Force();  // materialize on the driver thread

  std::thread t([&] { mapped.Force(); });  // no-op off-thread: fine
  t.join();
  EXPECT_TRUE(cluster.ok());
}

}  // namespace
}  // namespace matryoshka::serve
