// Property-based tests of the flattening correctness theorem (Sec. 7,
// Theorem 2): the change from the nested representation to the flat tagged
// representation is an isomorphism that PRESERVES every lifted operation,
//
//     m(f(x)) == f'(m(x))
//
// where f is the per-group operation of the user's program, f' its lifted
// version, and m the nested->flat representation change. Concretely: for
// randomly generated grouped data, applying a lifted operation to the
// InnerBag and reading the result back per group must equal applying the
// plain sequential operation to each group independently.
//
// Each property is swept over (seed, #groups, #partitions) with
// parameterized gtest instantiations.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/matryoshka.h"

namespace matryoshka::core {
namespace {

using engine::Cluster;
using engine::ClusterConfig;
using engine::Parallelize;

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

/// (seed, number of groups, input partition count)
using Param = std::tuple<uint64_t, int64_t, int64_t>;

class LiftingIsomorphismTest : public ::testing::TestWithParam<Param> {
 protected:
  LiftingIsomorphismTest() : cluster_(TestConfig()) {}

  /// Random grouped data: group -> multiset of small ints (some groups may
  /// collide on values, some values repeat within a group).
  std::vector<std::pair<int64_t, int64_t>> MakeData() {
    auto [seed, groups, parts] = GetParam();
    Rng rng(seed);
    std::vector<std::pair<int64_t, int64_t>> data;
    const int64_t n = 40 * groups;
    data.reserve(static_cast<std::size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      data.emplace_back(static_cast<int64_t>(rng.Uniform(
                            static_cast<uint64_t>(groups))),
                        rng.UniformInt(-20, 20));
    }
    return data;
  }

  /// The nested view of the data: m^-1 of the input.
  std::map<int64_t, std::vector<int64_t>> GroupsOf(
      const std::vector<std::pair<int64_t, int64_t>>& data) {
    std::map<int64_t, std::vector<int64_t>> by_group;
    for (auto& [g, v] : data) by_group[g].push_back(v);
    return by_group;
  }

  NestedBag<int64_t, int64_t> Lift(
      const std::vector<std::pair<int64_t, int64_t>>& data) {
    auto [seed, groups, parts] = GetParam();
    auto bag = Parallelize(&cluster_, data, parts);
    return GroupByKeyIntoNestedBag(bag);
  }

  /// Reads a lifted result back into the nested view: applies m^-1.
  template <typename T>
  std::map<int64_t, std::multiset<T>> Unlift(
      const NestedBag<int64_t, int64_t>& nested, const InnerBag<T>& result) {
    // Map tags back to group keys through the keys InnerScalar.
    std::map<Tag, int64_t> tag_to_key;
    for (auto& [t, k] : nested.keys().repr().ToVector()) tag_to_key[t] = k;
    std::map<int64_t, std::multiset<T>> out;
    for (auto& [t, k] : nested.keys().repr().ToVector()) {
      out[k];  // every group exists, even if its inner bag is empty
    }
    for (auto& [t, v] : result.repr().ToVector()) {
      auto it = tag_to_key.find(t);
      EXPECT_TRUE(it != tag_to_key.end()) << "unknown tag " << t.ToString();
      if (it != tag_to_key.end()) out[it->second].insert(v);
    }
    return out;
  }

  template <typename T>
  std::map<int64_t, T> UnliftScalar(
      const NestedBag<int64_t, int64_t>& nested,
      const InnerScalar<T>& result) {
    auto pairs = ZipWithKeys(nested.keys(), result).ToVector();
    std::map<int64_t, T> out;
    for (auto& [k, v] : pairs) {
      EXPECT_EQ(out.count(k), 0u) << "duplicate tag for group " << k;
      out[k] = v;
    }
    return out;
  }

  Cluster cluster_;
};

TEST_P(LiftingIsomorphismTest, MapCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  auto f = [](int64_t v) { return 3 * v - 1; };
  auto lifted = Unlift(nested, LiftedMap(nested.values(), f));
  for (auto& [g, vs] : GroupsOf(data)) {
    std::multiset<int64_t> expect;
    for (int64_t v : vs) expect.insert(f(v));
    EXPECT_EQ(lifted[g], expect) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, FilterCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  auto pred = [](int64_t v) { return v % 3 == 0; };
  auto lifted = Unlift(nested, LiftedFilter(nested.values(), pred));
  for (auto& [g, vs] : GroupsOf(data)) {
    std::multiset<int64_t> expect;
    for (int64_t v : vs) {
      if (pred(v)) expect.insert(v);
    }
    EXPECT_EQ(lifted[g], expect) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, FlatMapCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  auto f = [](int64_t v) {
    return v % 2 == 0 ? std::vector<int64_t>{v, v + 1}
                      : std::vector<int64_t>{};
  };
  auto lifted = Unlift(nested, LiftedFlatMap(nested.values(), f));
  for (auto& [g, vs] : GroupsOf(data)) {
    std::multiset<int64_t> expect;
    for (int64_t v : vs) {
      for (int64_t y : f(v)) expect.insert(y);
    }
    EXPECT_EQ(lifted[g], expect) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, DistinctCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  auto lifted = Unlift(nested, LiftedDistinct(nested.values()));
  for (auto& [g, vs] : GroupsOf(data)) {
    std::set<int64_t> dedup(vs.begin(), vs.end());
    std::multiset<int64_t> expect(dedup.begin(), dedup.end());
    EXPECT_EQ(lifted[g], expect) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, CountCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  auto lifted = UnliftScalar(nested, LiftedCount(nested.values()));
  for (auto& [g, vs] : GroupsOf(data)) {
    EXPECT_EQ(lifted[g], static_cast<int64_t>(vs.size())) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, ReduceCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  auto f = [](int64_t a, int64_t b) { return a + b; };
  auto lifted = UnliftScalar(nested, LiftedReduce(nested.values(), f));
  for (auto& [g, vs] : GroupsOf(data)) {
    int64_t sum = 0;
    for (int64_t v : vs) sum += v;
    EXPECT_EQ(lifted[g], sum) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, FoldWithEmptyGroupsCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  // Filter out everything >= 0 in some groups; fold must still produce the
  // zero element for groups whose inner bag became empty.
  auto filtered = LiftedFilter(nested.values(),
                               [](int64_t v) { return v < -15; });
  auto folded = LiftedFold(
      filtered, int64_t{100}, [](int64_t v) { return v; },
      [](int64_t a, int64_t b) { return a + b; });
  auto lifted = UnliftScalar(nested, folded);
  for (auto& [g, vs] : GroupsOf(data)) {
    bool any = false;
    int64_t sum = 0;
    for (int64_t v : vs) {
      if (v < -15) {
        any = true;
        sum += v;
      }
    }
    // LiftedFold reduces the surviving values; a group whose inner bag
    // became empty must yield exactly the zero element.
    EXPECT_EQ(lifted[g], any ? sum : 100) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, ReduceByKeyCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  // Per group: histogram of value parity.
  auto keyed = LiftedMap(nested.values(), [](int64_t v) {
    return std::pair<int64_t, int64_t>(((v % 2) + 2) % 2, 1);
  });
  auto reduced =
      LiftedReduceByKey(keyed, [](int64_t a, int64_t b) { return a + b; });
  auto lifted = Unlift(nested, reduced);
  for (auto& [g, vs] : GroupsOf(data)) {
    std::map<int64_t, int64_t> hist;
    for (int64_t v : vs) hist[((v % 2) + 2) % 2]++;
    std::multiset<std::pair<int64_t, int64_t>> expect(hist.begin(),
                                                      hist.end());
    EXPECT_EQ(lifted[g], expect) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, UnionCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  auto doubled = LiftedMap(nested.values(), [](int64_t v) { return 2 * v; });
  auto unioned = LiftedUnion(nested.values(), doubled);
  auto lifted = Unlift(nested, unioned);
  for (auto& [g, vs] : GroupsOf(data)) {
    std::multiset<int64_t> expect(vs.begin(), vs.end());
    for (int64_t v : vs) expect.insert(2 * v);
    EXPECT_EQ(lifted[g], expect) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, CompositionCommutes) {
  // A whole pipeline (map . filter . reduceByKey . count) commutes — the
  // composition argument of Theorem 2's proof.
  auto data = MakeData();
  auto nested = Lift(data);
  auto piped = LiftedCount(LiftedReduceByKey(
      LiftedMap(LiftedFilter(nested.values(),
                             [](int64_t v) { return v > 0; }),
                [](int64_t v) {
                  return std::pair<int64_t, int64_t>(v % 5, v);
                }),
      [](int64_t a, int64_t b) { return std::max(a, b); }));
  auto lifted = UnliftScalar(nested, piped);
  for (auto& [g, vs] : GroupsOf(data)) {
    std::set<int64_t> keys;
    for (int64_t v : vs) {
      if (v > 0) keys.insert(v % 5);
    }
    EXPECT_EQ(lifted[g], static_cast<int64_t>(keys.size())) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, MapWithClosureCommutes) {
  auto data = MakeData();
  auto nested = Lift(data);
  auto counts = LiftedCount(nested.values());
  auto scaled = MapWithClosure(
      nested.values(), counts,
      [](int64_t v, int64_t n) { return v * n; });
  auto lifted = Unlift(nested, scaled);
  for (auto& [g, vs] : GroupsOf(data)) {
    std::multiset<int64_t> expect;
    for (int64_t v : vs) expect.insert(v * static_cast<int64_t>(vs.size()));
    EXPECT_EQ(lifted[g], expect) << "group " << g;
  }
}

TEST_P(LiftingIsomorphismTest, LiftedWhileCommutes) {
  // Collatz-ish bounded loop per group: every element halves (rounded up)
  // until the group's max drops below 3. Loops exit at different rounds.
  auto data = MakeData();
  // Make values positive so the loop terminates.
  for (auto& [g, v] : data) v = std::abs(v) + 1;
  auto nested = Lift(data);
  auto result = LiftedWhile(
      nested.values(),
      [](const LiftingContext&, const InnerBag<int64_t>& state, int64_t) {
        auto next = LiftedMap(state, [](int64_t v) { return (v + 1) / 2; });
        auto maxes = LiftedReduce(
            next, [](int64_t a, int64_t b) { return std::max(a, b); });
        auto cond = UnaryScalarOp(maxes, [](int64_t m) { return m >= 3; });
        return std::make_pair(next, cond);
      },
      /*max_iterations=*/100);
  auto lifted = Unlift(nested, result);
  for (auto& [g, vs] : GroupsOf(data)) {
    std::vector<int64_t> state(vs.begin(), vs.end());
    for (;;) {
      int64_t mx = 0;
      for (auto& v : state) {
        v = (v + 1) / 2;
        mx = std::max(mx, v);
      }
      if (mx < 3) break;
    }
    std::multiset<int64_t> expect(state.begin(), state.end());
    EXPECT_EQ(lifted[g], expect) << "group " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LiftingIsomorphismTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values<int64_t>(1, 5, 17),
                       ::testing::Values<int64_t>(1, 7)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_groups" +
             std::to_string(std::get<1>(info.param)) + "_parts" +
             std::to_string(std::get<2>(info.param));
    });

// ---- Scale propagation properties (the cost model's bookkeeping must
// ---- never depend on which physical strategy ran) ----

class StrategyInvarianceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int64_t>> {};

TEST_P(StrategyInvarianceTest, JoinStrategyNeverChangesResults) {
  auto [seed, groups] = GetParam();
  Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < groups * 30; ++i) {
    data.emplace_back(static_cast<int64_t>(
                          rng.Uniform(static_cast<uint64_t>(groups))),
                      rng.UniformInt(0, 100));
  }
  std::vector<std::pair<int64_t, double>> results[2];
  int idx = 0;
  for (auto strategy : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
    Cluster cluster(TestConfig());
    OptimizerOptions opts;
    opts.join_strategy = strategy;
    auto nested =
        GroupByKeyIntoNestedBag(Parallelize(&cluster, data, 5), opts);
    auto counts = LiftedCount(nested.values());
    auto sums = LiftedReduce(nested.values(),
                             [](int64_t a, int64_t b) { return a + b; });
    auto mean = BinaryScalarOp(sums, counts, [](int64_t s, int64_t n) {
      return static_cast<double>(s) / static_cast<double>(n);
    });
    results[idx] = ZipWithKeys(nested.keys(), mean).ToVector();
    std::sort(results[idx].begin(), results[idx].end());
    ASSERT_TRUE(cluster.ok());
    ++idx;
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST_P(StrategyInvarianceTest, PartitionTuningNeverChangesResults) {
  auto [seed, groups] = GetParam();
  Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < groups * 30; ++i) {
    data.emplace_back(static_cast<int64_t>(
                          rng.Uniform(static_cast<uint64_t>(groups))),
                      rng.UniformInt(0, 100));
  }
  std::vector<std::pair<int64_t, int64_t>> results[2];
  int idx = 0;
  for (bool tuned : {true, false}) {
    Cluster cluster(TestConfig());
    OptimizerOptions opts;
    opts.tune_partitions = tuned;
    auto nested =
        GroupByKeyIntoNestedBag(Parallelize(&cluster, data, 5), opts);
    auto counts = LiftedCount(LiftedDistinct(nested.values()));
    results[idx] = ZipWithKeys(nested.keys(), counts).ToVector();
    std::sort(results[idx].begin(), results[idx].end());
    ASSERT_TRUE(cluster.ok());
    ++idx;
  }
  EXPECT_EQ(results[0], results[1]);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrategyInvarianceTest,
                         ::testing::Combine(::testing::Values<uint64_t>(11,
                                                                        13),
                                            ::testing::Values<int64_t>(3,
                                                                       24)),
                         [](const auto& info) {
                           return "seed" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_groups" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---- Checkpoint recovery property (the recovery subsystem's bound) ----
//
// For any seeded FaultPlan consisting only of machine-loss events, a run
// with auto-checkpointing enabled must charge at most the un-checkpointed
// run's recovery time, and its machine-loss recompute is bounded by the
// checkpoint interval times the lost machines' share of a stage — instead
// of growing with the narrow chain's length. Checkpoints are driver spans,
// not stages, so both runs see identical stage indices and fault draws.

class CheckpointRecoveryProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CheckpointRecoveryProperty, AutoCheckpointingBoundsLossRecompute) {
  const uint64_t seed = GetParam();
  engine::ClusterConfig base;
  base.num_machines = 6;
  base.cores_per_machine = 2;
  base.default_parallelism = 8;
  base.job_launch_overhead_s = 0.1;
  base.task_overhead_s = 0.01;
  base.per_element_cost_s = 1e-5;
  constexpr int64_t kElements = 4000;
  constexpr int kChain = 12;
  constexpr int kInterval = 3;

  auto program = [](engine::Cluster* c) {
    std::vector<int64_t> data(kElements);
    for (int64_t i = 0; i < kElements; ++i) data[i] = i;
    auto bag = Parallelize(c, data, 8);
    for (int i = 0; i < kChain; ++i) {
      bag = engine::Map(bag, [](int64_t v) { return v + 1; });
    }
    auto out = engine::Collect(bag);
    std::sort(out.begin(), out.end());
    return out;
  };

  // Calibrate loss times against a fault-free run so every event fires
  // mid-chain in both arms (the checkpointed run only ever takes longer than
  // the clean one, never shorter).
  Cluster clean(base);
  const auto expected = program(&clean);
  ASSERT_TRUE(clean.ok());
  const double clean_time = clean.metrics().simulated_time_s;
  Rng rng(seed);
  engine::FaultPlan plan;
  plan.seed = seed;
  const int events = 1 + static_cast<int>(rng.Uniform(3));  // 1..3 losses
  for (int i = 0; i < events; ++i) {
    plan.machine_loss_times_s.push_back(0.05 +
                                        0.85 * rng.NextDouble() * clean_time);
  }

  auto run = [&](bool checkpointed) {
    engine::ClusterConfig cfg = base;
    cfg.faults = plan;
    if (checkpointed) {
      cfg.recovery.auto_checkpoint = true;
      cfg.recovery.min_checkpoint_lineage = kInterval;
      cfg.recovery.checkpoint_bytes_per_s = 1e12;  // write cost ~ 0
    }
    Cluster c(cfg);
    auto out = program(&c);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    EXPECT_EQ(out, expected);  // faults never change results
    return c.metrics();
  };
  const engine::Metrics ckpt = run(true);
  const engine::Metrics plain = run(false);

  // Identical fault histories: same events fired, same stage structure.
  ASSERT_GT(ckpt.machines_lost, 0);
  EXPECT_EQ(ckpt.machines_lost, plain.machines_lost);
  EXPECT_EQ(ckpt.stages, plain.stages);
  EXPECT_GT(ckpt.checkpoints_written, 0);

  // The property: checkpointing never increases loss recompute...
  EXPECT_LE(ckpt.recovery_time_s, plain.recovery_time_s + 1e-12);

  // ...and bounds it by (interval x lost share x one stage's work over the
  // surviving slots) per event, independent of the chain length. Stages are
  // charged with their *input* bag's depth, which auto-checkpointing keeps
  // below the interval.
  const double stage_cost =
      static_cast<double>(kElements) * base.per_element_cost_s;
  const double tasks_overhead = 8 * base.task_overhead_s;
  const int min_survivors = base.num_machines - ckpt.machines_lost;
  const double per_event_bound =
      static_cast<double>(kInterval) *
      (1.0 / static_cast<double>(min_survivors)) *
      (stage_cost + tasks_overhead) /
      static_cast<double>(min_survivors * base.cores_per_machine);
  EXPECT_LE(ckpt.recovery_time_s,
            static_cast<double>(ckpt.machines_lost) * per_event_bound + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CheckpointRecoveryProperty,
                         ::testing::Values<uint64_t>(101, 102, 103, 104, 105),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace matryoshka::core
