#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace matryoshka {

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  MATRYOSHKA_CHECK(n >= 1) << "ZipfSampler requires n >= 1, got " << n;
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= acc;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace matryoshka
