file(REMOVE_RECURSE
  "CMakeFiles/skewed_bounce_rate.dir/skewed_bounce_rate.cpp.o"
  "CMakeFiles/skewed_bounce_rate.dir/skewed_bounce_rate.cpp.o.d"
  "skewed_bounce_rate"
  "skewed_bounce_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_bounce_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
