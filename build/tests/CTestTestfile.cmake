# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/engine_ops_test[1]_include.cmake")
include("/root/repo/build/tests/engine_cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/core_primitives_test[1]_include.cmake")
include("/root/repo/build/tests/core_control_flow_test[1]_include.cmake")
include("/root/repo/build/tests/core_closures_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extra_ops_test[1]_include.cmake")
include("/root/repo/build/tests/shapes_test[1]_include.cmake")
