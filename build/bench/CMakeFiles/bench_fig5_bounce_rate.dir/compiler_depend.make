# Empty compiler generated dependencies file for bench_fig5_bounce_rate.
# This may be replaced when dependencies are built.
